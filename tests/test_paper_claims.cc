// The paper's quantitative claims, encoded as assertions. Each test cites the
// section it verifies — this suite is the executable paper <-> code map.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "direct/direct_f32.h"
#include "lowino/lowino.h"
#include "quant/quantize.h"
#include "winograd/transform.h"

namespace lowino {
namespace {

// Section 2.2: "F(m x m, r x r) ... theoretical computational complexity is
// reduced by (m + r - 1)^2 / (m^2 * r^2)" — i.e. MACs shrink by
// m^2 r^2 / (m + r - 1)^2.
TEST(PaperSection22, ComplexityReductionFactors) {
  ConvDesc d;
  d.batch = 1;
  d.in_channels = d.out_channels = 64;
  d.height = d.width = 48;  // divisible by 2, 4, 6: no tile padding
  d.kernel = 3;
  d.pad = 1;
  const double direct = d.direct_macs();
  EXPECT_NEAR(direct / WinogradGeometry(d, 2).winograd_macs(d), 36.0 / 16.0, 1e-6);
  EXPECT_NEAR(direct / WinogradGeometry(d, 4).winograd_macs(d), 144.0 / 36.0, 1e-6);
  EXPECT_NEAR(direct / WinogradGeometry(d, 6).winograd_macs(d), 324.0 / 64.0, 1e-6);
}

// Section 2.2: "the values of the transformed input matrix will increase up
// to 4x and 100x after performing B^T d B for F(2x2,3x3) and F(4x4,3x3)".
TEST(PaperSection22, TransformedValueAmplification) {
  EXPECT_DOUBLE_EQ(canonical_f23().input_amplification_2d(), 4.0);
  EXPECT_DOUBLE_EQ(canonical_f43().input_amplification_2d(), 100.0);
  // And a worst-case witness: the all-|max| input reaches the bound.
  const TransformMatrices& t = canonical_f43();
  std::vector<double> d(6, 0.0), g(3, 0.0);
  // Row 0 of B^T is [4, 0, -5, 0, 1, 0]; sign-matched input maximizes it.
  d = {1, 0, -1, 0, 1, 0};
  double v0 = 0.0;
  for (int j = 0; j < 6; ++j) v0 += t.bt(0, j) * d[j];
  EXPECT_DOUBLE_EQ(v0, 10.0);  // 1D factor; squared = 100 in 2D
  (void)g;
}

// Section 2.3: "alpha = 1/4, 1/100 ... for the m = 2, m = 4" down-scaling
// factors follow directly from the amplification (tested above); for m = 6
// with wincnn's fractional points the factor is 1/225 rather than the
// paper's 1/10000 (integer-point) figure — still prohibitive.
TEST(PaperSection23, DownScalingFactorGrowth) {
  const double a6 = winograd_transform(6, 3).input_amplification_2d();
  EXPECT_GT(a6, 200.0);
}

// Section 4.1 / Table 1: phi = 4, sigma = 16 for VNNI.
TEST(PaperSection41, VectorGeometry) {
  EXPECT_EQ(kPhi, 4u);
  EXPECT_EQ(kSigma, 16u);
  EXPECT_EQ(kChanBlock, 64u);
}

// Section 4.3.4: register constraint row*col + col < 31 with one auxiliary
// broadcast register, i.e. everything must fit in 32 zmm registers.
TEST(PaperSection434, RegisterBudget) {
  Int8GemmBlocking b;
  EXPECT_LT(b.row_blk * b.col_blk + b.col_blk, 31);
  b.row_blk = 7;
  b.col_blk = 4;  // 32 registers with the broadcast: over budget
  EXPECT_FALSE(b.valid());
}

// Section 5.3: "F(4x4,3x3) has 2.25x intermediate comparing with F(2x2,3x3)
// for a single tile" — T = 36 vs 16.
TEST(PaperSection53, PerTileIntermediateRatio) {
  const WinogradGeometry g2(ConvDesc{}, 2);
  const WinogradGeometry g4(ConvDesc{}, 4);
  EXPECT_DOUBLE_EQ(static_cast<double>(g4.t_elems) / static_cast<double>(g2.t_elems),
                   2.25);
}

// Section 3 / Eq. 9 end-to-end: with zero quantization error (inputs already
// on the INT8 grid in the Winograd domain is impossible in general, but a
// delta filter and per-position exact scales get within quantization noise),
// the compensated unsigned pipeline equals the signed computation. Verified
// structurally in test_gemm.cc; here we assert the engine-level consequence:
// doubling the input doubles the output (linearity survives quantization up
// to rounding).
TEST(PaperSection3, EngineLinearityUnderQuantization) {
  ConvDesc d;
  d.batch = 1;
  d.in_channels = d.out_channels = 64;
  d.height = d.width = 8;
  d.kernel = 3;
  d.pad = 1;
  Rng rng(4);
  std::vector<float> in(64 * 64), w(64 * 64 * 9);
  for (auto& v : in) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : w) v = rng.normal() * 0.1f;
  std::vector<float> in2(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) in2[i] = 2.0f * in[i];

  LoWinoConfig cfg;
  cfg.m = 4;
  LoWinoConvolution conv(d, cfg);
  conv.calibrate(in2);  // calibrate on the larger range
  conv.finalize_calibration();
  conv.set_filters(w);
  std::vector<float> y1(64 * 64), y2(64 * 64);
  conv.execute_nchw(in, y1);
  conv.execute_nchw(in2, y2);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < y1.size(); ++i) {
    num += std::abs(y2[i] - 2.0f * y1[i]);
    den += std::abs(y2[i]);
  }
  EXPECT_LT(num / den, 0.2) << "quantized engine should be ~linear";
}

// Section 5.2 core claim at layer granularity: Winograd-domain quantization
// (LoWino) dominates spatial-domain + down-scaling at F(4x4), and the margin
// *grows* with tile size. (The end-to-end model version lives in test_nn.cc
// and bench_table3_accuracy.)
TEST(PaperSection52, WinogradDomainQuantizationWinsAndScales) {
  ConvDesc d;
  d.batch = 1;
  d.in_channels = d.out_channels = 64;
  d.height = d.width = 16;
  d.kernel = 3;
  d.pad = 1;
  Rng rng(5);
  std::vector<float> in(64 * 256), w(64 * 64 * 9), ref(64 * 256);
  for (auto& v : in) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : w) v = rng.normal() * 0.1f;
  direct_conv_f32_reference(d, in, w, {}, ref);

  auto lowino_snr = [&](std::size_t m) {
    LoWinoConfig cfg;
    cfg.m = m;
    LoWinoConvolution conv(d, cfg);
    conv.calibrate(in);
    conv.finalize_calibration();
    conv.set_filters(w);
    std::vector<float> out(ref.size());
    conv.execute_nchw(in, out);
    return quantization_error(ref, out).signal_to_noise_db;
  };
  const double snr2 = lowino_snr(2);
  const double snr4 = lowino_snr(4);
  const double snr6 = lowino_snr(6);
  // Monotone degradation with tile size, but no collapse.
  EXPECT_GT(snr2, snr4);
  EXPECT_GT(snr4, snr6);
  EXPECT_GT(snr6, 5.0);
}

}  // namespace
}  // namespace lowino

// Tests for tensors, the Table-1 blocked layouts, and NCHW packing.
#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "common/rng.h"
#include "parallel/thread_pool.h"
#include "tensor/conv_desc.h"
#include "tensor/layout.h"
#include "tensor/pack.h"
#include "tensor/tensor.h"

namespace lowino {
namespace {

TEST(Tensor, ShapeAndIndexing) {
  Tensor<float> t({2, 3, 4});
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.rank(), 3u);
  t.zero();
  t(1, 2, 3) = 5.0f;
  EXPECT_EQ(t.data()[1 * 12 + 2 * 4 + 3], 5.0f);
  EXPECT_EQ(t(0, 0, 0), 0.0f);
}

TEST(Tensor, CopyIsDeep) {
  Tensor<int> a({4});
  a.fill(7);
  Tensor<int> b = a;
  b(0) = 1;
  EXPECT_EQ(a(0), 7);
  EXPECT_EQ(b(1), 7);
}

TEST(ConvDesc, OutputSizesWithPadding) {
  ConvDesc d;
  d.height = d.width = 14;
  d.kernel = 3;
  d.pad = 1;
  EXPECT_EQ(d.out_height(), 14u);
  EXPECT_EQ(d.out_width(), 14u);
  d.pad = 0;
  EXPECT_EQ(d.out_height(), 12u);
}

// --- Degenerate-shape validation ---------------------------------------------
// out_height()/out_width() compute (extent + 2*pad - kernel) / stride + 1 in
// size_t: a kernel larger than the padded extent wraps to ~2^64 and stride 0
// divides by zero. validate() must reject every such shape before any caller
// reaches that arithmetic. One test per rejected shape class.

ConvDesc small_valid_desc() {
  ConvDesc d;
  d.batch = 1;
  d.in_channels = d.out_channels = 4;
  d.height = d.width = 8;
  d.kernel = 3;
  d.pad = 1;
  return d;
}

TEST(ConvDescValidate, RejectsZeroKernel) {
  ConvDesc d = small_valid_desc();
  d.kernel = 0;
  EXPECT_FALSE(d.is_valid());
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(ConvDescValidate, RejectsZeroStride) {
  ConvDesc d = small_valid_desc();
  d.stride = 0;  // out_height() would divide by zero
  EXPECT_FALSE(d.is_valid());
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(ConvDescValidate, RejectsZeroBatchAndChannels) {
  for (const auto mutate : {+[](ConvDesc& d) { d.batch = 0; },
                            +[](ConvDesc& d) { d.in_channels = 0; },
                            +[](ConvDesc& d) { d.out_channels = 0; }}) {
    ConvDesc d = small_valid_desc();
    mutate(d);
    EXPECT_FALSE(d.is_valid());
    EXPECT_THROW(d.validate(), std::invalid_argument);
  }
}

TEST(ConvDescValidate, RejectsPadNotBelowKernel) {
  ConvDesc d = small_valid_desc();
  d.pad = d.kernel;
  EXPECT_FALSE(d.is_valid());
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d.pad = d.kernel + 3;
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(ConvDescValidate, RejectsKernelExceedingPaddedHeight) {
  ConvDesc d = small_valid_desc();
  d.pad = 0;
  d.height = d.kernel - 1;  // out_height() would wrap to ~2^64
  EXPECT_FALSE(d.is_valid());
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(ConvDescValidate, RejectsKernelExceedingPaddedWidth) {
  ConvDesc d = small_valid_desc();
  d.pad = 0;
  d.width = d.kernel - 1;
  EXPECT_FALSE(d.is_valid());
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(ConvDescValidate, AcceptsBoundaryShapes) {
  // kernel == padded extent: the smallest legal input, a single 1x1 output.
  ConvDesc d = small_valid_desc();
  d.height = d.width = 1;
  d.kernel = 3;
  d.pad = 1;
  EXPECT_TRUE(d.is_valid());
  EXPECT_NO_THROW(d.validate());
  EXPECT_EQ(d.out_height(), 1u);
  EXPECT_EQ(d.out_width(), 1u);
  // 1x1 kernel with zero pad is legal too (pad < kernel holds).
  ConvDesc e = small_valid_desc();
  e.kernel = 1;
  e.pad = 0;
  EXPECT_TRUE(e.is_valid());
  EXPECT_NO_THROW(e.validate());
  EXPECT_EQ(e.out_height(), 8u);
}

TEST(ConvDescValidate, ErrorMessageNamesTheShape) {
  ConvDesc d = small_valid_desc();
  d.stride = 0;
  try {
    d.validate();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("stride"), std::string::npos) << e.what();
  }
}

TEST(ConvDesc, ChannelPaddingTo64) {
  ConvDesc d;
  d.in_channels = 1;
  d.out_channels = 100;
  EXPECT_EQ(d.padded_in_channels(), 64u);
  EXPECT_EQ(d.padded_out_channels(), 128u);
  d.in_channels = 256;
  EXPECT_EQ(d.padded_in_channels(), 256u);
}

TEST(WinogradGeometry, TileCounts) {
  ConvDesc d;
  d.batch = 2;
  d.height = d.width = 14;
  d.kernel = 3;
  d.pad = 1;
  const WinogradGeometry g2(d, 2);
  EXPECT_EQ(g2.alpha, 4u);
  EXPECT_EQ(g2.tiles_h, 7u);
  EXPECT_EQ(g2.total_tiles, 2u * 49u);
  EXPECT_EQ(g2.t_elems, 16u);
  const WinogradGeometry g4(d, 4);
  EXPECT_EQ(g4.alpha, 6u);
  EXPECT_EQ(g4.tiles_h, 4u);  // ceil(14/4)
  EXPECT_EQ(g4.t_elems, 36u);
}

TEST(WinogradGeometry, ComplexityReduction) {
  // F(4x4,3x3) reduces MACs by (m*r)^2 / alpha^2 = 144/36 = 4x per output.
  ConvDesc d;
  d.batch = 1;
  d.in_channels = d.out_channels = 64;
  d.height = d.width = 16;
  const WinogradGeometry g(d, 4);
  const double direct = d.direct_macs();
  const double wino = g.winograd_macs(d);
  EXPECT_NEAR(direct / wino, 4.0, 0.01);
}

class LayoutRoundTrip : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(LayoutRoundTrip, PackUnpackNCHW) {
  const auto [b, c, h, w] = GetParam();
  Rng rng(b * 1000 + c * 100 + h * 10 + w);
  Tensor<float> src({static_cast<std::size_t>(b), static_cast<std::size_t>(c),
                     static_cast<std::size_t>(h), static_cast<std::size_t>(w)});
  for (auto& v : src.span()) v = rng.uniform(-1.0f, 1.0f);

  const BlockedActLayout layout(b, c, h, w);
  AlignedBuffer<float> blocked(layout.size());
  pack_nchw_to_blocked(src.span(), b, c, h, w, blocked.span());

  Tensor<float> dst({static_cast<std::size_t>(b), static_cast<std::size_t>(c),
                     static_cast<std::size_t>(h), static_cast<std::size_t>(w)});
  unpack_blocked_to_nchw(blocked.span(), b, c, h, w, dst.span());
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(src.data()[i], dst.data()[i]) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LayoutRoundTrip,
                         ::testing::Values(std::make_tuple(1, 64, 4, 4),
                                           std::make_tuple(2, 128, 7, 5),
                                           std::make_tuple(1, 1, 8, 8),
                                           std::make_tuple(3, 100, 3, 3),
                                           std::make_tuple(1, 65, 2, 2),
                                           std::make_tuple(2, 192, 6, 6)));

TEST(BlockedActLayout, PaddingChannelsAreZero) {
  const int b = 1, c = 70, h = 2, w = 2;
  Tensor<float> src({1, 70, 2, 2});
  src.fill(1.0f);
  const BlockedActLayout layout(b, c, h, w);
  AlignedBuffer<float> blocked(layout.size());
  pack_nchw_to_blocked(src.span(), b, c, h, w, blocked.span());
  // channels 70..127 must be zero-filled
  for (std::size_t p = 0; p < 4; ++p) {
    const float* blk = blocked.data() + layout.offset(0, 1, p / 2, p % 2);
    for (std::size_t ci = 0; ci < kChanBlock; ++ci) {
      const std::size_t chan = kChanBlock + ci;
      EXPECT_EQ(blk[ci], chan < 70 ? 1.0f : 0.0f);
    }
  }
}

TEST(PackWithThreadPool, MatchesSerial) {
  ThreadPool pool(4);
  const int b = 2, c = 130, h = 5, w = 7;
  Rng rng(99);
  Tensor<float> src({2, 130, 5, 7});
  for (auto& v : src.span()) v = rng.uniform(-1.0f, 1.0f);
  const BlockedActLayout layout(b, c, h, w);
  AlignedBuffer<float> serial(layout.size()), parallel(layout.size());
  pack_nchw_to_blocked(src.span(), b, c, h, w, serial.span());
  pack_nchw_to_blocked(src.span(), b, c, h, w, parallel.span(), &pool);
  for (std::size_t i = 0; i < layout.size(); ++i) {
    ASSERT_EQ(serial[i], parallel[i]);
  }
}

TEST(TransformedInputLayout, OffsetsAreUniqueAndInBounds) {
  const TransformedInputLayout l(/*total_tiles=*/10, /*padded_c=*/128, /*t=*/16,
                                 /*nblk=*/4, /*cblk=*/64);
  EXPECT_EQ(l.n_blocks, 3u);
  EXPECT_EQ(l.c_blocks, 2u);
  std::vector<char> seen(l.size(), 0);
  for (std::size_t n = 0; n < 10; ++n) {
    for (std::size_t t = 0; t < 16; ++t) {
      for (std::size_t c = 0; c < 128; ++c) {
        const std::size_t off = l.offset(n, t, c);
        ASSERT_LT(off, l.size());
        ASSERT_EQ(seen[off], 0);
        seen[off] = 1;
      }
    }
  }
}

TEST(TransformedInputLayout, CblkInnermostContiguous) {
  const TransformedInputLayout l(8, 128, 16, 4, 128);
  // consecutive channels of one (n, t) must be adjacent — required for the
  // 64-byte NT stores in the input transform.
  for (std::size_t c = 0; c + 1 < 128; ++c) {
    EXPECT_EQ(l.offset(3, 5, c) + 1, l.offset(3, 5, c + 1));
  }
}

TEST(PackedFilterLayout, VpdpbusdGrouping) {
  const PackedFilterLayout l(/*padded_c=*/64, /*padded_k=*/64, /*t=*/4, /*cblk=*/64,
                             /*kblk=*/64);
  // Within one c4 group, the 4 channel values of output channel k are
  // consecutive bytes — the vpdpbusd operand convention (Figure 1).
  for (std::size_t cr = 0; cr + 1 < 4; ++cr) {
    EXPECT_EQ(l.offset(0, cr, 7) + 1, l.offset(0, cr + 1, 7));
  }
  // Next output channel starts 4 bytes later.
  EXPECT_EQ(l.offset(0, 0, 7) + 4, l.offset(0, 0, 8));
}

TEST(PackedFilterLayout, OffsetsAreUniqueAndInBounds) {
  const PackedFilterLayout l(128, 128, 4, 64, 64);
  std::vector<char> seen(l.size(), 0);
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::size_t c = 0; c < 128; ++c) {
      for (std::size_t k = 0; k < 128; ++k) {
        const std::size_t off = l.offset(t, c, k);
        ASSERT_LT(off, l.size());
        ASSERT_EQ(seen[off], 0);
        seen[off] = 1;
      }
    }
  }
}

TEST(TransformedOutputLayout, TileBlockIsConsecutive) {
  const TransformedOutputLayout l(/*padded_k=*/128, /*tiles=*/20, /*t=*/16);
  // For a fixed tile n and k-block, all T x 64 values are consecutive —
  // the property that makes the output transform's reads sequential.
  const std::size_t base = l.offset(5, 0, 64);
  for (std::size_t t = 0; t < 16; ++t) {
    for (std::size_t ki = 0; ki < 64; ++ki) {
      EXPECT_EQ(l.offset(5, t, 64 + ki), base + t * 64 + ki);
    }
  }
}

TEST(TransformedOutputLayout, SixteenLaneGroupsAre64ByteAligned) {
  const TransformedOutputLayout l(256, 33, 36);
  for (std::size_t k = 0; k < 256; k += 16) {
    EXPECT_EQ((l.offset(7, 11, k) * sizeof(std::int32_t)) % 64, 0u);
  }
}

}  // namespace
}  // namespace lowino

// Self-checks of the conformance subsystem (src/testing): the oracles must
// be exact, the envelopes sound (never violated by correct engines) and
// non-vacuous (tight enough to flag a corrupted output).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "direct/direct_f32.h"
#include "testing/envelope.h"
#include "testing/fuzz.h"
#include "testing/oracle.h"
#include "testing/rational_conv.h"
#include "winograd/transform.h"

namespace lowino {
namespace testing {
namespace {

/// Random values on a coarse dyadic grid (multiples of 1/256 in [-2, 2]) so
/// exact rational arithmetic stays within int64 numerators.
std::vector<float> dyadic_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) {
    x = static_cast<float>(static_cast<int>(rng.next_below(1025)) - 512) / 256.0f;
  }
  return v;
}

TEST(RationalConv, FloatConversionIsExact) {
  for (const float x : {0.0f, 1.0f, -1.0f, 0.5f, -0.375f, 3.1415927f, 1e-6f, -127.5f}) {
    EXPECT_EQ(rational_from_float(x).to_double(), static_cast<double>(x)) << x;
  }
  EXPECT_THROW(rational_from_float(std::numeric_limits<float>::infinity()),
               std::domain_error);
}

// The transform-identity check in exact arithmetic: the Winograd path and the
// direct path must agree *exactly* — this bounds the transform error of the
// real matrices at zero, separating it from quantization error.
TEST(RationalConv, WinogradIdentityHoldsExactly) {
  for (const std::size_t m : {2u, 4u, 6u}) {
    ConvDesc d;
    d.batch = 1;
    d.in_channels = 2;
    d.out_channels = 3;
    d.height = d.width = 9;
    d.kernel = 3;
    d.pad = 1;
    const auto input = rationalize(
        dyadic_values(d.batch * d.in_channels * d.height * d.width, 11 * m));
    const auto weights = rationalize(
        dyadic_values(d.out_channels * d.in_channels * d.kernel * d.kernel, 13 * m));
    const auto bias = rationalize(dyadic_values(d.out_channels, 17 * m));

    const auto direct = rational_direct_conv(d, input, weights, bias);
    const auto wino = rational_winograd_conv(d, m, input, weights, bias);
    ASSERT_EQ(direct.size(), wino.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      ASSERT_EQ(direct[i], wino[i]) << "m=" << m << " element " << i;
    }
  }
}

TEST(RationalConv, WinogradIdentityWithUnevenTiling) {
  // Output size not divisible by m: exercises edge-tile clipping.
  ConvDesc d;
  d.in_channels = 1;
  d.out_channels = 2;
  d.height = 7;
  d.width = 10;
  d.kernel = 3;
  d.pad = 0;
  const auto input = rationalize(dyadic_values(d.height * d.width, 23));
  const auto weights = rationalize(
      dyadic_values(d.out_channels * d.kernel * d.kernel, 29));
  const auto direct = rational_direct_conv(d, input, weights);
  const auto wino = rational_winograd_conv(d, 4, input, weights);
  for (std::size_t i = 0; i < direct.size(); ++i) ASSERT_EQ(direct[i], wino[i]);
}

TEST(Oracle, F64MatchesProductionF32Reference) {
  ConvDesc d;
  d.batch = 2;
  d.in_channels = 5;
  d.out_channels = 7;
  d.height = d.width = 12;
  d.kernel = 3;
  d.pad = 1;
  Rng rng(99);
  std::vector<float> input(d.batch * d.in_channels * d.height * d.width);
  std::vector<float> weights(d.out_channels * d.in_channels * 9);
  std::vector<float> bias(d.out_channels);
  for (float& v : input) v = rng.uniform(-2.0f, 2.0f);
  for (float& v : weights) v = rng.uniform(-1.0f, 1.0f);
  for (float& v : bias) v = rng.uniform(-1.0f, 1.0f);

  const auto ref = direct_conv_f64(d, input, weights, bias, /*relu=*/true);
  std::vector<float> out(ref.size());
  direct_conv_f32_reference(d, input, weights, bias, out, /*relu=*/true);
  const SpatialFilterStats w = spatial_filter_stats(d, weights);
  const auto bound = fp32_budget(d, abs_max_f64(input), w, bias, 1.0);
  const std::size_t plane = d.out_height() * d.out_width();
  for (std::size_t i = 0; i < ref.size(); ++i) {
    const std::size_t k = (i / plane) % d.out_channels;
    EXPECT_LE(std::abs(static_cast<double>(out[i]) - ref[i]), bound[k]);
  }
}

TEST(Oracle, I64DirectIsExactForQuantizedOperands) {
  ConvDesc d;
  d.in_channels = 3;
  d.out_channels = 2;
  d.height = d.width = 8;
  d.kernel = 3;
  d.pad = 1;
  Rng rng(7);
  std::vector<std::int8_t> in_q(d.in_channels * d.height * d.width);
  std::vector<std::int8_t> w_q(d.out_channels * d.in_channels * 9);
  for (auto& v : in_q) v = static_cast<std::int8_t>(static_cast<int>(rng.next_below(255)) - 127);
  for (auto& v : w_q) v = static_cast<std::int8_t>(static_cast<int>(rng.next_below(255)) - 127);
  // int8 x int8 sums over <= 27 terms fit double exactly: f64 of the casts
  // must equal the int64 oracle bit-for-bit.
  std::vector<float> in_f(in_q.begin(), in_q.end()), w_f(w_q.begin(), w_q.end());
  const auto i64 = direct_conv_i64(d, in_q, w_q);
  const auto f64 = direct_conv_f64(d, in_f, w_f);
  for (std::size_t i = 0; i < i64.size(); ++i) {
    EXPECT_EQ(static_cast<double>(i64[i]), f64[i]);
  }
}

TEST(Oracle, EngineTransformMatchesProductionSelection) {
  EXPECT_EQ(&engine_transform(2, 3), &canonical_f23());
  EXPECT_EQ(&engine_transform(4, 3), &canonical_f43());
  EXPECT_EQ(&engine_transform(6, 3), &winograd_transform(6, 3));
  EXPECT_EQ(&engine_transform(2, 5), &winograd_transform(2, 5));
}

TEST(Envelope, GainsMatchPaperAmplification) {
  // Section 2.3: "4x for F(2x2,3x3) and 100x for F(4x4,3x3)".
  EXPECT_DOUBLE_EQ(transform_gains(canonical_f23()).in_amp_max, 4.0);
  EXPECT_DOUBLE_EQ(transform_gains(canonical_f43()).in_amp_max, 100.0);
}

TEST(Envelope, NonVacuousRelativeToOutputMagnitude) {
  // A vacuous envelope (bound >> output scale) would accept anything. Check
  // the LoWino bound on a realistic case is a fraction of the worst-case
  // output magnitude. The acceptable fraction grows with the tile size: the
  // transform amplification (4x at m=2, 100x at m=4 — Section 2.3) is real
  // error the envelope must admit, which is why the paper stops at F(4x4).
  ConvDesc d;
  d.in_channels = 32;
  d.out_channels = 16;
  d.height = d.width = 14;
  d.kernel = 3;
  d.pad = 1;
  Rng data_rng(5);
  std::vector<float> input(d.in_channels * d.height * d.width);
  std::vector<float> weights(d.out_channels * d.in_channels * 9);
  for (float& v : input) v = data_rng.uniform(-1.0f, 1.0f);
  for (float& v : weights) v = data_rng.uniform(-1.0f, 1.0f);
  const auto sstats = spatial_filter_stats(d, weights);
  const double dmax = abs_max_f64(input);

  const struct { std::size_t m; double frac; } cases[] = {{2, 0.25}, {4, 0.5}};
  for (const auto& c : cases) {
    const TransformMatrices& tm = engine_transform(c.m, 3);
    const auto v_absmax = transformed_input_absmax(d, c.m, input);
    std::vector<double> taus(v_absmax.size());
    for (std::size_t t = 0; t < taus.size(); ++t) taus[t] = v_absmax[t] * 1.0001 + 1e-6;
    const auto fstats = transformed_filter_stats(d, c.m, weights);
    const auto bound = lowino_budget(d, tm, taus, fstats);
    for (std::size_t k = 0; k < bound.size(); ++k) {
      const double out_scale = sstats.abs_sum[k] * dmax;  // worst-case |Y(k)|
      EXPECT_LT(bound[k], c.frac * out_scale) << "m=" << c.m << " k=" << k;
      EXPECT_GT(bound[k], 0.0);
    }
  }
}

TEST(Envelope, RejectsCorruptedOutput) {
  // Simulated buggy engine: the exact reference plus a perturbation of twice
  // the budget on one element must violate the envelope check the fuzz
  // harness applies — i.e. the harness has teeth.
  ConvDesc d;
  d.in_channels = 8;
  d.out_channels = 4;
  d.height = d.width = 10;
  d.kernel = 3;
  d.pad = 1;
  Rng rng(3);
  std::vector<float> input(d.in_channels * d.height * d.width);
  std::vector<float> weights(d.out_channels * d.in_channels * 9);
  for (float& v : input) v = rng.uniform(-1.0f, 1.0f);
  for (float& v : weights) v = rng.uniform(-1.0f, 1.0f);
  const auto ref = direct_conv_f64(d, input, weights);

  const TransformMatrices& tm = engine_transform(2, 3);
  const auto v_absmax = transformed_input_absmax(d, 2, input);
  std::vector<double> taus(v_absmax.size());
  for (std::size_t t = 0; t < taus.size(); ++t) taus[t] = v_absmax[t] * 1.0001 + 1e-6;
  const auto bound = lowino_budget(d, tm, taus, transformed_filter_stats(d, 2, weights));

  std::vector<float> corrupt(ref.begin(), ref.end());
  const std::size_t victim = corrupt.size() / 2;
  const std::size_t plane = d.out_height() * d.out_width();
  const std::size_t k = (victim / plane) % d.out_channels;
  corrupt[victim] += static_cast<float>(2.0 * bound[k]);
  EXPECT_GT(std::abs(static_cast<double>(corrupt[victim]) - ref[victim]), bound[k]);
}

TEST(Fuzz, CaseGenerationIsDeterministic) {
  for (std::uint64_t seed : {1ULL, 42ULL, 20260806ULL}) {
    const FuzzCase a = generate_case(seed), b = generate_case(seed);
    EXPECT_EQ(describe(a), describe(b));
    EXPECT_EQ(a.seed, b.seed);
  }
}

TEST(Fuzz, ReproLineIsSingleLine) {
  const std::string line = repro_line(123, 45);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("LOWINO_TEST_SEED=123"), std::string::npos);
  EXPECT_NE(line.find("LOWINO_FUZZ_INDEX=45"), std::string::npos);
}

}  // namespace
}  // namespace testing
}  // namespace lowino

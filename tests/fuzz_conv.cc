// Randomized differential conformance driver.
//
// Runs LOWINO_FUZZ_CASES randomized convolution problems (default 40; the
// tier-2 CTest registration runs 500), each sweeping every engine in the
// repository against the double-precision oracle within the derived accuracy
// envelopes (src/testing). Deterministic: case i of a run is fully determined
// by LOWINO_TEST_SEED and i, so any failure reproduces from the single
// printed line, e.g.
//
//   LOWINO_TEST_SEED=20260806 LOWINO_FUZZ_INDEX=17 LOWINO_FUZZ_CASES=1 ./tests/fuzz_conv
//
// A failing case is also shrunk to a minimal still-failing variant before the
// assertion fires (smaller shape, fewer features — much easier to debug).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>

#include "common/env.h"
#include "testing/fuzz.h"

namespace lowino {
namespace testing {
namespace {

std::uint64_t case_seed(std::uint64_t base_seed, std::size_t index) {
  // splitmix64 step decorrelates consecutive indices.
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

TEST(FuzzConv, RandomizedDifferentialSweep) {
  const auto base_seed = static_cast<std::uint64_t>(env_long("LOWINO_TEST_SEED", 20260806));
  const auto cases = static_cast<std::size_t>(env_long("LOWINO_FUZZ_CASES", 40));
  const long only_index = env_long("LOWINO_FUZZ_INDEX", -1);

  std::size_t total_engines = 0;
  for (std::size_t i = 0; i < cases; ++i) {
    const std::size_t index =
        only_index >= 0 ? static_cast<std::size_t>(only_index) : i;
    const FuzzCase fc = generate_case(case_seed(base_seed, index));
    const CaseResult r = run_case(fc);
    total_engines += r.engines_checked;
    if (!r.ok) {
      const FuzzCase minimal = shrink_case(fc);
      const CaseResult mr = run_case(minimal);
      std::fprintf(stderr, "REPRO: %s\n", repro_line(base_seed, index).c_str());
      FAIL() << "case " << index << " [" << describe(fc) << "] failed: " << r.failure
             << "\n  repro: " << repro_line(base_seed, index)
             << "\n  shrunk to [" << describe(minimal)
             << "]: " << (mr.ok ? "(no longer fails)" : mr.failure);
    }
    if (only_index >= 0) break;
  }
  // Every case checks the full engine sweep (>= 9 engine/mode combinations
  // for r = 3 shapes) — guard against the sweep silently shrinking.
  EXPECT_GE(total_engines, (only_index >= 0 ? std::size_t{1} : cases) * 8);
}

}  // namespace
}  // namespace testing
}  // namespace lowino

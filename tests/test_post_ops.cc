// Engine-level PostOps epilogue tests: fused-vs-unfused bit-identity for
// every post-op-capable engine across the epilogue combinations, the
// capability query / std::logic_error contract on declining engines, in-place
// residual (out aliases post.sum), and staged-vs-fused LoWino execution with
// an epilogue attached. The randomized cross-engine sweep lives in fuzz_conv;
// these are the deterministic contracts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "lowino/convolution.h"
#include "nn/engines.h"
#include "tensor/conv_desc.h"

namespace lowino {
namespace {

struct PostOpsFixture {
  ConvDesc desc;
  std::vector<float> input, weights, bias, residual;

  explicit PostOpsFixture(const ConvDesc& d) : desc(d) {
    Rng rng(20260808);
    input.resize(desc.batch * desc.in_channels * desc.height * desc.width);
    weights.resize(desc.out_channels * (desc.in_channels / desc.groups) * desc.kernel *
                   desc.kernel);
    bias.resize(desc.out_channels);
    residual.resize(desc.batch * desc.out_channels * desc.out_height() * desc.out_width());
    for (float& v : input) v = rng.uniform(-1.0f, 1.0f);
    for (float& v : weights) v = rng.normal() * 0.2f;
    for (float& v : bias) v = rng.uniform(-0.5f, 0.5f);
    for (float& v : residual) v = rng.uniform(-1.0f, 1.0f);
  }

  PostOpsFixture() : PostOpsFixture(default_desc()) {}

  static ConvDesc default_desc() {
    ConvDesc d;
    d.batch = 2;
    d.in_channels = 7;   // padding lanes in every 16-lane group
    d.out_channels = 19; // K not a multiple of 16 either
    d.height = d.width = 12;
    d.kernel = 3;
    d.pad = 1;
    return d;
  }

  std::unique_ptr<ConvEngine> ready_engine(EngineKind kind) const {
    auto e = make_conv_engine(kind, desc);
    if (engine_caps(kind, desc).quantized) {
      e->calibrate(input);
      e->finalize_calibration();
    }
    e->set_filters(weights, bias);
    return e;
  }

  std::size_t out_elems() const { return residual.size(); }

  /// The unfused reference: plain engine run, then the element-wise epilogue
  /// in the fixed order (sum, then ReLU) — the exact float op sequence the
  /// fused epilogue performs in registers.
  std::vector<float> reference(ConvEngine& e, const PostOps& post) const {
    std::vector<float> out(out_elems());
    e.run(input, out, nullptr);
    if (post.sum != nullptr) {
      for (std::size_t i = 0; i < out.size(); ++i) out[i] += post.sum[i];
    }
    if (post.relu) {
      for (float& v : out) v = std::max(0.0f, v);
    }
    return out;
  }
};

TEST(PostOps, CapabilityTableMatchesWrapper) {
  const PostOpsFixture f;
  for (const EngineKind kind : all_engine_kinds()) {
    const EngineCaps caps = engine_caps(kind, f.desc);
    if (!caps.supports) continue;  // int8_1x1 / int8_dw decline a 3x3 ungrouped shape
    auto e = f.ready_engine(kind);
    EXPECT_EQ(e->supports_post_ops(), caps.post_ops) << engine_token(kind);
  }
  // The capable set is exactly: the direct engines (including the dedicated
  // 1x1 and depthwise ones) and the LoWino family.
  const auto post_ops_of = [&f](EngineKind kind) {
    return engine_caps(kind, f.desc).post_ops;
  };
  EXPECT_TRUE(post_ops_of(EngineKind::kFp32Direct));
  EXPECT_TRUE(post_ops_of(EngineKind::kInt8Direct));
  EXPECT_TRUE(post_ops_of(EngineKind::kInt8Conv1x1));
  EXPECT_TRUE(post_ops_of(EngineKind::kInt8Depthwise));
  EXPECT_TRUE(post_ops_of(EngineKind::kLoWinoF2));
  EXPECT_TRUE(post_ops_of(EngineKind::kLoWinoF4));
  EXPECT_TRUE(post_ops_of(EngineKind::kLoWinoF6));
  EXPECT_FALSE(post_ops_of(EngineKind::kFp32WinoF2));
  EXPECT_FALSE(post_ops_of(EngineKind::kDownscaleF2));
  EXPECT_FALSE(post_ops_of(EngineKind::kUpcastF2));
  EXPECT_FALSE(post_ops_of(EngineKind::kVendorF2));
}

TEST(PostOps, FusedBitIdenticalToUnfusedAcrossCapableEngines) {
  const PostOpsFixture f;
  const PostOps combos[] = {
      {.relu = true, .sum = nullptr},
      {.relu = false, .sum = f.residual.data()},
      {.relu = true, .sum = f.residual.data()},
  };
  for (const EngineKind kind : all_engine_kinds()) {
    const EngineCaps caps = engine_caps(kind, f.desc);
    if (!caps.supports || !caps.post_ops) continue;
    auto e = f.ready_engine(kind);
    for (const PostOps& post : combos) {
      const std::vector<float> ref = f.reference(*e, post);
      std::vector<float> fused(f.out_elems());
      e->run(f.input, fused, nullptr, post);
      EXPECT_EQ(0, std::memcmp(fused.data(), ref.data(), ref.size() * sizeof(float)))
          << engine_token(kind) << " relu=" << post.relu << " sum=" << (post.sum != nullptr);
    }
  }
}

TEST(PostOps, EmptyPostEqualsPlainRun) {
  const PostOpsFixture f;
  for (const EngineKind kind : {EngineKind::kInt8Direct, EngineKind::kLoWinoF4,
                                EngineKind::kDownscaleF2}) {
    auto e = f.ready_engine(kind);
    std::vector<float> plain(f.out_elems()), via_post(f.out_elems());
    e->run(f.input, plain, nullptr);
    e->run(f.input, via_post, nullptr, PostOps{});  // legal on every engine
    EXPECT_EQ(0, std::memcmp(plain.data(), via_post.data(), plain.size() * sizeof(float)))
        << engine_token(kind);
  }
}

TEST(PostOps, NonEmptyPostOnDecliningEngineThrows) {
  const PostOpsFixture f;
  for (const EngineKind kind : {EngineKind::kFp32WinoF2, EngineKind::kDownscaleF4,
                                EngineKind::kUpcastF2, EngineKind::kVendorF2}) {
    auto e = f.ready_engine(kind);
    std::vector<float> out(f.out_elems());
    EXPECT_THROW(e->run(f.input, out, nullptr, PostOps{.relu = true}), std::logic_error)
        << engine_token(kind);
    EXPECT_THROW(
        e->run(f.input, out, nullptr, PostOps{.relu = false, .sum = f.residual.data()}),
        std::logic_error)
        << engine_token(kind);
  }
}

TEST(PostOps, InPlaceResidualSumMatchesOutOfPlace) {
  // The serving arena lets a fused conv's output share the residual's slot;
  // post.sum == output must therefore be value-identical to distinct buffers.
  const PostOpsFixture f;
  for (const EngineKind kind :
       {EngineKind::kFp32Direct, EngineKind::kInt8Direct, EngineKind::kLoWinoF2,
        EngineKind::kLoWinoF4, EngineKind::kLoWinoF6}) {
    auto e = f.ready_engine(kind);
    std::vector<float> separate(f.out_elems());
    e->run(f.input, separate,
           nullptr, PostOps{.relu = true, .sum = f.residual.data()});
    std::vector<float> in_place = f.residual;  // output starts as the residual
    e->run(f.input, in_place, nullptr, PostOps{.relu = true, .sum = in_place.data()});
    EXPECT_EQ(0, std::memcmp(in_place.data(), separate.data(),
                             separate.size() * sizeof(float)))
        << engine_token(kind);
  }
}

TEST(PostOps, DedicatedEnginesFusedBitIdenticalOnNativeShapes) {
  // The 1x1 and depthwise engines decline the shared 3x3 fixture shape, so
  // they get the same fused-vs-unfused contract on shapes they own.
  ConvDesc pw = PostOpsFixture::default_desc();
  pw.kernel = 1;
  pw.pad = 0;
  ConvDesc dw = PostOpsFixture::default_desc();
  dw.in_channels = dw.out_channels = dw.groups = 12;
  const struct {
    EngineKind kind;
    const ConvDesc& desc;
  } cases[] = {{EngineKind::kInt8Conv1x1, pw}, {EngineKind::kInt8Depthwise, dw}};
  for (const auto& c : cases) {
    ASSERT_TRUE(engine_caps(c.kind, c.desc).supports) << engine_token(c.kind);
    const PostOpsFixture f(c.desc);
    auto e = f.ready_engine(c.kind);
    const PostOps combos[] = {
        {.relu = true, .sum = nullptr},
        {.relu = false, .sum = f.residual.data()},
        {.relu = true, .sum = f.residual.data()},
    };
    for (const PostOps& post : combos) {
      const std::vector<float> ref = f.reference(*e, post);
      std::vector<float> fused(f.out_elems());
      e->run(f.input, fused, nullptr, post);
      EXPECT_EQ(0, std::memcmp(fused.data(), ref.data(), ref.size() * sizeof(float)))
          << engine_token(c.kind) << " relu=" << post.relu
          << " sum=" << (post.sum != nullptr);
    }
  }
}

TEST(PostOps, LoWinoStagedAndFusedModesAgreeWithEpilogue) {
  const PostOpsFixture f;
  const PostOps post{.relu = true, .sum = f.residual.data()};
  std::vector<float> outs[2];
  const ExecutionMode modes[] = {ExecutionMode::kStaged, ExecutionMode::kFused};
  for (int m = 0; m < 2; ++m) {
    LoWinoConfig cfg;
    cfg.m = 4;
    cfg.execution_mode = modes[m];
    LoWinoConvolution conv(f.desc, cfg);
    conv.calibrate(f.input);
    conv.finalize_calibration();
    conv.set_filters(f.weights, f.bias);
    outs[m].resize(f.out_elems());
    conv.execute_nchw(f.input, outs[m], nullptr, post);
  }
  EXPECT_EQ(0, std::memcmp(outs[0].data(), outs[1].data(), outs[0].size() * sizeof(float)));
}

}  // namespace
}  // namespace lowino

// Tests for the dynamic-batching serving front end (src/serve/server.h).
//
// The deterministic half drives the Batcher / ServerCore / ManualServer
// layers with an injected FakeClock — batch formation, linger expiry, SLO
// rejection, FIFO fairness and shutdown drain are exercised without threads
// or sleeps. The differential half is the serving-correctness contract:
// batched execution (including partial batches with stale lanes) must be
// bit-identical per request to a serial batch-1 session on the same inputs,
// across MiniVGG and MiniResNet and every batch size 1..max — first through
// the deterministic ManualServer, then through the real threaded
// BatchingServer under concurrent clients.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/fault.h"
#include "common/rng.h"
#include "nn/model_zoo.h"
#include "parallel/thread_pool.h"
#include "serve/server.h"
#include "serve/session.h"

namespace lowino {
namespace {

Tensor<float> random_input(std::size_t batch, std::size_t hw, std::uint64_t seed) {
  Tensor<float> t({batch, 1, hw, hw});
  Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = rng.uniform(-1.0f, 1.0f);
  return t;
}

constexpr Nanos kMs = 1000000;

BatcherOptions batcher_options(std::size_t max_batch, Nanos linger_ns,
                               std::size_t capacity) {
  BatcherOptions o;
  o.max_batch = max_batch;
  o.linger_ns = linger_ns;
  o.capacity = capacity;
  return o;
}

bool admitted(Batcher::Admit a) { return a == Batcher::Admit::kAdmitted; }

// --- Batcher: the pure policy ----------------------------------------------

TEST(Batcher, FullBatchClosesImmediately) {
  Batcher b(batcher_options(4, 10 * kMs, 16));
  for (std::uint32_t t = 0; t < 3; ++t) EXPECT_TRUE(admitted(b.admit(t, /*now=*/100)));
  EXPECT_FALSE(b.ready(100)) << "3 of 4 queued, linger not expired";
  EXPECT_TRUE(admitted(b.admit(3, 100)));
  EXPECT_TRUE(b.ready(100)) << "a full batch closes regardless of linger";
  std::vector<std::uint32_t> batch;
  EXPECT_EQ(b.pop(batch), 4u);
  EXPECT_EQ(batch, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(b.pending(), 0u);
}

TEST(Batcher, LingerDeadlineClosesPartialBatch) {
  Batcher b(batcher_options(4, 5 * kMs, 16));
  ASSERT_TRUE(admitted(b.admit(7, /*now=*/1000)));
  EXPECT_FALSE(b.ready(1000));
  EXPECT_FALSE(b.ready(1000 + 5 * kMs - 1));
  EXPECT_TRUE(b.ready(1000 + 5 * kMs)) << "oldest request lingered out";
  std::vector<std::uint32_t> batch;
  EXPECT_EQ(b.pop(batch), 1u);
  EXPECT_EQ(batch.front(), 7u);
}

TEST(Batcher, LingerTracksOldestRequest) {
  Batcher b(batcher_options(4, 5 * kMs, 16));
  ASSERT_TRUE(admitted(b.admit(0, 0)));
  ASSERT_TRUE(admitted(b.admit(1, 4 * kMs)));
  // The *oldest* admission drives the close, not the newest.
  EXPECT_TRUE(b.ready(5 * kMs));
  EXPECT_EQ(b.next_event(), 5 * kMs);
}

TEST(Batcher, SloDeadlineExpiresQueuedRequests) {
  Batcher b(batcher_options(4, 100 * kMs, 16));
  ASSERT_TRUE(admitted(b.admit(0, 0, /*deadline=*/10 * kMs)));
  ASSERT_TRUE(admitted(b.admit(1, 0, /*deadline=*/kNoDeadline)));
  ASSERT_TRUE(admitted(b.admit(2, 0, /*deadline=*/3 * kMs)));
  EXPECT_EQ(b.next_event(), 3 * kMs) << "earliest deadline wins over linger";
  std::vector<std::uint32_t> expired;
  EXPECT_EQ(b.expire(3 * kMs - 1, expired), 0u);
  EXPECT_EQ(b.expire(10 * kMs, expired), 2u) << "both due deadlines expire at once";
  EXPECT_EQ(expired, (std::vector<std::uint32_t>{0, 2})) << "FIFO order";
  std::vector<std::uint32_t> batch;
  EXPECT_EQ(b.pop(batch), 1u);
  EXPECT_EQ(batch.front(), 1u) << "expired tickets never reach a batch";
}

TEST(Batcher, CapacityBoundsAdmissions) {
  Batcher b(batcher_options(2, kMs, 3));
  EXPECT_TRUE(admitted(b.admit(0, 0)));
  EXPECT_TRUE(admitted(b.admit(1, 0)));
  EXPECT_TRUE(admitted(b.admit(2, 0)));
  EXPECT_FALSE(admitted(b.admit(3, 0))) << "queue at capacity";
  std::vector<std::uint32_t> batch;
  EXPECT_EQ(b.pop(batch), 2u) << "pop is bounded by max_batch, not capacity";
  EXPECT_TRUE(admitted(b.admit(3, 0))) << "capacity freed by the pop";
}

TEST(Batcher, FifoAcrossMultipleBatches) {
  Batcher b(batcher_options(3, kMs, 16));
  for (std::uint32_t t = 0; t < 8; ++t) ASSERT_TRUE(admitted(b.admit(t, t)));
  std::vector<std::uint32_t> batch;
  b.pop(batch);
  EXPECT_EQ(batch, (std::vector<std::uint32_t>{0, 1, 2}));
  batch.clear();
  b.pop(batch);
  EXPECT_EQ(batch, (std::vector<std::uint32_t>{3, 4, 5}));
  batch.clear();
  EXPECT_EQ(b.pop(batch), 2u);
  EXPECT_EQ(batch, (std::vector<std::uint32_t>{6, 7}));
}

TEST(Batcher, RejectsDegenerateOptions) {
  EXPECT_THROW(Batcher(batcher_options(0, kMs, 4)), std::invalid_argument);
  EXPECT_THROW(Batcher(batcher_options(4, kMs, 2)), std::invalid_argument);
  EXPECT_THROW(Batcher(batcher_options(2, -1, 4)), std::invalid_argument);
}

// --- ServerCore: slots + lifecycle -----------------------------------------

TEST(ServerCore, SlotLifecycleAndReuse) {
  ServerCore core(batcher_options(2, kMs, 4));
  float in[1] = {1.0f}, out[1] = {0.0f};
  const std::uint32_t t = core.submit(in, out, /*now=*/0);
  ASSERT_NE(t, ServerCore::kNoTicket);
  EXPECT_EQ(core.state(t), SlotState::kQueued);
  EXPECT_EQ(core.slot_input(t), in);
  EXPECT_EQ(core.slot_output(t), out);

  std::vector<std::uint32_t> batch;
  ASSERT_TRUE(core.ready(2 * kMs)) << "linger expired";
  EXPECT_EQ(core.close_batch(2 * kMs, batch), 1u);
  EXPECT_EQ(core.state(t), SlotState::kRunning);
  EXPECT_EQ(core.running(), 1u);
  core.complete(batch);
  EXPECT_EQ(core.state(t), SlotState::kDone);
  EXPECT_TRUE(core.idle());
  core.release(t);
  EXPECT_EQ(core.state(t), SlotState::kFree);

  EXPECT_EQ(core.submit(in, out, 0), t) << "released slot is reused";
  EXPECT_EQ(core.stats().submitted, 2u);
  EXPECT_EQ(core.stats().served, 1u);
  EXPECT_EQ(core.stats().closed_linger, 1u);
  EXPECT_EQ(core.stats().queue_ns_sum, static_cast<std::uint64_t>(2 * kMs));
}

TEST(ServerCore, QueueFullAndExpiryAreCountedSeparately) {
  ServerCore core(batcher_options(2, kMs, 2));
  float in[1], out[1];
  ASSERT_NE(core.submit(in, out, 0, /*deadline=*/5), ServerCore::kNoTicket);
  ASSERT_NE(core.submit(in, out, 0), ServerCore::kNoTicket);
  EXPECT_EQ(core.submit(in, out, 0), ServerCore::kNoTicket);
  EXPECT_EQ(core.stats().rejected_full, 1u);

  std::vector<std::uint32_t> expired;
  EXPECT_EQ(core.expire(10, expired), 1u);
  EXPECT_EQ(core.state(expired.front()), SlotState::kExpired);
  EXPECT_EQ(core.stats().rejected_expired, 1u);
  core.release(expired.front());
  EXPECT_NE(core.submit(in, out, 20), ServerCore::kNoTicket)
      << "expired slot is reusable after release";
}

TEST(ServerCore, DrainClosesPartialBatchesAndBlocksAdmission) {
  ServerCore core(batcher_options(4, 100 * kMs, 8));
  float in[1], out[1];
  ASSERT_NE(core.submit(in, out, 0), ServerCore::kNoTicket);
  EXPECT_FALSE(core.ready(0)) << "partial batch, linger pending";
  core.begin_drain();
  EXPECT_TRUE(core.ready(0)) << "drain closes partial batches immediately";
  EXPECT_EQ(core.submit(in, out, 0), ServerCore::kNoTicket);
  EXPECT_EQ(core.stats().submitted, 1u) << "drain-time submit is not an admission";
}

// --- ManualServer: the deterministic executor -------------------------------

/// Runner that records batch compositions and "serves" each request by
/// writing input[0] + 100 to its output.
struct RecordingRunner {
  std::vector<std::vector<std::uint32_t>> batches;

  ManualServer::BatchRunner fn() {
    return [this](std::span<const std::uint32_t> tickets, ServerCore& core) {
      batches.emplace_back(tickets.begin(), tickets.end());
      for (const std::uint32_t t : tickets) {
        core.slot_output(t)[0] = core.slot_input(t)[0] + 100.0f;
      }
    };
  }
};

TEST(ManualServer, FullBatchCloseServesAllRequests) {
  FakeClock clock;
  RecordingRunner runner;
  ManualServer server(batcher_options(3, 10 * kMs, 8), &clock, runner.fn());
  float in[4], out[4];
  std::uint32_t tickets[4];
  for (int i = 0; i < 4; ++i) {
    in[i] = static_cast<float>(i);
    tickets[i] = server.submit({&in[i], 1}, {&out[i], 1});
    ASSERT_NE(tickets[i], ServerCore::kNoTicket);
  }
  const ManualServer::StepOutcome o = server.step();
  EXPECT_TRUE(o.expired.empty());
  EXPECT_EQ(o.batch.size(), 3u) << "full batch closes; 4th request stays queued";
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server.state(tickets[i]), SlotState::kDone);
    EXPECT_EQ(out[i], in[i] + 100.0f);
  }
  EXPECT_EQ(server.state(tickets[3]), SlotState::kQueued);
  EXPECT_EQ(server.core().stats().closed_full, 1u);
}

TEST(ManualServer, LingerExpiryClosesPartialBatch) {
  FakeClock clock;
  RecordingRunner runner;
  ManualServer server(batcher_options(4, 5 * kMs, 8), &clock, runner.fn());
  float in[2] = {1.0f, 2.0f}, out[2] = {};
  server.submit({&in[0], 1}, {&out[0], 1});
  clock.advance(2 * kMs);
  server.submit({&in[1], 1}, {&out[1], 1});

  EXPECT_TRUE(server.step().batch.empty()) << "linger budget not exhausted";
  clock.advance(3 * kMs - 1);
  EXPECT_TRUE(server.step().batch.empty()) << "one tick early";
  clock.advance(1);
  const ManualServer::StepOutcome o = server.step();
  EXPECT_EQ(o.batch.size(), 2u) << "oldest request's linger expired; both ride";
  EXPECT_EQ(out[0], 101.0f);
  EXPECT_EQ(out[1], 102.0f);
  EXPECT_EQ(server.core().stats().closed_linger, 1u);
}

TEST(ManualServer, SloExpiredRequestsAreRejectedNotServed) {
  FakeClock clock;
  RecordingRunner runner;
  ManualServer server(batcher_options(4, 20 * kMs, 8), &clock, runner.fn());
  float in[3] = {1, 2, 3}, out[3] = {-1, -1, -1};
  const std::uint32_t t0 = server.submit({&in[0], 1}, {&out[0], 1}, /*slo=*/5 * kMs);
  const std::uint32_t t1 = server.submit({&in[1], 1}, {&out[1], 1} /* no SLO */);
  const std::uint32_t t2 = server.submit({&in[2], 1}, {&out[2], 1}, /*slo=*/8 * kMs);

  clock.advance(10 * kMs);
  const ManualServer::StepOutcome o = server.step();
  EXPECT_EQ(o.expired, (std::vector<std::uint32_t>{t0, t2}));
  EXPECT_EQ(server.state(t0), SlotState::kExpired);
  EXPECT_EQ(server.state(t2), SlotState::kExpired);
  EXPECT_EQ(out[0], -1.0f) << "an expired request's output is never written";
  EXPECT_EQ(out[2], -1.0f);

  clock.advance(10 * kMs);  // the survivor lingers out
  EXPECT_EQ(server.step().batch, (std::vector<std::uint32_t>{t1}));
  EXPECT_EQ(server.state(t1), SlotState::kDone);
  EXPECT_EQ(out[1], 102.0f);
  EXPECT_EQ(server.core().stats().rejected_expired, 2u);
}

TEST(ManualServer, ShutdownDrainsInFlightRequestsInOrder) {
  FakeClock clock;
  RecordingRunner runner;
  ManualServer server(batcher_options(4, 100 * kMs, 16), &clock, runner.fn());
  float in[10], out[10];
  std::uint32_t tickets[10];
  for (int i = 0; i < 10; ++i) {
    in[i] = static_cast<float>(i);
    tickets[i] = server.submit({&in[i], 1}, {&out[i], 1});
    ASSERT_NE(tickets[i], ServerCore::kNoTicket);
  }
  // Drain must serve everything queued — without waiting for linger — and
  // preserve FIFO batch order.
  server.drain();
  ASSERT_EQ(runner.batches.size(), 3u);
  EXPECT_EQ(runner.batches[0].size(), 4u);
  EXPECT_EQ(runner.batches[1].size(), 4u);
  EXPECT_EQ(runner.batches[2].size(), 2u) << "final partial batch closes in drain";
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(server.state(tickets[i]), SlotState::kDone);
    EXPECT_EQ(out[i], in[i] + 100.0f);
    server.release(tickets[i]);
  }
  std::vector<std::uint32_t> flat;
  for (const auto& b : runner.batches) flat.insert(flat.end(), b.begin(), b.end());
  EXPECT_EQ(flat, (std::vector<std::uint32_t>(tickets, tickets + 10))) << "FIFO";
  EXPECT_EQ(server.submit({&in[0], 1}, {&out[0], 1}), ServerCore::kNoTicket)
      << "drained server admits nothing";
}

// --- Differential: batched serving is bit-identical to serial run -----------
//
// The serving construction promises each client the *same bits* a dedicated
// batch-1 session would have produced. Two ingredients make this hold and
// both are pinned here: calibration must not depend on the batch dimension
// (single-image calibration replicated to the session batch + the
// LOWINO_CALIB_STRIDE=1 override, neutralizing the tile-count-dependent
// calibration stride), and every op must be per-image independent (so stale
// data in unused lanes of a partial batch cannot bleed into live lanes).

/// Mirrors BatchingServer::run_batch over a caller-owned batched session:
/// gather ticket inputs into lanes 0..n-1, run, scatter lanes back. Lanes
/// n.. keep whatever the previous batch left there — deliberately, to prove
/// stale lanes are harmless.
class SessionRunner {
 public:
  SessionRunner(InferenceSession& session, std::size_t max_batch, std::size_t in_elems)
      : session_(session), max_batch_(max_batch), in_elems_(in_elems) {
    in_.reshape({max_batch_, 1, 16, 16});
    std::fill(in_.data(), in_.data() + in_.size(), 0.0f);
    session_.run(in_, out_);
    out_elems_ = out_.size() / max_batch_;
  }

  std::size_t out_elems() const { return out_elems_; }

  ManualServer::BatchRunner fn() {
    return [this](std::span<const std::uint32_t> tickets, ServerCore& core) {
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        std::memcpy(in_.data() + i * in_elems_, core.slot_input(tickets[i]),
                    in_elems_ * sizeof(float));
      }
      session_.run(in_, out_);
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        std::memcpy(core.slot_output(tickets[i]), out_.data() + i * out_elems_,
                    out_elems_ * sizeof(float));
      }
    };
  }

 private:
  InferenceSession& session_;
  std::size_t max_batch_, in_elems_, out_elems_ = 0;
  Tensor<float> in_, out_;
};

void check_batched_vs_serial(SequentialModel&& model, const char* model_name) {
  // Pin the calibration tile stride: it depends on the *total* tile count,
  // which scales with batch — the one knob that would legitimately make a
  // batch-4 session quantize differently from a batch-1 session.
  ScopedRuntimeOverride calib_stride("LOWINO_CALIB_STRIDE", "1");
  ThreadPool& pool = ThreadPool::global();
  constexpr std::size_t kMaxBatch = 4, kHw = 16;
  const Tensor<float> calib1 = random_input(1, kHw, 4242);
  Tensor<float> calibB({kMaxBatch, 1, kHw, kHw});
  for (std::size_t b = 0; b < kMaxBatch; ++b) {
    std::memcpy(calibB.data() + b * calib1.size(), calib1.data(),
                calib1.size() * sizeof(float));
  }
  const std::size_t in_elems = calib1.size();

  for (const EngineKind kind : {EngineKind::kInt8Direct, EngineKind::kLoWinoF4}) {
    PlanOptions options;
    options.forced_engine = kind;
    options.pool = &pool;
    InferenceSession serial = InferenceSession::compile(model, calib1, options);
    InferenceSession batched = InferenceSession::compile(model, calibB, options);

    SessionRunner runner(batched, kMaxBatch, in_elems);
    FakeClock clock;
    ManualServer server(batcher_options(kMaxBatch, 10 * kMs, 16), &clock, runner.fn());

    std::uint64_t seed = 1;
    for (std::size_t k = 1; k <= kMaxBatch; ++k) {  // every batch size
      std::vector<Tensor<float>> inputs;
      std::vector<std::vector<float>> outputs(k);
      std::vector<std::uint32_t> tickets(k);
      for (std::size_t i = 0; i < k; ++i) {
        inputs.push_back(random_input(1, kHw, 1000 * seed++ + i));
        outputs[i].assign(runner.out_elems(), -1.0f);
        tickets[i] = server.submit(inputs[i].span(), outputs[i]);
        ASSERT_NE(tickets[i], ServerCore::kNoTicket);
      }
      clock.advance(10 * kMs);  // k < max closes via linger, k == max via full
      const ManualServer::StepOutcome o = server.step();
      ASSERT_EQ(o.batch.size(), k);

      Tensor<float> ref;
      for (std::size_t i = 0; i < k; ++i) {
        serial.run(inputs[i], ref);
        ASSERT_EQ(ref.size(), outputs[i].size());
        EXPECT_EQ(0, std::memcmp(outputs[i].data(), ref.data(),
                                 ref.size() * sizeof(float)))
            << model_name << " engine " << engine_token(kind) << " batch size " << k
            << " request " << i << ": batched bits differ from serial run";
        server.release(tickets[i]);
      }
    }
  }
}

TEST(ServerDifferential, BatchedBitIdenticalToSerialMiniVgg) {
  check_batched_vs_serial(make_minivgg(), "minivgg");
}

TEST(ServerDifferential, BatchedBitIdenticalToSerialMiniResNet) {
  check_batched_vs_serial(make_miniresnet(), "miniresnet");
}

// The threaded server end to end: concurrent clients, real clock, both
// workers replaying one plan — every response must still be bit-identical to
// the serial session, whatever batches the scheduler formed.
TEST(ServerDifferential, ThreadedServerMatchesSerialUnderConcurrency) {
  ScopedRuntimeOverride calib_stride("LOWINO_CALIB_STRIDE", "1");
  constexpr std::size_t kClients = 8, kPerClient = 4, kHw = 16;
  SequentialModel model = make_miniresnet();
  const Tensor<float> calib = random_input(1, kHw, 99);

  ThreadPool pool(1);
  PlanOptions serial_options;
  serial_options.forced_engine = EngineKind::kLoWinoF4;
  serial_options.pool = &pool;
  InferenceSession serial = InferenceSession::compile(model, calib, serial_options);

  // Precompute the serial reference bits for every request.
  std::vector<Tensor<float>> inputs;
  std::vector<std::vector<float>> refs;
  Tensor<float> ref_out;
  for (std::size_t i = 0; i < kClients * kPerClient; ++i) {
    inputs.push_back(random_input(1, kHw, 777 + i));
    serial.run(inputs.back(), ref_out);
    refs.emplace_back(ref_out.data(), ref_out.data() + ref_out.size());
  }

  ServerOptions options;
  options.max_batch = 4;
  options.linger_ns = kMs / 5;
  options.num_workers = 2;
  options.threads_per_worker = 1;
  options.plan.forced_engine = EngineKind::kLoWinoF4;
  BatchingServer server(model, calib, options);
  ASSERT_EQ(server.input_elems(), calib.size());
  ASSERT_EQ(server.output_elems(), refs.front().size());

  std::vector<int> mismatches(kClients, 0);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<float> out(server.output_elems());
      for (std::size_t r = 0; r < kPerClient; ++r) {
        const std::size_t i = c * kPerClient + r;
        const ServeResult res = server.serve(inputs[i].span(), out);
        if (res != ServeResult::kOk ||
            std::memcmp(out.data(), refs[i].data(), out.size() * sizeof(float)) != 0) {
          ++mismatches[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "client " << c;
  }

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.served, kClients * kPerClient);
  EXPECT_EQ(stats.rejected_full + stats.rejected_expired, 0u);
  EXPECT_GE(stats.batches, (kClients * kPerClient) / options.max_batch);
  EXPECT_EQ(stats.batched_requests, stats.served);
}

// --- BatchingServer lifecycle ----------------------------------------------

TEST(BatchingServer, StopDrainsAndRejectsThenRestarts) {
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(1, 16, 11);
  ServerOptions options;
  options.max_batch = 2;
  options.linger_ns = kMs;
  options.plan.forced_engine = EngineKind::kInt8Direct;
  BatchingServer server(model, calib, options);
  EXPECT_TRUE(server.running());

  std::vector<float> in(server.input_elems(), 0.5f), out(server.output_elems());
  EXPECT_EQ(server.serve(in, out), ServeResult::kOk);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.serve(in, out), ServeResult::kShutdown);
  server.stop();  // idempotent

  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.serve(in, out), ServeResult::kOk);
  EXPECT_EQ(server.stats().served, 2u);
}

TEST(BatchingServer, ServeValidatesSpanSizes) {
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(1, 16, 12);
  ServerOptions options;
  options.max_batch = 2;
  options.plan.forced_engine = EngineKind::kInt8Direct;
  BatchingServer server(model, calib, options);
  std::vector<float> in(server.input_elems() + 1), out(server.output_elems());
  EXPECT_THROW(server.serve(in, out), std::invalid_argument);
  std::vector<float> in2(server.input_elems()), out2(server.output_elems() - 1);
  EXPECT_THROW(server.serve(in2, out2), std::invalid_argument);
}

// --- Overload shedding -------------------------------------------------------

TEST(Batcher, ShedWatermarksEngageAndDisengageWithHysteresis) {
  BatcherOptions o = batcher_options(2, kMs, 8);
  o.shed_high = 4;
  o.shed_low = 2;
  Batcher b(o);
  for (std::uint32_t t = 0; t < 4; ++t) ASSERT_TRUE(admitted(b.admit(t, 0)));
  EXPECT_FALSE(b.shedding()) << "watermark reached, but not checked until an admit";
  EXPECT_EQ(b.admit(4, 0), Batcher::Admit::kShed) << "depth 4 >= shed_high engages";
  EXPECT_TRUE(b.shedding());
  EXPECT_EQ(b.admit(5, 0), Batcher::Admit::kShed) << "stays engaged above shed_low";

  std::vector<std::uint32_t> batch;
  EXPECT_EQ(b.pop(batch), 2u);  // depth 4 -> 2 == shed_low: disengage
  EXPECT_FALSE(b.shedding());
  EXPECT_TRUE(admitted(b.admit(6, 0))) << "hysteresis reopened the door";
}

TEST(Batcher, ShedLowDefaultsToHalfOfShedHigh) {
  BatcherOptions o = batcher_options(1, kMs, 8);
  o.shed_high = 4;  // shed_low derives 2
  Batcher b(o);
  for (std::uint32_t t = 0; t < 4; ++t) ASSERT_TRUE(admitted(b.admit(t, 0)));
  EXPECT_EQ(b.admit(9, 0), Batcher::Admit::kShed);
  std::vector<std::uint32_t> batch;
  b.pop(batch);  // depth 3 > derived shed_low
  EXPECT_TRUE(b.shedding());
  batch.clear();
  b.pop(batch);  // depth 2 == derived shed_low
  EXPECT_FALSE(b.shedding());
}

TEST(Batcher, RejectsDegenerateShedWatermarks) {
  BatcherOptions high = batcher_options(2, kMs, 8);
  high.shed_high = 9;  // > capacity
  EXPECT_THROW(Batcher{high}, std::invalid_argument);
  BatcherOptions inverted = batcher_options(2, kMs, 8);
  inverted.shed_high = 3;
  inverted.shed_low = 3;  // must be < shed_high
  EXPECT_THROW(Batcher{inverted}, std::invalid_argument);
}

TEST(ServerCore, ShedRejectionsAreCountedSeparately) {
  BatcherOptions o = batcher_options(2, kMs, 8);
  o.shed_high = 4;
  o.shed_low = 2;
  ServerCore core(o);
  float in[1], out[1];
  for (int i = 0; i < 4; ++i) ASSERT_NE(core.submit(in, out, 0), ServerCore::kNoTicket);
  EXPECT_EQ(core.submit(in, out, 0), ServerCore::kNoTicket);
  EXPECT_TRUE(core.shedding());
  EXPECT_EQ(core.stats().rejected_shed, 1u);
  EXPECT_EQ(core.stats().rejected_full, 0u) << "shed and full are distinct causes";
  std::vector<std::uint32_t> batch;
  core.close_batch(0, batch);  // depth 4 -> 2: disengages
  EXPECT_FALSE(core.shedding());
  EXPECT_NE(core.submit(in, out, 0), ServerCore::kNoTicket);
}

// --- Failure containment: slot transitions ----------------------------------

TEST(ServerCore, FailedSlotsCountAndRecycle) {
  ServerCore core(batcher_options(2, kMs, 4));
  float in[1] = {1}, out[1] = {0};
  const std::uint32_t t0 = core.submit(in, out, 0);
  const std::uint32_t t1 = core.submit(in, out, 0);
  std::vector<std::uint32_t> batch;
  ASSERT_EQ(core.close_batch(0, batch), 2u);

  core.fail(t0);
  core.complete_one(t1);
  EXPECT_EQ(core.state(t0), SlotState::kFailed);
  EXPECT_FALSE(core.failed_by_worker_loss(t0)) << "contained error, not abandonment";
  EXPECT_EQ(core.state(t1), SlotState::kDone);
  EXPECT_TRUE(core.idle());
  EXPECT_EQ(core.stats().failed, 1u);
  EXPECT_EQ(core.stats().served, 1u);

  core.release(t0);
  core.release(t1);
  EXPECT_NE(core.submit(in, out, 0), ServerCore::kNoTicket)
      << "a failed slot recycles like any other";
}

TEST(ServerCore, FleetLossFailsEveryQueuedRequest) {
  ServerCore core(batcher_options(4, 100 * kMs, 8));
  float in[1], out[1];
  std::uint32_t tickets[3];
  for (int i = 0; i < 3; ++i) {
    tickets[i] = core.submit(in, out, 0);
    ASSERT_NE(tickets[i], ServerCore::kNoTicket);
  }
  std::vector<std::uint32_t> failed;
  EXPECT_EQ(core.fail_all_queued(failed), 3u);
  EXPECT_EQ(failed, (std::vector<std::uint32_t>(tickets, tickets + 3))) << "FIFO";
  for (const std::uint32_t t : tickets) {
    EXPECT_EQ(core.state(t), SlotState::kFailed);
    EXPECT_TRUE(core.failed_by_worker_loss(t)) << "fleet loss, not a contained error";
    core.release(t);
  }
  EXPECT_EQ(core.stats().worker_lost, 3u);
  EXPECT_EQ(core.stats().failed, 0u);
  EXPECT_TRUE(core.idle());
}

// --- Failure containment: ManualServer retry isolation ----------------------

constexpr float kPoison = -666.0f;

/// Runner that throws whenever any request in the span carries the poison
/// marker; healthy requests serve input + 100 (RecordingRunner's contract).
ManualServer::BatchRunner poison_runner() {
  return [](std::span<const std::uint32_t> tickets, ServerCore& core) {
    for (const std::uint32_t t : tickets) {
      if (core.slot_input(t)[0] == kPoison) throw std::runtime_error("poisoned input");
    }
    for (const std::uint32_t t : tickets) {
      core.slot_output(t)[0] = core.slot_input(t)[0] + 100.0f;
    }
  };
}

TEST(ManualServer, PoisonedRequestIsIsolatedFromItsBatchmates) {
  FakeClock clock;
  ManualServer server(batcher_options(3, 10 * kMs, 8), &clock, poison_runner());
  float in[3] = {1.0f, kPoison, 3.0f}, out[3] = {-1, -1, -1};
  std::uint32_t tickets[3];
  for (int i = 0; i < 3; ++i) tickets[i] = server.submit({&in[i], 1}, {&out[i], 1});

  const ManualServer::StepOutcome o = server.step();
  ASSERT_EQ(o.batch.size(), 3u);
  EXPECT_EQ(o.failed, (std::vector<std::uint32_t>{tickets[1]}));
  EXPECT_EQ(server.state(tickets[0]), SlotState::kDone);
  EXPECT_EQ(server.state(tickets[1]), SlotState::kFailed);
  EXPECT_EQ(server.state(tickets[2]), SlotState::kDone);
  EXPECT_EQ(out[0], 101.0f);
  EXPECT_EQ(out[1], -1.0f) << "a failed request's output is never written";
  EXPECT_EQ(out[2], 103.0f);

  const ServeStats& stats = server.core().stats();
  EXPECT_EQ(stats.batch_failures, 1u);
  EXPECT_EQ(stats.retries, 3u) << "every member re-ran individually";
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.served, 2u);
}

TEST(ManualServer, TransientBatchFailureRecoversEveryMember) {
  FakeClock clock;
  int calls = 0;
  // Throws only on the very first invocation — a transient fault, gone by
  // retry time.
  ManualServer::BatchRunner runner = [&calls](std::span<const std::uint32_t> tickets,
                                              ServerCore& core) {
    if (calls++ == 0) throw std::runtime_error("transient");
    for (const std::uint32_t t : tickets) {
      core.slot_output(t)[0] = core.slot_input(t)[0] + 100.0f;
    }
  };
  ManualServer server(batcher_options(2, 10 * kMs, 8), &clock, std::move(runner));
  float in[2] = {1, 2}, out[2] = {-1, -1};
  std::uint32_t tickets[2];
  for (int i = 0; i < 2; ++i) tickets[i] = server.submit({&in[i], 1}, {&out[i], 1});

  const ManualServer::StepOutcome o = server.step();
  EXPECT_TRUE(o.failed.empty()) << "both retries succeeded";
  EXPECT_EQ(out[0], 101.0f);
  EXPECT_EQ(out[1], 102.0f);
  EXPECT_EQ(server.core().stats().batch_failures, 1u);
  EXPECT_EQ(server.core().stats().retries, 2u);
  EXPECT_EQ(server.core().stats().served, 2u);
  EXPECT_EQ(server.core().stats().failed, 0u);
}

// --- Deadline arithmetic at the epoch end (overflow regression) -------------

TEST(Batcher, LingerArithmeticSaturatesAtTheEpochEnd) {
  Batcher b(batcher_options(4, 10 * kMs, 8));
  const Nanos late = std::numeric_limits<Nanos>::max() - 1;
  ASSERT_TRUE(admitted(b.admit(0, late)));
  EXPECT_EQ(b.next_event(), kNoDeadline) << "linger expiry saturates, never wraps";
  EXPECT_FALSE(b.ready(late));
  std::vector<std::uint32_t> expired;
  EXPECT_EQ(b.expire(late, expired), 0u);
}

TEST(ManualServer, HugeSloSaturatesInsteadOfOverflowing) {
  // A clock near the epoch end plus a finite SLO must saturate to
  // kNoDeadline — a wrapped negative deadline would expire the request on
  // the spot.
  FakeClock clock(std::numeric_limits<Nanos>::max() - 2);
  RecordingRunner runner;
  ManualServer server(batcher_options(1, 10 * kMs, 4), &clock, runner.fn());
  float in[1] = {1.0f}, out[1] = {-1.0f};
  const std::uint32_t t = server.submit({in, 1}, {out, 1}, /*slo_ns=*/5 * kMs);
  ASSERT_NE(t, ServerCore::kNoTicket);
  const ManualServer::StepOutcome o = server.step();
  EXPECT_TRUE(o.expired.empty());
  ASSERT_EQ(o.batch.size(), 1u);
  EXPECT_EQ(server.state(t), SlotState::kDone);
  EXPECT_EQ(out[0], 101.0f);
}

TEST(BatchingServer, PlanIsSharedAcrossWorkers) {
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(1, 16, 13);
  ServerOptions options;
  options.max_batch = 2;
  options.num_workers = 2;
  options.plan.forced_engine = EngineKind::kLoWinoF2;
  BatchingServer server(model, calib, options);
  EXPECT_EQ(server.plan().batch, options.max_batch);
  for (const SessionPlan::ConvChoice& c : server.plan().convs) {
    EXPECT_EQ(c.engine, EngineKind::kLoWinoF2);
  }
  EXPECT_EQ(server.num_workers(), 2u);
}

// --- Fault injection end to end ---------------------------------------------
//
// The acceptance scenario: a seeded engine-execute fault is steered into one
// request of a full batch. That request — and only that request — must come
// back kFailed; its batchmates must receive bit-identical serial results from
// their isolation retries; the server must keep serving afterward; and the
// stats must count exactly one failure. Deterministic: ManualServer +
// ScopedFaultPlan::fail_calls, no threads, no clocks.

TEST(ServerFault, InjectedEngineFaultFailsOneRequestBatchmatesExact) {
  ScopedRuntimeOverride calib_stride("LOWINO_CALIB_STRIDE", "1");
  ThreadPool& pool = ThreadPool::global();
  constexpr std::size_t kMaxBatch = 4, kHw = 16;
  SequentialModel model = make_minivgg();
  const Tensor<float> calib1 = random_input(1, kHw, 31);
  Tensor<float> calibB({kMaxBatch, 1, kHw, kHw});
  for (std::size_t b = 0; b < kMaxBatch; ++b) {
    std::memcpy(calibB.data() + b * calib1.size(), calib1.data(),
                calib1.size() * sizeof(float));
  }

  PlanOptions options;
  options.forced_engine = EngineKind::kLoWinoF4;
  options.pool = &pool;
  InferenceSession serial = InferenceSession::compile(model, calib1, options);
  InferenceSession batched = InferenceSession::compile(model, calibB, options);

  SessionRunner runner(batched, kMaxBatch, calib1.size());
  FakeClock clock;
  ManualServer server(batcher_options(kMaxBatch, 10 * kMs, 16), &clock, runner.fn());

  // Serial reference bits + submissions, all with injection disabled.
  std::vector<Tensor<float>> inputs;
  std::vector<std::vector<float>> refs;
  std::vector<std::vector<float>> outputs(kMaxBatch);
  std::uint32_t tickets[kMaxBatch];
  Tensor<float> ref;
  for (std::size_t i = 0; i < kMaxBatch; ++i) {
    inputs.push_back(random_input(1, kHw, 500 + i));
    serial.run(inputs[i], ref);
    refs.emplace_back(ref.data(), ref.data() + ref.size());
    outputs[i].assign(ref.size(), -1.0f);
    tickets[i] = server.submit(inputs[i].span(), outputs[i]);
    ASSERT_NE(tickets[i], ServerCore::kNoTicket);
  }

  ScopedFaultPlan plan;
  serial.run(inputs[0], ref);  // probe: engine-execute checks per session run
  const std::uint64_t k = fault_checked_count(FaultSite::kEngineExecute);
  ASSERT_GT(k, 0u);
  // step() crosses engine-execute in order: batch attempt, then one
  // isolation retry per member. Failing check 0 sinks the batch attempt at
  // its first conv (consuming exactly one check — the aborted run never
  // reaches the rest). Member 0's retry then completes, consuming checks
  // 1..k; check k+1 is the first conv of member 1's retry. Failing it steers
  // the fault into request 1 and nothing else.
  plan.fail_calls(FaultSite::kEngineExecute, {0, k + 1});

  const ManualServer::StepOutcome o = server.step();
  ASSERT_EQ(o.batch.size(), kMaxBatch);
  EXPECT_EQ(o.failed, (std::vector<std::uint32_t>{tickets[1]}));
  EXPECT_EQ(server.state(tickets[1]), SlotState::kFailed);
  EXPECT_FALSE(server.core().failed_by_worker_loss(tickets[1]));
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}, std::size_t{3}}) {
    EXPECT_EQ(server.state(tickets[i]), SlotState::kDone);
    EXPECT_EQ(0, std::memcmp(outputs[i].data(), refs[i].data(),
                             refs[i].size() * sizeof(float)))
        << "batchmate " << i << " must get the exact serial bits from its retry";
  }
  for (const float v : outputs[1]) ASSERT_EQ(v, -1.0f) << "failed output untouched";

  const ServeStats& stats = server.core().stats();
  EXPECT_EQ(stats.failed, 1u) << "exactly one failure";
  EXPECT_EQ(stats.worker_lost, 0u);
  EXPECT_EQ(stats.batch_failures, 1u);
  EXPECT_EQ(stats.retries, kMaxBatch);
  EXPECT_EQ(stats.served, kMaxBatch - 1);
  for (std::size_t i = 0; i < kMaxBatch; ++i) server.release(tickets[i]);

  // The server keeps serving: with the armed calls spent, a fresh request
  // returns the exact serial bits.
  std::vector<float> after(refs[0].size(), -1.0f);
  const std::uint32_t t = server.submit(inputs[0].span(), after);
  ASSERT_NE(t, ServerCore::kNoTicket);
  clock.advance(10 * kMs);
  server.step();
  EXPECT_EQ(server.state(t), SlotState::kDone);
  EXPECT_EQ(0, std::memcmp(after.data(), refs[0].data(), refs[0].size() * sizeof(float)));
}

// --- Worker supervision (threaded, deterministic via budgeted fault plans) --

TEST(ServerFault, WorkerRebuildsItsSessionAfterRepeatedFailures) {
  ScopedRuntimeOverride calib_stride("LOWINO_CALIB_STRIDE", "1");
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(1, 16, 21);
  ServerOptions options;
  options.max_batch = 1;
  options.linger_ns = 0;
  options.num_workers = 1;
  options.plan.forced_engine = EngineKind::kInt8Direct;
  BatchingServer server(model, calib, options);
  std::vector<float> in(server.input_elems(), 0.25f);
  std::vector<float> ref(server.output_elems(), -1.0f);
  std::vector<float> out(server.output_elems(), -1.0f);
  ASSERT_EQ(server.serve(in, ref), ServeResult::kOk) << "healthy baseline";

  // Every aborted run consumes exactly one engine-execute check (the first
  // conv throws, the rest never execute). A batch-of-1 serve burns two: the
  // batch attempt and the lone member's retry. Budget 6 = three wholesale
  // failures — exactly the supervisor's rebuild threshold — after which the
  // budget is spent and the rebuild's pre-warm run succeeds.
  ScopedFaultPlan plan;
  plan.fail_next(FaultSite::kEngineExecute, 6);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server.serve(in, out), ServeResult::kFailed) << "serve " << i;
  }

  EXPECT_EQ(server.serve(in, out), ServeResult::kOk) << "rebuilt worker serves again";
  EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), ref.size() * sizeof(float)))
      << "the rebuilt session must produce the same bits as the original";
  const ServerHealth h = server.health();
  EXPECT_EQ(h.restarts, 1u);
  EXPECT_EQ(h.workers_live, 1u);
  EXPECT_FALSE(h.degraded());
  EXPECT_TRUE(h.accepting);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.failed, 3u);
  EXPECT_EQ(stats.batch_failures, 3u);
  EXPECT_EQ(stats.retries, 3u);
}

TEST(ServerFault, FleetLossDegradesCleanlyAndNeverHangs) {
  ScopedRuntimeOverride calib_stride("LOWINO_CALIB_STRIDE", "1");
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(1, 16, 22);
  ServerOptions options;
  options.max_batch = 1;
  options.linger_ns = 0;
  options.num_workers = 1;
  options.plan.forced_engine = EngineKind::kInt8Direct;
  BatchingServer server(model, calib, options);
  std::vector<float> in(server.input_elems(), 0.25f), out(server.output_elems());

  // Unlimited engine faults kill every run; unlimited worker-start faults
  // kill every rebuild attempt. Three failed serves trip the supervisor,
  // the rebuild exhausts its attempts, and the lone worker abandons —
  // taking the fleet with it.
  ScopedFaultPlan plan;
  plan.fail_rate(FaultSite::kEngineExecute, 1.0, /*seed=*/0);
  plan.fail_rate(FaultSite::kWorkerStart, 1.0, /*seed=*/0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server.serve(in, out), ServeResult::kFailed) << "serve " << i;
  }
  // Post-loss serves must resolve cleanly — kWorkerLost while the
  // abandonment races the submission, kShutdown once it lands — and the
  // degraded state must become visible. Bounded loop, no hang either way.
  ServeResult r = ServeResult::kOk;
  for (int i = 0; i < 1000 && r != ServeResult::kShutdown; ++i) {
    r = server.serve(in, out);
    ASSERT_TRUE(r == ServeResult::kWorkerLost || r == ServeResult::kShutdown)
        << serve_result_name(r);
  }
  EXPECT_EQ(r, ServeResult::kShutdown) << "a lost fleet stops accepting";

  const ServerHealth h = server.health();
  EXPECT_EQ(h.workers, 1u);
  EXPECT_EQ(h.workers_live, 0u);
  EXPECT_EQ(h.workers_lost, 1u);
  EXPECT_EQ(h.restarts, 0u);
  EXPECT_FALSE(h.accepting);
  EXPECT_TRUE(h.degraded());

  // start() retries the lost worker's session build: still sabotaged ->
  // throws; healed (plan destroyed below restores no-faults) -> serves.
  EXPECT_THROW(server.start(), std::runtime_error);
}

TEST(ServerFault, StartResurrectsLostWorkersOnceFaultsClear) {
  ScopedRuntimeOverride calib_stride("LOWINO_CALIB_STRIDE", "1");
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(1, 16, 23);
  ServerOptions options;
  options.max_batch = 1;
  options.linger_ns = 0;
  options.num_workers = 1;
  options.plan.forced_engine = EngineKind::kInt8Direct;
  BatchingServer server(model, calib, options);
  std::vector<float> in(server.input_elems(), 0.25f);
  std::vector<float> ref(server.output_elems(), -1.0f);
  std::vector<float> out(server.output_elems(), -2.0f);
  ASSERT_EQ(server.serve(in, ref), ServeResult::kOk);

  {
    ScopedFaultPlan plan;
    plan.fail_rate(FaultSite::kEngineExecute, 1.0, 0);
    plan.fail_rate(FaultSite::kWorkerStart, 1.0, 0);
    for (int i = 0; i < 3; ++i) ASSERT_EQ(server.serve(in, out), ServeResult::kFailed);
    while (server.health().workers_live != 0) std::this_thread::yield();
  }
  // Faults cleared: start() rebuilds the lost worker and serving resumes
  // with the original bits.
  server.start();
  const ServerHealth h = server.health();
  EXPECT_EQ(h.workers_live, 1u);
  EXPECT_EQ(h.restarts, 1u);
  EXPECT_TRUE(h.accepting);
  EXPECT_EQ(server.serve(in, out), ServeResult::kOk);
  EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), ref.size() * sizeof(float)));
}

}  // namespace
}  // namespace lowino

// Tests for the dynamic-batching serving front end (src/serve/server.h).
//
// The deterministic half drives the Batcher / ServerCore / ManualServer
// layers with an injected FakeClock — batch formation, linger expiry, SLO
// rejection, FIFO fairness and shutdown drain are exercised without threads
// or sleeps. The differential half is the serving-correctness contract:
// batched execution (including partial batches with stale lanes) must be
// bit-identical per request to a serial batch-1 session on the same inputs,
// across MiniVGG and MiniResNet and every batch size 1..max — first through
// the deterministic ManualServer, then through the real threaded
// BatchingServer under concurrent clients.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "nn/model_zoo.h"
#include "parallel/thread_pool.h"
#include "serve/server.h"
#include "serve/session.h"

namespace lowino {
namespace {

Tensor<float> random_input(std::size_t batch, std::size_t hw, std::uint64_t seed) {
  Tensor<float> t({batch, 1, hw, hw});
  Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = rng.uniform(-1.0f, 1.0f);
  return t;
}

constexpr Nanos kMs = 1000000;

BatcherOptions batcher_options(std::size_t max_batch, Nanos linger_ns,
                               std::size_t capacity) {
  BatcherOptions o;
  o.max_batch = max_batch;
  o.linger_ns = linger_ns;
  o.capacity = capacity;
  return o;
}

// --- Batcher: the pure policy ----------------------------------------------

TEST(Batcher, FullBatchClosesImmediately) {
  Batcher b(batcher_options(4, 10 * kMs, 16));
  for (std::uint32_t t = 0; t < 3; ++t) EXPECT_TRUE(b.admit(t, /*now=*/100));
  EXPECT_FALSE(b.ready(100)) << "3 of 4 queued, linger not expired";
  EXPECT_TRUE(b.admit(3, 100));
  EXPECT_TRUE(b.ready(100)) << "a full batch closes regardless of linger";
  std::vector<std::uint32_t> batch;
  EXPECT_EQ(b.pop(batch), 4u);
  EXPECT_EQ(batch, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(b.pending(), 0u);
}

TEST(Batcher, LingerDeadlineClosesPartialBatch) {
  Batcher b(batcher_options(4, 5 * kMs, 16));
  ASSERT_TRUE(b.admit(7, /*now=*/1000));
  EXPECT_FALSE(b.ready(1000));
  EXPECT_FALSE(b.ready(1000 + 5 * kMs - 1));
  EXPECT_TRUE(b.ready(1000 + 5 * kMs)) << "oldest request lingered out";
  std::vector<std::uint32_t> batch;
  EXPECT_EQ(b.pop(batch), 1u);
  EXPECT_EQ(batch.front(), 7u);
}

TEST(Batcher, LingerTracksOldestRequest) {
  Batcher b(batcher_options(4, 5 * kMs, 16));
  ASSERT_TRUE(b.admit(0, 0));
  ASSERT_TRUE(b.admit(1, 4 * kMs));
  // The *oldest* admission drives the close, not the newest.
  EXPECT_TRUE(b.ready(5 * kMs));
  EXPECT_EQ(b.next_event(), 5 * kMs);
}

TEST(Batcher, SloDeadlineExpiresQueuedRequests) {
  Batcher b(batcher_options(4, 100 * kMs, 16));
  ASSERT_TRUE(b.admit(0, 0, /*deadline=*/10 * kMs));
  ASSERT_TRUE(b.admit(1, 0, /*deadline=*/kNoDeadline));
  ASSERT_TRUE(b.admit(2, 0, /*deadline=*/3 * kMs));
  EXPECT_EQ(b.next_event(), 3 * kMs) << "earliest deadline wins over linger";
  std::vector<std::uint32_t> expired;
  EXPECT_EQ(b.expire(3 * kMs - 1, expired), 0u);
  EXPECT_EQ(b.expire(10 * kMs, expired), 2u) << "both due deadlines expire at once";
  EXPECT_EQ(expired, (std::vector<std::uint32_t>{0, 2})) << "FIFO order";
  std::vector<std::uint32_t> batch;
  EXPECT_EQ(b.pop(batch), 1u);
  EXPECT_EQ(batch.front(), 1u) << "expired tickets never reach a batch";
}

TEST(Batcher, CapacityBoundsAdmissions) {
  Batcher b(batcher_options(2, kMs, 3));
  EXPECT_TRUE(b.admit(0, 0));
  EXPECT_TRUE(b.admit(1, 0));
  EXPECT_TRUE(b.admit(2, 0));
  EXPECT_FALSE(b.admit(3, 0)) << "queue at capacity";
  std::vector<std::uint32_t> batch;
  EXPECT_EQ(b.pop(batch), 2u) << "pop is bounded by max_batch, not capacity";
  EXPECT_TRUE(b.admit(3, 0)) << "capacity freed by the pop";
}

TEST(Batcher, FifoAcrossMultipleBatches) {
  Batcher b(batcher_options(3, kMs, 16));
  for (std::uint32_t t = 0; t < 8; ++t) ASSERT_TRUE(b.admit(t, t));
  std::vector<std::uint32_t> batch;
  b.pop(batch);
  EXPECT_EQ(batch, (std::vector<std::uint32_t>{0, 1, 2}));
  batch.clear();
  b.pop(batch);
  EXPECT_EQ(batch, (std::vector<std::uint32_t>{3, 4, 5}));
  batch.clear();
  EXPECT_EQ(b.pop(batch), 2u);
  EXPECT_EQ(batch, (std::vector<std::uint32_t>{6, 7}));
}

TEST(Batcher, RejectsDegenerateOptions) {
  EXPECT_THROW(Batcher(batcher_options(0, kMs, 4)), std::invalid_argument);
  EXPECT_THROW(Batcher(batcher_options(4, kMs, 2)), std::invalid_argument);
  EXPECT_THROW(Batcher(batcher_options(2, -1, 4)), std::invalid_argument);
}

// --- ServerCore: slots + lifecycle -----------------------------------------

TEST(ServerCore, SlotLifecycleAndReuse) {
  ServerCore core(batcher_options(2, kMs, 4));
  float in[1] = {1.0f}, out[1] = {0.0f};
  const std::uint32_t t = core.submit(in, out, /*now=*/0);
  ASSERT_NE(t, ServerCore::kNoTicket);
  EXPECT_EQ(core.state(t), SlotState::kQueued);
  EXPECT_EQ(core.slot_input(t), in);
  EXPECT_EQ(core.slot_output(t), out);

  std::vector<std::uint32_t> batch;
  ASSERT_TRUE(core.ready(2 * kMs)) << "linger expired";
  EXPECT_EQ(core.close_batch(2 * kMs, batch), 1u);
  EXPECT_EQ(core.state(t), SlotState::kRunning);
  EXPECT_EQ(core.running(), 1u);
  core.complete(batch);
  EXPECT_EQ(core.state(t), SlotState::kDone);
  EXPECT_TRUE(core.idle());
  core.release(t);
  EXPECT_EQ(core.state(t), SlotState::kFree);

  EXPECT_EQ(core.submit(in, out, 0), t) << "released slot is reused";
  EXPECT_EQ(core.stats().submitted, 2u);
  EXPECT_EQ(core.stats().served, 1u);
  EXPECT_EQ(core.stats().closed_linger, 1u);
  EXPECT_EQ(core.stats().queue_ns_sum, static_cast<std::uint64_t>(2 * kMs));
}

TEST(ServerCore, QueueFullAndExpiryAreCountedSeparately) {
  ServerCore core(batcher_options(2, kMs, 2));
  float in[1], out[1];
  ASSERT_NE(core.submit(in, out, 0, /*deadline=*/5), ServerCore::kNoTicket);
  ASSERT_NE(core.submit(in, out, 0), ServerCore::kNoTicket);
  EXPECT_EQ(core.submit(in, out, 0), ServerCore::kNoTicket);
  EXPECT_EQ(core.stats().rejected_full, 1u);

  std::vector<std::uint32_t> expired;
  EXPECT_EQ(core.expire(10, expired), 1u);
  EXPECT_EQ(core.state(expired.front()), SlotState::kExpired);
  EXPECT_EQ(core.stats().rejected_expired, 1u);
  core.release(expired.front());
  EXPECT_NE(core.submit(in, out, 20), ServerCore::kNoTicket)
      << "expired slot is reusable after release";
}

TEST(ServerCore, DrainClosesPartialBatchesAndBlocksAdmission) {
  ServerCore core(batcher_options(4, 100 * kMs, 8));
  float in[1], out[1];
  ASSERT_NE(core.submit(in, out, 0), ServerCore::kNoTicket);
  EXPECT_FALSE(core.ready(0)) << "partial batch, linger pending";
  core.begin_drain();
  EXPECT_TRUE(core.ready(0)) << "drain closes partial batches immediately";
  EXPECT_EQ(core.submit(in, out, 0), ServerCore::kNoTicket);
  EXPECT_EQ(core.stats().submitted, 1u) << "drain-time submit is not an admission";
}

// --- ManualServer: the deterministic executor -------------------------------

/// Runner that records batch compositions and "serves" each request by
/// writing input[0] + 100 to its output.
struct RecordingRunner {
  std::vector<std::vector<std::uint32_t>> batches;

  ManualServer::BatchRunner fn() {
    return [this](std::span<const std::uint32_t> tickets, ServerCore& core) {
      batches.emplace_back(tickets.begin(), tickets.end());
      for (const std::uint32_t t : tickets) {
        core.slot_output(t)[0] = core.slot_input(t)[0] + 100.0f;
      }
    };
  }
};

TEST(ManualServer, FullBatchCloseServesAllRequests) {
  FakeClock clock;
  RecordingRunner runner;
  ManualServer server(batcher_options(3, 10 * kMs, 8), &clock, runner.fn());
  float in[4], out[4];
  std::uint32_t tickets[4];
  for (int i = 0; i < 4; ++i) {
    in[i] = static_cast<float>(i);
    tickets[i] = server.submit({&in[i], 1}, {&out[i], 1});
    ASSERT_NE(tickets[i], ServerCore::kNoTicket);
  }
  const ManualServer::StepOutcome o = server.step();
  EXPECT_TRUE(o.expired.empty());
  EXPECT_EQ(o.batch.size(), 3u) << "full batch closes; 4th request stays queued";
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(server.state(tickets[i]), SlotState::kDone);
    EXPECT_EQ(out[i], in[i] + 100.0f);
  }
  EXPECT_EQ(server.state(tickets[3]), SlotState::kQueued);
  EXPECT_EQ(server.core().stats().closed_full, 1u);
}

TEST(ManualServer, LingerExpiryClosesPartialBatch) {
  FakeClock clock;
  RecordingRunner runner;
  ManualServer server(batcher_options(4, 5 * kMs, 8), &clock, runner.fn());
  float in[2] = {1.0f, 2.0f}, out[2] = {};
  server.submit({&in[0], 1}, {&out[0], 1});
  clock.advance(2 * kMs);
  server.submit({&in[1], 1}, {&out[1], 1});

  EXPECT_TRUE(server.step().batch.empty()) << "linger budget not exhausted";
  clock.advance(3 * kMs - 1);
  EXPECT_TRUE(server.step().batch.empty()) << "one tick early";
  clock.advance(1);
  const ManualServer::StepOutcome o = server.step();
  EXPECT_EQ(o.batch.size(), 2u) << "oldest request's linger expired; both ride";
  EXPECT_EQ(out[0], 101.0f);
  EXPECT_EQ(out[1], 102.0f);
  EXPECT_EQ(server.core().stats().closed_linger, 1u);
}

TEST(ManualServer, SloExpiredRequestsAreRejectedNotServed) {
  FakeClock clock;
  RecordingRunner runner;
  ManualServer server(batcher_options(4, 20 * kMs, 8), &clock, runner.fn());
  float in[3] = {1, 2, 3}, out[3] = {-1, -1, -1};
  const std::uint32_t t0 = server.submit({&in[0], 1}, {&out[0], 1}, /*slo=*/5 * kMs);
  const std::uint32_t t1 = server.submit({&in[1], 1}, {&out[1], 1} /* no SLO */);
  const std::uint32_t t2 = server.submit({&in[2], 1}, {&out[2], 1}, /*slo=*/8 * kMs);

  clock.advance(10 * kMs);
  const ManualServer::StepOutcome o = server.step();
  EXPECT_EQ(o.expired, (std::vector<std::uint32_t>{t0, t2}));
  EXPECT_EQ(server.state(t0), SlotState::kExpired);
  EXPECT_EQ(server.state(t2), SlotState::kExpired);
  EXPECT_EQ(out[0], -1.0f) << "an expired request's output is never written";
  EXPECT_EQ(out[2], -1.0f);

  clock.advance(10 * kMs);  // the survivor lingers out
  EXPECT_EQ(server.step().batch, (std::vector<std::uint32_t>{t1}));
  EXPECT_EQ(server.state(t1), SlotState::kDone);
  EXPECT_EQ(out[1], 102.0f);
  EXPECT_EQ(server.core().stats().rejected_expired, 2u);
}

TEST(ManualServer, ShutdownDrainsInFlightRequestsInOrder) {
  FakeClock clock;
  RecordingRunner runner;
  ManualServer server(batcher_options(4, 100 * kMs, 16), &clock, runner.fn());
  float in[10], out[10];
  std::uint32_t tickets[10];
  for (int i = 0; i < 10; ++i) {
    in[i] = static_cast<float>(i);
    tickets[i] = server.submit({&in[i], 1}, {&out[i], 1});
    ASSERT_NE(tickets[i], ServerCore::kNoTicket);
  }
  // Drain must serve everything queued — without waiting for linger — and
  // preserve FIFO batch order.
  server.drain();
  ASSERT_EQ(runner.batches.size(), 3u);
  EXPECT_EQ(runner.batches[0].size(), 4u);
  EXPECT_EQ(runner.batches[1].size(), 4u);
  EXPECT_EQ(runner.batches[2].size(), 2u) << "final partial batch closes in drain";
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(server.state(tickets[i]), SlotState::kDone);
    EXPECT_EQ(out[i], in[i] + 100.0f);
    server.release(tickets[i]);
  }
  std::vector<std::uint32_t> flat;
  for (const auto& b : runner.batches) flat.insert(flat.end(), b.begin(), b.end());
  EXPECT_EQ(flat, (std::vector<std::uint32_t>(tickets, tickets + 10))) << "FIFO";
  EXPECT_EQ(server.submit({&in[0], 1}, {&out[0], 1}), ServerCore::kNoTicket)
      << "drained server admits nothing";
}

// --- Differential: batched serving is bit-identical to serial run -----------
//
// The serving construction promises each client the *same bits* a dedicated
// batch-1 session would have produced. Two ingredients make this hold and
// both are pinned here: calibration must not depend on the batch dimension
// (single-image calibration replicated to the session batch + the
// LOWINO_CALIB_STRIDE=1 override, neutralizing the tile-count-dependent
// calibration stride), and every op must be per-image independent (so stale
// data in unused lanes of a partial batch cannot bleed into live lanes).

/// Mirrors BatchingServer::run_batch over a caller-owned batched session:
/// gather ticket inputs into lanes 0..n-1, run, scatter lanes back. Lanes
/// n.. keep whatever the previous batch left there — deliberately, to prove
/// stale lanes are harmless.
class SessionRunner {
 public:
  SessionRunner(InferenceSession& session, std::size_t max_batch, std::size_t in_elems)
      : session_(session), max_batch_(max_batch), in_elems_(in_elems) {
    in_.reshape({max_batch_, 1, 16, 16});
    std::fill(in_.data(), in_.data() + in_.size(), 0.0f);
    session_.run(in_, out_);
    out_elems_ = out_.size() / max_batch_;
  }

  std::size_t out_elems() const { return out_elems_; }

  ManualServer::BatchRunner fn() {
    return [this](std::span<const std::uint32_t> tickets, ServerCore& core) {
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        std::memcpy(in_.data() + i * in_elems_, core.slot_input(tickets[i]),
                    in_elems_ * sizeof(float));
      }
      session_.run(in_, out_);
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        std::memcpy(core.slot_output(tickets[i]), out_.data() + i * out_elems_,
                    out_elems_ * sizeof(float));
      }
    };
  }

 private:
  InferenceSession& session_;
  std::size_t max_batch_, in_elems_, out_elems_ = 0;
  Tensor<float> in_, out_;
};

void check_batched_vs_serial(SequentialModel&& model, const char* model_name) {
  // Pin the calibration tile stride: it depends on the *total* tile count,
  // which scales with batch — the one knob that would legitimately make a
  // batch-4 session quantize differently from a batch-1 session.
  ScopedRuntimeOverride calib_stride("LOWINO_CALIB_STRIDE", "1");
  ThreadPool& pool = ThreadPool::global();
  constexpr std::size_t kMaxBatch = 4, kHw = 16;
  const Tensor<float> calib1 = random_input(1, kHw, 4242);
  Tensor<float> calibB({kMaxBatch, 1, kHw, kHw});
  for (std::size_t b = 0; b < kMaxBatch; ++b) {
    std::memcpy(calibB.data() + b * calib1.size(), calib1.data(),
                calib1.size() * sizeof(float));
  }
  const std::size_t in_elems = calib1.size();

  for (const EngineKind kind : {EngineKind::kInt8Direct, EngineKind::kLoWinoF4}) {
    PlanOptions options;
    options.forced_engine = kind;
    options.pool = &pool;
    InferenceSession serial = InferenceSession::compile(model, calib1, options);
    InferenceSession batched = InferenceSession::compile(model, calibB, options);

    SessionRunner runner(batched, kMaxBatch, in_elems);
    FakeClock clock;
    ManualServer server(batcher_options(kMaxBatch, 10 * kMs, 16), &clock, runner.fn());

    std::uint64_t seed = 1;
    for (std::size_t k = 1; k <= kMaxBatch; ++k) {  // every batch size
      std::vector<Tensor<float>> inputs;
      std::vector<std::vector<float>> outputs(k);
      std::vector<std::uint32_t> tickets(k);
      for (std::size_t i = 0; i < k; ++i) {
        inputs.push_back(random_input(1, kHw, 1000 * seed++ + i));
        outputs[i].assign(runner.out_elems(), -1.0f);
        tickets[i] = server.submit(inputs[i].span(), outputs[i]);
        ASSERT_NE(tickets[i], ServerCore::kNoTicket);
      }
      clock.advance(10 * kMs);  // k < max closes via linger, k == max via full
      const ManualServer::StepOutcome o = server.step();
      ASSERT_EQ(o.batch.size(), k);

      Tensor<float> ref;
      for (std::size_t i = 0; i < k; ++i) {
        serial.run(inputs[i], ref);
        ASSERT_EQ(ref.size(), outputs[i].size());
        EXPECT_EQ(0, std::memcmp(outputs[i].data(), ref.data(),
                                 ref.size() * sizeof(float)))
            << model_name << " engine " << engine_token(kind) << " batch size " << k
            << " request " << i << ": batched bits differ from serial run";
        server.release(tickets[i]);
      }
    }
  }
}

TEST(ServerDifferential, BatchedBitIdenticalToSerialMiniVgg) {
  check_batched_vs_serial(make_minivgg(), "minivgg");
}

TEST(ServerDifferential, BatchedBitIdenticalToSerialMiniResNet) {
  check_batched_vs_serial(make_miniresnet(), "miniresnet");
}

// The threaded server end to end: concurrent clients, real clock, both
// workers replaying one plan — every response must still be bit-identical to
// the serial session, whatever batches the scheduler formed.
TEST(ServerDifferential, ThreadedServerMatchesSerialUnderConcurrency) {
  ScopedRuntimeOverride calib_stride("LOWINO_CALIB_STRIDE", "1");
  constexpr std::size_t kClients = 8, kPerClient = 4, kHw = 16;
  SequentialModel model = make_miniresnet();
  const Tensor<float> calib = random_input(1, kHw, 99);

  ThreadPool pool(1);
  PlanOptions serial_options;
  serial_options.forced_engine = EngineKind::kLoWinoF4;
  serial_options.pool = &pool;
  InferenceSession serial = InferenceSession::compile(model, calib, serial_options);

  // Precompute the serial reference bits for every request.
  std::vector<Tensor<float>> inputs;
  std::vector<std::vector<float>> refs;
  Tensor<float> ref_out;
  for (std::size_t i = 0; i < kClients * kPerClient; ++i) {
    inputs.push_back(random_input(1, kHw, 777 + i));
    serial.run(inputs.back(), ref_out);
    refs.emplace_back(ref_out.data(), ref_out.data() + ref_out.size());
  }

  ServerOptions options;
  options.max_batch = 4;
  options.linger_ns = kMs / 5;
  options.num_workers = 2;
  options.threads_per_worker = 1;
  options.plan.forced_engine = EngineKind::kLoWinoF4;
  BatchingServer server(model, calib, options);
  ASSERT_EQ(server.input_elems(), calib.size());
  ASSERT_EQ(server.output_elems(), refs.front().size());

  std::vector<int> mismatches(kClients, 0);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<float> out(server.output_elems());
      for (std::size_t r = 0; r < kPerClient; ++r) {
        const std::size_t i = c * kPerClient + r;
        const ServeResult res = server.serve(inputs[i].span(), out);
        if (res != ServeResult::kOk ||
            std::memcmp(out.data(), refs[i].data(), out.size() * sizeof(float)) != 0) {
          ++mismatches[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t c = 0; c < kClients; ++c) {
    EXPECT_EQ(mismatches[c], 0) << "client " << c;
  }

  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.served, kClients * kPerClient);
  EXPECT_EQ(stats.rejected_full + stats.rejected_expired, 0u);
  EXPECT_GE(stats.batches, (kClients * kPerClient) / options.max_batch);
  EXPECT_EQ(stats.batched_requests, stats.served);
}

// --- BatchingServer lifecycle ----------------------------------------------

TEST(BatchingServer, StopDrainsAndRejectsThenRestarts) {
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(1, 16, 11);
  ServerOptions options;
  options.max_batch = 2;
  options.linger_ns = kMs;
  options.plan.forced_engine = EngineKind::kInt8Direct;
  BatchingServer server(model, calib, options);
  EXPECT_TRUE(server.running());

  std::vector<float> in(server.input_elems(), 0.5f), out(server.output_elems());
  EXPECT_EQ(server.serve(in, out), ServeResult::kOk);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.serve(in, out), ServeResult::kShutdown);
  server.stop();  // idempotent

  server.start();
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.serve(in, out), ServeResult::kOk);
  EXPECT_EQ(server.stats().served, 2u);
}

TEST(BatchingServer, ServeValidatesSpanSizes) {
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(1, 16, 12);
  ServerOptions options;
  options.max_batch = 2;
  options.plan.forced_engine = EngineKind::kInt8Direct;
  BatchingServer server(model, calib, options);
  std::vector<float> in(server.input_elems() + 1), out(server.output_elems());
  EXPECT_THROW(server.serve(in, out), std::invalid_argument);
  std::vector<float> in2(server.input_elems()), out2(server.output_elems() - 1);
  EXPECT_THROW(server.serve(in2, out2), std::invalid_argument);
}

TEST(BatchingServer, PlanIsSharedAcrossWorkers) {
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(1, 16, 13);
  ServerOptions options;
  options.max_batch = 2;
  options.num_workers = 2;
  options.plan.forced_engine = EngineKind::kLoWinoF2;
  BatchingServer server(model, calib, options);
  EXPECT_EQ(server.plan().batch, options.max_batch);
  for (const SessionPlan::ConvChoice& c : server.plan().convs) {
    EXPECT_EQ(c.engine, EngineKind::kLoWinoF2);
  }
  EXPECT_EQ(server.num_workers(), 2u);
}

}  // namespace
}  // namespace lowino

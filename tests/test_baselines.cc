// Tests for the baseline engines and the paper's accuracy-ordering claims:
// up-casting ~ accurate, down-scaling F(2,3) slightly lossy, down-scaling
// F(4,4) catastrophically lossy, LoWino accurate at both tile sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "baselines/downscale_wino.h"
#include "baselines/fp32_wino.h"
#include "baselines/upcast_wino.h"
#include "baselines/vendor_wino.h"
#include "common/rng.h"
#include "direct/direct_f32.h"
#include "direct/direct_int8.h"
#include "lowino/lowino.h"
#include "quant/quantize.h"

namespace lowino {
namespace {

ConvDesc make_desc(std::size_t b, std::size_t c, std::size_t k, std::size_t hw) {
  ConvDesc d;
  d.batch = b;
  d.in_channels = c;
  d.out_channels = k;
  d.height = d.width = hw;
  d.kernel = 3;
  d.pad = 1;
  return d;
}

struct Problem {
  std::vector<float> input, weights, bias, ref;
};

Problem make_problem(const ConvDesc& desc, unsigned seed) {
  Problem p;
  Rng rng(seed);
  p.input.resize(desc.batch * desc.in_channels * desc.height * desc.width);
  p.weights.resize(desc.out_channels * desc.in_channels * 9);
  p.bias.resize(desc.out_channels);
  for (auto& v : p.input) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : p.weights) v = rng.normal() * 0.1f;
  for (auto& v : p.bias) v = rng.uniform(-0.2f, 0.2f);
  p.ref.resize(desc.batch * desc.out_channels * desc.out_height() * desc.out_width());
  direct_conv_f32_reference(desc, p.input, p.weights, p.bias, p.ref);
  return p;
}

template <typename Engine>
double snr_of(Engine& engine, const Problem& p, ThreadPool* pool = nullptr) {
  std::vector<float> out(p.ref.size());
  engine.execute_nchw(p.input, out, pool);
  return quantization_error(p.ref, out).signal_to_noise_db;
}

// --- FP32 Winograd ----------------------------------------------------------
class Fp32WinoShapes : public ::testing::TestWithParam<int> {};

TEST_P(Fp32WinoShapes, MatchesReferenceClosely) {
  const int m = GetParam();
  const ConvDesc d = make_desc(1, 64, 64, 12);
  Problem p = make_problem(d, 50 + m);
  Fp32WinoConv conv(d, m);
  conv.set_filters(p.weights, p.bias);
  // FP32 Winograd only has transform round-off: tens of dB better than INT8.
  EXPECT_GT(snr_of(conv, p), 90.0) << "m=" << m;
}

INSTANTIATE_TEST_SUITE_P(TileSizes, Fp32WinoShapes, ::testing::Values(2, 4, 6));

TEST(Fp32Wino, OddShapesAndChannels) {
  const ConvDesc d = make_desc(2, 100, 80, 9);
  Problem p = make_problem(d, 55);
  Fp32WinoConv conv(d, 4);
  conv.set_filters(p.weights, p.bias);
  EXPECT_GT(snr_of(conv, p), 90.0);
}

TEST(Fp32Wino, ParallelMatchesSerial) {
  ThreadPool pool(4);
  const ConvDesc d = make_desc(1, 64, 64, 10);
  Problem p = make_problem(d, 56);
  Fp32WinoConv conv(d, 4);
  conv.set_filters(p.weights, p.bias);
  std::vector<float> a(p.ref.size()), b(p.ref.size());
  conv.execute_nchw(p.input, a);
  conv.execute_nchw(p.input, b, &pool);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

// --- Up-casting (ncnn-style) -------------------------------------------------
TEST(UpcastWino, AccurateAtF23) {
  const ConvDesc d = make_desc(1, 64, 64, 12);
  Problem p = make_problem(d, 60);
  UpcastWinoConv conv(d);
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  // No post-transform rounding: accuracy ~ spatial INT8 quantization only.
  EXPECT_GT(snr_of(conv, p), 25.0);
}

TEST(UpcastWino, MatchesInt8DirectAccuracyClass) {
  // Up-casting's whole point: same accuracy class as non-Winograd INT8.
  const ConvDesc d = make_desc(1, 64, 64, 10);
  Problem p = make_problem(d, 61);
  UpcastWinoConv up(d);
  up.set_input_threshold(abs_max(p.input));
  up.set_filters(p.weights, p.bias);
  Int8DirectConv direct(d);
  direct.set_input_threshold(abs_max(p.input));
  direct.set_filters(p.weights, p.bias);
  const double snr_up = snr_of(up, p);
  std::vector<float> out(p.ref.size());
  direct.execute_nchw(p.input, out);
  const double snr_direct = quantization_error(p.ref, out).signal_to_noise_db;
  EXPECT_GT(snr_up, snr_direct - 6.0);
}

TEST(UpcastWino, ParallelMatchesSerial) {
  ThreadPool pool(3);
  const ConvDesc d = make_desc(1, 64, 64, 8);
  Problem p = make_problem(d, 62);
  UpcastWinoConv conv(d);
  conv.set_input_threshold(1.0f);
  conv.set_filters(p.weights, p.bias);
  std::vector<float> a(p.ref.size()), b(p.ref.size());
  conv.execute_nchw(p.input, a);
  conv.execute_nchw(p.input, b, &pool);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

// --- Down-scaling (oneDNN-style) ---------------------------------------------
TEST(DownscaleWino, F23ModeratelyLossy) {
  const ConvDesc d = make_desc(1, 64, 64, 12);
  Problem p = make_problem(d, 70);
  DownscaleWinoConv conv(d, 2);
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  const double snr = snr_of(conv, p);
  EXPECT_GT(snr, 10.0);  // usable...
  EXPECT_LT(snr, 30.0);  // ...but clearly worse than LoWino F(2,3)
}

TEST(DownscaleWino, F43Collapses) {
  // Section 5.2: "the down-scaling approach with F(4x4,3x3) drops the model
  // accuracy to zero". Per layer that shows as near-zero SNR.
  const ConvDesc d = make_desc(1, 64, 64, 12);
  Problem p = make_problem(d, 71);
  DownscaleWinoConv conv(d, 4);
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  EXPECT_LT(snr_of(conv, p), 8.0);
  EXPECT_FLOAT_EQ(conv.down_scale_factor(), 0.01f);  // the paper's 1/100
}

TEST(DownscaleWino, F23FactorIsQuarter) {
  const ConvDesc d = make_desc(1, 64, 64, 8);
  DownscaleWinoConv conv(d, 2);
  EXPECT_FLOAT_EQ(conv.down_scale_factor(), 0.25f);  // the paper's 1/4
}

TEST(AccuracyOrdering, PaperTable3Shape) {
  // The central accuracy claim, per layer:
  //   LoWino F(2,3) > downscale F(2,3), LoWino F(4,4) >> downscale F(4,4).
  const ConvDesc d = make_desc(1, 64, 64, 16);
  Problem p = make_problem(d, 72);

  auto lowino_snr = [&](std::size_t m) {
    LoWinoConfig cfg;
    cfg.m = m;
    LoWinoConvolution conv(d, cfg);
    conv.calibrate(p.input);
    conv.finalize_calibration();
    conv.set_filters(p.weights, p.bias);
    std::vector<float> out(p.ref.size());
    conv.execute_nchw(p.input, out);
    return quantization_error(p.ref, out).signal_to_noise_db;
  };
  auto downscale_snr = [&](std::size_t m) {
    DownscaleWinoConv conv(d, m);
    conv.calibrate(p.input);
    conv.finalize_calibration();
    conv.set_filters(p.weights, p.bias);
    return snr_of(conv, p);
  };

  const double lw2 = lowino_snr(2), lw4 = lowino_snr(4);
  const double ds2 = downscale_snr(2), ds4 = downscale_snr(4);
  EXPECT_GT(lw2, ds2 + 3.0) << "LoWino F(2,3) must beat down-scaling F(2,3)";
  EXPECT_GT(lw4, ds4 + 10.0) << "LoWino F(4,4) must crush down-scaling F(4,4)";
  EXPECT_LT(ds4, 8.0) << "down-scaling F(4,4) must collapse";
  EXPECT_GT(lw4, 14.0) << "LoWino F(4,4) must stay usable";
}

// --- Fused vendor-style engine ----------------------------------------------
TEST(VendorWino, MatchesDownscaleAccuracyClass) {
  // Same quantization scheme as DownscaleWinoConv — only the execution
  // schedule differs — so the results must be numerically similar.
  const ConvDesc d = make_desc(1, 64, 64, 12);
  Problem p = make_problem(d, 80);
  VendorWinoF23 vendor(d);
  vendor.set_input_threshold(abs_max(p.input));
  vendor.set_filters(p.weights, p.bias);
  DownscaleWinoConv ds(d, 2);
  ds.set_input_threshold(abs_max(p.input));
  ds.set_filters(p.weights, p.bias);
  const double snr_vendor = snr_of(vendor, p);
  const double snr_ds = snr_of(ds, p);
  EXPECT_NEAR(snr_vendor, snr_ds, 3.0);
}

TEST(VendorWino, StripSizeRespondsToCacheBudget) {
  const ConvDesc d = make_desc(1, 256, 256, 32);
  VendorWinoF23 small(d, 64 * 1024);
  VendorWinoF23 large(d, 1024 * 1024);
  EXPECT_LT(small.strip_tiles(), large.strip_tiles());
  EXPECT_GE(small.strip_tiles(), 1u);
}

TEST(VendorWino, ParallelMatchesSerial) {
  ThreadPool pool(4);
  const ConvDesc d = make_desc(1, 64, 64, 14);
  Problem p = make_problem(d, 81);
  VendorWinoF23 conv(d);
  conv.set_input_threshold(1.0f);
  conv.set_filters(p.weights, p.bias);
  std::vector<float> a(p.ref.size()), b(p.ref.size());
  conv.execute_nchw(p.input, a);
  conv.execute_nchw(p.input, b, &pool);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(VendorWino, StageTimesPopulated) {
  const ConvDesc d = make_desc(1, 64, 64, 12);
  Problem p = make_problem(d, 82);
  VendorWinoF23 conv(d);
  conv.set_input_threshold(1.0f);
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(p.input, out);
  EXPECT_GT(conv.stage_times().input_transform, 0.0);
  EXPECT_GT(conv.stage_times().gemm, 0.0);
}

}  // namespace
}  // namespace lowino

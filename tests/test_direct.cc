// Tests for the direct convolution engines (FP32 reference, im2col FP32,
// INT8 direct).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "direct/direct_f32.h"
#include "direct/direct_int8.h"
#include "parallel/thread_pool.h"
#include "quant/quantize.h"

namespace lowino {
namespace {

ConvDesc make_desc(std::size_t b, std::size_t c, std::size_t k, std::size_t hw,
                   std::size_t r = 3, std::size_t pad = 1) {
  ConvDesc d;
  d.batch = b;
  d.in_channels = c;
  d.out_channels = k;
  d.height = d.width = hw;
  d.kernel = r;
  d.pad = pad;
  return d;
}

struct Problem {
  std::vector<float> input, weights, bias, ref;
  ConvDesc desc;
};

Problem make_problem(const ConvDesc& desc, unsigned seed, bool relu = false) {
  Problem p;
  p.desc = desc;
  Rng rng(seed);
  p.input.resize(desc.batch * desc.in_channels * desc.height * desc.width);
  p.weights.resize(desc.out_channels * desc.in_channels * desc.kernel * desc.kernel);
  p.bias.resize(desc.out_channels);
  for (auto& v : p.input) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : p.weights) v = rng.uniform(-0.5f, 0.5f);
  for (auto& v : p.bias) v = rng.uniform(-0.2f, 0.2f);
  p.ref.resize(desc.batch * desc.out_channels * desc.out_height() * desc.out_width());
  direct_conv_f32_reference(desc, p.input, p.weights, p.bias, p.ref, relu);
  return p;
}

TEST(DirectF32Reference, HandChecked1x1x3x3) {
  // One channel, one filter, 3x3 input, 3x3 kernel, pad 1: center output is
  // the full dot product.
  ConvDesc d = make_desc(1, 1, 1, 3);
  std::vector<float> in = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<float> w = {0, 0, 0, 0, 1, 0, 0, 0, 0};  // identity kernel
  std::vector<float> out(9);
  direct_conv_f32_reference(d, in, w, {}, out);
  for (int i = 0; i < 9; ++i) EXPECT_FLOAT_EQ(out[i], in[i]);
}

TEST(DirectF32Reference, PaddingZeros) {
  ConvDesc d = make_desc(1, 1, 1, 2);
  std::vector<float> in = {1, 1, 1, 1};
  std::vector<float> w(9, 1.0f);  // sum kernel
  std::vector<float> out(4);
  direct_conv_f32_reference(d, in, w, {}, out);
  // each output = sum of in-bounds neighbors = 4 for all (2x2 image).
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out[i], 4.0f);
}

TEST(DirectF32Reference, ReluClamps) {
  ConvDesc d = make_desc(1, 1, 1, 2, 3, 1);
  std::vector<float> in = {1, 1, 1, 1};
  std::vector<float> w(9, -1.0f);
  std::vector<float> out(4);
  direct_conv_f32_reference(d, in, w, {}, out, /*relu=*/true);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(out[i], 0.0f);
}

TEST(DirectF32Reference, ParallelMatchesSerial) {
  ThreadPool pool(4);
  const ConvDesc d = make_desc(2, 5, 7, 9);
  Problem p = make_problem(d, 42);
  std::vector<float> out(p.ref.size());
  direct_conv_f32_reference(d, p.input, p.weights, p.bias, out, false, &pool);
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], p.ref[i]);
}

class Im2colShapes : public ::testing::TestWithParam<ConvDesc> {};

TEST_P(Im2colShapes, MatchesReference) {
  const ConvDesc d = GetParam();
  Problem p = make_problem(d, 7);
  Im2colConvF32 conv(d);
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(p.input, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_NEAR(out[i], p.ref[i], 1e-3f) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Im2colShapes,
                         ::testing::Values(make_desc(1, 1, 1, 4), make_desc(1, 3, 5, 8),
                                           make_desc(2, 16, 16, 7),
                                           make_desc(1, 64, 64, 14),
                                           make_desc(1, 8, 8, 5, 3, 0),   // no padding
                                           make_desc(1, 4, 4, 9, 5, 2),   // 5x5 kernel
                                           make_desc(3, 2, 17, 6)));

TEST(Im2colConv, FusedReluMatchesReference) {
  const ConvDesc d = make_desc(1, 8, 8, 6);
  Problem p = make_problem(d, 19, /*relu=*/true);
  Im2colConvF32 conv(d);
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(p.input, out, nullptr, PostOps{.relu = true});
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_NEAR(out[i], p.ref[i], 1e-3f);
}

class Int8DirectShapes : public ::testing::TestWithParam<ConvDesc> {};

TEST_P(Int8DirectShapes, CloseToFp32Reference) {
  const ConvDesc d = GetParam();
  Problem p = make_problem(d, 21);
  Int8DirectConv conv(d);
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(p.input, out);
  const QuantError e = quantization_error(p.ref, out);
  EXPECT_GT(e.signal_to_noise_db, 25.0) << "INT8 direct conv too inaccurate";
}

INSTANTIATE_TEST_SUITE_P(Shapes, Int8DirectShapes,
                         ::testing::Values(make_desc(1, 16, 16, 8), make_desc(1, 64, 64, 14),
                                           make_desc(2, 32, 48, 7), make_desc(1, 3, 8, 10),
                                           make_desc(1, 64, 128, 7, 3, 1)));

TEST(Int8Direct, SetThresholdBypassesCalibration) {
  const ConvDesc d = make_desc(1, 8, 8, 6);
  Problem p = make_problem(d, 30);
  Int8DirectConv conv(d);
  conv.set_input_threshold(abs_max(p.input));
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(p.input, out);
  EXPECT_GT(quantization_error(p.ref, out).signal_to_noise_db, 25.0);
}

TEST(Int8Direct, ZeroInputGivesBias) {
  const ConvDesc d = make_desc(1, 8, 4, 4);
  Problem p = make_problem(d, 31);
  std::vector<float> zeros(p.input.size(), 0.0f);
  Int8DirectConv conv(d);
  conv.set_input_threshold(1.0f);
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(zeros, out);
  const std::size_t hw = d.out_height() * d.out_width();
  for (std::size_t k = 0; k < d.out_channels; ++k) {
    for (std::size_t i = 0; i < hw; ++i) {
      ASSERT_NEAR(out[k * hw + i], p.bias[k], 1e-5f);
    }
  }
}

TEST(Int8Direct, ParallelMatchesSerial) {
  ThreadPool pool(4);
  const ConvDesc d = make_desc(1, 32, 32, 10);
  Problem p = make_problem(d, 33);
  Int8DirectConv conv(d);
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  std::vector<float> serial(p.ref.size()), parallel(p.ref.size());
  conv.execute_nchw(p.input, serial);
  conv.execute_nchw(p.input, parallel, &pool);
  for (std::size_t i = 0; i < serial.size(); ++i) ASSERT_EQ(serial[i], parallel[i]);
}

}  // namespace
}  // namespace lowino

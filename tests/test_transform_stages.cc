// Deep unit tests of the three transform stages against independent
// references: fused input transform + quantization, filter transform + pack +
// compensation, and de-quantizing output transform.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/saturate.h"
#include "lowino/convolution.h"
#include "lowino/filter_pack.h"
#include "lowino/input_transform.h"
#include "lowino/output_transform.h"
#include "lowino/scales.h"
#include "lowino/transform_kernels.h"
#include "quant/quantize.h"
#include "tensor/pack.h"
#include "winograd/transform.h"

namespace lowino {
namespace {

ConvDesc make_desc(std::size_t c, std::size_t k, std::size_t hw, std::size_t batch = 1,
                   std::size_t pad = 1) {
  ConvDesc d;
  d.batch = batch;
  d.in_channels = c;
  d.out_channels = k;
  d.height = d.width = hw;
  d.kernel = 3;
  d.pad = pad;
  return d;
}

// --- transform_tile_fp32 vs an independent scalar B^T d B ------------------
class TileTransform : public ::testing::TestWithParam<int> {};

TEST_P(TileTransform, MatchesScalarBtDb) {
  const int m = GetParam();
  const ConvDesc d = make_desc(64, 64, 9);
  const WinogradGeometry geo(d, m);
  const TransformMatrices& tm = winograd_transform(m, 3);
  const CodeletPlan bt = CodeletPlan::build(tm.BT.data(), geo.alpha, geo.alpha);
  const BlockedActLayout layout(d.batch, d.in_channels, d.height, d.width);

  Rng rng(m * 7);
  std::vector<float> nchw(d.batch * d.in_channels * d.height * d.width);
  for (auto& v : nchw) v = rng.uniform(-1.0f, 1.0f);
  AlignedBuffer<float> blocked(layout.size());
  pack_nchw_to_blocked(nchw, d.batch, d.in_channels, d.height, d.width, blocked.span());

  const InputTransformContext ctx{&d, &geo, &bt, layout, TransformedInputLayout{}, false};
  AlignedBuffer<float> got(geo.t_elems * kChanBlock);

  // Check tiles including the padded borders.
  for (std::size_t tile : {std::size_t{0}, geo.tiles_w - 1, geo.tiles_per_image - 1}) {
    transform_tile_fp32(ctx, blocked.span(), tile, 0, got.data());
    const std::size_t th = (tile % geo.tiles_per_image) / geo.tiles_w;
    const std::size_t tw = tile % geo.tiles_w;
    for (std::size_t chan : {std::size_t{0}, std::size_t{17}, std::size_t{63}}) {
      // Gather d with zero padding.
      const std::size_t a = geo.alpha;
      std::vector<double> dt(a * a, 0.0);
      for (std::size_t i = 0; i < a; ++i) {
        for (std::size_t j = 0; j < a; ++j) {
          const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(th * geo.m + i) - 1;
          const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(tw * geo.m + j) - 1;
          if (ih >= 0 && iw >= 0 && ih < 9 && iw < 9) {
            dt[i * a + j] = nchw[(chan * 9 + ih) * 9 + iw];
          }
        }
      }
      // V = B^T d B, scalar.
      std::vector<double> w(a * a, 0.0), v(a * a, 0.0);
      for (std::size_t i = 0; i < a; ++i) {
        for (std::size_t j = 0; j < a; ++j) {
          for (std::size_t l = 0; l < a; ++l) w[i * a + j] += tm.bt(i, l) * dt[l * a + j];
        }
      }
      for (std::size_t i = 0; i < a; ++i) {
        for (std::size_t j = 0; j < a; ++j) {
          for (std::size_t l = 0; l < a; ++l) v[i * a + j] += w[i * a + l] * tm.bt(j, l);
        }
      }
      for (std::size_t t = 0; t < geo.t_elems; ++t) {
        ASSERT_NEAR(got[t * kChanBlock + chan], v[t], 1e-3)
            << "m=" << m << " tile=" << tile << " chan=" << chan << " t=" << t;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TileSizes, TileTransform, ::testing::Values(2, 4, 6));

// --- quantized input transform vs fp32 transform + scalar quantization -----
TEST(InputTransformQuantized, MatchesScalarQuantizationOfFp32Path) {
  const ConvDesc d = make_desc(64, 64, 8, 2);
  const WinogradGeometry geo(d, 4);
  const TransformMatrices& tm = canonical_f43();
  const CodeletPlan bt = CodeletPlan::build(tm.BT.data(), geo.alpha, geo.alpha);
  const BlockedActLayout in_layout(d.batch, d.in_channels, d.height, d.width);
  const TransformedInputLayout vl(geo.total_tiles, 64, geo.t_elems, 12, 64);

  Rng rng(3);
  std::vector<float> nchw(d.batch * 64 * 64);
  for (auto& v : nchw) v = rng.uniform(-2.0f, 2.0f);
  AlignedBuffer<float> blocked(in_layout.size());
  pack_nchw_to_blocked(nchw, d.batch, 64, 8, 8, blocked.span());

  WinogradScales scales(geo.t_elems, true, 64, false);
  for (std::size_t t = 0; t < geo.t_elems; ++t) {
    scales.set_input_scale(t, QuantParams::from_threshold(8.0f + static_cast<float>(t)));
  }

  const InputTransformContext ctx{&d, &geo, &bt, in_layout, vl, true};
  AlignedBuffer<std::uint8_t> v(vl.size());
  v.fill_zero();
  run_input_transform(ctx, blocked.span(), scales, v.data());

  AlignedBuffer<float> fp32(geo.t_elems * kChanBlock);
  for (std::size_t tile = 0; tile < geo.total_tiles; ++tile) {
    transform_tile_fp32(ctx, blocked.span(), tile, 0, fp32.data());
    for (std::size_t t = 0; t < geo.t_elems; ++t) {
      for (std::size_t c = 0; c < kChanBlock; ++c) {
        const float x = fp32[t * kChanBlock + c] * scales.input_scale(t);
        const std::int32_t q = round_nearest_even(x) + 128;
        const std::uint8_t want =
            static_cast<std::uint8_t>(std::clamp(q, 0, 255));
        ASSERT_EQ(v[vl.offset(tile, t, c)], want) << tile << " " << t << " " << c;
      }
    }
  }
}

// --- filter pack vs reference_transformed_filter ----------------------------
TEST(FilterPack, PackedValuesMatchReferenceTransform) {
  const ConvDesc d = make_desc(64, 64, 8);
  const WinogradGeometry geo(d, 4);
  const TransformMatrices& tm = canonical_f43();
  Rng rng(5);
  std::vector<float> weights(64 * 64 * 9);
  for (auto& v : weights) v = rng.normal() * 0.2f;

  LoWinoConfig cfg;
  cfg.m = 4;
  cfg.blocking = adapt_blocking(cfg.blocking, 64, 64);
  const PackedFilterLayout fl(64, 64, geo.t_elems, cfg.blocking.c_blk, cfg.blocking.k_blk);
  WinogradScales scales(geo.t_elems, true, fl.k_blocks * fl.k_blk, true);
  PackedFilters packed;
  transform_and_pack_filters(d, geo, tm, cfg, weights, {}, scales, packed);

  for (std::size_t t : {std::size_t{0}, std::size_t{7}, std::size_t{35}}) {
    for (std::size_t c : {std::size_t{0}, std::size_t{13}}) {
      for (std::size_t k : {std::size_t{0}, std::size_t{63}}) {
        const double u = reference_transformed_filter(tm, weights, 64, k, c, t);
        const float scale = scales.filter_scale(t, k);
        const std::int8_t want = saturate_cast_i8(static_cast<float>(u) * scale);
        ASSERT_EQ(packed.data[packed.layout.offset(t, c, k)], want)
            << t << " " << c << " " << k;
      }
    }
  }
}

TEST(FilterPack, CompensationIsMinus128TimesColumnSum) {
  const ConvDesc d = make_desc(64, 64, 8);
  const WinogradGeometry geo(d, 2);
  Rng rng(6);
  std::vector<float> weights(64 * 64 * 9);
  for (auto& v : weights) v = rng.normal() * 0.2f;
  LoWinoConfig cfg;
  cfg.m = 2;
  cfg.blocking = adapt_blocking(cfg.blocking, 64, 64);
  WinogradScales scales(geo.t_elems, true, 64, true);
  PackedFilters packed;
  transform_and_pack_filters(d, geo, canonical_f23(), cfg, weights, {}, scales, packed);

  for (std::size_t t = 0; t < geo.t_elems; ++t) {
    for (std::size_t k = 0; k < 64; ++k) {
      std::int32_t want = 0;
      for (std::size_t c = 0; c < 64; ++c) {
        want -= 128 * static_cast<std::int32_t>(packed.data[packed.layout.offset(t, c, k)]);
      }
      ASSERT_EQ(packed.comp[t * packed.k_padded + k], want) << t << " " << k;
    }
  }
}

TEST(FilterPack, ExactScalesNeverSaturate) {
  // Per-(t,k) scales are computed from the exact abs-max, so no packed value
  // may sit outside [-127, 127] except by the +-127 boundary itself.
  const ConvDesc d = make_desc(64, 64, 8);
  const WinogradGeometry geo(d, 4);
  Rng rng(8);
  std::vector<float> weights(64 * 64 * 9);
  for (auto& v : weights) v = rng.normal();
  LoWinoConfig cfg;
  cfg.m = 4;
  cfg.blocking = adapt_blocking(cfg.blocking, 64, 64);
  const PackedFilterLayout fl(64, 64, geo.t_elems, cfg.blocking.c_blk, cfg.blocking.k_blk);
  WinogradScales scales(geo.t_elems, true, fl.k_blocks * fl.k_blk, true);
  PackedFilters packed;
  transform_and_pack_filters(d, geo, canonical_f43(), cfg, weights, {}, scales, packed);
  for (std::size_t i = 0; i < packed.data.size(); ++i) {
    ASSERT_GE(static_cast<int>(packed.data[i]), -127);
  }
}

// --- output transform vs scalar A^T Z A --------------------------------------
TEST(OutputTransform, MatchesScalarDequantAndSandwich) {
  const ConvDesc d = make_desc(64, 64, 8);
  const WinogradGeometry geo(d, 2);
  const TransformMatrices& tm = canonical_f23();
  const CodeletPlan at = CodeletPlan::build(tm.AT.data(), geo.m, geo.alpha);
  const std::size_t n_pad = round_up_multiple(geo.total_tiles, 12);
  const TransformedOutputLayout zl(64, n_pad, geo.t_elems);
  const BlockedActLayout out_layout(1, 64, 8, 8);

  Rng rng(9);
  AlignedBuffer<std::int32_t> z(zl.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = static_cast<std::int32_t>(rng.next_below(20001)) - 10000;
  }
  WinogradScales scales(geo.t_elems, true, 64, true);
  for (std::size_t t = 0; t < geo.t_elems; ++t) {
    scales.set_input_scale(t, QuantParams::from_scale(3.0f + static_cast<float>(t)));
    for (std::size_t k = 0; k < 64; ++k) {
      scales.set_filter_scale(t, k, QuantParams::from_scale(1.0f + 0.01f * k));
    }
  }
  scales.build_dequant_table();
  std::vector<float> bias(64);
  for (auto& b : bias) b = rng.uniform(-1.0f, 1.0f);

  AlignedBuffer<float> out(out_layout.size());
  const OutputTransformContext ctx{&d, &geo, &at, zl, out_layout, bias.data(), false};
  run_output_transform(ctx, z.data(), scales, out.span());

  // Scalar check for a handful of (tile, k) pairs.
  const std::size_t a = geo.alpha;
  for (std::size_t tile : {std::size_t{0}, geo.total_tiles - 1}) {
    const std::size_t th = tile / geo.tiles_w, tw = tile % geo.tiles_w;
    for (std::size_t k : {std::size_t{0}, std::size_t{31}, std::size_t{63}}) {
      std::vector<double> zf(a * a);
      for (std::size_t t = 0; t < geo.t_elems; ++t) {
        zf[t] = static_cast<double>(z[zl.offset(tile, t, k)]) *
                scales.dequant_table()[t * 64 + k];
      }
      for (std::size_t i = 0; i < geo.m; ++i) {
        for (std::size_t j = 0; j < geo.m; ++j) {
          double y = 0.0;
          for (std::size_t p = 0; p < a; ++p) {
            for (std::size_t q = 0; q < a; ++q) {
              y += tm.at(i, p) * zf[p * a + q] * tm.at(j, q);
            }
          }
          y += bias[k];
          const std::size_t oh = th * geo.m + i, ow = tw * geo.m + j;
          if (oh >= 8 || ow >= 8) continue;
          const float got =
              out[out_layout.offset(0, k / kChanBlock, oh, ow) + (k % kChanBlock)];
          ASSERT_NEAR(got, y, std::abs(y) * 1e-4 + 1e-2) << tile << " " << k;
        }
      }
    }
  }
}

TEST(OutputTransform, ReluClampsNegativeOutputs) {
  const ConvDesc d = make_desc(64, 64, 4);
  const WinogradGeometry geo(d, 2);
  const TransformMatrices& tm = canonical_f23();
  const CodeletPlan at = CodeletPlan::build(tm.AT.data(), geo.m, geo.alpha);
  const std::size_t n_pad = round_up_multiple(geo.total_tiles, 12);
  const TransformedOutputLayout zl(64, n_pad, geo.t_elems);
  const BlockedActLayout out_layout(1, 64, 4, 4);
  Rng rng(10);
  AlignedBuffer<std::int32_t> z(zl.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = static_cast<std::int32_t>(rng.next_below(2001)) - 1000;
  }
  WinogradScales scales(geo.t_elems, true, 64, false);
  for (std::size_t t = 0; t < geo.t_elems; ++t) {
    scales.set_input_scale(t, QuantParams::from_scale(1.0f));
    scales.set_filter_scale(t, 0, QuantParams::from_scale(1.0f));
  }
  scales.build_dequant_table();
  AlignedBuffer<float> out(out_layout.size());
  OutputTransformContext ctx{&d, &geo, &at, zl, out_layout, nullptr, true};
  run_output_transform(ctx, z.data(), scales, out.span());
  for (std::size_t i = 0; i < out.size(); ++i) ASSERT_GE(out[i], 0.0f);
}

// --- kernel helpers -----------------------------------------------------------
TEST(TransformKernels, HandCodeletsMatchPlanExecutor) {
  Rng rng(21);
  for (const auto& [m, get_tm] :
       {std::pair<std::size_t, const TransformMatrices& (*)()>{2, &canonical_f23},
        std::pair<std::size_t, const TransformMatrices& (*)()>{4, &canonical_f43}}) {
    const TransformMatrices& tm = get_tm();
    const std::size_t a = tm.alpha;
    std::vector<float> in(a * 16), got(a * 16), want(a * 16);
    for (auto& v : in) v = rng.uniform(-10.0f, 10.0f);

    const CodeletPlan bt_plan = CodeletPlan::build(tm.BT.data(), a, a);
    if (apply_bt_16(m, 3, in.data(), 16, got.data(), 16)) {
      apply_plan_16(bt_plan, in.data(), 16, want.data(), 16);
      for (std::size_t i = 0; i < a * 16; ++i) {
        ASSERT_NEAR(got[i], want[i], 1e-3f) << "BT m=" << m << " i=" << i;
      }
    }
    const CodeletPlan at_plan = CodeletPlan::build(tm.AT.data(), tm.m, a);
    if (apply_at_16(m, 3, in.data(), 16, got.data(), 16)) {
      apply_plan_16(at_plan, in.data(), 16, want.data(), 16);
      for (std::size_t i = 0; i < tm.m * 16; ++i) {
        ASSERT_NEAR(got[i], want[i], 1e-3f) << "AT m=" << m << " i=" << i;
      }
    }
  }
}

TEST(TransformKernels, HandCodeletsDeclineUnsupportedSizes) {
  std::vector<float> in(10 * 16, 0.0f), out(10 * 16, 0.0f);
  EXPECT_FALSE(apply_bt_16(6, 3, in.data(), 16, out.data(), 16));
  EXPECT_FALSE(apply_bt_16(2, 5, in.data(), 16, out.data(), 16));
  EXPECT_FALSE(apply_at_16(3, 3, in.data(), 16, out.data(), 16));
}

TEST(TransformKernels, Quantize16MatchesScalar) {
  Rng rng(11);
  float src[16];
  std::uint8_t got[16];
  for (int trial = 0; trial < 50; ++trial) {
    const float scale = rng.uniform(0.01f, 100.0f);
    for (auto& v : src) v = rng.uniform(-300.0f, 300.0f);
    quantize16_u8(src, scale, got);
    for (int l = 0; l < 16; ++l) {
      const std::int32_t q = round_nearest_even(src[l] * scale) + 128;
      ASSERT_EQ(got[l], static_cast<std::uint8_t>(std::clamp(q, 0, 255)));
    }
  }
}

TEST(TransformKernels, Dequant16MatchesScalar) {
  Rng rng(12);
  std::int32_t src[16];
  float dq[16], got[16];
  for (int l = 0; l < 16; ++l) {
    src[l] = static_cast<std::int32_t>(rng.next_below(100000)) - 50000;
    dq[l] = rng.uniform(0.0001f, 2.0f);
  }
  dequant16(src, dq, got);
  for (int l = 0; l < 16; ++l) {
    ASSERT_FLOAT_EQ(got[l], static_cast<float>(src[l]) * dq[l]);
  }
}

TEST(TransformKernels, StreamStore64BothModes) {
  alignas(64) std::uint8_t src[64], dst_nt[64], dst_reg[64];
  for (int i = 0; i < 64; ++i) src[i] = static_cast<std::uint8_t>(i * 3);
  stream_store_64(dst_nt, src, true);
  stream_store_64(dst_reg, src, false);
  stream_fence();
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(dst_nt[i], src[i]);
    ASSERT_EQ(dst_reg[i], src[i]);
  }
}

}  // namespace
}  // namespace lowino

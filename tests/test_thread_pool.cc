// Tests for the fork-join thread pool and static scheduling.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "parallel/thread_pool.h"

namespace lowino {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::size_t calls = 0;
  pool.run([&](std::size_t tid, std::size_t nw) {
    EXPECT_EQ(tid, 0u);
    EXPECT_EQ(nw, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, AllWorkersInvokedOncePerRun) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(4);
  pool.run([&](std::size_t tid, std::size_t nw) {
    EXPECT_EQ(nw, 4u);
    counts[tid].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, RepeatedRunsDoNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int i = 0; i < 200; ++i) {
    pool.run([&](std::size_t, std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 600);
}

TEST(ThreadPool, ParallelForSumsCorrectly) {
  ThreadPool pool(4);
  const std::size_t n = 10001;
  std::vector<int> marks(n, 0);
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) marks[i] += 1;
  });
  EXPECT_EQ(std::accumulate(marks.begin(), marks.end(), 0), static_cast<int>(n));
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, OversubscriptionWorks) {
  // More workers than cores must still complete (correctness under
  // oversubscription matters on the single-core CI machine).
  ThreadPool pool(16);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(1 << 14, [&](std::size_t begin, std::size_t end) {
    std::size_t local = 0;
    for (std::size_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local);
  });
  const std::size_t n = 1 << 14;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> x{0};
  ThreadPool::global().parallel_for(100, [&](std::size_t begin, std::size_t end) {
    x.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(x.load(), 100);
}

// --- Exception propagation contract ----------------------------------------
TEST(ThreadPool, ExceptionOnSpawnedWorkerPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.run([&](std::size_t tid, std::size_t) {
                 if (tid == 2) throw std::runtime_error("worker 2 failed");
               }),
               std::runtime_error);
  // The pool must survive: workers alive, next region completes normally.
  std::atomic<int> ok{0};
  pool.run([&](std::size_t, std::size_t) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, ExceptionOnCallingThreadStillJoinsRegion) {
  ThreadPool pool(4);
  std::atomic<int> others{0};
  try {
    pool.run([&](std::size_t tid, std::size_t) {
      if (tid == 0) throw std::logic_error("caller failed");
      others.fetch_add(1);
    });
    FAIL() << "expected the caller-side exception to propagate";
  } catch (const std::logic_error& e) {
    EXPECT_EQ(std::string(e.what()), "caller failed");
  }
  // All other workers completed before the rethrow (full join).
  EXPECT_EQ(others.load(), 3);
}

TEST(ThreadPool, EveryWorkerThrowingPropagatesExactlyOne) {
  ThreadPool pool(3);
  for (int round = 0; round < 10; ++round) {
    EXPECT_THROW(
        pool.run([&](std::size_t, std::size_t) { throw std::runtime_error("boom"); }),
        std::runtime_error);
  }
  std::atomic<int> ok{0};
  pool.parallel_for(100, [&](std::size_t b, std::size_t e) {
    ok.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(ok.load(), 100);
}

TEST(ThreadPool, SingleThreadExceptionPropagatesInline) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.run([](std::size_t, std::size_t) { throw std::runtime_error("x"); }),
               std::runtime_error);
  bool ran = false;
  pool.run([&](std::size_t, std::size_t) { ran = true; });
  EXPECT_TRUE(ran);
}

// --- Re-entrancy contract ---------------------------------------------------
TEST(ThreadPool, ReentrantRunExecutesInlineSerially) {
  ThreadPool pool(4);
  std::atomic<int> outer{0}, inner{0};
  pool.run([&](std::size_t, std::size_t nw) {
    EXPECT_EQ(nw, 4u);
    outer.fetch_add(1);
    // A nested region on the same pool must not deadlock; it runs inline as
    // a serial single-worker region.
    pool.run([&](std::size_t tid, std::size_t nested_nw) {
      EXPECT_EQ(tid, 0u);
      EXPECT_EQ(nested_nw, 1u);
      inner.fetch_add(1);
    });
  });
  EXPECT_EQ(outer.load(), 4);
  EXPECT_EQ(inner.load(), 4);
}

TEST(ThreadPool, ReentrantParallelForCoversFullRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> marks(300);
  pool.run([&](std::size_t, std::size_t) {
    pool.parallel_for(marks.size(), [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) marks[i].fetch_add(1);
    });
  });
  for (auto& m : marks) EXPECT_EQ(m.load(), 3);  // once per outer worker
}

TEST(ThreadPool, NestedExceptionReachesOuterTask) {
  ThreadPool pool(2);
  std::atomic<int> caught{0};
  pool.run([&](std::size_t, std::size_t) {
    try {
      pool.run([](std::size_t, std::size_t) { throw std::runtime_error("nested"); });
    } catch (const std::runtime_error&) {
      caught.fetch_add(1);
    }
  });
  EXPECT_EQ(caught.load(), 2);
}

TEST(ThreadPool, NestedDataParallelStages) {
  // Mimics the engine: several dependent stages, each a fork-join region.
  ThreadPool pool(4);
  std::vector<int> data(1000, 1);
  pool.parallel_for(data.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) data[i] *= 2;
  });
  pool.parallel_for(data.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) data[i] += 1;
  });
  for (int v : data) EXPECT_EQ(v, 3);
}

}  // namespace
}  // namespace lowino

// Tests for the fork-join thread pool and static scheduling.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/thread_pool.h"

namespace lowino {
namespace {

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::size_t calls = 0;
  pool.run([&](std::size_t tid, std::size_t nw) {
    EXPECT_EQ(tid, 0u);
    EXPECT_EQ(nw, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, AllWorkersInvokedOncePerRun) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(4);
  pool.run([&](std::size_t tid, std::size_t nw) {
    EXPECT_EQ(nw, 4u);
    counts[tid].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPool, RepeatedRunsDoNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int i = 0; i < 200; ++i) {
    pool.run([&](std::size_t, std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 600);
}

TEST(ThreadPool, ParallelForSumsCorrectly) {
  ThreadPool pool(4);
  const std::size_t n = 10001;
  std::vector<int> marks(n, 0);
  pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) marks[i] += 1;
  });
  EXPECT_EQ(std::accumulate(marks.begin(), marks.end(), 0), static_cast<int>(n));
}

TEST(ThreadPool, ParallelForEmptyIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, OversubscriptionWorks) {
  // More workers than cores must still complete (correctness under
  // oversubscription matters on the single-core CI machine).
  ThreadPool pool(16);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(1 << 14, [&](std::size_t begin, std::size_t end) {
    std::size_t local = 0;
    for (std::size_t i = begin; i < end; ++i) local += i;
    sum.fetch_add(local);
  });
  const std::size_t n = 1 << 14;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> x{0};
  ThreadPool::global().parallel_for(100, [&](std::size_t begin, std::size_t end) {
    x.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(x.load(), 100);
}

TEST(ThreadPool, NestedDataParallelStages) {
  // Mimics the engine: several dependent stages, each a fork-join region.
  ThreadPool pool(4);
  std::vector<int> data(1000, 1);
  pool.parallel_for(data.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) data[i] *= 2;
  });
  pool.parallel_for(data.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) data[i] += 1;
  });
  for (int v : data) EXPECT_EQ(v, 3);
}

}  // namespace
}  // namespace lowino

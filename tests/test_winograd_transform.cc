// Tests for the Winograd transform generator and canonical matrices.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "winograd/rational.h"
#include "winograd/transform.h"

namespace lowino {
namespace {

TEST(Rational, Arithmetic) {
  const Rational half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
}

TEST(Rational, NormalizesSignAndGcd) {
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, -2), Rational(-1, 2));
  EXPECT_EQ(Rational(-2, -4), Rational(1, 2));
  EXPECT_EQ(Rational(0, 5), Rational(0));
}

TEST(Rational, ThrowsOnZeroDivision) {
  EXPECT_THROW(Rational(1, 0), std::domain_error);
  EXPECT_THROW(Rational(1) / Rational(0), std::domain_error);
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(3, 4).to_double(), 0.75);
  EXPECT_DOUBLE_EQ(Rational(-5, 2).to_double(), -2.5);
}

// ---------------------------------------------------------------------------
// Generator: parameterized over (m, r) — every generated transform must
// reproduce direct correlation exactly (the generator verifies the identity
// with exact rationals internally; here we check the double-precision
// matrices numerically end to end).
class GeneratedTransform : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeneratedTransform, Correlate1dMatchesDirect) {
  const auto [m, r] = GetParam();
  const TransformMatrices& t = winograd_transform(m, r);
  EXPECT_EQ(t.alpha, static_cast<std::size_t>(m + r - 1));

  Rng rng(m * 10 + r);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> d(t.alpha), g(t.r);
    for (auto& v : d) v = rng.uniform(-1.0f, 1.0f);
    for (auto& v : g) v = rng.uniform(-1.0f, 1.0f);
    const std::vector<double> y = t.correlate_1d(d, g);
    for (std::size_t i = 0; i < t.m; ++i) {
      double expected = 0.0;
      for (std::size_t j = 0; j < t.r; ++j) expected += g[j] * d[i + j];
      ASSERT_NEAR(y[i], expected, 1e-9) << "m=" << m << " r=" << r << " i=" << i;
    }
  }
}

TEST_P(GeneratedTransform, IdentityHoldsExactly) {
  const auto [m, r] = GetParam();
  const TransformMatrices& t = winograd_transform(m, r);
  for (std::size_t i = 0; i < t.m; ++i) {
    for (std::size_t k = 0; k < t.r; ++k) {
      for (std::size_t l = 0; l < t.alpha; ++l) {
        Rational sum = 0;
        for (std::size_t j = 0; j < t.alpha; ++j) {
          sum += t.AT_q[i * t.alpha + j] * t.G_q[j * t.r + k] * t.BT_q[j * t.alpha + l];
        }
        ASSERT_EQ(sum, l == i + k ? Rational(1) : Rational(0));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratedTransform,
                         ::testing::Values(std::make_tuple(2, 3), std::make_tuple(4, 3),
                                           std::make_tuple(6, 3), std::make_tuple(2, 2),
                                           std::make_tuple(3, 3), std::make_tuple(4, 5),
                                           std::make_tuple(5, 3), std::make_tuple(6, 5),
                                           std::make_tuple(1, 3), std::make_tuple(8, 3)));

TEST(GeneratedTransformErrors, RejectsBadArguments) {
  EXPECT_THROW(winograd_transform(0, 3), std::invalid_argument);
  EXPECT_THROW(winograd_transform(2, 1), std::invalid_argument);
  EXPECT_THROW(winograd_transform(9, 3), std::invalid_argument);  // alpha = 11
  EXPECT_THROW(generate_winograd_transform(2, 3, {Rational(0), Rational(0), Rational(1)}),
               std::invalid_argument);  // duplicate points
  EXPECT_THROW(generate_winograd_transform(2, 3, {Rational(0)}), std::invalid_argument);
}

TEST(GeneratedTransform, CustomPointsAlsoWork) {
  const TransformMatrices t =
      generate_winograd_transform(2, 3, {Rational(1), Rational(-2), Rational(3)});
  const std::vector<double> y = t.correlate_1d({1, 2, 3, 4}, {0.5, -1, 2});
  EXPECT_NEAR(y[0], 0.5 * 1 - 1 * 2 + 2 * 3, 1e-9);
  EXPECT_NEAR(y[1], 0.5 * 2 - 1 * 3 + 2 * 4, 1e-9);
}

// ---------------------------------------------------------------------------
// Canonical matrices (Eq. 2 of the paper).
TEST(Canonical, F23MatchesPaperEq2) {
  const TransformMatrices& t = canonical_f23();
  const double expected_bt[16] = {1, 0, -1, 0, 0, 1, 1, 0, 0, -1, 1, 0, 0, 1, 0, -1};
  for (int i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(t.BT[i], expected_bt[i]);
}

TEST(Canonical, F43MatchesPaperEq2) {
  const TransformMatrices& t = canonical_f43();
  const double expected_row0[6] = {4, 0, -5, 0, 1, 0};
  const double expected_row5[6] = {0, 4, 0, -5, 0, 1};
  for (int j = 0; j < 6; ++j) {
    EXPECT_DOUBLE_EQ(t.bt(0, j), expected_row0[j]);
    EXPECT_DOUBLE_EQ(t.bt(5, j), expected_row5[j]);
  }
}

TEST(Canonical, F23CorrelatesExactly) {
  const TransformMatrices& t = canonical_f23();
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<double> d(4), g(3);
    for (auto& v : d) v = rng.uniform(-2.0f, 2.0f);
    for (auto& v : g) v = rng.uniform(-2.0f, 2.0f);
    const auto y = t.correlate_1d(d, g);
    for (int i = 0; i < 2; ++i) {
      ASSERT_NEAR(y[i], g[0] * d[i] + g[1] * d[i + 1] + g[2] * d[i + 2], 1e-12);
    }
  }
}

TEST(Canonical, F43CorrelatesExactly) {
  const TransformMatrices& t = canonical_f43();
  Rng rng(6);
  std::vector<double> d(6), g(3);
  for (auto& v : d) v = rng.uniform(-2.0f, 2.0f);
  for (auto& v : g) v = rng.uniform(-2.0f, 2.0f);
  const auto y = t.correlate_1d(d, g);
  for (int i = 0; i < 4; ++i) {
    ASSERT_NEAR(y[i], g[0] * d[i] + g[1] * d[i + 1] + g[2] * d[i + 2], 1e-12);
  }
}

// ---------------------------------------------------------------------------
// The value-range amplification claim of Section 2.2: "values of the
// transformed input matrix will increase up to 4x and 100x" for F(2,3) and
// F(4,3), and grows dramatically with m.
TEST(Amplification, PaperSection22Figures) {
  EXPECT_DOUBLE_EQ(canonical_f23().input_amplification_2d(), 4.0);
  EXPECT_DOUBLE_EQ(canonical_f43().input_amplification_2d(), 100.0);
}

TEST(Amplification, GrowsWithTileSize) {
  const double a2 = winograd_transform(2, 3).input_amplification_2d();
  const double a4 = winograd_transform(4, 3).input_amplification_2d();
  const double a6 = winograd_transform(6, 3).input_amplification_2d();
  EXPECT_LT(a2, a4);
  EXPECT_LT(a4, a6);
  // With wincnn's fractional points F(6,3) amplifies 225x (the paper's 1/10000
  // figure assumes all-integer interpolation points); the instability that
  // motivates Winograd-domain quantization is the same.
  EXPECT_GE(a6 / a2, 50.0);
}

TEST(DefaultPoints, FirstSevenAreWincnnChoice) {
  const auto pts = default_points(7);
  EXPECT_EQ(pts[0], Rational(0));
  EXPECT_EQ(pts[1], Rational(1));
  EXPECT_EQ(pts[2], Rational(-1));
  EXPECT_EQ(pts[3], Rational(2));
  EXPECT_EQ(pts[4], Rational(-2));
  EXPECT_EQ(pts[5], Rational(1, 2));
  EXPECT_EQ(pts[6], Rational(-1, 2));
}

// 2D correlation through the full sandwich Y = A^T[(G g G^T) . (B^T d B)]A.
class Transform2d : public ::testing::TestWithParam<int> {};

TEST_P(Transform2d, MatchesDirect2dConvolution) {
  const int m = GetParam();
  const TransformMatrices& t = winograd_transform(m, 3);
  const std::size_t a = t.alpha;
  Rng rng(m);
  std::vector<double> d(a * a), g(9);
  for (auto& v : d) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : g) v = rng.uniform(-1.0f, 1.0f);

  // U = G g G^T (a x a), V = B^T d B (a x a)
  std::vector<double> u(a * a, 0.0), v(a * a, 0.0), tmp(a * 3, 0.0);
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 3; ++k) s += t.g(i, k) * g[k * 3 + j];
      tmp[i * 3 + j] = s;
    }
  }
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < a; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < 3; ++k) s += tmp[i * 3 + k] * t.g(j, k);
      u[i * a + j] = s;
    }
  }
  std::vector<double> tmp2(a * a, 0.0);
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < a; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a; ++k) s += t.bt(i, k) * d[k * a + j];
      tmp2[i * a + j] = s;
    }
  }
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < a; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a; ++k) s += tmp2[i * a + k] * t.bt(j, k);
      v[i * a + j] = s;
    }
  }
  // Z = U . V ; Y = A^T Z A
  std::vector<double> z(a * a);
  for (std::size_t i = 0; i < a * a; ++i) z[i] = u[i] * v[i];
  std::vector<double> tmp3(t.m * a, 0.0);
  for (std::size_t i = 0; i < t.m; ++i) {
    for (std::size_t j = 0; j < a; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a; ++k) s += t.at(i, k) * z[k * a + j];
      tmp3[i * a + j] = s;
    }
  }
  for (std::size_t i = 0; i < t.m; ++i) {
    for (std::size_t j = 0; j < t.m; ++j) {
      double y = 0.0;
      for (std::size_t k = 0; k < a; ++k) y += tmp3[i * a + k] * t.at(j, k);
      // direct valid correlation at output (i, j)
      double expected = 0.0;
      for (std::size_t p = 0; p < 3; ++p) {
        for (std::size_t q = 0; q < 3; ++q) {
          expected += g[p * 3 + q] * d[(i + p) * a + (j + q)];
        }
      }
      ASSERT_NEAR(y, expected, 1e-8) << "m=" << m;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(TileSizes, Transform2d, ::testing::Values(2, 3, 4, 5, 6));

}  // namespace
}  // namespace lowino

// Tests for the auto-tuner search space and wisdom store.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "common/rng.h"
#include "tuning/search_space.h"
#include "tuning/tuner.h"
#include "tuning/wisdom.h"

namespace lowino {
namespace {

TEST(SearchSpace, AllCandidatesValid) {
  const auto candidates = enumerate_blockings(512, 512);
  EXPECT_GT(candidates.size(), 20u);
  for (const auto& b : candidates) {
    EXPECT_TRUE(b.valid()) << b.to_string();
    EXPECT_LE(b.c_blk, 512u);
    EXPECT_LE(b.k_blk, 512u);
    EXPECT_LT(b.row_blk * b.col_blk + b.col_blk, 31) << "paper register constraint";
    EXPECT_LE(b.c_blk * b.k_blk, 512u * 512u) << "paper cache constraint";
  }
}

TEST(SearchSpace, ClampsToSmallLayers) {
  const auto candidates = enumerate_blockings(64, 64);
  EXPECT_FALSE(candidates.empty());
  for (const auto& b : candidates) {
    EXPECT_LE(b.c_blk, 64u);
    EXPECT_LE(b.k_blk, 64u);
  }
}

TEST(SearchSpace, NoDuplicates) {
  const auto candidates = enumerate_blockings(256, 256);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    for (std::size_t j = i + 1; j < candidates.size(); ++j) {
      const auto& a = candidates[i];
      const auto& b = candidates[j];
      EXPECT_FALSE(a.n_blk == b.n_blk && a.c_blk == b.c_blk && a.k_blk == b.k_blk &&
                   a.row_blk == b.row_blk && a.col_blk == b.col_blk);
    }
  }
}

TEST(Wisdom, PutGetRoundTrip) {
  WisdomStore store;
  Int8GemmBlocking b;
  b.n_blk = 48;
  b.k_blk = 128;
  b.nt_store = false;
  store.put("layer-x m4", b);
  const auto got = store.get("layer-x m4");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->n_blk, 48u);
  EXPECT_EQ(got->k_blk, 128u);
  EXPECT_FALSE(got->nt_store);
  EXPECT_FALSE(store.get("missing").has_value());
}

TEST(Wisdom, SerializeDeserialize) {
  WisdomStore store;
  Int8GemmBlocking a;
  a.n_blk = 96;
  Int8GemmBlocking b;
  b.n_blk = 168;
  b.row_blk = 12;
  b.col_blk = 2;
  b.k_blk = 32;
  store.put("k1", a);
  store.put("k2", b);
  const WisdomStore parsed = WisdomStore::deserialize(store.serialize());
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.get("k2")->row_blk, 12);
  EXPECT_EQ(parsed.get("k2")->k_blk, 32u);
}

TEST(Wisdom, MalformedLinesSkipped) {
  const WisdomStore parsed = WisdomStore::deserialize(
      "# comment\nnot a valid line\nk = 96 512 64 6 4 1 1\nk2 = broken\n");
  EXPECT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed.get("k").has_value());
}

TEST(Wisdom, ModeRoundTripAndV1Compat) {
  WisdomStore store;
  store.put("fused-layer", Int8GemmBlocking{}, ExecutionMode::kFused);
  store.put("staged-layer", Int8GemmBlocking{}, ExecutionMode::kStaged);
  store.put("legacy-layer", Int8GemmBlocking{});  // no mode recorded
  const WisdomStore parsed = WisdomStore::deserialize(store.serialize());
  EXPECT_EQ(parsed.get_mode("fused-layer"), ExecutionMode::kFused);
  EXPECT_EQ(parsed.get_mode("staged-layer"), ExecutionMode::kStaged);
  EXPECT_EQ(parsed.get_mode("legacy-layer"), ExecutionMode::kAuto);
  EXPECT_EQ(parsed.get_mode("missing"), ExecutionMode::kAuto);
  // v1 lines (7 fields, no mode token) must keep loading.
  const WisdomStore v1 = WisdomStore::deserialize("k = 96 512 64 6 4 1 1\n");
  ASSERT_TRUE(v1.get("k").has_value());
  EXPECT_EQ(v1.get_mode("k"), ExecutionMode::kAuto);
}

// --- Hardened parsing: corrupt and hostile input ----------------------------
TEST(Wisdom, RejectsNonPositiveAndAbsurdValues) {
  // Zero, negative (would wrap through unsigned extraction) and huge values
  // must each reject the whole line, not load a repaired entry.
  EXPECT_EQ(WisdomStore::deserialize("k = 0 512 64 6 4 1 1\n").size(), 0u);
  EXPECT_EQ(WisdomStore::deserialize("k = -96 512 64 6 4 1 1\n").size(), 0u);
  EXPECT_EQ(WisdomStore::deserialize("k = 96 -512 64 6 4 1 1\n").size(), 0u);
  EXPECT_EQ(WisdomStore::deserialize("k = 96 512 64 -6 4 1 1\n").size(), 0u);
  EXPECT_EQ(WisdomStore::deserialize("k = 96 512 64 6 4 1 1073741824\n").size(), 0u);
  EXPECT_EQ(WisdomStore::deserialize("k = 18446744073709551615 512 64 6 4 1 1\n").size(),
            0u);
  EXPECT_EQ(WisdomStore::deserialize("k = 2097152 512 64 6 4 1 1\n").size(), 0u);
  // Boolean flags must be 0/1.
  EXPECT_EQ(WisdomStore::deserialize("k = 96 512 64 6 4 7 1\n").size(), 0u);
}

TEST(Wisdom, RejectsUnknownModeToken) {
  // A trailing token that is present but not a known mode means the file is
  // corrupt (or from a newer format): reject rather than default to kAuto.
  EXPECT_EQ(WisdomStore::deserialize("k = 96 512 64 6 4 1 1 sideways\n").size(), 0u);
  EXPECT_EQ(WisdomStore::deserialize("k = 96 512 64 6 4 1 1 stagedX\n").size(), 0u);
  // Known tokens and the v1 7-field form still load.
  EXPECT_EQ(WisdomStore::deserialize("k = 96 512 64 6 4 1 1 fused\n").get_mode("k"),
            ExecutionMode::kFused);
  EXPECT_TRUE(WisdomStore::deserialize("k = 96 512 64 6 4 1 1\n").get("k").has_value());
}

TEST(Wisdom, TruncatedLinesRejected) {
  EXPECT_EQ(WisdomStore::deserialize("k = 96 512 64 6\n").size(), 0u);
  EXPECT_EQ(WisdomStore::deserialize("k = 96 512 64 6 4 1\n").size(), 0u);
  EXPECT_EQ(WisdomStore::deserialize("k = \n").size(), 0u);
}

TEST(Wisdom, FuzzedGarbageNeverYieldsInvalidEntries) {
  // Feed the parser random garbage (printable noise, truncations, huge
  // numerals, binary bytes): it must never crash and every entry that does
  // load must satisfy the blocking invariants.
  Rng rng(0x715d0f00dULL);
  const std::string alphabet =
      "0123456789-+= abcdefghijklmnopqrstuvwxyz#\t\x01\xff.eE";
  for (int iter = 0; iter < 500; ++iter) {
    std::string text;
    const std::size_t lines = rng.next_below(6);
    for (std::size_t l = 0; l < lines; ++l) {
      const std::size_t len = rng.next_below(80);
      for (std::size_t i = 0; i < len; ++i) {
        text += alphabet[rng.next_below(alphabet.size())];
      }
      text += '\n';
    }
    const WisdomStore parsed = WisdomStore::deserialize(text);
    // Whatever survived must be structurally valid.
    const std::string out = parsed.serialize();
    const WisdomStore reparsed = WisdomStore::deserialize(out);
    EXPECT_EQ(reparsed.size(), parsed.size()) << "round-trip must be stable for: " << text;
  }
}

TEST(Wisdom, SerializedFormRoundTripsThroughHardenedParser) {
  WisdomStore store;
  Int8GemmBlocking b;
  b.n_blk = 48;
  b.c_blk = 64;
  b.k_blk = 64;
  b.row_blk = 4;
  b.col_blk = 2;
  b.nt_store = false;
  store.put("small layer", b, ExecutionMode::kStaged);
  store.put("big layer", Int8GemmBlocking{}, ExecutionMode::kFused);
  const WisdomStore parsed = WisdomStore::deserialize(store.serialize());
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.get("small layer")->row_blk, 4);
  EXPECT_EQ(parsed.get_mode("small layer"), ExecutionMode::kStaged);
  EXPECT_EQ(parsed.get_mode("big layer"), ExecutionMode::kFused);
}

// --- v3 timing tail ----------------------------------------------------------
TEST(Wisdom, V3BreakdownRoundTrip) {
  WisdomStore store;
  WisdomEntry e;
  e.blocking.n_blk = 48;
  e.mode = ExecutionMode::kFused;
  e.staged_seconds = 3.5e-3;
  e.fused_seconds = 2.1e-3;
  e.stages.input_transform = 8.0e-4;
  e.stages.gemm = 1.0e-3;
  e.stages.output_transform = 3.0e-4;
  store.put("layer m4", e);
  const WisdomStore parsed = WisdomStore::deserialize(store.serialize());
  const auto got = parsed.get_entry("layer m4");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->blocking.n_blk, 48u);
  EXPECT_EQ(got->mode, ExecutionMode::kFused);
  EXPECT_NEAR(got->staged_seconds, 3.5e-3, 1e-12);
  EXPECT_NEAR(got->fused_seconds, 2.1e-3, 1e-12);
  EXPECT_NEAR(got->stages.input_transform, 8.0e-4, 1e-12);
  EXPECT_NEAR(got->stages.gemm, 1.0e-3, 1e-12);
  EXPECT_NEAR(got->stages.output_transform, 3.0e-4, 1e-12);
}

TEST(Wisdom, V1AndV2LinesLoadWithZeroBreakdown) {
  const WisdomStore v2 = WisdomStore::deserialize("k = 96 512 64 6 4 1 1 fused\n");
  const auto e2 = v2.get_entry("k");
  ASSERT_TRUE(e2.has_value());
  EXPECT_EQ(e2->mode, ExecutionMode::kFused);
  EXPECT_EQ(e2->staged_seconds, 0.0);
  EXPECT_EQ(e2->fused_seconds, 0.0);
  EXPECT_EQ(e2->stages.gemm, 0.0);
  const WisdomStore v1 = WisdomStore::deserialize("k = 96 512 64 6 4 1 1\n");
  const auto e1 = v1.get_entry("k");
  ASSERT_TRUE(e1.has_value());
  EXPECT_EQ(e1->staged_seconds, 0.0);
}

TEST(Wisdom, PartialTimingTailRejected) {
  // The tail is all-or-none: 1..4 doubles mean a truncated line, 6 mean a
  // corrupt or newer format — both reject the whole line.
  const char* base = "k = 96 512 64 6 4 1 1 fused";
  EXPECT_EQ(WisdomStore::deserialize(std::string(base) + " 0.001\n").size(), 0u);
  EXPECT_EQ(WisdomStore::deserialize(std::string(base) + " 0.001 0.002\n").size(), 0u);
  EXPECT_EQ(WisdomStore::deserialize(std::string(base) + " 0.001 0.002 0.003\n").size(),
            0u);
  EXPECT_EQ(
      WisdomStore::deserialize(std::string(base) + " 0.001 0.002 0.003 0.004\n").size(),
      0u);
  EXPECT_EQ(WisdomStore::deserialize(std::string(base) + " 1 2 3 4 5 6\n").size(), 0u);
  // The full five-double tail loads.
  EXPECT_EQ(WisdomStore::deserialize(std::string(base) + " 1 2 3 4 5\n").size(), 1u);
}

TEST(Wisdom, GarbledTimingTailRejected) {
  const char* base = "k = 96 512 64 6 4 1 1 staged";
  // Negative, non-finite, and partially numeric tokens each reject the line.
  EXPECT_EQ(
      WisdomStore::deserialize(std::string(base) + " 0.001 -0.002 0.1 0.1 0.1\n").size(),
      0u);
  EXPECT_EQ(
      WisdomStore::deserialize(std::string(base) + " 0.001 nan 0.1 0.1 0.1\n").size(), 0u);
  EXPECT_EQ(
      WisdomStore::deserialize(std::string(base) + " 0.001 inf 0.1 0.1 0.1\n").size(), 0u);
  EXPECT_EQ(WisdomStore::deserialize(std::string(base) + " 1 2 3 4 5x\n").size(), 0u);
  EXPECT_EQ(WisdomStore::deserialize(std::string(base) + " 1 2 3 4 banana\n").size(), 0u);
}

TEST(Wisdom, FileRoundTrip) {
  const std::string path = std::filesystem::temp_directory_path() / "lowino_wisdom_test.txt";
  WisdomStore store;
  store.put("layer", Int8GemmBlocking{});
  ASSERT_TRUE(store.save(path));
  const auto loaded = WisdomStore::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 1u);
  std::remove(path.c_str());
  EXPECT_FALSE(WisdomStore::load(path).has_value());
}

TEST(Tuner, FindsConfigurationNotWorseThanDefault) {
  ConvDesc d;
  d.batch = 1;
  d.in_channels = d.out_channels = 128;
  d.height = d.width = 28;
  d.kernel = 3;
  d.pad = 1;
  TuneOptions opts;
  opts.seconds_per_candidate = 0.005;
  opts.max_candidates = 6;
  const TuneResult r = tune_layer(d, 4, nullptr, opts);
  EXPECT_GT(r.evaluated, 0u);
  EXPECT_TRUE(r.best.valid());
  EXPECT_LE(r.best_seconds, r.default_seconds * 1.05);
  // The mode shoot-out always runs and records a concrete winner.
  EXPECT_NE(r.best_mode, ExecutionMode::kAuto);
  EXPECT_GT(r.staged_seconds, 0.0);
  EXPECT_GT(r.fused_seconds, 0.0);
}

TEST(Tuner, WisdomKeyDistinguishesLayersAndTileSizes) {
  ConvDesc a;
  a.in_channels = 64;
  ConvDesc b;
  b.in_channels = 128;
  EXPECT_NE(wisdom_key(a, 2), wisdom_key(b, 2));
  EXPECT_NE(wisdom_key(a, 2), wisdom_key(a, 4));
}


// --- Wisdom string entries (serve-plan engine hints) -------------------------

TEST(Wisdom, StringEntriesRoundTripThroughText) {
  WisdomStore store;
  EXPECT_FALSE(store.get_string("plan-engine x").has_value());
  EXPECT_TRUE(store.put_string("plan-engine B4 C64 K64 H16 W16 r3", "lowino_f4"));
  EXPECT_TRUE(store.put_string("plan-engine B4 C64 K128 H8 W8 r3", "int8_direct"));
  EXPECT_EQ(store.string_size(), 2u);
  EXPECT_EQ(store.get_string("plan-engine B4 C64 K64 H16 W16 r3"), "lowino_f4");

  // Overwrite is last-writer-wins, like numeric entries.
  EXPECT_TRUE(store.put_string("plan-engine B4 C64 K64 H16 W16 r3", "lowino_f2"));
  EXPECT_EQ(store.string_size(), 2u);
  EXPECT_EQ(store.get_string("plan-engine B4 C64 K64 H16 W16 r3"), "lowino_f2");

  const std::string text = store.serialize();
  const WisdomStore loaded = WisdomStore::deserialize(text);
  EXPECT_EQ(loaded.string_size(), 2u);
  EXPECT_EQ(loaded.get_string("plan-engine B4 C64 K64 H16 W16 r3"), "lowino_f2");
  EXPECT_EQ(loaded.get_string("plan-engine B4 C64 K128 H8 W8 r3"), "int8_direct");
}

TEST(Wisdom, StringAndBlockingEntriesCoexistInOneFile) {
  WisdomStore store;
  store.put("conv3 f4", Int8GemmBlocking{});
  ASSERT_TRUE(store.put_string("plan-engine conv3", "lowino_f6"));
  const WisdomStore loaded = WisdomStore::deserialize(store.serialize());
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.string_size(), 1u);
  EXPECT_TRUE(loaded.get("conv3 f4").has_value());
  EXPECT_EQ(loaded.get_string("plan-engine conv3"), "lowino_f6");
}

TEST(Wisdom, StringEntriesRejectNewlines) {
  WisdomStore store;
  EXPECT_FALSE(store.put_string("bad\nkey", "value"));
  EXPECT_FALSE(store.put_string("key", "bad\nvalue"));
  EXPECT_EQ(store.string_size(), 0u);
}

}  // namespace
}  // namespace lowino

// Concurrency stress tests — the TSan preset's target (see CMakePresets.json
// and TESTING.md).
//
// The fused execution path runs transform -> GEMM -> output transform inside
// one parallel region with per-thread panel arenas; the transform-matrix
// cache is lazily populated behind a mutex; the tuner hammers the same GEMM
// substrate. These tests run all of that concurrently from independent
// ThreadPools and assert the outputs stay bitwise identical — any data race
// that corrupts state shows up as a mismatch (and as a TSan report under the
// tsan preset).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "lowino/convolution.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"
#include "nn/model_zoo.h"
#include "serve/session.h"
#include "testing/oracle.h"
#include "tuning/tuner.h"
#include "winograd/transform.h"

namespace lowino {
namespace {

ConvDesc stress_desc() {
  ConvDesc d;
  d.batch = 1;
  d.in_channels = 32;
  d.out_channels = 32;
  d.height = d.width = 16;
  d.kernel = 3;
  d.pad = 1;
  return d;
}

struct StressData {
  std::vector<float> input, weights, bias;
};

StressData stress_data(const ConvDesc& d) {
  Rng rng(0x57e55);
  StressData s;
  s.input.resize(d.batch * d.in_channels * d.height * d.width);
  s.weights.resize(d.out_channels * d.in_channels * d.kernel * d.kernel);
  s.bias.resize(d.out_channels);
  for (float& v : s.input) v = rng.uniform(-1.0f, 1.0f);
  for (float& v : s.weights) v = rng.uniform(-1.0f, 1.0f);
  for (float& v : s.bias) v = rng.uniform(-0.5f, 0.5f);
  return s;
}

std::vector<float> run_fused_conv(const ConvDesc& d, const StressData& data,
                                  std::size_t threads, std::size_t iterations) {
  LoWinoConfig cfg;
  cfg.m = 4;
  cfg.execution_mode = ExecutionMode::kFused;
  LoWinoConvolution conv(d, cfg);
  conv.set_uniform_input_threshold(12.0f);
  conv.set_filters(data.weights, data.bias);
  ThreadPool pool(threads);
  std::vector<float> out(d.batch * d.out_channels * d.out_height() * d.out_width());
  for (std::size_t i = 0; i < iterations; ++i) {
    conv.execute_nchw(data.input, out, &pool);
  }
  return out;
}

// Several fused-mode convolutions, each with its own pool, executing at once.
// Every run must produce the same bits as a quiet single-threaded run.
TEST(ThreadStress, ConcurrentFusedConvolutionsAreBitIdentical) {
  const ConvDesc d = stress_desc();
  const StressData data = stress_data(d);
  const std::vector<float> golden = run_fused_conv(d, data, 1, 1);

  constexpr std::size_t kRunners = 4;
  std::vector<std::vector<float>> results(kRunners);
  {
    std::vector<std::thread> runners;
    runners.reserve(kRunners);
    for (std::size_t i = 0; i < kRunners; ++i) {
      runners.emplace_back([&, i] {
        results[i] = run_fused_conv(d, data, 1 + i % 3, /*iterations=*/4);
      });
    }
    for (auto& t : runners) t.join();
  }
  for (std::size_t i = 0; i < kRunners; ++i) {
    ASSERT_EQ(results[i].size(), golden.size());
    EXPECT_EQ(results[i], golden) << "runner " << i;
  }
}

// First-touch race on the lazily generated transform cache: many threads ask
// for the same (and different) tile sizes simultaneously; everyone must see
// one fully constructed, identical instance.
TEST(ThreadStress, TransformCacheFirstTouchIsSafe) {
  constexpr std::size_t kThreads = 8;
  const std::size_t ms[] = {2, 4, 6, 3};
  std::vector<const TransformMatrices*> seen(kThreads * 4, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (std::size_t j = 0; j < 4; ++j) {
        seen[i * 4 + j] = &winograd_transform(ms[(i + j) % 4], 3);
      }
    });
  }
  for (auto& t : threads) t.join();
  for (std::size_t i = 0; i < kThreads * 4; ++i) {
    ASSERT_NE(seen[i], nullptr);
    const std::size_t m = ms[(i / 4 + i % 4) % 4];
    EXPECT_EQ(seen[i], &winograd_transform(m, 3));
    EXPECT_EQ(seen[i]->alpha, m + 2);
  }
}

// The tuner (timing loops over the shared GEMM substrate, wisdom writes into
// a local store) racing against live fused convolutions.
TEST(ThreadStress, TunerRacesFusedExecution) {
  const ConvDesc d = stress_desc();
  const StressData data = stress_data(d);
  const std::vector<float> golden = run_fused_conv(d, data, 1, 1);

  std::thread tuner([&] {
    TuneOptions opts;
    opts.seconds_per_candidate = 0.002;
    opts.min_reps = 1;
    opts.max_candidates = 3;
    const TuneResult r = tune_layer(d, 4, nullptr, opts);
    EXPECT_GT(r.evaluated, 0u);
  });
  std::vector<float> out;
  for (int i = 0; i < 3; ++i) out = run_fused_conv(d, data, 2, 2);
  tuner.join();
  EXPECT_EQ(out, golden);
}

// Everything above, but with the execution profiler recording: concurrent
// fused convolutions write per-stage spans into per-thread logs while another
// thread repeatedly collects totals and resets — the collection API races the
// register path (new threads acquiring logs), which must stay clean under
// TSan and must not perturb the numerics.
TEST(ThreadStress, ProfiledConcurrentFusedConvolutionsAreBitIdentical) {
  const ConvDesc d = stress_desc();
  const StressData data = stress_data(d);
  const std::vector<float> golden = run_fused_conv(d, data, 1, 1);

  const bool was_enabled = profiler_enabled();
  profiler_set_enabled(true);

  constexpr std::size_t kRunners = 3;
  std::vector<std::vector<float>> results(kRunners);
  {
    std::vector<std::thread> runners;
    runners.reserve(kRunners);
    for (std::size_t i = 0; i < kRunners; ++i) {
      runners.emplace_back([&, i] {
        results[i] = run_fused_conv(d, data, 1 + i % 3, /*iterations=*/4);
      });
    }
    // Concurrent collection: totals/summary readers share the registry with
    // threads that are still registering their logs.
    for (int i = 0; i < 20; ++i) {
      const auto totals = profiler_stage_totals();
      EXPECT_GE(totals[static_cast<std::size_t>(ProfileStage::kGemm)].seconds, 0.0);
      (void)profiler_thread_count();
    }
    for (auto& t : runners) t.join();
  }
  const auto totals = profiler_stage_totals();
  EXPECT_GT(totals[static_cast<std::size_t>(ProfileStage::kGemm)].spans, 0u);

  profiler_set_enabled(was_enabled);
  profiler_reset();

  for (std::size_t i = 0; i < kRunners; ++i) {
    ASSERT_EQ(results[i].size(), golden.size());
    EXPECT_EQ(results[i], golden) << "runner " << i;
  }
}


// Two InferenceSessions built from two independent models, each bound to its
// own ThreadPool, serving concurrently from separate threads. The sessions
// must be thread-compatible: every mutable buffer (engines, arena, scratch)
// is session-owned, so concurrent runs share only immutable model weights.
// Outputs must stay bitwise identical to a single-threaded reference run.
TEST(ThreadStress, ConcurrentSessionsServeIndependently) {
  // Golden comes from forward_engine (FP32 inter-layer hand-off), so pin the
  // u8 hand-off off for the bit-compare.
  ScopedRuntimeOverride u8_off("LOWINO_U8_HANDOFF", "0");
  auto make_input = [](std::uint64_t seed) {
    Tensor<float> t({2, 1, 16, 16});
    Rng rng(seed);
    for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = rng.uniform(-1.0f, 1.0f);
    return t;
  };
  const Tensor<float> calib = make_input(11);
  const Tensor<float> input = make_input(22);

  SequentialModel vgg = make_minivgg();
  SequentialModel resnet = make_miniresnet();
  vgg.calibrate(calib, EngineKind::kLoWinoF2);
  vgg.finalize_calibration(EngineKind::kLoWinoF2);
  resnet.calibrate(calib, EngineKind::kLoWinoF4);
  resnet.finalize_calibration(EngineKind::kLoWinoF4);

  ThreadPool pool_a(2), pool_b(2), pool_ref(2);
  PlanOptions opt_a, opt_b;
  opt_a.forced_engine = EngineKind::kLoWinoF2;
  opt_a.pool = &pool_a;
  opt_b.forced_engine = EngineKind::kLoWinoF4;
  opt_b.pool = &pool_b;
  InferenceSession sess_a = InferenceSession::compile(vgg, calib, opt_a);
  InferenceSession sess_b = InferenceSession::compile(resnet, calib, opt_b);

  // Single-threaded goldens from the layer-sequential path on a third pool.
  const Tensor<float> golden_a = vgg.forward_engine(input, EngineKind::kLoWinoF2, &pool_ref);
  const Tensor<float> golden_b =
      resnet.forward_engine(input, EngineKind::kLoWinoF4, &pool_ref);

  constexpr int kIterations = 6;
  Tensor<float> out_a, out_b;
  std::thread runner_a([&] {
    for (int i = 0; i < kIterations; ++i) sess_a.run(input, out_a);
  });
  std::thread runner_b([&] {
    for (int i = 0; i < kIterations; ++i) sess_b.run(input, out_b);
  });
  runner_a.join();
  runner_b.join();

  ASSERT_EQ(out_a.size(), golden_a.size());
  ASSERT_EQ(out_b.size(), golden_b.size());
  EXPECT_EQ(0, std::memcmp(out_a.data(), golden_a.data(), out_a.size() * sizeof(float)));
  EXPECT_EQ(0, std::memcmp(out_b.data(), golden_b.data(), out_b.size() * sizeof(float)));
}

}  // namespace
}  // namespace lowino

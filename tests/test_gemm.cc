// Tests for the VNNI microkernels and blocked GEMMs against scalar references.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/cpu_features.h"
#include "common/rng.h"
#include "gemm/fp32_gemm.h"
#include "gemm/int16_gemm.h"
#include "gemm/int8_gemm.h"
#include "gemm/reference.h"
#include "gemm/vnni_kernels.h"
#include "parallel/thread_pool.h"
#include "tensor/layout.h"

namespace lowino {
namespace {

void fill_random_u8(Rng& rng, std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(rng.next_below(256));
}
void fill_random_s8(Rng& rng, std::int8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::int8_t>(static_cast<int>(rng.next_below(256)) - 128);
  }
}

// ---------------------------------------------------------------------------
// Microkernels: every (row_blk, col_blk) combination vs the scalar oracle.
class MicrokernelCombo : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MicrokernelCombo, MatchesScalarOracle) {
  const auto [row_blk, col_blk] = GetParam();
  ASSERT_TRUE(microkernel_combo_supported(row_blk, col_blk));
  MicroKernelFn fn = get_vnni_microkernel(row_blk, col_blk);
  if (fn == nullptr) GTEST_SKIP() << "no VNNI on this host";

  const std::size_t c4_count = 24;  // 96 channels
  const std::size_t kcols = static_cast<std::size_t>(col_blk) * 16;
  Rng rng(row_blk * 100 + col_blk);

  AlignedBuffer<std::uint8_t> v(static_cast<std::size_t>(row_blk) * c4_count * 4);
  AlignedBuffer<std::int8_t> u(c4_count * kcols * 4);
  AlignedBuffer<std::int32_t> acc_vec(static_cast<std::size_t>(row_blk) * kcols);
  AlignedBuffer<std::int32_t> acc_ref(static_cast<std::size_t>(row_blk) * kcols);
  fill_random_u8(rng, v.data(), v.size());
  fill_random_s8(rng, u.data(), u.size());
  for (std::size_t i = 0; i < acc_vec.size(); ++i) {
    acc_vec[i] = acc_ref[i] = static_cast<std::int32_t>(rng.next_below(1000)) - 500;
  }

  MicroKernelArgs args;
  args.v = v.data();
  args.v_stride = c4_count * 4;
  args.u = u.data();
  args.u_stride = kcols * 4;
  args.acc = acc_vec.data();
  args.acc_stride = kcols;
  args.c4_count = c4_count;
  fn(args);

  args.acc = acc_ref.data();
  scalar_microkernel(args, row_blk, col_blk);

  for (std::size_t i = 0; i < acc_vec.size(); ++i) {
    ASSERT_EQ(acc_vec[i], acc_ref[i]) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Combos, MicrokernelCombo,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(4, 1), std::make_tuple(16, 1),
                      std::make_tuple(2, 2), std::make_tuple(14, 2), std::make_tuple(8, 3),
                      std::make_tuple(1, 4), std::make_tuple(4, 4), std::make_tuple(6, 4),
                      std::make_tuple(4, 6), std::make_tuple(2, 8)));

TEST(Microkernel, RegisterBudgetEnforced) {
  // Combinations that would blow the 32-register budget are not in the table.
  EXPECT_FALSE(microkernel_combo_supported(8, 4));
  EXPECT_FALSE(microkernel_combo_supported(4, 8));
  EXPECT_FALSE(microkernel_combo_supported(30, 1));
}

TEST(Microkernel, PrefetchPointerDoesNotChangeResult) {
  MicroKernelFn fn = get_vnni_microkernel(4, 2);
  if (fn == nullptr) GTEST_SKIP();
  Rng rng(5);
  const std::size_t c4 = 8, kcols = 32;
  AlignedBuffer<std::uint8_t> v(4 * c4 * 4);
  AlignedBuffer<std::int8_t> u(c4 * kcols * 4);
  AlignedBuffer<std::int32_t> a1(4 * kcols), a2(4 * kcols);
  fill_random_u8(rng, v.data(), v.size());
  fill_random_s8(rng, u.data(), u.size());
  a1.fill_zero();
  a2.fill_zero();
  MicroKernelArgs args{v.data(), c4 * 4, u.data(), kcols * 4, a1.data(), kcols, c4, nullptr};
  fn(args);
  args.acc = a2.data();
  args.v_prefetch = v.data();
  fn(args);
  for (std::size_t i = 0; i < a1.size(); ++i) ASSERT_EQ(a1[i], a2[i]);
}

// ---------------------------------------------------------------------------
// Packed single GEMM.
class PackedGemmShape : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PackedGemmShape, MatchesReference) {
  const auto [n, cdim, k] = GetParam();
  Rng rng(n * 7 + cdim * 3 + k);
  AlignedBuffer<std::uint8_t> a(static_cast<std::size_t>(n) * cdim);
  AlignedBuffer<std::int8_t> b(static_cast<std::size_t>(cdim) * k);
  fill_random_u8(rng, a.data(), a.size());
  fill_random_s8(rng, b.data(), b.size());

  AlignedBuffer<std::int8_t> b_packed((round_up(cdim, 4) / 4) * round_up(k, 16) * 4);
  pack_b_vpdpbusd(b.data(), cdim, k, b_packed.data());

  AlignedBuffer<std::int32_t> got(static_cast<std::size_t>(n) * round_up(k, 16));
  Int8GemmBlocking blk;
  int8_gemm_packed(a.data(), cdim, b_packed.data(), nullptr, got.data(), round_up(k, 16), n,
                   cdim, round_up(k, 16), blk);

  std::vector<std::int32_t> want(static_cast<std::size_t>(n) * k);
  ref_gemm_u8s8(a.span(), b.span(), want, n, cdim, k);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      ASSERT_EQ(got[i * round_up(k, 16) + j], want[i * k + j]) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, PackedGemmShape,
                         ::testing::Values(std::make_tuple(1, 4, 16),
                                           std::make_tuple(6, 64, 64),
                                           std::make_tuple(7, 64, 64),    // row tail
                                           std::make_tuple(13, 32, 128),  // row tail
                                           std::make_tuple(96, 128, 64),
                                           std::make_tuple(33, 36, 48),
                                           std::make_tuple(64, 256, 192)));

TEST(PackedGemm, CompensationRecoversSignedResult) {
  // The full Eq. 9 property: computing with shifted V' = V + 128 and
  // comp = -128 * colsum(U) equals the signed product V x U.
  const std::size_t n = 8, cdim = 64, k = 32;
  Rng rng(77);
  std::vector<std::int8_t> v_signed(n * cdim);
  AlignedBuffer<std::int8_t> b(cdim * k);
  fill_random_s8(rng, v_signed.data(), v_signed.size());
  fill_random_s8(rng, b.data(), b.size());

  AlignedBuffer<std::uint8_t> v_shifted(n * cdim);
  for (std::size_t i = 0; i < v_signed.size(); ++i) {
    v_shifted[i] = static_cast<std::uint8_t>(static_cast<int>(v_signed[i]) + 128);
  }

  AlignedBuffer<std::int8_t> b_packed((cdim / 4) * k * 4);
  pack_b_vpdpbusd(b.data(), cdim, k, b_packed.data());
  AlignedBuffer<std::int32_t> comp(k);
  compute_compensation(b.data(), cdim, k, comp.data());

  AlignedBuffer<std::int32_t> got(n * k);
  Int8GemmBlocking blk;
  int8_gemm_packed(v_shifted.data(), cdim, b_packed.data(), comp.data(), got.data(), k, n,
                   cdim, k, blk);

  // Signed reference: sum_c v_signed * b.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      std::int32_t want = 0;
      for (std::size_t l = 0; l < cdim; ++l) {
        want += static_cast<std::int32_t>(v_signed[i * cdim + l]) *
                static_cast<std::int32_t>(b[l * k + j]);
      }
      ASSERT_EQ(got[i * k + j], want);
    }
  }
}

TEST(PackedGemm, ParallelMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 50, cdim = 64, k = 64;
  Rng rng(8);
  AlignedBuffer<std::uint8_t> a(n * cdim);
  AlignedBuffer<std::int8_t> b(cdim * k);
  fill_random_u8(rng, a.data(), a.size());
  fill_random_s8(rng, b.data(), b.size());
  AlignedBuffer<std::int8_t> bp((cdim / 4) * k * 4);
  pack_b_vpdpbusd(b.data(), cdim, k, bp.data());
  AlignedBuffer<std::int32_t> serial(n * k), parallel(n * k);
  Int8GemmBlocking blk;
  int8_gemm_packed(a.data(), cdim, bp.data(), nullptr, serial.data(), k, n, cdim, k, blk);
  int8_gemm_packed(a.data(), cdim, bp.data(), nullptr, parallel.data(), k, n, cdim, k, blk,
                   &pool);
  for (std::size_t i = 0; i < serial.size(); ++i) ASSERT_EQ(serial[i], parallel[i]);
}

// ---------------------------------------------------------------------------
// Batched GEMM through the blocked layouts.
struct BatchedCase {
  std::size_t tiles, channels, filters, t_elems;
  Int8GemmBlocking blocking;
};

class BatchedGemm : public ::testing::TestWithParam<BatchedCase> {};

TEST_P(BatchedGemm, MatchesReferencePerT) {
  const BatchedCase& tc = GetParam();
  ASSERT_TRUE(tc.blocking.valid()) << tc.blocking.to_string();

  const std::size_t n_pad = round_up(tc.tiles, tc.blocking.n_blk);
  const TransformedInputLayout vl(tc.tiles, tc.channels, tc.t_elems, tc.blocking.n_blk,
                                  tc.blocking.c_blk);
  const PackedFilterLayout ul(tc.channels, tc.filters, tc.t_elems, tc.blocking.c_blk,
                              tc.blocking.k_blk);
  const TransformedOutputLayout zl(tc.filters, n_pad, tc.t_elems);

  Rng rng(tc.tiles + tc.channels + tc.filters);
  AlignedBuffer<std::uint8_t> v(vl.size());
  AlignedBuffer<std::int8_t> u(ul.size());
  v.fill_zero();
  u.fill_zero();
  // Dense row-major shadows for the reference.
  std::vector<std::uint8_t> v_ref(tc.tiles * tc.channels);
  std::vector<std::int8_t> u_ref(tc.t_elems * tc.channels * tc.filters);
  for (std::size_t t = 0; t < tc.t_elems; ++t) {
    for (std::size_t c = 0; c < tc.channels; ++c) {
      for (std::size_t k = 0; k < tc.filters; ++k) {
        const std::int8_t val =
            static_cast<std::int8_t>(static_cast<int>(rng.next_below(256)) - 128);
        u_ref[(t * tc.channels + c) * tc.filters + k] = val;
        u[ul.offset(t, c, k)] = val;
      }
    }
  }
  for (std::size_t n = 0; n < tc.tiles; ++n) {
    for (std::size_t c = 0; c < tc.channels; ++c) {
      const std::uint8_t val = static_cast<std::uint8_t>(rng.next_below(256));
      v_ref[n * tc.channels + c] = val;
      for (std::size_t t = 0; t < tc.t_elems; ++t) {
        // same value for every t keeps the reference cheap
        v[vl.offset(n, t, c)] = val;
      }
    }
  }

  const std::size_t k_padded = ul.k_blocks * ul.k_blk;
  AlignedBuffer<std::int32_t> comp(tc.t_elems * k_padded);
  for (std::size_t i = 0; i < comp.size(); ++i) {
    comp[i] = static_cast<std::int32_t>(rng.next_below(100)) - 50;
  }

  AlignedBuffer<std::int32_t> z(zl.size());
  z.fill_zero();
  batched_int8_gemm(vl, v.data(), ul, u.data(), comp.data(), zl, z.data(), tc.blocking);

  std::vector<std::int32_t> want(tc.tiles * tc.filters);
  for (std::size_t t = 0; t < tc.t_elems; ++t) {
    ref_gemm_u8s8(v_ref, std::span<const std::int8_t>(u_ref).subspan(
                             t * tc.channels * tc.filters, tc.channels * tc.filters),
                  want, tc.tiles, tc.channels, tc.filters);
    for (std::size_t n = 0; n < tc.tiles; ++n) {
      for (std::size_t k = 0; k < tc.filters; ++k) {
        const std::int32_t expected =
            want[n * tc.filters + k] + comp[t * k_padded + k];
        ASSERT_EQ(z[zl.offset(n, t, k)], expected)
            << "t=" << t << " n=" << n << " k=" << k;
      }
    }
  }
}

Int8GemmBlocking mk_blk(std::size_t nb, std::size_t cb, std::size_t kb, int r, int c,
                        bool nt = true, bool pf = true) {
  Int8GemmBlocking b;
  b.n_blk = nb;
  b.c_blk = cb;
  b.k_blk = kb;
  b.row_blk = r;
  b.col_blk = c;
  b.nt_store = nt;
  b.prefetch = pf;
  return b;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BatchedGemm,
    ::testing::Values(
        BatchedCase{16, 64, 64, 16, mk_blk(8, 64, 64, 4, 4)},
        BatchedCase{100, 128, 64, 16, mk_blk(24, 64, 64, 6, 4)},   // tile padding
        BatchedCase{33, 64, 128, 36, mk_blk(12, 64, 64, 6, 2)},    // multi k-block
        BatchedCase{64, 192, 64, 4, mk_blk(16, 64, 64, 4, 4)},     // 3 channel blocks
        BatchedCase{48, 128, 128, 4, mk_blk(48, 128, 128, 6, 4)},  // single big block
        BatchedCase{20, 64, 64, 16, mk_blk(8, 64, 64, 4, 4, false, false)},  // no NT/pf
        BatchedCase{17, 64, 64, 9, mk_blk(16, 64, 32, 8, 2)}));

TEST(BatchedGemmParallel, MatchesSerial) {
  ThreadPool pool(4);
  const BatchedCase tc{40, 128, 128, 16, mk_blk(16, 64, 64, 4, 4)};
  const std::size_t n_pad = round_up(tc.tiles, tc.blocking.n_blk);
  const TransformedInputLayout vl(tc.tiles, tc.channels, tc.t_elems, tc.blocking.n_blk,
                                  tc.blocking.c_blk);
  const PackedFilterLayout ul(tc.channels, tc.filters, tc.t_elems, tc.blocking.c_blk,
                              tc.blocking.k_blk);
  const TransformedOutputLayout zl(tc.filters, n_pad, tc.t_elems);
  Rng rng(1234);
  AlignedBuffer<std::uint8_t> v(vl.size());
  AlignedBuffer<std::int8_t> u(ul.size());
  fill_random_u8(rng, v.data(), v.size());
  fill_random_s8(rng, u.data(), u.size());
  const std::size_t k_padded = ul.k_blocks * ul.k_blk;
  AlignedBuffer<std::int32_t> comp(tc.t_elems * k_padded);
  comp.fill_zero();
  AlignedBuffer<std::int32_t> z1(zl.size()), z2(zl.size());
  z1.fill_zero();
  z2.fill_zero();
  batched_int8_gemm(vl, v.data(), ul, u.data(), comp.data(), zl, z1.data(), tc.blocking);
  batched_int8_gemm(vl, v.data(), ul, u.data(), comp.data(), zl, z2.data(), tc.blocking,
                    &pool);
  for (std::size_t n = 0; n < tc.tiles; ++n) {
    for (std::size_t t = 0; t < tc.t_elems; ++t) {
      for (std::size_t k = 0; k < tc.filters; ++k) {
        ASSERT_EQ(z1[zl.offset(n, t, k)], z2[zl.offset(n, t, k)]);
      }
    }
  }
}

TEST(Int8GemmBlocking, ValidationRules) {
  EXPECT_TRUE(mk_blk(96, 512, 64, 6, 4).valid());
  EXPECT_FALSE(mk_blk(95, 512, 64, 6, 4).valid());   // n_blk % row_blk
  EXPECT_FALSE(mk_blk(96, 100, 64, 6, 4).valid());   // c_blk % 64
  EXPECT_FALSE(mk_blk(96, 512, 60, 6, 4).valid());   // k_blk % (col*16)
  EXPECT_FALSE(mk_blk(96, 512, 1024, 6, 4).valid()); // cache bound 512*1024 > 512^2
  EXPECT_FALSE(mk_blk(96, 512, 64, 8, 4).valid());   // register budget
}

// ---------------------------------------------------------------------------
// FP32 GEMM.
class Fp32GemmShape : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Fp32GemmShape, MatchesReference) {
  const auto [n, cdim, k] = GetParam();
  Rng rng(n + cdim + k);
  std::vector<float> a(static_cast<std::size_t>(n) * cdim), b(static_cast<std::size_t>(cdim) * k);
  for (auto& v : a) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : b) v = rng.uniform(-1.0f, 1.0f);
  std::vector<float> got(static_cast<std::size_t>(n) * k), want(static_cast<std::size_t>(n) * k);
  fp32_gemm(a.data(), cdim, b.data(), k, got.data(), k, n, cdim, k);
  ref_gemm_f32(a, b, want, n, cdim, k);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-3f) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Fp32GemmShape,
                         ::testing::Values(std::make_tuple(1, 8, 16), std::make_tuple(6, 64, 64),
                                           std::make_tuple(13, 27, 48),
                                           std::make_tuple(25, 32, 80),
                                           std::make_tuple(10, 16, 10),  // k not multiple of 16
                                           std::make_tuple(64, 128, 96)));

TEST(Fp32Gemm, ParallelMatchesSerial) {
  ThreadPool pool(3);
  const int n = 40, cdim = 32, k = 64;
  Rng rng(2);
  std::vector<float> a(n * cdim), b(cdim * k), s(n * k), p(n * k);
  for (auto& v : a) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : b) v = rng.uniform(-1.0f, 1.0f);
  fp32_gemm(a.data(), cdim, b.data(), k, s.data(), k, n, cdim, k);
  fp32_gemm(a.data(), cdim, b.data(), k, p.data(), k, n, cdim, k, &pool);
  for (int i = 0; i < n * k; ++i) ASSERT_EQ(s[i], p[i]);
}

// ---------------------------------------------------------------------------
// INT16 GEMM (up-casting baseline arithmetic).
class Int16GemmShape : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Int16GemmShape, MatchesReference) {
  const auto [n, cdim, k] = GetParam();
  Rng rng(n * 31 + cdim + k);
  std::vector<std::int16_t> a(static_cast<std::size_t>(n) * cdim),
      b(static_cast<std::size_t>(cdim) * k);
  for (auto& v : a) v = static_cast<std::int16_t>(static_cast<int>(rng.next_below(2001)) - 1000);
  for (auto& v : b) v = static_cast<std::int16_t>(static_cast<int>(rng.next_below(255)) - 127);
  AlignedBuffer<std::int16_t> bp((round_up(cdim, 2) / 2) * round_up(k, 16) * 2);
  pack_b_vpmaddwd(b.data(), cdim, k, bp.data());
  AlignedBuffer<std::int32_t> got(static_cast<std::size_t>(n) * round_up(k, 16));
  int16_gemm_packed(a.data(), cdim, bp.data(), got.data(), round_up(k, 16), n, cdim,
                    round_up(k, 16));
  std::vector<std::int32_t> want(static_cast<std::size_t>(n) * k);
  ref_gemm_s16s16(a, b, want, n, cdim, k);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      ASSERT_EQ(got[i * round_up(k, 16) + j], want[i * k + j]) << i << "," << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Int16GemmShape,
                         ::testing::Values(std::make_tuple(4, 16, 16), std::make_tuple(9, 64, 64),
                                           std::make_tuple(16, 36, 80),
                                           std::make_tuple(3, 128, 32)));

}  // namespace
}  // namespace lowino

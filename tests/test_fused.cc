// Differential tests of the fused streaming execution path against the staged
// pipeline (the oracle). The two modes share every block-level compute body,
// so they must agree bit-for-bit — any mismatch is an indexing bug, not
// round-off.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "lowino/lowino.h"

namespace lowino {
namespace {

ConvDesc make_desc(std::size_t b, std::size_t c, std::size_t k, std::size_t hw,
                   std::size_t r = 3, std::size_t pad = 1) {
  ConvDesc d;
  d.batch = b;
  d.in_channels = c;
  d.out_channels = k;
  d.height = d.width = hw;
  d.kernel = r;
  d.pad = pad;
  return d;
}

struct Problem {
  std::vector<float> input, weights, bias;
};

Problem make_problem(const ConvDesc& desc, unsigned seed) {
  Problem p;
  Rng rng(seed);
  p.input.resize(desc.batch * desc.in_channels * desc.height * desc.width);
  p.weights.resize(desc.out_channels * desc.in_channels * desc.kernel * desc.kernel);
  p.bias.resize(desc.out_channels);
  for (auto& v : p.input) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : p.weights) v = rng.normal() * 0.1f;
  for (auto& v : p.bias) v = rng.uniform(-0.2f, 0.2f);
  return p;
}

std::vector<float> run_mode(const ConvDesc& desc, std::size_t m, ExecutionMode mode,
                            const Problem& p, ThreadPool* pool, bool relu = false) {
  LoWinoConfig cfg;
  cfg.m = m;
  cfg.execution_mode = mode;
  cfg.fuse_relu = relu;
  LoWinoConvolution conv(desc, cfg);
  conv.set_uniform_input_threshold(2.0f);
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(desc.batch * desc.out_channels * desc.out_height() *
                         desc.out_width());
  conv.execute_nchw(p.input, out, pool);
  EXPECT_EQ(conv.last_execution_mode(), mode);
  return out;
}

std::size_t count_mismatches(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  std::size_t bad = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit comparison: catches -0.0f vs 0.0f divergence a value compare hides.
    if (std::memcmp(&a[i], &b[i], sizeof(float)) != 0) ++bad;
  }
  return bad;
}

// --- Differential matrix ----------------------------------------------------
class FusedDifferential : public ::testing::TestWithParam<std::tuple<ConvDesc, int>> {};

TEST_P(FusedDifferential, BitIdenticalToStaged) {
  const auto [desc, m] = GetParam();
  const Problem p = make_problem(desc, 900 + m);
  // Pool sizes: serial, small, oversubscribed (more threads than n-blocks on
  // the tiny shapes — exercises workers with empty partitions).
  for (const std::size_t threads : {std::size_t{0}, std::size_t{2}, std::size_t{5}}) {
    ThreadPool pool(threads == 0 ? 1 : threads);
    ThreadPool* pp = threads == 0 ? nullptr : &pool;
    const std::vector<float> staged =
        run_mode(desc, static_cast<std::size_t>(m), ExecutionMode::kStaged, p, pp);
    const std::vector<float> fused =
        run_mode(desc, static_cast<std::size_t>(m), ExecutionMode::kFused, p, pp);
    EXPECT_EQ(count_mismatches(staged, fused), 0u)
        << desc.to_string() << " m=" << m << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FusedDifferential,
    ::testing::Combine(
        ::testing::Values(make_desc(1, 64, 64, 14),          // canonical small
                          make_desc(2, 64, 64, 7),           // batch > 1
                          make_desc(1, 192, 128, 10),        // multiple C blocks
                          make_desc(1, 64, 64, 13),          // odd spatial + halo
                          make_desc(1, 100, 80, 8),          // non-64-multiple C/K
                          make_desc(1, 64, 64, 12, 3, 0),    // no padding
                          make_desc(1, 64, 64, 9, 2, 1)),    // r = 2 kernel
        ::testing::Values(2, 4, 6)));

TEST(FusedDifferential, ReluAndBiasAgree) {
  const ConvDesc d = make_desc(1, 64, 96, 12);
  const Problem p = make_problem(d, 77);
  ThreadPool pool(2);
  const auto staged = run_mode(d, 4, ExecutionMode::kStaged, p, &pool, /*relu=*/true);
  const auto fused = run_mode(d, 4, ExecutionMode::kFused, p, &pool, /*relu=*/true);
  EXPECT_EQ(count_mismatches(staged, fused), 0u);
}

TEST(FusedDifferential, CalibratedScalesAgree) {
  // Per-position calibrated scales (not the uniform-threshold shortcut).
  const ConvDesc d = make_desc(1, 64, 64, 10);
  const Problem p = make_problem(d, 31);
  std::vector<float> outs[2];
  for (int i = 0; i < 2; ++i) {
    LoWinoConfig cfg;
    cfg.m = 4;
    cfg.execution_mode = i == 0 ? ExecutionMode::kStaged : ExecutionMode::kFused;
    LoWinoConvolution conv(d, cfg);
    conv.calibrate(p.input);
    conv.finalize_calibration();
    conv.set_filters(p.weights, p.bias);
    outs[i].resize(d.batch * d.out_channels * d.out_height() * d.out_width());
    conv.execute_nchw(p.input, outs[i]);
  }
  EXPECT_EQ(count_mismatches(outs[0], outs[1]), 0u);
}

// --- kAuto resolution -------------------------------------------------------
TEST(ExecutionModeAuto, ThresholdPicksMode) {
  const ConvDesc d = make_desc(1, 64, 64, 14);
  const Problem p = make_problem(d, 8);

  LoWinoConfig cfg;
  cfg.m = 4;
  cfg.fused_threshold_bytes = 1;  // anything exceeds it -> fused
  LoWinoConvolution low(d, cfg);
  EXPECT_EQ(low.resolve_execution_mode(1), ExecutionMode::kFused);

  cfg.fused_threshold_bytes = std::size_t{1} << 40;  // nothing exceeds it
  LoWinoConvolution high(d, cfg);
  EXPECT_EQ(high.resolve_execution_mode(1), ExecutionMode::kStaged);

  low.set_uniform_input_threshold(2.0f);
  low.set_filters(p.weights, p.bias);
  std::vector<float> out(d.batch * d.out_channels * d.out_height() * d.out_width());
  low.execute_nchw(p.input, out);
  EXPECT_EQ(low.last_execution_mode(), ExecutionMode::kFused);
}

TEST(ExecutionModeAuto, StageTimingForcesStaged) {
  const ConvDesc d = make_desc(1, 64, 64, 14);
  LoWinoConfig cfg;
  cfg.m = 4;
  cfg.execution_mode = ExecutionMode::kFused;
  cfg.collect_stage_times = true;  // needs the three fork-join boundaries
  LoWinoConvolution conv(d, cfg);
  EXPECT_EQ(conv.resolve_execution_mode(4), ExecutionMode::kStaged);
}

// --- Workspace accounting ---------------------------------------------------
TEST(FusedWorkspaceBytes, IndependentOfTileCount) {
  // Same channels/blocking, 4x the tiles: staged workspace scales with the
  // image, the fused per-thread panels do not (the whole point of streaming).
  // Images big enough that adapt_blocking keeps the same n_blk for both.
  const ConvDesc small = make_desc(1, 64, 64, 56);
  const ConvDesc large = make_desc(1, 64, 64, 112);
  LoWinoConfig cfg;
  cfg.m = 4;
  LoWinoConvolution a(small, cfg), b(large, cfg);
  EXPECT_GT(b.workspace_bytes(ExecutionMode::kStaged, 1),
            2 * a.workspace_bytes(ExecutionMode::kStaged, 1));
  EXPECT_EQ(a.workspace_bytes(ExecutionMode::kFused, 1),
            b.workspace_bytes(ExecutionMode::kFused, 1));
  // Fused workspace is linear in the thread count (one arena per worker).
  EXPECT_EQ(a.workspace_bytes(ExecutionMode::kFused, 4),
            4 * a.workspace_bytes(ExecutionMode::kFused, 1));
}

TEST(FusedWorkspaceBytes, UnresolvedAutoReportsStaged) {
  // The zero-arg accessor keeps its historical meaning (full V + Z tensors)
  // until an execute resolves kAuto — existing memory-analysis callers rely
  // on comparing layers without executing them.
  const ConvDesc d = make_desc(1, 64, 64, 28);
  LoWinoConvolution conv(d, {});
  EXPECT_EQ(conv.workspace_bytes(), conv.workspace_bytes(ExecutionMode::kStaged, 1));
}

// --- Steady-state allocation behavior ---------------------------------------
TEST(FusedSteadyState, NoAllocationsAfterWarmup) {
  const ConvDesc d = make_desc(1, 64, 64, 14);
  const Problem p = make_problem(d, 17);
  ThreadPool pool(2);

  for (const ExecutionMode mode : {ExecutionMode::kStaged, ExecutionMode::kFused}) {
    LoWinoConfig cfg;
    cfg.m = 4;
    cfg.execution_mode = mode;
    LoWinoConvolution conv(d, cfg);
    conv.set_uniform_input_threshold(2.0f);
    conv.set_filters(p.weights, p.bias);

    std::vector<float> in(conv.input_layout().size(), 0.25f);
    std::vector<float> out(conv.output_layout().size());
    // Warmup: workspace + per-thread scratch allocation happens here.
    conv.execute_blocked(in, out, &pool);
    conv.execute_blocked(in, out, &pool);

    const std::uint64_t before = aligned_buffer_alloc_count();
    for (int i = 0; i < 5; ++i) conv.execute_blocked(in, out, &pool);
    EXPECT_EQ(aligned_buffer_alloc_count(), before)
        << "mode=" << execution_mode_name(mode);
  }
}

}  // namespace
}  // namespace lowino

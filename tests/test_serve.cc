// Tests for the serving layer (src/serve): the liveness-based arena planner
// (fuzzed), SessionPlan text round-trip, and InferenceSession — differential
// bit-identity against SequentialModel::forward_engine, plan replay,
// wisdom-backed selection, and the zero-allocation steady-state contract
// (global operator new counting + the AlignedBuffer allocation counter).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <random>
#include <span>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/env.h"
#include "common/rng.h"
#include "nn/model_zoo.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"
#include "quant/quantize.h"
#include "serve/arena.h"
#include "serve/session.h"
#include "tuning/wisdom.h"

// ---------------------------------------------------------------------------
// Malloc-counting harness: replace the global allocation functions so the
// steady-state test can assert InferenceSession::run touches the heap zero
// times. Replacement is binary-wide; counting is a single relaxed atomic, so
// the other tests are unaffected beyond a negligible constant cost.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// The nothrow variants must be replaced too: libstdc++'s temporary-buffer
// machinery (std::stable_sort) allocates with nothrow new but frees through
// plain operator delete — leaving nothrow new to the runtime while replacing
// delete is an alloc/dealloc mismatch under AddressSanitizer.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace lowino {
namespace {

std::uint64_t heap_alloc_count() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

// --- Arena planner ----------------------------------------------------------

bool time_overlap(const ArenaRequest& a, const ArenaRequest& b) {
  return a.def_step <= b.last_use_step && b.def_step <= a.last_use_step;
}

TEST(ArenaPlanner, FuzzNoAliasedOverlapAndPeakBound) {
  std::mt19937 rng(20260806);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t n = 1 + rng() % 40;
    std::vector<ArenaRequest> reqs(n);
    for (ArenaRequest& r : reqs) {
      r.bytes = rng() % 20000;  // zero-byte requests included on purpose
      const std::size_t a = rng() % 64, b = rng() % 64;
      r.def_step = std::min(a, b);
      r.last_use_step = std::max(a, b);
    }
    const ArenaPlan plan = plan_arena(reqs);
    ASSERT_EQ(plan.offsets.size(), n);

    std::size_t naive = 0;
    for (const ArenaRequest& r : reqs) naive += round_up(r.bytes, kArenaAlignment);
    EXPECT_EQ(plan.naive_bytes, naive);
    EXPECT_LE(plan.peak_bytes, naive);

    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t sz_i = round_up(reqs[i].bytes, kArenaAlignment);
      if (sz_i == 0) continue;
      EXPECT_EQ(plan.offsets[i] % kArenaAlignment, 0u);
      EXPECT_LE(plan.offsets[i] + sz_i, plan.peak_bytes);
      for (std::size_t j = i + 1; j < n; ++j) {
        const std::size_t sz_j = round_up(reqs[j].bytes, kArenaAlignment);
        if (sz_j == 0 || !time_overlap(reqs[i], reqs[j])) continue;
        const bool disjoint = plan.offsets[i] + sz_i <= plan.offsets[j] ||
                              plan.offsets[j] + sz_j <= plan.offsets[i];
        ASSERT_TRUE(disjoint) << "iter " << iter << ": live requests " << i << " and " << j
                              << " alias";
      }
    }
  }
}

TEST(ArenaPlanner, DisjointLifetimesShareBytes) {
  const ArenaRequest reqs[] = {{1000, 0, 1}, {1000, 2, 3}, {1000, 4, 5}};
  const ArenaPlan plan = plan_arena(reqs);
  EXPECT_EQ(plan.peak_bytes, round_up(1000, kArenaAlignment));
  EXPECT_EQ(plan.naive_bytes, 3 * round_up(1000, kArenaAlignment));
}

TEST(ArenaPlanner, OverlappingLifetimesStack) {
  const ArenaRequest reqs[] = {{64, 0, 2}, {64, 1, 3}, {64, 2, 4}};
  const ArenaPlan plan = plan_arena(reqs);
  // 0/1 and 1/2 overlap; 0 and 2 only touch at step 2 (inclusive) — all three
  // are simultaneously live at step 2, so the peak is the full stack.
  EXPECT_EQ(plan.peak_bytes, 3u * 64u);
}

// --- SessionPlan text format ------------------------------------------------

SessionPlan sample_plan() {
  SessionPlan p;
  p.batch = 4;
  p.arena_bytes = 65536;
  p.naive_bytes = 131072;
  SessionPlan::ConvChoice a;
  a.op_index = 2;
  a.layer = "conv3x3(64->64)";
  a.desc = "B4 C64 K64 H16 W16 r3";
  a.engine = EngineKind::kLoWinoF4;
  a.snr_db = 41.5;
  a.seconds = 1.25e-4;
  a.met_envelope = true;
  SessionPlan::ConvChoice b;
  b.op_index = 5;
  b.layer = "conv3x3(64->128)";
  b.desc = "B4 C64 K128 H8 W8 r3";
  b.engine = EngineKind::kInt8Direct;
  b.snr_db = 17.0;
  b.seconds = 9.5e-5;
  b.met_envelope = false;
  p.convs = {a, b};
  return p;
}

TEST(SessionPlanFormat, SerializeDeserializeRoundTrip) {
  const SessionPlan p = sample_plan();
  const auto q = SessionPlan::deserialize(p.serialize());
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->batch, p.batch);
  EXPECT_EQ(q->arena_bytes, p.arena_bytes);
  EXPECT_EQ(q->naive_bytes, p.naive_bytes);
  ASSERT_EQ(q->convs.size(), p.convs.size());
  for (std::size_t i = 0; i < p.convs.size(); ++i) {
    EXPECT_EQ(q->convs[i].op_index, p.convs[i].op_index);
    EXPECT_EQ(q->convs[i].layer, p.convs[i].layer);
    EXPECT_EQ(q->convs[i].desc, p.convs[i].desc);
    EXPECT_EQ(q->convs[i].engine, p.convs[i].engine);
    EXPECT_NEAR(q->convs[i].snr_db, p.convs[i].snr_db, 1e-12);
    EXPECT_NEAR(q->convs[i].seconds, p.convs[i].seconds, 1e-12);
    EXPECT_EQ(q->convs[i].met_envelope, p.convs[i].met_envelope);
  }
}

TEST(SessionPlanFormat, StrictParserRejectsCorruptText) {
  const std::string good = sample_plan().serialize();
  EXPECT_TRUE(SessionPlan::deserialize(good).has_value());
  // Whole-plan rejection on any malformed line.
  EXPECT_FALSE(SessionPlan::deserialize("").has_value());
  EXPECT_FALSE(SessionPlan::deserialize("batch = 0\narena = 1\nnaive = 1\n").has_value());
  EXPECT_FALSE(SessionPlan::deserialize(good + "garbage line\n").has_value());
  EXPECT_FALSE(
      SessionPlan::deserialize(good + "conv = 1 not_an_engine 1 1 1 | l | d\n").has_value());
  EXPECT_FALSE(SessionPlan::deserialize(good + "conv = 1 lowino_f4 1 1 7 | l | d\n")
                   .has_value());  // met flag must be 0/1
  EXPECT_FALSE(SessionPlan::deserialize(good + "conv = 1 lowino_f4 1 1 1 | only-one-bar\n")
                   .has_value());
  std::string no_batch = good;
  no_batch.erase(no_batch.find("batch = 4"), 10);
  EXPECT_FALSE(SessionPlan::deserialize(no_batch).has_value());
}

TEST(SessionPlanFormat, FileRoundTrip) {
  const SessionPlan p = sample_plan();
  const std::string path = ::testing::TempDir() + "lowino_session_plan_test.txt";
  ASSERT_TRUE(p.save(path));
  const auto q = SessionPlan::load(path);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->serialize(), p.serialize());
  std::remove(path.c_str());
}

// --- InferenceSession -------------------------------------------------------

Tensor<float> random_input(std::size_t batch, std::size_t hw, std::uint64_t seed) {
  Tensor<float> t({batch, 1, hw, hw});
  Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = rng.uniform(-1.0f, 1.0f);
  return t;
}

/// Calibrates `model` for `kind` on `calib` and compiles a session from the
/// same calibration batch, so both paths share identical quantization scales.
InferenceSession forced_session(SequentialModel& model, const Tensor<float>& calib,
                                EngineKind kind, ThreadPool* pool) {
  PlanOptions options;
  options.forced_engine = kind;
  options.pool = pool;
  return InferenceSession::compile(model, calib, options);
}

TEST(InferenceSession, BitIdenticalToForwardEngineMiniVgg) {
  // forward_engine hands FP32 between layers; the u8 hand-off deliberately
  // changes that, so the bit-identity contract is pinned to hand-off-off.
  ScopedRuntimeOverride u8_off("LOWINO_U8_HANDOFF", "0");
  ThreadPool& pool = ThreadPool::global();
  const Tensor<float> calib = random_input(4, 16, 101);
  const Tensor<float> input = random_input(4, 16, 202);
  for (const EngineKind kind :
       {EngineKind::kInt8Direct, EngineKind::kLoWinoF2, EngineKind::kLoWinoF4}) {
    SequentialModel model = make_minivgg();
    model.calibrate(calib, kind);
    model.finalize_calibration(kind);
    InferenceSession session = forced_session(model, calib, kind, &pool);
    const Tensor<float>& ref = model.forward_engine(input, kind, &pool);
    Tensor<float> out;
    session.run(input, out);
    ASSERT_EQ(out.shape(), ref.shape());
    EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), out.size() * sizeof(float)))
        << "engine " << engine_token(kind);
  }
}

TEST(InferenceSession, BitIdenticalToForwardEngineMiniResNet) {
  ScopedRuntimeOverride u8_off("LOWINO_U8_HANDOFF", "0");
  ThreadPool& pool = ThreadPool::global();
  const Tensor<float> calib = random_input(2, 16, 303);
  const Tensor<float> input = random_input(2, 16, 404);
  for (const EngineKind kind : {EngineKind::kInt8Direct, EngineKind::kLoWinoF4}) {
    SequentialModel model = make_miniresnet();
    model.calibrate(calib, kind);
    model.finalize_calibration(kind);
    InferenceSession session = forced_session(model, calib, kind, &pool);
    const Tensor<float>& ref = model.forward_engine(input, kind, &pool);
    Tensor<float> out;
    session.run(input, out);
    ASSERT_EQ(out.shape(), ref.shape());
    EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), out.size() * sizeof(float)))
        << "engine " << engine_token(kind);
  }
}

TEST(InferenceSession, SteadyStateRunIsAllocationFree) {
  SequentialModel model = make_miniresnet();
  const Tensor<float> calib = random_input(2, 16, 505);
  const Tensor<float> input = random_input(2, 16, 606);
  ThreadPool& pool = ThreadPool::global();
  InferenceSession session = forced_session(model, calib, EngineKind::kLoWinoF4, &pool);

  Tensor<float> out;
  session.run(input, out);  // warm the caller-owned output tensor
  const std::uint64_t heap_before = heap_alloc_count();
  const std::uint64_t aligned_before = aligned_buffer_alloc_count();
  for (int i = 0; i < 5; ++i) session.run(input, out);
  EXPECT_EQ(heap_alloc_count(), heap_before) << "operator new called on the serve path";
  EXPECT_EQ(aligned_buffer_alloc_count(), aligned_before)
      << "AlignedBuffer (re)allocated on the serve path";
}

TEST(InferenceSession, ArenaPeakAtMostNaiveOnZooModels) {
  ThreadPool& pool = ThreadPool::global();
  {
    SequentialModel vgg = make_minivgg();
    const Tensor<float> calib = random_input(2, 16, 707);
    InferenceSession s = forced_session(vgg, calib, EngineKind::kLoWinoF2, &pool);
    EXPECT_LE(s.plan().arena_bytes, s.plan().naive_bytes);
    // A chain network reuses ping-pong slots: the arena must beat one-buffer-
    // per-activation by a strict margin.
    EXPECT_LT(s.plan().arena_bytes, s.plan().naive_bytes);
  }
  {
    SequentialModel resnet = make_miniresnet();
    const Tensor<float> calib = random_input(2, 16, 808);
    InferenceSession s = forced_session(resnet, calib, EngineKind::kLoWinoF2, &pool);
    EXPECT_LT(s.plan().arena_bytes, s.plan().naive_bytes);
  }
}

TEST(InferenceSession, AutoSelectionMeetsEnvelopeAndRecordsPlan) {
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(2, 16, 909);
  PlanOptions options;
  options.pool = &ThreadPool::global();
  options.seconds_per_candidate = 0.005;
  InferenceSession session = InferenceSession::compile(model, calib, options);
  ASSERT_FALSE(session.plan().convs.empty());
  for (const SessionPlan::ConvChoice& c : session.plan().convs) {
    EXPECT_FALSE(c.layer.empty());
    EXPECT_FALSE(c.desc.empty());
    EXPECT_GT(c.seconds, 0.0);  // shoot-out actually measured
  }
  const Tensor<float> input = random_input(2, 16, 1010);
  Tensor<float> out;
  session.run(input, out);
  ASSERT_EQ(out.rank(), 2u);
  EXPECT_EQ(out.dim(0), 2u);
}

TEST(InferenceSession, PlanReplayServesIdentically) {
  const Tensor<float> calib = random_input(2, 16, 111);
  const Tensor<float> input = random_input(2, 16, 222);
  PlanOptions options;
  options.pool = &ThreadPool::global();
  options.seconds_per_candidate = 0.005;

  SequentialModel model_a = make_minivgg();
  InferenceSession first = InferenceSession::compile(model_a, calib, options);

  const std::string path = ::testing::TempDir() + "lowino_plan_replay_test.txt";
  ASSERT_TRUE(first.plan().save(path));
  const auto loaded = SessionPlan::load(path);
  ASSERT_TRUE(loaded.has_value());
  std::remove(path.c_str());

  // Fresh model with the same seed => same weights; the replayed session
  // must pick the same engines without measuring, and serve bit-identically.
  SequentialModel model_b = make_minivgg();
  PlanOptions replay;
  replay.pool = options.pool;
  replay.reuse = &*loaded;
  InferenceSession second = InferenceSession::compile(model_b, calib, replay);
  ASSERT_EQ(second.plan().convs.size(), first.plan().convs.size());
  for (std::size_t i = 0; i < first.plan().convs.size(); ++i) {
    EXPECT_EQ(second.plan().convs[i].engine, first.plan().convs[i].engine);
  }

  Tensor<float> out_a, out_b;
  first.run(input, out_a);
  second.run(input, out_b);
  ASSERT_EQ(out_a.shape(), out_b.shape());
  EXPECT_EQ(0, std::memcmp(out_a.data(), out_b.data(), out_a.size() * sizeof(float)));
}

TEST(InferenceSession, MiniMobileNetPlanRoundTripsDepthwiseLines) {
  const Tensor<float> calib = random_input(2, 16, 444);
  const Tensor<float> input = random_input(2, 16, 555);
  PlanOptions options;
  options.pool = &ThreadPool::global();
  options.seconds_per_candidate = 0.005;

  SequentialModel model_a = make_minimobilenet();
  InferenceSession first = InferenceSession::compile(model_a, calib, options);

  // The depthwise layers admit exactly one quantized candidate — the
  // dedicated int8_dw engine — and their plan lines must carry the grouped
  // descriptor token. The pointwise layers must land on a 1x1-capable direct
  // engine (the Winograd kinds all reject r = 1).
  std::size_t depthwise = 0, pointwise = 0;
  for (const SessionPlan::ConvChoice& c : first.plan().convs) {
    if (c.desc.find(" g") != std::string::npos) {
      ++depthwise;
      EXPECT_EQ(c.engine, EngineKind::kInt8Depthwise) << c.layer << " " << c.desc;
    } else if (c.desc.find(" r1") != std::string::npos) {
      ++pointwise;
      EXPECT_TRUE(c.engine == EngineKind::kInt8Conv1x1 ||
                  c.engine == EngineKind::kInt8Direct)
          << c.layer << " chose " << engine_token(c.engine);
    }
  }
  EXPECT_EQ(depthwise, 2u);
  EXPECT_EQ(pointwise, 2u);

  // Text round-trip: the serialized plan (with its " g#" descriptor tokens
  // and int8_dw engine tokens) must reload verbatim and replay bit-identical
  // on a fresh same-seed model.
  const std::string path = ::testing::TempDir() + "lowino_mobilenet_plan_test.txt";
  ASSERT_TRUE(first.plan().save(path));
  const auto loaded = SessionPlan::load(path);
  ASSERT_TRUE(loaded.has_value());
  std::remove(path.c_str());
  EXPECT_EQ(loaded->serialize(), first.plan().serialize());

  SequentialModel model_b = make_minimobilenet();
  PlanOptions replay;
  replay.pool = options.pool;
  replay.reuse = &*loaded;
  InferenceSession second = InferenceSession::compile(model_b, calib, replay);
  ASSERT_EQ(second.plan().convs.size(), first.plan().convs.size());
  for (std::size_t i = 0; i < first.plan().convs.size(); ++i) {
    EXPECT_EQ(second.plan().convs[i].engine, first.plan().convs[i].engine);
  }
  Tensor<float> out_a, out_b;
  first.run(input, out_a);
  second.run(input, out_b);
  ASSERT_EQ(out_a.shape(), out_b.shape());
  EXPECT_EQ(0, std::memcmp(out_a.data(), out_b.data(), out_a.size() * sizeof(float)));
}

TEST(InferenceSession, PlanReplayRejectsMismatchedModel) {
  const Tensor<float> calib = random_input(2, 16, 333);
  SequentialModel vgg = make_minivgg();
  PlanOptions options;
  options.pool = &ThreadPool::global();
  options.forced_engine = EngineKind::kLoWinoF2;
  InferenceSession session = InferenceSession::compile(vgg, calib, options);

  SessionPlan plan = session.plan();
  SequentialModel resnet = make_miniresnet();
  PlanOptions replay;
  replay.pool = options.pool;
  replay.reuse = &plan;
  EXPECT_THROW(InferenceSession::compile(resnet, calib, replay), std::invalid_argument);

  SessionPlan wrong_batch = plan;
  wrong_batch.batch = 8;
  replay.reuse = &wrong_batch;
  EXPECT_THROW(InferenceSession::compile(vgg, calib, replay), std::invalid_argument);
}

TEST(InferenceSession, WisdomRecordsAndReplaysPerLayerChoices) {
  const Tensor<float> calib = random_input(2, 16, 444);
  WisdomStore wisdom;
  PlanOptions options;
  options.pool = &ThreadPool::global();
  options.seconds_per_candidate = 0.005;
  options.wisdom = &wisdom;

  SequentialModel model_a = make_minivgg();
  InferenceSession first = InferenceSession::compile(model_a, calib, options);
  EXPECT_EQ(wisdom.string_size(), first.plan().convs.size());

  // The recorded entries survive the wisdom text format.
  const WisdomStore reloaded = WisdomStore::deserialize(wisdom.serialize());
  EXPECT_EQ(reloaded.string_size(), wisdom.string_size());

  // A second compile consults wisdom: same engines, no shoot-out timing.
  SequentialModel model_b = make_minivgg();
  WisdomStore reloaded_mutable = reloaded;
  PlanOptions consult = options;
  consult.wisdom = &reloaded_mutable;
  InferenceSession second = InferenceSession::compile(model_b, calib, consult);
  ASSERT_EQ(second.plan().convs.size(), first.plan().convs.size());
  for (std::size_t i = 0; i < first.plan().convs.size(); ++i) {
    EXPECT_EQ(second.plan().convs[i].engine, first.plan().convs[i].engine);
    EXPECT_EQ(second.plan().convs[i].seconds, 0.0);  // replayed, not measured
  }
}

TEST(InferenceSession, RejectsWrongInputShapeAndBadModels) {
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(2, 16, 555);
  InferenceSession session =
      forced_session(model, calib, EngineKind::kInt8Direct, &ThreadPool::global());
  const Tensor<float> wrong = random_input(4, 16, 556);
  Tensor<float> out;
  EXPECT_THROW(session.run(wrong, out), std::invalid_argument);

  SequentialModel empty;
  EXPECT_THROW(InferenceSession::compile(empty, calib, {}), std::invalid_argument);
  Tensor<float> rank2({2, 16});
  EXPECT_THROW(InferenceSession::compile(model, rank2, {}), std::invalid_argument);
}

// --- Post-op fusion ---------------------------------------------------------

TEST(SessionPlanFormat, PostOpsTokenRoundTrip) {
  SessionPlan p = sample_plan();
  p.convs[0].fuse_relu = true;
  p.convs[1].fuse_relu = true;
  p.convs[1].fuse_sum = true;
  const std::string text = p.serialize();
  EXPECT_NE(text.find(" post=relu |"), std::string::npos);
  EXPECT_NE(text.find(" post=sum+relu |"), std::string::npos);
  const auto q = SessionPlan::deserialize(text);
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->convs.size(), 2u);
  EXPECT_TRUE(q->convs[0].fuse_relu);
  EXPECT_FALSE(q->convs[0].fuse_sum);
  EXPECT_TRUE(q->convs[1].fuse_relu);
  EXPECT_TRUE(q->convs[1].fuse_sum);
  EXPECT_EQ(q->serialize(), text);
}

TEST(SessionPlanFormat, UnfusedLinesStayV1Compatible) {
  // No fused epilogue => no post token, so a v1-era conv line parses and
  // yields unfused choices (old plan files keep loading).
  const std::string text = sample_plan().serialize();
  // Only the format header mentions post=; no conv line carries a token.
  EXPECT_EQ(text.find("post=", text.find('\n')), std::string::npos);
  const std::string v1_line = "conv = 3 lowino_f2 25.5 0.0001 1 | conv3x3(64->64) | d\n";
  const auto q = SessionPlan::deserialize(text + v1_line);
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->convs.size(), 3u);
  EXPECT_FALSE(q->convs[2].fuse_relu);
  EXPECT_FALSE(q->convs[2].fuse_sum);
}

TEST(SessionPlanFormat, RejectsCorruptPostToken) {
  const std::string good = sample_plan().serialize();
  EXPECT_FALSE(SessionPlan::deserialize(good + "conv = 1 lowino_f4 1 1 1 post=banana | l | d\n")
                   .has_value());
  EXPECT_FALSE(SessionPlan::deserialize(good + "conv = 1 lowino_f4 1 1 1 post= | l | d\n")
                   .has_value());
  // A stray field that is not a post token is corruption, not an engine hint.
  EXPECT_FALSE(SessionPlan::deserialize(good + "conv = 1 lowino_f4 1 1 1 relu | l | d\n")
                   .has_value());
  // Extra trailing junk after a valid token is still rejected.
  EXPECT_FALSE(
      SessionPlan::deserialize(good + "conv = 1 lowino_f4 1 1 1 post=relu junk | l | d\n")
          .has_value());
}

TEST(InferenceSession, PostOpFusionShrinksOpListAndArena) {
  // Hand-off scales are calibrated on the fused op structure (a fused conv's
  // output is the post-epilogue value), so the fused-vs-unfused bit-compare
  // below only holds with the u8 hand-off off.
  ScopedRuntimeOverride u8_off("LOWINO_U8_HANDOFF", "0");
  ThreadPool& pool = ThreadPool::global();
  const Tensor<float> calib = random_input(2, 16, 1111);
  const Tensor<float> input = random_input(2, 16, 1212);

  SequentialModel fused_model = make_miniresnet();
  InferenceSession fused = forced_session(fused_model, calib, EngineKind::kLoWinoF4, &pool);

  SequentialModel plain_model = make_miniresnet();
  Tensor<float> out_fused, out_plain;
  {
    ScopedRuntimeOverride off("LOWINO_FUSE_POSTOPS", "0");
    InferenceSession plain = forced_session(plain_model, calib, EngineKind::kLoWinoF4, &pool);

    // Fusion swallows the stem relu plus each residual block's relu and
    // add+relu: strictly fewer ops and a strictly smaller arena peak (the
    // swallowed element-wise outputs drop out of the live-range set).
    EXPECT_LT(fused.op_count(), plain.op_count());
    EXPECT_LT(fused.plan().arena_bytes, plain.plan().arena_bytes);

    for (const SessionPlan::ConvChoice& c : plain.plan().convs) {
      EXPECT_FALSE(c.fuse_relu);
      EXPECT_FALSE(c.fuse_sum);
    }
    plain.run(input, out_plain);
  }
  // MiniResNet records both fusion shapes: conv->relu and conv->add+relu.
  bool saw_relu_only = false, saw_sum_relu = false;
  for (const SessionPlan::ConvChoice& c : fused.plan().convs) {
    saw_relu_only |= c.fuse_relu && !c.fuse_sum;
    saw_sum_relu |= c.fuse_relu && c.fuse_sum;
  }
  EXPECT_TRUE(saw_relu_only);
  EXPECT_TRUE(saw_sum_relu);
  EXPECT_NE(fused.plan().serialize().find("post=sum+relu"), std::string::npos);

  // The kill-switch is an A/B lever, not a semantics switch: fused and
  // unfused serving are bit-identical.
  fused.run(input, out_fused);
  ASSERT_EQ(out_fused.shape(), out_plain.shape());
  EXPECT_EQ(0, std::memcmp(out_fused.data(), out_plain.data(),
                           out_fused.size() * sizeof(float)));
}

TEST(InferenceSession, FusedPlanReplaysUnderKillSwitchBitIdentically) {
  // Plan tokens are informational: a fused plan file must load and replay in
  // a fusion-off process (engines applied per conv ordinal, epilogues run as
  // separate passes) and serve the exact same bits. The dtype tokens are the
  // exception — they assume the fused op structure — so the two kill-switches
  // compose: fusion-off replay requires hand-off-off too.
  ScopedRuntimeOverride u8_off("LOWINO_U8_HANDOFF", "0");
  ThreadPool& pool = ThreadPool::global();
  const Tensor<float> calib = random_input(2, 16, 1515);
  const Tensor<float> input = random_input(2, 16, 1616);

  SequentialModel model_a = make_miniresnet();
  InferenceSession fused = forced_session(model_a, calib, EngineKind::kLoWinoF4, &pool);
  const std::string text = fused.plan().serialize();
  ASSERT_NE(text.find("post=sum+relu"), std::string::npos);
  const auto loaded = SessionPlan::deserialize(text);
  ASSERT_TRUE(loaded.has_value());

  Tensor<float> out_fused, out_replayed;
  fused.run(input, out_fused);
  {
    ScopedRuntimeOverride off("LOWINO_FUSE_POSTOPS", "0");
    SequentialModel model_b = make_miniresnet();
    PlanOptions replay;
    replay.pool = &pool;
    replay.reuse = &*loaded;
    InferenceSession unfused = InferenceSession::compile(model_b, calib, replay);
    for (const SessionPlan::ConvChoice& c : unfused.plan().convs) {
      EXPECT_FALSE(c.fuse_relu);
      EXPECT_FALSE(c.fuse_sum);
    }
    unfused.run(input, out_replayed);
  }
  ASSERT_EQ(out_fused.shape(), out_replayed.shape());
  EXPECT_EQ(0, std::memcmp(out_fused.data(), out_replayed.data(),
                           out_fused.size() * sizeof(float)));
}

TEST(InferenceSession, FusedRunStaysAllocationFreeAndBitIdenticalToForwardEngine) {
  // forward_engine routes through the same fused epilogues (ConvLayer::
  // forward_engine_fused), so the differential holds with fusion on for an
  // engine with post-op support and for one without (graceful fallback).
  ScopedRuntimeOverride u8_off("LOWINO_U8_HANDOFF", "0");
  ThreadPool& pool = ThreadPool::global();
  const Tensor<float> calib = random_input(2, 16, 1313);
  const Tensor<float> input = random_input(2, 16, 1414);
  for (const EngineKind kind : {EngineKind::kInt8Direct, EngineKind::kFp32WinoF4}) {
    SequentialModel model = make_miniresnet();
    model.calibrate(calib, kind);
    model.finalize_calibration(kind);
    InferenceSession session = forced_session(model, calib, kind, &pool);
    const Tensor<float>& ref = model.forward_engine(input, kind, &pool);
    Tensor<float> out;
    session.run(input, out);
    ASSERT_EQ(out.shape(), ref.shape());
    EXPECT_EQ(0, std::memcmp(out.data(), ref.data(), out.size() * sizeof(float)))
        << "engine " << engine_token(kind);
    const std::uint64_t heap_before = heap_alloc_count();
    for (int i = 0; i < 3; ++i) session.run(input, out);
    EXPECT_EQ(heap_alloc_count(), heap_before)
        << "fused serve path allocated (engine " << engine_token(kind) << ')';
  }
}

// --- u8 activation hand-off -------------------------------------------------

TEST(ArenaPlanner, SlotCompatibilityChecksByteFootprint) {
  // The fused-residual in-place alias may only pair values whose byte
  // footprints match exactly — equal element counts with mixed element widths
  // would let the wider value overrun the narrower slot.
  EXPECT_TRUE(arena_slots_compatible(1024, DType::kF32, 1024, DType::kF32));
  EXPECT_TRUE(arena_slots_compatible(1024, DType::kU8, 1024, DType::kU8));
  EXPECT_FALSE(arena_slots_compatible(1024, DType::kU8, 1024, DType::kF32));
  EXPECT_FALSE(arena_slots_compatible(1024, DType::kF32, 1024, DType::kU8));
  // Equal byte footprints across widths are still one slot.
  EXPECT_TRUE(arena_slots_compatible(4096, DType::kU8, 1024, DType::kF32));
}

TEST(SessionPlanFormat, DtypeTokenRoundTrip) {
  SessionPlan p = sample_plan();
  p.convs[0].out_dtype = DType::kU8;
  p.convs[1].fuse_relu = true;
  p.convs[1].fuse_sum = true;
  p.convs[1].in_dtype = DType::kU8;
  p.convs[1].out_dtype = DType::kU8;
  const std::string text = p.serialize();
  EXPECT_NE(text.find(" dtype=f32:u8 |"), std::string::npos);
  EXPECT_NE(text.find(" post=sum+relu dtype=u8:u8 |"), std::string::npos);
  const auto q = SessionPlan::deserialize(text);
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->convs.size(), 2u);
  EXPECT_EQ(q->convs[0].in_dtype, DType::kF32);
  EXPECT_EQ(q->convs[0].out_dtype, DType::kU8);
  EXPECT_EQ(q->convs[1].in_dtype, DType::kU8);
  EXPECT_EQ(q->convs[1].out_dtype, DType::kU8);
  EXPECT_EQ(q->serialize(), text);
}

TEST(SessionPlanFormat, AllF32LinesStayV2Compatible) {
  // No u8 edge => no dtype token: all-FP32 conv lines are byte-identical to
  // the v2 format, so v2-era plan files keep loading (as all-FP32 plans).
  const std::string text = sample_plan().serialize();
  EXPECT_EQ(text.find("dtype=", text.find('\n')), std::string::npos);
  const std::string v2_line =
      "conv = 3 lowino_f2 25.5 0.0001 1 post=relu | conv3x3(64->64) | d\n";
  const auto q = SessionPlan::deserialize(text + v2_line);
  ASSERT_TRUE(q.has_value());
  ASSERT_EQ(q->convs.size(), 3u);
  EXPECT_EQ(q->convs[2].in_dtype, DType::kF32);
  EXPECT_EQ(q->convs[2].out_dtype, DType::kF32);
}

TEST(SessionPlanFormat, RejectsCorruptDtypeToken) {
  const std::string good = sample_plan().serialize();
  for (const char* bad : {
           "conv = 1 lowino_f4 1 1 1 dtype=u9:f32 | l | d\n",   // unknown dtype
           "conv = 1 lowino_f4 1 1 1 dtype=u8 | l | d\n",       // missing out half
           "conv = 1 lowino_f4 1 1 1 dtype=u8:f32:u8 | l | d\n",
           "conv = 1 lowino_f4 1 1 1 dtype= | l | d\n",
           "conv = 1 lowino_f4 1 1 1 dtype=:u8 | l | d\n",
           "conv = 1 lowino_f4 1 1 1 dtype=u8:u8 junk | l | d\n",
           "conv = 1 lowino_f4 1 1 1 dtype=u8:u8 post=relu | l | d\n",  // wrong order
       }) {
    EXPECT_FALSE(SessionPlan::deserialize(good + bad).has_value()) << bad;
  }
}

TEST(SessionPlanFormat, FuzzV3RoundTripAndDtypeCorruption) {
  std::mt19937 rng(20260808);
  const EngineKind kinds[] = {EngineKind::kInt8Direct, EngineKind::kLoWinoF2,
                              EngineKind::kLoWinoF4, EngineKind::kLoWinoF6};
  for (int iter = 0; iter < 200; ++iter) {
    SessionPlan p;
    p.batch = 1 + rng() % 8;
    p.arena_bytes = rng() % 100000;
    p.naive_bytes = p.arena_bytes + rng() % 100000;
    const std::size_t n = rng() % 6;
    for (std::size_t i = 0; i < n; ++i) {
      SessionPlan::ConvChoice c;
      c.op_index = rng() % 32;
      c.layer = "layer" + std::to_string(i);
      c.desc = "B1 C8 K8 H8 W8 r3";
      c.engine = kinds[rng() % 4];
      c.snr_db = static_cast<double>(rng() % 1000) / 10.0;
      c.seconds = static_cast<double>(rng() % 1000) * 1e-6;
      c.met_envelope = rng() % 2 == 0;
      c.fuse_relu = rng() % 2 == 0;
      c.fuse_sum = c.fuse_relu && rng() % 2 == 0;
      c.in_dtype = rng() % 2 == 0 ? DType::kU8 : DType::kF32;
      c.out_dtype = rng() % 2 == 0 ? DType::kU8 : DType::kF32;
      p.convs.push_back(c);
    }
    const std::string text = p.serialize();
    const auto q = SessionPlan::deserialize(text);
    ASSERT_TRUE(q.has_value()) << text;
    EXPECT_EQ(q->serialize(), text);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(q->convs[i].in_dtype, p.convs[i].in_dtype);
      EXPECT_EQ(q->convs[i].out_dtype, p.convs[i].out_dtype);
      EXPECT_EQ(q->convs[i].fuse_relu, p.convs[i].fuse_relu);
      EXPECT_EQ(q->convs[i].fuse_sum, p.convs[i].fuse_sum);
    }
    // Single-character corruption inside a dtype token must either reject the
    // whole plan or leave the text unchanged after a round trip — it must
    // never silently parse to different dtypes.
    const std::size_t at = text.find("dtype=", text.find('\n'));
    if (at != std::string::npos) {
      std::string corrupt = text;
      corrupt[at + 6 + rng() % 6] = "xq9#!"[rng() % 5];
      const auto r = SessionPlan::deserialize(corrupt);
      if (r.has_value()) EXPECT_EQ(r->serialize(), corrupt);
    }
  }
}

TEST(InferenceSession, U8HandoffAssignsEdgesAndStaysInEnvelope) {
  // Pin hand-off ON so the test also passes in the CI kill-switch rerun
  // (LOWINO_U8_HANDOFF=0 in the environment; programmatic overrides beat it).
  ScopedRuntimeOverride u8_on("LOWINO_U8_HANDOFF", "1");
  ThreadPool& pool = ThreadPool::global();
  const Tensor<float> calib = random_input(2, 16, 2021);
  const Tensor<float> input = random_input(2, 16, 2122);

  SequentialModel model = make_miniresnet();
  InferenceSession session = forced_session(model, calib, EngineKind::kLoWinoF4, &pool);

  // The type-assignment pass must find u8 edges on MiniResNet (conv chains
  // joined by relu/maxpool passthroughs) and record them in the plan.
  std::size_t u8_outs = 0, u8_ins = 0;
  for (const SessionPlan::ConvChoice& c : session.plan().convs) {
    u8_outs += c.out_dtype == DType::kU8;
    u8_ins += c.in_dtype == DType::kU8;
  }
  EXPECT_GT(u8_outs, 0u);
  EXPECT_GT(u8_ins, 0u);
  const std::string text = session.plan().serialize();
  EXPECT_NE(text.find("dtype=", text.find('\n')), std::string::npos);
  EXPECT_NE(session.plan().summary().find("u8 hand-off"), std::string::npos);

  // Whole-network accuracy: the u8-served output must clear the same SNR
  // floor the per-edge gate enforces, measured against hand-off-off serving.
  Tensor<float> out_u8;
  session.run(input, out_u8);
  Tensor<float> out_f32;
  {
    ScopedRuntimeOverride off("LOWINO_U8_HANDOFF", "0");
    SequentialModel model_f = make_miniresnet();
    InferenceSession plain = forced_session(model_f, calib, EngineKind::kLoWinoF4, &pool);
    for (const SessionPlan::ConvChoice& c : plain.plan().convs) {
      EXPECT_EQ(c.in_dtype, DType::kF32);
      EXPECT_EQ(c.out_dtype, DType::kF32);
    }
    const std::string off_text = plain.plan().serialize();
    EXPECT_EQ(off_text.find("dtype=", off_text.find('\n')), std::string::npos);
    plain.run(input, out_f32);
  }
  ASSERT_EQ(out_u8.shape(), out_f32.shape());
  const QuantError e =
      quantization_error(std::span<const float>(out_f32.data(), out_f32.size()),
                         std::span<const float>(out_u8.data(), out_u8.size()));
  EXPECT_GE(e.signal_to_noise_db, 20.0);
}

TEST(InferenceSession, U8PlanReplayServesBitIdentically) {
  ScopedRuntimeOverride u8_on("LOWINO_U8_HANDOFF", "1");
  ThreadPool& pool = ThreadPool::global();
  const Tensor<float> calib = random_input(2, 16, 2323);
  const Tensor<float> input = random_input(2, 16, 2424);

  SequentialModel model_a = make_miniresnet();
  InferenceSession first = forced_session(model_a, calib, EngineKind::kLoWinoF4, &pool);
  const std::string text = first.plan().serialize();
  ASSERT_NE(text.find("dtype=", text.find('\n')), std::string::npos);
  const auto loaded = SessionPlan::deserialize(text);
  ASSERT_TRUE(loaded.has_value());

  // Replay reconstructs the per-value dtypes from the tokens (authoritative)
  // and re-derives the hand-off scales deterministically, so a fresh model
  // with the same weights must serve the exact same bytes.
  SequentialModel model_b = make_miniresnet();
  PlanOptions replay;
  replay.pool = &pool;
  replay.reuse = &*loaded;
  InferenceSession second = InferenceSession::compile(model_b, calib, replay);
  ASSERT_EQ(second.plan().convs.size(), first.plan().convs.size());
  for (std::size_t i = 0; i < first.plan().convs.size(); ++i) {
    EXPECT_EQ(second.plan().convs[i].engine, first.plan().convs[i].engine);
    EXPECT_EQ(second.plan().convs[i].in_dtype, first.plan().convs[i].in_dtype);
    EXPECT_EQ(second.plan().convs[i].out_dtype, first.plan().convs[i].out_dtype);
  }

  Tensor<float> out_a, out_b;
  first.run(input, out_a);
  second.run(input, out_b);
  ASSERT_EQ(out_a.shape(), out_b.shape());
  EXPECT_EQ(0, std::memcmp(out_a.data(), out_b.data(), out_a.size() * sizeof(float)));
}

TEST(InferenceSession, U8ServeStaysAllocationFree) {
  // The zero-allocation steady-state contract holds with u8 edges live (the
  // u8 blocked-layout scratch is pre-warmed at compile time like the rest).
  ScopedRuntimeOverride u8_on("LOWINO_U8_HANDOFF", "1");
  SequentialModel model = make_miniresnet();
  const Tensor<float> calib = random_input(2, 16, 2525);
  const Tensor<float> input = random_input(2, 16, 2626);
  ThreadPool& pool = ThreadPool::global();
  InferenceSession session = forced_session(model, calib, EngineKind::kLoWinoF4, &pool);
  std::size_t u8_edges = 0;
  for (const SessionPlan::ConvChoice& c : session.plan().convs) {
    u8_edges += c.out_dtype == DType::kU8;
  }
  ASSERT_GT(u8_edges, 0u);

  Tensor<float> out;
  session.run(input, out);  // warm the caller-owned output tensor
  const std::uint64_t heap_before = heap_alloc_count();
  const std::uint64_t aligned_before = aligned_buffer_alloc_count();
  for (int i = 0; i < 5; ++i) session.run(input, out);
  EXPECT_EQ(heap_alloc_count(), heap_before) << "operator new called on the u8 serve path";
  EXPECT_EQ(aligned_buffer_alloc_count(), aligned_before)
      << "AlignedBuffer (re)allocated on the u8 serve path";
}

TEST(InferenceSession, EmitsOneServeSpanPerOp) {
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(2, 16, 666);
  InferenceSession session =
      forced_session(model, calib, EngineKind::kLoWinoF2, &ThreadPool::global());
  const Tensor<float> input = random_input(2, 16, 667);
  Tensor<float> out;
  session.run(input, out);  // warm before enabling (no serve spans recorded)

  profiler_reset();
  profiler_set_enabled(true);
  session.run(input, out);
  profiler_set_enabled(false);
  const auto totals = profiler_stage_totals();
  const auto& serve = totals[static_cast<std::size_t>(ProfileStage::kServe)];
  EXPECT_EQ(serve.spans, session.op_count());
  EXPECT_GT(serve.seconds, 0.0);
  profiler_reset();
}

}  // namespace
}  // namespace lowino

// Tests for the automatic algorithm selector (the paper's future work #1).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "direct/direct_f32.h"
#include "quant/quantize.h"
#include "tuning/auto_select.h"

namespace lowino {
namespace {

ConvDesc make_desc(std::size_t c, std::size_t k, std::size_t hw, std::size_t batch = 1) {
  ConvDesc d;
  d.batch = batch;
  d.in_channels = c;
  d.out_channels = k;
  d.height = d.width = hw;
  d.kernel = 3;
  d.pad = 1;
  return d;
}

struct Problem {
  std::vector<float> input, weights, bias, ref;
};

Problem make_problem(const ConvDesc& d, unsigned seed) {
  Problem p;
  Rng rng(seed);
  p.input.resize(d.batch * d.in_channels * d.height * d.width);
  p.weights.resize(d.out_channels * d.in_channels * 9);
  p.bias.resize(d.out_channels);
  for (auto& v : p.input) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : p.weights) v = rng.normal() * 0.1f;
  p.ref.resize(d.batch * d.out_channels * d.out_height() * d.out_width());
  direct_conv_f32_reference(d, p.input, p.weights, p.bias, p.ref);
  return p;
}

TEST(AutoConv, SelectsAndProducesCorrectOutput) {
  const ConvDesc d = make_desc(64, 64, 14);
  Problem p = make_problem(d, 1);
  AutoConvOptions opts;
  opts.seconds_per_candidate = 0.01;
  AutoConv conv(d, opts);
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  EXPECT_FALSE(conv.selected());
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(p.input, out);
  EXPECT_TRUE(conv.selected());
  EXPECT_GT(quantization_error(p.ref, out).signal_to_noise_db, 15.0);
}

TEST(AutoConv, SelectionIsSticky) {
  const ConvDesc d = make_desc(64, 64, 10);
  Problem p = make_problem(d, 2);
  AutoConvOptions opts;
  opts.seconds_per_candidate = 0.005;
  AutoConv conv(d, opts);
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(p.input, out);
  const ConvAlgorithm chosen = conv.algorithm();
  conv.execute_nchw(p.input, out);
  EXPECT_EQ(conv.algorithm(), chosen);
}

TEST(AutoConv, ForcedAlgorithmSkipsMeasurement) {
  const ConvDesc d = make_desc(64, 64, 8);
  Problem p = make_problem(d, 3);
  AutoConvOptions opts;
  opts.forced = ConvAlgorithm::kInt8Direct;
  AutoConv conv(d, opts);
  EXPECT_TRUE(conv.selected());
  EXPECT_EQ(conv.algorithm(), ConvAlgorithm::kInt8Direct);
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(p.input, out);
  EXPECT_GT(quantization_error(p.ref, out).signal_to_noise_db, 20.0);
}

TEST(AutoConv, EachForcedAlgorithmIsAccurate) {
  const ConvDesc d = make_desc(64, 128, 12);
  Problem p = make_problem(d, 4);
  for (ConvAlgorithm a : {ConvAlgorithm::kInt8Direct, ConvAlgorithm::kLoWinoF2,
                          ConvAlgorithm::kLoWinoF4}) {
    AutoConvOptions opts;
    opts.forced = a;
    AutoConv conv(d, opts);
    conv.calibrate(p.input);
    conv.finalize_calibration();
    conv.set_filters(p.weights, p.bias);
    std::vector<float> out(p.ref.size());
    conv.execute_nchw(p.input, out);
    EXPECT_GT(quantization_error(p.ref, out).signal_to_noise_db, 14.0)
        << algorithm_name(a);
  }
}

TEST(AutoConv, AlgorithmNamesDistinct) {
  EXPECT_STRNE(algorithm_name(ConvAlgorithm::kInt8Direct),
               algorithm_name(ConvAlgorithm::kLoWinoF2));
  EXPECT_STRNE(algorithm_name(ConvAlgorithm::kLoWinoF2),
               algorithm_name(ConvAlgorithm::kLoWinoF4));
}

TEST(AutoConv, WisdomKeyIncludesAlgoTag) {
  const ConvDesc d = make_desc(64, 64, 8);
  EXPECT_NE(AutoConv::wisdom_algo_key(d).find("algo"), std::string::npos);
}

}  // namespace
}  // namespace lowino

// Concurrency stress for the BatchingServer: many client threads hammering
// serve() while a controller start/stop-churns the worker fleet, plus the
// worker-hot-path allocation contract. This binary is part of the `stress`
// aggregate the tsan-stress preset runs — under ThreadSanitizer any data
// race in the admission queue / slot machine / drain protocol is a hard
// failure.
//
// Response integrity: every request uses an input with a precomputed serial
// reference, so a lost, duplicated or cross-wired response shows up as a
// wrong-bits or wrong-count failure, not a flake.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/fault.h"
#include "common/rng.h"
#include "nn/model_zoo.h"
#include "parallel/thread_pool.h"
#include "serve/server.h"
#include "serve/session.h"

// ---------------------------------------------------------------------------
// Global operator-new counting (the test_serve.cc pattern): replacement is
// binary-wide, counting a single relaxed atomic, so the zero-allocation
// window below observes every C++ heap allocation from any thread.
namespace {
std::atomic<std::uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
// The nothrow variants must be replaced too: libstdc++'s temporary-buffer
// machinery (std::stable_sort) allocates with nothrow new but frees through
// plain operator delete — leaving nothrow new to the runtime while replacing
// delete is an alloc/dealloc mismatch under AddressSanitizer.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace lowino {
namespace {

std::uint64_t heap_alloc_count() {
  return g_heap_allocs.load(std::memory_order_relaxed);
}

Tensor<float> random_input(std::size_t hw, std::uint64_t seed) {
  Tensor<float> t({1, 1, hw, hw});
  Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = rng.uniform(-1.0f, 1.0f);
  return t;
}

TEST(ServerStress, ConcurrentClientsWithStartStopChurn) {
  // Bit-compare against a batch-1 serial session: pin the calibration stride
  // (batch-count dependent otherwise) exactly like the differential tests.
  ScopedRuntimeOverride calib_stride("LOWINO_CALIB_STRIDE", "1");
  constexpr std::size_t kHw = 16, kInputs = 16, kClients = 8, kPerClient = 24;

  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(kHw, 5);

  ThreadPool pool(1);
  PlanOptions serial_options;
  serial_options.forced_engine = EngineKind::kInt8Direct;
  serial_options.pool = &pool;
  InferenceSession serial = InferenceSession::compile(model, calib, serial_options);

  std::vector<Tensor<float>> inputs;
  std::vector<std::vector<float>> refs;
  Tensor<float> ref_out;
  for (std::size_t i = 0; i < kInputs; ++i) {
    inputs.push_back(random_input(kHw, 6000 + i));
    serial.run(inputs.back(), ref_out);
    refs.emplace_back(ref_out.data(), ref_out.data() + ref_out.size());
  }

  ServerOptions options;
  options.max_batch = 4;
  options.linger_ns = 200000;  // 0.2 ms
  options.num_workers = 2;
  options.threads_per_worker = 1;
  options.queue_capacity = 64;
  options.plan.forced_engine = EngineKind::kInt8Direct;
  BatchingServer server(model, calib, options);

  std::atomic<std::uint64_t> ok{0}, bounced{0}, wrong{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<float> out(server.output_elems());
      for (std::size_t r = 0; r < kPerClient; ++r) {
        const std::size_t i = (c * kPerClient + r) % kInputs;
        std::fill(out.begin(), out.end(), -1.0f);
        switch (server.serve(inputs[i].span(), out)) {
          case ServeResult::kOk:
            ok.fetch_add(1);
            if (std::memcmp(out.data(), refs[i].data(),
                            out.size() * sizeof(float)) != 0) {
              wrong.fetch_add(1);
            }
            break;
          case ServeResult::kShutdown:
          case ServeResult::kQueueFull:
            bounced.fetch_add(1);  // well-defined rejection, never half-served
            break;
          case ServeResult::kExpired:
          case ServeResult::kFailed:
          case ServeResult::kWorkerLost:
            wrong.fetch_add(1);  // no SLO and no faults armed: all would be bugs
            break;
        }
      }
    });
  }
  // Start/stop churn while the clients hammer: each stop() must drain every
  // admitted request (the clients above would otherwise hang or see
  // wrong-bit responses) and each start() must serve correctly again.
  for (int cycle = 0; cycle < 4; ++cycle) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    server.stop();
    server.start();
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(ok.load() + bounced.load(), kClients * kPerClient)
      << "every request must resolve to exactly one outcome";
  EXPECT_GT(ok.load(), 0u);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.served, ok.load()) << "no lost or duplicated responses";
  EXPECT_EQ(stats.batched_requests, stats.served);
  EXPECT_EQ(stats.rejected_expired, 0u);
}

TEST(ServerStress, WorkerHotPathIsAllocationFree) {
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(16, 7);
  ServerOptions options;
  options.max_batch = 2;
  options.linger_ns = 0;  // close immediately: max batch-formation traffic
  options.num_workers = 1;
  options.threads_per_worker = 1;
  options.plan.forced_engine = EngineKind::kInt8Direct;
  BatchingServer server(model, calib, options);

  std::vector<float> in(server.input_elems(), 0.25f), out(server.output_elems());
  // Warm up: first serves may fault in lazily-initialized runtime state
  // (condition-variable internals, profiler TLS, ...).
  for (int i = 0; i < 20; ++i) {
    ASSERT_EQ(server.serve(in, out), ServeResult::kOk);
  }

  const std::uint64_t heap_before = heap_alloc_count();
  bool all_ok = true;
  for (int i = 0; i < 200; ++i) {
    all_ok = all_ok && server.serve(in, out) == ServeResult::kOk;
  }
  const std::uint64_t heap_after = heap_alloc_count();
  EXPECT_TRUE(all_ok);
  EXPECT_EQ(heap_after - heap_before, 0u)
      << "steady-state serve round trip (admission -> batch -> session.run -> "
         "scatter -> wake) must not touch the heap";
}

// Start/stop alone, repeated quickly: the drain protocol must terminate with
// an empty queue and joinable workers every time, with no client traffic to
// push it along.
TEST(ServerStress, RepeatedStartStopQuiesces) {
  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(16, 8);
  ServerOptions options;
  options.max_batch = 4;
  options.num_workers = 2;
  options.plan.forced_engine = EngineKind::kInt8Direct;
  BatchingServer server(model, calib, options);
  std::vector<float> in(server.input_elems(), 1.0f), out(server.output_elems());
  for (int i = 0; i < 10; ++i) {
    server.stop();
    EXPECT_FALSE(server.running());
    server.start();
    EXPECT_TRUE(server.running());
    EXPECT_EQ(server.serve(in, out), ServeResult::kOk);
  }
}

// Satellite: stop() racing active serve() traffic. Unlike the churn test
// above there is no settling sleep between lifecycle flips — the controller
// flips stop()/start() back-to-back so nearly every cycle catches clients
// mid-admission or mid-wait. Under TSan (tsan-stress preset) this is the
// drain-protocol race detector; in any mode a request that hangs instead of
// resolving to kShutdown fails via the ctest timeout.
TEST(ServerStress, StopDuringActiveServeResolvesEveryRequest) {
  ScopedRuntimeOverride calib_stride("LOWINO_CALIB_STRIDE", "1");
  constexpr std::size_t kHw = 16, kInputs = 8, kClients = 8, kPerClient = 48;

  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(kHw, 9);

  ThreadPool pool(1);
  PlanOptions serial_options;
  serial_options.forced_engine = EngineKind::kInt8Direct;
  serial_options.pool = &pool;
  InferenceSession serial = InferenceSession::compile(model, calib, serial_options);

  std::vector<Tensor<float>> inputs;
  std::vector<std::vector<float>> refs;
  Tensor<float> ref_out;
  for (std::size_t i = 0; i < kInputs; ++i) {
    inputs.push_back(random_input(kHw, 9100 + i));
    serial.run(inputs.back(), ref_out);
    refs.emplace_back(ref_out.data(), ref_out.data() + ref_out.size());
  }

  ServerOptions options;
  options.max_batch = 4;
  options.linger_ns = 100000;  // 0.1 ms
  options.num_workers = 2;
  options.threads_per_worker = 1;
  options.queue_capacity = 32;
  options.plan.forced_engine = EngineKind::kInt8Direct;
  BatchingServer server(model, calib, options);

  std::atomic<std::uint64_t> ok{0}, bounced{0}, wrong{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<float> out(server.output_elems());
      for (std::size_t r = 0; r < kPerClient; ++r) {
        const std::size_t i = (c * kPerClient + r) % kInputs;
        std::fill(out.begin(), out.end(), -1.0f);
        switch (server.serve(inputs[i].span(), out)) {
          case ServeResult::kOk:
            ok.fetch_add(1);
            if (std::memcmp(out.data(), refs[i].data(),
                            out.size() * sizeof(float)) != 0) {
              wrong.fetch_add(1);
            }
            break;
          case ServeResult::kShutdown:
          case ServeResult::kQueueFull:
            bounced.fetch_add(1);
            break;
          case ServeResult::kExpired:
          case ServeResult::kFailed:
          case ServeResult::kWorkerLost:
            wrong.fetch_add(1);  // no SLO and no faults armed
            break;
        }
      }
    });
  }
  // Back-to-back flips: stop() must resolve every admitted request (kOk with
  // correct bits, or kShutdown) before returning, even while clients are
  // concurrently inside serve().
  for (int cycle = 0; cycle < 16; ++cycle) {
    server.stop();
    server.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(wrong.load(), 0u);
  EXPECT_EQ(ok.load() + bounced.load(), kClients * kPerClient)
      << "every request must resolve to exactly one outcome, never hang";
  EXPECT_EQ(server.stats().served, ok.load());
}

// Fault soak: randomized engine-execute faults at a few percent while
// concurrent clients hammer a two-worker fleet. The contract under fire:
// every response is either kOk with bit-exact output, or a clean failure
// that left the caller's buffer untouched — never wrong bits, never a lost
// or duplicated ticket, never a hang.
TEST(ServerStress, FaultSoakEveryResponseIsCorrectOrCleanlyFailed) {
  ScopedRuntimeOverride calib_stride("LOWINO_CALIB_STRIDE", "1");
  constexpr std::size_t kHw = 16, kInputs = 8, kClients = 6, kPerClient = 32;

  SequentialModel model = make_minivgg();
  const Tensor<float> calib = random_input(kHw, 11);

  ThreadPool pool(1);
  PlanOptions serial_options;
  serial_options.forced_engine = EngineKind::kInt8Direct;
  serial_options.pool = &pool;
  InferenceSession serial = InferenceSession::compile(model, calib, serial_options);

  std::vector<Tensor<float>> inputs;
  std::vector<std::vector<float>> refs;
  Tensor<float> ref_out;
  for (std::size_t i = 0; i < kInputs; ++i) {
    inputs.push_back(random_input(kHw, 11000 + i));
    serial.run(inputs.back(), ref_out);
    refs.emplace_back(ref_out.data(), ref_out.data() + ref_out.size());
  }

  ServerOptions options;
  options.max_batch = 4;
  options.linger_ns = 100000;
  options.num_workers = 2;
  options.threads_per_worker = 1;
  options.queue_capacity = 64;
  options.plan.forced_engine = EngineKind::kInt8Direct;
  BatchingServer server(model, calib, options);

  std::atomic<std::uint64_t> ok{0}, failed{0}, bounced{0}, wrong{0};
  std::uint64_t injected = 0;
  {
    ScopedFaultPlan fault_plan;
    fault_plan.fail_rate(FaultSite::kEngineExecute, 0.05, /*seed=*/42);

    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<float> out(server.output_elems());
        for (std::size_t r = 0; r < kPerClient; ++r) {
          const std::size_t i = (c * kPerClient + r) % kInputs;
          std::fill(out.begin(), out.end(), -1.0f);
          switch (server.serve(inputs[i].span(), out)) {
            case ServeResult::kOk:
              ok.fetch_add(1);
              if (std::memcmp(out.data(), refs[i].data(),
                              out.size() * sizeof(float)) != 0) {
                wrong.fetch_add(1);
              }
              break;
            case ServeResult::kFailed: {
              failed.fetch_add(1);
              // A failed serve must not have scribbled on the caller's buffer.
              bool untouched = true;
              for (const float v : out) untouched = untouched && v == -1.0f;
              if (!untouched) wrong.fetch_add(1);
              break;
            }
            case ServeResult::kWorkerLost:
            case ServeResult::kShutdown:
            case ServeResult::kQueueFull:
              bounced.fetch_add(1);  // clean rejection; fleet may degrade
              break;
            case ServeResult::kExpired:
              wrong.fetch_add(1);  // no SLO was set
              break;
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
    injected = fault_injected_count(FaultSite::kEngineExecute);
    // Quiesce before the plan is torn down: a worker could still be inside a
    // supervised rebuild (and therefore inside fault checks) — disarming
    // under its feet would race the plan mutation.
    server.stop();
  }

  EXPECT_EQ(wrong.load(), 0u) << "a fault must never surface as wrong bits";
  EXPECT_EQ(ok.load() + failed.load() + bounced.load(), kClients * kPerClient)
      << "every request must resolve to exactly one outcome, never hang";
  EXPECT_GT(injected, 0u) << "the soak must actually have injected faults";
  EXPECT_GT(ok.load(), 0u);
  const ServeStats stats = server.stats();
  EXPECT_EQ(stats.served, ok.load()) << "no lost or duplicated responses";
  EXPECT_EQ(stats.failed, failed.load());
  // Disarmed now: start() must resurrect any lost workers and the fleet must
  // serve correct bits again without further intervention.
  server.start();
  std::vector<float> out(server.output_elems(), -1.0f);
  ASSERT_EQ(server.serve(inputs[0].span(), out), ServeResult::kOk);
  EXPECT_EQ(std::memcmp(out.data(), refs[0].data(), out.size() * sizeof(float)), 0);
  EXPECT_EQ(server.health().workers_live, server.health().workers);
}

}  // namespace
}  // namespace lowino

// End-to-end tests of the LoWino convolution engine against the FP32 oracle.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "direct/direct_f32.h"
#include "lowino/lowino.h"
#include "quant/quantize.h"
#include "tensor/pack.h"

namespace lowino {
namespace {

ConvDesc make_desc(std::size_t b, std::size_t c, std::size_t k, std::size_t hw,
                   std::size_t r = 3, std::size_t pad = 1) {
  ConvDesc d;
  d.batch = b;
  d.in_channels = c;
  d.out_channels = k;
  d.height = d.width = hw;
  d.kernel = r;
  d.pad = pad;
  return d;
}

struct Problem {
  std::vector<float> input, weights, bias, ref;
};

Problem make_problem(const ConvDesc& desc, unsigned seed) {
  Problem p;
  Rng rng(seed);
  p.input.resize(desc.batch * desc.in_channels * desc.height * desc.width);
  p.weights.resize(desc.out_channels * desc.in_channels * desc.kernel * desc.kernel);
  p.bias.resize(desc.out_channels);
  for (auto& v : p.input) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : p.weights) v = rng.normal() * 0.1f;
  for (auto& v : p.bias) v = rng.uniform(-0.2f, 0.2f);
  p.ref.resize(desc.batch * desc.out_channels * desc.out_height() * desc.out_width());
  direct_conv_f32_reference(desc, p.input, p.weights, p.bias, p.ref);
  return p;
}

double run_and_snr(const ConvDesc& desc, const LoWinoConfig& cfg, const Problem& p,
                   ThreadPool* pool = nullptr) {
  LoWinoConvolution conv(desc, cfg);
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(p.input, out, pool);
  return quantization_error(p.ref, out).signal_to_noise_db;
}

// --- Accuracy across layer shapes and tile sizes ---------------------------
class LoWinoShapes : public ::testing::TestWithParam<std::tuple<ConvDesc, int>> {};

/// Expected accuracy degrades with tile size (the instability of Section 2.2,
/// which Winograd-domain quantization mitigates but cannot eliminate).
double min_snr_db(int m) {
  switch (m) {
    case 2: return 28.0;
    case 4: return 16.0;
    default: return 9.0;  // m = 6
  }
}

TEST_P(LoWinoShapes, CloseToFp32Reference) {
  const auto [desc, m] = GetParam();
  LoWinoConfig cfg;
  cfg.m = static_cast<std::size_t>(m);
  const Problem p = make_problem(desc, 100 + m);
  const double snr = run_and_snr(desc, cfg, p);
  EXPECT_GT(snr, min_snr_db(m)) << desc.to_string() << " m=" << m;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LoWinoShapes,
    ::testing::Combine(::testing::Values(make_desc(1, 64, 64, 14), make_desc(2, 64, 64, 7),
                                         make_desc(1, 128, 64, 12), make_desc(1, 64, 128, 9),
                                         make_desc(1, 192, 64, 10),  // 3 channel blocks
                                         make_desc(1, 64, 64, 13),   // odd spatial
                                         make_desc(1, 100, 80, 8)),  // non-64-multiple C/K
                       ::testing::Values(2, 4, 6)));

// --- Functional properties --------------------------------------------------
TEST(LoWino, IdentityFilterReproducesInput) {
  // A delta kernel makes convolution the identity; the quantized engine must
  // reproduce the input to within quantization noise.
  const ConvDesc d = make_desc(1, 64, 64, 8);
  std::vector<float> w(64 * 64 * 9, 0.0f);
  for (std::size_t k = 0; k < 64; ++k) w[(k * 64 + k) * 9 + 4] = 1.0f;  // center tap
  Rng rng(5);
  std::vector<float> in(64 * 64);
  for (auto& v : in) v = rng.uniform(-1.0f, 1.0f);

  LoWinoConfig cfg;
  cfg.m = 4;
  LoWinoConvolution conv(d, cfg);
  conv.calibrate(in);
  conv.finalize_calibration();
  conv.set_filters(w);
  std::vector<float> out(in.size());
  conv.execute_nchw(in, out);
  EXPECT_GT(quantization_error(in, out).signal_to_noise_db, 25.0);
}

TEST(LoWino, ZeroFilterGivesBias) {
  const ConvDesc d = make_desc(1, 64, 64, 6);
  std::vector<float> w(64 * 64 * 9, 0.0f), bias(64);
  for (std::size_t k = 0; k < 64; ++k) bias[k] = 0.01f * static_cast<float>(k);
  Rng rng(6);
  std::vector<float> in(64 * 36);
  for (auto& v : in) v = rng.uniform(-1.0f, 1.0f);
  LoWinoConvolution conv(d, {});
  conv.calibrate(in);
  conv.finalize_calibration();
  conv.set_filters(w, bias);
  std::vector<float> out(64 * 36);
  conv.execute_nchw(in, out);
  for (std::size_t k = 0; k < 64; ++k) {
    for (std::size_t i = 0; i < 36; ++i) {
      ASSERT_NEAR(out[k * 36 + i], bias[k], 1e-4f);
    }
  }
}

TEST(LoWino, FusedReluMatchesPostRelu) {
  const ConvDesc d = make_desc(1, 64, 64, 8);
  const Problem p = make_problem(d, 77);
  LoWinoConfig cfg;
  LoWinoConvolution plain(d, cfg);
  plain.calibrate(p.input);
  plain.finalize_calibration();
  plain.set_filters(p.weights, p.bias);
  cfg.fuse_relu = true;
  LoWinoConvolution fused(d, cfg);
  fused.calibrate(p.input);
  fused.finalize_calibration();
  fused.set_filters(p.weights, p.bias);
  std::vector<float> a(p.ref.size()), b(p.ref.size());
  plain.execute_nchw(p.input, a);
  fused.execute_nchw(p.input, b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(std::max(0.0f, a[i]), b[i]);
  }
}

TEST(LoWino, ParallelMatchesSerialBitExactly) {
  ThreadPool pool(4);
  const ConvDesc d = make_desc(2, 64, 64, 10);
  const Problem p = make_problem(d, 88);
  LoWinoConvolution conv(d, {});
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  std::vector<float> serial(p.ref.size()), parallel(p.ref.size());
  conv.execute_nchw(p.input, serial);
  conv.execute_nchw(p.input, parallel, &pool);
  for (std::size_t i = 0; i < serial.size(); ++i) ASSERT_EQ(serial[i], parallel[i]);
}

TEST(LoWino, RepeatedExecutionIsDeterministic) {
  const ConvDesc d = make_desc(1, 64, 64, 9);
  const Problem p = make_problem(d, 99);
  LoWinoConvolution conv(d, {});
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  std::vector<float> a(p.ref.size()), b(p.ref.size());
  conv.execute_nchw(p.input, a);
  conv.execute_nchw(p.input, b);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(LoWino, BlockedExecuteMatchesNchw) {
  const ConvDesc d = make_desc(1, 64, 64, 8);
  const Problem p = make_problem(d, 101);
  LoWinoConvolution conv(d, {});
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);

  std::vector<float> nchw_out(p.ref.size());
  conv.execute_nchw(p.input, nchw_out);

  AlignedBuffer<float> in_blocked(conv.input_layout().size());
  AlignedBuffer<float> out_blocked(conv.output_layout().size());
  pack_nchw_to_blocked(p.input, d.batch, d.in_channels, d.height, d.width, in_blocked.span());
  conv.execute_blocked(in_blocked.span(), out_blocked.span());
  std::vector<float> blocked_out(p.ref.size());
  unpack_blocked_to_nchw(out_blocked.span(), d.batch, d.out_channels, d.out_height(),
                         d.out_width(), blocked_out);
  for (std::size_t i = 0; i < nchw_out.size(); ++i) ASSERT_EQ(nchw_out[i], blocked_out[i]);
}

// --- Quantization design properties ----------------------------------------
TEST(LoWino, PerPositionScalesBeatPerTensorAtF43) {
  // The core claim of Section 3: quantizing in the Winograd domain with
  // position-aware scales preserves accuracy where coarse scales lose it.
  const ConvDesc d = make_desc(1, 64, 64, 12);
  const Problem p = make_problem(d, 202);
  LoWinoConfig per_pos;
  per_pos.m = 4;
  per_pos.input_scales = ScaleGranularity::kPerPosition;
  LoWinoConfig per_tensor;
  per_tensor.m = 4;
  per_tensor.input_scales = ScaleGranularity::kPerTensor;
  const double snr_pos = run_and_snr(d, per_pos, p);
  const double snr_tensor = run_and_snr(d, per_tensor, p);
  EXPECT_GT(snr_pos, snr_tensor + 3.0)
      << "per-position scales should be clearly more accurate";
}

TEST(LoWino, PerChannelFilterScalesHelp) {
  const ConvDesc d = make_desc(1, 64, 64, 8);
  // Give channels wildly different magnitudes to stress per-channel scaling.
  Problem p = make_problem(d, 203);
  for (std::size_t k = 0; k < 64; ++k) {
    const float gain = (k % 8 == 0) ? 4.0f : 0.05f;
    for (std::size_t i = 0; i < 64 * 9; ++i) p.weights[k * 64 * 9 + i] *= gain;
  }
  direct_conv_f32_reference(d, p.input, p.weights, p.bias, p.ref);
  LoWinoConfig per_chan;
  per_chan.per_channel_filter_scales = true;
  LoWinoConfig per_pos_only;
  per_pos_only.per_channel_filter_scales = false;
  const double snr_chan = run_and_snr(d, per_chan, p);
  const double snr_plain = run_and_snr(d, per_pos_only, p);
  EXPECT_GT(snr_chan, snr_plain);
}

TEST(LoWino, F2AndF4HaveComparableAccuracy) {
  // The headline result (Table 3): the larger tile keeps accuracy reasonable
  // under Winograd-domain quantization.
  const ConvDesc d = make_desc(1, 64, 64, 16);
  const Problem p = make_problem(d, 204);
  LoWinoConfig f2;
  f2.m = 2;
  LoWinoConfig f4;
  f4.m = 4;
  const double snr2 = run_and_snr(d, f2, p);
  const double snr4 = run_and_snr(d, f4, p);
  EXPECT_GT(snr2, 28.0);
  EXPECT_GT(snr4, 16.0);
  EXPECT_LT(std::abs(snr2 - snr4), 22.0) << "F(4x4) should not collapse";
}

TEST(LoWino, UniformThresholdPathWorks) {
  const ConvDesc d = make_desc(1, 64, 64, 8);
  const Problem p = make_problem(d, 205);
  LoWinoConvolution conv(d, {});
  // A safe Winograd-domain bound: the 2D amplification times |input|_inf.
  conv.set_uniform_input_threshold(
      static_cast<float>(conv.transform().input_amplification_2d()) * abs_max(p.input));
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(p.input, out);
  EXPECT_GT(quantization_error(p.ref, out).signal_to_noise_db, 8.0);
}

TEST(LoWino, PerPositionThresholdsBeatUniform) {
  const ConvDesc d = make_desc(1, 64, 64, 12);
  const Problem p = make_problem(d, 207);
  LoWinoConfig cfg;
  cfg.m = 4;
  // Uniform threshold: the worst-case Winograd-domain bound.
  LoWinoConvolution uniform(d, cfg);
  const float bound =
      static_cast<float>(uniform.transform().input_amplification_2d()) * abs_max(p.input);
  uniform.set_uniform_input_threshold(bound);
  uniform.set_filters(p.weights, p.bias);
  std::vector<float> out_u(p.ref.size());
  uniform.execute_nchw(p.input, out_u);

  // Per-position thresholds via calibration.
  const double snr_cal = run_and_snr(d, cfg, p);
  EXPECT_GT(snr_cal, quantization_error(p.ref, out_u).signal_to_noise_db + 2.0);
}

// --- API contract -----------------------------------------------------------
TEST(LoWino, ThrowsWithoutSetup) {
  const ConvDesc d = make_desc(1, 64, 64, 8);
  LoWinoConvolution conv(d, {});
  std::vector<float> in(64 * 64), out(64 * 64);
  EXPECT_THROW(conv.execute_nchw(in, out), std::logic_error);
  EXPECT_THROW(conv.finalize_calibration(), std::logic_error);
}

TEST(LoWino, RejectsUnsupportedDescriptors) {
  ConvDesc strided = make_desc(1, 64, 64, 8);
  strided.stride = 2;
  EXPECT_THROW(LoWinoConvolution conv(strided, {}), std::invalid_argument);
  ConvDesc one_by_one = make_desc(1, 64, 64, 8, 1, 0);
  EXPECT_THROW(LoWinoConvolution conv2(one_by_one, {}), std::invalid_argument);
}

TEST(LoWino, StageTimesPopulated) {
  const ConvDesc d = make_desc(1, 64, 64, 8);
  const Problem p = make_problem(d, 206);
  LoWinoConfig cfg;
  cfg.collect_stage_times = true;
  LoWinoConvolution conv(d, cfg);
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(p.input, out);
  EXPECT_GT(conv.stage_times().input_transform, 0.0);
  EXPECT_GT(conv.stage_times().gemm, 0.0);
  EXPECT_GT(conv.stage_times().output_transform, 0.0);
}

TEST(LoWino, WorkspaceBytesScaleWithTileSize) {
  // Needs enough tiles that Nblk padding is negligible (real layer sizes).
  const ConvDesc d = make_desc(1, 64, 64, 64);
  LoWinoConfig f2;
  f2.m = 2;
  LoWinoConfig f4;
  f4.m = 4;
  LoWinoConvolution c2(d, f2), c4(d, f4);
  // F(4x4) has 2.25x the per-tile intermediate volume but 4x fewer tiles; the
  // total intermediate size must be smaller (that is its memory advantage).
  EXPECT_LT(c4.workspace_bytes(), c2.workspace_bytes());
}

TEST(AdaptBlocking, ClampsAndRepairs) {
  Int8GemmBlocking b;  // defaults: 96/512/64, 6x4
  const Int8GemmBlocking small = adapt_blocking(b, 64, 64);
  EXPECT_EQ(small.c_blk, 64u);
  EXPECT_EQ(small.k_blk, 64u);
  EXPECT_TRUE(small.valid());
  b.k_blk = 128;
  b.col_blk = 8;
  b.row_blk = 2;
  const Int8GemmBlocking fixed = adapt_blocking(b, 256, 192);
  EXPECT_TRUE(fixed.valid());
}

}  // namespace
}  // namespace lowino

// Tests for linear quantization, histograms and KL calibration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "quant/calibration.h"
#include "quant/histogram.h"
#include "quant/quantize.h"

namespace lowino {
namespace {

TEST(QuantParams, FromThreshold) {
  const QuantParams p = QuantParams::from_threshold(2.0f);
  EXPECT_FLOAT_EQ(p.scale, 63.5f);
  EXPECT_FLOAT_EQ(p.inv_scale, 1.0f / 63.5f);
}

TEST(QuantParams, ZeroThresholdIsSafe) {
  const QuantParams p = QuantParams::from_threshold(0.0f);
  EXPECT_FLOAT_EQ(p.scale, 1.0f);
}

TEST(Quantize, RoundTripWithinHalfStep) {
  Rng rng(3);
  const QuantParams p = QuantParams::from_threshold(1.0f);
  std::vector<float> src(1000);
  for (auto& v : src) v = rng.uniform(-1.0f, 1.0f);
  std::vector<std::int8_t> q(src.size());
  quantize_i8(src, p.scale, q);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float back = static_cast<float>(q[i]) * p.inv_scale;
    EXPECT_LE(std::abs(back - src[i]), 0.5f * p.inv_scale + 1e-6f);
  }
}

TEST(Quantize, SaturatesBeyondThreshold) {
  const QuantParams p = QuantParams::from_threshold(1.0f);
  std::vector<float> src = {10.0f, -10.0f};
  std::vector<std::int8_t> q(2);
  quantize_i8(src, p.scale, q);
  EXPECT_EQ(q[0], 127);
  EXPECT_EQ(q[1], -128);
}

TEST(Quantize, U8Shift128MatchesSignedPlus128) {
  Rng rng(4);
  const float scale = 50.0f;
  std::vector<float> src(500);
  for (auto& v : src) v = rng.uniform(-2.0f, 2.0f);
  std::vector<std::int8_t> q(500);
  std::vector<std::uint8_t> u(500);
  quantize_i8(src, scale, q);
  quantize_u8_shift128(src, scale, u);
  for (std::size_t i = 0; i < src.size(); ++i) {
    ASSERT_EQ(static_cast<int>(u[i]), static_cast<int>(q[i]) + 128);
  }
}

TEST(Quantize, U8OffsetOrderingMatchesExactOracle) {
  // The zero-point audit behind the u8 hand-off: the +128 shift must happen
  // in the *integer* domain after round-to-nearest-even, and the two clamp
  // orderings must agree for every rounded value r:
  //   clamp(r, -128, 127) + 128 == clamp(r + 128, 0, 255).
  // A power-of-two scale makes every product below exact, so the sweep hits
  // the tie cases (x.5) and both saturation boundaries with a double-free
  // exact oracle (nearbyintf under the default FE_TONEAREST mode is RNE).
  const float scale = 16.0f;
  std::vector<float> src;
  for (int r = -140; r <= 140; ++r) {
    for (const float frac : {0.0f, -0.5f, 0.5f, -0.25f, 0.25f}) {
      src.push_back((static_cast<float>(r) + frac) / scale);
    }
  }
  std::vector<std::uint8_t> u(src.size());
  quantize_u8_shift128(src, scale, u);
  for (std::size_t i = 0; i < src.size(); ++i) {
    const float prod = src[i] * scale;  // exact by construction
    const int r = static_cast<int>(std::nearbyintf(prod));
    const int signed_then_shift = std::clamp(r, -128, 127) + 128;
    const int shift_then_clamp = std::clamp(r + 128, 0, 255);
    ASSERT_EQ(signed_then_shift, shift_then_clamp) << "orderings diverge at r=" << r;
    ASSERT_EQ(static_cast<int>(u[i]), shift_then_clamp) << "value " << src[i];
  }
}

TEST(Quantize, U8DoubleQuantizationIsIdempotent) {
  // Requantizing an already-quantized tensor with the same scale must be the
  // identity for every byte value — the serving hand-off depends on it (one
  // QuantParams is shared along a whole u8 segment, e.g. across a relu or
  // maxpool passthrough).
  Rng rng(21);
  std::vector<std::uint8_t> q(256);
  for (int i = 0; i < 256; ++i) q[i] = static_cast<std::uint8_t>(i);
  for (int rep = 0; rep < 50; ++rep) {
    const QuantParams p = QuantParams::from_threshold(rng.uniform(1e-3f, 100.0f));
    std::vector<float> deq(256);
    dequantize_u8_shift128(q, p.inv_scale, deq);
    std::vector<std::uint8_t> q2(256);
    quantize_u8_shift128(deq, p.scale, q2);
    ASSERT_EQ(q, q2) << "scale " << p.scale;
  }
}

TEST(Quantize, PaddingByteDequantizesToExactZero) {
  // 128 is the quantized zero: every pad byte the engines inject (im2col
  // borders, blocked-layout channel padding) must dequantize to exactly 0.0f
  // at any scale, or padding would leak signal into the accumulators.
  const std::vector<std::uint8_t> pad = {128};
  std::vector<float> out(1);
  for (const float scale : {0.03125f, 1.0f, 63.5f, 12345.0f}) {
    dequantize_u8_shift128(pad, 1.0f / scale, out);
    EXPECT_EQ(out[0], 0.0f) << "scale " << scale;
  }
}

TEST(Dequantize, Scales) {
  std::vector<std::int32_t> src = {100, -50, 0};
  std::vector<float> dst(3);
  dequantize_i32(src, 0.5f, dst);
  EXPECT_FLOAT_EQ(dst[0], 50.0f);
  EXPECT_FLOAT_EQ(dst[1], -25.0f);
  EXPECT_FLOAT_EQ(dst[2], 0.0f);
}

TEST(QuantError, ExactSignalsHighSnr) {
  std::vector<float> a = {1.0f, 2.0f, 3.0f};
  const QuantError e = quantization_error(a, a);
  EXPECT_EQ(e.mse, 0.0);
  EXPECT_GE(e.signal_to_noise_db, 200.0);
}

TEST(QuantError, KnownMse) {
  std::vector<float> ref = {0.0f, 0.0f}, act = {1.0f, -1.0f};
  const QuantError e = quantization_error(ref, act);
  EXPECT_DOUBLE_EQ(e.mse, 1.0);
  EXPECT_DOUBLE_EQ(e.max_abs, 1.0);
}

TEST(Histogram, CountsAndRange) {
  Histogram h(64);
  std::vector<float> first = {1.0f, -1.0f, 0.5f};
  h.collect(first);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_FLOAT_EQ(h.bin_width(), 1.25f / 64.0f);
  EXPECT_FLOAT_EQ(h.max_abs_seen(), 1.0f);
}

TEST(Histogram, AllZeroFirstBatchDefersRange) {
  Histogram h(64);
  std::vector<float> zeros(10, 0.0f);
  h.collect(zeros);
  EXPECT_TRUE(h.empty());
  std::vector<float> real = {2.0f};
  h.collect(real);
  EXPECT_FALSE(h.empty());
  EXPECT_FLOAT_EQ(h.bin_width(), 2.5f / 64.0f);
}

TEST(Histogram, RangeExpandsForLaterBatches) {
  Histogram h(16);
  std::vector<float> first = {1.0f};
  h.collect(first);
  const float w0 = h.bin_width();
  std::vector<float> huge = {100.0f};
  h.collect(huge);
  EXPECT_GT(h.bin_width(), w0);                          // bins merged
  EXPECT_LT(100.0f, h.bin_width() * 16.0f);              // new value in range
  EXPECT_EQ(h.total(), 2u);
  EXPECT_FLOAT_EQ(h.max_abs_seen(), 100.0f);
}

TEST(Histogram, BatchingOrderIndependent) {
  // Same data in different batch splits must produce the same histogram.
  Rng rng(123);
  std::vector<float> data(4096);
  for (auto& v : data) v = rng.normal();
  std::sort(data.begin(), data.end());  // worst case: small values first
  Histogram one_shot, batched;
  one_shot.collect(data);
  for (std::size_t i = 0; i < data.size(); i += 16) {
    batched.collect(std::span<const float>(data).subspan(i, 16));
  }
  // Bin boundaries differ after expansion, so KL picks slightly different
  // thresholds; they must agree to within a factor of two (without the
  // expansion fix the batched threshold collapses to the first batch's max,
  // an order of magnitude off).
  const float tau_a = calibrate_kl(one_shot).tau;
  const float tau_b = calibrate_kl(batched).tau;
  EXPECT_LT(std::max(tau_a, tau_b) / std::min(tau_a, tau_b), 2.0f);
}

TEST(KlDivergence, ZeroForIdenticalDistributions) {
  std::vector<double> p = {1, 2, 3, 4};
  EXPECT_NEAR(kl_divergence(p, p), 0.0, 1e-12);
}

TEST(KlDivergence, PositiveForDifferent) {
  std::vector<double> p = {10, 1, 1, 1};
  std::vector<double> q = {1, 1, 1, 10};
  EXPECT_GT(kl_divergence(p, q), 0.1);
}

TEST(Calibration, GaussianClipsOutliers) {
  // For a heavy-tailed distribution, the KL threshold should be well below
  // the max-abs value (that is the whole point of calibration).
  Rng rng(9);
  Histogram h;
  std::vector<float> batch(4096);
  for (int rep = 0; rep < 8; ++rep) {
    for (auto& v : batch) v = rng.normal();
    batch[0] = 40.0f;  // inject rare outliers
    h.collect(batch);
  }
  const CalibrationResult r = calibrate_kl(h);
  EXPECT_GT(r.tau, 1.0f);
  EXPECT_LT(r.tau, 0.5f * h.max_abs_seen());
}

TEST(Calibration, UniformKeepsNearlyFullRange) {
  Rng rng(10);
  Histogram h;
  std::vector<float> batch(65536);
  for (auto& v : batch) v = rng.uniform(-1.0f, 1.0f);
  h.collect(batch);
  const CalibrationResult r = calibrate_kl(h);
  // Uniform data has no outliers; threshold should keep most of the range.
  EXPECT_GT(r.tau, 0.8f);
}

TEST(Calibration, EmptyHistogramFallsBack) {
  Histogram h;
  const CalibrationResult r = calibrate_kl(h);
  EXPECT_EQ(r.tau, 0.0f);
  const QuantParams p = calibrate_params(h);
  EXPECT_FLOAT_EQ(p.scale, 1.0f);
}

TEST(Calibration, FewBinsShortCircuits) {
  Histogram h(64);  // fewer bins than quant levels
  std::vector<float> batch = {1.0f, 0.5f, 0.2f};
  h.collect(batch);
  const CalibrationResult r = calibrate_kl(h, 128);
  EXPECT_FLOAT_EQ(r.tau, h.edge(63));
}

TEST(Calibration, AllZeroInputsYieldIdentityScaleAndQuantizedZero) {
  // Degenerate calibration input: a layer that only ever saw zeros. The
  // histogram defers its range forever, calibrate_params falls back to
  // scale 1, and the whole tensor quantizes to the zero byte (128).
  Histogram h;
  const std::vector<float> zeros(1024, 0.0f);
  for (int i = 0; i < 4; ++i) h.collect(zeros);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(calibrate_kl(h).tau, 0.0f);
  const QuantParams p = calibrate_params(h);
  ASSERT_TRUE(std::isfinite(p.scale));
  ASSERT_TRUE(std::isfinite(p.inv_scale));
  std::vector<std::uint8_t> q(zeros.size());
  quantize_u8_shift128(zeros, p.scale, q);
  for (const std::uint8_t b : q) ASSERT_EQ(b, 128);
}

TEST(Calibration, SingleRepeatedValueSurvivesRoundTrip) {
  // A single-value distribution collapses the histogram to one occupied bin;
  // the calibrated scale must stay finite and keep that value within half a
  // quantization step.
  Histogram h;
  const std::vector<float> batch(512, 0.75f);
  h.collect(batch);
  const QuantParams p = calibrate_params(h);
  ASSERT_TRUE(std::isfinite(p.scale));
  ASSERT_GT(p.scale, 0.0f);
  std::vector<std::uint8_t> q(batch.size());
  quantize_u8_shift128(batch, p.scale, q);
  std::vector<float> back(batch.size());
  dequantize_u8_shift128(q, p.inv_scale, back);
  for (const float v : back) ASSERT_NEAR(v, 0.75f, 0.5f * p.inv_scale + 1e-6f);
}

TEST(Calibration, DenormalOnlyInputsYieldFiniteParams) {
  // A tensor whose only non-zeros are sub-normal used to produce a zero
  // histogram bin width (infinite bin indices) and an infinite scale whose
  // inverse is 0 — every product downstream became NaN. The bin width is now
  // floored at the smallest normal float and from_threshold guards the
  // overflow, so the values quantize to 128 (zero) harmlessly.
  Histogram h;
  const std::vector<float> tiny(256, 1e-42f);
  h.collect(tiny);
  EXPECT_TRUE(std::isfinite(h.bin_width()));
  EXPECT_GT(h.bin_width(), 0.0f);
  const CalibrationResult r = calibrate_kl(h);
  EXPECT_TRUE(std::isfinite(r.tau));
  const QuantParams p = QuantParams::from_threshold(r.tau);
  ASSERT_TRUE(std::isfinite(p.scale));
  ASSERT_TRUE(std::isfinite(p.inv_scale));
  std::vector<std::uint8_t> q(tiny.size());
  quantize_u8_shift128(tiny, p.scale, q);
  std::vector<float> back(tiny.size());
  dequantize_u8_shift128(q, p.inv_scale, back);
  for (const float v : back) ASSERT_TRUE(std::isfinite(v));
}

TEST(Calibration, CalibratedScaleBeatsMaxAbsOnDistributionBody) {
  // Property behind Eq. 7: with rare extreme outliers, max-abs scaling wastes
  // nearly the whole INT8 range, so the distribution *body* (where all the
  // information lives) is represented far more coarsely than with the
  // KL-calibrated threshold. (Total MSE is the wrong metric here — it is
  // dominated by the clipped outliers, which is exactly why the paper uses KL
  // rather than MSE.)
  Rng rng(11);
  std::vector<float> data(32768);
  for (auto& v : data) v = rng.normal();
  data[7] = 80.0f;
  data[12345] = -95.0f;

  Histogram h;
  h.collect(data);
  const QuantParams calibrated = calibrate_params(h);
  const QuantParams maxabs = QuantParams::from_threshold(abs_max(data));
  EXPECT_GT(calibrated.scale, maxabs.scale);  // calibration clips the outliers

  auto body_mse = [&](const QuantParams& p) {
    double mse = 0.0;
    std::size_t n = 0;
    for (float v : data) {
      if (std::abs(v) > 5.0f) continue;  // inliers only
      std::vector<float> one = {v};
      std::vector<std::int8_t> q(1);
      quantize_i8(one, p.scale, q);
      const double back = static_cast<double>(q[0]) * p.inv_scale;
      mse += (back - v) * (back - v);
      ++n;
    }
    return mse / static_cast<double>(n);
  };
  EXPECT_LT(body_mse(calibrated), 0.25 * body_mse(maxabs));
}

}  // namespace
}  // namespace lowino

// Tests for src/common: aligned buffers, saturating casts, RNG, partitioning.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <set>

#include "common/aligned_buffer.h"
#include "common/cpu_features.h"
#include "common/env.h"
#include "common/rng.h"
#include "common/saturate.h"
#include "common/timer.h"
#include "lowino/engine_config.h"
#include "parallel/partition.h"

namespace lowino {
namespace {

TEST(AlignedBuffer, AllocatesCacheLineAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u, 4096u}) {
    AlignedBuffer<float> buf(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kCacheLineBytes, 0u);
    EXPECT_EQ(buf.size(), n);
  }
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(16);
  a[0] = 42;
  int* p = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[0], 42);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move): asserting moved-from state
  EXPECT_TRUE(a.empty());
}

TEST(AlignedBuffer, EnsureGrowsOnlyWhenNeeded) {
  AlignedBuffer<int> a(16);
  int* p = a.data();
  a.ensure(8);
  EXPECT_EQ(a.data(), p);  // no reallocation for smaller request
  a.ensure(32);
  EXPECT_EQ(a.size(), 32u);
}

TEST(AlignedBuffer, FillZero) {
  AlignedBuffer<std::int32_t> a(100);
  for (std::size_t i = 0; i < 100; ++i) a[i] = -1;
  a.fill_zero();
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(a[i], 0);
}

TEST(RoundUp, Basics) {
  EXPECT_EQ(round_up(0, 64), 0u);
  EXPECT_EQ(round_up(1, 64), 64u);
  EXPECT_EQ(round_up(64, 64), 64u);
  EXPECT_EQ(round_up(65, 64), 128u);
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(8, 4), 2u);
  EXPECT_EQ(ceil_div(9, 4), 3u);
}

TEST(Saturate, Int8Clamps) {
  EXPECT_EQ(saturate_cast_i8(0.0f), 0);
  EXPECT_EQ(saturate_cast_i8(127.4f), 127);
  EXPECT_EQ(saturate_cast_i8(1000.0f), 127);
  EXPECT_EQ(saturate_cast_i8(-1000.0f), -128);
  EXPECT_EQ(saturate_cast_i8(-128.4f), -128);
}

TEST(Saturate, RoundsToNearestEven) {
  EXPECT_EQ(saturate_cast_i8(0.5f), 0);
  EXPECT_EQ(saturate_cast_i8(1.5f), 2);
  EXPECT_EQ(saturate_cast_i8(2.5f), 2);
  EXPECT_EQ(saturate_cast_i8(-0.5f), 0);
  EXPECT_EQ(saturate_cast_i8(-1.5f), -2);
}

TEST(Saturate, UInt8Clamps) {
  EXPECT_EQ(saturate_cast_u8(-1.0f), 0);
  EXPECT_EQ(saturate_cast_u8(0.0f), 0);
  EXPECT_EQ(saturate_cast_u8(255.2f), 255);
  EXPECT_EQ(saturate_cast_u8(300.0f), 255);
}

TEST(Saturate, Int32Narrowing) {
  EXPECT_EQ(saturate_i32_to_i8(200), 127);
  EXPECT_EQ(saturate_i32_to_i8(-200), -128);
  EXPECT_EQ(saturate_i32_to_i8(5), 5);
  EXPECT_EQ(saturate_i32_to_i16(100000), 32767);
  EXPECT_EQ(saturate_i32_to_i16(-100000), -32768);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, NormalHasReasonableMoments) {
  Rng rng(42);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(StaticPartition, CoversRangeExactlyOnce) {
  for (std::size_t n : {0u, 1u, 7u, 64u, 100u, 1023u}) {
    for (std::size_t workers : {1u, 2u, 3u, 8u, 17u}) {
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      for (std::size_t tid = 0; tid < workers; ++tid) {
        const Range r = static_partition(n, workers, tid);
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
        covered += r.size();
      }
      EXPECT_EQ(prev_end, n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(StaticPartition, BalancedWithinOne) {
  const std::size_t n = 1000, workers = 7;
  std::size_t mn = n, mx = 0;
  for (std::size_t tid = 0; tid < workers; ++tid) {
    const Range r = static_partition(n, workers, tid);
    mn = std::min(mn, r.size());
    mx = std::max(mx, r.size());
  }
  EXPECT_LE(mx - mn, 1u);
}

TEST(StaticPartitionGranular, RespectsGranule) {
  const std::size_t n = 100, workers = 3, granule = 16;
  std::size_t prev_end = 0;
  for (std::size_t tid = 0; tid < workers; ++tid) {
    const Range r = static_partition_granular(n, workers, tid, granule);
    EXPECT_EQ(r.begin, prev_end);
    if (tid + 1 < workers && r.end < n) EXPECT_EQ(r.end % granule, 0u);
    prev_end = r.end;
  }
  EXPECT_EQ(prev_end, n);
}

TEST(CpuFeatures, OverrideWorks) {
  CpuFeatures none;
  override_cpu_features_for_test(&none);
  EXPECT_FALSE(cpu_features().has_vnni_kernels());
  override_cpu_features_for_test(nullptr);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(TimingStats, Summarize) {
  const TimingStats s = summarize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
  EXPECT_EQ(s.samples, 3u);
}

// --- Environment-knob parsing ----------------------------------------------
// Scoped setter so a failing assertion can't leak state into other tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(Env, LongParsesAndFallsBack) {
  constexpr const char* kVar = "LOWINO_TEST_ENV_LONG";
  ::unsetenv(kVar);
  EXPECT_EQ(env_long(kVar, 7), 7);
  {
    ScopedEnv e(kVar, "42");
    EXPECT_EQ(env_long(kVar, 7), 42);
  }
  {
    ScopedEnv e(kVar, "-3");
    EXPECT_EQ(env_long(kVar, 7), -3);
  }
  {
    // Entirely non-numeric input falls back to the default — no crash, no 0.
    ScopedEnv e(kVar, "banana");
    EXPECT_EQ(env_long(kVar, 7), 7);
  }
  {
    ScopedEnv e(kVar, "");
    EXPECT_EQ(env_long(kVar, 7), 7);
  }
}

TEST(Env, FlagTruthTableAndCaseHandling) {
  constexpr const char* kVar = "LOWINO_TEST_ENV_FLAG";
  ::unsetenv(kVar);
  EXPECT_FALSE(env_flag(kVar));
  EXPECT_TRUE(env_flag(kVar, true));
  for (const char* truthy : {"1", "true", "TRUE", "True", "yes", "YES", "on", "ON"}) {
    ScopedEnv e(kVar, truthy);
    EXPECT_TRUE(env_flag(kVar)) << truthy;
  }
  for (const char* falsy : {"0", "false", "off", "no", "2", "yess", "garbage"}) {
    ScopedEnv e(kVar, falsy);
    EXPECT_FALSE(env_flag(kVar)) << falsy;
    // An *invalid* value is simply "not truthy": it also overrides a true
    // fallback, which is the documented set-means-explicit behaviour.
    EXPECT_FALSE(env_flag(kVar, true)) << falsy;
  }
}

TEST(Env, StringFallsBackOnlyWhenUnsetOrEmpty) {
  constexpr const char* kVar = "LOWINO_TEST_ENV_STRING";
  ::unsetenv(kVar);
  EXPECT_EQ(env_string(kVar, "dflt"), "dflt");
  {
    ScopedEnv e(kVar, "value");
    EXPECT_EQ(env_string(kVar, "dflt"), "value");
  }
  {
    ScopedEnv e(kVar, "");
    EXPECT_EQ(env_string(kVar, "dflt"), "dflt");
  }
}

TEST(Env, ExecutionModeTokenParsing) {
  // The LOWINO_EXECUTION_MODE surface: known tokens parse case-insensitively;
  // anything else returns false and leaves the mode untouched (callers keep
  // their default — invalid values can never crash or half-configure).
  ExecutionMode mode = ExecutionMode::kAuto;
  EXPECT_TRUE(parse_execution_mode("staged", mode));
  EXPECT_EQ(mode, ExecutionMode::kStaged);
  EXPECT_TRUE(parse_execution_mode("FUSED", mode));
  EXPECT_EQ(mode, ExecutionMode::kFused);
  EXPECT_TRUE(parse_execution_mode("Auto", mode));
  EXPECT_EQ(mode, ExecutionMode::kAuto);
  EXPECT_TRUE(parse_execution_mode("StAgEd", mode));
  EXPECT_EQ(mode, ExecutionMode::kStaged);

  mode = ExecutionMode::kFused;
  EXPECT_FALSE(parse_execution_mode("", mode));
  EXPECT_FALSE(parse_execution_mode("stage", mode));     // prefix is not a match
  EXPECT_FALSE(parse_execution_mode("stagedd", mode));   // neither is an extension
  EXPECT_FALSE(parse_execution_mode("fused ", mode));    // no trailing junk
  EXPECT_FALSE(parse_execution_mode("sideways", mode));
  EXPECT_EQ(mode, ExecutionMode::kFused) << "failed parse must not clobber the mode";
}


// --- RuntimeConfig override layer -------------------------------------------

TEST(RuntimeConfig, OverrideBeatsEnvironmentAndClearsCleanly) {
  constexpr const char* kVar = "LOWINO_TEST_CONFIG_LONG";
  ScopedEnv env(kVar, "7");
  EXPECT_EQ(config_long(kVar, 0), 7);

  RuntimeConfig::set(kVar, "42");
  EXPECT_EQ(config_long(kVar, 0), 42) << "programmatic override must beat env";
  EXPECT_EQ(env_long(kVar, 0), 7) << "raw env reader must ignore overrides";

  RuntimeConfig::clear(kVar);
  EXPECT_EQ(config_long(kVar, 0), 7) << "clearing re-exposes the environment";
}

TEST(RuntimeConfig, StringAndFlagReadsHonourOverrides) {
  constexpr const char* kStr = "LOWINO_TEST_CONFIG_STRING";
  constexpr const char* kFlag = "LOWINO_TEST_CONFIG_FLAG";
  ::unsetenv(kStr);
  ::unsetenv(kFlag);
  EXPECT_EQ(config_string(kStr, "dflt"), "dflt");
  EXPECT_FALSE(config_flag(kFlag));

  RuntimeConfig::set(kStr, "fused");
  RuntimeConfig::set(kFlag, "yes");
  EXPECT_EQ(config_string(kStr, "dflt"), "fused");
  EXPECT_TRUE(config_flag(kFlag));
  // Flag parsing matches env_flag: an explicit non-truthy override means off
  // even against a true fallback.
  RuntimeConfig::set(kFlag, "garbage");
  EXPECT_FALSE(config_flag(kFlag, true));

  RuntimeConfig::clear(kStr);
  RuntimeConfig::clear(kFlag);
  EXPECT_EQ(config_string(kStr, "dflt"), "dflt");
  EXPECT_FALSE(config_flag(kFlag));
}

TEST(RuntimeConfig, GetReportsOverridesOnlyAndClearAllSweeps) {
  constexpr const char* kVar = "LOWINO_TEST_CONFIG_GET";
  ScopedEnv env(kVar, "env-value");
  EXPECT_FALSE(RuntimeConfig::get(kVar).has_value())
      << "get() must not fall through to the environment";
  RuntimeConfig::set(kVar, "a");
  RuntimeConfig::set("LOWINO_TEST_CONFIG_GET_2", "b");
  EXPECT_EQ(RuntimeConfig::get(kVar), "a");
  RuntimeConfig::clear_all();
  EXPECT_FALSE(RuntimeConfig::get(kVar).has_value());
  EXPECT_FALSE(RuntimeConfig::get("LOWINO_TEST_CONFIG_GET_2").has_value());
}

TEST(RuntimeConfig, ScopedOverrideRestoresPreviousState) {
  constexpr const char* kVar = "LOWINO_TEST_CONFIG_SCOPED";
  ::unsetenv(kVar);
  {
    ScopedRuntimeOverride outer(kVar, "outer");
    EXPECT_EQ(config_string(kVar, ""), "outer");
    {
      ScopedRuntimeOverride inner(kVar, "inner");
      EXPECT_EQ(config_string(kVar, ""), "inner");
    }
    EXPECT_EQ(config_string(kVar, ""), "outer") << "inner scope must restore outer value";
  }
  EXPECT_FALSE(RuntimeConfig::get(kVar).has_value())
      << "outermost scope must restore the no-override state";
  EXPECT_EQ(config_string(kVar, "dflt"), "dflt");
}

}  // namespace
}  // namespace lowino

// Tests for the NN runtime: dataset, loss, layer gradients (finite
// differences), training convergence, and quantized-engine inference.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "nn/dataset.h"
#include "nn/engines.h"
#include "nn/model_zoo.h"
#include "nn/train.h"
#include "quant/quantize.h"

namespace lowino {
namespace {

// --- Dataset ----------------------------------------------------------------
TEST(ShapeDataset, DeterministicAndBalanced) {
  const Dataset a = make_shape_dataset(100, 42);
  const Dataset b = make_shape_dataset(100, 42);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.images, b.images);
  std::vector<int> counts(10, 0);
  for (int l : a.labels) ++counts[l];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(ShapeDataset, DifferentSeedsDiffer) {
  const Dataset a = make_shape_dataset(50, 1);
  const Dataset b = make_shape_dataset(50, 2);
  EXPECT_NE(a.images, b.images);
}

TEST(ShapeDataset, ClassesAreVisuallyDistinct) {
  // Mean images of different classes must differ substantially.
  const Dataset d = make_shape_dataset(500, 3);
  const std::size_t n = d.image_hw * d.image_hw;
  std::vector<std::vector<double>> mean(10, std::vector<double>(n, 0.0));
  std::vector<int> counts(10, 0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto img = d.image(i);
    for (std::size_t p = 0; p < n; ++p) mean[d.labels[i]][p] += img[p];
    ++counts[d.labels[i]];
  }
  for (int c = 0; c < 10; ++c) {
    for (auto& v : mean[c]) v /= counts[c];
  }
  for (int a = 0; a < 10; ++a) {
    for (int b = a + 1; b < 10; ++b) {
      double dist = 0.0;
      for (std::size_t p = 0; p < n; ++p) {
        dist += (mean[a][p] - mean[b][p]) * (mean[a][p] - mean[b][p]);
      }
      EXPECT_GT(std::sqrt(dist), 0.5) << "classes " << a << " and " << b << " too similar";
    }
  }
}

TEST(ShapeDataset, FillBatchShapes) {
  const Dataset d = make_shape_dataset(64, 5);
  Tensor<float> x;
  std::vector<int> y;
  fill_batch(d, 10, 8, x, y);
  EXPECT_EQ(x.shape(), (std::vector<std::size_t>{8, 1, 16, 16}));
  EXPECT_EQ(y.size(), 8u);
  EXPECT_EQ(y[0], d.labels[10]);
}

// --- Loss -------------------------------------------------------------------
TEST(SoftmaxXent, UniformLogitsGiveLogC) {
  Tensor<float> logits({4, 10});
  logits.zero();
  std::vector<int> labels = {0, 3, 7, 9};
  Tensor<float> grad;
  const float loss = softmax_xent(logits, labels, grad);
  EXPECT_NEAR(loss, std::log(10.0f), 1e-5f);
}

TEST(SoftmaxXent, GradientMatchesFiniteDifference) {
  Rng rng(9);
  Tensor<float> logits({3, 5});
  for (auto& v : logits.span()) v = rng.uniform(-2.0f, 2.0f);
  std::vector<int> labels = {1, 4, 0};
  Tensor<float> grad;
  const float base = softmax_xent(logits, labels, grad);
  (void)base;
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < logits.size(); i += 3) {
    Tensor<float> lp = logits, lm = logits;
    lp.data()[i] += eps;
    lm.data()[i] -= eps;
    Tensor<float> g2;
    const float fplus = softmax_xent(lp, labels, g2);
    const float fminus = softmax_xent(lm, labels, g2);
    const float numeric = (fplus - fminus) / (2 * eps);
    ASSERT_NEAR(grad.data()[i], numeric, 5e-3f) << "logit " << i;
  }
}

TEST(Predict, Argmax) {
  Tensor<float> logits({2, 3});
  logits(0, 0) = 1;
  logits(0, 1) = 5;
  logits(0, 2) = 2;
  logits(1, 0) = 7;
  logits(1, 1) = 0;
  logits(1, 2) = 3;
  std::vector<int> pred;
  predict(logits, pred);
  EXPECT_EQ(pred[0], 1);
  EXPECT_EQ(pred[1], 0);
}

// --- Layer gradient checks ---------------------------------------------------
/// Loss = sum(out .* proj); checks d(loss)/d(in) via central differences.
template <typename MakeLayer>
void check_input_gradient(MakeLayer&& make_layer, std::vector<std::size_t> in_shape,
                          unsigned seed, float tol = 2e-2f, float eps = 1e-2f) {
  Rng rng(seed);
  auto layer = make_layer();
  Tensor<float> in(in_shape);
  for (auto& v : in.span()) v = rng.uniform(-1.0f, 1.0f);
  Tensor<float> out;
  layer->forward(in, out, /*train=*/true);
  Tensor<float> proj(out.shape());
  for (auto& v : proj.span()) v = rng.uniform(-1.0f, 1.0f);
  Tensor<float> grad_in;
  layer->backward(proj, grad_in);

  for (std::size_t i = 0; i < in.size(); i += std::max<std::size_t>(1, in.size() / 17)) {
    auto loss_at = [&](float delta) {
      Tensor<float> x = in;
      x.data()[i] += delta;
      Tensor<float> o;
      auto fresh = make_layer();  // same seed -> identical weights
      fresh->forward(x, o, false);
      double l = 0.0;
      for (std::size_t j = 0; j < o.size(); ++j) l += o.data()[j] * proj.data()[j];
      return l;
    };
    const double numeric = (loss_at(eps) - loss_at(-eps)) / (2 * eps);
    ASSERT_NEAR(grad_in.data()[i], numeric, tol * std::max(1.0, std::abs(numeric)))
        << "input index " << i;
  }
}

TEST(ConvLayerGrad, InputGradientMatchesFiniteDifference) {
  check_input_gradient(
      [] {
        Rng wrng(11);
        return std::make_unique<ConvLayer>(2, 3, 4, 3, 1, wrng);
      },
      {2, 2, 4, 4}, 21);
}

TEST(ReluGrad, InputGradientMatchesFiniteDifference) {
  check_input_gradient([] { return std::make_unique<ReluLayer>(); }, {2, 3, 4, 4}, 22);
}

TEST(MaxPoolGrad, InputGradientMatchesFiniteDifference) {
  // Tiny epsilon: a larger perturbation can flip a near-tied argmax, making
  // the finite difference sample the other branch of the max kink.
  // (seed chosen so no pooling window has a near-tied max within eps)
  check_input_gradient([] { return std::make_unique<MaxPoolLayer>(3, 4); }, {2, 3, 4, 4}, 37,
                       2e-2f, /*eps=*/5e-4f);
}

TEST(DenseGrad, InputGradientMatchesFiniteDifference) {
  check_input_gradient(
      [] {
        Rng wrng(12);
        return std::make_unique<DenseLayer>(12, 5, wrng);
      },
      {3, 12}, 24);
}

TEST(ResidualGrad, InputGradientMatchesFiniteDifference) {
  check_input_gradient(
      [] {
        Rng wrng(13);
        return std::make_unique<ResidualBlock>(2, 4, wrng);
      },
      {1, 2, 4, 4}, 25, /*tol=*/5e-2f);
}

TEST(ConvLayerGrad, WeightGradientMatchesFiniteDifference) {
  Rng rng(31);
  Rng wrng(32);
  ConvLayer layer(2, 2, 4, 3, 1, wrng);
  Tensor<float> in({1, 2, 4, 4});
  for (auto& v : in.span()) v = rng.uniform(-1.0f, 1.0f);
  Tensor<float> out;
  layer.forward(in, out, true);
  Tensor<float> proj(out.shape());
  for (auto& v : proj.span()) v = rng.uniform(-1.0f, 1.0f);
  Tensor<float> grad_in;
  layer.backward(proj, grad_in);

  // Recover grad_w through update(): w' = w - lr * grad (momentum 0).
  std::vector<float> w_before(layer.weights().begin(), layer.weights().end());
  ConvLayer probe(2, 2, 4, 3, 1, wrng);  // scratch for forward evals
  auto loss_with_weights = [&](const std::vector<float>& w) {
    std::copy(w.begin(), w.end(), probe.mutable_weights().begin());
    Tensor<float> o;
    probe.forward(in, o, false);
    double l = 0.0;
    for (std::size_t j = 0; j < o.size(); ++j) l += o.data()[j] * proj.data()[j];
    return l;
  };
  layer.update(/*lr=*/1.0f, /*momentum=*/0.0f);
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < w_before.size(); i += 7) {
    const float analytic = w_before[i] - layer.weights()[i];  // == grad_w[i]
    std::vector<float> wp = w_before, wm = w_before;
    wp[i] += eps;
    wm[i] -= eps;
    const double numeric = (loss_with_weights(wp) - loss_with_weights(wm)) / (2 * eps);
    ASSERT_NEAR(analytic, numeric, 2e-2 * std::max(1.0, std::abs(numeric))) << "w " << i;
  }
}

// --- Grouped / depthwise convolution layers ----------------------------------
TEST(ConvLayerGrad, DepthwiseInputGradientMatchesFiniteDifference) {
  check_input_gradient(
      [] {
        Rng wrng(14);
        return std::make_unique<ConvLayer>(4, 4, 4, 3, 1, wrng, /*groups=*/4);
      },
      {2, 4, 4, 4}, 26);
}

TEST(ConvLayerGrad, GroupedInputGradientMatchesFiniteDifference) {
  check_input_gradient(
      [] {
        Rng wrng(15);
        return std::make_unique<ConvLayer>(4, 6, 4, 3, 1, wrng, /*groups=*/2);
      },
      {2, 4, 4, 4}, 27);
}

TEST(ConvLayerGrouped, ForwardEqualsBlockDiagonalUngrouped) {
  // A grouped conv is an ungrouped conv whose weight tensor is block-diagonal
  // across channel groups; embed the grouped weights and compare outputs.
  Rng rng(41);
  const std::size_t c = 6, k = 9, hw = 5, r = 3, g = 3;
  ConvLayer grouped(c, k, hw, r, 1, rng, g);
  Rng rng2(42);
  ConvLayer dense(c, k, hw, r, 1, rng2);
  const std::size_t cg = c / g, kg = k / g;
  auto dw = dense.mutable_weights();
  std::fill(dw.begin(), dw.end(), 0.0f);
  const auto gw = grouped.weights();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const std::size_t c0 = (kk / kg) * cg;
    for (std::size_t ci = 0; ci < cg; ++ci) {
      for (std::size_t t = 0; t < r * r; ++t) {
        dw[(kk * c + c0 + ci) * r * r + t] = gw[(kk * cg + ci) * r * r + t];
      }
    }
  }
  Tensor<float> in({2, c, hw, hw});
  for (auto& v : in.span()) v = rng.uniform(-1.0f, 1.0f);
  Tensor<float> out_g, out_d;
  grouped.forward(in, out_g, false);
  dense.forward(in, out_d, false);
  ASSERT_EQ(out_g.shape(), out_d.shape());
  // Biases differ between the two layers; compare after removing them.
  for (std::size_t b = 0; b < 2; ++b) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      for (std::size_t p = 0; p < hw * hw; ++p) {
        const float vg = out_g.data()[(b * k + kk) * hw * hw + p] - grouped.bias()[kk];
        const float vd = out_d.data()[(b * k + kk) * hw * hw + p] - dense.bias()[kk];
        ASSERT_NEAR(vg, vd, 1e-4f) << "b=" << b << " k=" << kk << " p=" << p;
      }
    }
  }
}

TEST(ConvLayerGrouped, NameTokensAndValidation) {
  Rng rng(1);
  ConvLayer plain(8, 16, 8, 3, 1, rng);
  ConvLayer dw(8, 8, 8, 3, 1, rng, /*groups=*/8);
  ConvLayer grouped(8, 16, 8, 3, 1, rng, /*groups=*/2);
  EXPECT_EQ(plain.name(), "conv3x3(8->16)");
  EXPECT_EQ(dw.name(), "dwconv3x3(8->8)");
  EXPECT_EQ(grouped.name(), "conv3x3(8->16,g=2)");
  EXPECT_EQ(plain.groups(), 1u);
  EXPECT_EQ(dw.groups(), 8u);
  EXPECT_THROW(ConvLayer(8, 9, 8, 3, 1, rng, /*groups=*/2), std::invalid_argument);
}

TEST(ConvDescGroups, TokenStabilityAndValidation) {
  ConvDesc d;
  d.batch = 2;
  d.in_channels = 6;
  d.out_channels = 6;
  d.height = d.width = 8;
  d.kernel = 3;
  d.pad = 1;
  // groups == 1 must serialize byte-identically to the pre-groups format:
  // existing wisdom keys and plan files keep resolving.
  EXPECT_EQ(d.to_string(), "B2 C6 K6 H8 W8 r3");
  d.groups = 3;
  EXPECT_EQ(d.to_string(), "B2 C6 K6 H8 W8 r3 g3");
  EXPECT_TRUE(d.is_valid());
  EXPECT_TRUE(ConvDesc{d}.is_depthwise() == false);
  d.groups = 6;
  EXPECT_TRUE(d.is_depthwise());
  EXPECT_EQ(d.group_in_channels(), 1u);
  d.groups = 0;
  EXPECT_FALSE(d.is_valid());
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d.groups = 4;  // 6 % 4 != 0
  EXPECT_FALSE(d.is_valid());
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d.groups = 3;
  d.out_channels = 7;  // out_channels not divisible
  EXPECT_FALSE(d.is_valid());
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

// --- Training ----------------------------------------------------------------
TEST(Training, SmallModelLearnsTheDataset) {
  const Dataset train_set = make_shape_dataset(600, 100);
  const Dataset test_set = make_shape_dataset(200, 200);
  SequentialModel model = make_minivgg(16, 10, /*seed=*/7);
  TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch = 32;
  cfg.lr = 0.05f;
  const double train_acc = train_model(model, train_set, cfg);
  EXPECT_GT(train_acc, 0.7);
  const EvalResult eval = evaluate_fp32(model, test_set);
  EXPECT_GT(eval.accuracy, 0.6);
  EXPECT_LT(eval.avg_loss, 1.5);
}

TEST(Training, LossDecreases) {
  const Dataset data = make_shape_dataset(320, 101);
  SequentialModel model = make_miniresnet(16, 10, 8);
  const EvalResult before = evaluate_fp32(model, data);
  TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch = 32;
  train_model(model, data, cfg);
  const EvalResult after = evaluate_fp32(model, data);
  EXPECT_LT(after.avg_loss, before.avg_loss);
  EXPECT_GT(after.accuracy, before.accuracy);
}

// --- Quantized inference ------------------------------------------------------
class EngineAgreement : public ::testing::TestWithParam<EngineKind> {};

TEST_P(EngineAgreement, QuantizedModelAgreesWithFp32) {
  const EngineKind kind = GetParam();
  const Dataset train_set = make_shape_dataset(320, 110);
  const Dataset calib_set = make_shape_dataset(128, 111);
  const Dataset test_set = make_shape_dataset(96, 112);
  SequentialModel model = make_minivgg(16, 10, 9);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch = 32;
  train_model(model, train_set, cfg);

  calibrate_model(model, calib_set, kind, 128, 32);
  const EvalResult fp32 = evaluate_fp32(model, test_set, 32);
  const EvalResult quant = evaluate_engine(model, test_set, kind, 32);
  EXPECT_EQ(quant.samples, 96u);
  // Quantized accuracy within a few points of FP32 for sound schemes.
  EXPECT_GT(quant.accuracy, fp32.accuracy - 0.08)
      << engine_name(kind) << ": " << quant.accuracy << " vs fp32 " << fp32.accuracy;
}

INSTANTIATE_TEST_SUITE_P(Engines, EngineAgreement,
                         ::testing::Values(EngineKind::kFp32Direct, EngineKind::kFp32WinoF2,
                                           EngineKind::kFp32WinoF4, EngineKind::kInt8Direct,
                                           EngineKind::kLoWinoF2, EngineKind::kLoWinoF4,
                                           EngineKind::kUpcastF2, EngineKind::kVendorF2,
                                           EngineKind::kDownscaleF2));

TEST(EngineAgreement, DownscaleF4DegradesAccuracy) {
  // The Table 3 collapse: down-scaling F(4x4) ruins the trained model while
  // LoWino F(4x4) preserves it.
  const Dataset train_set = make_shape_dataset(320, 120);
  const Dataset calib_set = make_shape_dataset(128, 121);
  const Dataset test_set = make_shape_dataset(96, 122);
  SequentialModel model = make_minivgg(16, 10, 10);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch = 32;
  train_model(model, train_set, cfg);

  calibrate_model(model, calib_set, EngineKind::kDownscaleF4, 128, 32);
  calibrate_model(model, calib_set, EngineKind::kLoWinoF4, 128, 32);
  const EvalResult fp32 = evaluate_fp32(model, test_set, 32);
  const EvalResult ds4 = evaluate_engine(model, test_set, EngineKind::kDownscaleF4, 32);
  const EvalResult lw4 = evaluate_engine(model, test_set, EngineKind::kLoWinoF4, 32);
  EXPECT_LT(ds4.accuracy, fp32.accuracy - 0.15) << "down-scaling F(4,4) should degrade";
  EXPECT_GT(lw4.accuracy, ds4.accuracy) << "LoWino F(4,4) must beat down-scaling F(4,4)";
}

TEST(EngineForward, ThrowsWithoutCalibration) {
  Rng rng(5);
  ConvLayer conv(64, 64, 8, 3, 1, rng);
  Tensor<float> in({1, 64, 8, 8});
  in.zero();
  Tensor<float> out;
  EXPECT_THROW(conv.forward_engine(in, out, EngineKind::kLoWinoF2, nullptr),
               std::logic_error);
}

TEST(EngineNames, AllDistinct) {
  const auto kinds = all_engine_kinds();
  EXPECT_EQ(kinds.size(), 13u);  // 11 core + int8_1x1 + int8_dw
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    for (std::size_t j = i + 1; j < kinds.size(); ++j) {
      EXPECT_STRNE(engine_name(kinds[i]), engine_name(kinds[j]));
      EXPECT_STRNE(engine_token(kinds[i]), engine_token(kinds[j]));
    }
  }
  ConvDesc d;
  d.batch = 1;
  d.in_channels = d.out_channels = 4;
  d.height = d.width = 8;
  d.kernel = 3;
  d.pad = 1;
  EXPECT_FALSE(engine_caps(EngineKind::kFp32Direct, d).quantized);
  EXPECT_TRUE(engine_caps(EngineKind::kLoWinoF4, d).quantized);
}

// --- EngineCaps: per-shape support gating ------------------------------------
TEST(EngineCapsQuery, ShapeGatingMatchesEngineAcceptance) {
  const auto desc = [](std::size_t c, std::size_t k, std::size_t r, std::size_t pad,
                       std::size_t groups, std::size_t stride = 1) {
    ConvDesc d;
    d.batch = 1;
    d.in_channels = c;
    d.out_channels = k;
    d.height = d.width = 8;
    d.kernel = r;
    d.pad = pad;
    d.groups = groups;
    d.stride = stride;
    return d;
  };
  const ConvDesc plain3x3 = desc(8, 8, 3, 1, 1);
  const ConvDesc pw1x1 = desc(8, 16, 1, 0, 1);
  const ConvDesc pw1x1s2 = desc(8, 16, 1, 0, 1, 2);
  const ConvDesc dw3x3 = desc(8, 8, 3, 1, 8);
  const ConvDesc grouped = desc(8, 8, 3, 1, 2);  // grouped but not depthwise

  // supports() must predict exactly what make_conv_engine accepts: a kind
  // that reports supports == false throws std::invalid_argument, a kind that
  // reports true constructs (the fuzzer cross-checks this on random shapes).
  for (const ConvDesc& d : {plain3x3, pw1x1, pw1x1s2, dw3x3, grouped}) {
    for (const EngineKind kind : all_engine_kinds()) {
      const EngineCaps caps = engine_caps(kind, d);
      if (caps.supports) {
        EXPECT_NO_THROW(make_conv_engine(kind, d))
            << engine_token(kind) << " on " << d.to_string();
      } else {
        EXPECT_THROW(make_conv_engine(kind, d), std::invalid_argument)
            << engine_token(kind) << " on " << d.to_string();
      }
    }
  }

  // Spot-check the table: who owns which shape.
  EXPECT_TRUE(engine_caps(EngineKind::kInt8Direct, plain3x3).supports);
  EXPECT_TRUE(engine_caps(EngineKind::kLoWinoF4, plain3x3).supports);
  EXPECT_FALSE(engine_caps(EngineKind::kInt8Conv1x1, plain3x3).supports);
  EXPECT_FALSE(engine_caps(EngineKind::kInt8Depthwise, plain3x3).supports);

  EXPECT_TRUE(engine_caps(EngineKind::kInt8Conv1x1, pw1x1).supports);
  EXPECT_TRUE(engine_caps(EngineKind::kInt8Conv1x1, pw1x1s2).supports);
  EXPECT_TRUE(engine_caps(EngineKind::kInt8Direct, pw1x1).supports);
  EXPECT_FALSE(engine_caps(EngineKind::kLoWinoF2, pw1x1).supports);  // r < 2
  EXPECT_FALSE(engine_caps(EngineKind::kVendorF2, pw1x1).supports);  // r != 3

  EXPECT_TRUE(engine_caps(EngineKind::kInt8Depthwise, dw3x3).supports);
  EXPECT_FALSE(engine_caps(EngineKind::kInt8Direct, dw3x3).supports);
  EXPECT_FALSE(engine_caps(EngineKind::kLoWinoF4, dw3x3).supports);
  EXPECT_FALSE(engine_caps(EngineKind::kFp32Direct, dw3x3).supports);

  // General grouped conv has no dedicated engine: nothing claims it.
  for (const EngineKind kind : all_engine_kinds()) {
    EXPECT_FALSE(engine_caps(kind, grouped).supports) << engine_token(kind);
  }

  // An invalid descriptor is supported by nothing, without throwing.
  ConvDesc bad = plain3x3;
  bad.kernel = 0;
  for (const EngineKind kind : all_engine_kinds()) {
    EXPECT_FALSE(engine_caps(kind, bad).supports) << engine_token(kind);
  }
}

TEST(ModelZoo, ShapesAndParameterCounts) {
  SequentialModel vgg = make_minivgg();
  SequentialModel res = make_miniresnet();
  SequentialModel mob = make_minimobilenet();
  EXPECT_GT(vgg.parameter_count(), 100000u);
  EXPECT_GT(res.parameter_count(), 100000u);
  EXPECT_GT(mob.parameter_count(), 10000u);
  // Depthwise separability: far fewer parameters than the dense-conv nets.
  EXPECT_LT(mob.parameter_count(), vgg.parameter_count());
  Tensor<float> x({2, 1, 16, 16});
  x.zero();
  EXPECT_EQ(vgg.forward(x).shape(), (std::vector<std::size_t>{2, 10}));
  EXPECT_EQ(res.forward(x).shape(), (std::vector<std::size_t>{2, 10}));
  EXPECT_EQ(mob.forward(x).shape(), (std::vector<std::size_t>{2, 10}));
}

TEST(EngineAgreement, MiniMobileNetDedicatedEnginesTrackFp32) {
  // End-to-end on the depthwise net: forcing int8_dw quantizes the depthwise
  // layers (the pointwise/stem layers fall back to FP32 — their shapes are
  // outside the engine's capability set), and int8_1x1 does the converse.
  const Dataset train_set = make_shape_dataset(320, 130);
  const Dataset calib_set = make_shape_dataset(128, 131);
  const Dataset test_set = make_shape_dataset(96, 132);
  SequentialModel model = make_minimobilenet(16, 10, 11);
  TrainConfig cfg;
  cfg.epochs = 3;
  cfg.batch = 32;
  train_model(model, train_set, cfg);

  const EvalResult fp32 = evaluate_fp32(model, test_set, 32);
  for (const EngineKind kind : {EngineKind::kInt8Depthwise, EngineKind::kInt8Conv1x1}) {
    calibrate_model(model, calib_set, kind, 128, 32);
    const EvalResult quant = evaluate_engine(model, test_set, kind, 32);
    EXPECT_EQ(quant.samples, 96u);
    EXPECT_GT(quant.accuracy, fp32.accuracy - 0.08)
        << engine_name(kind) << ": " << quant.accuracy << " vs fp32 " << fp32.accuracy;
  }
}

TEST(PaperLayers, Table2Complete) {
  const auto layers = paper_layers_table2();
  ASSERT_EQ(layers.size(), 20u);
  EXPECT_EQ(layers[0].name, "AlexNet_a");
  EXPECT_EQ(layers[0].desc.batch, 64u);
  EXPECT_EQ(layers[2].desc.height, 58u);   // VGG16_a
  EXPECT_EQ(layers[11].desc.batch, 1u);    // YOLOv3_a
  EXPECT_EQ(layers[19].desc.out_channels, 512u);  // U-Net_c
  for (const auto& l : layers) EXPECT_EQ(l.desc.kernel, 3u);
  const auto scaled = paper_layers_table2(/*batch_override=*/8);
  EXPECT_EQ(scaled[0].desc.batch, 8u);
  EXPECT_EQ(scaled[11].desc.batch, 1u);  // batch-1 rows unaffected
}

// --- Engine factory: degenerate-shape rejection ------------------------------
TEST(MakeConvEngine, RejectsDegenerateDescriptors) {
  // One representative degenerate descriptor per validate() rule; each must be
  // rejected at the factory for every engine kind, not deep inside a ctor
  // after size_t wrap-around has already sized a workspace.
  const auto degenerate = [](auto mutate) {
    ConvDesc d;
    d.batch = 1;
    d.in_channels = d.out_channels = 4;
    d.height = d.width = 8;
    d.kernel = 3;
    d.pad = 1;
    mutate(d);
    return d;
  };
  const ConvDesc bad[] = {
      degenerate([](ConvDesc& d) { d.kernel = 0; }),
      degenerate([](ConvDesc& d) { d.stride = 0; }),
      degenerate([](ConvDesc& d) { d.batch = 0; }),
      degenerate([](ConvDesc& d) { d.in_channels = 0; }),
      degenerate([](ConvDesc& d) { d.out_channels = 0; }),
      degenerate([](ConvDesc& d) { d.pad = 3; }),                   // pad >= kernel
      degenerate([](ConvDesc& d) { d.pad = 0; d.height = 2; }),     // r > h + 2p
      degenerate([](ConvDesc& d) { d.pad = 0; d.width = 2; }),      // r > w + 2p
  };
  const EngineKind kinds[] = {
      EngineKind::kFp32Direct, EngineKind::kFp32WinoF2, EngineKind::kInt8Direct,
      EngineKind::kLoWinoF2,   EngineKind::kDownscaleF2, EngineKind::kUpcastF2,
      EngineKind::kVendorF2,
  };
  for (const ConvDesc& d : bad) {
    for (const EngineKind kind : kinds) {
      EXPECT_THROW(make_conv_engine(kind, d), std::invalid_argument)
          << engine_name(kind) << " accepted " << d.to_string();
    }
  }
}

// --- Calibration stride heuristic and its env override -----------------------
TEST(CalibrationStride, HeuristicIsDenseBelowTheTileLimit) {
  ::unsetenv("LOWINO_CALIB_STRIDE");
  // Tiny maps (a CIFAR tail with a handful of tiles) walk every tile; big
  // maps keep the historical subsampling stride 2.
  EXPECT_EQ(lowino_calibration_stride(1), 1u);
  EXPECT_EQ(lowino_calibration_stride(8), 1u);
  EXPECT_EQ(lowino_calibration_stride(kCalibDenseTileLimit - 1), 1u);
  EXPECT_EQ(lowino_calibration_stride(kCalibDenseTileLimit), 2u);
  EXPECT_EQ(lowino_calibration_stride(4096), 2u);
}

TEST(CalibrationStride, EnvOverrideParsing) {
  const auto with_env = [](const char* value, std::size_t tiles) {
    ::setenv("LOWINO_CALIB_STRIDE", value, 1);
    const std::size_t s = lowino_calibration_stride(tiles);
    ::unsetenv("LOWINO_CALIB_STRIDE");
    return s;
  };
  EXPECT_EQ(with_env("3", 4096), 3u);
  EXPECT_EQ(with_env("1", 4096), 1u);
  EXPECT_EQ(with_env("16", 4), 16u);
  // Non-positive or unparsable values fall back to the heuristic.
  EXPECT_EQ(with_env("0", 4096), 2u);
  EXPECT_EQ(with_env("-3", 4096), 2u);
  EXPECT_EQ(with_env("banana", 4096), 2u);
  EXPECT_EQ(with_env("", 8), 1u);
}

// --- ConvEngine lifecycle state machine -------------------------------------

struct LifecycleFixture {
  ConvDesc desc;
  std::vector<float> input, weights, bias;

  LifecycleFixture() {
    desc.batch = 1;
    desc.in_channels = 4;
    desc.out_channels = 4;
    desc.height = desc.width = 8;
    desc.kernel = 3;
    desc.pad = 1;
    Rng rng(99);
    input.resize(desc.batch * desc.in_channels * desc.height * desc.width);
    weights.resize(desc.out_channels * desc.in_channels * 9);
    bias.resize(desc.out_channels);
    for (float& v : input) v = rng.uniform(-1.0f, 1.0f);
    for (float& v : weights) v = rng.normal() * 0.1f;
  }

  std::unique_ptr<ConvEngine> make(EngineKind kind) const {
    return make_conv_engine(kind, desc);
  }
  std::vector<float> output() const {
    return std::vector<float>(desc.batch * desc.out_channels * desc.out_height() *
                              desc.out_width());
  }
};

TEST(ConvEngineLifecycle, HappyPathAdvancesStates) {
  const LifecycleFixture f;
  auto e = f.make(EngineKind::kLoWinoF2);
  EXPECT_EQ(e->lifecycle(), ConvEngine::Lifecycle::kCalibrating);
  e->calibrate(f.input);
  e->calibrate(f.input);  // repeated sampling is part of the contract
  EXPECT_EQ(e->lifecycle(), ConvEngine::Lifecycle::kCalibrating);
  e->finalize_calibration();
  EXPECT_EQ(e->lifecycle(), ConvEngine::Lifecycle::kFinalized);
  e->set_filters(f.weights, f.bias);
  EXPECT_EQ(e->lifecycle(), ConvEngine::Lifecycle::kReady);
  auto out = f.output();
  e->run(f.input, out, nullptr);
  e->run(f.input, out, nullptr);  // run is repeatable
}

TEST(ConvEngineLifecycle, CalibrateAfterFinalizeThrows) {
  const LifecycleFixture f;
  auto e = f.make(EngineKind::kLoWinoF2);
  e->calibrate(f.input);
  e->finalize_calibration();
  EXPECT_THROW(e->calibrate(f.input), std::logic_error);
  // ... including after the engine is fully ready.
  e->set_filters(f.weights, f.bias);
  EXPECT_THROW(e->calibrate(f.input), std::logic_error);
}

TEST(ConvEngineLifecycle, DoubleFinalizeThrows) {
  const LifecycleFixture f;
  auto e = f.make(EngineKind::kInt8Direct);
  e->calibrate(f.input);
  e->finalize_calibration();
  EXPECT_THROW(e->finalize_calibration(), std::logic_error);
}

TEST(ConvEngineLifecycle, FinalizeWithoutSamplesThrowsOnQuantizedEngines) {
  const LifecycleFixture f;
  for (const EngineKind kind :
       {EngineKind::kInt8Direct, EngineKind::kLoWinoF2, EngineKind::kDownscaleF2}) {
    auto e = f.make(kind);
    EXPECT_THROW(e->finalize_calibration(), std::logic_error) << engine_name(kind);
  }
}

TEST(ConvEngineLifecycle, SetFiltersDuringCalibrationThrowsOnQuantizedEngines) {
  const LifecycleFixture f;
  // Never calibrated: no input scales exist.
  auto fresh = f.make(EngineKind::kLoWinoF4);
  EXPECT_THROW(fresh->set_filters(f.weights, f.bias), std::logic_error);
  // Mid-calibration (samples taken, not finalized): scales not fixed yet.
  auto mid = f.make(EngineKind::kLoWinoF4);
  mid->calibrate(f.input);
  EXPECT_THROW(mid->set_filters(f.weights, f.bias), std::logic_error);
}

TEST(ConvEngineLifecycle, RunBeforeFiltersThrows) {
  const LifecycleFixture f;
  auto out = f.output();
  auto e = f.make(EngineKind::kLoWinoF2);
  EXPECT_THROW(e->run(f.input, out, nullptr), std::logic_error);
  e->calibrate(f.input);
  e->finalize_calibration();
  EXPECT_THROW(e->run(f.input, out, nullptr), std::logic_error);
}

TEST(ConvEngineLifecycle, Fp32EnginesSkipCalibrationImplicitly) {
  const LifecycleFixture f;
  for (const EngineKind kind :
       {EngineKind::kFp32Direct, EngineKind::kFp32WinoF2, EngineKind::kFp32WinoF4}) {
    auto e = f.make(kind);
    e->set_filters(f.weights, f.bias);  // first call; state advances implicitly
    EXPECT_EQ(e->lifecycle(), ConvEngine::Lifecycle::kReady) << engine_name(kind);
    auto out = f.output();
    e->run(f.input, out, nullptr);
  }
  // But ordering bugs still surface on FP32 engines: run before filters and
  // calibrate after finalization throw regardless of kind.
  auto e = f.make(EngineKind::kFp32Direct);
  auto out = f.output();
  EXPECT_THROW(e->run(f.input, out, nullptr), std::logic_error);
  e->set_filters(f.weights, f.bias);
  EXPECT_THROW(e->calibrate(f.input), std::logic_error);
  EXPECT_THROW(e->finalize_calibration(), std::logic_error);
}

TEST(ConvEngineLifecycle, WeightReloadAfterReadyIsAllowed) {
  const LifecycleFixture f;
  auto e = f.make(EngineKind::kLoWinoF2);
  e->calibrate(f.input);
  e->finalize_calibration();
  e->set_filters(f.weights, f.bias);
  auto out = f.output();
  e->run(f.input, out, nullptr);
  e->set_filters(f.weights, f.bias);  // reload
  EXPECT_EQ(e->lifecycle(), ConvEngine::Lifecycle::kReady);
  e->run(f.input, out, nullptr);
}

// --- Engine identifier parsing ----------------------------------------------

TEST(EngineStrings, TokenAndNameRoundTripForEveryKind) {
  for (const EngineKind kind : all_engine_kinds()) {
    const auto from_token = engine_kind_from_string(engine_token(kind));
    ASSERT_TRUE(from_token.has_value()) << engine_token(kind);
    EXPECT_EQ(*from_token, kind);
    const auto from_name = engine_kind_from_string(engine_name(kind));
    ASSERT_TRUE(from_name.has_value()) << engine_name(kind);
    EXPECT_EQ(*from_name, kind);
  }
}

TEST(EngineStrings, TokensAreCaseAndSeparatorInsensitive) {
  EXPECT_EQ(engine_kind_from_string("LoWino-F4"), EngineKind::kLoWinoF4);
  EXPECT_EQ(engine_kind_from_string("LOWINO_F4"), EngineKind::kLoWinoF4);
  EXPECT_EQ(engine_kind_from_string("int8-direct"), EngineKind::kInt8Direct);
  EXPECT_EQ(engine_kind_from_string("Fp32-Wino-F2"), EngineKind::kFp32WinoF2);
}

TEST(EngineStrings, RejectsUnknownIdentifiers) {
  EXPECT_FALSE(engine_kind_from_string("").has_value());
  EXPECT_FALSE(engine_kind_from_string("lowino").has_value());
  EXPECT_FALSE(engine_kind_from_string("lowino_f8").has_value());
  EXPECT_FALSE(engine_kind_from_string("lowino_f4 ").has_value());  // no trailing junk
  EXPECT_FALSE(engine_kind_from_string("banana").has_value());
}

TEST(EngineStrings, AllKindsListedExactlyOnce) {
  const auto kinds = all_engine_kinds();
  EXPECT_EQ(kinds.size(), 13u);
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    for (std::size_t j = i + 1; j < kinds.size(); ++j) {
      EXPECT_NE(kinds[i], kinds[j]);
    }
  }
}

}  // namespace
}  // namespace lowino

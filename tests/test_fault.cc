// Tests for the seeded fault-injection harness (src/common/fault.h).
//
// The harness underpins every fault-tolerance test in the serving suite, so
// its own guarantees get direct coverage here: zero effect (and zero
// counting) while disarmed, deterministic per-check decisions under every
// arm mode, strict spec parsing (a typo must not silently run fault-free),
// and ScopedFaultPlan's restore-on-destruction including nesting.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <vector>

#include "common/env.h"
#include "common/fault.h"
#include "serve/session.h"
#include "tuning/wisdom.h"

namespace lowino {
namespace {

/// Counts how many of the next `n` checks at `site` throw.
std::uint64_t count_injected(FaultSite site, std::uint64_t n) {
  std::uint64_t injected = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    try {
      maybe_inject_fault(site);
    } catch (const FaultInjectedError& e) {
      EXPECT_EQ(e.site(), site);
      ++injected;
    }
  }
  return injected;
}

TEST(Fault, SiteNamesRoundTrip) {
  for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
    const auto site = static_cast<FaultSite>(s);
    const auto back = fault_site_from_name(fault_site_name(site));
    ASSERT_TRUE(back.has_value()) << fault_site_name(site);
    EXPECT_EQ(*back, site);
  }
  EXPECT_FALSE(fault_site_from_name("no-such-site").has_value());
  EXPECT_FALSE(fault_site_from_name("").has_value());
}

TEST(Fault, DisabledByDefaultAndCostFree) {
  ASSERT_FALSE(fault_injection_enabled());
  const std::uint64_t before = fault_checked_count(FaultSite::kSessionRun);
  EXPECT_EQ(count_injected(FaultSite::kSessionRun, 1000), 0u);
  // The disabled path must not even count: one relaxed load and out.
  EXPECT_EQ(fault_checked_count(FaultSite::kSessionRun), before);
}

TEST(Fault, EmptyPlanCountsChecksButNeverThrows) {
  ScopedFaultPlan plan;
  EXPECT_TRUE(fault_injection_enabled());
  EXPECT_EQ(count_injected(FaultSite::kEngineExecute, 17), 0u);
  EXPECT_EQ(fault_checked_count(FaultSite::kEngineExecute), 17u);
  EXPECT_EQ(fault_injected_count(FaultSite::kEngineExecute), 0u);
  EXPECT_EQ(fault_checked_count(FaultSite::kSessionRun), 0u)
      << "sites count independently";
}

TEST(Fault, FailNextThrowsExactlyNThenPasses) {
  ScopedFaultPlan plan;
  plan.fail_next(FaultSite::kPlanLoad, 3);
  EXPECT_EQ(count_injected(FaultSite::kPlanLoad, 10), 3u);
  EXPECT_EQ(fault_injected_count(FaultSite::kPlanLoad), 3u);
  EXPECT_EQ(count_injected(FaultSite::kPlanLoad, 10), 0u) << "budget spent";
  EXPECT_EQ(count_injected(FaultSite::kSessionRun, 5), 0u) << "other sites pass";
}

TEST(Fault, FailCallsHitsExactlyTheNamedIndices) {
  ScopedFaultPlan plan;
  plan.fail_calls(FaultSite::kEngineExecute, {0, 4, 5});
  std::vector<bool> threw;
  for (int i = 0; i < 8; ++i) {
    bool t = false;
    try {
      maybe_inject_fault(FaultSite::kEngineExecute);
    } catch (const FaultInjectedError&) {
      t = true;
    }
    threw.push_back(t);
  }
  EXPECT_EQ(threw, (std::vector<bool>{true, false, false, false, true, true, false,
                                      false}));
}

TEST(Fault, RateZeroAndOneAreExact) {
  {
    ScopedFaultPlan plan;
    plan.fail_rate(FaultSite::kSessionRun, 0.0, /*seed=*/1);
    EXPECT_EQ(count_injected(FaultSite::kSessionRun, 200), 0u);
  }
  {
    ScopedFaultPlan plan;
    plan.fail_rate(FaultSite::kSessionRun, 1.0, /*seed=*/1);
    EXPECT_EQ(count_injected(FaultSite::kSessionRun, 200), 200u);
  }
}

TEST(Fault, RateDecisionsAreSeedDeterministic) {
  auto sequence = [](std::uint64_t seed) {
    ScopedFaultPlan plan;
    plan.fail_rate(FaultSite::kEngineExecute, 0.3, seed);
    std::vector<bool> s;
    for (int i = 0; i < 64; ++i) {
      bool t = false;
      try {
        maybe_inject_fault(FaultSite::kEngineExecute);
      } catch (const FaultInjectedError&) {
        t = true;
      }
      s.push_back(t);
    }
    return s;
  };
  const auto a = sequence(42);
  EXPECT_EQ(a, sequence(42)) << "same seed, same decisions, every run";
  EXPECT_NE(a, sequence(43)) << "different seed, different pattern";
}

TEST(Fault, RateHitsRoughlyRateFractionOfChecks) {
  ScopedFaultPlan plan;
  plan.fail_rate(FaultSite::kArenaAlloc, 0.5, /*seed=*/7);
  const std::uint64_t hits = count_injected(FaultSite::kArenaAlloc, 2000);
  // Deterministic given the seed; generous bounds document intent, not luck.
  EXPECT_GT(hits, 800u);
  EXPECT_LT(hits, 1200u);
}

TEST(Fault, SpecParsingIsStrict) {
  EXPECT_TRUE(fault_spec_valid(""));
  EXPECT_TRUE(fault_spec_valid("engine-execute:0.01:42"));
  EXPECT_TRUE(fault_spec_valid("session-run:1:0,plan-load:0.5:9"));
  EXPECT_FALSE(fault_spec_valid("bogus-site:0.5:1"));
  EXPECT_FALSE(fault_spec_valid("engine-execute:1.5:1")) << "rate > 1";
  EXPECT_FALSE(fault_spec_valid("engine-execute:-0.1:1")) << "rate < 0";
  EXPECT_FALSE(fault_spec_valid("engine-execute:0.5")) << "missing seed";
  EXPECT_FALSE(fault_spec_valid("engine-execute:0.5:12junk"));
  EXPECT_FALSE(fault_spec_valid("engine-execute:abc:1"));
  EXPECT_FALSE(fault_spec_valid("engine-execute:0.5:1,")) << "empty trailing entry";
}

TEST(Fault, ArmSpecRejectsBadSpecKeepingPreviousPlan) {
  ASSERT_TRUE(fault_arm_spec("session-run:1:0"));
  EXPECT_TRUE(fault_injection_enabled());
  EXPECT_FALSE(fault_arm_spec("not a spec"));
  EXPECT_TRUE(fault_injection_enabled()) << "bad spec leaves the old plan armed";
  EXPECT_EQ(count_injected(FaultSite::kSessionRun, 3), 3u);
  fault_disarm();
  EXPECT_FALSE(fault_injection_enabled());
  EXPECT_EQ(count_injected(FaultSite::kSessionRun, 3), 0u);
}

TEST(Fault, ApplyEnvReadsRuntimeConfig) {
  {
    ScopedRuntimeOverride spec("LOWINO_FAULT", "plan-load:1:0");
    EXPECT_TRUE(fault_apply_env());
    EXPECT_EQ(count_injected(FaultSite::kPlanLoad, 2), 2u);
  }
  // Override gone: re-applying the (now empty) spec disarms.
  EXPECT_FALSE(fault_apply_env());
  EXPECT_EQ(count_injected(FaultSite::kPlanLoad, 2), 0u);
}

TEST(Fault, ScopedPlanRestoresOuterPlanOnDestruction) {
  ScopedFaultPlan outer;
  outer.fail_next(FaultSite::kWorkerStart, 1000);
  EXPECT_EQ(count_injected(FaultSite::kWorkerStart, 2), 2u);
  {
    ScopedFaultPlan inner;  // empty: nothing fails inside
    EXPECT_EQ(count_injected(FaultSite::kWorkerStart, 5), 0u);
    inner.fail_next(FaultSite::kSessionRun, 1);
    EXPECT_EQ(count_injected(FaultSite::kSessionRun, 5), 1u);
  }
  EXPECT_TRUE(fault_injection_enabled()) << "outer plan re-enabled";
  EXPECT_EQ(count_injected(FaultSite::kWorkerStart, 2), 2u)
      << "outer fail_next budget survives the inner scope";
  EXPECT_EQ(count_injected(FaultSite::kSessionRun, 5), 0u)
      << "inner arm did not leak into the outer plan";
}

TEST(Fault, ScopedPlanRestoresDisabledState) {
  ASSERT_FALSE(fault_injection_enabled());
  {
    ScopedFaultPlan plan;
    plan.fail_next(FaultSite::kSessionRun, 1);
    EXPECT_TRUE(fault_injection_enabled());
  }
  EXPECT_FALSE(fault_injection_enabled());
  EXPECT_EQ(count_injected(FaultSite::kSessionRun, 3), 0u);
}

TEST(Fault, RejectsOutOfRangeRate) {
  ScopedFaultPlan plan;
  EXPECT_THROW(plan.fail_rate(FaultSite::kSessionRun, 1.5, 0), std::invalid_argument);
  EXPECT_THROW(plan.fail_rate(FaultSite::kSessionRun, -0.5, 0), std::invalid_argument);
}

// --- Crash-safe persistence under the plan-load fault point -----------------
//
// Both stores save via write-temp-then-rename; the fault point sits in the
// crash window between the two. A save that dies there must leave the
// previous file byte-identical and no temp residue behind.

bool file_exists(const std::string& path) { return std::ifstream(path).good(); }

TEST(FaultCrashSafety, WisdomSaveDyingMidSaveKeepsOldFile) {
  const std::string path = ::testing::TempDir() + "lowino_fault_wisdom.txt";
  WisdomStore v1;
  ASSERT_TRUE(v1.put_string("gen", "one"));
  ASSERT_TRUE(v1.save(path));

  WisdomStore v2;
  ASSERT_TRUE(v2.put_string("gen", "two"));
  {
    ScopedFaultPlan plan;
    plan.fail_next(FaultSite::kPlanLoad, 1);
    EXPECT_THROW(v2.save(path), FaultInjectedError);
  }
  EXPECT_FALSE(file_exists(path + ".tmp")) << "temp residue after a crashed save";
  auto loaded = WisdomStore::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->get_string("gen").value_or(""), "one")
      << "crashed save must not clobber the previous wisdom";

  ASSERT_TRUE(v2.save(path)) << "the store is reusable after a crashed save";
  loaded = WisdomStore::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->get_string("gen").value_or(""), "two");
  std::remove(path.c_str());
}

TEST(FaultCrashSafety, SessionPlanSaveDyingMidSaveKeepsOldFile) {
  SessionPlan p;
  p.batch = 2;
  p.arena_bytes = 4096;
  p.naive_bytes = 8192;
  const std::string path = ::testing::TempDir() + "lowino_fault_plan.txt";
  ASSERT_TRUE(p.save(path));
  const std::string v1 = p.serialize();

  p.arena_bytes = 9999;
  {
    ScopedFaultPlan plan;
    plan.fail_next(FaultSite::kPlanLoad, 1);
    EXPECT_THROW(p.save(path), FaultInjectedError);
  }
  EXPECT_FALSE(file_exists(path + ".tmp"));
  auto loaded = SessionPlan::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->serialize(), v1) << "previous plan bytes must survive";

  ASSERT_TRUE(p.save(path));
  loaded = SessionPlan::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->arena_bytes, 9999u);
  std::remove(path.c_str());
}

TEST(FaultCrashSafety, LoadsAreInjectableToo) {
  const std::string path = ::testing::TempDir() + "lowino_fault_load.txt";
  WisdomStore store;
  ASSERT_TRUE(store.save(path));
  ScopedFaultPlan plan;
  plan.fail_next(FaultSite::kPlanLoad, 2);
  EXPECT_THROW(WisdomStore::load(path), FaultInjectedError);
  EXPECT_THROW(SessionPlan::load(path), FaultInjectedError);
  EXPECT_TRUE(WisdomStore::load(path).has_value()) << "budget spent; loads recover";
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lowino

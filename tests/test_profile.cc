// Tests for the per-stage execution profiler (src/profile).
//
// Covers the recording semantics (cross-thread attribution, same-stage
// nesting exclusion), the cost contract (no allocation when disabled, no
// steady-state allocation when enabled), both sinks (summary text and the
// chrome://tracing JSON — round-tripped through a real JSON parser below),
// and the headline accuracy claim: on a single-threaded staged execution the
// profiler's stage totals must account for the externally timed wall clock
// within 10%.
#include <gtest/gtest.h>

#include <array>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/timer.h"
#include "lowino/convolution.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"

namespace lowino {
namespace {

/// Disables profiling and clears recorded state on entry and exit, restoring
/// the prior enable flag — tests must not leak spans into each other or into
/// a user-requested LOWINO_PROFILE exit dump.
class ProfilerGuard {
 public:
  ProfilerGuard() : was_enabled_(profiler_enabled()) {
    profiler_set_enabled(false);
    profiler_reset();
  }
  ~ProfilerGuard() {
    profiler_set_enabled(was_enabled_);
    profiler_reset();
  }

 private:
  bool was_enabled_;
};

double stage_seconds(ProfileStage s) {
  return profiler_stage_totals()[static_cast<std::size_t>(s)].seconds;
}

std::uint64_t stage_spans(ProfileStage s) {
  return profiler_stage_totals()[static_cast<std::size_t>(s)].spans;
}

/// Busy-waits so a span has a measurable, strictly positive duration.
void spin_for(double seconds) {
  Timer t;
  while (t.seconds() < seconds) {
  }
}

ConvDesc make_desc(std::size_t batch, std::size_t c, std::size_t k, std::size_t hw) {
  ConvDesc d;
  d.batch = batch;
  d.in_channels = c;
  d.out_channels = k;
  d.height = d.width = hw;
  d.kernel = 3;
  d.pad = 1;
  return d;
}

// --- Recording semantics -----------------------------------------------------

TEST(ProfileSpans, NestAndAttributeAcrossThreads) {
  ProfilerGuard guard;
  profiler_set_enabled(true);
  constexpr std::size_t kThreads = 3;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([i] {
      char name[32];
      std::snprintf(name, sizeof(name), "span-test-%zu", i);
      profiler_set_thread_name(name);
      ProfileSpan outer(ProfileStage::kTunerTrial);
      {
        ProfileSpan inner(ProfileStage::kGemm);  // different stage: nests freely
        spin_for(0.002);
      }
      {
        // Same-stage nesting: lands in the trace, excluded from the totals —
        // instrumenting a caller and its callee must not double-count.
        ProfileSpan again(ProfileStage::kTunerTrial);
        spin_for(0.001);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(stage_spans(ProfileStage::kTunerTrial), kThreads);
  EXPECT_EQ(stage_spans(ProfileStage::kGemm), kThreads);
  EXPECT_GT(stage_seconds(ProfileStage::kGemm), 0.0);
  // The outer span's inclusive time contains the inner GEMM span.
  EXPECT_GE(stage_seconds(ProfileStage::kTunerTrial), stage_seconds(ProfileStage::kGemm));
  EXPECT_GE(profiler_thread_count(), kThreads);
  EXPECT_EQ(profiler_dropped_events(), 0u);
}

TEST(ProfileReset, ClearsTotalsAndDropCounts) {
  ProfilerGuard guard;
  profiler_set_enabled(true);
  { ProfileSpan s(ProfileStage::kGemm); }
  ASSERT_GT(stage_spans(ProfileStage::kGemm), 0u);
  profiler_reset();
  const auto totals = profiler_stage_totals();
  for (std::size_t i = 0; i < kProfileStageCount; ++i) {
    EXPECT_EQ(totals[i].seconds, 0.0) << profile_stage_name(static_cast<ProfileStage>(i));
    EXPECT_EQ(totals[i].spans, 0u) << profile_stage_name(static_cast<ProfileStage>(i));
  }
  EXPECT_EQ(profiler_dropped_events(), 0u);
}

// --- Cost contract -----------------------------------------------------------

TEST(ProfileCost, DisabledSpansDoNotAllocateOrRegister) {
  ProfilerGuard guard;  // leaves profiling disabled
  const std::uint64_t allocs = aligned_buffer_alloc_count();
  const std::size_t logs = profiler_thread_count();
  for (int i = 0; i < 1000; ++i) {
    ProfileSpan a(ProfileStage::kGemm);
    ProfileSpan b(ProfileStage::kInputTransform);
  }
  EXPECT_EQ(aligned_buffer_alloc_count(), allocs);
  EXPECT_EQ(profiler_thread_count(), logs);
}

TEST(ProfileCost, EnabledSteadyStateDoesNotAllocate) {
  ProfilerGuard guard;
  profiler_set_enabled(true);
  { ProfileSpan warm(ProfileStage::kGemm); }  // first span allocates this thread's ring
  const std::uint64_t allocs = aligned_buffer_alloc_count();
  for (int i = 0; i < 2000; ++i) {
    ProfileSpan s(ProfileStage::kGemm);
  }
  EXPECT_EQ(aligned_buffer_alloc_count(), allocs);
}

// --- Minimal JSON parser -----------------------------------------------------
// Just enough of RFC 8259 to round-trip the trace event format: objects,
// arrays, strings with escapes, numbers, true/false/null. A malformed byte in
// the emitted trace should fail *here*, not in some external viewer.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}
  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }
  bool value(JsonValue& out) {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JsonValue::kString; return string(out.str);
      case 't': out.kind = JsonValue::kBool; out.boolean = true; return literal("true");
      case 'f': out.kind = JsonValue::kBool; out.boolean = false; return literal("false");
      case 'n': out.kind = JsonValue::kNull; return literal("null");
      default: return number(out);
    }
  }
  bool string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        const char esc = s_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return false;
            for (int i = 0; i < 4; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + i]))) return false;
            }
            pos_ += 4;
            out += '?';  // code point value irrelevant for these tests
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // control characters must be escaped
      } else {
        out += s_[pos_++];
      }
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number(JsonValue& out) {
    const char* begin = s_.c_str() + pos_;
    char* end = nullptr;
    out.number = std::strtod(begin, &end);
    if (end == begin) return false;
    out.kind = JsonValue::kNumber;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }
  bool array(JsonValue& out) {
    out.kind = JsonValue::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      JsonValue elem;
      skip_ws();
      if (!value(elem)) return false;
      out.array.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool object(JsonValue& out) {
    out.kind = JsonValue::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || s_[pos_] != '"' || !string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      skip_ws();
      JsonValue val;
      if (!value(val)) return false;
      out.object.emplace(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') { ++pos_; continue; }
      if (s_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// --- Sinks -------------------------------------------------------------------

TEST(ProfileTrace, ChromeTraceRoundTripsThroughAParser) {
  ProfilerGuard guard;
  profiler_set_enabled(true);
  profiler_set_thread_name("trace-main");
  {
    ProfileSpan a(ProfileStage::kInputTransform);
    ProfileSpan b(ProfileStage::kGemm);
    spin_for(0.001);
  }
  {
    ProfileSpan c(ProfileStage::kOutputTransform);
    spin_for(0.0005);
  }

  const std::string path = ::testing::TempDir() + "lowino_trace_roundtrip.json";
  ASSERT_TRUE(profiler_write_chrome_trace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();

  JsonValue root;
  ASSERT_TRUE(JsonParser(buf.str()).parse(root)) << buf.str();
  ASSERT_EQ(root.kind, JsonValue::kObject);
  const auto events_it = root.object.find("traceEvents");
  ASSERT_NE(events_it, root.object.end());
  ASSERT_EQ(events_it->second.kind, JsonValue::kArray);

  std::size_t x_events = 0;
  bool saw_thread_name = false;
  bool saw_gemm = false;
  for (const JsonValue& ev : events_it->second.array) {
    ASSERT_EQ(ev.kind, JsonValue::kObject);
    const auto ph = ev.object.find("ph");
    ASSERT_NE(ph, ev.object.end());
    if (ph->second.str == "X") {
      ++x_events;
      const auto name = ev.object.find("name");
      const auto ts = ev.object.find("ts");
      const auto dur = ev.object.find("dur");
      ASSERT_NE(name, ev.object.end());
      ASSERT_NE(ts, ev.object.end());
      ASSERT_NE(dur, ev.object.end());
      EXPECT_GE(ts->second.number, 0.0);
      EXPECT_GE(dur->second.number, 0.0);
      if (name->second.str == profile_stage_name(ProfileStage::kGemm)) saw_gemm = true;
    } else if (ph->second.str == "M") {
      const auto name = ev.object.find("name");
      if (name != ev.object.end() && name->second.str == "thread_name") {
        const auto args = ev.object.find("args");
        if (args != ev.object.end() && args->second.kind == JsonValue::kObject) {
          const auto n = args->second.object.find("name");
          if (n != args->second.object.end() && n->second.str == "trace-main") {
            saw_thread_name = true;
          }
        }
      }
    }
  }
  EXPECT_EQ(x_events, 3u);  // the three spans above (all different stages)
  EXPECT_TRUE(saw_gemm);
  EXPECT_TRUE(saw_thread_name);
  std::remove(path.c_str());
}

TEST(ProfileSummary, ListsStagesAndThreadBreakdown) {
  ProfilerGuard guard;
  profiler_set_enabled(true);
  profiler_set_thread_name("summary-main");
  {
    ProfileSpan s(ProfileStage::kCalibration);
    spin_for(0.001);
  }
  const std::string text = profiler_summary();
  EXPECT_NE(text.find(profile_stage_name(ProfileStage::kCalibration)), std::string::npos)
      << text;
  EXPECT_NE(text.find("summary-main"), std::string::npos) << text;
}

// --- End-to-end accuracy on real executions ----------------------------------

// The ISSUE acceptance criterion: single-threaded staged execution, the sum
// of the three pipeline stage totals must agree with an external wall-clock
// measurement of the same executes within 10% (and never exceed it by more
// than measurement noise — the spans live strictly inside the executes).
TEST(ProfileAccuracy, StagedStageTotalsMatchExternalTiming) {
  ProfilerGuard guard;
  const ConvDesc d = make_desc(1, 64, 64, 32);
  LoWinoConfig cfg;
  cfg.m = 4;
  cfg.execution_mode = ExecutionMode::kStaged;
  LoWinoConvolution conv(d, cfg);
  conv.set_uniform_input_threshold(2.0f);
  std::vector<float> weights(d.out_channels * d.in_channels * d.kernel * d.kernel, 0.01f);
  std::vector<float> bias;
  conv.set_filters(weights, bias);
  std::vector<float> in(conv.input_layout().size(), 0.5f);
  std::vector<float> out(conv.output_layout().size());

  // pool = nullptr: the calling thread does all the work, so summed per-thread
  // busy time is directly comparable to wall time.
  conv.execute_blocked(in, out, nullptr);  // warm-up (workspace, packing)
  profiler_set_enabled(true);
  profiler_reset();
  Timer wall;
  constexpr int kReps = 5;
  for (int i = 0; i < kReps; ++i) conv.execute_blocked(in, out, nullptr);
  const double external = wall.seconds();

  const double internal = stage_seconds(ProfileStage::kInputTransform) +
                          stage_seconds(ProfileStage::kGemm) +
                          stage_seconds(ProfileStage::kOutputTransform);
  EXPECT_GT(internal, 0.0);
  EXPECT_LE(internal, external * 1.02);
  EXPECT_GE(internal, external * 0.90)
      << "stages sum to " << internal << "s of " << external << "s wall";
}

TEST(ProfileAccuracy, FusedModeYieldsPerStageSplit) {
  ProfilerGuard guard;
  // 56x56 at m=4 gives 196 tiles — several n-blocks, so the fused driver
  // records more than one per-stage span (one per n-block per worker).
  const ConvDesc d = make_desc(1, 64, 64, 56);
  LoWinoConfig cfg;
  cfg.m = 4;
  cfg.execution_mode = ExecutionMode::kFused;
  LoWinoConvolution conv(d, cfg);
  conv.set_uniform_input_threshold(2.0f);
  std::vector<float> weights(d.out_channels * d.in_channels * d.kernel * d.kernel, 0.01f);
  std::vector<float> bias;
  conv.set_filters(weights, bias);
  std::vector<float> in(conv.input_layout().size(), 0.5f);
  std::vector<float> out(conv.output_layout().size());

  ThreadPool pool(4);
  conv.execute_blocked(in, out, &pool);  // warm-up
  profiler_set_enabled(true);
  profiler_reset();
  conv.execute_blocked(in, out, &pool);

  // The fused path records per-n-block spans on every worker, so each stage
  // shows up with real time and more than one span — the breakdown the old
  // Timer-based instrumentation could not produce without de-fusing.
  for (const ProfileStage s : {ProfileStage::kInputTransform, ProfileStage::kGemm,
                               ProfileStage::kOutputTransform}) {
    EXPECT_GT(stage_seconds(s), 0.0) << profile_stage_name(s);
    EXPECT_GT(stage_spans(s), 1u) << profile_stage_name(s);
  }
}

}  // namespace
}  // namespace lowino

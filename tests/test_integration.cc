// Cross-engine integration tests: rectangular images, stress shapes, and
// consistency sweeps across every engine on the same problem.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "direct/direct_f32.h"
#include "lowino/lowino.h"
#include "nn/engines.h"
#include "parallel/thread_pool.h"
#include "quant/quantize.h"

namespace lowino {
namespace {

struct Problem {
  std::vector<float> input, weights, bias, ref;
};

Problem make_problem(const ConvDesc& d, unsigned seed) {
  Problem p;
  Rng rng(seed);
  p.input.resize(d.batch * d.in_channels * d.height * d.width);
  p.weights.resize(d.out_channels * d.in_channels * d.kernel * d.kernel);
  p.bias.resize(d.out_channels);
  for (auto& v : p.input) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : p.weights) v = rng.normal() * 0.1f;
  for (auto& v : p.bias) v = rng.uniform(-0.1f, 0.1f);
  p.ref.resize(d.batch * d.out_channels * d.out_height() * d.out_width());
  direct_conv_f32_reference(d, p.input, p.weights, p.bias, p.ref);
  return p;
}

double engine_snr(EngineKind kind, const ConvDesc& d, const Problem& p,
                  ThreadPool* pool = nullptr) {
  auto engine = make_conv_engine(kind, d);
  engine->calibrate(p.input);
  engine->finalize_calibration();
  engine->set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  engine->run(p.input, out, pool);
  return quantization_error(p.ref, out).signal_to_noise_db;
}

// --- rectangular images (H != W) --------------------------------------------
struct RectCase {
  std::size_t h, w;
};

class RectangularImages : public ::testing::TestWithParam<RectCase> {};

TEST_P(RectangularImages, AllEnginesHandleNonSquare) {
  const auto [h, w] = GetParam();
  ConvDesc d;
  d.batch = 1;
  d.in_channels = 64;
  d.out_channels = 64;
  d.height = h;
  d.width = w;
  d.kernel = 3;
  d.pad = 1;
  const Problem p = make_problem(d, static_cast<unsigned>(h * 100 + w));

  EXPECT_GT(engine_snr(EngineKind::kFp32Direct, d, p), 90.0);
  EXPECT_GT(engine_snr(EngineKind::kFp32WinoF4, d, p), 90.0);
  EXPECT_GT(engine_snr(EngineKind::kInt8Direct, d, p), 25.0);
  EXPECT_GT(engine_snr(EngineKind::kLoWinoF2, d, p), 26.0);
  EXPECT_GT(engine_snr(EngineKind::kLoWinoF4, d, p), 14.0);
  EXPECT_GT(engine_snr(EngineKind::kUpcastF2, d, p), 25.0);
  EXPECT_GT(engine_snr(EngineKind::kVendorF2, d, p), 18.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RectangularImages,
                         ::testing::Values(RectCase{7, 19}, RectCase{19, 7},
                                           RectCase{5, 32}, RectCase{13, 6}));

// --- stress shapes ------------------------------------------------------------
TEST(StressShapes, MinimalSpatialSize) {
  // 1x1 output with pad: tiles are all halo.
  ConvDesc d;
  d.batch = 1;
  d.in_channels = 64;
  d.out_channels = 64;
  d.height = d.width = 1;
  d.kernel = 3;
  d.pad = 1;
  const Problem p = make_problem(d, 77);
  EXPECT_GT(engine_snr(EngineKind::kLoWinoF4, d, p), 10.0);
  EXPECT_GT(engine_snr(EngineKind::kLoWinoF2, d, p), 20.0);
}

TEST(StressShapes, LargeChannelSmallSpatial) {
  ConvDesc d;
  d.batch = 1;
  d.in_channels = 512;
  d.out_channels = 512;
  d.height = d.width = 4;
  d.kernel = 3;
  d.pad = 1;
  const Problem p = make_problem(d, 78);
  EXPECT_GT(engine_snr(EngineKind::kLoWinoF4, d, p), 14.0);
}

TEST(StressShapes, SingleChannelIn) {
  // C = 1 exercises the 64x channel padding path end to end.
  ConvDesc d;
  d.batch = 2;
  d.in_channels = 1;
  d.out_channels = 64;
  d.height = d.width = 12;
  d.kernel = 3;
  d.pad = 1;
  const Problem p = make_problem(d, 79);
  // A single input channel is the worst case for F(4x4): no cross-channel
  // averaging of quantization noise (this is why deployments often keep a
  // network's first layer in higher precision).
  EXPECT_GT(engine_snr(EngineKind::kLoWinoF4, d, p), 4.0);
  EXPECT_GT(engine_snr(EngineKind::kLoWinoF2, d, p), 20.0);
  EXPECT_GT(engine_snr(EngineKind::kInt8Direct, d, p), 25.0);
}

TEST(StressShapes, NoPadding) {
  ConvDesc d;
  d.batch = 1;
  d.in_channels = 64;
  d.out_channels = 64;
  d.height = d.width = 14;
  d.kernel = 3;
  d.pad = 0;  // valid convolution, 12x12 output
  const Problem p = make_problem(d, 80);
  EXPECT_EQ(d.out_height(), 12u);
  EXPECT_GT(engine_snr(EngineKind::kLoWinoF2, d, p), 26.0);
  EXPECT_GT(engine_snr(EngineKind::kLoWinoF4, d, p), 14.0);
}

TEST(StressShapes, FiveByFiveKernelGenericPath) {
  // r = 5 exercises the generated-transform path (no canonical matrices).
  ConvDesc d;
  d.batch = 1;
  d.in_channels = 64;
  d.out_channels = 64;
  d.height = d.width = 12;
  d.kernel = 5;
  d.pad = 2;
  const Problem p = make_problem(d, 81);
  LoWinoConfig cfg;
  cfg.m = 2;  // F(2x2, 5x5), alpha = 6
  LoWinoConvolution conv(d, cfg);
  conv.calibrate(p.input);
  conv.finalize_calibration();
  conv.set_filters(p.weights, p.bias);
  std::vector<float> out(p.ref.size());
  conv.execute_nchw(p.input, out);
  EXPECT_GT(quantization_error(p.ref, out).signal_to_noise_db, 15.0);
}

TEST(StressShapes, HandCodeletsOffMatchesOnNumerically) {
  ConvDesc d;
  d.batch = 1;
  d.in_channels = 64;
  d.out_channels = 64;
  d.height = d.width = 10;
  d.kernel = 3;
  d.pad = 1;
  const Problem p = make_problem(d, 82);
  auto run = [&](bool hand) {
    LoWinoConfig cfg;
    cfg.m = 4;
    cfg.use_hand_codelets = hand;
    LoWinoConvolution conv(d, cfg);
    conv.set_uniform_input_threshold(16.0f);
    conv.set_filters(p.weights, p.bias);
    std::vector<float> out(p.ref.size());
    conv.execute_nchw(p.input, out);
    return out;
  };
  const auto with = run(true);
  const auto without = run(false);
  // FMA contraction permits tiny pre-quantization differences; outputs must
  // agree to well below the INT8 quantization step.
  for (std::size_t i = 0; i < with.size(); ++i) {
    ASSERT_NEAR(with[i], without[i], 0.05f) << i;
  }
}

// --- threaded sweep -----------------------------------------------------------
TEST(ThreadedSweep, EveryQuantizedEngineParallelSafe) {
  ThreadPool pool(4);
  ConvDesc d;
  d.batch = 2;
  d.in_channels = 64;
  d.out_channels = 128;
  d.height = 11;
  d.width = 9;
  d.kernel = 3;
  d.pad = 1;
  const Problem p = make_problem(d, 90);
  for (EngineKind kind : {EngineKind::kInt8Direct, EngineKind::kLoWinoF2,
                          EngineKind::kLoWinoF4, EngineKind::kDownscaleF2,
                          EngineKind::kUpcastF2, EngineKind::kVendorF2}) {
    auto engine = make_conv_engine(kind, d);
    engine->calibrate(p.input);
    engine->finalize_calibration();
    engine->set_filters(p.weights, p.bias);
    std::vector<float> serial(p.ref.size()), parallel(p.ref.size());
    engine->run(p.input, serial, nullptr);
    engine->run(p.input, parallel, &pool);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i], parallel[i]) << engine_name(kind) << " " << i;
    }
  }
}

}  // namespace
}  // namespace lowino

// Tests for the codelet planner (CSE + zero-skipping, Figure 4).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "winograd/codelet_plan.h"
#include "winograd/transform.h"

namespace lowino {
namespace {

/// Dense reference: out = M x, applied per lane.
void naive_apply(const std::vector<double>& M, std::size_t n_out, std::size_t n_in,
                 const float* in, std::size_t in_stride, float* out, std::size_t out_stride,
                 std::size_t lanes) {
  for (std::size_t i = 0; i < n_out; ++i) {
    for (std::size_t l = 0; l < lanes; ++l) {
      float acc = 0.0f;
      for (std::size_t j = 0; j < n_in; ++j) {
        acc += static_cast<float>(M[i * n_in + j]) * in[j * in_stride + l];
      }
      out[i * out_stride + l] = acc;
    }
  }
}

void expect_plan_matches(const std::vector<double>& M, std::size_t n_out, std::size_t n_in,
                         std::size_t lanes, unsigned seed) {
  const CodeletPlan plan = CodeletPlan::build(M.data(), n_out, n_in);
  Rng rng(seed);
  std::vector<float> in(n_in * lanes), got(n_out * lanes), want(n_out * lanes);
  for (auto& v : in) v = rng.uniform(-3.0f, 3.0f);
  plan.apply(in.data(), lanes, got.data(), lanes, lanes);
  naive_apply(M, n_out, n_in, in.data(), lanes, want.data(), lanes, lanes);
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_NEAR(got[i], want[i], 1e-4f) << "element " << i;
  }
}

TEST(CodeletPlan, MatchesNaiveForCanonicalBT) {
  const TransformMatrices& f23 = canonical_f23();
  expect_plan_matches(f23.BT, 4, 4, 16, 1);
  const TransformMatrices& f43 = canonical_f43();
  expect_plan_matches(f43.BT, 6, 6, 16, 2);
}

TEST(CodeletPlan, MatchesNaiveForATandG) {
  const TransformMatrices& f43 = canonical_f43();
  expect_plan_matches(f43.AT, 4, 6, 16, 3);
  expect_plan_matches(f43.G, 6, 3, 16, 4);
}

TEST(CodeletPlan, MatchesNaiveForGeneratedF63) {
  const TransformMatrices& f63 = winograd_transform(6, 3);
  expect_plan_matches(f63.BT, 8, 8, 64, 5);
  expect_plan_matches(f63.AT, 6, 8, 64, 6);
  expect_plan_matches(f63.G, 8, 3, 64, 7);
}

TEST(CodeletPlan, CsePairsSymmetricRows) {
  // B^T(4,3) rows 1&2 and 3&4 are +/- pairs; the planner must find them.
  const TransformMatrices& f43 = canonical_f43();
  const CodeletPlan plan = CodeletPlan::build(f43.BT.data(), 6, 6);
  EXPECT_GE(plan.n_temps(), 4u);  // two pairs -> four temporaries
  EXPECT_LT(plan.mul_count(), plan.naive_mul_count());
  EXPECT_LT(plan.add_count(), plan.naive_add_count());
}

TEST(CodeletPlan, ZeroSkipOnSparseMatrix) {
  // Identity matrix: no muls, no adds — each output is a plain copy.
  const std::vector<double> eye = {1, 0, 0, 0, 1, 0, 0, 0, 1};
  const CodeletPlan plan = CodeletPlan::build(eye.data(), 3, 3);
  EXPECT_EQ(plan.mul_count(), 0u);
  EXPECT_EQ(plan.add_count(), 0u);
  expect_plan_matches(eye, 3, 3, 8, 8);
}

TEST(CodeletPlan, AllZeroRowProducesZeroOutput) {
  const std::vector<double> M = {0, 0, 1, 1};  // row0 zero, row1 = x0+x1
  const CodeletPlan plan = CodeletPlan::build(M.data(), 2, 2);
  std::vector<float> in = {5.0f, 7.0f}, out(2, 99.0f);
  plan.apply(in.data(), 1, out.data(), 1, 1);
  EXPECT_EQ(out[0], 0.0f);
  EXPECT_EQ(out[1], 12.0f);
}

TEST(CodeletPlan, StridedLanesWork) {
  const TransformMatrices& f23 = canonical_f23();
  const std::size_t lanes = 4, in_stride = 10, out_stride = 7;
  const CodeletPlan plan = CodeletPlan::build(f23.BT.data(), 4, 4);
  Rng rng(11);
  std::vector<float> in(4 * in_stride), got(4 * out_stride, 0.0f), want(4 * out_stride, 0.0f);
  for (auto& v : in) v = rng.uniform(-1.0f, 1.0f);
  plan.apply(in.data(), in_stride, got.data(), out_stride, lanes);
  naive_apply(f23.BT, 4, 4, in.data(), in_stride, want.data(), out_stride, lanes);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t l = 0; l < lanes; ++l) {
      ASSERT_NEAR(got[i * out_stride + l], want[i * out_stride + l], 1e-5f);
    }
  }
}

TEST(CodeletPlan, LargeLaneCountUsesHeapBuffer) {
  // Lanes large enough that temps exceed the stack buffer.
  const TransformMatrices& f43 = canonical_f43();
  expect_plan_matches(f43.BT, 6, 6, 1024, 13);
}

TEST(CodeletPlan, FlopReductionOnF63) {
  const TransformMatrices& f63 = winograd_transform(6, 3);
  const CodeletPlan plan = CodeletPlan::build(f63.BT.data(), 8, 8);
  const std::size_t naive = plan.naive_mul_count() + plan.naive_add_count();
  const std::size_t opt = plan.mul_count() + plan.add_count();
  EXPECT_LT(opt, naive) << "CSE should reduce total op count on F(6,3)";
}

}  // namespace
}  // namespace lowino

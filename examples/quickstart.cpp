// Quickstart: run one INT8 Winograd convolution with LoWino and compare it
// against the FP32 reference.
//
//   build/examples/quickstart
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "direct/direct_f32.h"
#include "lowino/lowino.h"
#include "quant/quantize.h"

int main() {
  using namespace lowino;

  // 1. Describe the layer: a ResNet-style 3x3 convolution.
  ConvDesc desc;
  desc.batch = 1;
  desc.in_channels = 128;
  desc.out_channels = 128;
  desc.height = desc.width = 28;
  desc.kernel = 3;
  desc.pad = 1;

  // 2. Configure the engine: F(4x4, 3x3) with Winograd-domain quantization.
  LoWinoConfig config;
  config.m = 4;
  LoWinoConvolution conv(desc, config);

  // 3. Make some data (pretend these are real activations and weights).
  Rng rng(42);
  std::vector<float> input(desc.batch * desc.in_channels * desc.height * desc.width);
  std::vector<float> weights(desc.out_channels * desc.in_channels * 9);
  std::vector<float> bias(desc.out_channels);
  for (auto& v : input) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : weights) v = rng.normal() * 0.1f;
  for (auto& v : bias) v = rng.uniform(-0.1f, 0.1f);

  // 4. Post-training quantization: calibrate the Winograd-domain scales on
  //    sample inputs (Eq. 7 of the paper), then transform + pack the filters.
  conv.calibrate(input);
  conv.finalize_calibration();
  conv.set_filters(weights, bias);

  // 5. Run.
  std::vector<float> output(desc.batch * desc.out_channels * desc.out_height() *
                            desc.out_width());
  ThreadPool& pool = ThreadPool::global();
  conv.execute_nchw(input, output, &pool);  // warm-up
  Timer t;
  conv.execute_nchw(input, output, &pool);
  const double ms = t.milliseconds();

  // 6. Compare with the FP32 reference.
  std::vector<float> reference(output.size());
  direct_conv_f32_reference(desc, input, weights, bias, reference);
  const QuantError err = quantization_error(reference, output);

  std::printf("LoWino F(%zux%zu, 3x3) on %s\n", config.m, config.m,
              desc.to_string().c_str());
  std::printf("  time        : %.2f ms (%.1f GFLOPS of direct-conv work)\n", ms,
              2.0 * desc.direct_macs() / (ms / 1e3) / 1e9);
  std::printf("  accuracy    : %.1f dB SNR vs FP32 (max |err| %.4f)\n",
              err.signal_to_noise_db, err.max_abs);
  std::printf("  workspace   : %.1f MiB of INT8/INT32 intermediates\n",
              static_cast<double>(conv.workspace_bytes()) / (1024.0 * 1024.0));
  std::printf("  tile count  : %zu tiles of %zux%zu, T = %zu GEMMs per run\n",
              conv.geometry().total_tiles, conv.geometry().alpha, conv.geometry().alpha,
              conv.geometry().t_elems);
  return 0;
}

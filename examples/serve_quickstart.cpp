// Serving quick-start: the full plan-once / serve-many workflow.
//
//   build/examples/serve_quickstart [plan-path] [requests] [model]
//
//   model: miniresnet (default) | minivgg | minimobilenet
//
//   1. compile an InferenceSession for the chosen zoo model (per-layer
//      engine shoot-out, liveness-planned activation arena);
//   2. save the resulting plan to disk;
//   3. reload the plan into a *fresh* session via PlanOptions::reuse —
//      the deployment path, where plan time already happened elsewhere;
//   4. serve a stream of requests from the reloaded session and check the
//      outputs stay bit-identical to the originally planned session.
//
// Run with LOWINO_PROFILE=1 (and optionally LOWINO_TRACE_JSON=trace.json) to
// get a per-op serving profile; CI drives this binary exactly that way.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "common/timer.h"
#include "nn/model_zoo.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"
#include "serve/session.h"

int main(int argc, char** argv) {
  using namespace lowino;
  const std::string plan_path = argc > 1 ? argv[1] : "serve_plan.txt";
  const int requests = argc > 2 ? std::atoi(argv[2]) : 100;
  const std::string model_name = argc > 3 ? argv[3] : "miniresnet";

  const std::size_t batch = 4, hw = 16;
  Rng rng(7);
  Tensor<float> calib({batch, 1, hw, hw});
  for (std::size_t i = 0; i < calib.size(); ++i)
    calib.data()[i] = rng.uniform(-1.0f, 1.0f);

  SequentialModel model = [&] {
    if (model_name == "miniresnet") return make_miniresnet(hw);
    if (model_name == "minivgg") return make_minivgg(hw);
    if (model_name == "minimobilenet") return make_minimobilenet(hw);
    std::fprintf(stderr, "unknown model '%s' (miniresnet|minivgg|minimobilenet)\n",
                 model_name.c_str());
    std::exit(1);
  }();
  std::printf("model: %s\n", model_name.c_str());

  // --- Plan time -----------------------------------------------------------
  PlanOptions options;
  options.pool = &ThreadPool::global();
  options.seconds_per_candidate = 0.01;
  InferenceSession planned = InferenceSession::compile(model, calib, options);
  std::printf("%s\n", planned.plan().summary().c_str());

  if (!planned.plan().save(plan_path)) {
    std::fprintf(stderr, "failed to write %s\n", plan_path.c_str());
    return 1;
  }
  std::printf("plan saved to %s (%zu convolution choices)\n\n", plan_path.c_str(),
              planned.plan().convs.size());

  // --- Deployment: reload the plan, no measurement at compile time ---------
  const auto reloaded = SessionPlan::load(plan_path);
  if (!reloaded) {
    std::fprintf(stderr, "failed to reload %s\n", plan_path.c_str());
    return 1;
  }
  PlanOptions replay;
  replay.pool = &ThreadPool::global();
  replay.reuse = &*reloaded;
  InferenceSession serving = InferenceSession::compile(model, calib, replay);

  // --- Serve ---------------------------------------------------------------
  Tensor<float> request({batch, 1, hw, hw});
  Tensor<float> out, expected;
  Timer wall;
  for (int r = 0; r < requests; ++r) {
    for (std::size_t i = 0; i < request.size(); ++i)
      request.data()[i] = rng.uniform(-1.0f, 1.0f);
    serving.run(request, out);
    planned.run(request, expected);
    if (std::memcmp(out.data(), expected.data(), out.size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "request %d: reloaded plan diverged from planned session\n", r);
      return 1;
    }
  }
  const double ms = wall.milliseconds();
  std::printf("served %d requests (batch %zu) in %.1f ms — %.2f ms/request, "
              "all bit-identical to the planning session\n",
              requests, batch, ms, ms / requests);

  if (profiler_enabled()) {
    std::printf("\n%s\n", profiler_summary().c_str());
  }
  return 0;
}

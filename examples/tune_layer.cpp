// Auto-tuning scenario (Section 4.3.4): search the blocking space for one
// convolutional layer, persist the winner to a wisdom file, and show the
// speedup over the default configuration.
//
//   build/examples/tune_layer [C] [K] [HW] [batch]
#include <cstdio>
#include <cstdlib>

#include "parallel/thread_pool.h"
#include "tuning/tuner.h"
#include "tuning/wisdom.h"

int main(int argc, char** argv) {
  using namespace lowino;
  ConvDesc desc;
  desc.in_channels = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
  desc.out_channels = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 256;
  desc.height = desc.width = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 28;
  desc.batch = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 8;
  desc.kernel = 3;
  desc.pad = 1;

  std::printf("Tuning the F(4x4,3x3) batched GEMM for %s ...\n", desc.to_string().c_str());
  TuneOptions options;
  options.seconds_per_candidate = 0.05;
  const TuneResult result = tune_layer(desc, 4, &ThreadPool::global(), options);

  std::printf("  candidates evaluated : %zu\n", result.evaluated);
  std::printf("  default blocking     : %.3f ms\n", result.default_seconds * 1e3);
  std::printf("  best blocking        : %.3f ms  (%s)\n", result.best_seconds * 1e3,
              result.best.to_string().c_str());
  std::printf("  speedup              : %.2fx\n",
              result.default_seconds / result.best_seconds);
  std::printf("  execution mode       : %s wins (staged %.3f ms, fused %.3f ms)\n",
              execution_mode_name(result.best_mode), result.staged_seconds * 1e3,
              result.fused_seconds * 1e3);
  const StageTimes& st = result.best_mode == ExecutionMode::kFused ? result.fused_stages
                                                                   : result.staged_stages;
  std::printf("  winner's stage split : transform %.3f ms, GEMM %.3f ms, output %.3f ms\n",
              st.input_transform * 1e3, st.gemm * 1e3, st.output_transform * 1e3);

  // Persist to the wisdom file like a deployment would — the full v3 entry,
  // including the shoot-out timings and the winner's per-stage breakdown.
  const char* path = "lowino_wisdom.txt";
  WisdomStore store;
  if (auto existing = WisdomStore::load(path)) store = *existing;
  WisdomEntry entry;
  entry.blocking = result.best;
  entry.mode = result.best_mode;
  entry.staged_seconds = result.staged_seconds;
  entry.fused_seconds = result.fused_seconds;
  entry.stages = st;
  store.put(wisdom_key(desc, 4), entry);
  store.save(path);
  std::printf("  saved to %s (%zu entries); inference loads this ahead of time\n", path,
              store.size());

  // Demonstrate the load path.
  const auto loaded = WisdomStore::load(path);
  if (loaded && loaded->get(wisdom_key(desc, 4))) {
    std::printf("  reload check: OK (%s, mode=%s)\n",
                loaded->get(wisdom_key(desc, 4))->to_string().c_str(),
                execution_mode_name(loaded->get_mode(wisdom_key(desc, 4))));
  }
  return 0;
}

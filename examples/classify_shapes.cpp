// End-to-end scenario: train a small CNN, post-training-quantize it with
// LoWino, and compare FP32 vs INT8 classification accuracy — the full
// deployment pipeline of the paper on the procedural shape dataset.
//
//   build/examples/classify_shapes [fast]
#include <cstdio>
#include <cstring>

#include "nn/model_zoo.h"
#include "nn/train.h"
#include "parallel/thread_pool.h"

int main(int argc, char** argv) {
  using namespace lowino;
  const bool fast = argc > 1 && std::strcmp(argv[1], "fast") == 0;

  const Dataset train_set = make_shape_dataset(fast ? 320 : 960, 1);
  const Dataset calib_set = make_shape_dataset(256, 2);
  const Dataset test_set = make_shape_dataset(320, 3);

  std::printf("Training MiniVGG on the procedural shape dataset (%zu samples)...\n",
              train_set.size());
  SequentialModel model = make_minivgg();
  TrainConfig cfg;
  cfg.epochs = fast ? 3 : 6;
  cfg.batch = 32;
  cfg.verbose = true;
  train_model(model, train_set, cfg);

  const EvalResult fp32 = evaluate_fp32(model, test_set, 32);
  std::printf("\nFP32 test accuracy: %.2f%%\n\n", 100.0 * fp32.accuracy);

  const EngineKind kinds[] = {EngineKind::kInt8Direct, EngineKind::kLoWinoF2,
                              EngineKind::kLoWinoF4, EngineKind::kDownscaleF4};
  for (EngineKind kind : kinds) {
    std::printf("Calibrating + evaluating: %s\n", engine_name(kind));
    calibrate_model(model, calib_set, kind, 256, 32);
    const EvalResult q =
        evaluate_engine(model, test_set, kind, 32, &ThreadPool::global());
    std::printf("  INT8 accuracy %.2f%% (drop %+.2f points)\n\n", 100.0 * q.accuracy,
                100.0 * (q.accuracy - fp32.accuracy));
  }

  std::printf("Per-class names: ");
  for (int c = 0; c < 10; ++c) std::printf("%s ", shape_class_name(c));
  std::printf("\n");
  return 0;
}

// End-to-end scenario: train a small CNN, post-training-quantize it with
// LoWino, and compare FP32 vs INT8 classification accuracy — the full
// deployment pipeline of the paper on the procedural shape dataset.
//
//   build/examples/classify_shapes [fast] [engine ...]
//
// Trailing arguments select the quantized engines to evaluate by token
// ("lowino_f4", "int8-direct", ...); the default set compares LoWino against
// direct INT8 and the down-scaling baseline.
#include <cstdio>
#include <cstring>
#include <vector>

#include "nn/model_zoo.h"
#include "nn/train.h"
#include "parallel/thread_pool.h"

int main(int argc, char** argv) {
  using namespace lowino;
  const bool fast = argc > 1 && std::strcmp(argv[1], "fast") == 0;

  std::vector<EngineKind> kinds;
  for (int i = fast ? 2 : 1; i < argc; ++i) {
    const auto kind = engine_kind_from_string(argv[i]);
    if (!kind) {
      std::fprintf(stderr, "unknown engine '%s'; valid tokens:", argv[i]);
      for (EngineKind k : all_engine_kinds()) std::fprintf(stderr, " %s", engine_token(k));
      std::fprintf(stderr, "\n");
      return 1;
    }
    kinds.push_back(*kind);
  }
  if (kinds.empty()) {
    kinds = {EngineKind::kInt8Direct, EngineKind::kLoWinoF2, EngineKind::kLoWinoF4,
             EngineKind::kDownscaleF4};
  }

  const Dataset train_set = make_shape_dataset(fast ? 320 : 960, 1);
  const Dataset calib_set = make_shape_dataset(256, 2);
  const Dataset test_set = make_shape_dataset(320, 3);

  std::printf("Training MiniVGG on the procedural shape dataset (%zu samples)...\n",
              train_set.size());
  SequentialModel model = make_minivgg();
  TrainConfig cfg;
  cfg.epochs = fast ? 3 : 6;
  cfg.batch = 32;
  cfg.verbose = true;
  train_model(model, train_set, cfg);

  const EvalResult fp32 = evaluate_fp32(model, test_set, 32);
  std::printf("\nFP32 test accuracy: %.2f%%\n\n", 100.0 * fp32.accuracy);

  for (EngineKind kind : kinds) {
    std::printf("Calibrating + evaluating: %s\n", engine_name(kind));
    calibrate_model(model, calib_set, kind, 256, 32);
    const EvalResult q =
        evaluate_engine(model, test_set, kind, 32, &ThreadPool::global());
    std::printf("  INT8 accuracy %.2f%% (drop %+.2f points)\n\n", 100.0 * q.accuracy,
                100.0 * (q.accuracy - fp32.accuracy));
  }

  std::printf("Per-class names: ");
  for (int c = 0; c < 10; ++c) std::printf("%s ", shape_class_name(c));
  std::printf("\n");
  return 0;
}

// Engine explorer: run every convolution engine in the repository on one
// layer and print time + accuracy side by side — a compact view of the whole
// design space the paper discusses (Figure 2 approaches, LoWino, FP32).
//
//   build/examples/engine_explorer [C] [K] [HW] [batch] [engine ...]
//
// Trailing arguments select a subset of engines by token ("lowino_f4",
// "int8-direct", ...) or display name; no engine arguments runs them all.
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "direct/direct_f32.h"
#include "nn/engines.h"
#include "parallel/thread_pool.h"
#include "quant/quantize.h"

int main(int argc, char** argv) {
  using namespace lowino;
  ConvDesc desc;
  desc.in_channels = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 128;
  desc.out_channels = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 128;
  desc.height = desc.width = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 28;
  desc.batch = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 4;
  desc.kernel = 3;
  desc.pad = 1;

  Rng rng(7);
  std::vector<float> input(desc.batch * desc.in_channels * desc.height * desc.width);
  std::vector<float> weights(desc.out_channels * desc.in_channels * 9);
  std::vector<float> bias(desc.out_channels);
  for (auto& v : input) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : weights) v = rng.normal() * 0.1f;
  for (auto& v : bias) v = rng.uniform(-0.1f, 0.1f);

  std::vector<float> reference(desc.batch * desc.out_channels * desc.out_height() *
                               desc.out_width());
  direct_conv_f32_reference(desc, input, weights, bias, reference);

  std::printf("Engine comparison on %s\n\n", desc.to_string().c_str());
  std::printf("%-38s %12s %12s\n", "engine", "time (ms)", "SNR (dB)");
  for (int i = 0; i < 64; ++i) std::putchar('-');
  std::putchar('\n');

  std::vector<EngineKind> kinds;
  for (int i = 5; i < argc; ++i) {
    const auto kind = engine_kind_from_string(argv[i]);
    if (!kind) {
      std::fprintf(stderr, "unknown engine '%s'; valid tokens:", argv[i]);
      for (EngineKind k : all_engine_kinds()) std::fprintf(stderr, " %s", engine_token(k));
      std::fprintf(stderr, "\n");
      return 1;
    }
    kinds.push_back(*kind);
  }
  if (kinds.empty()) {
    kinds.assign(all_engine_kinds().begin(), all_engine_kinds().end());
  }
  ThreadPool& pool = ThreadPool::global();
  std::vector<float> output(reference.size());
  for (EngineKind kind : kinds) {
    if (!engine_caps(kind, desc).supports) {
      std::printf("%-38s %25s\n", engine_name(kind), "(shape not supported)");
      continue;
    }
    auto engine = make_conv_engine(kind, desc);
    engine->calibrate(input);
    engine->finalize_calibration();
    engine->set_filters(weights, bias);
    engine->run(input, output, &pool);  // warm-up
    Timer t;
    engine->run(input, output, &pool);
    const double ms = t.milliseconds();
    const double snr = quantization_error(reference, output).signal_to_noise_db;
    std::printf("%-38s %12.2f %12.1f\n", engine_name(kind), ms, snr);
  }
  std::printf("\nHigher SNR = closer to FP32. Note the down-scaling F(4x4) collapse and\n"
              "the up-casting engine's INT16 slowdown — the two failure modes LoWino's\n"
              "Winograd-domain quantization avoids.\n");
  return 0;
}

// Staged vs fused execution-mode comparison on the Table 2 layers.
//
// For every layer: wall time of the staged three-barrier pipeline, wall time
// of the fused streaming path (per-thread L2-resident panels, single parallel
// region), their workspace footprints, and the mode kAuto would pick. Timing
// uses execute_blocked so pack/unpack at the NCHW edges does not dilute the
// pipeline comparison.
//
// Also writes a machine-readable summary to BENCH_fused.json (override the
// path with LOWINO_BENCH_JSON).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "lowino/lowino.h"
#include "nn/model_zoo.h"
#include "tensor/pack.h"

namespace lowino {
namespace {

struct Row {
  std::string name;
  double staged_ms = 0.0;
  double fused_ms = 0.0;
  std::size_t staged_ws = 0;
  std::size_t fused_ws = 0;
  ExecutionMode auto_mode = ExecutionMode::kAuto;
};

double time_mode(const ConvDesc& d, ExecutionMode mode, const bench::LayerData& data,
                 ThreadPool& pool, std::size_t m) {
  LoWinoConfig cfg;
  cfg.m = m;
  cfg.execution_mode = mode;
  LoWinoConvolution conv(d, cfg);
  conv.set_uniform_input_threshold(2.0f);
  conv.set_filters(data.weights, data.bias);
  AlignedBuffer<float> in(conv.input_layout().size());
  AlignedBuffer<float> out(conv.output_layout().size());
  pack_nchw_to_blocked(data.input, d.batch, d.in_channels, d.height, d.width, in.span(),
                       &pool);
  return bench::measure([&] { conv.execute_blocked(in.span(), out.span(), &pool); });
}

int bench_main() {
  ThreadPool& pool = ThreadPool::global();
  const std::size_t m = static_cast<std::size_t>(env_long("LOWINO_BENCH_M", 4));
  const auto layers = paper_layers_table2(bench::batch_override());

  std::printf("Staged vs fused execution mode, F(%zux%zu,3x3), %zu thread(s)\n\n", m, m,
              pool.num_threads());
  std::printf("%-13s | %9s %9s %8s | %11s %11s | %6s\n", "layer", "staged ms", "fused ms",
              "speedup", "staged MB", "fused MB", "auto");
  bench::print_rule(84);

  std::vector<Row> rows;
  for (const auto& layer : layers) {
    const ConvDesc& d = layer.desc;
    const bench::LayerData data = bench::make_layer_data(d, 23);

    Row row;
    row.name = layer.name;
    row.staged_ms = time_mode(d, ExecutionMode::kStaged, data, pool, m) * 1e3;
    row.fused_ms = time_mode(d, ExecutionMode::kFused, data, pool, m) * 1e3;
    {
      LoWinoConfig cfg;
      cfg.m = m;
      LoWinoConvolution conv(d, cfg);
      row.staged_ws = conv.workspace_bytes(ExecutionMode::kStaged, pool.num_threads());
      row.fused_ws = conv.workspace_bytes(ExecutionMode::kFused, pool.num_threads());
      row.auto_mode = conv.resolve_execution_mode(pool.num_threads());
    }
    std::printf("%-13s | %9.3f %9.3f %7.2fx | %11.2f %11.2f | %6s\n", row.name.c_str(),
                row.staged_ms, row.fused_ms, row.staged_ms / row.fused_ms,
                row.staged_ws / 1e6, row.fused_ws / 1e6, execution_mode_name(row.auto_mode));
    std::fflush(stdout);
    rows.push_back(row);
  }

  const std::string json_path = env_string("LOWINO_BENCH_JSON", "BENCH_fused.json");
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"m\": %zu,\n  \"threads\": %zu,\n  \"batch_override\": %zu,\n"
                 "  \"layers\": [\n",
                 m, pool.num_threads(), bench::batch_override());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"staged_ms\": %.4f, \"fused_ms\": %.4f, "
                   "\"speedup\": %.4f, \"staged_workspace_bytes\": %zu, "
                   "\"fused_workspace_bytes\": %zu, \"auto_mode\": \"%s\"}%s\n",
                   r.name.c_str(), r.staged_ms, r.fused_ms, r.staged_ms / r.fused_ms,
                   r.staged_ws, r.fused_ws, execution_mode_name(r.auto_mode),
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace lowino

int main() { return lowino::bench_main(); }

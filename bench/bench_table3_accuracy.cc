// Table 3 reproduction: end-to-end top-1 accuracy of trained CNNs under each
// low-precision convolution scheme.
//
// Substitution (see DESIGN.md): MiniVGG / MiniResNet trained on the
// procedural shape dataset stand in for VGG16 / ResNet-50 on ImageNet. The
// measured quantity is identical in kind: FP32 top-1 vs INT8 top-1 after
// post-training quantization with ~500-sample calibration.
//
// Env: LOWINO_TRAIN_N (default 1280), LOWINO_TEST_N (default 640),
//      LOWINO_EPOCHS (default 8), LOWINO_FAST=1 (quick smoke configuration),
//      LOWINO_BENCH_ENGINES (comma-separated engine tokens, e.g.
//      "lowino_f2,lowino_f4" — default: the full Table 3 engine set).
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "nn/model_zoo.h"
#include "nn/train.h"

namespace lowino {
namespace {

struct EngineRow {
  EngineKind kind;
  const char* group;
};

int bench_main() {
  const bool fast = env_flag("LOWINO_FAST");
  const std::size_t train_n = static_cast<std::size_t>(
      env_long("LOWINO_TRAIN_N", fast ? 320 : 1280));
  const std::size_t test_n =
      static_cast<std::size_t>(env_long("LOWINO_TEST_N", fast ? 160 : 640));
  const std::size_t calib_n = 512;
  const std::size_t batch = 32;
  TrainConfig cfg;
  cfg.epochs = static_cast<std::size_t>(env_long("LOWINO_EPOCHS", fast ? 3 : 8));
  cfg.batch = batch;
  cfg.verbose = env_flag("LOWINO_VERBOSE");

  const Dataset train_set = make_shape_dataset(train_n, 1001);
  const Dataset calib_set = make_shape_dataset(calib_n, 1002);
  const Dataset test_set = make_shape_dataset(test_n, 1003);

  const EngineRow all_engines[] = {
      {EngineKind::kInt8Direct, "Non-Winograd"},
      {EngineKind::kUpcastF2, "F(2x2,3x3)"},
      {EngineKind::kVendorF2, "F(2x2,3x3)"},
      {EngineKind::kDownscaleF2, "F(2x2,3x3)"},
      {EngineKind::kLoWinoF2, "F(2x2,3x3)"},
      {EngineKind::kDownscaleF4, "F(4x4,3x3)"},
      {EngineKind::kLoWinoF4, "F(4x4,3x3)"},
      {EngineKind::kLoWinoF6, "F(6x6,3x3)"},
  };
  // LOWINO_BENCH_ENGINES narrows the sweep ("lowino_f2,lowino_f4"); rows keep
  // the declaration order above. Unknown tokens abort rather than silently
  // benchmark the wrong set.
  std::vector<EngineRow> engines;
  const std::string filter = config_string("LOWINO_BENCH_ENGINES", "");
  if (filter.empty()) {
    engines.assign(std::begin(all_engines), std::end(all_engines));
  } else {
    std::istringstream tokens(filter);
    std::string token;
    std::vector<EngineKind> wanted;
    while (std::getline(tokens, token, ',')) {
      const auto kind = engine_kind_from_string(token);
      if (!kind) {
        std::fprintf(stderr, "LOWINO_BENCH_ENGINES: unknown engine '%s'\n", token.c_str());
        return 1;
      }
      wanted.push_back(*kind);
    }
    for (const EngineRow& row : all_engines) {
      for (EngineKind k : wanted) {
        if (row.kind == k) {
          engines.push_back(row);
          break;
        }
      }
    }
  }

  std::printf("Table 3 reproduction: top-1 accuracy, procedural dataset "
              "(train=%zu test=%zu epochs=%zu)\n\n",
              train_n, test_n, cfg.epochs);

  struct ModelSpec {
    const char* name;
    SequentialModel model;
  };
  ModelSpec models[] = {{"MiniVGG (for VGG16)", make_minivgg()},
                        {"MiniResNet (for ResNet-50)", make_miniresnet()}};

  for (auto& spec : models) {
    std::printf("=== %s ===\n", spec.name);
    const double train_acc = train_model(spec.model, train_set, cfg);
    const EvalResult fp32 = evaluate_fp32(spec.model, test_set, batch);
    std::printf("training accuracy %.2f%%; FP32 test top-1 %.2f%%\n\n", 100.0 * train_acc,
                100.0 * fp32.accuracy);
    std::printf("%-12s %-36s %10s %10s %8s\n", "group", "method", "FP32 (%)", "INT8 (%)",
                "drop");
    bench::print_rule(82);
    for (const EngineRow& row : engines) {
      calibrate_model(spec.model, calib_set, row.kind, calib_n, batch);
      const EvalResult q = evaluate_engine(spec.model, test_set, row.kind, batch);
      std::printf("%-12s %-36s %10.2f %10.2f %+7.2f\n", row.group, engine_name(row.kind),
                  100.0 * fp32.accuracy, 100.0 * q.accuracy,
                  100.0 * (q.accuracy - fp32.accuracy));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Paper shape to verify: LoWino within ~1%% of FP32 at both tile sizes;\n"
              "down-scaling F(4x4) collapses toward chance (10%% here, 0.00%% in the "
              "paper's ImageNet setup).\n");
  return 0;
}

}  // namespace
}  // namespace lowino

int main() { return lowino::bench_main(); }

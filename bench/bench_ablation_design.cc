// Ablation benchmark for the design choices DESIGN.md calls out:
//   A1a  per-position vs per-tensor Winograd-domain input scales (accuracy),
//   A1b  per-channel vs shared filter scales (accuracy),
//   A1c  non-temporal stores on/off (performance),
//   A1d  software prefetch on/off (performance),
//   A1e  auto-tuned vs default blocking (performance, Section 4.3.4).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "direct/direct_f32.h"
#include "lowino/lowino.h"
#include "nn/model_zoo.h"
#include "quant/quantize.h"
#include "tuning/tuner.h"

namespace lowino {
namespace {

struct Variant {
  const char* name;
  LoWinoConfig cfg;
};

int bench_main() {
  ThreadPool& pool = ThreadPool::global();
  const auto all = paper_layers_table2(bench::batch_override());
  const char* wanted[] = {"VGG16_a", "ResNet-50_b"};

  for (const char* name : wanted) {
    const PaperLayer* layer = nullptr;
    for (const auto& l : all) {
      if (l.name == name) layer = &l;
    }
    const ConvDesc& d = layer->desc;
    const bench::LayerData data = bench::make_layer_data(d, 5);
    std::vector<float> ref(d.batch * d.out_channels * d.out_height() * d.out_width());
    direct_conv_f32_reference(d, data.input, data.weights, data.bias, ref, false, &pool);
    std::vector<float> out(ref.size());

    std::printf("=== %s (%s), LoWino F(4x4,3x3) ===\n", name, d.to_string().c_str());
    std::printf("%-34s %10s %10s\n", "variant", "time (ms)", "SNR (dB)");
    bench::print_rule(60);

    LoWinoConfig base;
    base.m = 4;
    Variant variants[] = {
        {"baseline (per-pos, per-chan, nt, pf)", base},
        {"per-tensor input scales", base},
        {"shared filter scale (per-pos only)", base},
        {"no non-temporal stores", base},
        {"no software prefetch", base},
        {"generic codelets (no hand AVX-512)", base},
    };
    variants[1].cfg.input_scales = ScaleGranularity::kPerTensor;
    variants[2].cfg.per_channel_filter_scales = false;
    variants[3].cfg.blocking.nt_store = false;
    variants[4].cfg.blocking.prefetch = false;
    variants[5].cfg.use_hand_codelets = false;

    for (const Variant& v : variants) {
      LoWinoConvolution conv(d, v.cfg);
      conv.calibrate(data.input, /*tile_stride=*/8);
      conv.finalize_calibration();
      conv.set_filters(data.weights, data.bias);
      const double t = bench::measure([&] { conv.execute_nchw(data.input, out, &pool); });
      const double snr = quantization_error(ref, out).signal_to_noise_db;
      std::printf("%-34s %10.2f %10.1f\n", v.name, t * 1e3, snr);
      std::fflush(stdout);
    }

    // A1e: auto-tuned blocking.
    TuneOptions topts;
    topts.seconds_per_candidate = 0.03;
    topts.max_candidates = 24;
    const TuneResult tuned = tune_layer(d, 4, &pool, topts);
    LoWinoConfig tuned_cfg = base;
    tuned_cfg.blocking = tuned.best;
    LoWinoConvolution conv(d, tuned_cfg);
    conv.calibrate(data.input, /*tile_stride=*/8);
    conv.finalize_calibration();
    conv.set_filters(data.weights, data.bias);
    const double t = bench::measure([&] { conv.execute_nchw(data.input, out, &pool); });
    std::printf("%-34s %10.2f %10.1f   [%s; gemm %.2f -> %.2f ms over %zu candidates]\n",
                "auto-tuned blocking", t * 1e3,
                quantization_error(ref, out).signal_to_noise_db,
                tuned.best.to_string().c_str(), tuned.default_seconds * 1e3,
                tuned.best_seconds * 1e3, tuned.evaluated);
    std::printf("\n");
  }
  return 0;
}

}  // namespace
}  // namespace lowino

int main() { return lowino::bench_main(); }

// Transform-stage microbenchmarks (google-benchmark): fused input transform +
// quantize throughput across tile sizes and NT-store settings, output
// transform, and the codelet-plan executor (Section 4.2).
#include <benchmark/benchmark.h>

#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "lowino/input_transform.h"
#include "lowino/output_transform.h"
#include "lowino/scales.h"
#include "lowino/transform_kernels.h"
#include "tensor/pack.h"
#include "winograd/transform.h"

namespace lowino {
namespace {

ConvDesc bench_desc() {
  ConvDesc d;
  d.batch = 1;
  d.in_channels = 256;
  d.out_channels = 256;
  d.height = d.width = 56;
  d.kernel = 3;
  d.pad = 1;
  return d;
}

void BM_InputTransform(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const bool nt = state.range(1) != 0;
  const ConvDesc d = bench_desc();
  const WinogradGeometry geo(d, m);
  const TransformMatrices& tm = winograd_transform(m, 3);
  const CodeletPlan bt = CodeletPlan::build(tm.BT.data(), geo.alpha, geo.alpha);
  const BlockedActLayout in_layout(d.batch, d.in_channels, d.height, d.width);
  const TransformedInputLayout vl(geo.total_tiles, d.padded_in_channels(), geo.t_elems, 48,
                                  d.padded_in_channels());

  Rng rng(1);
  AlignedBuffer<float> in(in_layout.size());
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.uniform(-1, 1);
  AlignedBuffer<std::uint8_t> v(vl.size());
  v.fill_zero();
  WinogradScales scales(geo.t_elems, true, 64, false);
  for (std::size_t t = 0; t < geo.t_elems; ++t) {
    scales.set_input_scale(t, QuantParams::from_threshold(4.0f));
  }
  const InputTransformContext ctx{&d, &geo, &bt, in_layout, vl, nt};
  for (auto _ : state) {
    run_input_transform(ctx, in.span(), scales, v.data());
    benchmark::DoNotOptimize(v.data());
  }
  // Bytes moved: FP32 tile reads + INT8 writes.
  const double bytes =
      static_cast<double>(geo.total_tiles) * geo.t_elems * d.padded_in_channels() * 5.0;
  state.counters["GB/s"] = benchmark::Counter(
      bytes * static_cast<double>(state.iterations()) / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InputTransform)
    ->Args({2, 1})
    ->Args({2, 0})
    ->Args({4, 1})
    ->Args({4, 0})
    ->Args({6, 1});

void BM_OutputTransform(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const ConvDesc d = bench_desc();
  const WinogradGeometry geo(d, m);
  const TransformMatrices& tm = winograd_transform(m, 3);
  const CodeletPlan at = CodeletPlan::build(tm.AT.data(), geo.m, geo.alpha);
  const TransformedOutputLayout zl(d.padded_out_channels(), round_up(geo.total_tiles, 48),
                                   geo.t_elems);
  const BlockedActLayout out_layout(d.batch, d.out_channels, d.out_height(), d.out_width());

  Rng rng(2);
  AlignedBuffer<std::int32_t> z(zl.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    z[i] = static_cast<std::int32_t>(rng.next_below(60000)) - 30000;
  }
  AlignedBuffer<float> out(out_layout.size());
  WinogradScales scales(geo.t_elems, true, d.padded_out_channels(), false);
  for (std::size_t t = 0; t < geo.t_elems; ++t) {
    scales.set_input_scale(t, QuantParams::from_threshold(4.0f));
    scales.set_filter_scale(t, 0, QuantParams::from_threshold(1.0f));
  }
  scales.build_dequant_table();
  const OutputTransformContext ctx{&d, &geo, &at, zl, out_layout, nullptr, false};
  for (auto _ : state) {
    run_output_transform(ctx, z.data(), scales, out.span());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_OutputTransform)->Arg(2)->Arg(4)->Arg(6);

void BM_CodeletPlanVsNaive(benchmark::State& state) {
  // Executor throughput for the F(4,3) B^T plan (CSE enabled by build()).
  const TransformMatrices& tm = canonical_f43();
  const CodeletPlan plan = CodeletPlan::build(tm.BT.data(), 6, 6);
  AlignedBuffer<float> in(6 * 16), out(6 * 16);
  Rng rng(3);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.uniform(-1, 1);
  for (auto _ : state) {
    apply_plan_16(plan, in.data(), 16, out.data(), 16);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_CodeletPlanVsNaive);

void BM_Quantize16(benchmark::State& state) {
  AlignedBuffer<float> src(16);
  AlignedBuffer<std::uint8_t> dst(16);
  Rng rng(4);
  for (int i = 0; i < 16; ++i) src[i] = rng.uniform(-100, 100);
  for (auto _ : state) {
    quantize16_u8(src.data(), 0.5f, dst.data());
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK(BM_Quantize16);

void BM_PackNchwToBlocked(benchmark::State& state) {
  const ConvDesc d = bench_desc();
  const BlockedActLayout layout(d.batch, d.in_channels, d.height, d.width);
  AlignedBuffer<float> src(d.batch * d.in_channels * d.height * d.width);
  AlignedBuffer<float> dst(layout.size());
  Rng rng(5);
  for (std::size_t i = 0; i < src.size(); ++i) src[i] = rng.uniform(-1, 1);
  for (auto _ : state) {
    pack_nchw_to_blocked(src.span(), d.batch, d.in_channels, d.height, d.width, dst.span());
    benchmark::DoNotOptimize(dst.data());
  }
}
BENCHMARK(BM_PackNchwToBlocked);

}  // namespace
}  // namespace lowino

BENCHMARK_MAIN();

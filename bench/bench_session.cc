// Serving-path benchmark: the planned InferenceSession against the
// single-engine forward_engine evaluation path on the model-zoo networks.
//
// forward_engine forces ONE engine kind on every convolution; the session
// plans per layer (wisdom-backed shoot-out across the candidate set, accuracy
// envelope enforced) and serves from a liveness-planned arena. The claim to
// check: the auto-planned session is at least as fast as the best
// single-engine choice, because per-layer selection can only match or beat a
// uniform assignment.
//
// Env: LOWINO_BENCH_BATCH (default 16), LOWINO_BENCH_HW (default 32),
//      LOWINO_BENCH_BUDGET_MS (measurement budget per cell).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "nn/model_zoo.h"
#include "parallel/thread_pool.h"
#include "serve/session.h"

namespace lowino {
namespace {

Tensor<float> random_input(std::size_t batch, std::size_t hw, std::uint64_t seed) {
  Tensor<float> t({batch, 1, hw, hw});
  Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = rng.uniform(-1.0f, 1.0f);
  return t;
}

int bench_main() {
  ThreadPool& pool = ThreadPool::global();
  const std::size_t batch = bench::batch_override();
  const std::size_t hw = static_cast<std::size_t>(env_long("LOWINO_BENCH_HW", 32));
  const Tensor<float> calib = random_input(batch, hw, 42);
  const Tensor<float> input = random_input(batch, hw, 43);

  const EngineKind candidates[] = {EngineKind::kInt8Direct,  EngineKind::kLoWinoF2,
                                   EngineKind::kLoWinoF4,    EngineKind::kLoWinoF6,
                                   EngineKind::kInt8Conv1x1, EngineKind::kInt8Depthwise};

  std::printf("InferenceSession vs forward_engine: batch=%zu hw=%zu, %zu thread(s)\n\n",
              batch, hw, pool.num_threads());

  struct ModelSpec {
    const char* name;
    SequentialModel model;
  };
  ModelSpec models[] = {{"MiniVGG", make_minivgg(hw)},
                        {"MiniResNet", make_miniresnet(hw)},
                        {"MiniMobileNet", make_minimobilenet(hw)}};

  for (auto& spec : models) {
    std::printf("=== %s ===\n", spec.name);
    std::printf("%-36s %12s %10s\n", "path", "median ms", "vs best");
    bench::print_rule(60);

    double best_single = 0.0;
    const char* best_name = nullptr;
    std::vector<std::pair<std::string, double>> rows;
    for (const EngineKind kind : candidates) {
      spec.model.calibrate(calib, kind);
      spec.model.finalize_calibration(kind);
      const double sec =
          bench::measure([&] { spec.model.forward_engine(input, kind, &pool); });
      rows.emplace_back(std::string("forward_engine ") + engine_name(kind), sec);
      if (!best_name || sec < best_single) {
        best_single = sec;
        best_name = engine_name(kind);
      }
    }

    // Two plans: the default accuracy envelope (may reject the fastest
    // engine on noisy layers — the latency cost of accuracy), and a
    // latency-only plan, which is the apples-to-apples comparison against
    // forward_engine (itself unconstrained by any envelope).
    PlanOptions options;
    options.candidates.assign(std::begin(candidates), std::end(candidates));
    options.pool = &pool;
    options.min_snr_db = static_cast<double>(env_long("LOWINO_BENCH_MIN_SNR", 20));
    InferenceSession session = InferenceSession::compile(spec.model, calib, options);
    PlanOptions latency_only = options;
    latency_only.min_snr_db = 0.0;
    InferenceSession fast_session = InferenceSession::compile(spec.model, calib, latency_only);

    // The post-op fusion A/B: the same envelope plan compiled with the
    // LOWINO_FUSE_POSTOPS kill-switch off (element-wise ReLU / add+relu
    // passes stay separate ops, no in-place residual arena reuse).
    std::size_t unfused_arena = 0, unfused_ops = 0;
    double unfused_sec = 0.0;
    {
      ScopedRuntimeOverride off("LOWINO_FUSE_POSTOPS", "0");
      InferenceSession unfused = InferenceSession::compile(spec.model, calib, options);
      Tensor<float> scratch;
      unfused_sec = bench::measure([&] { unfused.run(input, scratch); });
      unfused_arena = unfused.plan().arena_bytes;
      unfused_ops = unfused.op_count();
    }

    // The u8 hand-off A/B: replay the *same* plan (identical engine choices)
    // with the LOWINO_U8_HANDOFF kill-switch off — the dtype tokens are
    // ignored, every inter-layer edge stays FP32, so the only delta is the
    // activation traffic (4x the bytes on the hand-off segments).
    std::size_t f32_arena = 0;
    double f32_sec = 0.0;
    {
      ScopedRuntimeOverride off("LOWINO_U8_HANDOFF", "0");
      PlanOptions replay = options;
      replay.reuse = &session.plan();
      InferenceSession all_f32 = InferenceSession::compile(spec.model, calib, replay);
      Tensor<float> scratch;
      f32_sec = bench::measure([&] { all_f32.run(input, scratch); });
      f32_arena = all_f32.plan().arena_bytes;
    }

    Tensor<float> out;
    const double envelope_sec = bench::measure([&] { session.run(input, out); });
    const double fast_sec = bench::measure([&] { fast_session.run(input, out); });
    char label[64];
    std::snprintf(label, sizeof label, "session (envelope %.0f dB)", options.min_snr_db);
    rows.emplace_back(label, envelope_sec);
    rows.emplace_back("session (post-op fusion OFF)", unfused_sec);
    rows.emplace_back("session (u8 hand-off OFF)", f32_sec);
    rows.emplace_back("session (latency-only plan)", fast_sec);

    for (const auto& [name, sec] : rows) {
      std::printf("%-36s %12.3f %9.2fx\n", name.c_str(), 1e3 * sec, best_single / sec);
    }
    std::printf("\nbest single engine: %s; latency-only session speedup over it: %.2fx\n",
                best_name, best_single / fast_sec);
    std::printf("post-op fusion: ops %zu -> %zu, arena %zu -> %zu bytes (%.0f%%), "
                "fused speedup %.2fx\n",
                unfused_ops, session.op_count(), unfused_arena, session.plan().arena_bytes,
                unfused_arena != 0
                    ? 100.0 * static_cast<double>(session.plan().arena_bytes) /
                          static_cast<double>(unfused_arena)
                    : 0.0,
                envelope_sec != 0.0 ? unfused_sec / envelope_sec : 0.0);
    std::size_t u8_edges = 0;
    for (const SessionPlan::ConvChoice& c : session.plan().convs) {
      u8_edges += (c.in_dtype == DType::kU8) + (c.out_dtype == DType::kU8);
    }
    std::printf("u8 hand-off: %zu conv edge(s), arena %zu -> %zu bytes (%.0f%%), "
                "speedup over all-FP32 %.2fx\n",
                u8_edges, f32_arena, session.plan().arena_bytes,
                f32_arena != 0 ? 100.0 * static_cast<double>(session.plan().arena_bytes) /
                                     static_cast<double>(f32_arena)
                               : 0.0,
                envelope_sec != 0.0 ? f32_sec / envelope_sec : 0.0);
    std::printf("%s\n", session.plan().summary().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace lowino

int main() { return lowino::bench_main(); }

// Figure 8 + Table 2 reproduction: normalized execution time of the 20
// benchmarked convolutional layers across the INT8 engines, the speedup of
// LoWino F(4x4,3x3) over the vendor-style Winograd, and the Section 5.1
// FP32 comparison (1.9x / 2.6x average speedups).
//
// Output columns (per layer, times normalized to INT8 direct = 1.00):
//   int8-direct | vendor-wino-f2 | lowino-f2 | lowino-f4 | speedup(F4/vendor)
// plus FP32 direct / FP32 Winograd reference times and summary rows.
#include <cmath>
#include <cstdio>
#include <vector>

#include "baselines/fp32_wino.h"
#include "baselines/vendor_wino.h"
#include "bench_util.h"
#include "direct/direct_f32.h"
#include "direct/direct_int8.h"
#include "lowino/lowino.h"
#include "nn/model_zoo.h"
#include "quant/quantize.h"

namespace lowino {
namespace {

struct Row {
  std::string name;
  double int8_direct = 0, vendor_f2 = 0, lowino_f2 = 0, lowino_f4 = 0;
  double fp32_direct = 0, fp32_wino = 0;
};

double run_lowino(const ConvDesc& desc, std::size_t m, const bench::LayerData& data,
                  std::vector<float>& out, ThreadPool* pool) {
  LoWinoConfig cfg;
  cfg.m = m;
  LoWinoConvolution conv(desc, cfg);
  conv.calibrate(data.input, /*tile_stride=*/8);
  conv.finalize_calibration();
  conv.set_filters(data.weights, data.bias);
  return bench::measure([&] { conv.execute_nchw(data.input, out, pool); });
}

}  // namespace

int bench_main() {
  ThreadPool& pool = ThreadPool::global();
  const auto layers = paper_layers_table2(bench::batch_override());
  std::printf("LoWino Figure 8 / Table 2 benchmark (threads=%zu, batch override=%zu)\n",
              pool.num_threads(), bench::batch_override());
  std::printf("%-13s | %-42s | %-17s | %s\n", "", "normalized INT8 exec time (direct = 1.00)",
              "FP32 time (ms)", "speedups");
  std::printf("%-13s | %9s %9s %9s %9s | %8s %8s | %9s %9s\n", "layer", "direct",
              "vendorF2", "LoWinoF2", "LoWinoF4", "direct", "winoF2", "F4/vendor",
              "F4/fp32");
  bench::print_rule();

  std::vector<Row> rows;
  for (const auto& layer : layers) {
    const ConvDesc& d = layer.desc;
    const bench::LayerData data = bench::make_layer_data(d, 7);
    std::vector<float> out(d.batch * d.out_channels * d.out_height() * d.out_width());
    Row row;
    row.name = layer.name;

    {
      Int8DirectConv conv(d);
      conv.set_input_threshold(abs_max(data.input));
      conv.set_filters(data.weights, data.bias);
      row.int8_direct = bench::measure([&] { conv.execute_nchw(data.input, out, &pool); });
    }
    {
      VendorWinoF23 conv(d);
      conv.set_input_threshold(abs_max(data.input));
      conv.set_filters(data.weights, data.bias);
      row.vendor_f2 = bench::measure([&] { conv.execute_nchw(data.input, out, &pool); });
    }
    row.lowino_f2 = run_lowino(d, 2, data, out, &pool);
    row.lowino_f4 = run_lowino(d, 4, data, out, &pool);
    {
      Im2colConvF32 conv(d);
      conv.set_filters(data.weights, data.bias);
      row.fp32_direct = bench::measure([&] { conv.execute_nchw(data.input, out, &pool); });
    }
    {
      Fp32WinoConv conv(d, 4);
      conv.set_filters(data.weights, data.bias);
      row.fp32_wino = bench::measure([&] { conv.execute_nchw(data.input, out, &pool); });
    }
    rows.push_back(row);

    const double base = row.int8_direct;
    const double fp32_best = std::min(row.fp32_direct, row.fp32_wino);
    std::printf("%-13s | %9.2f %9.2f %9.2f %9.2f | %8.2f %8.2f | %8.2fx %8.2fx\n",
                row.name.c_str(), 1.0, row.vendor_f2 / base, row.lowino_f2 / base,
                row.lowino_f4 / base, row.fp32_direct * 1e3, row.fp32_wino * 1e3,
                row.vendor_f2 / row.lowino_f4, fp32_best / row.lowino_f4);
    std::fflush(stdout);
  }

  bench::print_rule();
  auto geomean = [&](auto&& f) {
    double s = 0.0;
    for (const Row& r : rows) s += std::log(f(r));
    return std::exp(s / static_cast<double>(rows.size()));
  };
  double max_speedup = 0.0;
  for (const Row& r : rows) max_speedup = std::max(max_speedup, r.vendor_f2 / r.lowino_f4);
  std::printf("LoWino F(4x4) vs vendor Winograd : avg %.2fx, max %.2fx  (paper: 1.26x avg, "
              "2.04x max)\n",
              geomean([](const Row& r) { return r.vendor_f2 / r.lowino_f4; }), max_speedup);
  std::printf("LoWino F(2x2) vs best FP32       : avg %.2fx              (paper: 1.9x)\n",
              geomean([](const Row& r) {
                return std::min(r.fp32_direct, r.fp32_wino) / r.lowino_f2;
              }));
  std::printf("LoWino F(4x4) vs best FP32       : avg %.2fx              (paper: 2.6x)\n",
              geomean([](const Row& r) {
                return std::min(r.fp32_direct, r.fp32_wino) / r.lowino_f4;
              }));
  std::printf("LoWino F(4x4) vs INT8 direct     : avg %.2fx\n",
              geomean([](const Row& r) { return r.int8_direct / r.lowino_f4; }));
  return 0;
}

}  // namespace lowino

int main() { return lowino::bench_main(); }

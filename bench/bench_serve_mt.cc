// Multi-threaded serving benchmark: open- and closed-loop synthetic load
// against the BatchingServer on MiniResNet, sweeping worker counts and
// comparing the two ways to spend W cores:
//
//   serial       1 worker, max_batch=1 — the no-batching baseline
//   partitioned  W workers, each with a 1-thread pool (core partitioning;
//                every worker owns a pre-warmed session sharing one plan)
//   intra-op     1 worker with a W-thread pool (parallelism inside the
//                convolution kernels instead of across requests)
//
// Closed loop saturates the server with back-to-back clients and reports
// capacity (QPS). Open loop replays Poisson arrivals at ~70% of that
// measured capacity and reports the latency distribution an SLO would see.
// Every cell prints one greppable line:
//
//   serve-mt: model=MiniResNet mode=partitioned workers=2 loop=closed \
//       qps=812.4 p50_ms=4.91 p99_ms=9.80 mean_batch=3.96 served=4062
//
// Env: LOWINO_BENCH_SERVE_MS   measurement window per cell (default 500)
//      LOWINO_BENCH_SERVE_MAXW worker-sweep ceiling (default: hardware
//                              concurrency; powers of two up to this)
//      LOWINO_BENCH_HW         input height/width (default 32)
//      LOWINO_BENCH_SERVE_BATCH max batch per worker (default 4)
//      LOWINO_BENCH_SERVE_FAULT engine-execute fault rate in [0,1]; when
//                              > 0 the sweep is replaced by a fault soak
//                              (see run_fault_soak below) whose exit code
//                              is the verdict — non-zero on any violation
//      LOWINO_BENCH_SERVE_SEED fault-soak decision seed (default 42)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/env.h"
#include "common/fault.h"
#include "nn/model_zoo.h"
#include "parallel/thread_pool.h"
#include "serve/server.h"
#include "serve/session.h"

namespace lowino {
namespace {

using Clock = std::chrono::steady_clock;

Tensor<float> random_input(std::size_t hw, std::uint64_t seed) {
  Tensor<float> t({1, 1, hw, hw});
  Rng rng(seed);
  for (std::size_t i = 0; i < t.size(); ++i) t.data()[i] = rng.uniform(-1.0f, 1.0f);
  return t;
}

struct LoadResult {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double mean_batch = 0.0;
  std::uint64_t served = 0;
  std::uint64_t bounced = 0;
};

double percentile_ms(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted_ms.size() - 1));
  return sorted_ms[idx];
}

/// Drive `clients` threads against the server for `seconds`. With
/// `rate_per_client` == 0 each client issues back-to-back requests (closed
/// loop); otherwise each client draws exponential inter-arrival gaps at that
/// rate and sleeps until the scheduled arrival before issuing (open loop —
/// latency includes any backlog the client's previous request left behind).
LoadResult run_load(BatchingServer& server, const Tensor<float>& image,
                    std::size_t clients, double seconds, double rate_per_client) {
  const ServeStats before = server.stats();
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> lat_ms(clients);
  std::vector<std::uint64_t> bounced(clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto t0 = Clock::now();
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(0x5e12f0 + c);
      std::vector<float> out(server.output_elems());
      lat_ms[c].reserve(1 << 16);
      auto next_arrival = Clock::now();
      while (!stop.load(std::memory_order_relaxed)) {
        if (rate_per_client > 0.0) {
          const double gap_s =
              -std::log(1.0 - static_cast<double>(rng.uniform(0.0f, 0.999999f))) /
              rate_per_client;
          next_arrival += std::chrono::nanoseconds(static_cast<std::int64_t>(gap_s * 1e9));
          std::this_thread::sleep_until(next_arrival);
        }
        const auto start = rate_per_client > 0.0 ? next_arrival : Clock::now();
        const ServeResult r = server.serve(image.span(), out);
        const auto end = Clock::now();
        if (r == ServeResult::kOk) {
          lat_ms[c].push_back(
              std::chrono::duration<double, std::milli>(end - start).count());
        } else {
          ++bounced[c];
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();

  LoadResult result;
  std::vector<double> all;
  for (auto& v : lat_ms) all.insert(all.end(), v.begin(), v.end());
  for (auto b : bounced) result.bounced += b;
  std::sort(all.begin(), all.end());
  const ServeStats after = server.stats();
  result.served = after.served - before.served;
  result.qps = static_cast<double>(all.size()) / elapsed;
  result.p50_ms = percentile_ms(all, 0.50);
  result.p99_ms = percentile_ms(all, 0.99);
  const std::uint64_t batches = after.batches - before.batches;
  result.mean_batch =
      batches != 0 ? static_cast<double>(after.batched_requests - before.batched_requests) /
                         static_cast<double>(batches)
                   : 0.0;
  return result;
}

void print_cell(const char* mode, std::size_t workers, const char* loop,
                const LoadResult& r) {
  std::printf(
      "serve-mt: model=MiniResNet mode=%s workers=%zu loop=%s qps=%.1f "
      "p50_ms=%.3f p99_ms=%.3f mean_batch=%.2f served=%llu bounced=%llu\n",
      mode, workers, loop, r.qps, r.p50_ms, r.p99_ms, r.mean_batch,
      static_cast<unsigned long long>(r.served),
      static_cast<unsigned long long>(r.bounced));
}

/// Fault soak: randomized engine-execute faults while concurrent clients
/// hammer a two-worker fleet, with every response checked against a serial
/// batch-1 reference. The verdict is the exit code: 0 iff every response was
/// either bit-exact kOk or a clean failure that left the caller's buffer
/// untouched, the ticket accounting balanced (no lost or duplicated
/// responses), the soak actually injected faults, and the fleet served
/// correct bits again once the faults cleared. One greppable line:
///
///   serve-mt: model=MiniResNet mode=partitioned workers=2 loop=fault-soak \
///       rate=0.0100 injected=37 ok=512 failed=29 bounced=3 wrong=0 \
///       restarts=1 workers_lost=0 verdict=PASS
int run_fault_soak(double rate, std::size_t hw, double window_s,
                   std::size_t max_batch) {
  // Bit-compare against batch-1 serial references: pin the calibration
  // stride (batch-count dependent otherwise), exactly like the differential
  // tests, and force one engine so the serial plan matches the server's.
  ScopedRuntimeOverride calib_stride("LOWINO_CALIB_STRIDE", "1");
  const auto seed = static_cast<std::uint64_t>(env_long("LOWINO_BENCH_SERVE_SEED", 42));
  constexpr std::size_t kInputs = 8, kClients = 8;

  SequentialModel model = make_miniresnet(hw);
  const Tensor<float> calib = random_input(hw, 42);

  ThreadPool pool(1);
  PlanOptions serial_options;
  serial_options.forced_engine = EngineKind::kLoWinoF4;
  serial_options.pool = &pool;
  InferenceSession serial = InferenceSession::compile(model, calib, serial_options);

  std::vector<Tensor<float>> inputs;
  std::vector<std::vector<float>> refs;
  Tensor<float> ref_out;
  for (std::size_t i = 0; i < kInputs; ++i) {
    inputs.push_back(random_input(hw, 4300 + i));
    serial.run(inputs[i], ref_out);
    refs.emplace_back(ref_out.data(), ref_out.data() + ref_out.size());
  }

  ServerOptions o;
  o.max_batch = max_batch;
  o.num_workers = 2;
  o.threads_per_worker = 1;
  o.linger_ns = 200000;
  o.queue_capacity = 64;
  o.plan.forced_engine = EngineKind::kLoWinoF4;
  BatchingServer server(model, calib, o);

  std::atomic<std::uint64_t> ok{0}, failed{0}, bounced{0}, wrong{0};
  std::uint64_t injected = 0;
  {
    ScopedFaultPlan fault_plan;
    fault_plan.fail_rate(FaultSite::kEngineExecute, rate, seed);

    std::atomic<bool> stop{false};
    std::vector<std::thread> clients;
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<float> out(server.output_elems());
        for (std::uint64_t r = 0; !stop.load(std::memory_order_relaxed); ++r) {
          const std::size_t i = (c + r) % kInputs;
          std::fill(out.begin(), out.end(), -1.0f);
          switch (server.serve(inputs[i].span(), out)) {
            case ServeResult::kOk:
              ok.fetch_add(1);
              if (std::memcmp(out.data(), refs[i].data(),
                              out.size() * sizeof(float)) != 0) {
                wrong.fetch_add(1);
              }
              break;
            case ServeResult::kFailed: {
              failed.fetch_add(1);
              bool untouched = true;
              for (const float v : out) untouched = untouched && v == -1.0f;
              if (!untouched) wrong.fetch_add(1);
              break;
            }
            case ServeResult::kWorkerLost:
            case ServeResult::kShutdown:
            case ServeResult::kQueueFull:
              bounced.fetch_add(1);
              break;
            case ServeResult::kExpired:
              wrong.fetch_add(1);  // no SLO was set
              break;
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(window_s));
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : clients) t.join();
    injected = fault_injected_count(FaultSite::kEngineExecute);
    // Quiesce before the plan scope closes: a worker may be mid-rebuild and
    // therefore still inside fault checks.
    server.stop();
  }

  const ServeStats stats = server.stats();
  const ServerHealth mid_health = server.health();

  // Faults cleared: the fleet must resurrect and serve correct bits again.
  bool recovered = false;
  server.start();
  {
    std::vector<float> out(server.output_elems(), -1.0f);
    recovered = server.serve(inputs[0].span(), out) == ServeResult::kOk &&
                std::memcmp(out.data(), refs[0].data(),
                            out.size() * sizeof(float)) == 0 &&
                server.health().workers_live == server.health().workers;
  }
  server.stop();

  const bool pass = wrong.load() == 0 && injected > 0 && ok.load() > 0 &&
                    stats.served == ok.load() && stats.failed == failed.load() &&
                    recovered;
  std::printf(
      "serve-mt: model=MiniResNet mode=partitioned workers=2 loop=fault-soak "
      "rate=%.4f injected=%llu ok=%llu failed=%llu bounced=%llu wrong=%llu "
      "restarts=%llu workers_lost=%llu recovered=%d verdict=%s\n",
      rate, static_cast<unsigned long long>(injected),
      static_cast<unsigned long long>(ok.load()),
      static_cast<unsigned long long>(failed.load()),
      static_cast<unsigned long long>(bounced.load()),
      static_cast<unsigned long long>(wrong.load()),
      static_cast<unsigned long long>(mid_health.restarts),
      static_cast<unsigned long long>(mid_health.workers_lost),
      recovered ? 1 : 0, pass ? "PASS" : "FAIL");
  if (stats.served != ok.load() || stats.failed != failed.load()) {
    std::printf("fault-soak: ticket accounting mismatch: stats.served=%llu "
                "client_ok=%llu stats.failed=%llu client_failed=%llu\n",
                static_cast<unsigned long long>(stats.served),
                static_cast<unsigned long long>(ok.load()),
                static_cast<unsigned long long>(stats.failed),
                static_cast<unsigned long long>(failed.load()));
  }
  return pass ? 0 : 1;
}

int bench_main() {
  const std::size_t hw = static_cast<std::size_t>(env_long("LOWINO_BENCH_HW", 32));
  const double window_s =
      static_cast<double>(env_long("LOWINO_BENCH_SERVE_MS", 500)) / 1000.0;
  const std::size_t max_batch =
      static_cast<std::size_t>(env_long("LOWINO_BENCH_SERVE_BATCH", 4));
  const std::size_t hardware = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t max_workers = static_cast<std::size_t>(
      env_long("LOWINO_BENCH_SERVE_MAXW", static_cast<long>(hardware)));

  // Fault-soak mode replaces the sweep entirely; its verdict is the exit code.
  const std::string fault_rate_str = env_string("LOWINO_BENCH_SERVE_FAULT", "");
  if (!fault_rate_str.empty()) {
    double rate = 0.0;
    try {
      std::size_t used = 0;
      rate = std::stod(fault_rate_str, &used);
      if (used != fault_rate_str.size() || !(rate >= 0.0) || rate > 1.0) {
        std::fprintf(stderr, "bad LOWINO_BENCH_SERVE_FAULT (want rate in [0,1]): %s\n",
                     fault_rate_str.c_str());
        return 2;
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad LOWINO_BENCH_SERVE_FAULT (want rate in [0,1]): %s\n",
                   fault_rate_str.c_str());
      return 2;
    }
    if (rate > 0.0) return run_fault_soak(rate, hw, window_s, max_batch);
  }

  SequentialModel model = make_miniresnet(hw);
  const Tensor<float> calib = random_input(hw, 42);
  const Tensor<float> image = random_input(hw, 43);

  std::printf("BatchingServer load sweep: MiniResNet hw=%zu max_batch=%zu "
              "window=%.0fms cores=%zu\n\n",
              hw, max_batch, 1e3 * window_s, hardware);

  // Serial baseline: no batching, one worker, closed loop with one client.
  double serial_qps = 0.0;
  {
    ServerOptions o;
    o.max_batch = 1;
    o.num_workers = 1;
    o.threads_per_worker = 1;
    BatchingServer server(model, calib, o);
    const LoadResult r = run_load(server, image, /*clients=*/1, window_s, 0.0);
    print_cell("serial", 1, "closed", r);
    serial_qps = r.qps;
    server.stop();
  }

  std::vector<std::size_t> sweep;
  for (std::size_t w = 1; w <= max_workers; w *= 2) sweep.push_back(w);

  struct Mode {
    const char* name;
    bool partitioned;  // workers=W pools of 1 vs 1 pool of W
  };
  const Mode modes[] = {{"partitioned", true}, {"intra-op", false}};

  std::printf("\n%-13s %8s %12s %12s %12s %12s %10s\n", "mode", "workers",
              "closed qps", "vs serial", "open p50ms", "open p99ms", "batch");
  bench::print_rule(86);
  for (const std::size_t w : sweep) {
    for (const Mode& mode : modes) {
      ServerOptions o;
      o.max_batch = max_batch;
      o.num_workers = mode.partitioned ? w : 1;
      o.threads_per_worker = mode.partitioned ? 1 : w;
      o.linger_ns = 500000;  // 0.5 ms
      BatchingServer server(model, calib, o);

      // Capacity first: enough back-to-back clients to keep every worker's
      // batch formation saturated.
      const std::size_t clients = 2 * w * max_batch;
      const LoadResult closed = run_load(server, image, clients, window_s, 0.0);
      print_cell(mode.name, w, "closed", closed);

      // Then the latency distribution at ~70% of that measured capacity.
      const double rate_per_client =
          0.7 * closed.qps / static_cast<double>(clients);
      const LoadResult open =
          run_load(server, image, clients, window_s, rate_per_client);
      print_cell(mode.name, w, "open", open);
      server.stop();

      std::printf("%-13s %8zu %12.1f %11.2fx %12.3f %12.3f %10.2f\n", mode.name,
                  w, closed.qps, serial_qps != 0.0 ? closed.qps / serial_qps : 0.0,
                  open.p50_ms, open.p99_ms, closed.mean_batch);
    }
  }
  std::printf("\nserial baseline: %.1f qps; `vs serial` is closed-loop capacity "
              "relative to it.\n", serial_qps);
  return 0;
}

}  // namespace
}  // namespace lowino

int main() { return lowino::bench_main(); }

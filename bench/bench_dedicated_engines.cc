// Dedicated-engine shoot-out: the specialized INT8 1x1 and depthwise engines
// against the generic alternatives on MobileNet-family layer shapes.
//
// Pointwise rows compare Int8Conv1x1Conv (pure blocked VNNI GEMM, no im2col
// indexing) against Int8DirectConv (implicit im2col) on the SAME quantization
// scheme and GEMM substrate — the speedup column isolates the gather cost.
// Depthwise rows compare Int8DepthwiseConv against the FP32 scalar grouped
// reference (the fallback a session without the dedicated engine would use;
// no GEMM-shaped engine covers groups == C).
//
// Env: LOWINO_BENCH_BATCH (default 16), LOWINO_BENCH_BUDGET_MS.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "direct/direct_1x1.h"
#include "direct/direct_depthwise.h"
#include "direct/direct_int8.h"
#include "parallel/thread_pool.h"
#include "quant/quantize.h"

namespace lowino {
namespace {

ConvDesc make_desc(std::size_t c, std::size_t k, std::size_t hw, std::size_t r,
                   std::size_t stride, std::size_t groups, std::size_t batch) {
  ConvDesc d;
  d.batch = batch;
  d.in_channels = c;
  d.out_channels = k;
  d.height = d.width = hw;
  d.kernel = r;
  d.pad = r / 2;
  d.stride = stride;
  d.groups = groups;
  return d;
}

/// FP32 scalar grouped direct convolution — the engine-less fallback path.
void fp32_grouped_direct(const ConvDesc& d, const bench::LayerData& data,
                         std::vector<float>& out) {
  const std::size_t CG = d.group_in_channels(), KG = d.out_channels / d.groups;
  const std::size_t OH = d.out_height(), OW = d.out_width();
  for (std::size_t b = 0; b < d.batch; ++b) {
    for (std::size_t k = 0; k < d.out_channels; ++k) {
      const std::size_t c0 = (k / KG) * CG;
      for (std::size_t oh = 0; oh < OH; ++oh) {
        for (std::size_t ow = 0; ow < OW; ++ow) {
          float acc = data.bias[k];
          for (std::size_t ci = 0; ci < CG; ++ci) {
            for (std::size_t i = 0; i < d.kernel; ++i) {
              const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh * d.stride + i) -
                                        static_cast<std::ptrdiff_t>(d.pad);
              if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(d.height)) continue;
              for (std::size_t j = 0; j < d.kernel; ++j) {
                const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(ow * d.stride + j) -
                                          static_cast<std::ptrdiff_t>(d.width_pad());
                if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(d.width)) continue;
                acc += data.input[((b * d.in_channels + c0 + ci) * d.height +
                                   static_cast<std::size_t>(ih)) *
                                      d.width +
                                  static_cast<std::size_t>(iw)] *
                       data.weights[((k * CG + ci) * d.kernel + i) * d.kernel + j];
              }
            }
          }
          out[((b * d.out_channels + k) * OH + oh) * OW + ow] = acc;
        }
      }
    }
  }
}

}  // namespace

int bench_main() {
  ThreadPool& pool = ThreadPool::global();
  const std::size_t batch = bench::batch_override();
  std::printf("Dedicated INT8 engines vs generic paths (threads=%zu, batch=%zu)\n\n",
              pool.num_threads(), batch);

  // --- 1x1 pointwise: int8_1x1 vs the generic im2col INT8 direct ----------
  struct Shape {
    const char* name;
    ConvDesc desc;
  };
  const Shape pw[] = {
      {"pw 64->128 /28", make_desc(64, 128, 28, 1, 1, 1, batch)},
      {"pw 128->128 /28", make_desc(128, 128, 28, 1, 1, 1, batch)},
      {"pw 256->256 /14", make_desc(256, 256, 14, 1, 1, 1, batch)},
      {"pw 256->512 /14 s2", make_desc(256, 512, 14, 1, 2, 1, batch)},
      {"pw 512->512 /7", make_desc(512, 512, 7, 1, 1, 1, batch)},
  };
  std::printf("%-20s %12s %12s %9s | %10s\n", "pointwise layer", "direct ms", "1x1 ms",
              "speedup", "1x1 GOPS");
  bench::print_rule(72);
  double pw_geomean = 0.0;
  for (const Shape& s : pw) {
    const ConvDesc& d = s.desc;
    const bench::LayerData data = bench::make_layer_data(d, 11);
    std::vector<float> out(d.batch * d.out_channels * d.out_height() * d.out_width());
    double t_direct, t_1x1;
    {
      Int8DirectConv conv(d);
      conv.set_input_threshold(abs_max(data.input));
      conv.set_filters(data.weights, data.bias);
      t_direct = bench::measure([&] { conv.execute_nchw(data.input, out, &pool); });
    }
    {
      Int8Conv1x1Conv conv(d);
      conv.set_input_threshold(abs_max(data.input));
      conv.set_filters(data.weights, data.bias);
      t_1x1 = bench::measure([&] { conv.execute_nchw(data.input, out, &pool); });
    }
    pw_geomean += std::log(t_direct / t_1x1);
    std::printf("%-20s %12.3f %12.3f %8.2fx | %10.1f\n", s.name, 1e3 * t_direct,
                1e3 * t_1x1, t_direct / t_1x1, bench::direct_gflops(d, t_1x1));
    std::fflush(stdout);
  }
  pw_geomean = std::exp(pw_geomean / (sizeof(pw) / sizeof(pw[0])));
  std::printf("int8_1x1 vs int8-direct geomean speedup: %.2fx\n\n", pw_geomean);

  // --- depthwise: int8_dw vs the FP32 scalar grouped fallback -------------
  const Shape dw[] = {
      {"dw3x3 g=64 /56", make_desc(64, 64, 56, 3, 1, 64, batch)},
      {"dw3x3 g=128 /28", make_desc(128, 128, 28, 3, 1, 128, batch)},
      {"dw3x3 g=256 /14 s2", make_desc(256, 256, 14, 3, 2, 256, batch)},
      {"dw3x3 g=512 /7", make_desc(512, 512, 7, 3, 1, 512, batch)},
  };
  std::printf("%-20s %12s %12s %9s | %10s\n", "depthwise layer", "fp32 ms", "int8_dw ms",
              "speedup", "dw GOPS");
  bench::print_rule(72);
  for (const Shape& s : dw) {
    const ConvDesc& d = s.desc;
    const bench::LayerData data = bench::make_layer_data(d, 13);
    std::vector<float> out(d.batch * d.out_channels * d.out_height() * d.out_width());
    const double t_fp32 = bench::measure([&] { fp32_grouped_direct(d, data, out); });
    double t_dw;
    {
      Int8DepthwiseConv conv(d);
      conv.set_input_threshold(abs_max(data.input));
      conv.set_filters(data.weights, data.bias);
      t_dw = bench::measure([&] { conv.execute_nchw(data.input, out, &pool); });
    }
    std::printf("%-20s %12.3f %12.3f %8.2fx | %10.1f\n", s.name, 1e3 * t_fp32, 1e3 * t_dw,
                t_fp32 / t_dw, bench::direct_gflops(d, t_dw));
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace lowino

int main() { return lowino::bench_main(); }

// Microbenchmarks of the GEMM substrates (google-benchmark).
//
// Verifies the Figure 1 claim: vpdpbusd INT8 delivers ~4x the FP32 MAC
// throughput, and the up-casting INT16 path (vpmaddwd) sits at ~2x — the
// reason the up-casting baseline "degrades the desired acceleration".
#include <benchmark/benchmark.h>

#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "gemm/fp32_gemm.h"
#include "gemm/int16_gemm.h"
#include "gemm/int8_gemm.h"
#include "gemm/vnni_kernels.h"

namespace lowino {
namespace {

void fill_u8(Rng& rng, std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(rng.next_below(256));
}
void fill_s8(Rng& rng, std::int8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::int8_t>(static_cast<int>(rng.next_below(256)) - 128);
  }
}

void BM_Int8GemmVnni(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 256, k = 256;
  Rng rng(1);
  AlignedBuffer<std::uint8_t> a(n * c);
  AlignedBuffer<std::int8_t> b(c * k);
  fill_u8(rng, a.data(), a.size());
  fill_s8(rng, b.data(), b.size());
  AlignedBuffer<std::int8_t> bp((c / 4) * k * 4);
  pack_b_vpdpbusd(b.data(), c, k, bp.data());
  AlignedBuffer<std::int32_t> out(n * k);
  Int8GemmBlocking blk;
  for (auto _ : state) {
    int8_gemm_packed(a.data(), c, bp.data(), nullptr, out.data(), k, n, c, k, blk);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(n * c * k) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Int8GemmVnni)->Arg(96)->Arg(384)->Arg(1536);

void BM_Int16Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 256, k = 256;
  Rng rng(2);
  AlignedBuffer<std::int16_t> a(n * c), b(c * k);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int16_t>(static_cast<int>(rng.next_below(1000)) - 500);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::int16_t>(static_cast<int>(rng.next_below(255)) - 127);
  }
  AlignedBuffer<std::int16_t> bp((c / 2) * k * 2);
  pack_b_vpmaddwd(b.data(), c, k, bp.data());
  AlignedBuffer<std::int32_t> out(n * k);
  for (auto _ : state) {
    int16_gemm_packed(a.data(), c, bp.data(), out.data(), k, n, c, k);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(n * c * k) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Int16Gemm)->Arg(96)->Arg(384);

void BM_Fp32Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t c = 256, k = 256;
  Rng rng(3);
  AlignedBuffer<float> a(n * c), b(c * k), out(n * k);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = rng.uniform(-1, 1);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.uniform(-1, 1);
  for (auto _ : state) {
    fp32_gemm(a.data(), c, b.data(), k, out.data(), k, n, c, k);
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(n * c * k) * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Fp32Gemm)->Arg(96)->Arg(384);

void BM_MicrokernelShapes(benchmark::State& state) {
  const int row_blk = static_cast<int>(state.range(0));
  const int col_blk = static_cast<int>(state.range(1));
  MicroKernelFn fn = get_vnni_microkernel(row_blk, col_blk);
  if (fn == nullptr) {
    state.SkipWithError("combo unavailable on this host");
    return;
  }
  const std::size_t c4 = 128;  // 512 channels
  const std::size_t kcols = static_cast<std::size_t>(col_blk) * 16;
  Rng rng(4);
  AlignedBuffer<std::uint8_t> v(static_cast<std::size_t>(row_blk) * c4 * 4);
  AlignedBuffer<std::int8_t> u(c4 * kcols * 4);
  AlignedBuffer<std::int32_t> acc(static_cast<std::size_t>(row_blk) * kcols);
  fill_u8(rng, v.data(), v.size());
  fill_s8(rng, u.data(), u.size());
  acc.fill_zero();
  MicroKernelArgs args{v.data(), c4 * 4, u.data(), kcols * 4,
                       acc.data(), kcols, c4, nullptr};
  for (auto _ : state) {
    fn(args);
    benchmark::DoNotOptimize(acc.data());
  }
  state.counters["GMAC/s"] = benchmark::Counter(
      static_cast<double>(row_blk) * static_cast<double>(kcols) * static_cast<double>(c4) *
          4.0 * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MicrokernelShapes)
    ->Args({6, 4})
    ->Args({4, 6})
    ->Args({8, 3})
    ->Args({12, 2})
    ->Args({2, 8})
    ->Args({4, 4})
    ->Args({1, 4});

}  // namespace
}  // namespace lowino

BENCHMARK_MAIN();

// Figure 9 reproduction: distribution of the transformed inputs under the
// down-scaling approach vs LoWino for F(4x4, 3x3) on a VGG16_a-shaped layer.
//
// Prints log-scale histograms of the INT8 codes each scheme actually
// produces. The paper's observation: down-scaling squeezes the values into a
// narrow band of the [-128, 127] range (rounding destroys the information),
// while Winograd-domain quantization uses the full range.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/saturate.h"
#include "lowino/input_transform.h"
#include "quant/quantize.h"
#include "tensor/pack.h"
#include "winograd/transform.h"

namespace lowino {
namespace {

void print_histogram(const char* title, const std::vector<std::uint64_t>& counts) {
  std::printf("%s\n", title);
  // 32 buckets of 8 codes each over [-128, 127], log-scale bars.
  double max_log = 0.0;
  std::vector<double> logs(32, 0.0);
  for (int b = 0; b < 32; ++b) {
    std::uint64_t c = 0;
    for (int i = 0; i < 8; ++i) c += counts[b * 8 + i];
    logs[b] = c > 0 ? std::log10(static_cast<double>(c) + 1.0) : 0.0;
    max_log = std::max(max_log, logs[b]);
  }
  for (int b = 0; b < 32; ++b) {
    const int code_lo = b * 8 - 128;
    const int bar = max_log > 0 ? static_cast<int>(48.0 * logs[b] / max_log) : 0;
    std::printf("  [%4d..%4d] %s\n", code_lo, code_lo + 7,
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  std::uint64_t total = 0, used = 0;
  for (std::uint64_t c : counts) {
    total += c;
    used += c > 0 ? 1 : 0;
  }
  std::printf("  distinct INT8 codes in use: %llu / 256 (%llu samples)\n\n",
              static_cast<unsigned long long>(used), static_cast<unsigned long long>(total));
}

int bench_main() {
  // VGG16_a shape, batch 1 (the distribution does not depend on batch).
  ConvDesc d;
  d.batch = 1;
  d.in_channels = 256;
  d.out_channels = 256;
  d.height = d.width = 58;
  d.kernel = 3;
  d.pad = 1;
  const std::size_t m = 4;
  const WinogradGeometry geo(d, m);
  const TransformMatrices& tm = canonical_f43();
  const CodeletPlan bt = CodeletPlan::build(tm.BT.data(), geo.alpha, geo.alpha);

  // Post-ReLU-like activations (the realistic case for conv inputs).
  bench::LayerData data = bench::make_layer_data(d, 99);
  for (auto& v : data.input) v = std::max(0.0f, v);

  const BlockedActLayout in_layout(d.batch, d.in_channels, d.height, d.width);
  AlignedBuffer<float> blocked(in_layout.size());
  const InputTransformContext ctx{&d, &geo, &bt, in_layout, TransformedInputLayout{}, false};

  std::printf("Figure 9 reproduction: transformed-input distributions, F(4x4,3x3), "
              "VGG16_a shape\n\n");

  // --- (a) down-scaling: spatial INT8 -> integer transform -> round(1/100 V)
  const float alpha_d = QuantParams::from_threshold(abs_max(data.input)).scale;
  std::vector<float> grid(data.input.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    grid[i] = static_cast<float>(saturate_cast_i8(data.input[i] * alpha_d)) / alpha_d;
  }
  pack_nchw_to_blocked(grid, d.batch, d.in_channels, d.height, d.width, blocked.span());

  std::vector<std::uint64_t> hist_ds(256, 0);
  AlignedBuffer<float> tile(geo.t_elems * kChanBlock);
  const std::size_t cb_count = d.padded_in_channels() / kChanBlock;
  float v_max = 0.0f;
  for (std::size_t n = 0; n < geo.total_tiles; n += 3) {  // subsample tiles
    for (std::size_t cb = 0; cb < cb_count; ++cb) {
      transform_tile_fp32(ctx, blocked.span(), n, cb, tile.data());
      for (std::size_t i = 0; i < tile.size(); ++i) {
        const float v_int = tile[i] * alpha_d;  // exact integer transform value
        v_max = std::max(v_max, std::abs(v_int));
        const std::int8_t q = saturate_cast_i8(v_int * 0.01f);  // the paper's 1/100
        ++hist_ds[static_cast<std::size_t>(static_cast<int>(q) + 128)];
      }
    }
  }
  std::printf("(a) Down-scaling approach: |BT d' B| reaches %.0f (of +-12700 worst case); "
              "after x1/100 + rounding:\n",
              v_max);
  print_histogram("", hist_ds);

  // --- (b) LoWino: FP32 transform -> per-position Winograd-domain quantization
  pack_nchw_to_blocked(data.input, d.batch, d.in_channels, d.height, d.width,
                       blocked.span());
  // Per-position abs-max scales (calibration would clip slightly harder).
  std::vector<float> amax(geo.t_elems, 0.0f);
  for (std::size_t n = 0; n < geo.total_tiles; n += 3) {
    for (std::size_t cb = 0; cb < cb_count; ++cb) {
      transform_tile_fp32(ctx, blocked.span(), n, cb, tile.data());
      for (std::size_t t = 0; t < geo.t_elems; ++t) {
        for (std::size_t l = 0; l < kChanBlock; ++l) {
          amax[t] = std::max(amax[t], std::abs(tile[t * kChanBlock + l]));
        }
      }
    }
  }
  std::vector<std::uint64_t> hist_lw(256, 0);
  for (std::size_t n = 0; n < geo.total_tiles; n += 3) {
    for (std::size_t cb = 0; cb < cb_count; ++cb) {
      transform_tile_fp32(ctx, blocked.span(), n, cb, tile.data());
      for (std::size_t t = 0; t < geo.t_elems; ++t) {
        const float scale = QuantParams::from_threshold(amax[t]).scale;
        for (std::size_t l = 0; l < kChanBlock; ++l) {
          const std::int8_t q = saturate_cast_i8(tile[t * kChanBlock + l] * scale);
          ++hist_lw[static_cast<std::size_t>(static_cast<int>(q) + 128)];
        }
      }
    }
  }
  std::printf("(b) LoWino: FP32 Winograd-domain values quantized per position:\n");
  print_histogram("", hist_lw);

  std::uint64_t used_ds = 0, used_lw = 0;
  for (int i = 0; i < 256; ++i) {
    used_ds += hist_ds[i] > 0 ? 1 : 0;
    used_lw += hist_lw[i] > 0 ? 1 : 0;
  }
  std::printf("Paper shape to verify: LoWino uses the full [-128,127] range (%llu codes) "
              "while down-scaling collapses to a narrow band (%llu codes).\n",
              static_cast<unsigned long long>(used_lw),
              static_cast<unsigned long long>(used_ds));
  return 0;
}

}  // namespace
}  // namespace lowino

int main() { return lowino::bench_main(); }

// Shared helpers for the benchmark executables.
//
// Environment knobs (all benches):
//   LOWINO_BENCH_BATCH  — batch override for Table 2's batch-64 rows
//                         (default 16; set 64 for paper-faithful runs)
//   LOWINO_NUM_THREADS  — thread pool size (default: hardware concurrency)
//   LOWINO_BENCH_BUDGET — seconds of measurement per (layer, engine) cell
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/rng.h"
#include "common/timer.h"
#include "tensor/conv_desc.h"

namespace lowino::bench {

inline std::size_t batch_override() {
  return static_cast<std::size_t>(env_long("LOWINO_BENCH_BATCH", 16));
}

inline double cell_budget_seconds() {
  return static_cast<double>(env_long("LOWINO_BENCH_BUDGET_MS", 300)) / 1000.0;
}

/// Median seconds of fn() under the shared measurement protocol
/// (1 warmup, >= 2 measured reps, budget-bounded).
template <typename Fn>
double measure(Fn&& fn) {
  return time_it(fn, /*warmup=*/1, /*min_iters=*/2, /*max_iters=*/20, cell_budget_seconds())
      .median;
}

/// Random FP32 problem data for one layer.
struct LayerData {
  std::vector<float> input, weights, bias;
};

inline LayerData make_layer_data(const ConvDesc& desc, std::uint64_t seed) {
  LayerData d;
  Rng rng(seed);
  d.input.resize(desc.batch * desc.in_channels * desc.height * desc.width);
  d.weights.resize(desc.out_channels * desc.group_in_channels() * desc.kernel * desc.kernel);
  d.bias.resize(desc.out_channels);
  for (auto& v : d.input) v = rng.uniform(-1.0f, 1.0f);
  for (auto& v : d.weights) v = rng.normal() * 0.08f;
  for (auto& v : d.bias) v = rng.uniform(-0.1f, 0.1f);
  return d;
}

/// GFLOPS of the direct algorithm at the measured time (2 ops per MAC).
inline double direct_gflops(const ConvDesc& desc, double seconds) {
  return 2.0 * desc.direct_macs() / seconds / 1e9;
}

inline void print_rule(int width = 118) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace lowino::bench

// Figure 10 reproduction: execution-time breakdown (transformation vs matrix
// multiplication) of LoWino F(2x2,3x3) vs the vendor-style fused Winograd on
// VGG16_b, ResNet-50_c, YOLOv3_c and U-Net_b.
//
// Stage times come from the in-situ execution profiler (profile/profiler.h):
// every engine's workers open per-stage spans, so the split is measured
// inside the actual execution — including LoWino's fused mode, whose stage
// boundaries are invisible to wall-clock timing because transform, GEMM and
// output interleave per n-block on every worker. Times are aggregate
// per-thread busy seconds, normalized to the vendor implementation's total
// (= 1.00), like the paper's stacked bars.
#include <cstdio>
#include <functional>
#include <vector>

#include "baselines/vendor_wino.h"
#include "bench_util.h"
#include "lowino/lowino.h"
#include "nn/model_zoo.h"
#include "profile/profiler.h"
#include "quant/quantize.h"

namespace lowino {
namespace {

struct StageSplit {
  double transform = 0.0;  ///< input + output transform busy seconds
  double multiply = 0.0;   ///< INT8 GEMM busy seconds
  double total() const { return transform + multiply; }
};

/// Runs `execute` once warm and once profiled, returning the profiled run's
/// per-stage busy-time split. Resets the profiler so each measurement starts
/// from zero totals.
StageSplit measure(const std::function<void()>& execute) {
  execute();  // warm-up: filter packing, page faults, branch training
  profiler_reset();
  execute();
  const auto totals = profiler_stage_totals();
  const auto seconds = [&](ProfileStage s) {
    return totals[static_cast<std::size_t>(s)].seconds;
  };
  StageSplit split;
  split.transform =
      seconds(ProfileStage::kInputTransform) + seconds(ProfileStage::kOutputTransform);
  split.multiply = seconds(ProfileStage::kGemm);
  return split;
}

int bench_main() {
  ThreadPool& pool = ThreadPool::global();
  const char* wanted[] = {"VGG16_b", "ResNet-50_c", "YOLOv3_c", "U-Net_b"};
  const auto all = paper_layers_table2(bench::batch_override());

  profiler_set_enabled(true);

  std::printf("Figure 10 reproduction: stage breakdown, F(2x2,3x3) INT8 Winograd\n");
  std::printf("(in-situ profiler busy times, normalized to the vendor total)\n\n");
  std::printf("%-13s | %-24s | %-24s | %-24s\n", "", "vendor-style (fused)", "LoWino staged",
              "LoWino fused");
  std::printf("%-13s | %7s %7s %7s | %7s %7s %7s | %7s %7s %7s\n", "layer", "trans",
              "mult", "total", "trans", "mult", "total", "trans", "mult", "total");
  bench::print_rule(96);

  for (const char* name : wanted) {
    const PaperLayer* layer = nullptr;
    for (const auto& l : all) {
      if (l.name == name) layer = &l;
    }
    if (layer == nullptr) continue;
    const ConvDesc& d = layer->desc;
    const bench::LayerData data = bench::make_layer_data(d, 11);
    std::vector<float> out(d.batch * d.out_channels * d.out_height() * d.out_width());

    VendorWinoF23 vendor(d);
    vendor.set_input_threshold(abs_max(data.input));
    vendor.set_filters(data.weights, data.bias);
    const StageSplit v =
        measure([&] { vendor.execute_nchw(data.input, out, &pool); });

    const auto run_mode = [&](ExecutionMode mode) {
      LoWinoConfig cfg;
      cfg.m = 2;
      cfg.execution_mode = mode;
      LoWinoConvolution lowino(d, cfg);
      lowino.calibrate(data.input, /*tile_stride=*/8);
      lowino.finalize_calibration();
      lowino.set_filters(data.weights, data.bias);
      return measure([&] { lowino.execute_nchw(data.input, out, &pool); });
    };
    const StageSplit staged = run_mode(ExecutionMode::kStaged);
    const StageSplit fused = run_mode(ExecutionMode::kFused);

    const double vt = v.total();
    std::printf("%-13s | %7.3f %7.3f %7.3f | %7.3f %7.3f %7.3f | %7.3f %7.3f %7.3f\n",
                name, v.transform / vt, v.multiply / vt, 1.0, staged.transform / vt,
                staged.multiply / vt, staged.total() / vt, fused.transform / vt,
                fused.multiply / vt, fused.total() / vt);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape to verify: LoWino spends *more* on transforms (it reads 4x the\n"
      "bytes: FP32 inputs vs the vendor's INT8) but wins it back in the multiplication\n"
      "stage on layers with large C/K (bigger cache blocks, higher compute/memory\n"
      "ratio). See Section 5.3. The fused columns are this repo's first honest fused\n"
      "split — stage spans are recorded per n-block inside each worker.\n");
  return 0;
}

}  // namespace
}  // namespace lowino

int main() { return lowino::bench_main(); }

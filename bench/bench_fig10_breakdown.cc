// Figure 10 reproduction: execution-time breakdown (transformation vs matrix
// multiplication) of LoWino F(2x2,3x3) vs the vendor-style fused Winograd on
// VGG16_b, ResNet-50_c, YOLOv3_c and U-Net_b.
//
// Values are normalized to the vendor implementation's total (= 1.00), like
// the paper's stacked bars.
#include <cstdio>
#include <vector>

#include "baselines/vendor_wino.h"
#include "bench_util.h"
#include "lowino/lowino.h"
#include "nn/model_zoo.h"
#include "quant/quantize.h"

namespace lowino {
namespace {

int bench_main() {
  ThreadPool& pool = ThreadPool::global();
  const char* wanted[] = {"VGG16_b", "ResNet-50_c", "YOLOv3_c", "U-Net_b"};
  const auto all = paper_layers_table2(bench::batch_override());

  std::printf("Figure 10 reproduction: stage breakdown, F(2x2,3x3) INT8 Winograd\n");
  std::printf("(normalized to the vendor-style implementation's total time)\n\n");
  std::printf("%-13s | %-28s | %-28s\n", "", "vendor-style (oneDNN-like)", "LoWino");
  std::printf("%-13s | %9s %9s %8s | %9s %9s %8s\n", "layer", "transform", "multiply",
              "total", "transform", "multiply", "total");
  bench::print_rule(100);

  for (const char* name : wanted) {
    const PaperLayer* layer = nullptr;
    for (const auto& l : all) {
      if (l.name == name) layer = &l;
    }
    if (layer == nullptr) continue;
    const ConvDesc& d = layer->desc;
    const bench::LayerData data = bench::make_layer_data(d, 11);
    std::vector<float> out(d.batch * d.out_channels * d.out_height() * d.out_width());

    VendorWinoF23 vendor(d);
    vendor.set_input_threshold(abs_max(data.input));
    vendor.set_filters(data.weights, data.bias);
    // Warm up, then take the stage times of a representative run.
    vendor.execute_nchw(data.input, out, &pool);
    vendor.execute_nchw(data.input, out, &pool);
    const double v_tr = vendor.stage_times().input_transform;
    const double v_mm = vendor.stage_times().gemm;
    const double v_total = v_tr + v_mm;

    LoWinoConfig cfg;
    cfg.m = 2;
    cfg.collect_stage_times = true;
    LoWinoConvolution lowino(d, cfg);
    lowino.calibrate(data.input, /*tile_stride=*/8);
    lowino.finalize_calibration();
    lowino.set_filters(data.weights, data.bias);
    lowino.execute_nchw(data.input, out, &pool);
    lowino.execute_nchw(data.input, out, &pool);
    const double l_tr =
        lowino.stage_times().input_transform + lowino.stage_times().output_transform;
    const double l_mm = lowino.stage_times().gemm;

    std::printf("%-13s | %9.3f %9.3f %8.3f | %9.3f %9.3f %8.3f\n", name, v_tr / v_total,
                v_mm / v_total, 1.0, l_tr / v_total, l_mm / v_total,
                (l_tr + l_mm) / v_total);
    std::fflush(stdout);
  }
  std::printf(
      "\nPaper shape to verify: LoWino spends *more* on transforms (it reads 4x the\n"
      "bytes: FP32 inputs vs the vendor's INT8) but wins it back in the multiplication\n"
      "stage on layers with large C/K (bigger cache blocks, higher compute/memory\n"
      "ratio). See Section 5.3.\n");
  return 0;
}

}  // namespace
}  // namespace lowino

int main() { return lowino::bench_main(); }

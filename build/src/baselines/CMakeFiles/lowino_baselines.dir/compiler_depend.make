# Empty compiler generated dependencies file for lowino_baselines.
# This may be replaced when dependencies are built.

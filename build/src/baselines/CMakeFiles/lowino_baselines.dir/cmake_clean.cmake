file(REMOVE_RECURSE
  "CMakeFiles/lowino_baselines.dir/downscale_wino.cc.o"
  "CMakeFiles/lowino_baselines.dir/downscale_wino.cc.o.d"
  "CMakeFiles/lowino_baselines.dir/fp32_wino.cc.o"
  "CMakeFiles/lowino_baselines.dir/fp32_wino.cc.o.d"
  "CMakeFiles/lowino_baselines.dir/upcast_wino.cc.o"
  "CMakeFiles/lowino_baselines.dir/upcast_wino.cc.o.d"
  "CMakeFiles/lowino_baselines.dir/vendor_wino.cc.o"
  "CMakeFiles/lowino_baselines.dir/vendor_wino.cc.o.d"
  "CMakeFiles/lowino_baselines.dir/wino_common.cc.o"
  "CMakeFiles/lowino_baselines.dir/wino_common.cc.o.d"
  "liblowino_baselines.a"
  "liblowino_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowino_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

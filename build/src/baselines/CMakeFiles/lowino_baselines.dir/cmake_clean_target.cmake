file(REMOVE_RECURSE
  "liblowino_baselines.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lowino_direct.dir/direct_f32.cc.o"
  "CMakeFiles/lowino_direct.dir/direct_f32.cc.o.d"
  "CMakeFiles/lowino_direct.dir/direct_int8.cc.o"
  "CMakeFiles/lowino_direct.dir/direct_int8.cc.o.d"
  "liblowino_direct.a"
  "liblowino_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowino_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

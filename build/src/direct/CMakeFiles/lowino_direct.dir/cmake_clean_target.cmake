file(REMOVE_RECURSE
  "liblowino_direct.a"
)

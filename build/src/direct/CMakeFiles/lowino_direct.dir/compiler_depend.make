# Empty compiler generated dependencies file for lowino_direct.
# This may be replaced when dependencies are built.

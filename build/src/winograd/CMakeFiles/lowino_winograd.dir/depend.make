# Empty dependencies file for lowino_winograd.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/winograd/codelet_plan.cc" "src/winograd/CMakeFiles/lowino_winograd.dir/codelet_plan.cc.o" "gcc" "src/winograd/CMakeFiles/lowino_winograd.dir/codelet_plan.cc.o.d"
  "/root/repo/src/winograd/transform.cc" "src/winograd/CMakeFiles/lowino_winograd.dir/transform.cc.o" "gcc" "src/winograd/CMakeFiles/lowino_winograd.dir/transform.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lowino_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

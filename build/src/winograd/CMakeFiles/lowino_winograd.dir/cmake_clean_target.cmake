file(REMOVE_RECURSE
  "liblowino_winograd.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lowino_winograd.dir/codelet_plan.cc.o"
  "CMakeFiles/lowino_winograd.dir/codelet_plan.cc.o.d"
  "CMakeFiles/lowino_winograd.dir/transform.cc.o"
  "CMakeFiles/lowino_winograd.dir/transform.cc.o.d"
  "liblowino_winograd.a"
  "liblowino_winograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowino_winograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/lowino_parallel.dir/thread_pool.cc.o"
  "CMakeFiles/lowino_parallel.dir/thread_pool.cc.o.d"
  "liblowino_parallel.a"
  "liblowino_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowino_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

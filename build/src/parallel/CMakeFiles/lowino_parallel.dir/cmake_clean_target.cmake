file(REMOVE_RECURSE
  "liblowino_parallel.a"
)

# Empty dependencies file for lowino_parallel.
# This may be replaced when dependencies are built.

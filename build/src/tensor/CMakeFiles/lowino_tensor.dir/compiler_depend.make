# Empty compiler generated dependencies file for lowino_tensor.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblowino_tensor.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lowino_tensor.dir/pack.cc.o"
  "CMakeFiles/lowino_tensor.dir/pack.cc.o.d"
  "liblowino_tensor.a"
  "liblowino_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowino_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

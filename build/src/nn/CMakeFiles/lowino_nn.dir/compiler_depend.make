# Empty compiler generated dependencies file for lowino_nn.
# This may be replaced when dependencies are built.

# Empty dependencies file for lowino_nn.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "liblowino_nn.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lowino_nn.dir/dataset.cc.o"
  "CMakeFiles/lowino_nn.dir/dataset.cc.o.d"
  "CMakeFiles/lowino_nn.dir/engines.cc.o"
  "CMakeFiles/lowino_nn.dir/engines.cc.o.d"
  "CMakeFiles/lowino_nn.dir/graph.cc.o"
  "CMakeFiles/lowino_nn.dir/graph.cc.o.d"
  "CMakeFiles/lowino_nn.dir/layers.cc.o"
  "CMakeFiles/lowino_nn.dir/layers.cc.o.d"
  "CMakeFiles/lowino_nn.dir/model_zoo.cc.o"
  "CMakeFiles/lowino_nn.dir/model_zoo.cc.o.d"
  "CMakeFiles/lowino_nn.dir/train.cc.o"
  "CMakeFiles/lowino_nn.dir/train.cc.o.d"
  "liblowino_nn.a"
  "liblowino_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowino_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "liblowino_core.a"
)

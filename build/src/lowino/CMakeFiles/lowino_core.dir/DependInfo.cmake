
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lowino/convolution.cc" "src/lowino/CMakeFiles/lowino_core.dir/convolution.cc.o" "gcc" "src/lowino/CMakeFiles/lowino_core.dir/convolution.cc.o.d"
  "/root/repo/src/lowino/filter_pack.cc" "src/lowino/CMakeFiles/lowino_core.dir/filter_pack.cc.o" "gcc" "src/lowino/CMakeFiles/lowino_core.dir/filter_pack.cc.o.d"
  "/root/repo/src/lowino/input_transform.cc" "src/lowino/CMakeFiles/lowino_core.dir/input_transform.cc.o" "gcc" "src/lowino/CMakeFiles/lowino_core.dir/input_transform.cc.o.d"
  "/root/repo/src/lowino/output_transform.cc" "src/lowino/CMakeFiles/lowino_core.dir/output_transform.cc.o" "gcc" "src/lowino/CMakeFiles/lowino_core.dir/output_transform.cc.o.d"
  "/root/repo/src/lowino/scales.cc" "src/lowino/CMakeFiles/lowino_core.dir/scales.cc.o" "gcc" "src/lowino/CMakeFiles/lowino_core.dir/scales.cc.o.d"
  "/root/repo/src/lowino/transform_kernels.cc" "src/lowino/CMakeFiles/lowino_core.dir/transform_kernels.cc.o" "gcc" "src/lowino/CMakeFiles/lowino_core.dir/transform_kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lowino_common.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lowino_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lowino_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/winograd/CMakeFiles/lowino_winograd.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/lowino_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/lowino_gemm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for lowino_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lowino_core.dir/convolution.cc.o"
  "CMakeFiles/lowino_core.dir/convolution.cc.o.d"
  "CMakeFiles/lowino_core.dir/filter_pack.cc.o"
  "CMakeFiles/lowino_core.dir/filter_pack.cc.o.d"
  "CMakeFiles/lowino_core.dir/input_transform.cc.o"
  "CMakeFiles/lowino_core.dir/input_transform.cc.o.d"
  "CMakeFiles/lowino_core.dir/output_transform.cc.o"
  "CMakeFiles/lowino_core.dir/output_transform.cc.o.d"
  "CMakeFiles/lowino_core.dir/scales.cc.o"
  "CMakeFiles/lowino_core.dir/scales.cc.o.d"
  "CMakeFiles/lowino_core.dir/transform_kernels.cc.o"
  "CMakeFiles/lowino_core.dir/transform_kernels.cc.o.d"
  "liblowino_core.a"
  "liblowino_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowino_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

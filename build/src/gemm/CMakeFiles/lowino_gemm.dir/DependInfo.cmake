
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gemm/fp32_gemm.cc" "src/gemm/CMakeFiles/lowino_gemm.dir/fp32_gemm.cc.o" "gcc" "src/gemm/CMakeFiles/lowino_gemm.dir/fp32_gemm.cc.o.d"
  "/root/repo/src/gemm/int16_gemm.cc" "src/gemm/CMakeFiles/lowino_gemm.dir/int16_gemm.cc.o" "gcc" "src/gemm/CMakeFiles/lowino_gemm.dir/int16_gemm.cc.o.d"
  "/root/repo/src/gemm/int8_gemm.cc" "src/gemm/CMakeFiles/lowino_gemm.dir/int8_gemm.cc.o" "gcc" "src/gemm/CMakeFiles/lowino_gemm.dir/int8_gemm.cc.o.d"
  "/root/repo/src/gemm/reference.cc" "src/gemm/CMakeFiles/lowino_gemm.dir/reference.cc.o" "gcc" "src/gemm/CMakeFiles/lowino_gemm.dir/reference.cc.o.d"
  "/root/repo/src/gemm/vnni_kernels.cc" "src/gemm/CMakeFiles/lowino_gemm.dir/vnni_kernels.cc.o" "gcc" "src/gemm/CMakeFiles/lowino_gemm.dir/vnni_kernels.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lowino_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lowino_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lowino_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liblowino_gemm.a"
)

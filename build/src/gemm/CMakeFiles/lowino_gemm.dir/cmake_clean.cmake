file(REMOVE_RECURSE
  "CMakeFiles/lowino_gemm.dir/fp32_gemm.cc.o"
  "CMakeFiles/lowino_gemm.dir/fp32_gemm.cc.o.d"
  "CMakeFiles/lowino_gemm.dir/int16_gemm.cc.o"
  "CMakeFiles/lowino_gemm.dir/int16_gemm.cc.o.d"
  "CMakeFiles/lowino_gemm.dir/int8_gemm.cc.o"
  "CMakeFiles/lowino_gemm.dir/int8_gemm.cc.o.d"
  "CMakeFiles/lowino_gemm.dir/reference.cc.o"
  "CMakeFiles/lowino_gemm.dir/reference.cc.o.d"
  "CMakeFiles/lowino_gemm.dir/vnni_kernels.cc.o"
  "CMakeFiles/lowino_gemm.dir/vnni_kernels.cc.o.d"
  "liblowino_gemm.a"
  "liblowino_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowino_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lowino_gemm.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/calibration.cc" "src/quant/CMakeFiles/lowino_quant.dir/calibration.cc.o" "gcc" "src/quant/CMakeFiles/lowino_quant.dir/calibration.cc.o.d"
  "/root/repo/src/quant/histogram.cc" "src/quant/CMakeFiles/lowino_quant.dir/histogram.cc.o" "gcc" "src/quant/CMakeFiles/lowino_quant.dir/histogram.cc.o.d"
  "/root/repo/src/quant/quantize.cc" "src/quant/CMakeFiles/lowino_quant.dir/quantize.cc.o" "gcc" "src/quant/CMakeFiles/lowino_quant.dir/quantize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lowino_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "liblowino_quant.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lowino_quant.dir/calibration.cc.o"
  "CMakeFiles/lowino_quant.dir/calibration.cc.o.d"
  "CMakeFiles/lowino_quant.dir/histogram.cc.o"
  "CMakeFiles/lowino_quant.dir/histogram.cc.o.d"
  "CMakeFiles/lowino_quant.dir/quantize.cc.o"
  "CMakeFiles/lowino_quant.dir/quantize.cc.o.d"
  "liblowino_quant.a"
  "liblowino_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowino_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lowino_quant.
# This may be replaced when dependencies are built.

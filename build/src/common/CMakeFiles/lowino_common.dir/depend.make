# Empty dependencies file for lowino_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/lowino_common.dir/cpu_features.cc.o"
  "CMakeFiles/lowino_common.dir/cpu_features.cc.o.d"
  "CMakeFiles/lowino_common.dir/env.cc.o"
  "CMakeFiles/lowino_common.dir/env.cc.o.d"
  "liblowino_common.a"
  "liblowino_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowino_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

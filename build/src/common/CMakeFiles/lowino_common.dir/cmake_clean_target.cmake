file(REMOVE_RECURSE
  "liblowino_common.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/lowino_tuning.dir/auto_select.cc.o"
  "CMakeFiles/lowino_tuning.dir/auto_select.cc.o.d"
  "CMakeFiles/lowino_tuning.dir/search_space.cc.o"
  "CMakeFiles/lowino_tuning.dir/search_space.cc.o.d"
  "CMakeFiles/lowino_tuning.dir/tuner.cc.o"
  "CMakeFiles/lowino_tuning.dir/tuner.cc.o.d"
  "CMakeFiles/lowino_tuning.dir/wisdom.cc.o"
  "CMakeFiles/lowino_tuning.dir/wisdom.cc.o.d"
  "liblowino_tuning.a"
  "liblowino_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowino_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

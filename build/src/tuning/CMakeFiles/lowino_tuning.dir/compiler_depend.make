# Empty compiler generated dependencies file for lowino_tuning.
# This may be replaced when dependencies are built.

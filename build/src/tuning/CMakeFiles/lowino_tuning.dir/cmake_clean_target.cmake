file(REMOVE_RECURSE
  "liblowino_tuning.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/test_winograd_transform.dir/test_winograd_transform.cc.o"
  "CMakeFiles/test_winograd_transform.dir/test_winograd_transform.cc.o.d"
  "test_winograd_transform"
  "test_winograd_transform.pdb"
  "test_winograd_transform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_winograd_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

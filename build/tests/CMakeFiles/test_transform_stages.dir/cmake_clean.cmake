file(REMOVE_RECURSE
  "CMakeFiles/test_transform_stages.dir/test_transform_stages.cc.o"
  "CMakeFiles/test_transform_stages.dir/test_transform_stages.cc.o.d"
  "test_transform_stages"
  "test_transform_stages.pdb"
  "test_transform_stages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transform_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_auto_select.dir/test_auto_select.cc.o"
  "CMakeFiles/test_auto_select.dir/test_auto_select.cc.o.d"
  "test_auto_select"
  "test_auto_select.pdb"
  "test_auto_select[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_auto_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

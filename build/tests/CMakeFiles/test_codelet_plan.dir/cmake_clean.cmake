file(REMOVE_RECURSE
  "CMakeFiles/test_codelet_plan.dir/test_codelet_plan.cc.o"
  "CMakeFiles/test_codelet_plan.dir/test_codelet_plan.cc.o.d"
  "test_codelet_plan"
  "test_codelet_plan.pdb"
  "test_codelet_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codelet_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_codelet_plan.
# This may be replaced when dependencies are built.

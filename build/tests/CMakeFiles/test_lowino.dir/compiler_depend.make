# Empty compiler generated dependencies file for test_lowino.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_lowino.dir/test_lowino.cc.o"
  "CMakeFiles/test_lowino.dir/test_lowino.cc.o.d"
  "test_lowino"
  "test_lowino.pdb"
  "test_lowino[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lowino.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

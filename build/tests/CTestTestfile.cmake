# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_winograd_transform[1]_include.cmake")
include("/root/repo/build/tests/test_codelet_plan[1]_include.cmake")
include("/root/repo/build/tests/test_quant[1]_include.cmake")
include("/root/repo/build/tests/test_gemm[1]_include.cmake")
include("/root/repo/build/tests/test_direct[1]_include.cmake")
include("/root/repo/build/tests/test_lowino[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_tuning[1]_include.cmake")
include("/root/repo/build/tests/test_auto_select[1]_include.cmake")
include("/root/repo/build/tests/test_transform_stages[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")

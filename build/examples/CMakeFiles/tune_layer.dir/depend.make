# Empty dependencies file for tune_layer.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tune_layer.dir/tune_layer.cpp.o"
  "CMakeFiles/tune_layer.dir/tune_layer.cpp.o.d"
  "tune_layer"
  "tune_layer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_layer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/classify_shapes.cpp" "examples/CMakeFiles/classify_shapes.dir/classify_shapes.cpp.o" "gcc" "examples/CMakeFiles/classify_shapes.dir/classify_shapes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuning/CMakeFiles/lowino_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/lowino_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/lowino_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/lowino/CMakeFiles/lowino_core.dir/DependInfo.cmake"
  "/root/repo/build/src/winograd/CMakeFiles/lowino_winograd.dir/DependInfo.cmake"
  "/root/repo/build/src/direct/CMakeFiles/lowino_direct.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/lowino_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/gemm/CMakeFiles/lowino_gemm.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/lowino_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lowino_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lowino_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/classify_shapes.dir/classify_shapes.cpp.o"
  "CMakeFiles/classify_shapes.dir/classify_shapes.cpp.o.d"
  "classify_shapes"
  "classify_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for classify_shapes.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_gemm_micro.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_gemm_micro.dir/bench_gemm_micro.cc.o"
  "CMakeFiles/bench_gemm_micro.dir/bench_gemm_micro.cc.o.d"
  "bench_gemm_micro"
  "bench_gemm_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gemm_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_layers.dir/bench_fig8_layers.cc.o"
  "CMakeFiles/bench_fig8_layers.dir/bench_fig8_layers.cc.o.d"
  "bench_fig8_layers"
  "bench_fig8_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

#include "baselines/downscale_wino.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/saturate.h"
#include "gemm/int8_gemm.h"
#include "lowino/input_transform.h"
#include "lowino/output_transform.h"
#include "quant/calibration.h"
#include "tensor/pack.h"

namespace lowino {
namespace {

/// Worst-case 2D amplification of the filter transform G (max abs row sum
/// squared), the analogue of TransformMatrices::input_amplification_2d.
double filter_amplification_2d(const TransformMatrices& tm) {
  double max_row = 0.0;
  for (std::size_t i = 0; i < tm.alpha; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < tm.r; ++j) s += std::abs(tm.g(i, j));
    max_row = std::max(max_row, s);
  }
  return max_row * max_row;
}

}  // namespace

DownscaleWinoConv::DownscaleWinoConv(const ConvDesc& desc, std::size_t m,
                                     const Int8GemmBlocking& blocking)
    : desc_(desc) {
  desc.validate();
  desc.require_ungrouped("DownscaleWinoConv");
  if (desc.stride != 1) throw std::invalid_argument("unit stride only");
  if (!desc.symmetric_padding()) throw std::invalid_argument("symmetric padding only");
  if (desc.kernel < 2) throw std::invalid_argument("Winograd needs r >= 2");
  geo_ = WinogradGeometry(desc_, m);
  if (m == 2 && desc.kernel == 3) {
    tm_ = &canonical_f23();
  } else if (m == 4 && desc.kernel == 3) {
    tm_ = &canonical_f43();
  } else {
    tm_ = &winograd_transform(m, desc.kernel);
  }
  bt_plan_ = CodeletPlan::build(tm_->BT.data(), geo_.alpha, geo_.alpha);
  at_plan_ = CodeletPlan::build(tm_->AT.data(), geo_.m, geo_.alpha);

  const std::size_t c64 = desc_.padded_in_channels();
  const std::size_t k64 = desc_.padded_out_channels();
  blocking_ = adapt_blocking(blocking, c64, k64, geo_.total_tiles);
  v_layout_ = TransformedInputLayout(geo_.total_tiles, c64, geo_.t_elems, blocking_.n_blk,
                                     blocking_.c_blk);
  z_layout_ = TransformedOutputLayout(k64, v_layout_.n_blocks * blocking_.n_blk,
                                      geo_.t_elems);
  in_layout_ = BlockedActLayout(desc_.batch, desc_.in_channels, desc_.height, desc_.width);
  out_layout_ = BlockedActLayout(desc_.batch, desc_.out_channels, desc_.out_height(),
                                 desc_.out_width());

  // Fixed down-scaling factors from the transform-matrix gains (Section 2.3:
  // "alpha = 1/4 and 1/100 for m = 2 and m = 4").
  alpha_v_ = static_cast<float>(1.0 / tm_->input_amplification_2d());
  const double g_gain = filter_amplification_2d(*tm_);
  alpha_u_ = g_gain > 1.0 ? static_cast<float>(1.0 / g_gain) : 1.0f;

  const PackedFilterLayout fl(c64, k64, geo_.t_elems, blocking_.c_blk, blocking_.k_blk);
  scales_ = WinogradScales(geo_.t_elems, /*per_position=*/true, fl.k_blocks * fl.k_blk,
                           /*per_channel_filters=*/true);
}

void DownscaleWinoConv::calibrate(std::span<const float> input_nchw) {
  input_hist_.collect(input_nchw);
}

void DownscaleWinoConv::finalize_calibration() {
  input_scale_ = calibrate_params(input_hist_).scale;
  input_scales_set_ = true;
  maybe_finish_setup();
}

void DownscaleWinoConv::set_input_threshold(float tau) {
  input_scale_ = QuantParams::from_threshold(tau).scale;
  input_scales_set_ = true;
  maybe_finish_setup();
}

void DownscaleWinoConv::set_filters(std::span<const float> weights,
                                    std::span<const float> bias) {
  const std::size_t n = desc_.out_channels * desc_.in_channels * desc_.kernel * desc_.kernel;
  assert(weights.size() >= n);
  weights_fp32_.reset(n);
  std::copy(weights.begin(), weights.begin() + static_cast<std::ptrdiff_t>(n),
            weights_fp32_.data());
  bias_fp32_.reset(desc_.out_channels);
  bias_fp32_.fill_zero();
  if (!bias.empty()) {
    std::copy(bias.begin(), bias.begin() + static_cast<std::ptrdiff_t>(desc_.out_channels),
              bias_fp32_.data());
  }
  filters_set_ = true;
  maybe_finish_setup();
}

void DownscaleWinoConv::maybe_finish_setup() {
  if (!filters_set_ || !input_scales_set_) return;  // re-packs when either updates

  // Spatially quantize the filters per output channel (Figure 2(b): g' = Q(g))
  // and keep the grid values g~ = q / alpha_g.
  const std::size_t K = desc_.out_channels, C = desc_.in_channels, r = desc_.kernel;
  std::vector<float> w_grid(K * C * r * r);
  std::vector<float> w_scale(K);
  for (std::size_t k = 0; k < K; ++k) {
    float amax = 0.0f;
    for (std::size_t i = 0; i < C * r * r; ++i) {
      amax = std::max(amax, std::abs(weights_fp32_[k * C * r * r + i]));
    }
    w_scale[k] = QuantParams::from_threshold(amax).scale;
    for (std::size_t i = 0; i < C * r * r; ++i) {
      const std::int8_t q = saturate_cast_i8(weights_fp32_[k * C * r * r + i] * w_scale[k]);
      w_grid[k * C * r * r + i] = static_cast<float>(q) / w_scale[k];
    }
  }

  // Scales: the transform of grid values is exact, the loss comes from the
  // post-transform rounding with the *fixed* factors alpha_v / alpha_u.
  for (std::size_t t = 0; t < geo_.t_elems; ++t) {
    scales_.set_input_scale(t, QuantParams::from_scale(alpha_v_ * input_scale_));
    for (std::size_t k = 0; k < scales_.k_padded(); ++k) {
      const float ws = k < K ? w_scale[k] : 1.0f;
      scales_.set_filter_scale(t, k, QuantParams::from_scale(alpha_u_ * ws));
    }
  }

  std::vector<float> u_all;
  transform_all_filters(desc_, *tm_, w_grid, u_all);
  quantize_and_pack_transformed(desc_, geo_.t_elems, u_all, scales_, blocking_,
                                std::span<const float>(bias_fp32_.data(), K), filters_);
  scales_.build_dequant_table();
  packed_ = true;
}

void DownscaleWinoConv::execute_nchw(std::span<const float> input, std::span<float> output,
                                     ThreadPool* pool) {
  if (!packed_) throw std::logic_error("DownscaleWinoConv: setup incomplete");
  const std::size_t n = desc_.batch * desc_.in_channels * desc_.height * desc_.width;
  assert(input.size() >= n);

  // Figure 2(b): d' = Q(d) in the spatial domain. We keep the grid values
  // q / alpha_d so the downstream integer transform is exact.
  quantized_input_.ensure(n);
  const float inv = 1.0f / input_scale_;
  for (std::size_t i = 0; i < n; ++i) {
    quantized_input_[i] = static_cast<float>(saturate_cast_i8(input[i] * input_scale_)) * inv;
  }

  in_blocked_.ensure(in_layout_.size());
  out_blocked_.ensure(out_layout_.size());
  pack_nchw_to_blocked(quantized_input_.span(), desc_.batch, desc_.in_channels, desc_.height,
                       desc_.width, in_blocked_.span(), pool);

  if (v_buf_.size() != v_layout_.size()) {
    v_buf_.reset(v_layout_.size());
    v_buf_.fill_zero();
  }
  z_buf_.ensure(z_layout_.size());

  const bool canonical = tm_ == &canonical_f23() || tm_ == &canonical_f43();
  InputTransformContext in_ctx{&desc_,    &geo_,     &bt_plan_,          in_layout_,
                               v_layout_, blocking_.nt_store, canonical};
  run_input_transform(in_ctx, in_blocked_.span(), scales_, v_buf_.data(), pool);
  batched_int8_gemm(v_layout_, v_buf_.data(), filters_.layout, filters_.data.data(),
                    filters_.comp.data(), z_layout_, z_buf_.data(), blocking_, pool);
  OutputTransformContext out_ctx{&desc_,    &geo_,       &at_plan_,
                                 z_layout_, out_layout_, filters_.bias.data(),
                                 false,     nullptr,     canonical};
  run_output_transform(out_ctx, z_buf_.data(), scales_, out_blocked_.span(), pool);

  unpack_blocked_to_nchw(out_blocked_.span(), desc_.batch, desc_.out_channels,
                         desc_.out_height(), desc_.out_width(), output, pool);
}

}  // namespace lowino

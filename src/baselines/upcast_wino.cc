#include "baselines/upcast_wino.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/saturate.h"
#include "gemm/int16_gemm.h"
#include "lowino/input_transform.h"
#include "parallel/thread_pool.h"
#include "quant/calibration.h"
#include "tensor/pack.h"

namespace lowino {
namespace {

/// ncnn-style integer filter transform for F(2,3): 2G is integer
/// ([2,0,0; 1,1,1; 1,-1,1; 0,0,2]), so U16 = (2G) q_g (2G)^T is exact in
/// INT16 and the factor 4 folds into de-quantization.
void transform_filter_int16(const TransformMatrices& tm, const std::int8_t* g,
                            std::int32_t* u) {
  const std::size_t a = tm.alpha, r = tm.r;
  std::vector<std::int32_t> g2(a * r);  // (2G) q_g
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      std::int32_t s = 0;
      for (std::size_t k = 0; k < r; ++k) {
        s += static_cast<std::int32_t>(std::lround(2.0 * tm.g(i, k))) *
             static_cast<std::int32_t>(g[k * r + j]);
      }
      g2[i * r + j] = s;
    }
  }
  for (std::size_t i = 0; i < a; ++i) {
    for (std::size_t j = 0; j < a; ++j) {
      std::int32_t s = 0;
      for (std::size_t k = 0; k < r; ++k) {
        s += g2[i * r + k] * static_cast<std::int32_t>(std::lround(2.0 * tm.g(j, k)));
      }
      u[i * a + j] = s;
    }
  }
}

}  // namespace

UpcastWinoConv::UpcastWinoConv(const ConvDesc& desc) : desc_(desc) {
  desc.validate();
  desc.require_ungrouped("UpcastWinoConv");
  if (desc.stride != 1) throw std::invalid_argument("unit stride only");
  if (!desc.symmetric_padding()) throw std::invalid_argument("symmetric padding only");
  if (desc.kernel != 3) throw std::invalid_argument("UpcastWinoConv: r = 3 only");
  geo_ = WinogradGeometry(desc_, 2);  // F(2x2, 3x3), like ncnn
  tm_ = &canonical_f23();
  bt_plan_ = CodeletPlan::build(tm_->BT.data(), geo_.alpha, geo_.alpha);
  at_plan_ = CodeletPlan::build(tm_->AT.data(), geo_.m, geo_.alpha);
  in_layout_ = BlockedActLayout(desc_.batch, desc_.in_channels, desc_.height, desc_.width);
  out_layout_ = BlockedActLayout(desc_.batch, desc_.out_channels, desc_.out_height(),
                                 desc_.out_width());
}

void UpcastWinoConv::calibrate(std::span<const float> input_nchw) {
  input_hist_.collect(input_nchw);
}

void UpcastWinoConv::finalize_calibration() {
  input_scale_ = calibrate_params(input_hist_).scale;
  input_scales_set_ = true;
  maybe_pack();
}

void UpcastWinoConv::set_input_threshold(float tau) {
  input_scale_ = QuantParams::from_threshold(tau).scale;
  input_scales_set_ = true;
  maybe_pack();
}

void UpcastWinoConv::set_filters(std::span<const float> weights, std::span<const float> bias) {
  const std::size_t n = desc_.out_channels * desc_.in_channels * 9;
  assert(weights.size() >= n);
  weights_fp32_.reset(n);
  std::copy(weights.begin(), weights.begin() + static_cast<std::ptrdiff_t>(n),
            weights_fp32_.data());
  bias_.reset(desc_.padded_out_channels());
  bias_.fill_zero();
  if (!bias.empty()) {
    std::memcpy(bias_.data(), bias.data(), desc_.out_channels * sizeof(float));
  }
  filters_set_ = true;
  maybe_pack();
}

void UpcastWinoConv::maybe_pack() {
  if (!filters_set_ || !input_scales_set_) return;
  const std::size_t C = desc_.in_channels, K = desc_.out_channels;
  const std::size_t c64 = desc_.padded_in_channels();
  const std::size_t k64 = desc_.padded_out_channels();
  const std::size_t t_elems = geo_.t_elems;

  // Spatial per-channel filter quantization.
  std::vector<float> w_scale(K);
  std::vector<std::int8_t> w_q(K * C * 9);
  for (std::size_t k = 0; k < K; ++k) {
    float amax = 0.0f;
    for (std::size_t i = 0; i < C * 9; ++i) {
      amax = std::max(amax, std::abs(weights_fp32_[k * C * 9 + i]));
    }
    w_scale[k] = QuantParams::from_threshold(amax).scale;
    for (std::size_t i = 0; i < C * 9; ++i) {
      w_q[k * C * 9 + i] = saturate_cast_i8(weights_fp32_[k * C * 9 + i] * w_scale[k]);
    }
  }

  // Integer transform to INT16, per-t row-major, then vpmaddwd packing.
  std::vector<std::int16_t> u16(c64 * k64);
  const std::size_t panel = (c64 / 2) * k64 * 2;
  u16_packed_.reset(t_elems * panel);
  std::vector<std::int32_t> u(t_elems);
  for (std::size_t t = 0; t < t_elems; ++t) {
    std::fill(u16.begin(), u16.end(), static_cast<std::int16_t>(0));
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t c = 0; c < C; ++c) {
        transform_filter_int16(*tm_, w_q.data() + (k * C + c) * 9, u.data());
        u16[c * k64 + k] = saturate_i32_to_i16(u[t]);  // |U| <= 9*127, exact
      }
    }
    pack_b_vpmaddwd(u16.data(), c64, k64, u16_packed_.data() + t * panel);
  }

  // De-quantization: input transform gain is exact (integer B^T), filter
  // transform carries the folded (2G)(2G)^T = 4x factor.
  dequant_.reset(k64);
  for (std::size_t k = 0; k < k64; ++k) {
    const float ws = k < K ? w_scale[k] : 1.0f;
    dequant_[k] = 1.0f / (input_scale_ * ws * 4.0f);
  }
  packed_ = true;
}

void UpcastWinoConv::execute_nchw(std::span<const float> input, std::span<float> output,
                                  ThreadPool* pool) {
  if (!packed_) throw std::logic_error("UpcastWinoConv: setup incomplete");
  const std::size_t c64 = desc_.padded_in_channels();
  const std::size_t k64 = desc_.padded_out_channels();
  const std::size_t n_tiles = geo_.total_tiles;
  const std::size_t t_elems = geo_.t_elems;
  const std::size_t n_in = desc_.batch * desc_.in_channels * desc_.height * desc_.width;

  grid_input_.ensure(n_in);
  quantize_to_grid(input.subspan(0, n_in), input_scale_, grid_input_.span());
  in_blocked_.ensure(in_layout_.size());
  out_blocked_.ensure(out_layout_.size());
  pack_nchw_to_blocked(grid_input_.span(), desc_.batch, desc_.in_channels, desc_.height,
                       desc_.width, in_blocked_.span(), pool);
  v16_.ensure(t_elems * n_tiles * c64);
  z_.ensure(t_elems * n_tiles * k64);

  // Input transform: exact integer values scaled back to INT16 codes.
  InputTransformContext ctx{&desc_, &geo_, &bt_plan_, in_layout_, TransformedInputLayout{},
                            false, /*hand_codelets=*/true};  // canonical F(2,3)
  const std::size_t cb_count = c64 / kChanBlock;
  auto transform_worker = [&](std::size_t begin, std::size_t end) {
    AlignedBuffer<float> tile_vals(t_elems * kChanBlock);
    for (std::size_t job = begin; job < end; ++job) {
      const std::size_t tile = job / cb_count;
      const std::size_t cb = job % cb_count;
      transform_tile_fp32(ctx, in_blocked_.span(), tile, cb, tile_vals.data());
      for (std::size_t t = 0; t < t_elems; ++t) {
        std::int16_t* dst = v16_.data() + (t * n_tiles + tile) * c64 + cb * kChanBlock;
        const float* src = tile_vals.data() + t * kChanBlock;
        for (std::size_t l = 0; l < kChanBlock; ++l) {
          // Codes: value * alpha_d, integer by construction, |.| <= 4*127.
          dst[l] = static_cast<std::int16_t>(std::lround(src[l] * input_scale_));
        }
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(n_tiles * cb_count, transform_worker);
  } else {
    transform_worker(0, n_tiles * cb_count);
  }

  const std::size_t panel = (c64 / 2) * k64 * 2;
  for (std::size_t t = 0; t < t_elems; ++t) {
    int16_gemm_packed(v16_.data() + t * n_tiles * c64, c64, u16_packed_.data() + t * panel,
                      z_.data() + t * n_tiles * k64, k64, n_tiles, c64, k64, pool);
  }

  auto out_worker = [&](std::size_t begin, std::size_t end) {
    gather_output_transform_i32(desc_, geo_, at_plan_, z_.data(), n_tiles, k64,
                                dequant_.data(), bias_.data(), out_blocked_.span(), begin,
                                end, 0);
  };
  if (pool != nullptr) {
    pool->parallel_for(n_tiles, out_worker);
  } else {
    out_worker(0, n_tiles);
  }

  unpack_blocked_to_nchw(out_blocked_.span(), desc_.batch, desc_.out_channels,
                         desc_.out_height(), desc_.out_width(), output, pool);
}

}  // namespace lowino

#include "baselines/fp32_wino.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

#include "gemm/fp32_gemm.h"
#include "lowino/filter_pack.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"
#include "tensor/pack.h"

namespace lowino {

Fp32WinoConv::Fp32WinoConv(const ConvDesc& desc, std::size_t m) : desc_(desc) {
  desc.validate();
  desc.require_ungrouped("Fp32WinoConv");
  if (desc.stride != 1) throw std::invalid_argument("unit stride only");
  if (!desc.symmetric_padding()) throw std::invalid_argument("symmetric padding only");
  if (desc.kernel < 2) throw std::invalid_argument("Winograd needs r >= 2");
  geo_ = WinogradGeometry(desc_, m);
  tm_ = (m == 2 && desc.kernel == 3)   ? &canonical_f23()
        : (m == 4 && desc.kernel == 3) ? &canonical_f43()
                                       : &winograd_transform(m, desc.kernel);
  bt_plan_ = CodeletPlan::build(tm_->BT.data(), geo_.alpha, geo_.alpha);
  at_plan_ = CodeletPlan::build(tm_->AT.data(), geo_.m, geo_.alpha);
  in_layout_ = BlockedActLayout(desc_.batch, desc_.in_channels, desc_.height, desc_.width);
  out_layout_ = BlockedActLayout(desc_.batch, desc_.out_channels, desc_.out_height(),
                                 desc_.out_width());
}

void Fp32WinoConv::set_filters(std::span<const float> weights, std::span<const float> bias) {
  transform_all_filters(desc_, *tm_, weights, u_all_);
  bias_.reset(desc_.padded_out_channels());
  bias_.fill_zero();
  if (!bias.empty()) {
    std::memcpy(bias_.data(), bias.data(), desc_.out_channels * sizeof(float));
  }
  filters_set_ = true;
}

void Fp32WinoConv::execute_nchw(std::span<const float> input, std::span<float> output,
                                ThreadPool* pool) {
  if (!filters_set_) throw std::logic_error("Fp32WinoConv: set_filters first");
  const std::size_t c64 = desc_.padded_in_channels();
  const std::size_t k64 = desc_.padded_out_channels();
  const std::size_t n_tiles = geo_.total_tiles;
  const std::size_t t_elems = geo_.t_elems;

  in_blocked_.ensure(in_layout_.size());
  out_blocked_.ensure(out_layout_.size());
  pack_nchw_to_blocked(input, desc_.batch, desc_.in_channels, desc_.height, desc_.width,
                       in_blocked_.span(), pool);
  v_.ensure(t_elems * n_tiles * c64);
  z_.ensure(t_elems * n_tiles * k64);

  // Input transform into the per-t row-major layout [T][N][C64].
  const bool canonical = tm_ == &canonical_f23() || tm_ == &canonical_f43();
  InputTransformContext ctx{&desc_, &geo_, &bt_plan_, in_layout_, TransformedInputLayout{},
                            false, canonical};
  const std::size_t cb_count = c64 / kChanBlock;
  auto transform_worker = [&](std::size_t begin, std::size_t end) {
    ProfileSpan span(ProfileStage::kInputTransform);
    AlignedBuffer<float> tile_vals(t_elems * kChanBlock);
    for (std::size_t job = begin; job < end; ++job) {
      const std::size_t tile = job / cb_count;
      const std::size_t cb = job % cb_count;
      transform_tile_fp32(ctx, in_blocked_.span(), tile, cb, tile_vals.data());
      for (std::size_t t = 0; t < t_elems; ++t) {
        std::memcpy(v_.data() + (t * n_tiles + tile) * c64 + cb * kChanBlock,
                    tile_vals.data() + t * kChanBlock, kChanBlock * sizeof(float));
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(n_tiles * cb_count, transform_worker);
  } else {
    transform_worker(0, n_tiles * cb_count);
  }

  // Batched GEMM: T independent (N x C64) x (C64 x K64) products. Caller-side
  // span (wall time of the multiply phase; the FP32 GEMM has no per-worker
  // instrumentation of its own).
  {
    ProfileSpan span(ProfileStage::kGemm);
    for (std::size_t t = 0; t < t_elems; ++t) {
      fp32_gemm(v_.data() + t * n_tiles * c64, c64, u_all_.data() + t * c64 * k64, k64,
                z_.data() + t * n_tiles * k64, k64, n_tiles, c64, k64, pool);
    }
  }

  // Gather-side output transform.
  auto out_worker = [&](std::size_t begin, std::size_t end) {
    ProfileSpan span(ProfileStage::kOutputTransform);
    gather_output_transform_f32(desc_, geo_, at_plan_, z_.data(), n_tiles, k64, bias_.data(),
                                out_blocked_.span(), begin, end, 0);
  };
  if (pool != nullptr) {
    pool->parallel_for(n_tiles, out_worker);
  } else {
    out_worker(0, n_tiles);
  }

  unpack_blocked_to_nchw(out_blocked_.span(), desc_.batch, desc_.out_channels,
                         desc_.out_height(), desc_.out_width(), output, pool);
}

}  // namespace lowino

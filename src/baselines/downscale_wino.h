// The down-scaling low-precision Winograd baseline (Figure 2(b); oneDNN's
// approach, Section 2.3).
//
// Quantization happens in the *spatial* domain: input and filters are INT8
// before the Winograd transforms. The integer-valued transformed tiles are
// then multiplied by a fixed scaling factor (1/4 for F(2x2,3x3), 1/100 for
// F(4x4,3x3) — the reciprocal of the transform's worst-case 2D amplification)
// and *rounded back* to INT8, which is where the method loses precision: the
// larger the tile, the coarser the post-scaling grid.
//
// Implementation note: this engine shares LoWino's blocked layouts, transform
// codelets and VNNI GEMM — only the quantization scheme differs — so accuracy
// comparisons (Table 3) isolate exactly the algorithmic design choice.
#pragma once

#include <cstdint>
#include <span>

#include "common/aligned_buffer.h"
#include "lowino/convolution.h"
#include "quant/histogram.h"

namespace lowino {

class DownscaleWinoConv {
 public:
  /// `m` in {2, 4} mirrors the paper's evaluation (any generated size works).
  DownscaleWinoConv(const ConvDesc& desc, std::size_t m,
                    const Int8GemmBlocking& blocking = {});

  /// Spatial-domain input calibration (same procedure as INT8 direct conv).
  void calibrate(std::span<const float> input_nchw);
  void finalize_calibration();
  void set_input_threshold(float tau);

  void set_filters(std::span<const float> weights, std::span<const float> bias = {});

  void execute_nchw(std::span<const float> input, std::span<float> output,
                    ThreadPool* pool = nullptr);

  const ConvDesc& desc() const { return desc_; }
  const WinogradGeometry& geometry() const { return geo_; }
  /// The fixed down-scaling factor alpha_V (1/amplification).
  float down_scale_factor() const { return alpha_v_; }

 private:
  void maybe_finish_setup();

  ConvDesc desc_;
  WinogradGeometry geo_;
  const TransformMatrices* tm_ = nullptr;
  CodeletPlan bt_plan_;
  CodeletPlan at_plan_;
  Int8GemmBlocking blocking_;

  TransformedInputLayout v_layout_;
  TransformedOutputLayout z_layout_;
  BlockedActLayout in_layout_;
  BlockedActLayout out_layout_;

  Histogram input_hist_;
  float input_scale_ = 0.0f;  ///< spatial alpha_d
  float alpha_v_ = 1.0f;      ///< Winograd-domain down-scale for inputs
  float alpha_u_ = 1.0f;      ///< Winograd-domain down-scale for filters
  bool input_scales_set_ = false;

  AlignedBuffer<float> weights_fp32_;
  AlignedBuffer<float> bias_fp32_;
  bool filters_set_ = false;

  WinogradScales scales_;
  PackedFilters filters_;
  bool packed_ = false;

  AlignedBuffer<float> quantized_input_;  ///< spatially quantized, NCHW grid values
  AlignedBuffer<float> in_blocked_;
  AlignedBuffer<float> out_blocked_;
  AlignedBuffer<std::uint8_t> v_buf_;
  AlignedBuffer<std::int32_t> z_buf_;
};

}  // namespace lowino

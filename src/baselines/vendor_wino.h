// Fused vendor-style INT8 Winograd F(2x2, 3x3) — the performance stand-in for
// oneDNN's low-precision Winograd convolution (Sections 2.3, 5.3).
//
// Design replicated from the paper's description of oneDNN:
//   * down-scaling quantization (spatial INT8 + fixed post-transform scaling),
//   * the image is processed in *strips* of tiles whose intermediate V / Z
//     buffers stay cache-resident ("divides the input data into several
//     partitions, and for each part it saves all the intermediate data"),
//   * consequently the T GEMMs are small (strip x C x K), trading compute
//     efficiency for memory locality — the exact trade-off Figure 10 analyzes.
#pragma once

#include <cstdint>
#include <span>

#include "baselines/wino_common.h"
#include "common/aligned_buffer.h"
#include "gemm/int8_gemm.h"
#include "lowino/engine_config.h"
#include "quant/histogram.h"
#include "tensor/conv_desc.h"
#include "tensor/layout.h"
#include "winograd/transform.h"

namespace lowino {

class VendorWinoF23 {
 public:
  /// `cache_budget_bytes`: target size of the per-strip intermediates
  /// (default 256 KiB, a typical L2 working-set share).
  explicit VendorWinoF23(const ConvDesc& desc, std::size_t cache_budget_bytes = 256 * 1024);

  void calibrate(std::span<const float> input_nchw);
  void finalize_calibration();
  void set_input_threshold(float tau);
  void set_filters(std::span<const float> weights, std::span<const float> bias = {});

  void execute_nchw(std::span<const float> input, std::span<float> output,
                    ThreadPool* pool = nullptr);

  const ConvDesc& desc() const { return desc_; }
  std::size_t strip_tiles() const { return strip_tiles_; }

  /// Per-stage times of the last run (transform vs multiplication,
  /// Figure 10). Always collected; negligible overhead at strip granularity.
  const StageTimes& stage_times() const { return stage_times_; }

 private:
  void maybe_pack();

  ConvDesc desc_;
  WinogradGeometry geo_;
  const TransformMatrices* tm_ = nullptr;
  CodeletPlan bt_plan_;
  CodeletPlan at_plan_;
  BlockedActLayout in_layout_;
  BlockedActLayout out_layout_;
  std::size_t strip_tiles_ = 1;

  Histogram input_hist_;
  float input_scale_ = 0.0f;
  float alpha_v_ = 0.25f;  ///< F(2,3) down-scale factor 1/4
  float alpha_u_ = 1.0f;
  bool input_scales_set_ = false;

  AlignedBuffer<float> weights_fp32_;
  AlignedBuffer<float> bias_;
  bool filters_set_ = false;
  bool packed_ = false;

  AlignedBuffer<std::int8_t> u_packed_;  ///< [T] x vpdpbusd-packed (C64 x K64)
  AlignedBuffer<std::int32_t> comp_;     ///< [T][K64]
  AlignedBuffer<float> dequant_;         ///< [K64]

  AlignedBuffer<float> grid_input_;
  AlignedBuffer<float> in_blocked_;
  AlignedBuffer<float> out_blocked_;
  StageTimes stage_times_;
};

}  // namespace lowino

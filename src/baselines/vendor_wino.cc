#include "baselines/vendor_wino.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/saturate.h"
#include "common/timer.h"
#include "lowino/filter_pack.h"
#include "lowino/input_transform.h"
#include "lowino/transform_kernels.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"
#include "quant/calibration.h"
#include "tensor/pack.h"

namespace lowino {

VendorWinoF23::VendorWinoF23(const ConvDesc& desc, std::size_t cache_budget_bytes)
    : desc_(desc) {
  desc.validate();
  desc.require_ungrouped("VendorWinoF23");
  if (desc.stride != 1) throw std::invalid_argument("unit stride only");
  if (!desc.symmetric_padding()) throw std::invalid_argument("symmetric padding only");
  if (desc.kernel != 3) throw std::invalid_argument("VendorWinoF23: r = 3 only");
  geo_ = WinogradGeometry(desc_, 2);
  tm_ = &canonical_f23();
  bt_plan_ = CodeletPlan::build(tm_->BT.data(), geo_.alpha, geo_.alpha);
  at_plan_ = CodeletPlan::build(tm_->AT.data(), geo_.m, geo_.alpha);
  in_layout_ = BlockedActLayout(desc_.batch, desc_.in_channels, desc_.height, desc_.width);
  out_layout_ = BlockedActLayout(desc_.batch, desc_.out_channels, desc_.out_height(),
                                 desc_.out_width());
  alpha_v_ = static_cast<float>(1.0 / tm_->input_amplification_2d());  // 1/4

  // Strip size: T * (S*C (uint8 V) + S*K*4 (int32 Z)) <= budget.
  const std::size_t c64 = desc_.padded_in_channels();
  const std::size_t k64 = desc_.padded_out_channels();
  const std::size_t per_tile = geo_.t_elems * (c64 + 4 * k64);
  strip_tiles_ = std::clamp<std::size_t>(cache_budget_bytes / per_tile, 1, geo_.total_tiles);
}

void VendorWinoF23::calibrate(std::span<const float> input_nchw) {
  ProfileSpan span(ProfileStage::kCalibration);
  input_hist_.collect(input_nchw);
}

void VendorWinoF23::finalize_calibration() {
  input_scale_ = calibrate_params(input_hist_).scale;
  input_scales_set_ = true;
  maybe_pack();
}

void VendorWinoF23::set_input_threshold(float tau) {
  input_scale_ = QuantParams::from_threshold(tau).scale;
  input_scales_set_ = true;
  maybe_pack();
}

void VendorWinoF23::set_filters(std::span<const float> weights, std::span<const float> bias) {
  const std::size_t n = desc_.out_channels * desc_.in_channels * 9;
  assert(weights.size() >= n);
  weights_fp32_.reset(n);
  std::copy(weights.begin(), weights.begin() + static_cast<std::ptrdiff_t>(n),
            weights_fp32_.data());
  bias_.reset(desc_.padded_out_channels());
  bias_.fill_zero();
  if (!bias.empty()) {
    std::memcpy(bias_.data(), bias.data(), desc_.out_channels * sizeof(float));
  }
  filters_set_ = true;
  maybe_pack();
}

void VendorWinoF23::maybe_pack() {
  if (!filters_set_ || !input_scales_set_) return;
  ProfileSpan span(ProfileStage::kFilterPack);
  const std::size_t C = desc_.in_channels, K = desc_.out_channels;
  const std::size_t c64 = desc_.padded_in_channels();
  const std::size_t k64 = desc_.padded_out_channels();
  const std::size_t t_elems = geo_.t_elems;

  // Down-scaling filter path (same scheme as DownscaleWinoConv, F(2,3)).
  std::vector<float> w_scale(K);
  std::vector<float> w_grid(K * C * 9);
  for (std::size_t k = 0; k < K; ++k) {
    float amax = 0.0f;
    for (std::size_t i = 0; i < C * 9; ++i) {
      amax = std::max(amax, std::abs(weights_fp32_[k * C * 9 + i]));
    }
    w_scale[k] = QuantParams::from_threshold(amax).scale;
    for (std::size_t i = 0; i < C * 9; ++i) {
      w_grid[k * C * 9 + i] =
          static_cast<float>(saturate_cast_i8(weights_fp32_[k * C * 9 + i] * w_scale[k])) /
          w_scale[k];
    }
  }
  const double g_gain = 2.25;  // (1/2+1/2+1/2)^2, F(2,3) G amplification
  alpha_u_ = static_cast<float>(1.0 / g_gain);

  std::vector<float> u_all;
  transform_all_filters(desc_, *tm_, w_grid, u_all);
  std::vector<std::int8_t> u_q(c64 * k64);
  const std::size_t panel = (c64 / 4) * k64 * 4;
  u_packed_.reset(t_elems * panel);
  comp_.reset(t_elems * k64);
  for (std::size_t t = 0; t < t_elems; ++t) {
    std::fill(u_q.begin(), u_q.end(), static_cast<std::int8_t>(0));
    for (std::size_t c = 0; c < C; ++c) {
      for (std::size_t k = 0; k < K; ++k) {
        u_q[c * k64 + k] =
            saturate_cast_i8(u_all[(t * c64 + c) * k64 + k] * w_scale[k] * alpha_u_);
      }
    }
    pack_b_vpdpbusd(u_q.data(), c64, k64, u_packed_.data() + t * panel);
    compute_compensation(u_q.data(), c64, k64, comp_.data() + t * k64);
  }

  dequant_.reset(k64);
  for (std::size_t k = 0; k < k64; ++k) {
    const float ws = k < K ? w_scale[k] : 1.0f;
    dequant_[k] = 1.0f / (input_scale_ * alpha_v_ * ws * alpha_u_);
  }
  packed_ = true;
}

void VendorWinoF23::execute_nchw(std::span<const float> input, std::span<float> output,
                                 ThreadPool* pool) {
  if (!packed_) throw std::logic_error("VendorWinoF23: setup incomplete");
  const std::size_t c64 = desc_.padded_in_channels();
  const std::size_t k64 = desc_.padded_out_channels();
  const std::size_t n_tiles = geo_.total_tiles;
  const std::size_t t_elems = geo_.t_elems;
  const std::size_t n_in = desc_.batch * desc_.in_channels * desc_.height * desc_.width;
  const std::size_t cb_count = c64 / kChanBlock;
  const float v_scale = alpha_v_ * input_scale_;

  stage_times_ = StageTimes{};

  grid_input_.ensure(n_in);
  quantize_to_grid(input.subspan(0, n_in), input_scale_, grid_input_.span());
  in_blocked_.ensure(in_layout_.size());
  out_blocked_.ensure(out_layout_.size());
  pack_nchw_to_blocked(grid_input_.span(), desc_.batch, desc_.in_channels, desc_.height,
                       desc_.width, in_blocked_.span(), pool);

  InputTransformContext ctx{&desc_, &geo_, &bt_plan_, in_layout_, TransformedInputLayout{},
                            false, /*hand_codelets=*/true};  // canonical F(2,3)
  const std::size_t panel = (c64 / 4) * k64 * 4;
  const std::size_t n_strips = ceil_div(n_tiles, strip_tiles_);

  // Strips are distributed across threads; all intermediates are per-strip
  // (cache-resident), which is the defining property of this design.
  auto worker = [&](std::size_t tid, std::size_t nw) {
    AlignedBuffer<float> tile_vals(t_elems * kChanBlock);
    AlignedBuffer<std::uint8_t> v_strip(t_elems * strip_tiles_ * c64);
    AlignedBuffer<std::int32_t> z_strip(t_elems * strip_tiles_ * k64);
    double transform_s = 0.0, gemm_s = 0.0;
    const Range range = static_partition(n_strips, nw, tid);
    for (std::size_t strip = range.begin; strip < range.end; ++strip) {
      const std::size_t tile0 = strip * strip_tiles_;
      const std::size_t tile1 = std::min(n_tiles, tile0 + strip_tiles_);
      const std::size_t rows = tile1 - tile0;

      Timer t0;
      {
        ProfileSpan span(ProfileStage::kInputTransform);
        for (std::size_t tile = tile0; tile < tile1; ++tile) {
          for (std::size_t cb = 0; cb < cb_count; ++cb) {
            transform_tile_fp32(ctx, in_blocked_.span(), tile, cb, tile_vals.data());
            for (std::size_t t = 0; t < t_elems; ++t) {
              std::uint8_t* dst = v_strip.data() +
                                  (t * strip_tiles_ + (tile - tile0)) * c64 + cb * kChanBlock;
              for (std::size_t g = 0; g < kPhi; ++g) {
                quantize16_u8(tile_vals.data() + t * kChanBlock + g * 16, v_scale,
                              dst + g * 16);
              }
            }
          }
        }
      }
      transform_s += t0.seconds();

      Timer t1;
      {
        ProfileSpan span(ProfileStage::kGemm);
        for (std::size_t t = 0; t < t_elems; ++t) {
          int8_gemm_packed(v_strip.data() + t * strip_tiles_ * c64, c64,
                           u_packed_.data() + t * panel, comp_.data() + t * k64,
                           z_strip.data() + t * strip_tiles_ * k64, k64, rows, c64, k64,
                           Int8GemmBlocking{});
        }
      }
      gemm_s += t1.seconds();

      Timer t2;
      {
        ProfileSpan span(ProfileStage::kOutputTransform);
        gather_output_transform_i32(desc_, geo_, at_plan_, z_strip.data(), strip_tiles_, k64,
                                    dequant_.data(), bias_.data(), out_blocked_.span(),
                                    tile0, tile1, tile0);
      }
      transform_s += t2.seconds();
    }
    if (tid == 0) {
      stage_times_.input_transform = transform_s;  // transform stages combined
      stage_times_.gemm = gemm_s;
    }
  };

  if (pool != nullptr) {
    pool->run(worker);
  } else {
    worker(0, 1);
  }

  unpack_blocked_to_nchw(out_blocked_.span(), desc_.batch, desc_.out_channels,
                         desc_.out_height(), desc_.out_width(), output, pool);
  stage_times_.output_transform = 0.0;  // folded into input_transform above
}

}  // namespace lowino

// FP32 Winograd convolution baseline.
//
// Full-precision counterpart used for the "1.9x / 2.6x speedup over the best
// FP32 implementation" comparison of Section 5.1 and as a numerical
// mid-point in tests (it isolates transform error from quantization error).
// Uses the conventional per-t row-major intermediates + AVX-512 FP32 GEMM.
#pragma once

#include <span>

#include "baselines/wino_common.h"
#include "common/aligned_buffer.h"
#include "tensor/conv_desc.h"
#include "tensor/layout.h"
#include "winograd/transform.h"

namespace lowino {

class Fp32WinoConv {
 public:
  Fp32WinoConv(const ConvDesc& desc, std::size_t m);

  void set_filters(std::span<const float> weights, std::span<const float> bias = {});
  void execute_nchw(std::span<const float> input, std::span<float> output,
                    ThreadPool* pool = nullptr);

  const ConvDesc& desc() const { return desc_; }
  const WinogradGeometry& geometry() const { return geo_; }

 private:
  ConvDesc desc_;
  WinogradGeometry geo_;
  const TransformMatrices* tm_ = nullptr;
  CodeletPlan bt_plan_;
  CodeletPlan at_plan_;
  BlockedActLayout in_layout_;
  BlockedActLayout out_layout_;

  std::vector<float> u_all_;  ///< [T][C64][K64] transformed filters
  AlignedBuffer<float> bias_;
  bool filters_set_ = false;

  AlignedBuffer<float> in_blocked_;
  AlignedBuffer<float> out_blocked_;
  AlignedBuffer<float> v_;  ///< [T][N][C64]
  AlignedBuffer<float> z_;  ///< [T][N][K64]
};

}  // namespace lowino

// The up-casting low-precision Winograd baseline (Figure 2(a); ncnn's
// approach, Section 2.3).
//
// Input and filters are quantized to INT8 in the spatial domain; the Winograd
// transforms are computed with *integer* matrices into INT16 (no overflow,
// no post-transform rounding), and the element-wise multiplication runs in
// INT16 via vpmaddwd — which has half the multiply throughput of vpdpbusd.
// Accurate but slow: exactly the trade-off the paper describes. Like ncnn,
// only the small tile F(2x2, 3x3) is supported (the INT16 range cannot hold
// larger tiles' amplification, which is the motivation for LoWino).
#pragma once

#include <cstdint>
#include <span>

#include "baselines/wino_common.h"
#include "common/aligned_buffer.h"
#include "quant/histogram.h"
#include "tensor/conv_desc.h"
#include "tensor/layout.h"
#include "winograd/transform.h"

namespace lowino {

class UpcastWinoConv {
 public:
  explicit UpcastWinoConv(const ConvDesc& desc);  // F(2x2, 3x3) only

  void calibrate(std::span<const float> input_nchw);
  void finalize_calibration();
  void set_input_threshold(float tau);
  void set_filters(std::span<const float> weights, std::span<const float> bias = {});

  void execute_nchw(std::span<const float> input, std::span<float> output,
                    ThreadPool* pool = nullptr);

  const ConvDesc& desc() const { return desc_; }

 private:
  void maybe_pack();

  ConvDesc desc_;
  WinogradGeometry geo_;
  const TransformMatrices* tm_ = nullptr;
  CodeletPlan bt_plan_;
  CodeletPlan at_plan_;
  BlockedActLayout in_layout_;
  BlockedActLayout out_layout_;

  Histogram input_hist_;
  float input_scale_ = 0.0f;
  bool input_scales_set_ = false;

  AlignedBuffer<float> weights_fp32_;
  AlignedBuffer<float> bias_;
  bool filters_set_ = false;
  bool packed_ = false;

  AlignedBuffer<std::int16_t> u16_packed_;  ///< [T] x vpmaddwd-packed (C64 x K64)
  AlignedBuffer<float> dequant_;            ///< [K64] 1/(alpha_d*alpha_gk*4)

  AlignedBuffer<float> grid_input_;
  AlignedBuffer<float> in_blocked_;
  AlignedBuffer<float> out_blocked_;
  AlignedBuffer<std::int16_t> v16_;  ///< [T][N][C64]
  AlignedBuffer<std::int32_t> z_;    ///< [T][N][K64]
};

}  // namespace lowino

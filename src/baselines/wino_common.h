// Shared machinery for the baseline Winograd engines (FP32, up-casting,
// fused vendor-style): simple per-t row-major intermediate layouts
// ([T][tiles][channels]) and the gather-side output transform that reads them.
//
// These layouts deliberately differ from LoWino's scatter-friendly blocked
// layouts — they represent the conventional design whose trade-offs the paper
// analyzes (gathering reads, smaller GEMMs).
#pragma once

#include <cstdint>
#include <span>

#include "lowino/engine_config.h"
#include "lowino/input_transform.h"
#include "tensor/conv_desc.h"
#include "winograd/codelet_plan.h"

namespace lowino {

class ThreadPool;

/// Output transform from a per-t row-major Z ([T][n_rows][k_cols], element
/// type int32) into a blocked activation output. `dequant[k]` converts lane k
/// to FP32 (pass nullptr for float input via the f32 overload below).
/// Only tiles [tile_begin, tile_end) are processed (strip support).
void gather_output_transform_i32(const ConvDesc& desc, const WinogradGeometry& geo,
                                 const CodeletPlan& at_plan, const std::int32_t* z,
                                 std::size_t n_rows, std::size_t k_cols,
                                 const float* dequant, const float* bias,
                                 std::span<float> out_blocked, std::size_t tile_begin,
                                 std::size_t tile_end, std::size_t tile_row_offset);

/// Same for FP32 Z (the FP32 Winograd baseline).
void gather_output_transform_f32(const ConvDesc& desc, const WinogradGeometry& geo,
                                 const CodeletPlan& at_plan, const float* z,
                                 std::size_t n_rows, std::size_t k_cols, const float* bias,
                                 std::span<float> out_blocked, std::size_t tile_begin,
                                 std::size_t tile_end, std::size_t tile_row_offset);

/// Spatial INT8 quantization to grid values: returns round/clamp(x*scale)/scale.
void quantize_to_grid(std::span<const float> src, float scale, std::span<float> dst);

}  // namespace lowino

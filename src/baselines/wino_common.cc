#include "baselines/wino_common.h"

#include <algorithm>
#include <cstring>

#include "common/aligned_buffer.h"
#include "common/saturate.h"
#include "lowino/transform_kernels.h"
#include "tensor/layout.h"

namespace lowino {
namespace {

/// Shared tile loop: `load16(t, k_base, dst)` fills 16 de-quantized lanes of
/// position t starting at output channel k_base.
template <typename Load16>
void gather_output_transform_impl(const ConvDesc& desc, const WinogradGeometry& geo,
                                  const CodeletPlan& at_plan, const float* bias,
                                  std::span<float> out_blocked, std::size_t tile_begin,
                                  std::size_t tile_end, Load16&& load16) {
  const std::size_t alpha = geo.alpha, m = geo.m, t_elems = geo.t_elems;
  const std::size_t out_h = desc.out_height(), out_w = desc.out_width();
  const BlockedActLayout out_layout(desc.batch, desc.out_channels, out_h, out_w);
  const std::size_t k64 = desc.padded_out_channels();

  AlignedBuffer<float> zf(t_elems * 16), wbuf(m * alpha * 16), ybuf(m * m * 16);
  for (std::size_t tile = tile_begin; tile < tile_end; ++tile) {
    const std::size_t b = tile / geo.tiles_per_image;
    const std::size_t rem = tile % geo.tiles_per_image;
    const std::size_t th = rem / geo.tiles_w;
    const std::size_t tw = rem % geo.tiles_w;
    const std::size_t oh0 = th * m, ow0 = tw * m;
    const std::size_t valid_h = std::min(m, out_h - oh0);
    const std::size_t valid_w = std::min(m, out_w - ow0);

    for (std::size_t k_base = 0; k_base < k64; k_base += 16) {
      for (std::size_t t = 0; t < t_elems; ++t) {
        load16(tile, t, k_base, zf.data() + t * 16);
      }
      for (std::size_t j = 0; j < alpha; ++j) {
        apply_plan_16(at_plan, zf.data() + j * 16, alpha * 16, wbuf.data() + j * 16,
                      alpha * 16);
      }
      for (std::size_t i = 0; i < m; ++i) {
        apply_plan_16(at_plan, wbuf.data() + i * alpha * 16, 16, ybuf.data() + i * m * 16,
                      16);
      }
      const float* bias16 = bias != nullptr ? bias + k_base : nullptr;
      const std::size_t kb = k_base / kChanBlock;
      const std::size_t g16 = (k_base % kChanBlock);
      for (std::size_t i = 0; i < valid_h; ++i) {
        for (std::size_t j = 0; j < valid_w; ++j) {
          const float* y = ybuf.data() + (i * m + j) * 16;
          float* dst =
              out_blocked.data() + out_layout.offset(b, kb, oh0 + i, ow0 + j) + g16;
          if (bias16 != nullptr) {
            for (int l = 0; l < 16; ++l) dst[l] = y[l] + bias16[l];
          } else {
            std::memcpy(dst, y, 16 * sizeof(float));
          }
        }
      }
    }
  }
}

}  // namespace

void gather_output_transform_i32(const ConvDesc& desc, const WinogradGeometry& geo,
                                 const CodeletPlan& at_plan, const std::int32_t* z,
                                 std::size_t n_rows, std::size_t k_cols,
                                 const float* dequant, const float* bias,
                                 std::span<float> out_blocked, std::size_t tile_begin,
                                 std::size_t tile_end, std::size_t tile_row_offset) {
  gather_output_transform_impl(
      desc, geo, at_plan, bias, out_blocked, tile_begin, tile_end,
      [&](std::size_t tile, std::size_t t, std::size_t k_base, float* dst) {
        const std::size_t row = tile - tile_row_offset;
        const std::int32_t* src = z + (t * n_rows + row) * k_cols + k_base;
        const float* dq = dequant + k_base;
        for (int l = 0; l < 16; ++l) dst[l] = static_cast<float>(src[l]) * dq[l];
      });
}

void gather_output_transform_f32(const ConvDesc& desc, const WinogradGeometry& geo,
                                 const CodeletPlan& at_plan, const float* z,
                                 std::size_t n_rows, std::size_t k_cols, const float* bias,
                                 std::span<float> out_blocked, std::size_t tile_begin,
                                 std::size_t tile_end, std::size_t tile_row_offset) {
  gather_output_transform_impl(
      desc, geo, at_plan, bias, out_blocked, tile_begin, tile_end,
      [&](std::size_t tile, std::size_t t, std::size_t k_base, float* dst) {
        const std::size_t row = tile - tile_row_offset;
        std::memcpy(dst, z + (t * n_rows + row) * k_cols + k_base, 16 * sizeof(float));
      });
}

void quantize_to_grid(std::span<const float> src, float scale, std::span<float> dst) {
  const float inv = 1.0f / scale;
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<float>(saturate_cast_i8(src[i] * scale)) * inv;
  }
}

}  // namespace lowino

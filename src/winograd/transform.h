// Winograd transform matrices: exact generation for any F(m x m, r x r) plus
// the canonical Lavin matrices for F(2x2,3x3) and F(4x4,3x3) used by the
// hand-tuned codelets.
//
// Notation follows the paper (Eq. 1): for input tile d, filter g,
//   Y = A^T [ (G g G^T) . (B^T d B) ] A
// with A^T of shape m x alpha, G of shape alpha x r, B^T of shape alpha x alpha,
// alpha = m + r - 1.
#pragma once

#include <cstddef>
#include <vector>

#include "winograd/rational.h"

namespace lowino {

struct TransformMatrices {
  std::size_t m = 0;
  std::size_t r = 0;
  std::size_t alpha = 0;

  // Row-major double-precision matrices used by the runtime kernels.
  std::vector<double> AT;  ///< m x alpha
  std::vector<double> G;   ///< alpha x r
  std::vector<double> BT;  ///< alpha x alpha

  // Exact rational versions (kept for tests and for the identity check).
  std::vector<Rational> AT_q;
  std::vector<Rational> G_q;
  std::vector<Rational> BT_q;

  double at(std::size_t i, std::size_t j) const { return AT[i * alpha + j]; }
  double g(std::size_t i, std::size_t j) const { return G[i * r + j]; }
  double bt(std::size_t i, std::size_t j) const { return BT[i * alpha + j]; }

  /// Worst-case 2D amplification of the input transform: (max row abs-sum of
  /// B^T)^2. This is the paper's "4x for F(2,3), 100x for F(4,3)" figure and
  /// drives the down-scaling baseline's scaling factor.
  double input_amplification_2d() const;

  /// 1D Winograd correlation via this transform (testing utility):
  /// y[i] = sum_j g[j] * d[i+j], computed as A^T[(G g) . (B^T d)].
  std::vector<double> correlate_1d(const std::vector<double>& d,
                                   const std::vector<double>& g_vec) const;
};

/// Returns the (cached) transform for F(m x m, r x r), generated with exact
/// rational Cook-Toom construction and symbolically verified. Throws
/// std::invalid_argument for unsupported sizes (m < 1, r < 2, alpha > 10).
const TransformMatrices& winograd_transform(std::size_t m, std::size_t r);

/// Generates (uncached) with an explicit set of alpha-1 finite interpolation
/// points; the point at infinity is always appended. Exposed for tests.
TransformMatrices generate_winograd_transform(std::size_t m, std::size_t r,
                                              const std::vector<Rational>& points);

/// Canonical Lavin & Gray matrices for F(2x2, 3x3) (Eq. 2 of the paper).
const TransformMatrices& canonical_f23();
/// Canonical Lavin & Gray matrices for F(4x4, 3x3).
const TransformMatrices& canonical_f43();

/// Default interpolation points [0, 1, -1, 2, -2, 1/2, -1/2, ...] (wincnn's
/// choice, referenced in Section 4.2.4 of the paper).
std::vector<Rational> default_points(std::size_t count);

}  // namespace lowino

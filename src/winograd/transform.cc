#include "winograd/transform.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>

namespace lowino {
namespace {

using Mat = std::vector<Rational>;  // row-major

/// Solves the (rows x cols) exactly-determined-or-overdetermined consistent
/// system M x = b with rational Gaussian elimination. Throws if inconsistent
/// or rank-deficient.
std::vector<Rational> solve_exact(Mat M, std::vector<Rational> b, std::size_t rows,
                                  std::size_t cols) {
  std::size_t pivot_row = 0;
  std::vector<std::size_t> pivot_of_col(cols, SIZE_MAX);
  for (std::size_t col = 0; col < cols && pivot_row < rows; ++col) {
    // Find a non-zero pivot.
    std::size_t p = SIZE_MAX;
    for (std::size_t rr = pivot_row; rr < rows; ++rr) {
      if (!M[rr * cols + col].is_zero()) {
        p = rr;
        break;
      }
    }
    if (p == SIZE_MAX) continue;
    if (p != pivot_row) {
      for (std::size_t j = 0; j < cols; ++j) std::swap(M[p * cols + j], M[pivot_row * cols + j]);
      std::swap(b[p], b[pivot_row]);
    }
    const Rational inv = Rational(1) / M[pivot_row * cols + col];
    for (std::size_t j = 0; j < cols; ++j) M[pivot_row * cols + j] *= inv;
    b[pivot_row] *= inv;
    for (std::size_t rr = 0; rr < rows; ++rr) {
      if (rr == pivot_row) continue;
      const Rational f = M[rr * cols + col];
      if (f.is_zero()) continue;
      for (std::size_t j = 0; j < cols; ++j) {
        M[rr * cols + j] -= f * M[pivot_row * cols + j];
      }
      b[rr] -= f * b[pivot_row];
    }
    pivot_of_col[col] = pivot_row;
    ++pivot_row;
  }
  // Rank must equal cols for a unique solution.
  std::vector<Rational> x(cols);
  for (std::size_t col = 0; col < cols; ++col) {
    if (pivot_of_col[col] == SIZE_MAX) {
      throw std::runtime_error("winograd generator: rank-deficient system");
    }
    x[col] = b[pivot_of_col[col]];
  }
  // Consistency: remaining rows must be all-zero = 0.
  for (std::size_t rr = pivot_row; rr < rows; ++rr) {
    if (!b[rr].is_zero()) {
      throw std::runtime_error("winograd generator: inconsistent system");
    }
  }
  return x;
}

std::vector<double> to_double(const Mat& m) {
  std::vector<double> out(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) out[i] = m[i].to_double();
  return out;
}

/// Verifies the 1D Winograd identity exactly:
///   for all i in [0,m), k in [0,r), l in [0,alpha):
///     sum_j AT[i][j] * G[j][k] * BT[j][l] == (l == i + k)
void verify_identity(const TransformMatrices& t) {
  const std::size_t m = t.m, r = t.r, alpha = t.alpha;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t k = 0; k < r; ++k) {
      for (std::size_t l = 0; l < alpha; ++l) {
        Rational sum = 0;
        for (std::size_t j = 0; j < alpha; ++j) {
          sum += t.AT_q[i * alpha + j] * t.G_q[j * r + k] * t.BT_q[j * alpha + l];
        }
        const Rational expected = (l == i + k) ? Rational(1) : Rational(0);
        if (sum != expected) {
          throw std::runtime_error("winograd generator: identity check failed");
        }
      }
    }
  }
}

Rational pow_rational(const Rational& a, std::size_t e) {
  Rational p = 1;
  for (std::size_t i = 0; i < e; ++i) p *= a;
  return p;
}

}  // namespace

std::vector<Rational> default_points(std::size_t count) {
  // wincnn-style: 0, then +/- 1, 2, 1/2, 4, 1/4, ...
  static const std::vector<Rational> kPool = {
      Rational(0),     Rational(1),     Rational(-1),   Rational(2),    Rational(-2),
      Rational(1, 2),  Rational(-1, 2), Rational(4),    Rational(-4),   Rational(1, 4),
      Rational(-1, 4), Rational(8),     Rational(-8),   Rational(3),    Rational(-3)};
  if (count > kPool.size()) {
    throw std::invalid_argument("winograd: too many interpolation points requested");
  }
  return {kPool.begin(), kPool.begin() + static_cast<std::ptrdiff_t>(count)};
}

TransformMatrices generate_winograd_transform(std::size_t m, std::size_t r,
                                              const std::vector<Rational>& points) {
  if (m < 1 || r < 2) throw std::invalid_argument("winograd: need m >= 1, r >= 2");
  const std::size_t alpha = m + r - 1;
  if (points.size() != alpha - 1) {
    throw std::invalid_argument("winograd: need alpha-1 finite points");
  }
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (points[i] == points[j]) throw std::invalid_argument("winograd: duplicate points");
    }
  }

  TransformMatrices t;
  t.m = m;
  t.r = r;
  t.alpha = alpha;
  t.AT_q.assign(m * alpha, Rational(0));
  t.G_q.assign(alpha * r, Rational(0));
  t.BT_q.assign(alpha * alpha, Rational(0));

  // A^T: Vandermonde over the finite points; the infinity column selects the
  // highest output coefficient.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j + 1 < alpha; ++j) {
      t.AT_q[i * alpha + j] = pow_rational(points[j], i);
    }
  }
  t.AT_q[(m - 1) * alpha + (alpha - 1)] = 1;

  // G: scaled Vandermonde (Lagrange normalization N_j); infinity row selects
  // the filter's leading coefficient.
  for (std::size_t j = 0; j + 1 < alpha; ++j) {
    Rational nj = 1;
    for (std::size_t l = 0; l + 1 < alpha; ++l) {
      if (l != j) nj *= points[j] - points[l];
    }
    for (std::size_t k = 0; k < r; ++k) {
      t.G_q[j * r + k] = pow_rational(points[j], k) / nj;
    }
  }
  t.G_q[(alpha - 1) * r + (r - 1)] = 1;

  // B^T is the unique matrix closing the identity
  //   sum_j AT[i][j] G[j][k] BT[j][l] = [l == i+k];
  // solve one exact linear system per column l. The coefficient matrix
  // M[(i,k)][j] = AT[i][j] * G[j][k] is shared by all columns.
  const std::size_t rows = m * r;
  Mat M(rows * alpha);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t k = 0; k < r; ++k) {
      for (std::size_t j = 0; j < alpha; ++j) {
        M[(i * r + k) * alpha + j] = t.AT_q[i * alpha + j] * t.G_q[j * r + k];
      }
    }
  }
  for (std::size_t l = 0; l < alpha; ++l) {
    std::vector<Rational> rhs(rows, Rational(0));
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t k = 0; k < r; ++k) {
        if (i + k == l) rhs[i * r + k] = 1;
      }
    }
    const std::vector<Rational> col = solve_exact(M, std::move(rhs), rows, alpha);
    for (std::size_t j = 0; j < alpha; ++j) t.BT_q[j * alpha + l] = col[j];
  }

  verify_identity(t);

  t.AT = to_double(t.AT_q);
  t.G = to_double(t.G_q);
  t.BT = to_double(t.BT_q);
  return t;
}

const TransformMatrices& winograd_transform(std::size_t m, std::size_t r) {
  static std::mutex mu;
  static std::map<std::pair<std::size_t, std::size_t>, TransformMatrices> cache;
  std::lock_guard<std::mutex> lock(mu);
  const auto key = std::make_pair(m, r);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const std::size_t alpha = m + r - 1;
    if (alpha > 10) throw std::invalid_argument("winograd: alpha > 10 unsupported");
    it = cache.emplace(key, generate_winograd_transform(m, r, default_points(alpha - 1))).first;
  }
  return it->second;
}

double TransformMatrices::input_amplification_2d() const {
  double max_row = 0.0;
  for (std::size_t i = 0; i < alpha; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < alpha; ++j) s += std::abs(bt(i, j));
    max_row = std::max(max_row, s);
  }
  return max_row * max_row;
}

std::vector<double> TransformMatrices::correlate_1d(const std::vector<double>& d,
                                                    const std::vector<double>& g_vec) const {
  if (d.size() != alpha || g_vec.size() != r) {
    throw std::invalid_argument("correlate_1d: bad sizes");
  }
  std::vector<double> u(alpha, 0.0), v(alpha, 0.0), y(m, 0.0);
  for (std::size_t j = 0; j < alpha; ++j) {
    for (std::size_t k = 0; k < r; ++k) u[j] += g(j, k) * g_vec[k];
    for (std::size_t l = 0; l < alpha; ++l) v[j] += bt(j, l) * d[l];
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < alpha; ++j) y[i] += at(i, j) * u[j] * v[j];
  }
  return y;
}

namespace {

TransformMatrices make_canonical(std::size_t m, std::size_t r,
                                 std::vector<Rational> at, std::vector<Rational> g,
                                 std::vector<Rational> bt) {
  TransformMatrices t;
  t.m = m;
  t.r = r;
  t.alpha = m + r - 1;
  t.AT_q = std::move(at);
  t.G_q = std::move(g);
  t.BT_q = std::move(bt);
  verify_identity(t);  // canonical matrices must satisfy the identity too
  t.AT = to_double(t.AT_q);
  t.G = to_double(t.G_q);
  t.BT = to_double(t.BT_q);
  return t;
}

}  // namespace

const TransformMatrices& canonical_f23() {
  static const TransformMatrices t = make_canonical(
      2, 3,
      // A^T (2x4)
      {1, 1, 1, 0,
       0, 1, -1, -1},
      // G (4x3)
      {Rational(1), Rational(0), Rational(0),
       Rational(1, 2), Rational(1, 2), Rational(1, 2),
       Rational(1, 2), Rational(-1, 2), Rational(1, 2),
       Rational(0), Rational(0), Rational(1)},
      // B^T (4x4) — Eq. 2 of the paper
      {1, 0, -1, 0,
       0, 1, 1, 0,
       0, -1, 1, 0,
       0, 1, 0, -1});
  return t;
}

const TransformMatrices& canonical_f43() {
  static const TransformMatrices t = make_canonical(
      4, 3,
      // A^T (4x6)
      {1, 1, 1, 1, 1, 0,
       0, 1, -1, 2, -2, 0,
       0, 1, 1, 4, 4, 0,
       0, 1, -1, 8, -8, 1},
      // G (6x3)
      {Rational(1, 4), Rational(0), Rational(0),
       Rational(-1, 6), Rational(-1, 6), Rational(-1, 6),
       Rational(-1, 6), Rational(1, 6), Rational(-1, 6),
       Rational(1, 24), Rational(1, 12), Rational(1, 6),
       Rational(1, 24), Rational(-1, 12), Rational(1, 6),
       Rational(0), Rational(0), Rational(1)},
      // B^T (6x6) — Eq. 2 of the paper
      {4, 0, -5, 0, 1, 0,
       0, -4, -4, 1, 1, 0,
       0, 4, -4, -1, 1, 0,
       0, -2, -1, 2, 1, 0,
       0, 2, -1, -2, 1, 0,
       0, 4, 0, -5, 0, 1});
  return t;
}

}  // namespace lowino

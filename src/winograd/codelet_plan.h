// Codelet planner for Winograd transforms (Section 4.2.4 / Figure 4).
//
// A transform stage applies a small constant matrix M (alpha x alpha, m x alpha
// or alpha x r) to a vector of SIMD lanes. The paper's codelet generator emits
// specialized code with three optimizations:
//   1. zero-skipping   — terms with coefficient 0 are never emitted;
//   2. CSE             — +/- symmetric row pairs share their common and
//                        anti-symmetric sub-expressions via temporaries
//                        (the "temp" variable in Figure 4);
//   3. unrolling       — the interpreter walks a flat step list; the lane loop
//                        is the vectorized dimension.
// `CodeletPlan::build` performs 1-2 at plan-construction time; `apply` executes
// the plan over a strided array of lanes. The hand-tuned AVX-512 codelets in
// lowino/ implement the same schedules manually for F(2,3) and F(4,3); this
// module provides the paper's "broadest coverage" generic path (any F(m,r)).
#pragma once

#include <cstddef>
#include <vector>

namespace lowino {

struct LinTerm {
  /// Source slot: < n_in refers to input row `src`; >= n_in refers to
  /// temporary `src - n_in`.
  std::size_t src = 0;
  float coeff = 0.0f;
};

struct PlanStep {
  bool is_output = false;  ///< temp slot when false, output row when true
  std::size_t index = 0;   ///< output row index or temp index
  std::vector<LinTerm> terms;
};

class CodeletPlan {
 public:
  /// Builds a plan computing y = M x for row-major M of shape n_out x n_in.
  static CodeletPlan build(const double* M, std::size_t n_out, std::size_t n_in);

  /// Executes the plan over `lanes` independent scalar lanes:
  ///   out[row * out_stride + l] = sum_j M[row][j] * in[j * in_stride + l].
  void apply(const float* in, std::size_t in_stride, float* out, std::size_t out_stride,
             std::size_t lanes) const;

  std::size_t n_in() const { return n_in_; }
  std::size_t n_out() const { return n_out_; }
  std::size_t n_temps() const { return n_temps_; }
  const std::vector<PlanStep>& steps() const { return steps_; }

  /// Multiply count of the plan (coefficients of magnitude 1 are free adds).
  std::size_t mul_count() const { return mul_count_; }
  std::size_t add_count() const { return add_count_; }
  /// Multiply/add counts of the naive dense evaluation, for comparison.
  std::size_t naive_mul_count() const { return naive_mul_count_; }
  std::size_t naive_add_count() const { return naive_add_count_; }

 private:
  std::size_t n_in_ = 0;
  std::size_t n_out_ = 0;
  std::size_t n_temps_ = 0;
  std::vector<PlanStep> steps_;
  std::size_t mul_count_ = 0;
  std::size_t add_count_ = 0;
  std::size_t naive_mul_count_ = 0;
  std::size_t naive_add_count_ = 0;
};

}  // namespace lowino

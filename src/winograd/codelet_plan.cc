#include "winograd/codelet_plan.h"

#include <cmath>
#include <cstdlib>

#include "common/aligned_buffer.h"

namespace lowino {
namespace {

bool nearly_equal(double a, double b) { return std::abs(a - b) < 1e-12; }

void count_ops(const std::vector<LinTerm>& terms, std::size_t& muls, std::size_t& adds) {
  for (const LinTerm& t : terms) {
    if (!nearly_equal(std::abs(t.coeff), 1.0)) ++muls;
  }
  if (!terms.empty()) adds += terms.size() - 1;
}

}  // namespace

CodeletPlan CodeletPlan::build(const double* M, std::size_t n_out, std::size_t n_in) {
  CodeletPlan plan;
  plan.n_in_ = n_in;
  plan.n_out_ = n_out;

  // Naive op counts (zero-skipped dense evaluation) for comparison.
  for (std::size_t i = 0; i < n_out; ++i) {
    std::size_t nz = 0;
    for (std::size_t j = 0; j < n_in; ++j) {
      const double c = M[i * n_in + j];
      if (c == 0.0) continue;
      ++nz;
      if (!nearly_equal(std::abs(c), 1.0)) ++plan.naive_mul_count_;
    }
    if (nz > 0) plan.naive_add_count_ += nz - 1;
  }

  std::vector<bool> done(n_out, false);

  // CSE: pair rows p, q whose non-zero patterns split into a shared part
  // (equal coefficients) and an anti-symmetric part (negated coefficients),
  // with both parts non-empty. Winograd matrices are built from +/- point
  // pairs, so most rows pair up this way (e.g. B^T(4,3) rows 1&2, 3&4).
  for (std::size_t p = 0; p < n_out; ++p) {
    if (done[p]) continue;
    for (std::size_t q = p + 1; q < n_out; ++q) {
      if (done[q]) continue;
      std::vector<LinTerm> common, anti;
      bool compatible = true;
      for (std::size_t j = 0; j < n_in && compatible; ++j) {
        const double a = M[p * n_in + j];
        const double b = M[q * n_in + j];
        if (a == 0.0 && b == 0.0) continue;
        if (nearly_equal(a, b)) {
          common.push_back({j, static_cast<float>(a)});
        } else if (nearly_equal(a, -b)) {
          anti.push_back({j, static_cast<float>(a)});
        } else {
          compatible = false;
        }
      }
      // Pairing pays off when at least one shared part has 2+ terms.
      if (!compatible || common.empty() || anti.empty() ||
          (common.size() < 2 && anti.size() < 2)) {
        continue;
      }
      const std::size_t t_common = n_in + plan.n_temps_++;
      const std::size_t t_anti = n_in + plan.n_temps_++;
      plan.steps_.push_back({false, t_common - n_in, common});
      plan.steps_.push_back({false, t_anti - n_in, anti});
      plan.steps_.push_back({true, p, {{t_common, 1.0f}, {t_anti, 1.0f}}});
      plan.steps_.push_back({true, q, {{t_common, 1.0f}, {t_anti, -1.0f}}});
      count_ops(common, plan.mul_count_, plan.add_count_);
      count_ops(anti, plan.mul_count_, plan.add_count_);
      plan.add_count_ += 2;  // the two combining adds
      done[p] = done[q] = true;
      break;
    }
  }

  // Remaining rows: direct zero-skipped linear combinations.
  for (std::size_t i = 0; i < n_out; ++i) {
    if (done[i]) continue;
    std::vector<LinTerm> terms;
    for (std::size_t j = 0; j < n_in; ++j) {
      const double c = M[i * n_in + j];
      if (c != 0.0) terms.push_back({j, static_cast<float>(c)});
    }
    count_ops(terms, plan.mul_count_, plan.add_count_);
    plan.steps_.push_back({true, i, std::move(terms)});
  }
  return plan;
}

void CodeletPlan::apply(const float* in, std::size_t in_stride, float* out,
                        std::size_t out_stride, std::size_t lanes) const {
  // Temps live in a small stack buffer: n_temps x lanes floats. Transform
  // codelets use lanes <= 64 and n_temps <= alpha, so 4 KiB is ample.
  constexpr std::size_t kStackFloats = 1024;
  float stack_buf[kStackFloats];
  AlignedBuffer<float> heap_buf;
  float* temps = stack_buf;
  if (n_temps_ * lanes > kStackFloats) {
    heap_buf.reset(n_temps_ * lanes);
    temps = heap_buf.data();
  }

  for (const PlanStep& step : steps_) {
    float* dst = step.is_output ? out + step.index * out_stride : temps + step.index * lanes;
    if (step.terms.empty()) {
      for (std::size_t l = 0; l < lanes; ++l) dst[l] = 0.0f;
      continue;
    }
    const auto src_ptr = [&](std::size_t s) {
      return s < n_in_ ? in + s * in_stride : temps + (s - n_in_) * lanes;
    };
    const float* s0 = src_ptr(step.terms[0].src);
    const float c0 = step.terms[0].coeff;
    for (std::size_t l = 0; l < lanes; ++l) dst[l] = c0 * s0[l];
    for (std::size_t ti = 1; ti < step.terms.size(); ++ti) {
      const float* s = src_ptr(step.terms[ti].src);
      const float c = step.terms[ti].coeff;
      for (std::size_t l = 0; l < lanes; ++l) dst[l] += c * s[l];
    }
  }
}

}  // namespace lowino

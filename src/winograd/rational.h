// Exact rational arithmetic for Winograd transform-matrix generation.
//
// Transform matrices must be *exact*: the Winograd identity
//   y = A^T [(G g) . (B^T d)]
// holds with zero error only for the exact Cook-Toom coefficients, and the
// generator verifies the identity symbolically at construction time
// (transform.cc). 128-bit intermediates keep the Gaussian elimination exact
// for every tile size we generate (up to F(6x6, 5x5)).
#pragma once

#include <cstdint>
#include <numeric>
#include <stdexcept>

namespace lowino {

class Rational {
 public:
  constexpr Rational() = default;
  constexpr Rational(std::int64_t n) : num_(n), den_(1) {}  // NOLINT: implicit by design
  Rational(std::int64_t n, std::int64_t d) : num_(n), den_(d) { normalize(); }

  std::int64_t num() const { return num_; }
  std::int64_t den() const { return den_; }

  double to_double() const { return static_cast<double>(num_) / static_cast<double>(den_); }
  bool is_zero() const { return num_ == 0; }
  bool is_integer() const { return den_ == 1; }

  friend Rational operator+(const Rational& a, const Rational& b) {
    return make(i128(a.num_) * b.den_ + i128(b.num_) * a.den_, i128(a.den_) * b.den_);
  }
  friend Rational operator-(const Rational& a, const Rational& b) {
    return make(i128(a.num_) * b.den_ - i128(b.num_) * a.den_, i128(a.den_) * b.den_);
  }
  friend Rational operator*(const Rational& a, const Rational& b) {
    return make(i128(a.num_) * b.num_, i128(a.den_) * b.den_);
  }
  friend Rational operator/(const Rational& a, const Rational& b) {
    if (b.num_ == 0) throw std::domain_error("Rational division by zero");
    return make(i128(a.num_) * b.den_, i128(a.den_) * b.num_);
  }
  Rational operator-() const { return Rational(-num_, den_); }

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend bool operator!=(const Rational& a, const Rational& b) { return !(a == b); }

  Rational abs() const { return Rational(num_ < 0 ? -num_ : num_, den_); }
  friend bool operator<(const Rational& a, const Rational& b) {
    return i128(a.num_) * b.den_ < i128(b.num_) * a.den_;
  }

 private:
  using i128 = __int128;

  static Rational make(i128 n, i128 d) {
    if (d == 0) throw std::domain_error("Rational with zero denominator");
    if (d < 0) {
      n = -n;
      d = -d;
    }
    const i128 g = gcd128(n < 0 ? -n : n, d);
    if (g > 1) {
      n /= g;
      d /= g;
    }
    constexpr i128 kMax = INT64_MAX;
    if (n > kMax || n < -kMax || d > kMax) {
      throw std::overflow_error("Rational overflow during transform generation");
    }
    Rational r;
    r.num_ = static_cast<std::int64_t>(n);
    r.den_ = static_cast<std::int64_t>(d);
    return r;
  }

  static i128 gcd128(i128 a, i128 b) {
    while (b != 0) {
      const i128 t = a % b;
      a = b;
      b = t;
    }
    return a == 0 ? 1 : a;
  }

  void normalize() { *this = make(num_, den_); }

  std::int64_t num_ = 0;
  std::int64_t den_ = 1;
};

}  // namespace lowino

#include "tuning/auto_select.h"

#include <limits>

#include "common/timer.h"

namespace lowino {
namespace {

LoWinoConfig lowino_config(std::size_t m) {
  LoWinoConfig cfg;
  cfg.m = m;
  return cfg;
}

}  // namespace

const char* algorithm_name(ConvAlgorithm a) {
  switch (a) {
    case ConvAlgorithm::kInt8Direct: return "int8-direct";
    case ConvAlgorithm::kLoWinoF2: return "lowino-f2";
    case ConvAlgorithm::kLoWinoF4: return "lowino-f4";
  }
  return "?";
}

AutoConv::AutoConv(const ConvDesc& desc, const AutoConvOptions& options)
    : desc_(desc),
      options_(options),
      direct_(desc),
      f2_(desc, lowino_config(2)),
      f4_(desc, lowino_config(4)) {
  if (options_.forced.has_value()) {
    algorithm_ = *options_.forced;
    selected_ = true;
  }
}

void AutoConv::calibrate(std::span<const float> input_nchw) {
  direct_.calibrate(input_nchw);
  f2_.calibrate(input_nchw, /*tile_stride=*/4);
  f4_.calibrate(input_nchw, /*tile_stride=*/4);
}

void AutoConv::finalize_calibration() {
  direct_.finalize_calibration();
  f2_.finalize_calibration();
  f4_.finalize_calibration();
}

void AutoConv::set_filters(std::span<const float> weights, std::span<const float> bias) {
  direct_.set_filters(weights, bias);
  f2_.set_filters(weights, bias);
  f4_.set_filters(weights, bias);
}

void AutoConv::ensure_selected(std::span<const float> input, std::span<float> output,
                               ThreadPool* pool) {
  if (selected_) return;
  const auto time_candidate = [&](auto&& run) {
    return time_it(run, /*warmup=*/1, /*min_iters=*/2, /*max_iters=*/10,
                   options_.seconds_per_candidate)
        .median;
  };
  double best = std::numeric_limits<double>::infinity();
  const struct {
    ConvAlgorithm algo;
    double seconds;
  } results[] = {
      {ConvAlgorithm::kInt8Direct,
       time_candidate([&] { direct_.execute_nchw(input, output, pool); })},
      {ConvAlgorithm::kLoWinoF2,
       time_candidate([&] { f2_.execute_nchw(input, output, pool); })},
      {ConvAlgorithm::kLoWinoF4,
       time_candidate([&] { f4_.execute_nchw(input, output, pool); })},
  };
  for (const auto& r : results) {
    if (r.seconds < best) {
      best = r.seconds;
      algorithm_ = r.algo;
    }
  }
  selected_ = true;
}

void AutoConv::execute_nchw(std::span<const float> input, std::span<float> output,
                            ThreadPool* pool) {
  ensure_selected(input, output, pool);
  switch (algorithm_) {
    case ConvAlgorithm::kInt8Direct: direct_.execute_nchw(input, output, pool); break;
    case ConvAlgorithm::kLoWinoF2: f2_.execute_nchw(input, output, pool); break;
    case ConvAlgorithm::kLoWinoF4: f4_.execute_nchw(input, output, pool); break;
  }
}

std::string AutoConv::wisdom_algo_key(const ConvDesc& desc) {
  return desc.to_string() + " algo";
}

}  // namespace lowino

#include "tuning/tuner.h"

#include <limits>

#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "common/timer.h"
#include "lowino/convolution.h"
#include "parallel/thread_pool.h"
#include "tuning/search_space.h"

namespace lowino {
namespace {

double time_blocking(const ConvDesc& desc, const WinogradGeometry& geo,
                     const Int8GemmBlocking& blocking, ThreadPool* pool,
                     const TuneOptions& options, AlignedBuffer<std::uint8_t>& v,
                     AlignedBuffer<std::int8_t>& u, AlignedBuffer<std::int32_t>& comp,
                     AlignedBuffer<std::int32_t>& z) {
  const std::size_t c64 = desc.padded_in_channels();
  const std::size_t k64 = desc.padded_out_channels();
  const TransformedInputLayout vl(geo.total_tiles, c64, geo.t_elems, blocking.n_blk,
                                  blocking.c_blk);
  const PackedFilterLayout ul(c64, k64, geo.t_elems, blocking.c_blk, blocking.k_blk);
  const TransformedOutputLayout zl(k64, vl.n_blocks * blocking.n_blk, geo.t_elems);
  v.ensure(vl.size());
  u.ensure(ul.size());
  comp.ensure(geo.t_elems * ul.k_blocks * ul.k_blk);
  z.ensure(zl.size());
  // Contents are irrelevant for timing; reuse whatever is in the buffers.
  const TimingStats stats = time_it(
      [&] {
        batched_int8_gemm(vl, v.data(), ul, u.data(), comp.data(), zl, z.data(), blocking,
                          pool);
      },
      /*warmup=*/1, options.min_reps, /*max_iters=*/50, options.seconds_per_candidate);
  return stats.median;
}

}  // namespace

std::string wisdom_key(const ConvDesc& desc, std::size_t m) {
  return desc.to_string() + " m" + std::to_string(m);
}

TuneResult tune_layer(const ConvDesc& desc, std::size_t m, ThreadPool* pool,
                      const TuneOptions& options) {
  const WinogradGeometry geo(desc, m);
  const std::size_t c64 = desc.padded_in_channels();
  const std::size_t k64 = desc.padded_out_channels();

  std::vector<Int8GemmBlocking> candidates = enumerate_blockings(c64, k64);
  if (options.max_candidates != 0 && candidates.size() > options.max_candidates) {
    candidates.resize(options.max_candidates);
  }

  AlignedBuffer<std::uint8_t> v;
  AlignedBuffer<std::int8_t> u;
  AlignedBuffer<std::int32_t> comp;
  AlignedBuffer<std::int32_t> z;

  TuneResult result;
  result.best = adapt_blocking(Int8GemmBlocking{}, c64, k64);
  result.default_seconds =
      time_blocking(desc, geo, result.best, pool, options, v, u, comp, z);
  result.best_seconds = result.default_seconds;

  for (const Int8GemmBlocking& cand : candidates) {
    const double t = time_blocking(desc, geo, cand, pool, options, v, u, comp, z);
    ++result.evaluated;
    if (t < result.best_seconds) {
      result.best_seconds = t;
      result.best = cand;
    }
  }
  return result;
}

}  // namespace lowino

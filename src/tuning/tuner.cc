#include "tuning/tuner.h"

#include <limits>

#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "common/timer.h"
#include "lowino/convolution.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"
#include "tuning/search_space.h"

namespace lowino {
namespace {

double time_blocking(const ConvDesc& desc, const WinogradGeometry& geo,
                     const Int8GemmBlocking& blocking, ThreadPool* pool,
                     const TuneOptions& options, AlignedBuffer<std::uint8_t>& v,
                     AlignedBuffer<std::int8_t>& u, AlignedBuffer<std::int32_t>& comp,
                     AlignedBuffer<std::int32_t>& z) {
  const std::size_t c64 = desc.padded_in_channels();
  const std::size_t k64 = desc.padded_out_channels();
  const TransformedInputLayout vl(geo.total_tiles, c64, geo.t_elems, blocking.n_blk,
                                  blocking.c_blk);
  const PackedFilterLayout ul(c64, k64, geo.t_elems, blocking.c_blk, blocking.k_blk);
  const TransformedOutputLayout zl(k64, vl.n_blocks * blocking.n_blk, geo.t_elems);
  v.ensure(vl.size());
  u.ensure(ul.size());
  comp.ensure(geo.t_elems * ul.k_blocks * ul.k_blk);
  z.ensure(zl.size());
  // Contents are irrelevant for timing; reuse whatever is in the buffers.
  ProfileSpan trial(ProfileStage::kTunerTrial);
  const TimingStats stats = time_it(
      [&] {
        batched_int8_gemm(vl, v.data(), ul, u.data(), comp.data(), zl, z.data(), blocking,
                          pool);
      },
      /*warmup=*/1, options.min_reps, /*max_iters=*/50, options.seconds_per_candidate);
  return stats.median;
}

/// Times the full pipeline (transform + GEMM + transform) in one execution
/// mode. Operand values are irrelevant for timing (VNNI latency is
/// data-independent), so zero weights and whatever the buffers hold suffice.
double time_mode(const ConvDesc& desc, std::size_t m, const Int8GemmBlocking& blocking,
                 ExecutionMode mode, ThreadPool* pool, const TuneOptions& options,
                 AlignedBuffer<float>& in, AlignedBuffer<float>& out,
                 std::vector<float>& weights, StageTimes* breakdown) {
  LoWinoConfig cfg;
  cfg.m = m;
  cfg.blocking = blocking;
  cfg.execution_mode = mode;
  LoWinoConvolution conv(desc, cfg);
  conv.set_uniform_input_threshold(4.0f);
  weights.assign(desc.out_channels * desc.in_channels * desc.kernel * desc.kernel, 0.0f);
  conv.set_filters(weights);
  in.ensure(conv.input_layout().size());
  out.ensure(conv.output_layout().size());
  ProfileSpan trial(ProfileStage::kTunerTrial);
  const TimingStats stats = time_it(
      [&] { conv.execute_blocked(in.span(), out.span(), pool); },
      /*warmup=*/1, options.min_reps, /*max_iters=*/50, options.seconds_per_candidate);
  if (breakdown != nullptr) {
    // One extra instrumented execute: the totals delta attributes the mode's
    // time to transform/GEMM/output stages in situ (works for fused too,
    // where stage boundaries are invisible to wall-clock timing). The global
    // enable is restored, not reset — user-recorded data survives tuning.
    const bool was_enabled = profiler_enabled();
    profiler_set_enabled(true);
    const auto before = profiler_stage_totals();
    conv.execute_blocked(in.span(), out.span(), pool);
    const auto after = profiler_stage_totals();
    profiler_set_enabled(was_enabled);
    const auto delta = [&](ProfileStage s) {
      const auto i = static_cast<std::size_t>(s);
      return after[i].seconds - before[i].seconds;
    };
    breakdown->input_transform = delta(ProfileStage::kInputTransform);
    breakdown->gemm = delta(ProfileStage::kGemm);
    breakdown->output_transform = delta(ProfileStage::kOutputTransform);
  }
  return stats.median;
}

}  // namespace

std::string wisdom_key(const ConvDesc& desc, std::size_t m) {
  return desc.to_string() + " m" + std::to_string(m);
}

TuneResult tune_layer(const ConvDesc& desc, std::size_t m, ThreadPool* pool,
                      const TuneOptions& options) {
  const WinogradGeometry geo(desc, m);
  const std::size_t c64 = desc.padded_in_channels();
  const std::size_t k64 = desc.padded_out_channels();

  std::vector<Int8GemmBlocking> candidates = enumerate_blockings(c64, k64);
  if (options.max_candidates != 0 && candidates.size() > options.max_candidates) {
    candidates.resize(options.max_candidates);
  }

  AlignedBuffer<std::uint8_t> v;
  AlignedBuffer<std::int8_t> u;
  AlignedBuffer<std::int32_t> comp;
  AlignedBuffer<std::int32_t> z;

  TuneResult result;
  result.best = adapt_blocking(Int8GemmBlocking{}, c64, k64);
  result.default_seconds =
      time_blocking(desc, geo, result.best, pool, options, v, u, comp, z);
  result.best_seconds = result.default_seconds;

  for (const Int8GemmBlocking& cand : candidates) {
    const double t = time_blocking(desc, geo, cand, pool, options, v, u, comp, z);
    ++result.evaluated;
    if (t < result.best_seconds) {
      result.best_seconds = t;
      result.best = cand;
    }
  }

  // Mode shoot-out: with the blocking fixed, measure the whole pipeline
  // staged vs fused and record the winner (written into wisdom as the v2
  // mode token).
  {
    AlignedBuffer<float> in, out;
    std::vector<float> weights;
    result.staged_seconds = time_mode(desc, m, result.best, ExecutionMode::kStaged, pool,
                                      options, in, out, weights, &result.staged_stages);
    result.fused_seconds = time_mode(desc, m, result.best, ExecutionMode::kFused, pool,
                                     options, in, out, weights, &result.fused_stages);
    result.best_mode = result.fused_seconds < result.staged_seconds
                           ? ExecutionMode::kFused
                           : ExecutionMode::kStaged;
  }
  return result;
}

}  // namespace lowino

// Wisdom store: persisted auto-tuning results (Section 4.3.4: "the optimal
// parameters are saved into a wisdom file and used in inference").
// Plain-text key/value format, no external dependencies.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "gemm/int8_gemm.h"

namespace lowino {

class WisdomStore {
 public:
  void put(const std::string& key, const Int8GemmBlocking& blocking);
  std::optional<Int8GemmBlocking> get(const std::string& key) const;
  std::size_t size() const { return entries_.size(); }

  /// Serializes to "key = n_blk c_blk k_blk row col nt pf" lines.
  std::string serialize() const;
  /// Parses serialized text; malformed lines are skipped.
  static WisdomStore deserialize(const std::string& text);

  bool save(const std::string& path) const;
  static std::optional<WisdomStore> load(const std::string& path);

 private:
  std::map<std::string, Int8GemmBlocking> entries_;
};

}  // namespace lowino

// Wisdom store: persisted auto-tuning results (Section 4.3.4: "the optimal
// parameters are saved into a wisdom file and used in inference").
// Plain-text key/value format, no external dependencies.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "gemm/int8_gemm.h"
#include "lowino/engine_config.h"

namespace lowino {

/// One tuned configuration: the winning GEMM blocking plus the execution
/// mode (staged/fused) the tuner measured as faster. Mode kAuto means the
/// entry predates mode tuning (a v1 wisdom line) — inference falls back to
/// the workspace-threshold heuristic.
struct WisdomEntry {
  Int8GemmBlocking blocking;
  ExecutionMode mode = ExecutionMode::kAuto;
  /// Mode shoot-out record (v3 lines; all-zero on v1/v2 entries): the
  /// measured full-pipeline seconds per mode and the winning mode's in-situ
  /// per-stage breakdown from the execution profiler — the entry documents
  /// *why* its mode won, not just which.
  double staged_seconds = 0.0;
  double fused_seconds = 0.0;
  StageTimes stages;
};

class WisdomStore {
 public:
  void put(const std::string& key, const Int8GemmBlocking& blocking,
           ExecutionMode mode = ExecutionMode::kAuto);
  void put(const std::string& key, const WisdomEntry& entry);
  std::optional<Int8GemmBlocking> get(const std::string& key) const;
  /// The tuned execution mode (kAuto for v1 entries / unknown keys).
  ExecutionMode get_mode(const std::string& key) const;
  std::optional<WisdomEntry> get_entry(const std::string& key) const;
  std::size_t size() const { return entries_.size(); }

  /// Free-form string entries, serialized as "key = str <value>" lines in the
  /// same file. Used by the serving planner to remember per-layer engine
  /// decisions ("plan-engine <desc> -> lowino_f4") next to the GEMM blockings
  /// they imply. Values must be single-line (no '\n'); a value containing a
  /// newline is rejected (put_string returns false, nothing stored).
  bool put_string(const std::string& key, const std::string& value);
  std::optional<std::string> get_string(const std::string& key) const;
  std::size_t string_size() const { return strings_.size(); }

  /// Serializes to "key = n_blk c_blk k_blk row col nt pf mode staged_s
  /// fused_s it_s gemm_s ot_s" lines (v3; the five trailing seconds are the
  /// mode shoot-out record).
  std::string serialize() const;
  /// Parses serialized text. Malformed lines are skipped whole: truncated
  /// value lists, non-positive / wrapped-negative / absurdly large blocking
  /// values, non-boolean nt/pf flags, unknown mode tokens, and blockings that
  /// fail Int8GemmBlocking::valid() are all rejected (a corrupt wisdom file
  /// degrades to defaults, never to garbage parameters). v1 lines (without
  /// the trailing mode token) load with mode = kAuto; v2 lines (without the
  /// timing tail) load with a zero shoot-out record; a tail that is present
  /// but incomplete, non-numeric or negative rejects the line.
  static WisdomStore deserialize(const std::string& text);

  bool save(const std::string& path) const;
  static std::optional<WisdomStore> load(const std::string& path);

 private:
  std::map<std::string, WisdomEntry> entries_;
  std::map<std::string, std::string> strings_;
};

}  // namespace lowino

// Measured auto-tuning of the GEMM blocking parameters (Section 4.3.4).
//
// The tuner times the batched INT8 GEMM of a concrete layer/tile-size pair
// for every candidate blocking (random operand data — timing does not depend
// on values) and records the winner in a wisdom store. Like the paper, tuning
// happens ahead of time; inference reads the wisdom file.
#pragma once

#include <cstddef>
#include <string>

#include "gemm/int8_gemm.h"
#include "lowino/engine_config.h"
#include "tensor/conv_desc.h"
#include "tuning/wisdom.h"

namespace lowino {

class ThreadPool;

struct TuneOptions {
  double seconds_per_candidate = 0.05;  ///< measurement budget per candidate
  int min_reps = 2;
  std::size_t max_candidates = 0;  ///< 0 = no limit
};

struct TuneResult {
  Int8GemmBlocking best;
  double best_seconds = 0.0;
  double default_seconds = 0.0;  ///< time of the default blocking
  std::size_t evaluated = 0;
  /// Staged-vs-fused shoot-out with the winning blocking: full-pipeline
  /// execute times and the faster mode. Recorded into wisdom so inference
  /// replays the measured winner instead of the kAuto heuristic.
  ExecutionMode best_mode = ExecutionMode::kStaged;
  double staged_seconds = 0.0;
  double fused_seconds = 0.0;
  /// In-situ per-stage breakdown of one instrumented execute per mode
  /// (profiler spans, so the fused split is real, not inferred). Persisted
  /// into wisdom v3 lines so an entry explains *why* its mode won.
  StageTimes staged_stages;
  StageTimes fused_stages;
};

/// Tunes the batched GEMM of F(m x m, r x r) on `desc`. Deterministic given
/// machine state; wall-clock measured.
TuneResult tune_layer(const ConvDesc& desc, std::size_t m, ThreadPool* pool = nullptr,
                      const TuneOptions& options = {});

/// Wisdom key for a (layer, tile size) pair.
std::string wisdom_key(const ConvDesc& desc, std::size_t m);

}  // namespace lowino

// Automatic algorithm selection (the paper's future work #1, Section 7:
// "explore an automatic mechanism to select the optimal algorithm for a
// convolutional layer among direct, Winograd, and others").
//
// AutoConv measures the INT8 candidates — direct, LoWino F(2x2,3x3) and
// LoWino F(4x4,3x3) — on the actual layer shape during a one-time selection
// phase (filters and calibration are shared), picks the fastest, and runs it
// thereafter. Selection results can be persisted in the wisdom store next to
// the blocking parameters.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "direct/direct_int8.h"
#include "lowino/convolution.h"
#include "tuning/wisdom.h"

namespace lowino {

enum class ConvAlgorithm { kInt8Direct, kLoWinoF2, kLoWinoF4 };

const char* algorithm_name(ConvAlgorithm a);

struct AutoConvOptions {
  double seconds_per_candidate = 0.05;
  /// Pre-selected algorithm (skips measurement); parsed from wisdom.
  std::optional<ConvAlgorithm> forced;
};

class AutoConv {
 public:
  explicit AutoConv(const ConvDesc& desc, const AutoConvOptions& options = {});

  /// Same lifecycle as the other engines.
  void calibrate(std::span<const float> input_nchw);
  void finalize_calibration();
  void set_filters(std::span<const float> weights, std::span<const float> bias = {});

  /// First call runs the selection measurement (unless forced); later calls
  /// use the chosen algorithm.
  void execute_nchw(std::span<const float> input, std::span<float> output,
                    ThreadPool* pool = nullptr);

  bool selected() const { return selected_; }
  ConvAlgorithm algorithm() const { return algorithm_; }

  /// Wisdom integration: "algo <name>" entries keyed like the blocking tuner.
  static std::string wisdom_algo_key(const ConvDesc& desc);

 private:
  void ensure_selected(std::span<const float> input, std::span<float> output,
                       ThreadPool* pool);

  ConvDesc desc_;
  AutoConvOptions options_;
  Int8DirectConv direct_;
  LoWinoConvolution f2_;
  LoWinoConvolution f4_;
  bool selected_ = false;
  ConvAlgorithm algorithm_ = ConvAlgorithm::kLoWinoF4;
};

}  // namespace lowino

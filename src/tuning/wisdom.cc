#include "tuning/wisdom.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string_view>

#include "common/fault.h"

namespace lowino {

void WisdomStore::put(const std::string& key, const Int8GemmBlocking& blocking,
                      ExecutionMode mode) {
  WisdomEntry e;
  e.blocking = blocking;
  e.mode = mode;
  entries_[key] = e;
}

void WisdomStore::put(const std::string& key, const WisdomEntry& entry) {
  entries_[key] = entry;
}

std::optional<Int8GemmBlocking> WisdomStore::get(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second.blocking;
}

ExecutionMode WisdomStore::get_mode(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return ExecutionMode::kAuto;
  return it->second.mode;
}

std::optional<WisdomEntry> WisdomStore::get_entry(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

bool WisdomStore::put_string(const std::string& key, const std::string& value) {
  if (key.find('\n') != std::string::npos || value.find('\n') != std::string::npos) {
    return false;
  }
  strings_[key] = value;
  return true;
}

std::optional<std::string> WisdomStore::get_string(const std::string& key) const {
  const auto it = strings_.find(key);
  if (it == strings_.end()) return std::nullopt;
  return it->second;
}

std::string WisdomStore::serialize() const {
  std::ostringstream os;
  os << "# lowino wisdom v3: key = n_blk c_blk k_blk row_blk col_blk nt prefetch mode"
        " staged_s fused_s it_s gemm_s ot_s\n";
  os.precision(9);
  for (const auto& [key, e] : entries_) {
    const Int8GemmBlocking& b = e.blocking;
    os << key << " = " << b.n_blk << ' ' << b.c_blk << ' ' << b.k_blk << ' ' << b.row_blk
       << ' ' << b.col_blk << ' ' << (b.nt_store ? 1 : 0) << ' ' << (b.prefetch ? 1 : 0)
       << ' ' << execution_mode_name(e.mode) << ' ' << e.staged_seconds << ' '
       << e.fused_seconds << ' ' << e.stages.input_transform << ' ' << e.stages.gemm << ' '
       << e.stages.output_transform << '\n';
  }
  // String entries ride in the same file, tagged "str" where a blocking line
  // carries its first (always numeric) value — no ambiguity when parsing.
  for (const auto& [key, value] : strings_) {
    os << key << " = str " << value << '\n';
  }
  return os.str();
}

namespace {

/// Ceiling on any blocking dimension a wisdom file may carry. Far above what
/// the search space ever emits (c_blk * k_blk <= 512^2 already), low enough
/// to reject wrapped negatives and corrupt-file garbage before they reach
/// workspace sizing arithmetic.
constexpr long long kMaxBlockingValue = 1 << 20;

/// Reads one strictly positive bounded integer. istream extraction into an
/// unsigned type silently wraps negative input, so parse through a signed
/// intermediate and range-check explicitly.
bool read_blocking_value(std::istringstream& vals, long long max, std::size_t& out) {
  long long v = 0;
  if (!(vals >> v) || v <= 0 || v > max) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

/// Parses one timing value of the v3 tail: a finite non-negative double with
/// nothing trailing. strtod (not istream extraction) so "1.5x" is rejected
/// rather than read as 1.5.
bool parse_seconds(const std::string& token, double& out) {
  if (token.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (!std::isfinite(v) || v < 0.0) return false;
  out = v;
  return true;
}

}  // namespace

WisdomStore WisdomStore::deserialize(const std::string& text) {
  WisdomStore store;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find(" = ");
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    // "key = str <value>" marks a free-form string entry; the value is the
    // rest of the line verbatim (it may itself contain spaces and '=').
    constexpr std::string_view kStrTag = "str ";
    const std::string payload = line.substr(eq + 3);
    if (payload.size() >= kStrTag.size() &&
        std::string_view(payload).substr(0, kStrTag.size()) == kStrTag) {
      store.strings_[key] = payload.substr(kStrTag.size());
      continue;
    }
    std::istringstream vals(payload);
    WisdomEntry e;
    Int8GemmBlocking& b = e.blocking;
    std::size_t row = 0, col = 0;
    long long nt = 0, pf = 0;
    // Every field must be present, strictly positive and sane; a corrupt or
    // truncated line is rejected whole rather than repaired.
    if (!read_blocking_value(vals, kMaxBlockingValue, b.n_blk) ||
        !read_blocking_value(vals, kMaxBlockingValue, b.c_blk) ||
        !read_blocking_value(vals, kMaxBlockingValue, b.k_blk) ||
        !read_blocking_value(vals, /*max=*/64, row) ||
        !read_blocking_value(vals, /*max=*/64, col) || !(vals >> nt) || !(vals >> pf) ||
        (nt != 0 && nt != 1) || (pf != 0 && pf != 1)) {
      continue;
    }
    b.row_blk = static_cast<int>(row);
    b.col_blk = static_cast<int>(col);
    b.nt_store = nt != 0;
    b.prefetch = pf != 0;
    // Optional v2 trailing mode token; absent (v1) => kAuto, but a token that
    // is present yet unrecognized marks a corrupt/newer file — reject the
    // line instead of silently running with a default mode.
    std::string mode_token;
    if (vals >> mode_token && !parse_execution_mode(mode_token.c_str(), e.mode)) {
      continue;
    }
    // Optional v3 timing tail: staged_s fused_s it_s gemm_s ot_s. All five or
    // none — a truncated or garbled tail rejects the line (it signals file
    // corruption, and half a shoot-out record would mislead more than no
    // record).
    std::string tail_token;
    std::size_t tail_count = 0;
    double tail[5] = {0, 0, 0, 0, 0};
    bool tail_bad = false;
    while (vals >> tail_token) {
      if (tail_count >= 5 || !parse_seconds(tail_token, tail[tail_count])) {
        tail_bad = true;
        break;
      }
      ++tail_count;
    }
    if (tail_bad || (tail_count != 0 && tail_count != 5)) continue;
    if (tail_count == 5) {
      e.staged_seconds = tail[0];
      e.fused_seconds = tail[1];
      e.stages.input_transform = tail[2];
      e.stages.gemm = tail[3];
      e.stages.output_transform = tail[4];
    }
    if (b.valid()) store.entries_[key] = e;
  }
  return store;
}

bool WisdomStore::save(const std::string& path) const {
  // Crash-safe: temp-file write + rename (the SessionPlan::save discipline).
  // A failure or injected fault between the two leaves the previous wisdom
  // file byte-identical on disk.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << serialize();
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  try {
    maybe_inject_fault(FaultSite::kPlanLoad);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<WisdomStore> WisdomStore::load(const std::string& path) {
  maybe_inject_fault(FaultSite::kPlanLoad);
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize(buf.str());
}

}  // namespace lowino

#include "tuning/search_space.h"

#include <algorithm>

#include "lowino/convolution.h"

namespace lowino {

std::vector<Int8GemmBlocking> enumerate_blockings(std::size_t padded_c,
                                                  std::size_t padded_k) {
  static constexpr std::pair<int, int> kRegTiles[] = {
      {6, 4}, {4, 6}, {8, 3}, {12, 2}, {14, 2}, {4, 4}, {2, 8}, {16, 1}};
  static constexpr std::size_t kNblk[] = {48, 96, 168, 336};
  static constexpr std::size_t kCblk[] = {64, 128, 256, 512};
  static constexpr std::size_t kKblk[] = {32, 64, 128, 256};

  std::vector<Int8GemmBlocking> out;
  for (const auto& [row, col] : kRegTiles) {
    for (std::size_t nb : kNblk) {
      for (std::size_t cb : kCblk) {
        if (cb > padded_c) continue;
        for (std::size_t kb : kKblk) {
          if (kb > padded_k) continue;
          Int8GemmBlocking b;
          b.row_blk = row;
          b.col_blk = col;
          b.n_blk = round_up_multiple(nb, static_cast<std::size_t>(row));
          b.c_blk = cb;
          b.k_blk = kb;
          if (b.k_blk % (static_cast<std::size_t>(col) * 16) != 0) continue;
          if (!b.valid()) continue;
          if (std::find_if(out.begin(), out.end(), [&](const Int8GemmBlocking& o) {
                return o.n_blk == b.n_blk && o.c_blk == b.c_blk && o.k_blk == b.k_blk &&
                       o.row_blk == b.row_blk && o.col_blk == b.col_blk;
              }) == out.end()) {
            out.push_back(b);
          }
        }
      }
    }
  }
  return out;
}

}  // namespace lowino

// Search space for the GEMM blocking auto-tuner (Section 4.3.4).
//
// Candidates obey the paper's constraints: register budget
// row_blk * col_blk + col_blk < 31 (one auxiliary broadcast register),
// cache bound Cblk * Kblk <= 512^2, divisibility of Nblk/Kblk by the register
// tile, and clamping to the layer's padded channel counts.
#pragma once

#include <cstddef>
#include <vector>

#include "gemm/int8_gemm.h"

namespace lowino {

/// Enumerates valid, de-duplicated blocking candidates for a layer with
/// `padded_c` input and `padded_k` output channels.
std::vector<Int8GemmBlocking> enumerate_blockings(std::size_t padded_c, std::size_t padded_k);

}  // namespace lowino

// Low-overhead per-stage execution profiler with trace export.
//
// Fixed stage taxonomy (the pipeline stages behind the paper's Figure 10
// breakdown plus the offline phases), recorded through RAII ProfileSpan
// objects into per-thread event buffers. Cost model:
//   * disabled (the default): one relaxed atomic load and a branch per span —
//     no clock read, no store, no allocation;
//   * enabled: two steady-clock reads plus a fixed-slot buffer write per
//     span. A thread's buffer is allocated once on its first span and reused
//     forever; the recording path never takes a lock or allocates.
//
// Per-stage totals are accumulated incrementally and stay exact even when a
// thread's event ring fills (newest events are then dropped from the *trace*
// only, counted in profiler_dropped_events()).
//
// Two sinks:
//   * profiler_summary(): aggregated per-stage / per-thread text table,
//   * profiler_write_chrome_trace(): chrome://tracing-compatible JSON
//     ("trace event format", complete "X" events + thread-name metadata).
//
// Environment knobs (read at process start / process exit):
//   LOWINO_PROFILE=1          enable recording; print the summary to stderr
//                             at exit
//   LOWINO_TRACE_JSON=<path>  additionally write the JSON trace at exit
//
// Nesting: spans of *different* stages nest freely (each is credited its
// inclusive time). A span opened inside a same-stage span records a trace
// event but is excluded from the stage totals, so instrumenting both a caller
// and its callee never double-counts.
//
// Concurrency: profiler_stage_totals(), profiler_thread_count() and
// profiler_dropped_events() are safe to call while spans are open on other
// threads (all shared counters are atomics) — they just don't see spans still
// in flight. profiler_reset(), profiler_summary() and the trace writer want a
// quiescent point (no open spans) for *accurate* results; call them after
// execute() returns — the ThreadPool's fork-join barrier provides the
// happens-before edge.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace lowino {

/// Fixed stage taxonomy. Every instrumented span belongs to exactly one
/// stage; subsystems share the same names so staged and fused executions of
/// the same convolution produce directly comparable breakdowns.
enum class ProfileStage : std::uint8_t {
  kFilterPack = 0,  ///< offline filter transform + quantization + packing
  kInputTransform,  ///< input transform + quantization (incl. the V scatter)
  kGemm,            ///< batched INT8 GEMM (incl. the Z scatter)
  kOutputTransform, ///< de-quant + output transform incl. any fused epilogue
  kCalibration,     ///< Winograd-domain statistics collection
  kTunerTrial,      ///< one auto-tuner candidate measurement
  kServe,           ///< one serving op inside InferenceSession::run
  kPostOps,         ///< a standalone (unfused) element-wise ReLU/sum pass
};
inline constexpr std::size_t kProfileStageCount = 8;

const char* profile_stage_name(ProfileStage stage);

namespace profile_detail {

/// Constant-initialized so a ProfileSpan constructed during static init (or
/// before the env is applied) safely reads `false`.
inline std::atomic<bool> g_profiler_enabled{false};

struct ThreadLog;
ThreadLog* acquire_thread_log();
std::uint64_t now_ns();
/// Owner-thread bookkeeping at span open: depth and same-stage nesting.
void span_open(ThreadLog* log, ProfileStage stage, bool& nested_same,
               std::uint16_t& depth);
/// Records the finished span (reads the clock for the end timestamp).
void span_close(ThreadLog* log, ProfileStage stage, std::uint64_t start_ns,
                std::uint16_t depth, bool nested_same);

}  // namespace profile_detail

/// True while spans are being recorded. This relaxed load is the entire
/// disabled-mode cost of a ProfileSpan.
inline bool profiler_enabled() {
  return profile_detail::g_profiler_enabled.load(std::memory_order_relaxed);
}

/// Programmatic on/off (the LOWINO_PROFILE env sets the initial state).
/// Toggling while spans are open is safe: a span records iff it observed
/// `enabled` at construction.
void profiler_set_enabled(bool enabled);

/// RAII scoped span. Construct with the stage being entered; destruction
/// records the event on the calling thread's log. Zero allocation after a
/// thread's first span; single-branch no-op while profiling is disabled.
class ProfileSpan {
 public:
  explicit ProfileSpan(ProfileStage stage) {
    if (!profiler_enabled()) return;
    log_ = profile_detail::acquire_thread_log();
    stage_ = stage;
    profile_detail::span_open(log_, stage, nested_same_, depth_);
    start_ns_ = profile_detail::now_ns();
  }
  ~ProfileSpan() {
    if (log_ != nullptr) {
      profile_detail::span_close(log_, stage_, start_ns_, depth_, nested_same_);
    }
  }
  ProfileSpan(const ProfileSpan&) = delete;
  ProfileSpan& operator=(const ProfileSpan&) = delete;

 private:
  profile_detail::ThreadLog* log_ = nullptr;  ///< null => span not recorded
  ProfileStage stage_ = ProfileStage::kFilterPack;
  std::uint16_t depth_ = 0;
  bool nested_same_ = false;
  std::uint64_t start_ns_ = 0;
};

/// Names the calling thread in summaries and traces (truncated to 31 chars).
/// May be called before any span — and before profiling is even enabled —
/// without triggering log registration; the name is applied lazily.
void profiler_set_thread_name(const char* name);

struct ProfileStageTotals {
  double seconds = 0.0;      ///< inclusive busy time summed across threads
  std::uint64_t spans = 0;   ///< recorded spans (same-stage-nested excluded)
};

/// Per-stage totals summed over every thread that ever recorded a span.
/// Exact regardless of ring occupancy. Index with ProfileStage casts.
std::array<ProfileStageTotals, kProfileStageCount> profiler_stage_totals();

/// Threads that have recorded at least one span since process start (logs are
/// never unregistered — a monotonically growing count).
std::size_t profiler_thread_count();

/// Trace events lost to full rings since the last reset (stage totals are
/// unaffected by drops).
std::uint64_t profiler_dropped_events();

/// Clears all recorded events, totals and drop counts. Must be called from a
/// quiescent point (no open spans on any thread).
void profiler_reset();

/// Aggregated per-stage table plus a per-thread busy-time breakdown.
std::string profiler_summary();

/// Writes the chrome://tracing / Perfetto "trace event format" JSON file.
/// Returns false when the file cannot be opened/written.
bool profiler_write_chrome_trace(const std::string& path);

}  // namespace lowino

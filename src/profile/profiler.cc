#include "profile/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/env.h"

namespace lowino {

const char* profile_stage_name(ProfileStage stage) {
  switch (stage) {
    case ProfileStage::kFilterPack: return "filter pack";
    case ProfileStage::kInputTransform: return "input transform";
    case ProfileStage::kGemm: return "int8 gemm";
    case ProfileStage::kOutputTransform: return "output transform";
    case ProfileStage::kCalibration: return "calibration";
    case ProfileStage::kTunerTrial: return "tuner trial";
    case ProfileStage::kServe: return "serve op";
    case ProfileStage::kPostOps: return "post-op pass";
  }
  return "?";
}

namespace profile_detail {
namespace {

/// Events kept per thread before the ring saturates (drop-newest). 16 Ki
/// events x 24 B = 384 KiB per thread — enough for several fused executions
/// of the largest Table 2 layer; totals stay exact past the cap.
constexpr std::size_t kRingCapacity = std::size_t{1} << 14;

constexpr std::size_t kNameCapacity = 32;

}  // namespace

struct Event {
  std::uint64_t start_ns;
  std::uint64_t end_ns;
  ProfileStage stage;
  std::uint8_t depth;
  bool nested_same;
};

struct ThreadLog {
  // The ring lives in an AlignedBuffer so the repository's allocation-counter
  // test harness (common/aligned_buffer.h) observes profiler allocations too.
  AlignedBuffer<Event> events{kRingCapacity};
  /// Published event count; release store pairs with the collectors' acquire
  /// load so a drained event's fields are fully visible.
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> dropped{0};
  std::array<std::atomic<std::uint64_t>, kProfileStageCount> total_ns{};
  std::array<std::atomic<std::uint64_t>, kProfileStageCount> span_count{};
  // Owner-thread-only state (never read by collectors):
  std::uint16_t depth = 0;
  std::array<std::uint16_t, kProfileStageCount> open_count{};
  char name[kNameCapacity] = {};
  std::uint32_t index = 0;  ///< registration order == trace tid
};

namespace {

struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadLog>> logs;
  std::uint64_t epoch_ns;

  Registry() : epoch_ns(now_ns()) {
    if (config_flag("LOWINO_PROFILE")) {
      g_profiler_enabled.store(true, std::memory_order_relaxed);
    }
  }
  // Env-gated end-of-process dump. Runs inside the singleton's own destructor
  // (not atexit) so it cannot outlive the registry; the env is re-read here
  // so tests that scoped-set LOWINO_PROFILE leave no output behind.
  ~Registry();
};

std::string summary_of(Registry& r);
bool write_chrome_trace_of(Registry& r, const std::string& path);

Registry& registry() {
  static Registry r;
  return r;
}

// Touch the registry during static initialization: the LOWINO_PROFILE env
// read lives in the Registry constructor, and without this a program that
// never calls a profiler API explicitly would leave the flag false forever
// (spans only construct the registry once the flag is already true).
const bool g_registry_static_init = (registry(), true);

Registry::~Registry() {
  if (config_flag("LOWINO_PROFILE")) {
    const std::string s = summary_of(*this);
    std::fputs(s.c_str(), stderr);
    const std::string trace_path = config_string("LOWINO_TRACE_JSON", "");
    if (!trace_path.empty()) {
      if (write_chrome_trace_of(*this, trace_path)) {
        std::fprintf(stderr, "lowino profile: trace written to %s\n", trace_path.c_str());
      } else {
        std::fprintf(stderr, "lowino profile: FAILED to write trace to %s\n",
                     trace_path.c_str());
      }
    }
  }
}

thread_local ThreadLog* t_log = nullptr;
thread_local char t_pending_name[kNameCapacity] = {};

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ThreadLog* acquire_thread_log() {
  if (t_log == nullptr) {
    auto log = std::make_unique<ThreadLog>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    log->index = static_cast<std::uint32_t>(r.logs.size());
    if (t_pending_name[0] != '\0') {
      std::memcpy(log->name, t_pending_name, kNameCapacity);
    } else {
      std::snprintf(log->name, kNameCapacity, "thread-%u", log->index);
    }
    t_log = log.get();
    r.logs.push_back(std::move(log));
  }
  return t_log;
}

void span_open(ThreadLog* log, ProfileStage stage, bool& nested_same,
               std::uint16_t& depth) {
  const auto s = static_cast<std::size_t>(stage);
  nested_same = log->open_count[s] != 0;
  ++log->open_count[s];
  depth = log->depth++;
}

void span_close(ThreadLog* log, ProfileStage stage, std::uint64_t start_ns,
                std::uint16_t depth, bool nested_same) {
  const std::uint64_t end_ns = now_ns();
  const auto s = static_cast<std::size_t>(stage);
  --log->open_count[s];
  --log->depth;
  if (!nested_same) {
    log->total_ns[s].fetch_add(end_ns - start_ns, std::memory_order_relaxed);
    log->span_count[s].fetch_add(1, std::memory_order_relaxed);
  }
  const std::uint64_t n = log->count.load(std::memory_order_relaxed);
  if (n < kRingCapacity) {
    Event& e = log->events[n];
    e.start_ns = start_ns;
    e.end_ns = end_ns;
    e.stage = stage;
    e.depth = static_cast<std::uint8_t>(std::min<std::uint16_t>(depth, 255));
    e.nested_same = nested_same;
    log->count.store(n + 1, std::memory_order_release);
  } else {
    log->dropped.fetch_add(1, std::memory_order_relaxed);
  }
}

namespace {

std::string summary_of(Registry& r) {
  std::array<std::uint64_t, kProfileStageCount> ns{};
  std::array<std::uint64_t, kProfileStageCount> spans{};
  std::uint64_t dropped = 0;
  std::string out;
  char buf[160];
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& log : r.logs) {
    for (std::size_t s = 0; s < kProfileStageCount; ++s) {
      ns[s] += log->total_ns[s].load(std::memory_order_relaxed);
      spans[s] += log->span_count[s].load(std::memory_order_relaxed);
    }
    dropped += log->dropped.load(std::memory_order_relaxed);
  }
  out += "lowino profile summary (" + std::to_string(r.logs.size()) + " thread" +
         (r.logs.size() == 1 ? "" : "s") + ")\n";
  std::snprintf(buf, sizeof(buf), "  %-18s %12s %10s\n", "stage", "busy ms", "spans");
  out += buf;
  for (std::size_t s = 0; s < kProfileStageCount; ++s) {
    if (spans[s] == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-18s %12.3f %10llu\n",
                  profile_stage_name(static_cast<ProfileStage>(s)),
                  static_cast<double>(ns[s]) * 1e-6,
                  static_cast<unsigned long long>(spans[s]));
    out += buf;
  }
  for (const auto& log : r.logs) {
    std::uint64_t thread_ns = 0, thread_spans = 0;
    for (std::size_t s = 0; s < kProfileStageCount; ++s) {
      thread_ns += log->total_ns[s].load(std::memory_order_relaxed);
      thread_spans += log->span_count[s].load(std::memory_order_relaxed);
    }
    if (thread_spans == 0) continue;
    std::snprintf(buf, sizeof(buf), "  [%s] busy %.3f ms over %llu spans\n", log->name,
                  static_cast<double>(thread_ns) * 1e-6,
                  static_cast<unsigned long long>(thread_spans));
    out += buf;
  }
  if (dropped != 0) {
    std::snprintf(buf, sizeof(buf),
                  "  (%llu trace events dropped; totals remain exact)\n",
                  static_cast<unsigned long long>(dropped));
    out += buf;
  }
  return out;
}

/// Minimal JSON string escaping (names are ASCII identifiers we control, but
/// stay safe against anything a caller passes to profiler_set_thread_name).
void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
}

bool write_chrome_trace_of(Registry& r, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::string out;
  out.reserve(1 << 16);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[192];
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& log : r.logs) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":";
    out += std::to_string(log->index);
    out += ",\"args\":{\"name\":\"";
    append_json_escaped(out, log->name);
    out += "\"}}";
    const std::uint64_t n =
        std::min<std::uint64_t>(log->count.load(std::memory_order_acquire), kRingCapacity);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Event& e = log->events[i];
      // Timestamps are microseconds relative to the registry epoch (chrome
      // trace convention); durations keep nanosecond resolution as fractions.
      std::snprintf(buf, sizeof(buf),
                    ",{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"lowino\",\"pid\":1,"
                    "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f}",
                    profile_stage_name(e.stage), log->index,
                    static_cast<double>(e.start_ns - r.epoch_ns) * 1e-3,
                    static_cast<double>(e.end_ns - e.start_ns) * 1e-3);
      out += buf;
      if (out.size() >= (1u << 16)) {
        if (std::fwrite(out.data(), 1, out.size(), f) != out.size()) {
          std::fclose(f);
          return false;
        }
        out.clear();
      }
    }
  }
  out += "]}\n";
  const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace
}  // namespace profile_detail

void profiler_set_enabled(bool enabled) {
  // Touch the registry first so its lifetime (and exit-time dump) encloses
  // every log created while enabled.
  profile_detail::registry();
  profile_detail::g_profiler_enabled.store(enabled, std::memory_order_relaxed);
}

void profiler_set_thread_name(const char* name) {
  using namespace profile_detail;
  std::strncpy(t_pending_name, name, kNameCapacity - 1);
  t_pending_name[kNameCapacity - 1] = '\0';
  if (t_log != nullptr) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::memcpy(t_log->name, t_pending_name, kNameCapacity);
  }
}

std::array<ProfileStageTotals, kProfileStageCount> profiler_stage_totals() {
  using namespace profile_detail;
  std::array<ProfileStageTotals, kProfileStageCount> totals{};
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& log : r.logs) {
    for (std::size_t s = 0; s < kProfileStageCount; ++s) {
      totals[s].seconds +=
          static_cast<double>(log->total_ns[s].load(std::memory_order_relaxed)) * 1e-9;
      totals[s].spans += log->span_count[s].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

std::size_t profiler_thread_count() {
  using namespace profile_detail;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return r.logs.size();
}

std::uint64_t profiler_dropped_events() {
  using namespace profile_detail;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t dropped = 0;
  for (const auto& log : r.logs) {
    dropped += log->dropped.load(std::memory_order_relaxed);
  }
  return dropped;
}

void profiler_reset() {
  using namespace profile_detail;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& log : r.logs) {
    log->count.store(0, std::memory_order_relaxed);
    log->dropped.store(0, std::memory_order_relaxed);
    for (std::size_t s = 0; s < kProfileStageCount; ++s) {
      log->total_ns[s].store(0, std::memory_order_relaxed);
      log->span_count[s].store(0, std::memory_order_relaxed);
    }
  }
}

std::string profiler_summary() { return profile_detail::summary_of(profile_detail::registry()); }

bool profiler_write_chrome_trace(const std::string& path) {
  return profile_detail::write_chrome_trace_of(profile_detail::registry(), path);
}

}  // namespace lowino

#include "common/cpu_features.h"

#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define LOWINO_X86 1
#endif

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace lowino {
namespace {

CpuFeatures detect() {
  CpuFeatures f;
#ifdef LOWINO_X86
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  // Leaf 7 subleaf 0 carries the AVX-512 family bits.
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx512f = (ebx >> 16) & 1;
    f.avx512dq = (ebx >> 17) & 1;
    f.avx512bw = (ebx >> 30) & 1;
    f.avx512vl = (ebx >> 31) & 1;
    f.avx512vnni = (ecx >> 11) & 1;
  }
#endif
  return f;
}

const CpuFeatures* g_override = nullptr;

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures detected = detect();
  return g_override != nullptr ? *g_override : detected;
}

void override_cpu_features_for_test(const CpuFeatures* features) { g_override = features; }

std::size_t l2_cache_bytes() {
  static const std::size_t bytes = [] {
    constexpr std::size_t kFallback = 1u << 20;  // 1 MiB
#if defined(_SC_LEVEL2_CACHE_SIZE)
    const long v = sysconf(_SC_LEVEL2_CACHE_SIZE);
    if (v > 0) return static_cast<std::size_t>(v);
#endif
    return kFallback;
  }();
  return bytes;
}

}  // namespace lowino

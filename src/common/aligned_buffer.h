// 64-byte-aligned owning buffer.
//
// Every hot array in the engine (packed inputs, transformed tiles, GEMM panels)
// must start on a cache-line boundary so the AVX-512 kernels can use aligned
// loads/stores and non-temporal stores (which require 64B alignment).
#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <utility>

#include "common/fault.h"

namespace lowino {

inline constexpr std::size_t kCacheLineBytes = 64;

namespace detail {
inline std::atomic<std::uint64_t> g_aligned_buffer_allocs{0};
}  // namespace detail

/// Process-wide count of AlignedBuffer (re-)allocations. Tests snapshot this
/// around steady-state execute() calls to assert the hot path is
/// allocation-free.
inline std::uint64_t aligned_buffer_alloc_count() {
  return detail::g_aligned_buffer_allocs.load(std::memory_order_relaxed);
}

/// Rounds `n` up to the next multiple of `align` (which must be a power of two).
constexpr std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) & ~(align - 1);
}

/// Integer ceiling division.
constexpr std::size_t ceil_div(std::size_t n, std::size_t d) { return (n + d - 1) / d; }

/// Rounds `n` up to the next multiple of `m` (any m > 0, not just powers of two).
constexpr std::size_t round_up_multiple(std::size_t n, std::size_t m) {
  return ceil_div(n, m) * m;
}

/// Owning, cache-line-aligned, typed buffer. Move-only.
///
/// The allocation is always padded up to a whole number of cache lines so
/// vector kernels may safely load/store full 64B lines at the tail.
template <typename T>
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t count) { reset(count); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)), size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { release(); }

  /// Re-allocates for `count` elements; contents are uninitialized. A
  /// fault point (arena-alloc) sits on the grow path so allocation failure
  /// at plan/rebuild time is injectable; steady-state ensure() calls never
  /// reach it.
  void reset(std::size_t count) {
    maybe_inject_fault(FaultSite::kArenaAlloc);
    release();
    size_ = count;
    if (count == 0) return;
    const std::size_t bytes = round_up(count * sizeof(T), kCacheLineBytes);
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
    if (data_ == nullptr) throw std::bad_alloc();
    detail::g_aligned_buffer_allocs.fetch_add(1, std::memory_order_relaxed);
  }

  /// Re-allocates only if the current capacity is insufficient.
  void ensure(std::size_t count) {
    if (count > size_) reset(count);
  }

  void fill_zero() {
    if (size_ != 0) std::memset(data_, 0, round_up(size_ * sizeof(T), kCacheLineBytes));
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) {
    assert(i < size_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < size_);
    return data_[i];
  }

  std::span<T> span() { return {data_, size_}; }
  std::span<const T> span() const { return {data_, size_}; }

 private:
  void release() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace lowino

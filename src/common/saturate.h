// Saturating conversions used by the quantization pipeline (Eq. 4 of the paper).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace lowino {

/// Round-to-nearest (ties away from zero, matching std::lrintf-with-round
/// semantics used by the vector kernels' _mm512_cvtps_epi32 in round-nearest
/// mode would be ties-to-even; we standardize on nearest-even everywhere so
/// scalar and vector paths agree bit-exactly).
inline std::int32_t round_nearest_even(float v) {
  // std::nearbyint honors the current rounding mode, which is round-to-nearest-
  // even by default — the same mode _mm512_cvtps_epi32 uses.
  return static_cast<std::int32_t>(std::nearbyintf(v));
}

/// Saturating FP32 -> INT8 conversion: S_INT8 in Eq. 4.
inline std::int8_t saturate_cast_i8(float v) {
  const std::int32_t r = round_nearest_even(v);
  return static_cast<std::int8_t>(std::clamp(r, -128, 127));
}

/// Saturating FP32 -> UINT8 (used after the +128 compensation shift).
inline std::uint8_t saturate_cast_u8(float v) {
  const std::int32_t r = round_nearest_even(v);
  return static_cast<std::uint8_t>(std::clamp(r, 0, 255));
}

/// Saturating INT32 -> INT8.
inline std::int8_t saturate_i32_to_i8(std::int32_t v) {
  return static_cast<std::int8_t>(std::clamp(v, -128, 127));
}

/// Saturating INT32 -> INT16 (up-casting baseline).
inline std::int16_t saturate_i32_to_i16(std::int32_t v) {
  return static_cast<std::int16_t>(std::clamp(v, -32768, 32767));
}

}  // namespace lowino

// Runtime CPU feature detection (CPUID).
//
// All AVX-512 kernels in this library are dispatched through these flags so the
// binaries remain runnable (via scalar fallbacks) on machines without VNNI.
#pragma once

#include <cstddef>

namespace lowino {

struct CpuFeatures {
  bool avx512f = false;    ///< AVX-512 Foundation
  bool avx512bw = false;   ///< AVX-512 Byte & Word
  bool avx512vl = false;   ///< AVX-512 Vector Length extensions
  bool avx512dq = false;   ///< AVX-512 Doubleword & Quadword
  bool avx512vnni = false; ///< AVX-512 Vector Neural Network Instructions (vpdpbusd)

  /// True when the full instruction set used by the optimized kernels is present.
  bool has_vnni_kernels() const { return avx512f && avx512bw && avx512vl && avx512vnni; }
  /// True when the FP32 AVX-512 kernels can run.
  bool has_avx512_kernels() const { return avx512f && avx512bw && avx512vl; }
};

/// Detected features of the executing CPU (computed once, cached).
const CpuFeatures& cpu_features();

/// Overrides detection for testing ("force scalar paths"). Pass nullptr to restore.
void override_cpu_features_for_test(const CpuFeatures* features);

/// Best-effort per-core L2 data cache size in bytes (sysconf where available;
/// 1 MiB fallback — the Cascade Lake size the paper's blocking assumes).
/// Computed once, cached. Used by ExecutionMode::kAuto.
std::size_t l2_cache_bytes();

}  // namespace lowino

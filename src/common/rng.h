// Small deterministic RNG (xoshiro256**) for tests, benchmarks and the
// procedural dataset. Deterministic across platforms, unlike std::mt19937's
// distribution implementations.
#pragma once

#include <cmath>
#include <cstdint>

namespace lowino {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding, the recommended initializer for xoshiro.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  /// Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (one value per call; simple and adequate).
  float normal() {
    double u1 = next_double();
    double u2 = next_double();
    if (u1 < 1e-300) u1 = 1e-300;
    return static_cast<float>(std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t state_[4];
};

}  // namespace lowino

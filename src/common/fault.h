// Seeded fault injection for robustness testing.
//
// A *fault point* is a named place in the runtime where an injected failure
// is allowed to surface (as a thrown FaultInjectedError). Production code
// calls maybe_inject_fault(site) at those places; the fault-tolerance layer
// above (serve/server.h) is then tested against deterministic, reproducible
// failures instead of hand-mocked ones.
//
// Cost model (the profiler's discipline, src/profile/profiler.h): while no
// plan is armed — the default — a fault point is ONE relaxed atomic load and
// a branch. No clock, no counter update, no allocation. The serving
// zero-allocation steady-state tests run with fault points compiled in, so
// the disabled path stays honest.
//
// Arming a plan:
//   * Environment: LOWINO_FAULT="site:rate:seed[,site:rate:seed...]"
//     (read through RuntimeConfig at first use, e.g.
//     LOWINO_FAULT=engine-execute:0.01:42). Each triggered check at `site`
//     then fails independently with probability `rate`, decided by a
//     counter-indexed hash of `seed` — the k-th check at a site always makes
//     the same decision, whichever thread performs it.
//   * Programmatic: ScopedFaultPlan (RAII; restores the previous plan on
//     destruction) with fail_rate / fail_next / fail_calls arms. While any
//     plan is installed — even one with no arms — checks are counted, so
//     tests can measure how many times a site is crossed.
//
// Sites (fixed taxonomy, see fault_site_name):
//   session-run     top of InferenceSession::run
//   engine-execute  before each conv engine execution inside a session op
//   plan-load       SessionPlan / WisdomStore persistence (load, and save
//                   between temp-file write and rename — the crash window)
//   arena-alloc     AlignedBuffer (re-)allocation (compile/rebuild time)
//   worker-start    BatchingServer worker session build/rebuild
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace lowino {

enum class FaultSite : std::uint8_t {
  kSessionRun = 0,
  kEngineExecute,
  kPlanLoad,
  kArenaAlloc,
  kWorkerStart,
};
inline constexpr std::size_t kFaultSiteCount = 5;

/// Stable spec/display name ("session-run", "engine-execute", ...).
const char* fault_site_name(FaultSite site);
std::optional<FaultSite> fault_site_from_name(std::string_view name);

/// The exception every injected fault throws. Distinguishable from genuine
/// runtime errors so tests can assert the failure they caused is the failure
/// they observed.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(FaultSite site);
  FaultSite site() const { return site_; }

 private:
  FaultSite site_;
};

namespace fault_detail {
/// Constant-initialized: a fault point crossed during static init safely
/// reads `false`.
inline std::atomic<bool> g_fault_enabled{false};
/// Out-of-line slow path: counts the check and throws if the armed plan says
/// this call fails.
void check_and_throw(FaultSite site);
}  // namespace fault_detail

/// True while a fault plan is armed. This relaxed load is the entire
/// disabled-mode cost of a fault point.
inline bool fault_injection_enabled() {
  return fault_detail::g_fault_enabled.load(std::memory_order_relaxed);
}

/// The fault point. Throws FaultInjectedError when the armed plan selects
/// this call; single-branch no-op while no plan is armed.
inline void maybe_inject_fault(FaultSite site) {
  if (!fault_injection_enabled()) return;
  fault_detail::check_and_throw(site);
}

/// Checks observed / faults thrown at `site` since the current plan was
/// armed (both zero while disabled — the disabled path must not count).
std::uint64_t fault_checked_count(FaultSite site);
std::uint64_t fault_injected_count(FaultSite site);

/// Parses a LOWINO_FAULT spec ("site:rate:seed[,...]"; rate in [0,1]).
/// Returns false (and arms nothing) on any malformed field — a typo must not
/// silently run fault-free.
bool fault_spec_valid(std::string_view spec);

/// Installs the process-wide plan described by `spec` (empty spec: disarm).
/// Returns false and leaves the previous plan armed when the spec is
/// malformed. Not meant for the hot path; callers are the env bootstrap,
/// benches and tests.
bool fault_arm_spec(std::string_view spec);

/// Disarms fault injection entirely (checks stop counting).
void fault_disarm();

/// Applies the LOWINO_FAULT knob (via RuntimeConfig, so ScopedRuntimeOverride
/// works). Called lazily by the serving layer's entry points; idempotent and
/// cheap after the first call. Returns fault_injection_enabled().
bool fault_apply_env();

/// RAII fault plan: installs an empty plan on construction (enabling check
/// counting), arms sites via the fail_* calls, and restores the previously
/// installed plan on destruction. Plans are process-wide; construct from one
/// thread at a time (checks themselves are thread-safe).
class ScopedFaultPlan {
 public:
  ScopedFaultPlan();
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  /// Every check at `site` fails independently with probability `rate`; the
  /// decision for the k-th check is a pure function of (seed, site, k).
  void fail_rate(FaultSite site, double rate, std::uint64_t seed);

  /// The next `n` checks at `site` all fail; later checks pass.
  void fail_next(FaultSite site, std::uint64_t n = 1);

  /// Checks at `site` whose 0-based index (counted from plan arming) appears
  /// in `indices` fail; all others pass.
  void fail_calls(FaultSite site, std::initializer_list<std::uint64_t> indices);
};

}  // namespace lowino

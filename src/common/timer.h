// Wall-clock timing and simple summary statistics for the benchmark harness.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <vector>

namespace lowino {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void restart() { start_ = Clock::now(); }
  /// Seconds elapsed since construction / last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

struct TimingStats {
  double mean = 0.0;
  double median = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
  std::size_t samples = 0;
};

inline TimingStats summarize(std::vector<double> samples) {
  TimingStats s;
  s.samples = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.median = samples[samples.size() / 2];
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1 ? std::sqrt(var / static_cast<double>(samples.size() - 1)) : 0.0;
  return s;
}

/// Runs `fn` repeatedly: `warmup` unmeasured runs, then measured runs until
/// either `max_iters` runs completed or `budget_seconds` elapsed (at least
/// `min_iters` measured runs always happen). Returns per-run seconds.
template <typename Fn>
TimingStats time_it(Fn&& fn, int warmup = 1, int min_iters = 3, int max_iters = 50,
                    double budget_seconds = 1.0) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  Timer budget;
  for (int i = 0; i < max_iters; ++i) {
    Timer t;
    fn();
    samples.push_back(t.seconds());
    if (i + 1 >= min_iters && budget.seconds() > budget_seconds) break;
  }
  return summarize(std::move(samples));
}

}  // namespace lowino

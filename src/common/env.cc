#include "common/env.h"

#include <algorithm>
#include <cstdlib>

namespace lowino {

long env_long(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return end != v ? parsed : fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::string(v) : fallback;
}

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) { return std::tolower(c); });
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

}  // namespace lowino

#include "common/env.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <mutex>

namespace lowino {

namespace {

long parse_long(const char* v, long fallback) {
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return end != v ? parsed : fallback;
}

bool parse_flag(const char* v, bool fallback) {
  if (v == nullptr || *v == '\0') return fallback;
  std::string s(v);
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) { return std::tolower(c); });
  return s == "1" || s == "true" || s == "yes" || s == "on";
}

struct OverrideStore {
  std::mutex mu;
  std::map<std::string, std::string> values;
};

// Function-local static so a ScopedRuntimeOverride constructed during static
// init (or read from a static destructor) always sees a live store.
OverrideStore& overrides() {
  static OverrideStore* store = new OverrideStore();  // never destroyed
  return *store;
}

}  // namespace

long env_long(const char* name, long fallback) {
  return parse_long(std::getenv(name), fallback);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' ? std::string(v) : fallback;
}

bool env_flag(const char* name, bool fallback) {
  return parse_flag(std::getenv(name), fallback);
}

void RuntimeConfig::set(const std::string& knob, const std::string& value) {
  OverrideStore& s = overrides();
  std::lock_guard<std::mutex> lock(s.mu);
  s.values[knob] = value;
}

void RuntimeConfig::clear(const std::string& knob) {
  OverrideStore& s = overrides();
  std::lock_guard<std::mutex> lock(s.mu);
  s.values.erase(knob);
}

void RuntimeConfig::clear_all() {
  OverrideStore& s = overrides();
  std::lock_guard<std::mutex> lock(s.mu);
  s.values.clear();
}

std::optional<std::string> RuntimeConfig::get(const std::string& knob) {
  OverrideStore& s = overrides();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.values.find(knob);
  if (it == s.values.end()) return std::nullopt;
  return it->second;
}

ScopedRuntimeOverride::ScopedRuntimeOverride(const std::string& knob, const std::string& value)
    : knob_(knob), previous_(RuntimeConfig::get(knob)) {
  RuntimeConfig::set(knob, value);
}

ScopedRuntimeOverride::~ScopedRuntimeOverride() {
  if (previous_.has_value()) {
    RuntimeConfig::set(knob_, *previous_);
  } else {
    RuntimeConfig::clear(knob_);
  }
}

long config_long(const char* name, long fallback) {
  if (const auto v = RuntimeConfig::get(name)) return parse_long(v->c_str(), fallback);
  return env_long(name, fallback);
}

std::string config_string(const char* name, const std::string& fallback) {
  if (const auto v = RuntimeConfig::get(name)) return v->empty() ? fallback : *v;
  return env_string(name, fallback);
}

bool config_flag(const char* name, bool fallback) {
  if (const auto v = RuntimeConfig::get(name)) return parse_flag(v->c_str(), fallback);
  return env_flag(name, fallback);
}

}  // namespace lowino

// Environment-variable helpers for benchmark/example configuration.
#pragma once

#include <string>

namespace lowino {

/// Returns the integer value of environment variable `name`, or `fallback`.
long env_long(const char* name, long fallback);

/// Returns the string value of environment variable `name`, or `fallback`.
std::string env_string(const char* name, const std::string& fallback);

/// Returns true when `name` is set to a truthy value ("1", "true", "yes", "on").
bool env_flag(const char* name, bool fallback = false);

}  // namespace lowino

// Runtime configuration knobs.
//
// Every LOWINO_* knob the runtime reads goes through RuntimeConfig, which
// layers *programmatic overrides* on top of the process environment:
//
//   RuntimeConfig::set("LOWINO_EXECUTION_MODE", "fused");   // beats the env
//   config_string("LOWINO_EXECUTION_MODE", "auto");         // -> "fused"
//
// This is what lets an embedding application (notably serve/PlanOptions)
// configure the engine per plan without mutating the environment — overrides
// are scoped, thread-safe, and invisible to child processes. The raw
// env_long/env_string/env_flag helpers remain for call sites that genuinely
// want the environment only (bench harness output paths etc.).
#pragma once

#include <optional>
#include <string>

namespace lowino {

/// Returns the integer value of environment variable `name`, or `fallback`.
long env_long(const char* name, long fallback);

/// Returns the string value of environment variable `name`, or `fallback`.
std::string env_string(const char* name, const std::string& fallback);

/// Returns true when `name` is set to a truthy value ("1", "true", "yes", "on").
bool env_flag(const char* name, bool fallback = false);

/// Process-wide override store for the LOWINO_* knobs. All methods are
/// thread-safe (a mutex guards the map); reads off the hot paths only.
class RuntimeConfig {
 public:
  /// Sets a programmatic override for `knob`. Overrides beat the environment
  /// in every config_*() read until cleared.
  static void set(const std::string& knob, const std::string& value);

  /// Removes the override for `knob` (environment value becomes visible again).
  static void clear(const std::string& knob);

  /// Removes every override.
  static void clear_all();

  /// The current override value, if any (does not consult the environment).
  static std::optional<std::string> get(const std::string& knob);
};

/// RAII override: applies `value` for `knob` on construction and restores the
/// previous override state (previous value or no-override) on destruction.
/// Used by tests and by serve-plan compilation to scope knob changes.
class ScopedRuntimeOverride {
 public:
  ScopedRuntimeOverride(const std::string& knob, const std::string& value);
  ~ScopedRuntimeOverride();
  ScopedRuntimeOverride(const ScopedRuntimeOverride&) = delete;
  ScopedRuntimeOverride& operator=(const ScopedRuntimeOverride&) = delete;

 private:
  std::string knob_;
  std::optional<std::string> previous_;
};

/// Knob reads: programmatic override first, then the environment, then the
/// fallback. Value parsing matches the env_* helpers exactly.
long config_long(const char* name, long fallback);
std::string config_string(const char* name, const std::string& fallback);
bool config_flag(const char* name, bool fallback = false);

}  // namespace lowino

#include "common/fault.h"

#include <algorithm>
#include <array>
#include <mutex>
#include <vector>

#include "common/env.h"

namespace lowino {

const char* fault_site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kSessionRun: return "session-run";
    case FaultSite::kEngineExecute: return "engine-execute";
    case FaultSite::kPlanLoad: return "plan-load";
    case FaultSite::kArenaAlloc: return "arena-alloc";
    case FaultSite::kWorkerStart: return "worker-start";
  }
  return "?";
}

std::optional<FaultSite> fault_site_from_name(std::string_view name) {
  for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
    const auto site = static_cast<FaultSite>(s);
    if (name == fault_site_name(site)) return site;
  }
  return std::nullopt;
}

FaultInjectedError::FaultInjectedError(FaultSite site)
    : std::runtime_error(std::string("injected fault at ") + fault_site_name(site)),
      site_(site) {}

namespace fault_detail {
namespace {

enum class ArmMode : std::uint8_t { kOff, kRate, kNext, kCalls };

/// Per-site arm. `checked`/`injected` are written from fault points on any
/// thread; the configuration fields are written only while (re)arming, which
/// happens under g_plan_mu with g_fault_enabled off.
struct SiteArm {
  ArmMode mode = ArmMode::kOff;
  std::uint64_t rate_cutoff = 0;  ///< kRate: fail iff hash < cutoff
  std::uint64_t seed = 0;
  std::atomic<std::int64_t> remaining{0};  ///< kNext: budget of failing checks
  std::vector<std::uint64_t> indices;      ///< kCalls: sorted failing indices
  std::atomic<std::uint64_t> checked{0};
  std::atomic<std::uint64_t> injected{0};

  void reset() {
    mode = ArmMode::kOff;
    rate_cutoff = 0;
    seed = 0;
    remaining.store(0, std::memory_order_relaxed);
    indices.clear();
    checked.store(0, std::memory_order_relaxed);
    injected.store(0, std::memory_order_relaxed);
  }
};

struct Plan {
  std::array<SiteArm, kFaultSiteCount> sites;
};

Plan& plan() {
  static Plan p;
  return p;
}

std::mutex& plan_mu() {
  static std::mutex mu;
  return mu;
}

SiteArm& arm(FaultSite site) { return plan().sites[static_cast<std::size_t>(site)]; }

/// splitmix64 — the per-check decision hash for kRate (deterministic in the
/// check index, independent of which thread performs the check).
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Quiesces checks, mutates the plan via `fn`, re-enables iff `enable`.
/// Checks racing the flip either see enabled=false (no-op) or complete
/// against the old plan before the store below (mutators only run from the
/// arming thread in tests/benches, where no checks are concurrently inside
/// the slow path by construction of those tests).
template <typename Fn>
void with_plan_locked(bool enable, Fn&& fn) {
  std::lock_guard<std::mutex> lk(plan_mu());
  g_fault_enabled.store(false, std::memory_order_relaxed);
  fn(plan());
  g_fault_enabled.store(enable, std::memory_order_relaxed);
}

struct ParsedArm {
  FaultSite site = FaultSite::kSessionRun;
  double rate = 0.0;
  std::uint64_t seed = 0;
};

/// "site:rate:seed[,site:rate:seed...]" -> arms. nullopt on any bad field.
std::optional<std::vector<ParsedArm>> parse_spec(std::string_view spec) {
  std::vector<ParsedArm> arms;
  // A trailing comma would silently drop its (empty) entry below — reject.
  if (!spec.empty() && spec.back() == ',') return std::nullopt;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(pos, end - pos);
    pos = end + 1;
    const std::size_t c1 = entry.find(':');
    if (c1 == std::string_view::npos) return std::nullopt;
    const std::size_t c2 = entry.find(':', c1 + 1);
    if (c2 == std::string_view::npos) return std::nullopt;
    ParsedArm a;
    const auto site = fault_site_from_name(entry.substr(0, c1));
    if (!site) return std::nullopt;
    a.site = *site;
    try {
      std::size_t used = 0;
      const std::string rate_str(entry.substr(c1 + 1, c2 - c1 - 1));
      a.rate = std::stod(rate_str, &used);
      if (used != rate_str.size() || !(a.rate >= 0.0) || a.rate > 1.0) return std::nullopt;
      const std::string seed_str(entry.substr(c2 + 1));
      a.seed = std::stoull(seed_str, &used);
      if (used != seed_str.size()) return std::nullopt;
    } catch (const std::exception&) {
      return std::nullopt;
    }
    arms.push_back(a);
  }
  return arms;
}

std::uint64_t rate_to_cutoff(double rate) {
  if (rate >= 1.0) return ~0ULL;
  // rate * 2^64 without overflowing double->u64 conversion at the top end.
  return static_cast<std::uint64_t>(rate * 18446744073709551616.0);
}

}  // namespace

void check_and_throw(FaultSite site) {
  SiteArm& a = arm(site);
  const std::uint64_t index = a.checked.fetch_add(1, std::memory_order_relaxed);
  bool fail = false;
  switch (a.mode) {
    case ArmMode::kOff:
      break;
    case ArmMode::kRate:
      fail = a.rate_cutoff == ~0ULL ||
             mix(a.seed ^ (static_cast<std::uint64_t>(site) << 56) ^ index) < a.rate_cutoff;
      break;
    case ArmMode::kNext:
      fail = a.remaining.fetch_sub(1, std::memory_order_relaxed) > 0;
      break;
    case ArmMode::kCalls:
      fail = std::binary_search(a.indices.begin(), a.indices.end(), index);
      break;
  }
  if (fail) {
    a.injected.fetch_add(1, std::memory_order_relaxed);
    throw FaultInjectedError(site);
  }
}

}  // namespace fault_detail

std::uint64_t fault_checked_count(FaultSite site) {
  return fault_detail::arm(site).checked.load(std::memory_order_relaxed);
}

std::uint64_t fault_injected_count(FaultSite site) {
  return fault_detail::arm(site).injected.load(std::memory_order_relaxed);
}

bool fault_spec_valid(std::string_view spec) {
  return spec.empty() || fault_detail::parse_spec(spec).has_value();
}

bool fault_arm_spec(std::string_view spec) {
  if (spec.empty()) {
    fault_disarm();
    return true;
  }
  const auto arms = fault_detail::parse_spec(spec);
  if (!arms) return false;
  fault_detail::with_plan_locked(true, [&](fault_detail::Plan& p) {
    for (auto& s : p.sites) s.reset();
    for (const auto& a : *arms) {
      auto& s = p.sites[static_cast<std::size_t>(a.site)];
      s.mode = fault_detail::ArmMode::kRate;
      s.rate_cutoff = fault_detail::rate_to_cutoff(a.rate);
      s.seed = a.seed;
    }
  });
  return true;
}

void fault_disarm() {
  fault_detail::with_plan_locked(false, [](fault_detail::Plan& p) {
    for (auto& s : p.sites) s.reset();
  });
}

bool fault_apply_env() {
  // Latched: the spec is read once per distinct value; a ScopedRuntimeOverride
  // followed by another fault_apply_env() re-applies.
  static std::mutex mu;
  static std::string applied;
  static bool seen = false;
  std::lock_guard<std::mutex> lk(mu);
  const std::string spec = config_string("LOWINO_FAULT", "");
  if (!seen || spec != applied) {
    seen = true;
    applied = spec;
    fault_arm_spec(spec);
  }
  return fault_injection_enabled();
}

// ---------------------------------------------------------------------------
// ScopedFaultPlan
//
// The previous plan's configuration is snapshotted on construction and
// restored on destruction. Counters always restart from zero for the scope.

namespace {

struct PlanSnapshot {
  struct Site {
    fault_detail::ArmMode mode;
    std::uint64_t rate_cutoff, seed;
    std::int64_t remaining;
    std::vector<std::uint64_t> indices;
  };
  std::array<Site, kFaultSiteCount> sites;
  bool enabled = false;
};

// One nesting level per live ScopedFaultPlan; plans are scoped and rare, a
// simple vector-stack under the plan mutex is plenty.
std::vector<PlanSnapshot>& snapshot_stack() {
  static std::vector<PlanSnapshot> stack;
  return stack;
}

}  // namespace

ScopedFaultPlan::ScopedFaultPlan() {
  PlanSnapshot snap;
  snap.enabled = fault_injection_enabled();
  fault_detail::with_plan_locked(true, [&](fault_detail::Plan& p) {
    for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
      auto& a = p.sites[s];
      snap.sites[s] = {a.mode, a.rate_cutoff, a.seed,
                       a.remaining.load(std::memory_order_relaxed), a.indices};
      a.reset();
    }
    snapshot_stack().push_back(std::move(snap));
  });
}

ScopedFaultPlan::~ScopedFaultPlan() {
  PlanSnapshot snap;
  bool enable = false;
  fault_detail::with_plan_locked(false, [&](fault_detail::Plan& p) {
    snap = std::move(snapshot_stack().back());
    snapshot_stack().pop_back();
    for (std::size_t s = 0; s < kFaultSiteCount; ++s) {
      auto& a = p.sites[s];
      a.reset();
      a.mode = snap.sites[s].mode;
      a.rate_cutoff = snap.sites[s].rate_cutoff;
      a.seed = snap.sites[s].seed;
      a.remaining.store(snap.sites[s].remaining, std::memory_order_relaxed);
      a.indices = std::move(snap.sites[s].indices);
    }
    enable = snap.enabled;
  });
  // with_plan_locked stored `false`; re-enable if the outer plan was live.
  if (enable) fault_detail::g_fault_enabled.store(true, std::memory_order_relaxed);
}

void ScopedFaultPlan::fail_rate(FaultSite site, double rate, std::uint64_t seed) {
  if (!(rate >= 0.0) || rate > 1.0) {
    throw std::invalid_argument("ScopedFaultPlan: rate must be in [0, 1]");
  }
  fault_detail::with_plan_locked(true, [&](fault_detail::Plan& p) {
    auto& a = p.sites[static_cast<std::size_t>(site)];
    a.reset();
    a.mode = fault_detail::ArmMode::kRate;
    a.rate_cutoff = fault_detail::rate_to_cutoff(rate);
    a.seed = seed;
  });
}

void ScopedFaultPlan::fail_next(FaultSite site, std::uint64_t n) {
  fault_detail::with_plan_locked(true, [&](fault_detail::Plan& p) {
    auto& a = p.sites[static_cast<std::size_t>(site)];
    a.reset();
    a.mode = fault_detail::ArmMode::kNext;
    a.remaining.store(static_cast<std::int64_t>(n), std::memory_order_relaxed);
  });
}

void ScopedFaultPlan::fail_calls(FaultSite site,
                                 std::initializer_list<std::uint64_t> indices) {
  fault_detail::with_plan_locked(true, [&](fault_detail::Plan& p) {
    auto& a = p.sites[static_cast<std::size_t>(site)];
    a.reset();
    a.mode = fault_detail::ArmMode::kCalls;
    a.indices.assign(indices.begin(), indices.end());
    std::sort(a.indices.begin(), a.indices.end());
  });
}

}  // namespace lowino

// Fused convolution epilogue description (euler's has_bias/has_relu/has_sum
// flag style, see elx_conv_wino_lp).
//
// A convolution engine that advertises post-op support applies the epilogue
//
//   out = relu? . (conv(in) + bias + sum)
//
// inside its single output pass — for LoWino that is the de-quantization +
// output-transform stage, for the direct engines the accumulator store loop.
// The stage order is fixed: bias, then the residual sum, then ReLU. Bias is
// not carried here because it already rides with the packed filters
// (set_filters / PackedFilters) and was fused into the output pass from the
// start; PostOps adds the two stages that used to be separate element-wise
// passes over the activation tensor.
//
// Fusing is bit-exact by construction: the unfused path stores y = conv + bias
// to memory and a later pass computes max(0, y + res). Float stores/loads are
// value-preserving and the epilogue contains no multiplies (so no FMA
// contraction), hence max(0, (conv + bias) + res) evaluated in registers
// performs the identical float operation sequence. The build does not enable
// -ffast-math, so compilers may not reassociate either.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lowino {

struct PostOps {
  bool relu = false;
  /// Residual source for the "+sum" stage, or nullptr. NCHW, with exactly the
  /// convolution's output shape (B x K x OH x OW). Applied before ReLU. May
  /// alias the output tensor (in-place sum): every element is read before the
  /// corresponding store.
  const float* sum = nullptr;

  /// u8 residual source (serving u8 hand-off), or nullptr. Same NCHW shape as
  /// `sum`; bytes carry the +128 zero-point encoding and are de-quantized on
  /// the fly as (q - 128) * sum_u8_inv_scale before the add. At most one of
  /// `sum` / `sum_u8` may be set. Only engines with u8 hand-off support
  /// (ConvEngine::supports_u8_handoff) accept a u8 residual.
  const std::uint8_t* sum_u8 = nullptr;
  float sum_u8_inv_scale = 1.0f;

  bool none() const { return !relu && sum == nullptr && sum_u8 == nullptr; }
  bool has_sum() const { return sum != nullptr || sum_u8 != nullptr; }
};

}  // namespace lowino

// Activation hand-off element types for the serving pipeline.
//
// The session compiler assigns one DType per activation edge: kF32 is the
// default (every engine consumes/produces FP32 NCHW), kU8 is the quantized
// hand-off (euler's UserTypes = {u8, fp32} scheme) where a producer engine
// requantizes into u8 bytes with the +128 zero-point shift of Section 4.2.1
// and the consumer reads them back without an FP32 round trip. The byte
// encoding is always q = saturate_u8(round_ne(scale * x) + 128), i.e. the
// same representation the LoWino Winograd-domain quantizer uses, so padding
// bytes are 128 (quantized zero) and de-quantization is (q - 128) * inv_scale.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace lowino {

enum class DType : std::uint8_t {
  kF32 = 0,
  kU8 = 1,
};

inline constexpr std::size_t dtype_bytes(DType t) {
  return t == DType::kU8 ? 1 : 4;
}

/// Stable token used by SessionPlan v3 `dtype=` fields.
inline constexpr const char* dtype_token(DType t) {
  return t == DType::kU8 ? "u8" : "f32";
}

inline std::optional<DType> dtype_from_string(std::string_view s) {
  if (s == "f32") return DType::kF32;
  if (s == "u8") return DType::kU8;
  return std::nullopt;
}

}  // namespace lowino

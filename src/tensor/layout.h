// The customized blocked data layouts of Table 1.
//
// All five blocked layouts are expressed as small index structs exposing
// size() / offset(...) so kernels and tests share one source of truth.
// phi = 4 (int8 per 32-bit word), sigma = 16 (fp32 lanes), phi*sigma = 64.
//
//   Input images         B x [C/64] x H x W x 64                 (fp32)
//   Transformed inputs   [N/Nblk] x [C/Cblk] x T x Nblk x Cblk   (uint8)
//   Filters              C x [K/64] x r x r x 64                 (fp32, offline)
//   Transformed filters  [C/Cblk] x [K/Kblk] x T x Cblk/4 x Kblk*4 (int8)
//   Transformed outputs  [K/64] x N x T x 64                     (int32)
//   Output images        B x [K/64] x H' x W' x 64               (fp32)
#pragma once

#include <cstddef>

#include "common/aligned_buffer.h"
#include "tensor/conv_desc.h"

namespace lowino {

/// B x [C/64] x H x W x 64 blocked activation layout (input & output images).
struct BlockedActLayout {
  std::size_t batch = 0;
  std::size_t chan_blocks = 0;  ///< ceil(C / 64)
  std::size_t height = 0;
  std::size_t width = 0;

  BlockedActLayout() = default;
  BlockedActLayout(std::size_t b, std::size_t c, std::size_t h, std::size_t w)
      : batch(b), chan_blocks(ceil_div(c, kChanBlock)), height(h), width(w) {}

  std::size_t size() const { return batch * chan_blocks * height * width * kChanBlock; }

  /// Offset of the 64-channel pixel block (b, cb, h, w); channel-in-block 0.
  std::size_t offset(std::size_t b, std::size_t cb, std::size_t h, std::size_t w) const {
    return (((b * chan_blocks + cb) * height + h) * width + w) * kChanBlock;
  }
};

/// [N/Nblk] x [C/Cblk] x T x Nblk x Cblk transformed-input layout (uint8).
/// N (total tiles) is padded to a multiple of Nblk; C to a multiple of Cblk.
struct TransformedInputLayout {
  std::size_t n_blocks = 0;
  std::size_t c_blocks = 0;
  std::size_t t_elems = 0;
  std::size_t n_blk = 0;
  std::size_t c_blk = 0;

  TransformedInputLayout() = default;
  TransformedInputLayout(std::size_t total_tiles, std::size_t padded_c, std::size_t t,
                         std::size_t nblk, std::size_t cblk)
      : n_blocks(ceil_div(total_tiles, nblk)),
        c_blocks(ceil_div(padded_c, cblk)),
        t_elems(t),
        n_blk(nblk),
        c_blk(cblk) {}

  std::size_t size() const { return n_blocks * c_blocks * t_elems * n_blk * c_blk; }

  /// Offset of element (tile n, position t, channel c).
  std::size_t offset(std::size_t n, std::size_t t, std::size_t c) const {
    const std::size_t nb = n / n_blk, ni = n % n_blk;
    const std::size_t cb = c / c_blk, ci = c % c_blk;
    return (((nb * c_blocks + cb) * t_elems + t) * n_blk + ni) * c_blk + ci;
  }
};

/// [C/Cblk] x [K/Kblk] x T x Cblk/4 x (Kblk*4) transformed-filter layout
/// (int8), i.e. the vpdpbusd-ready packing: for a fixed group of 4 input
/// channels, 4 int8 values per output channel are laid out consecutively.
struct PackedFilterLayout {
  std::size_t c_blocks = 0;
  std::size_t k_blocks = 0;
  std::size_t t_elems = 0;
  std::size_t c_blk = 0;
  std::size_t k_blk = 0;

  PackedFilterLayout() = default;
  PackedFilterLayout(std::size_t padded_c, std::size_t padded_k, std::size_t t,
                     std::size_t cblk, std::size_t kblk)
      : c_blocks(ceil_div(padded_c, cblk)),
        k_blocks(ceil_div(padded_k, kblk)),
        t_elems(t),
        c_blk(cblk),
        k_blk(kblk) {}

  std::size_t size() const { return c_blocks * k_blocks * t_elems * c_blk * k_blk; }

  /// Offset of filter value (position t, input channel c, output channel k).
  std::size_t offset(std::size_t t, std::size_t c, std::size_t k) const {
    const std::size_t cb = c / c_blk, ci = c % c_blk;
    const std::size_t kb = k / k_blk, ki = k % k_blk;
    const std::size_t c4 = ci / kPhi, cr = ci % kPhi;
    return ((((cb * k_blocks + kb) * t_elems + t) * (c_blk / kPhi) + c4) * k_blk + ki) * kPhi +
           cr;
  }
};

/// [K/64] x Npad x T x 64 transformed-output layout (int32). The GEMM scatters
/// 16-lane result vectors here with non-temporal stores; the output transform
/// then reads each tile's T x 64 block fully consecutively (Section 4.2.3).
struct TransformedOutputLayout {
  std::size_t k_blocks = 0;
  std::size_t n_padded = 0;
  std::size_t t_elems = 0;

  TransformedOutputLayout() = default;
  TransformedOutputLayout(std::size_t padded_k, std::size_t total_tiles_padded, std::size_t t)
      : k_blocks(padded_k / kChanBlock), n_padded(total_tiles_padded), t_elems(t) {}

  std::size_t size() const { return k_blocks * n_padded * t_elems * kChanBlock; }

  /// Offset of element (tile n, position t, output channel k).
  std::size_t offset(std::size_t n, std::size_t t, std::size_t k) const {
    const std::size_t kb = k / kChanBlock, ki = k % kChanBlock;
    return ((kb * n_padded + n) * t_elems + t) * kChanBlock + ki;
  }
};

}  // namespace lowino

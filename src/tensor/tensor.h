// Dense row-major N-dimensional tensor.
//
// This is the *interface-level* container (model weights, activations in the
// NN runtime, test fixtures). The convolution engines operate on raw
// cache-line-aligned buffers in the blocked layouts of Table 1 (see
// tensor/layout.h); packing between the two lives in tensor/pack.h.
#pragma once

#include <array>
#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <span>
#include <vector>

#include "common/aligned_buffer.h"

namespace lowino {

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(std::vector<std::size_t> shape) { reshape(std::move(shape)); }
  Tensor(std::initializer_list<std::size_t> shape)
      : Tensor(std::vector<std::size_t>(shape)) {}

  Tensor(Tensor&&) noexcept = default;
  Tensor& operator=(Tensor&&) noexcept = default;
  Tensor(const Tensor& other) { *this = other; }
  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      reshape(other.shape_);
      std::copy(other.data(), other.data() + other.size(), data());
    }
    return *this;
  }

  void reshape(std::vector<std::size_t> shape) {
    shape_ = std::move(shape);
    strides_.assign(shape_.size(), 1);
    for (std::size_t i = shape_.size(); i-- > 1;) {
      strides_[i - 1] = strides_[i] * shape_[i];
    }
    const std::size_t n = size();
    buffer_.ensure(n);
  }

  std::size_t size() const {
    std::size_t n = 1;
    for (std::size_t d : shape_) n *= d;
    return shape_.empty() ? 0 : n;
  }

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t dim(std::size_t i) const { return shape_[i]; }
  std::size_t rank() const { return shape_.size(); }

  T* data() { return buffer_.data(); }
  const T* data() const { return buffer_.data(); }
  std::span<T> span() { return {data(), size()}; }
  std::span<const T> span() const { return {data(), size()}; }

  void fill(T v) {
    T* p = data();
    for (std::size_t i = 0, n = size(); i < n; ++i) p[i] = v;
  }
  void zero() { fill(T{}); }

  template <typename... Idx>
  T& operator()(Idx... idx) {
    return data()[offset(idx...)];
  }
  template <typename... Idx>
  const T& operator()(Idx... idx) const {
    return data()[offset(idx...)];
  }

  template <typename... Idx>
  std::size_t offset(Idx... idx) const {
    const std::array<std::size_t, sizeof...(Idx)> ids{static_cast<std::size_t>(idx)...};
    assert(ids.size() == shape_.size());
    std::size_t off = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      assert(ids[i] < shape_[i]);
      off += ids[i] * strides_[i];
    }
    return off;
  }

 private:
  std::vector<std::size_t> shape_;
  std::vector<std::size_t> strides_;
  AlignedBuffer<T> buffer_;
};

}  // namespace lowino

// Packing between the interface NCHW layout and the blocked layouts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "tensor/conv_desc.h"
#include "tensor/layout.h"

namespace lowino {

class ThreadPool;

/// NCHW (B x C x H x W) -> blocked B x [C/64] x H x W x 64.
/// Channels beyond C (up to the padded 64-multiple) are zero-filled.
void pack_nchw_to_blocked(std::span<const float> src, std::size_t batch, std::size_t channels,
                          std::size_t height, std::size_t width, std::span<float> dst,
                          ThreadPool* pool = nullptr);

/// Blocked B x [C/64] x H x W x 64 -> NCHW (padding channels dropped).
void unpack_blocked_to_nchw(std::span<const float> src, std::size_t batch, std::size_t channels,
                            std::size_t height, std::size_t width, std::span<float> dst,
                            ThreadPool* pool = nullptr);

/// u8 hand-off variants (tensor/dtype.h): same layouts over quantized bytes.
/// Padding channels are filled with 128, the quantized zero of the +128
/// zero-point encoding, so they de-quantize to exactly 0.
void pack_nchw_u8_to_blocked(std::span<const std::uint8_t> src, std::size_t batch,
                             std::size_t channels, std::size_t height, std::size_t width,
                             std::span<std::uint8_t> dst, ThreadPool* pool = nullptr);

void unpack_blocked_u8_to_nchw(std::span<const std::uint8_t> src, std::size_t batch,
                               std::size_t channels, std::size_t height, std::size_t width,
                               std::span<std::uint8_t> dst, ThreadPool* pool = nullptr);

}  // namespace lowino

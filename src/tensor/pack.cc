#include "tensor/pack.h"

#include <cassert>
#include <cstring>

#include "parallel/thread_pool.h"

namespace lowino {
namespace {

template <typename Fn>
void for_batch(std::size_t n, ThreadPool* pool, Fn&& fn) {
  if (pool != nullptr) {
    pool->parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

template <typename T>
void pack_nchw_to_blocked_impl(std::span<const T> src, std::size_t batch, std::size_t channels,
                               std::size_t height, std::size_t width, std::span<T> dst,
                               T pad_value, ThreadPool* pool) {
  const BlockedActLayout layout(batch, channels, height, width);
  assert(src.size() >= batch * channels * height * width);
  assert(dst.size() >= layout.size());
  const std::size_t hw = height * width;
  for_batch(batch * layout.chan_blocks, pool, [&](std::size_t job) {
    const std::size_t b = job / layout.chan_blocks;
    const std::size_t cb = job % layout.chan_blocks;
    T* out_base = dst.data() + layout.offset(b, cb, 0, 0);
    for (std::size_t p = 0; p < hw; ++p) {
      T* out = out_base + p * kChanBlock;
      for (std::size_t ci = 0; ci < kChanBlock; ++ci) {
        const std::size_t c = cb * kChanBlock + ci;
        out[ci] = c < channels ? src[(b * channels + c) * hw + p] : pad_value;
      }
    }
  });
}

template <typename T>
void unpack_blocked_to_nchw_impl(std::span<const T> src, std::size_t batch, std::size_t channels,
                                 std::size_t height, std::size_t width, std::span<T> dst,
                                 ThreadPool* pool) {
  const BlockedActLayout layout(batch, channels, height, width);
  assert(src.size() >= layout.size());
  assert(dst.size() >= batch * channels * height * width);
  const std::size_t hw = height * width;
  for_batch(batch * layout.chan_blocks, pool, [&](std::size_t job) {
    const std::size_t b = job / layout.chan_blocks;
    const std::size_t cb = job % layout.chan_blocks;
    const T* in_base = src.data() + layout.offset(b, cb, 0, 0);
    const std::size_t c_limit =
        channels > cb * kChanBlock ? std::min(kChanBlock, channels - cb * kChanBlock) : 0;
    for (std::size_t p = 0; p < hw; ++p) {
      const T* in = in_base + p * kChanBlock;
      for (std::size_t ci = 0; ci < c_limit; ++ci) {
        dst[(b * channels + cb * kChanBlock + ci) * hw + p] = in[ci];
      }
    }
  });
}

}  // namespace

void pack_nchw_to_blocked(std::span<const float> src, std::size_t batch, std::size_t channels,
                          std::size_t height, std::size_t width, std::span<float> dst,
                          ThreadPool* pool) {
  pack_nchw_to_blocked_impl<float>(src, batch, channels, height, width, dst, 0.0f, pool);
}

void unpack_blocked_to_nchw(std::span<const float> src, std::size_t batch, std::size_t channels,
                            std::size_t height, std::size_t width, std::span<float> dst,
                            ThreadPool* pool) {
  unpack_blocked_to_nchw_impl<float>(src, batch, channels, height, width, dst, pool);
}

void pack_nchw_u8_to_blocked(std::span<const std::uint8_t> src, std::size_t batch,
                             std::size_t channels, std::size_t height, std::size_t width,
                             std::span<std::uint8_t> dst, ThreadPool* pool) {
  // Padding byte 128 == quantized zero of the +128 zero-point encoding.
  pack_nchw_to_blocked_impl<std::uint8_t>(src, batch, channels, height, width, dst,
                                          std::uint8_t{128}, pool);
}

void unpack_blocked_u8_to_nchw(std::span<const std::uint8_t> src, std::size_t batch,
                               std::size_t channels, std::size_t height, std::size_t width,
                               std::span<std::uint8_t> dst, ThreadPool* pool) {
  unpack_blocked_to_nchw_impl<std::uint8_t>(src, batch, channels, height, width, dst, pool);
}

}  // namespace lowino

// Convolution problem descriptor and Winograd tiling geometry.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "common/aligned_buffer.h"

namespace lowino {

/// Vector geometry of the low-precision instruction set (Section 4.1):
/// sigma = FP32 lanes per 512-bit vector, phi = 8-bit values per 32-bit word.
inline constexpr std::size_t kSigma = 16;
inline constexpr std::size_t kPhi = 4;
/// Channel block of every blocked activation layout (phi * sigma = 64).
inline constexpr std::size_t kChanBlock = kPhi * kSigma;

/// Describes one 2D convolution layer: B x C x H x W input, K filters of
/// r x r, zero padding (optionally different along width), arbitrary stride,
/// optionally grouped (groups = C = depthwise). The Winograd engines only
/// accept unit stride, symmetric padding and groups = 1; the direct engines
/// accept the full ungrouped space; the depthwise engine owns groups = C.
struct ConvDesc {
  /// Sentinel for pad_w: width padding follows the height padding.
  static constexpr std::size_t kPadLikeHeight = static_cast<std::size_t>(-1);

  std::size_t batch = 1;        ///< B
  std::size_t in_channels = 1;  ///< C
  std::size_t out_channels = 1; ///< K
  std::size_t height = 1;       ///< H
  std::size_t width = 1;        ///< W
  std::size_t kernel = 3;       ///< r
  std::size_t pad = 1;          ///< zero padding along height (both sides)
  std::size_t pad_w = kPadLikeHeight;  ///< zero padding along width; sentinel = pad
  std::size_t stride = 1;       ///< only 1 is Winograd-compatible
  std::size_t groups = 1;       ///< grouped conv; groups == C == K is depthwise

  std::size_t height_pad() const { return pad; }
  std::size_t width_pad() const { return pad_w == kPadLikeHeight ? pad : pad_w; }
  /// True when both axes use the same padding (the Winograd engines' domain).
  bool symmetric_padding() const { return width_pad() == pad; }

  /// out_height()/out_width() are only meaningful for descriptors that pass
  /// validate(): `height + 2*pad - kernel` is size_t arithmetic and silently
  /// wraps to a huge value when kernel > height + 2*pad (and stride = 0
  /// divides by zero). Every engine constructor validates first.
  std::size_t out_height() const { return (height + 2 * pad - kernel) / stride + 1; }
  std::size_t out_width() const { return (width + 2 * width_pad() - kernel) / stride + 1; }

  /// True for the depthwise family: every group owns exactly one input
  /// channel (groups == C), K a multiple of C (channel multiplier K/C).
  bool is_depthwise() const { return groups == in_channels && groups > 1; }

  /// Input channels seen by one filter: C / groups.
  std::size_t group_in_channels() const { return in_channels / groups; }

  /// Nothrow structural check; the conditions validate() enforces.
  bool is_valid() const {
    return kernel >= 1 && stride >= 1 && batch >= 1 && in_channels >= 1 &&
           out_channels >= 1 && pad < kernel && width_pad() < kernel &&
           kernel <= height + 2 * pad && kernel <= width + 2 * width_pad() &&
           groups >= 1 && in_channels % groups == 0 && out_channels % groups == 0;
  }

  /// Rejects degenerate shapes before any size arithmetic can wrap. Called
  /// from every engine constructor and make_conv_engine; throws
  /// std::invalid_argument naming the violated constraint.
  void validate() const {
    const auto fail = [this](const char* what) {
      throw std::invalid_argument("ConvDesc [" + to_string() + "]: " + what);
    };
    if (kernel < 1) fail("kernel must be >= 1");
    if (stride < 1) fail("stride must be >= 1");
    if (batch < 1) fail("batch must be >= 1");
    if (in_channels < 1 || out_channels < 1) fail("channels must be >= 1");
    if (pad >= kernel) fail("height pad must be < kernel");
    if (width_pad() >= kernel) fail("width pad must be < kernel");
    if (kernel > height + 2 * pad) fail("kernel exceeds padded height");
    if (kernel > width + 2 * width_pad()) fail("kernel exceeds padded width");
    if (groups < 1) fail("groups must be >= 1");
    if (in_channels % groups != 0) fail("in_channels must be divisible by groups");
    if (out_channels % groups != 0) fail("out_channels must be divisible by groups");
  }

  /// Engines without grouped-convolution support call this right after
  /// validate(); throws std::invalid_argument naming the engine so the
  /// capability-gating contract (reject before any allocation) holds.
  void require_ungrouped(const char* engine) const {
    if (groups != 1) {
      throw std::invalid_argument(std::string(engine) +
                                  " does not support grouped convolution [" +
                                  to_string() + "]");
    }
  }

  /// Channels rounded up to the 64-channel block of the blocked layouts.
  std::size_t padded_in_channels() const { return round_up(in_channels, kChanBlock); }
  std::size_t padded_out_channels() const { return round_up(out_channels, kChanBlock); }

  /// MAC count of the direct algorithm (for GOPS reporting). Each output
  /// channel only sees its group's C/groups input channels.
  double direct_macs() const {
    return static_cast<double>(batch) * static_cast<double>(out_channels) *
           static_cast<double>(in_channels / groups) * static_cast<double>(out_height()) *
           static_cast<double>(out_width()) * static_cast<double>(kernel * kernel);
  }

  /// Stride, width-pad and groups tokens are appended only when they differ
  /// from the historical defaults (unit stride, symmetric pad, ungrouped):
  /// this string doubles as a tuner/wisdom cache key and a plan-file field,
  /// and the classic shapes must keep their exact pre-existing spelling.
  std::string to_string() const {
    std::string s = "B" + std::to_string(batch) + " C" + std::to_string(in_channels) +
                    " K" + std::to_string(out_channels) + " H" + std::to_string(height) +
                    " W" + std::to_string(width) + " r" + std::to_string(kernel);
    if (!symmetric_padding()) s += " pw" + std::to_string(width_pad());
    if (stride != 1) s += " s" + std::to_string(stride);
    if (groups != 1) s += " g" + std::to_string(groups);
    return s;
  }
};

/// Winograd tiling of a ConvDesc for F(m x m, r x r).
struct WinogradGeometry {
  std::size_t m = 0;       ///< output tile size
  std::size_t r = 0;       ///< filter size
  std::size_t alpha = 0;   ///< input tile size m + r - 1
  std::size_t tiles_h = 0; ///< tiles along output height
  std::size_t tiles_w = 0; ///< tiles along output width
  std::size_t tiles_per_image = 0;
  std::size_t total_tiles = 0; ///< N in the paper: batch * tiles_per_image
  std::size_t t_elems = 0;     ///< T = alpha^2, matrices in the batched GEMM

  WinogradGeometry() = default;
  WinogradGeometry(const ConvDesc& desc, std::size_t m_) {
    m = m_;
    r = desc.kernel;
    alpha = m + r - 1;
    tiles_h = ceil_div(desc.out_height(), m);
    tiles_w = ceil_div(desc.out_width(), m);
    tiles_per_image = tiles_h * tiles_w;
    total_tiles = desc.batch * tiles_per_image;
    t_elems = alpha * alpha;
  }

  /// MAC count of the Winograd algorithm's batched GEMM.
  double winograd_macs(const ConvDesc& desc) const {
    return static_cast<double>(t_elems) * static_cast<double>(total_tiles) *
           static_cast<double>(desc.padded_in_channels()) *
           static_cast<double>(desc.padded_out_channels());
  }
};

}  // namespace lowino

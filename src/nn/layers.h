// NN layers with forward + backward (training) and pluggable quantized
// inference engines (the Table 3 evaluation substrate).
//
// Tensors are NCHW FP32 (`Tensor<float>`), batch in dim 0. Training uses the
// FP32 im2col-GEMM path; quantized inference swaps each 3x3 convolution's
// engine via nn/engines.h. Shapes (except batch) are fixed at construction.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/engines.h"
#include "tensor/conv_desc.h"
#include "tensor/tensor.h"

namespace lowino {

class ThreadPool;

class Layer {
 public:
  virtual ~Layer() = default;
  virtual std::string name() const = 0;

  /// FP32 forward. `train` enables caches needed by backward.
  virtual void forward(const Tensor<float>& in, Tensor<float>& out, bool train) = 0;
  /// Backward: consumes d(loss)/d(out), produces d(loss)/d(in), accumulates
  /// parameter gradients. Must follow a forward(train = true).
  virtual void backward(const Tensor<float>& grad_out, Tensor<float>& grad_in) = 0;
  /// SGD + momentum update; zeroes the gradients afterwards.
  virtual void update(float lr, float momentum) {}

  /// Quantized-inference hooks (default: FP32 forward).
  virtual void calibrate_with(const Tensor<float>& in, EngineKind kind) {}
  virtual void finalize_calibration(EngineKind kind) {}
  virtual void forward_engine(const Tensor<float>& in, Tensor<float>& out, EngineKind kind,
                              ThreadPool* pool) {
    forward(in, out, /*train=*/false);
  }

  virtual std::size_t parameter_count() const { return 0; }
};

/// 3x3 (or r x r) convolution, stride 1, symmetric padding, optionally
/// grouped (`groups` == in_channels is depthwise, the MobileNet building
/// block). Grouped layers hold weights in the K x (C/groups) x r x r layout.
class ConvLayer : public Layer {
 public:
  ConvLayer(std::size_t in_channels, std::size_t out_channels, std::size_t hw,
            std::size_t kernel, std::size_t pad, Rng& rng, std::size_t groups = 1);

  std::string name() const override;
  void forward(const Tensor<float>& in, Tensor<float>& out, bool train) override;
  void backward(const Tensor<float>& grad_out, Tensor<float>& grad_in) override;
  void update(float lr, float momentum) override;

  void calibrate_with(const Tensor<float>& in, EngineKind kind) override;
  void finalize_calibration(EngineKind kind) override;
  void forward_engine(const Tensor<float>& in, Tensor<float>& out, EngineKind kind,
                      ThreadPool* pool) override;

  /// forward_engine with a fused PostOps epilogue. When the layer is not
  /// quantizable or `kind` lacks post-op support, runs the plain path and
  /// applies the element-wise epilogue afterwards — bit-identical either way
  /// (see tensor/post_ops.h), so callers may fuse opportunistically without
  /// changing results.
  void forward_engine_fused(const Tensor<float>& in, Tensor<float>& out, EngineKind kind,
                            ThreadPool* pool, const PostOps& post);

  /// Span-based FP32 forward (the compute core of forward(), and the serving
  /// path for non-quantizable layers). All scratch lives in member buffers —
  /// allocation-free once the buffers are warm. Not reentrant: concurrent
  /// callers must hold distinct ConvLayer instances.
  void forward_fp32(std::span<const float> in, std::span<float> out, std::size_t batch);

  std::size_t parameter_count() const override { return weights_.size() + bias_.size(); }
  std::span<const float> weights() const { return {weights_.data(), weights_.size()}; }
  std::span<float> mutable_weights() { return {weights_.data(), weights_.size()}; }
  std::span<const float> bias() const { return {bias_.data(), bias_.size()}; }
  std::size_t in_channels() const { return c_; }
  std::size_t out_channels() const { return k_; }
  std::size_t spatial() const { return hw_; }
  std::size_t groups() const { return groups_; }
  /// The ConvDesc this layer presents for a given batch size (what the
  /// serving planner feeds make_conv_engine / the tuner).
  ConvDesc conv_desc(std::size_t batch) const { return desc_for_batch(batch); }

  /// When false, quantized inference keeps this layer in FP32 (standard
  /// practice for network stems; mirrors the paper's setup where the first
  /// convolution is never a 3x3 Winograd candidate).
  void set_quantizable(bool q) { quantizable_ = q; }
  bool quantizable() const { return quantizable_; }

 private:
  ConvDesc desc_for_batch(std::size_t batch) const;
  ConvEngine& engine_for(EngineKind kind, std::size_t batch);

  std::size_t c_, k_, hw_, r_, pad_, groups_;
  std::vector<float> weights_, bias_;
  std::vector<float> grad_w_, grad_b_;
  std::vector<float> mom_w_, mom_b_;

  Tensor<float> cached_in_;  ///< input cache for backward
  AlignedBuffer<float> col_;  ///< im2col scratch
  AlignedBuffer<float> wt_scratch_;   ///< patch x K transposed-weights operand
  AlignedBuffer<float> rows_scratch_; ///< rows x K GEMM output scratch

  /// Engines keyed by (kind, batch); filters are (re)loaded lazily whenever
  /// the FP32 weights changed since the engine last saw them.
  struct EngineSlot {
    std::unique_ptr<ConvEngine> engine;
    std::uint64_t weights_version = 0;
    bool calibrated = false;
  };
  std::map<std::pair<EngineKind, std::size_t>, EngineSlot> engines_;
  std::uint64_t weights_version_ = 1;
  bool quantizable_ = true;
};

class ReluLayer : public Layer {
 public:
  std::string name() const override { return "relu"; }
  void forward(const Tensor<float>& in, Tensor<float>& out, bool train) override;
  void backward(const Tensor<float>& grad_out, Tensor<float>& grad_in) override;

 private:
  std::vector<char> mask_;
};

/// 2x2 max pooling, stride 2.
class MaxPoolLayer : public Layer {
 public:
  explicit MaxPoolLayer(std::size_t channels, std::size_t hw);
  std::string name() const override { return "maxpool2x2"; }
  void forward(const Tensor<float>& in, Tensor<float>& out, bool train) override;
  void backward(const Tensor<float>& grad_out, Tensor<float>& grad_in) override;
  std::size_t channels() const { return c_; }
  std::size_t spatial() const { return hw_; }

 private:
  std::size_t c_, hw_;
  std::vector<std::uint32_t> argmax_;
};

/// Fully connected layer on flattened input.
class DenseLayer : public Layer {
 public:
  DenseLayer(std::size_t in_features, std::size_t out_features, Rng& rng);
  std::string name() const override;
  void forward(const Tensor<float>& in, Tensor<float>& out, bool train) override;
  void backward(const Tensor<float>& grad_out, Tensor<float>& grad_in) override;
  void update(float lr, float momentum) override;
  std::size_t parameter_count() const override { return w_.size() + b_.size(); }
  std::size_t in_features() const { return in_f_; }
  std::size_t out_features() const { return out_f_; }
  std::span<const float> weights() const { return {w_.data(), w_.size()}; }
  std::span<const float> bias() const { return {b_.data(), b_.size()}; }

 private:
  std::size_t in_f_, out_f_;
  std::vector<float> w_, b_, grad_w_, grad_b_, mom_w_, mom_b_;
  Tensor<float> cached_in_;
};

/// Residual block: out = relu(x + conv2(relu(conv1(x)))) with same shapes.
class ResidualBlock : public Layer {
 public:
  ResidualBlock(std::size_t channels, std::size_t hw, Rng& rng);
  std::string name() const override { return "residual"; }
  void forward(const Tensor<float>& in, Tensor<float>& out, bool train) override;
  void backward(const Tensor<float>& grad_out, Tensor<float>& grad_in) override;
  void update(float lr, float momentum) override;
  void calibrate_with(const Tensor<float>& in, EngineKind kind) override;
  void finalize_calibration(EngineKind kind) override;
  void forward_engine(const Tensor<float>& in, Tensor<float>& out, EngineKind kind,
                      ThreadPool* pool) override;
  std::size_t parameter_count() const override {
    return conv1_.parameter_count() + conv2_.parameter_count();
  }
  ConvLayer& conv1() { return conv1_; }
  ConvLayer& conv2() { return conv2_; }

 private:
  ConvLayer conv1_, conv2_;
  ReluLayer relu_mid_;
  std::vector<char> out_mask_;
  Tensor<float> mid_, mid_act_, f_out_;       // forward caches
  Tensor<float> g_f_, g_mid_act_, g_mid_;     // backward scratch
};

}  // namespace lowino

// Engine registry: the single source of truth behind the EngineKind fan-out
// points (engine_name / engine_token / engine_kind_from_string /
// all_engine_kinds / engine_caps / make_conv_engine — see nn/engines.h).
//
// Each engine family registers one EngineRegistration per kind from its own
// translation unit, so adding an engine touches the new TU plus one line in
// the builtin list of engine_registry.cc — no switch statements to extend.
//
// Static-library caveat (DESIGN.md decision 15): self-registering static
// objects in otherwise-unreferenced TUs are silently dropped by the archiver,
// so registration is NOT automatic. engine_registry() explicitly calls every
// per-TU registration function below; the named call is the symbol reference
// that retains the TU. The registry is built once behind a thread-safe
// magic static — registration functions run before any lookup can observe it.
#pragma once

#include <memory>
#include <vector>

#include "nn/engines.h"

namespace lowino {

/// One engine kind's complete capability + construction record.
struct EngineRegistration {
  EngineKind kind;
  const char* name;   ///< display name — engine_name()
  const char* token;  ///< stable machine token — engine_token()
  bool quantized;     ///< EngineCaps::quantized
  bool post_ops;      ///< EngineCaps::post_ops
  bool u8_handoff;    ///< EngineCaps::u8_handoff
  /// Structural shape gate: true exactly when `factory` would accept `desc`
  /// (callers may assume desc.is_valid()). Must match the wrapped
  /// constructor's acceptance set — the conformance fuzzer cross-checks
  /// supports == false against a thrown std::invalid_argument.
  bool (*supports)(const ConvDesc& desc);
  std::unique_ptr<ConvEngine> (*factory)(const ConvDesc& desc);
};

using EngineRegistrations = std::vector<EngineRegistration>;

/// Per-TU registration hooks. Every engine translation unit defines one of
/// these; engine_registry.cc calls them all (the builtin list).
void register_core_engines(EngineRegistrations& regs);          // nn/engines.cc
void register_int8_conv1x1_engine(EngineRegistrations& regs);   // nn/engine_1x1.cc
void register_int8_depthwise_engine(EngineRegistrations& regs); // nn/engine_depthwise.cc

/// The built registry in EngineKind declaration order. Validated on first
/// use: every kind registered exactly once, contiguously from 0.
const EngineRegistrations& engine_registry();

/// Lookup by kind (O(1) — the registry is declaration-ordered).
const EngineRegistration& engine_registration(EngineKind kind);

}  // namespace lowino

// Training (SGD + momentum, softmax cross-entropy) and evaluation — FP32 and
// per-engine quantized (the Table 3 measurement loop).
#pragma once

#include <cstdint>
#include <span>

#include "nn/dataset.h"
#include "nn/engines.h"
#include "nn/graph.h"

namespace lowino {

class ThreadPool;

struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch = 32;
  float lr = 0.05f;
  float momentum = 0.9f;
  float lr_decay = 0.5f;        ///< multiply lr by this ...
  std::size_t decay_every = 4;  ///< ... every this many epochs
  std::uint64_t shuffle_seed = 7;
  bool verbose = false;
};

struct EvalResult {
  double accuracy = 0.0;
  double avg_loss = 0.0;
  std::size_t samples = 0;
};

/// Softmax + cross-entropy: returns the mean loss and writes
/// d(loss)/d(logits) (already averaged over the batch).
float softmax_xent(const Tensor<float>& logits, std::span<const int> labels,
                   Tensor<float>& grad);

/// Argmax predictions of a logits tensor.
void predict(const Tensor<float>& logits, std::vector<int>& out);

/// Trains in place; returns final-epoch training accuracy.
double train_model(SequentialModel& model, const Dataset& data, const TrainConfig& config);

/// FP32 evaluation (any dataset size).
EvalResult evaluate_fp32(SequentialModel& model, const Dataset& data, std::size_t batch = 32);

/// Quantized-engine evaluation. Samples beyond the last full batch are
/// dropped (engines are specialized per batch size). Calibrate first!
EvalResult evaluate_engine(SequentialModel& model, const Dataset& data, EngineKind kind,
                           std::size_t batch = 32, ThreadPool* pool = nullptr);

/// Runs the calibration pass over ~`n_samples` images in `batch`-sized chunks
/// and finalizes — the paper's "~500 unlabeled sample images" (Eq. 7).
void calibrate_model(SequentialModel& model, const Dataset& data, EngineKind kind,
                     std::size_t n_samples = 512, std::size_t batch = 32);

}  // namespace lowino

// Int8Conv1x1Engine: the ConvEngine wrapper + registry record for the
// dedicated INT8 1x1 path (direct/direct_1x1.h). Lives in its own translation
// unit per the registry contract — adding the engine touched no engines.cc
// fan-out point, only the builtin list in engine_registry.cc.
#include "direct/direct_1x1.h"
#include "nn/engine_registry.h"

namespace lowino {
namespace {

class Int8Conv1x1Engine final : public ConvEngine {
 public:
  explicit Int8Conv1x1Engine(const ConvDesc& desc) : conv_(desc) {}
  EngineKind kind() const override { return EngineKind::kInt8Conv1x1; }

 protected:
  void do_calibrate(std::span<const float> in) override { conv_.calibrate(in); }
  void do_finalize_calibration() override { conv_.finalize_calibration(); }
  void do_set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void do_run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }
  void do_run_post(std::span<const float> in, std::span<float> out, ThreadPool* pool,
                   const PostOps& post) override {
    conv_.execute_nchw(in, out, pool, post);
  }
  void do_set_input_u8(const QuantParams& qp) override { conv_.set_input_u8(qp); }
  void do_set_output_u8(const QuantParams& qp) override { conv_.set_output_u8(qp); }
  void do_run_typed(const void* in, void* out, ThreadPool* pool,
                    const PostOps& post) override {
    conv_.execute_typed(in, out, pool, post);
  }

 private:
  Int8Conv1x1Conv conv_;
};

bool supports_1x1(const ConvDesc& desc) {
  // Any stride (the gather is just strided); pad = 0 follows from
  // is_valid()'s pad < kernel.
  return desc.kernel == 1 && desc.groups == 1;
}

}  // namespace

void register_int8_conv1x1_engine(EngineRegistrations& regs) {
  regs.push_back({EngineKind::kInt8Conv1x1, "INT8 direct 1x1", "int8_1x1",
                  /*quantized=*/true, /*post_ops=*/true, /*u8_handoff=*/true,
                  supports_1x1, [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(new Int8Conv1x1Engine(d));
                  }});
}

}  // namespace lowino

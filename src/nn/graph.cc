#include "nn/graph.h"

#include <sstream>

namespace lowino {

const Tensor<float>& SequentialModel::forward(const Tensor<float>& input, bool train) {
  activations_.resize(layers_.size() + 1);
  activations_[0] = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward(activations_[i], activations_[i + 1], train);
  }
  return activations_.back();
}

void SequentialModel::backward(const Tensor<float>& grad_logits) {
  grads_.resize(layers_.size() + 1);
  grads_[layers_.size()] = grad_logits;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    layers_[i]->backward(grads_[i + 1], grads_[i]);
  }
}

void SequentialModel::update(float lr, float momentum) {
  for (auto& l : layers_) l->update(lr, momentum);
}

void SequentialModel::calibrate(const Tensor<float>& input, EngineKind kind) {
  activations_.resize(layers_.size() + 1);
  activations_[0] = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->calibrate_with(activations_[i], kind);
    layers_[i]->forward(activations_[i], activations_[i + 1], /*train=*/false);
  }
}

void SequentialModel::finalize_calibration(EngineKind kind) {
  for (auto& l : layers_) l->finalize_calibration(kind);
}

const Tensor<float>& SequentialModel::forward_engine(const Tensor<float>& input,
                                                     EngineKind kind, ThreadPool* pool) {
  // Two persistent ping-pong tensors instead of layers+1 buffers: layer i
  // reads one and writes the other, so steady-state calls never allocate
  // (Tensor::reshape only grows) and the footprint is 2 activations, not L+1.
  if (layers_.empty()) {
    engine_act_[0] = input;
    return engine_act_[0];
  }
  const Tensor<float>* src = &input;
  std::size_t which = 0;
  const bool fuse = post_op_fusion_enabled();
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Tensor<float>& dst = engine_act_[which];
    auto* conv = fuse ? dynamic_cast<ConvLayer*>(layers_[i].get()) : nullptr;
    if (conv != nullptr && i + 1 < layers_.size() &&
        dynamic_cast<ReluLayer*>(layers_[i + 1].get()) != nullptr) {
      // conv→relu collapses into the convolution's fused output pass — the
      // same epilogue the session compiler plans, and bit-identical to the
      // two-op sequence, so this path and session.run stay comparable.
      conv->forward_engine_fused(*src, dst, kind, pool, PostOps{.relu = true});
      ++i;
    } else {
      layers_[i]->forward_engine(*src, dst, kind, pool);
    }
    src = &dst;
    which ^= 1;
  }
  return *src;
}

std::size_t SequentialModel::parameter_count() const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l->parameter_count();
  return n;
}

std::string SequentialModel::summary() const {
  std::ostringstream os;
  for (const auto& l : layers_) os << l->name() << '\n';
  os << "parameters: " << parameter_count() << '\n';
  return os.str();
}

}  // namespace lowino

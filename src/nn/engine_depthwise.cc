// Int8DepthwiseEngine: the ConvEngine wrapper + registry record for the
// INT8 depthwise path (direct/direct_depthwise.h). Lives in its own
// translation unit per the registry contract.
#include "direct/direct_depthwise.h"
#include "nn/engine_registry.h"

namespace lowino {
namespace {

class Int8DepthwiseEngine final : public ConvEngine {
 public:
  explicit Int8DepthwiseEngine(const ConvDesc& desc) : conv_(desc) {}
  EngineKind kind() const override { return EngineKind::kInt8Depthwise; }

 protected:
  void do_calibrate(std::span<const float> in) override { conv_.calibrate(in); }
  void do_finalize_calibration() override { conv_.finalize_calibration(); }
  void do_set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void do_run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }
  void do_run_post(std::span<const float> in, std::span<float> out, ThreadPool* pool,
                   const PostOps& post) override {
    conv_.execute_nchw(in, out, pool, post);
  }
  void do_set_input_u8(const QuantParams& qp) override { conv_.set_input_u8(qp); }
  void do_set_output_u8(const QuantParams& qp) override { conv_.set_output_u8(qp); }
  void do_run_typed(const void* in, void* out, ThreadPool* pool,
                    const PostOps& post) override {
    conv_.execute_typed(in, out, pool, post);
  }

 private:
  Int8DepthwiseConv conv_;
};

bool supports_depthwise(const ConvDesc& desc) { return desc.is_depthwise(); }

}  // namespace

void register_int8_depthwise_engine(EngineRegistrations& regs) {
  regs.push_back({EngineKind::kInt8Depthwise, "INT8 depthwise direct", "int8_dw",
                  /*quantized=*/true, /*post_ops=*/true, /*u8_handoff=*/true,
                  supports_depthwise, [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(new Int8DepthwiseEngine(d));
                  }});
}

}  // namespace lowino

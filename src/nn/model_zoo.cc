#include "nn/model_zoo.h"

#include "common/rng.h"

namespace lowino {

SequentialModel make_minivgg(std::size_t hw, std::size_t classes, std::uint64_t seed) {
  Rng rng(seed);
  SequentialModel m;
  // Stem conv stays FP32 under quantized inference: with a single input
  // channel there is no cross-channel noise averaging, and the paper's
  // networks never quantize their (7x7 / non-Winograd) stems either.
  auto stem = std::make_unique<ConvLayer>(1, 64, hw, 3, 1, rng);
  stem->set_quantizable(false);
  m.add(std::move(stem));
  m.add(std::make_unique<ReluLayer>());
  m.add(std::make_unique<ConvLayer>(64, 64, hw, 3, 1, rng));
  m.add(std::make_unique<ReluLayer>());
  m.add(std::make_unique<MaxPoolLayer>(64, hw));
  m.add(std::make_unique<ConvLayer>(64, 128, hw / 2, 3, 1, rng));
  m.add(std::make_unique<ReluLayer>());
  m.add(std::make_unique<MaxPoolLayer>(128, hw / 2));
  m.add(std::make_unique<DenseLayer>(128 * (hw / 4) * (hw / 4), classes, rng));
  return m;
}

SequentialModel make_miniresnet(std::size_t hw, std::size_t classes, std::uint64_t seed) {
  Rng rng(seed);
  SequentialModel m;
  auto stem = std::make_unique<ConvLayer>(1, 64, hw, 3, 1, rng);  // FP32 stem (see above)
  stem->set_quantizable(false);
  m.add(std::move(stem));
  m.add(std::make_unique<ReluLayer>());
  m.add(std::make_unique<ResidualBlock>(64, hw, rng));
  m.add(std::make_unique<MaxPoolLayer>(64, hw));
  m.add(std::make_unique<ResidualBlock>(64, hw / 2, rng));
  m.add(std::make_unique<MaxPoolLayer>(64, hw / 2));
  m.add(std::make_unique<DenseLayer>(64 * (hw / 4) * (hw / 4), classes, rng));
  return m;
}

SequentialModel make_minimobilenet(std::size_t hw, std::size_t classes, std::uint64_t seed) {
  Rng rng(seed);
  SequentialModel m;
  auto stem = std::make_unique<ConvLayer>(1, 32, hw, 3, 1, rng);  // FP32 stem (see above)
  stem->set_quantizable(false);
  m.add(std::move(stem));
  m.add(std::make_unique<ReluLayer>());
  // Depthwise-separable block 1: dw 3x3 (groups = 32) + pw 1x1 (32 -> 64).
  m.add(std::make_unique<ConvLayer>(32, 32, hw, 3, 1, rng, /*groups=*/32));
  m.add(std::make_unique<ReluLayer>());
  m.add(std::make_unique<ConvLayer>(32, 64, hw, 1, 0, rng));
  m.add(std::make_unique<ReluLayer>());
  m.add(std::make_unique<MaxPoolLayer>(64, hw));
  // Depthwise-separable block 2: dw 3x3 (groups = 64) + pw 1x1 (64 -> 128).
  m.add(std::make_unique<ConvLayer>(64, 64, hw / 2, 3, 1, rng, /*groups=*/64));
  m.add(std::make_unique<ReluLayer>());
  m.add(std::make_unique<ConvLayer>(64, 128, hw / 2, 1, 0, rng));
  m.add(std::make_unique<ReluLayer>());
  m.add(std::make_unique<MaxPoolLayer>(128, hw / 2));
  m.add(std::make_unique<DenseLayer>(128 * (hw / 4) * (hw / 4), classes, rng));
  return m;
}

std::vector<PaperLayer> paper_layers_table2(std::size_t batch_override) {
  struct Row {
    const char* name;
    std::size_t b, c, k, hw;
  };
  // Table 2 of the paper, verbatim (r = 3 everywhere, stride 1, pad 1).
  static constexpr Row kRows[] = {
      {"AlexNet_a", 64, 384, 384, 13},   {"AlexNet_b", 64, 384, 256, 13},
      {"VGG16_a", 64, 256, 256, 58},     {"VGG16_b", 64, 512, 512, 30},
      {"VGG16_c", 64, 512, 512, 16},     {"ResNet-50_a", 64, 128, 128, 28},
      {"ResNet-50_b", 64, 256, 256, 14}, {"ResNet-50_c", 64, 512, 512, 7},
      {"GoogLeNet_a", 64, 128, 192, 28}, {"GoogLeNet_b", 64, 128, 256, 14},
      {"GoogLeNet_c", 64, 192, 384, 7},  {"YOLOv3_a", 1, 64, 128, 64},
      {"YOLOv3_b", 1, 128, 256, 32},     {"YOLOv3_c", 1, 256, 512, 16},
      {"FusionNet_a", 1, 128, 128, 320}, {"FusionNet_b", 1, 256, 256, 160},
      {"FusionNet_c", 1, 512, 512, 80},  {"U-Net_a", 1, 128, 128, 282},
      {"U-Net_b", 1, 256, 256, 138},     {"U-Net_c", 1, 512, 512, 66},
  };
  std::vector<PaperLayer> out;
  for (const Row& row : kRows) {
    PaperLayer layer;
    layer.name = row.name;
    layer.desc.batch = (row.b > 1 && batch_override != 0) ? batch_override : row.b;
    layer.desc.in_channels = row.c;
    layer.desc.out_channels = row.k;
    layer.desc.height = layer.desc.width = row.hw;
    layer.desc.kernel = 3;
    layer.desc.pad = 1;
    out.push_back(std::move(layer));
  }
  return out;
}

}  // namespace lowino

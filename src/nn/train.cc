#include "nn/train.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/rng.h"

namespace lowino {

float softmax_xent(const Tensor<float>& logits, std::span<const int> labels,
                   Tensor<float>& grad) {
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  grad.reshape({batch, classes});
  float total = 0.0f;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* z = logits.data() + b * classes;
    float* g = grad.data() + b * classes;
    float zmax = z[0];
    for (std::size_t c = 1; c < classes; ++c) zmax = std::max(zmax, z[c]);
    float denom = 0.0f;
    for (std::size_t c = 0; c < classes; ++c) denom += std::exp(z[c] - zmax);
    const float log_denom = std::log(denom);
    const int label = labels[b];
    total += -(z[label] - zmax - log_denom);
    const float inv_batch = 1.0f / static_cast<float>(batch);
    for (std::size_t c = 0; c < classes; ++c) {
      const float p = std::exp(z[c] - zmax) / denom;
      g[c] = (p - (static_cast<int>(c) == label ? 1.0f : 0.0f)) * inv_batch;
    }
  }
  return total / static_cast<float>(batch);
}

void predict(const Tensor<float>& logits, std::vector<int>& out) {
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.dim(1);
  out.resize(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* z = logits.data() + b * classes;
    out[b] = static_cast<int>(std::max_element(z, z + classes) - z);
  }
}

double train_model(SequentialModel& model, const Dataset& data, const TrainConfig& config) {
  Rng rng(config.shuffle_seed);
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);

  Tensor<float> x, grad;
  std::vector<int> y, pred;
  float lr = config.lr;
  double last_epoch_acc = 0.0;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (epoch != 0 && config.decay_every != 0 && epoch % config.decay_every == 0) {
      lr *= config.lr_decay;
    }
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.next_below(i)]);
    }
    double loss_sum = 0.0;
    std::size_t correct = 0, seen = 0;
    for (std::size_t start = 0; start + config.batch <= data.size();
         start += config.batch) {
      x.reshape({config.batch, data.channels, data.image_hw, data.image_hw});
      y.resize(config.batch);
      for (std::size_t b = 0; b < config.batch; ++b) {
        const std::size_t idx = order[start + b];
        const auto img = data.image(idx);
        std::copy(img.begin(), img.end(), x.data() + b * img.size());
        y[b] = data.labels[idx];
      }
      const Tensor<float>& logits = model.forward(x, /*train=*/true);
      loss_sum += softmax_xent(logits, y, grad);
      predict(logits, pred);
      for (std::size_t b = 0; b < config.batch; ++b) {
        correct += pred[b] == y[b] ? 1 : 0;
      }
      seen += config.batch;
      model.backward(grad);
      model.update(lr, config.momentum);
    }
    last_epoch_acc = static_cast<double>(correct) / static_cast<double>(seen);
    if (config.verbose) {
      std::printf("epoch %zu: loss %.4f acc %.2f%% (lr %.4f)\n", epoch + 1,
                  loss_sum / (static_cast<double>(seen) / config.batch),
                  100.0 * last_epoch_acc, lr);
    }
  }
  return last_epoch_acc;
}

namespace {

template <typename Forward>
EvalResult evaluate_impl(const Dataset& data, std::size_t batch, Forward&& fwd) {
  EvalResult result;
  Tensor<float> x, grad;
  std::vector<int> y, pred;
  double loss_sum = 0.0;
  std::size_t batches = 0;
  for (std::size_t start = 0; start + batch <= data.size(); start += batch) {
    fill_batch(data, start, batch, x, y);
    const Tensor<float>& logits = fwd(x);
    loss_sum += softmax_xent(logits, y, grad);
    ++batches;
    predict(logits, pred);
    for (std::size_t b = 0; b < batch; ++b) {
      result.accuracy += pred[b] == y[b] ? 1.0 : 0.0;
    }
    result.samples += batch;
  }
  if (result.samples != 0) {
    result.accuracy /= static_cast<double>(result.samples);
    result.avg_loss = loss_sum / static_cast<double>(batches);
  }
  return result;
}

}  // namespace

EvalResult evaluate_fp32(SequentialModel& model, const Dataset& data, std::size_t batch) {
  return evaluate_impl(data, batch, [&](const Tensor<float>& x) -> const Tensor<float>& {
    return model.forward(x, /*train=*/false);
  });
}

EvalResult evaluate_engine(SequentialModel& model, const Dataset& data, EngineKind kind,
                           std::size_t batch, ThreadPool* pool) {
  return evaluate_impl(data, batch, [&](const Tensor<float>& x) -> const Tensor<float>& {
    return model.forward_engine(x, kind, pool);
  });
}

void calibrate_model(SequentialModel& model, const Dataset& data, EngineKind kind,
                     std::size_t n_samples, std::size_t batch) {
  Tensor<float> x;
  std::vector<int> y;
  const std::size_t limit = std::min(n_samples, data.size());
  for (std::size_t start = 0; start + batch <= limit; start += batch) {
    fill_batch(data, start, batch, x, y);
    model.calibrate(x, kind);
  }
  model.finalize_calibration(kind);
}

}  // namespace lowino

#include "nn/engine_registry.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace lowino {

namespace {

EngineRegistrations build_registry() {
  EngineRegistrations regs;
  // The builtin list: one explicit call per engine translation unit. The
  // named calls are what keep the archiver from dropping the TUs (see the
  // header comment); order here does not matter — the sort below puts the
  // registry in EngineKind declaration order.
  register_core_engines(regs);
  register_int8_conv1x1_engine(regs);
  register_int8_depthwise_engine(regs);

  std::sort(regs.begin(), regs.end(), [](const EngineRegistration& a,
                                         const EngineRegistration& b) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
  for (std::size_t i = 0; i < regs.size(); ++i) {
    if (static_cast<std::size_t>(regs[i].kind) != i) {
      throw std::logic_error(
          "engine registry: EngineKind " + std::to_string(i) +
          " missing or registered twice — every enum value needs exactly one "
          "EngineRegistration");
    }
  }
  return regs;
}

}  // namespace

const EngineRegistrations& engine_registry() {
  static const EngineRegistrations regs = build_registry();
  return regs;
}

const EngineRegistration& engine_registration(EngineKind kind) {
  const EngineRegistrations& regs = engine_registry();
  const std::size_t i = static_cast<std::size_t>(kind);
  if (i >= regs.size()) throw std::invalid_argument("unknown engine kind");
  return regs[i];
}

}  // namespace lowino

// Uniform adapter over every convolution engine in the repository, used by
// the NN runtime and the serving layer to swap implementations per layer
// (Table 3 columns, the Figure 8 engine set, and serve-plan auto-selection).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "quant/quantize.h"
#include "tensor/conv_desc.h"
#include "tensor/dtype.h"
#include "tensor/post_ops.h"

namespace lowino {

class ThreadPool;

enum class EngineKind {
  kFp32Direct,    ///< im2col + AVX-512 FP32 GEMM (baseline "FP32 best direct")
  kFp32WinoF2,    ///< FP32 Winograd F(2x2,3x3)
  kFp32WinoF4,    ///< FP32 Winograd F(4x4,3x3)
  kInt8Direct,    ///< INT8 direct (non-Winograd post-training quantization)
  kLoWinoF2,      ///< LoWino F(2x2,3x3)
  kLoWinoF4,      ///< LoWino F(4x4,3x3)
  kLoWinoF6,      ///< LoWino F(6x6,3x3) (extension beyond the paper's eval)
  kDownscaleF2,   ///< oneDNN-style down-scaling F(2x2,3x3)
  kDownscaleF4,   ///< oneDNN-style down-scaling F(4x4,3x3)
  kUpcastF2,      ///< ncnn-style up-casting (INT16) F(2x2,3x3)
  kVendorF2,      ///< fused vendor-style INT8 F(2x2,3x3)
  kInt8Conv1x1,   ///< INT8 1x1 (pure blocked VNNI GEMM, no im2col)
  kInt8Depthwise, ///< INT8 depthwise direct (groups == C)
};

/// Human-readable display name ("LoWino F(4x4,3x3)").
const char* engine_name(EngineKind kind);

/// Stable machine token ("lowino_f4") — what plan files, wisdom entries and
/// command lines use. engine_kind_from_string() parses both forms.
const char* engine_token(EngineKind kind);

/// Parses an engine identifier: the machine token (ASCII case-insensitive,
/// '-' and '_' interchangeable) or the exact engine_name() display string.
/// Returns nullopt for anything else. Round-trips with both engine_token()
/// and engine_name() for every EngineKind.
std::optional<EngineKind> engine_kind_from_string(std::string_view name);

/// Every EngineKind, in declaration order (for benches/examples that sweep
/// the whole engine set). Derived from the engine registry
/// (nn/engine_registry.h), as are all the per-kind queries above.
std::span<const EngineKind> all_engine_kinds();

/// The capability descriptor of one (engine kind, problem) pair — what the
/// session compiler, tuner shoot-out, fuzzer gating and bench filters consult
/// before constructing anything. The first three bits are per-kind invariants;
/// `supports` is the per-shape gate: true exactly when make_conv_engine(kind,
/// desc) would succeed (false also for a structurally invalid desc).
struct EngineCaps {
  bool quantized = false;   ///< runs quantized arithmetic (needs calibration)
  bool post_ops = false;    ///< executes a fused PostOps epilogue (bias/+sum/ReLU)
  bool u8_handoff = false;  ///< takes part in the u8 activation hand-off
  bool supports = false;    ///< accepts this ConvDesc (shape-capability gate)
};

/// The one capability query. Replaces the deprecated engine_is_quantized /
/// engine_supports_post_ops / engine_supports_u8_handoff predicates, which
/// could not express shape-dependent capability (1x1-only, depthwise-only
/// engines).
EngineCaps engine_caps(EngineKind kind, const ConvDesc& desc);

/// Deprecated shims over engine_caps() — one-PR migration aids. They answer
/// the kind-invariant bits only and cannot see shape capability; new code
/// must call engine_caps(kind, desc).
[[deprecated("use engine_caps(kind, desc).quantized")]]
bool engine_is_quantized(EngineKind kind);

/// See EngineCaps::post_ops.
[[deprecated("use engine_caps(kind, desc).post_ops")]]
bool engine_supports_post_ops(EngineKind kind);

/// The LOWINO_FUSE_POSTOPS kill-switch (env or RuntimeConfig override,
/// default on). When off, the session compiler and the layer runtime keep the
/// separate element-wise bias/ReLU/sum passes — the A/B lever for measuring
/// the fusion win.
bool post_op_fusion_enabled();

/// See EngineCaps::u8_handoff.
[[deprecated("use engine_caps(kind, desc).u8_handoff")]]
bool engine_supports_u8_handoff(EngineKind kind);

/// The LOWINO_U8_HANDOFF kill-switch (env or RuntimeConfig override, default
/// on). When off, the session compiler assigns FP32 to every activation edge
/// and replayed plans ignore their recorded dtype tokens — the A/B lever for
/// measuring the hand-off win, and the escape hatch if a deployment ever
/// needs bit-exact FP32 inter-layer semantics back.
bool u8_handoff_enabled();

/// Below this many Winograd tiles, calibration samples every tile: a strided
/// sweep over e.g. a 4-tile CIFAR tail would feed the KL histograms from a
/// quarter of the data.
inline constexpr std::size_t kCalibDenseTileLimit = 32;

/// Calibration tile stride used by the LoWino engines: LOWINO_CALIB_STRIDE
/// (when set to a positive integer, via env or RuntimeConfig override) wins;
/// otherwise stride 1 for layers with fewer than kCalibDenseTileLimit tiles
/// and the subsampling stride 2 beyond.
std::size_t lowino_calibration_stride(std::size_t total_tiles);

/// One convolution engine bound to a fixed ConvDesc.
///
/// Lifecycle: calibrate()* -> finalize_calibration() -> set_filters() ->
/// run()*, enforced by an explicit state machine — misuse throws
/// std::logic_error instead of silently computing garbage:
///
///   * calibrate() after finalize_calibration()            -> throws
///   * finalize_calibration() twice                        -> throws
///   * finalize_calibration() without any calibrate() on a
///     quantized engine (no statistics to finalize)        -> throws
///   * set_filters() on a quantized engine that is mid-calibration or was
///     never finalized (its input scales don't exist yet)  -> throws
///   * run() before set_filters()                          -> throws
///
/// Non-quantized engines ignore calibration: their set_filters() may be the
/// first call (the state machine advances implicitly), but the ordering
/// violations above still throw so a caller's bug surfaces regardless of
/// which engine kind the layer happens to select.
///
/// set_filters() may be called again at any point after the engine is ready
/// (weight reload); run() stays legal afterwards.
class ConvEngine {
 public:
  enum class Lifecycle {
    kCalibrating,  ///< accepting calibrate() samples (initial state)
    kFinalized,    ///< scales fixed; waiting for filters
    kReady,        ///< run() is legal
  };

  virtual ~ConvEngine() = default;

  void calibrate(std::span<const float> input_nchw);
  void finalize_calibration();
  void set_filters(std::span<const float> weights, std::span<const float> bias);
  void run(std::span<const float> input, std::span<float> output, ThreadPool* pool);
  /// Runs with a fused PostOps epilogue. An empty `post` is identical to the
  /// overload above; a non-empty one on an engine whose supports_post_ops()
  /// is false throws std::logic_error — callers must consult the capability
  /// and fall back to unfused execution plus element-wise passes themselves.
  void run(std::span<const float> input, std::span<float> output, ThreadPool* pool,
           const PostOps& post);

  /// See EngineCaps::post_ops (kind-invariant, hence no desc parameter).
  bool supports_post_ops() const;

  /// See EngineCaps::u8_handoff (kind-invariant, hence no desc parameter).
  bool supports_u8_handoff() const;

  /// Configures the u8 activation hand-off (tensor/dtype.h). set_input_u8
  /// declares that run_typed() will receive pre-quantized u8 input bytes
  /// (q = round_ne(qp.scale * x) + 128); set_output_u8 that it must emit
  /// requantized u8 output with qp.scale. Legal only on engines whose
  /// supports_u8_handoff() is true and only after finalize_calibration()
  /// (the hand-off composes with — or replaces — the engine's own calibrated
  /// input quantization); misuse throws std::logic_error.
  void set_input_u8(const QuantParams& qp);
  void set_output_u8(const QuantParams& qp);
  DType input_dtype() const { return in_dtype_; }
  DType output_dtype() const { return out_dtype_; }

  /// Runs honoring the configured hand-off dtypes: `input`/`output` point at
  /// input_dtype()/output_dtype() elements. With both dtypes FP32 and no
  /// post.sum_u8 this computes exactly what run() computes. Only legal on
  /// engines whose supports_u8_handoff() is true — FP32-only engines keep the
  /// span-typed run() as their sole entry point.
  void run_typed(const void* input, void* output, ThreadPool* pool,
                 const PostOps& post = {});

  Lifecycle lifecycle() const { return state_; }
  virtual EngineKind kind() const = 0;

 protected:
  virtual void do_calibrate(std::span<const float> input_nchw) = 0;
  virtual void do_finalize_calibration() = 0;
  virtual void do_set_filters(std::span<const float> weights,
                              std::span<const float> bias) = 0;
  virtual void do_run(std::span<const float> input, std::span<float> output,
                      ThreadPool* pool) = 0;
  /// Only dispatched when supports_post_ops() and `post` is non-empty; the
  /// default (for declining engines) is unreachable through the public run().
  virtual void do_run_post(std::span<const float> input, std::span<float> output,
                           ThreadPool* pool, const PostOps& post);
  /// Only dispatched when supports_u8_handoff(); the defaults throw — a
  /// capable wrapper must implement all three.
  virtual void do_set_input_u8(const QuantParams& qp);
  virtual void do_set_output_u8(const QuantParams& qp);
  virtual void do_run_typed(const void* input, void* output, ThreadPool* pool,
                            const PostOps& post);

 private:
  [[noreturn]] void misuse(const char* what) const;

  Lifecycle state_ = Lifecycle::kCalibrating;
  bool saw_calibration_ = false;
  DType in_dtype_ = DType::kF32;
  DType out_dtype_ = DType::kF32;
};

/// Factory. Throws std::invalid_argument for incompatible (kind, desc) pairs
/// (e.g. up-casting with r != 3).
std::unique_ptr<ConvEngine> make_conv_engine(EngineKind kind, const ConvDesc& desc);

}  // namespace lowino

// Uniform adapter over every convolution engine in the repository, used by
// the NN runtime to swap implementations per experiment configuration
// (Table 3 columns and the Figure 8 engine set).
#pragma once

#include <memory>
#include <span>
#include <string>

#include "tensor/conv_desc.h"

namespace lowino {

class ThreadPool;

enum class EngineKind {
  kFp32Direct,    ///< im2col + AVX-512 FP32 GEMM (baseline "FP32 best direct")
  kFp32WinoF2,    ///< FP32 Winograd F(2x2,3x3)
  kFp32WinoF4,    ///< FP32 Winograd F(4x4,3x3)
  kInt8Direct,    ///< INT8 direct (non-Winograd post-training quantization)
  kLoWinoF2,      ///< LoWino F(2x2,3x3)
  kLoWinoF4,      ///< LoWino F(4x4,3x3)
  kLoWinoF6,      ///< LoWino F(6x6,3x3) (extension beyond the paper's eval)
  kDownscaleF2,   ///< oneDNN-style down-scaling F(2x2,3x3)
  kDownscaleF4,   ///< oneDNN-style down-scaling F(4x4,3x3)
  kUpcastF2,      ///< ncnn-style up-casting (INT16) F(2x2,3x3)
  kVendorF2,      ///< fused vendor-style INT8 F(2x2,3x3)
};

const char* engine_name(EngineKind kind);
bool engine_is_quantized(EngineKind kind);

/// Below this many Winograd tiles, calibration samples every tile: a strided
/// sweep over e.g. a 4-tile CIFAR tail would feed the KL histograms from a
/// quarter of the data.
inline constexpr std::size_t kCalibDenseTileLimit = 32;

/// Calibration tile stride used by the LoWino engines: LOWINO_CALIB_STRIDE
/// (when set to a positive integer) wins; otherwise stride 1 for layers with
/// fewer than kCalibDenseTileLimit tiles and the subsampling stride 2 beyond.
std::size_t lowino_calibration_stride(std::size_t total_tiles);

/// One convolution engine bound to a fixed ConvDesc. Lifecycle:
/// calibrate()* -> finalize_calibration() -> set_filters() -> run()*.
/// (Non-quantized engines ignore the calibration calls.)
class ConvEngine {
 public:
  virtual ~ConvEngine() = default;
  virtual void calibrate(std::span<const float> input_nchw) = 0;
  virtual void finalize_calibration() = 0;
  virtual void set_filters(std::span<const float> weights, std::span<const float> bias) = 0;
  virtual void run(std::span<const float> input, std::span<float> output,
                   ThreadPool* pool) = 0;
  virtual EngineKind kind() const = 0;
};

/// Factory. Throws std::invalid_argument for incompatible (kind, desc) pairs
/// (e.g. up-casting with r != 3).
std::unique_ptr<ConvEngine> make_conv_engine(EngineKind kind, const ConvDesc& desc);

}  // namespace lowino

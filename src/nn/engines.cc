#include "nn/engines.h"

#include <cstdlib>
#include <stdexcept>

#include "baselines/downscale_wino.h"
#include "baselines/fp32_wino.h"
#include "common/env.h"
#include "baselines/upcast_wino.h"
#include "baselines/vendor_wino.h"
#include "direct/direct_f32.h"
#include "direct/direct_int8.h"
#include "lowino/lowino.h"

namespace lowino {

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kFp32Direct: return "FP32 direct (im2col GEMM)";
    case EngineKind::kFp32WinoF2: return "FP32 Winograd F(2x2,3x3)";
    case EngineKind::kFp32WinoF4: return "FP32 Winograd F(4x4,3x3)";
    case EngineKind::kInt8Direct: return "INT8 direct";
    case EngineKind::kLoWinoF2: return "LoWino F(2x2,3x3)";
    case EngineKind::kLoWinoF4: return "LoWino F(4x4,3x3)";
    case EngineKind::kLoWinoF6: return "LoWino F(6x6,3x3)";
    case EngineKind::kDownscaleF2: return "Down-scaling F(2x2,3x3)";
    case EngineKind::kDownscaleF4: return "Down-scaling F(4x4,3x3)";
    case EngineKind::kUpcastF2: return "Up-casting INT16 F(2x2,3x3)";
    case EngineKind::kVendorF2: return "Vendor-style fused INT8 F(2x2,3x3)";
  }
  return "?";
}

std::size_t lowino_calibration_stride(std::size_t total_tiles) {
  const long forced = env_long("LOWINO_CALIB_STRIDE", 0);
  if (forced > 0) return static_cast<std::size_t>(forced);
  return total_tiles < kCalibDenseTileLimit ? 1 : 2;
}

bool engine_is_quantized(EngineKind kind) {
  switch (kind) {
    case EngineKind::kFp32Direct:
    case EngineKind::kFp32WinoF2:
    case EngineKind::kFp32WinoF4:
      return false;
    default:
      return true;
  }
}

namespace {

/// CRTP-free small wrappers; each translates the common interface onto the
/// underlying engine's own API.
class Fp32DirectEngine final : public ConvEngine {
 public:
  explicit Fp32DirectEngine(const ConvDesc& desc) : conv_(desc) {}
  void calibrate(std::span<const float>) override {}
  void finalize_calibration() override {}
  void set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }
  EngineKind kind() const override { return EngineKind::kFp32Direct; }

 private:
  Im2colConvF32 conv_;
};

class Fp32WinoEngine final : public ConvEngine {
 public:
  Fp32WinoEngine(const ConvDesc& desc, std::size_t m, EngineKind kind)
      : conv_(desc, m), kind_(kind) {}
  void calibrate(std::span<const float>) override {}
  void finalize_calibration() override {}
  void set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }
  EngineKind kind() const override { return kind_; }

 private:
  Fp32WinoConv conv_;
  EngineKind kind_;
};

class Int8DirectEngine final : public ConvEngine {
 public:
  explicit Int8DirectEngine(const ConvDesc& desc) : conv_(desc) {}
  void calibrate(std::span<const float> in) override { conv_.calibrate(in); }
  void finalize_calibration() override { conv_.finalize_calibration(); }
  void set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }
  EngineKind kind() const override { return EngineKind::kInt8Direct; }

 private:
  Int8DirectConv conv_;
};

class LoWinoEngine final : public ConvEngine {
 public:
  LoWinoEngine(const ConvDesc& desc, std::size_t m, EngineKind kind)
      : conv_(desc, make_config(m)), kind_(kind) {}
  void calibrate(std::span<const float> in) override {
    // Subsample tiles on big feature maps (the statistics converge quickly
    // and the histograms are per position anyway), but walk every tile of
    // tiny ones — see lowino_calibration_stride.
    conv_.calibrate(in, lowino_calibration_stride(conv_.geometry().total_tiles));
  }
  void finalize_calibration() override { conv_.finalize_calibration(); }
  void set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }
  EngineKind kind() const override { return kind_; }

 private:
  static LoWinoConfig make_config(std::size_t m) {
    LoWinoConfig cfg;
    cfg.m = m;
    // Default kAuto: small layers run staged, layers whose V + Z tensors
    // outgrow aggregate L2 stream through the fused per-thread panels.
    // LOWINO_EXECUTION_MODE=staged|fused|auto overrides for experiments.
    if (const char* env = std::getenv("LOWINO_EXECUTION_MODE")) {
      parse_execution_mode(env, cfg.execution_mode);
    }
    return cfg;
  }
  LoWinoConvolution conv_;
  EngineKind kind_;
};

class DownscaleEngine final : public ConvEngine {
 public:
  DownscaleEngine(const ConvDesc& desc, std::size_t m, EngineKind kind)
      : conv_(desc, m), kind_(kind) {}
  void calibrate(std::span<const float> in) override { conv_.calibrate(in); }
  void finalize_calibration() override { conv_.finalize_calibration(); }
  void set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }
  EngineKind kind() const override { return kind_; }

 private:
  DownscaleWinoConv conv_;
  EngineKind kind_;
};

class UpcastEngine final : public ConvEngine {
 public:
  explicit UpcastEngine(const ConvDesc& desc) : conv_(desc) {}
  void calibrate(std::span<const float> in) override { conv_.calibrate(in); }
  void finalize_calibration() override { conv_.finalize_calibration(); }
  void set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }
  EngineKind kind() const override { return EngineKind::kUpcastF2; }

 private:
  UpcastWinoConv conv_;
};

class VendorEngine final : public ConvEngine {
 public:
  explicit VendorEngine(const ConvDesc& desc) : conv_(desc) {}
  void calibrate(std::span<const float> in) override { conv_.calibrate(in); }
  void finalize_calibration() override { conv_.finalize_calibration(); }
  void set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }
  EngineKind kind() const override { return EngineKind::kVendorF2; }

 private:
  VendorWinoF23 conv_;
};

}  // namespace

std::unique_ptr<ConvEngine> make_conv_engine(EngineKind kind, const ConvDesc& desc) {
  desc.validate();
  switch (kind) {
    case EngineKind::kFp32Direct:
      return std::make_unique<Fp32DirectEngine>(desc);
    case EngineKind::kFp32WinoF2:
      return std::make_unique<Fp32WinoEngine>(desc, 2, kind);
    case EngineKind::kFp32WinoF4:
      return std::make_unique<Fp32WinoEngine>(desc, 4, kind);
    case EngineKind::kInt8Direct:
      return std::make_unique<Int8DirectEngine>(desc);
    case EngineKind::kLoWinoF2:
      return std::make_unique<LoWinoEngine>(desc, 2, kind);
    case EngineKind::kLoWinoF4:
      return std::make_unique<LoWinoEngine>(desc, 4, kind);
    case EngineKind::kLoWinoF6:
      return std::make_unique<LoWinoEngine>(desc, 6, kind);
    case EngineKind::kDownscaleF2:
      return std::make_unique<DownscaleEngine>(desc, 2, kind);
    case EngineKind::kDownscaleF4:
      return std::make_unique<DownscaleEngine>(desc, 4, kind);
    case EngineKind::kUpcastF2:
      return std::make_unique<UpcastEngine>(desc);
    case EngineKind::kVendorF2:
      return std::make_unique<VendorEngine>(desc);
  }
  throw std::invalid_argument("unknown engine kind");
}

}  // namespace lowino

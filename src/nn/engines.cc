#include "nn/engines.h"

#include <cctype>
#include <stdexcept>
#include <vector>

#include "baselines/downscale_wino.h"
#include "baselines/fp32_wino.h"
#include "baselines/upcast_wino.h"
#include "baselines/vendor_wino.h"
#include "common/env.h"
#include "direct/direct_f32.h"
#include "direct/direct_int8.h"
#include "lowino/lowino.h"
#include "nn/engine_registry.h"

namespace lowino {

namespace {

/// Token comparison: ASCII case-insensitive with '-' == '_'.
bool token_matches(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    char ca = a[i], cb = b[i];
    if (ca == '-') ca = '_';
    if (cb == '-') cb = '_';
    if (std::tolower(static_cast<unsigned char>(ca)) !=
        std::tolower(static_cast<unsigned char>(cb))) {
      return false;
    }
  }
  return true;
}

}  // namespace

const char* engine_name(EngineKind kind) { return engine_registration(kind).name; }

const char* engine_token(EngineKind kind) { return engine_registration(kind).token; }

std::optional<EngineKind> engine_kind_from_string(std::string_view name) {
  for (const EngineRegistration& reg : engine_registry()) {
    if (token_matches(name, reg.token) || name == reg.name) {
      return reg.kind;
    }
  }
  return std::nullopt;
}

std::span<const EngineKind> all_engine_kinds() {
  static const std::vector<EngineKind> kinds = [] {
    std::vector<EngineKind> k;
    for (const EngineRegistration& reg : engine_registry()) k.push_back(reg.kind);
    return k;
  }();
  return kinds;
}

EngineCaps engine_caps(EngineKind kind, const ConvDesc& desc) {
  const EngineRegistration& reg = engine_registration(kind);
  EngineCaps caps;
  caps.quantized = reg.quantized;
  caps.post_ops = reg.post_ops;
  caps.u8_handoff = reg.u8_handoff;
  caps.supports = desc.is_valid() && reg.supports(desc);
  return caps;
}

std::size_t lowino_calibration_stride(std::size_t total_tiles) {
  const long forced = config_long("LOWINO_CALIB_STRIDE", 0);
  if (forced > 0) return static_cast<std::size_t>(forced);
  return total_tiles < kCalibDenseTileLimit ? 1 : 2;
}

// Deprecated shims (see engines.h): the kind-invariant EngineCaps bits,
// answered straight from the registry.
bool engine_is_quantized(EngineKind kind) { return engine_registration(kind).quantized; }

bool engine_supports_post_ops(EngineKind kind) {
  return engine_registration(kind).post_ops;
}

bool post_op_fusion_enabled() { return config_flag("LOWINO_FUSE_POSTOPS", true); }

bool engine_supports_u8_handoff(EngineKind kind) {
  return engine_registration(kind).u8_handoff;
}

bool u8_handoff_enabled() { return config_flag("LOWINO_U8_HANDOFF", true); }

bool ConvEngine::supports_post_ops() const {
  return engine_registration(kind()).post_ops;
}

bool ConvEngine::supports_u8_handoff() const {
  return engine_registration(kind()).u8_handoff;
}

// ---------------------------------------------------------------------------
// Lifecycle state machine (the non-virtual public API).

void ConvEngine::misuse(const char* what) const {
  throw std::logic_error(std::string(engine_name(kind())) + ": " + what);
}

void ConvEngine::calibrate(std::span<const float> input_nchw) {
  if (state_ != Lifecycle::kCalibrating) {
    misuse("calibrate() after finalize_calibration() — the input scales are "
           "already fixed; create a new engine to recalibrate");
  }
  saw_calibration_ = true;
  do_calibrate(input_nchw);
}

void ConvEngine::finalize_calibration() {
  if (state_ != Lifecycle::kCalibrating) {
    misuse("finalize_calibration() called twice");
  }
  if (!saw_calibration_ && engine_registration(kind()).quantized) {
    misuse("finalize_calibration() without any calibrate() sample — a "
           "quantized engine has no statistics to derive input scales from");
  }
  do_finalize_calibration();
  state_ = Lifecycle::kFinalized;
}

void ConvEngine::set_filters(std::span<const float> weights, std::span<const float> bias) {
  if (state_ == Lifecycle::kCalibrating) {
    if (engine_registration(kind()).quantized) {
      misuse(saw_calibration_
                 ? "set_filters() before finalize_calibration() — finalize the "
                   "input scales first"
                 : "set_filters() on an uncalibrated quantized engine — run "
                   "calibrate() + finalize_calibration() first");
    }
    // FP32 engines skip calibration entirely; advance implicitly.
    state_ = Lifecycle::kFinalized;
  }
  do_set_filters(weights, bias);
  state_ = Lifecycle::kReady;
}

void ConvEngine::run(std::span<const float> input, std::span<float> output,
                     ThreadPool* pool) {
  if (state_ != Lifecycle::kReady) {
    misuse("run() before set_filters()");
  }
  do_run(input, output, pool);
}

void ConvEngine::run(std::span<const float> input, std::span<float> output,
                     ThreadPool* pool, const PostOps& post) {
  if (state_ != Lifecycle::kReady) {
    misuse("run() before set_filters()");
  }
  if (post.none()) {
    do_run(input, output, pool);
    return;
  }
  if (!supports_post_ops()) {
    misuse("run() with a fused PostOps epilogue on an engine that does not "
           "support post-ops — check supports_post_ops() and fall back to "
           "unfused execution");
  }
  do_run_post(input, output, pool, post);
}

void ConvEngine::do_run_post(std::span<const float>, std::span<float>, ThreadPool*,
                             const PostOps&) {
  misuse("do_run_post() not implemented despite engine_supports_post_ops() — "
         "the capability table and the engine wrapper disagree");
}

void ConvEngine::set_input_u8(const QuantParams& qp) {
  if (!supports_u8_handoff()) {
    misuse("set_input_u8() on an engine without u8 hand-off support — check "
           "supports_u8_handoff() before configuring dtypes");
  }
  if (state_ == Lifecycle::kCalibrating) {
    misuse("set_input_u8() before finalize_calibration() — the hand-off "
           "quantization composes with the engine's calibrated scales");
  }
  do_set_input_u8(qp);
  in_dtype_ = DType::kU8;
}

void ConvEngine::set_output_u8(const QuantParams& qp) {
  if (!supports_u8_handoff()) {
    misuse("set_output_u8() on an engine without u8 hand-off support — check "
           "supports_u8_handoff() before configuring dtypes");
  }
  if (state_ == Lifecycle::kCalibrating) {
    misuse("set_output_u8() before finalize_calibration() — the hand-off "
           "quantization composes with the engine's calibrated scales");
  }
  do_set_output_u8(qp);
  out_dtype_ = DType::kU8;
}

void ConvEngine::run_typed(const void* input, void* output, ThreadPool* pool,
                           const PostOps& post) {
  if (state_ != Lifecycle::kReady) {
    misuse("run_typed() before set_filters()");
  }
  if (!supports_u8_handoff()) {
    misuse("run_typed() on an engine without u8 hand-off support — use the "
           "span-typed run() instead");
  }
  if (!post.none() && !supports_post_ops()) {
    misuse("run_typed() with a fused PostOps epilogue on an engine that does "
           "not support post-ops");
  }
  do_run_typed(input, output, pool, post);
}

void ConvEngine::do_set_input_u8(const QuantParams&) {
  misuse("do_set_input_u8() not implemented despite engine_supports_u8_handoff() "
         "— the capability table and the engine wrapper disagree");
}

void ConvEngine::do_set_output_u8(const QuantParams&) {
  misuse("do_set_output_u8() not implemented despite engine_supports_u8_handoff() "
         "— the capability table and the engine wrapper disagree");
}

void ConvEngine::do_run_typed(const void*, void*, ThreadPool*, const PostOps&) {
  misuse("do_run_typed() not implemented despite engine_supports_u8_handoff() — "
         "the capability table and the engine wrapper disagree");
}

namespace {

/// CRTP-free small wrappers; each translates the protected do_* interface
/// onto the underlying engine's own API (the public methods on the ConvEngine
/// base enforce the lifecycle before delegating here).
class Fp32DirectEngine final : public ConvEngine {
 public:
  explicit Fp32DirectEngine(const ConvDesc& desc) : conv_(desc) {}
  EngineKind kind() const override { return EngineKind::kFp32Direct; }

 protected:
  void do_calibrate(std::span<const float>) override {}
  void do_finalize_calibration() override {}
  void do_set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void do_run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }
  void do_run_post(std::span<const float> in, std::span<float> out, ThreadPool* pool,
                   const PostOps& post) override {
    conv_.execute_nchw(in, out, pool, post);
  }

 private:
  Im2colConvF32 conv_;
};

class Fp32WinoEngine final : public ConvEngine {
 public:
  Fp32WinoEngine(const ConvDesc& desc, std::size_t m, EngineKind kind)
      : conv_(desc, m), kind_(kind) {}
  EngineKind kind() const override { return kind_; }

 protected:
  void do_calibrate(std::span<const float>) override {}
  void do_finalize_calibration() override {}
  void do_set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void do_run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }

 private:
  Fp32WinoConv conv_;
  EngineKind kind_;
};

class Int8DirectEngine final : public ConvEngine {
 public:
  explicit Int8DirectEngine(const ConvDesc& desc) : conv_(desc) {}
  EngineKind kind() const override { return EngineKind::kInt8Direct; }

 protected:
  void do_calibrate(std::span<const float> in) override { conv_.calibrate(in); }
  void do_finalize_calibration() override { conv_.finalize_calibration(); }
  void do_set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void do_run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }
  void do_run_post(std::span<const float> in, std::span<float> out, ThreadPool* pool,
                   const PostOps& post) override {
    conv_.execute_nchw(in, out, pool, post);
  }
  void do_set_input_u8(const QuantParams& qp) override { conv_.set_input_u8(qp); }
  void do_set_output_u8(const QuantParams& qp) override { conv_.set_output_u8(qp); }
  void do_run_typed(const void* in, void* out, ThreadPool* pool,
                    const PostOps& post) override {
    conv_.execute_typed(in, out, pool, post);
  }

 private:
  Int8DirectConv conv_;
};

class LoWinoEngine final : public ConvEngine {
 public:
  LoWinoEngine(const ConvDesc& desc, std::size_t m, EngineKind kind)
      : conv_(desc, make_config(m)), kind_(kind) {}
  EngineKind kind() const override { return kind_; }

 protected:
  void do_calibrate(std::span<const float> in) override {
    // Subsample tiles on big feature maps (the statistics converge quickly
    // and the histograms are per position anyway), but walk every tile of
    // tiny ones — see lowino_calibration_stride.
    conv_.calibrate(in, lowino_calibration_stride(conv_.geometry().total_tiles));
  }
  void do_finalize_calibration() override { conv_.finalize_calibration(); }
  void do_set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void do_run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }
  void do_run_post(std::span<const float> in, std::span<float> out, ThreadPool* pool,
                   const PostOps& post) override {
    conv_.execute_nchw(in, out, pool, post);
  }
  void do_set_input_u8(const QuantParams& qp) override { conv_.set_input_u8(qp); }
  void do_set_output_u8(const QuantParams& qp) override { conv_.set_output_u8(qp); }
  void do_run_typed(const void* in, void* out, ThreadPool* pool,
                    const PostOps& post) override {
    conv_.execute_nchw_typed(in, out, pool, post);
  }

 private:
  static LoWinoConfig make_config(std::size_t m) {
    LoWinoConfig cfg;
    cfg.m = m;
    // Default kAuto: small layers run staged, layers whose V + Z tensors
    // outgrow aggregate L2 stream through the fused per-thread panels.
    // LOWINO_EXECUTION_MODE=staged|fused|auto (env or RuntimeConfig
    // override) overrides for experiments.
    const std::string mode = config_string("LOWINO_EXECUTION_MODE", "");
    if (!mode.empty()) parse_execution_mode(mode.c_str(), cfg.execution_mode);
    return cfg;
  }
  LoWinoConvolution conv_;
  EngineKind kind_;
};

class DownscaleEngine final : public ConvEngine {
 public:
  DownscaleEngine(const ConvDesc& desc, std::size_t m, EngineKind kind)
      : conv_(desc, m), kind_(kind) {}
  EngineKind kind() const override { return kind_; }

 protected:
  void do_calibrate(std::span<const float> in) override { conv_.calibrate(in); }
  void do_finalize_calibration() override { conv_.finalize_calibration(); }
  void do_set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void do_run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }

 private:
  DownscaleWinoConv conv_;
  EngineKind kind_;
};

class UpcastEngine final : public ConvEngine {
 public:
  explicit UpcastEngine(const ConvDesc& desc) : conv_(desc) {}
  EngineKind kind() const override { return EngineKind::kUpcastF2; }

 protected:
  void do_calibrate(std::span<const float> in) override { conv_.calibrate(in); }
  void do_finalize_calibration() override { conv_.finalize_calibration(); }
  void do_set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void do_run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }

 private:
  UpcastWinoConv conv_;
};

class VendorEngine final : public ConvEngine {
 public:
  explicit VendorEngine(const ConvDesc& desc) : conv_(desc) {}
  EngineKind kind() const override { return EngineKind::kVendorF2; }

 protected:
  void do_calibrate(std::span<const float> in) override { conv_.calibrate(in); }
  void do_finalize_calibration() override { conv_.finalize_calibration(); }
  void do_set_filters(std::span<const float> w, std::span<const float> b) override {
    conv_.set_filters(w, b);
  }
  void do_run(std::span<const float> in, std::span<float> out, ThreadPool* pool) override {
    conv_.execute_nchw(in, out, pool);
  }

 private:
  VendorWinoF23 conv_;
};

/// Shape gates mirroring the wrapped constructors' acceptance sets exactly
/// (the fuzzer cross-checks supports == false against a thrown
/// std::invalid_argument). Callers guarantee desc.is_valid().
bool supports_any_ungrouped(const ConvDesc& desc) { return desc.groups == 1; }

bool supports_winograd(const ConvDesc& desc) {
  return desc.groups == 1 && desc.stride == 1 && desc.symmetric_padding() &&
         desc.kernel >= 2;
}

bool supports_winograd_r3(const ConvDesc& desc) {
  return supports_winograd(desc) && desc.kernel == 3;
}

}  // namespace

void register_core_engines(EngineRegistrations& regs) {
  regs.push_back({EngineKind::kFp32Direct, "FP32 direct (im2col GEMM)", "fp32_direct",
                  /*quantized=*/false, /*post_ops=*/true, /*u8_handoff=*/false,
                  supports_any_ungrouped, [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(new Fp32DirectEngine(d));
                  }});
  regs.push_back({EngineKind::kFp32WinoF2, "FP32 Winograd F(2x2,3x3)", "fp32_wino_f2",
                  false, false, false, supports_winograd, [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(
                        new Fp32WinoEngine(d, 2, EngineKind::kFp32WinoF2));
                  }});
  regs.push_back({EngineKind::kFp32WinoF4, "FP32 Winograd F(4x4,3x3)", "fp32_wino_f4",
                  false, false, false, supports_winograd, [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(
                        new Fp32WinoEngine(d, 4, EngineKind::kFp32WinoF4));
                  }});
  regs.push_back({EngineKind::kInt8Direct, "INT8 direct", "int8_direct",
                  /*quantized=*/true, /*post_ops=*/true, /*u8_handoff=*/true,
                  supports_any_ungrouped, [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(new Int8DirectEngine(d));
                  }});
  regs.push_back({EngineKind::kLoWinoF2, "LoWino F(2x2,3x3)", "lowino_f2",
                  true, true, true, supports_winograd, [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(
                        new LoWinoEngine(d, 2, EngineKind::kLoWinoF2));
                  }});
  regs.push_back({EngineKind::kLoWinoF4, "LoWino F(4x4,3x3)", "lowino_f4",
                  true, true, true, supports_winograd, [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(
                        new LoWinoEngine(d, 4, EngineKind::kLoWinoF4));
                  }});
  regs.push_back({EngineKind::kLoWinoF6, "LoWino F(6x6,3x3)", "lowino_f6",
                  true, true, true, supports_winograd, [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(
                        new LoWinoEngine(d, 6, EngineKind::kLoWinoF6));
                  }});
  regs.push_back({EngineKind::kDownscaleF2, "Down-scaling F(2x2,3x3)", "downscale_f2",
                  true, false, false, supports_winograd, [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(
                        new DownscaleEngine(d, 2, EngineKind::kDownscaleF2));
                  }});
  regs.push_back({EngineKind::kDownscaleF4, "Down-scaling F(4x4,3x3)", "downscale_f4",
                  true, false, false, supports_winograd, [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(
                        new DownscaleEngine(d, 4, EngineKind::kDownscaleF4));
                  }});
  regs.push_back({EngineKind::kUpcastF2, "Up-casting INT16 F(2x2,3x3)", "upcast_f2",
                  true, false, false, supports_winograd_r3, [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(new UpcastEngine(d));
                  }});
  regs.push_back({EngineKind::kVendorF2, "Vendor-style fused INT8 F(2x2,3x3)",
                  "vendor_f2", true, false, false, supports_winograd_r3,
                  [](const ConvDesc& d) {
                    return std::unique_ptr<ConvEngine>(new VendorEngine(d));
                  }});
}

std::unique_ptr<ConvEngine> make_conv_engine(EngineKind kind, const ConvDesc& desc) {
  desc.validate();
  return engine_registration(kind).factory(desc);
}

}  // namespace lowino

#include "nn/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace lowino {
namespace {

constexpr const char* kClassNames[10] = {
    "h-bar", "v-bar", "diagonal", "square", "ring", "disk", "cross", "checker", "x-shape",
    "two-dots"};

/// Draws one shape of class `label` into img (hw x hw, zero-initialized).
void draw_shape(int label, std::size_t hw, Rng& rng, float* img) {
  const auto fhw = static_cast<float>(hw);
  const float cx = fhw / 2.0f + rng.uniform(-2.0f, 2.0f);
  const float cy = fhw / 2.0f + rng.uniform(-2.0f, 2.0f);
  const float thickness = 1.0f + rng.uniform(0.0f, 1.2f);
  const float radius = fhw * 0.28f + rng.uniform(-1.5f, 1.5f);
  const float amp = rng.uniform(0.7f, 1.3f);

  for (std::size_t y = 0; y < hw; ++y) {
    for (std::size_t x = 0; x < hw; ++x) {
      const float fx = static_cast<float>(x) - cx;
      const float fy = static_cast<float>(y) - cy;
      const float dist = std::sqrt(fx * fx + fy * fy);
      bool on = false;
      switch (label) {
        case 0: on = std::abs(fy) <= thickness; break;                       // h-bar
        case 1: on = std::abs(fx) <= thickness; break;                       // v-bar
        case 2: on = std::abs(fx - fy) <= thickness * 1.2f; break;           // diagonal
        case 3: on = std::max(std::abs(fx), std::abs(fy)) <= radius * 0.7f; break;  // square
        case 4: on = std::abs(dist - radius) <= thickness; break;            // ring
        case 5: on = dist <= radius * 0.75f; break;                          // disk
        case 6: on = std::abs(fx) <= thickness || std::abs(fy) <= thickness; break;  // cross
        case 7:  // checkerboard
          on = (((x / 2) + (y / 2)) % 2) == 0;
          break;
        case 8:  // x-shape
          on = std::abs(fx - fy) <= thickness || std::abs(fx + fy) <= thickness;
          break;
        case 9:  // two dots
          on = std::hypot(fx - radius * 0.6f, fy) <= thickness + 1.0f ||
               std::hypot(fx + radius * 0.6f, fy) <= thickness + 1.0f;
          break;
        default: break;
      }
      if (on) img[y * hw + x] = amp;
    }
  }
}

}  // namespace

const char* shape_class_name(int label) {
  return label >= 0 && label < 10 ? kClassNames[label] : "?";
}

Dataset make_shape_dataset(std::size_t n, std::uint64_t seed, std::size_t hw) {
  Dataset data;
  data.image_hw = hw;
  data.images.assign(n * hw * hw, 0.0f);
  data.labels.resize(n);
  Rng rng(seed);

  // Balanced labels, shuffled.
  for (std::size_t i = 0; i < n; ++i) data.labels[i] = static_cast<int>(i % 10);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(data.labels[i - 1], data.labels[rng.next_below(i)]);
  }

  for (std::size_t i = 0; i < n; ++i) {
    float* img = data.images.data() + i * hw * hw;
    draw_shape(data.labels[i], hw, rng, img);
    // Additive noise + zero-centering.
    for (std::size_t p = 0; p < hw * hw; ++p) {
      img[p] = img[p] - 0.3f + 0.15f * rng.normal();
    }
  }
  return data;
}

void fill_batch(const Dataset& data, std::size_t first, std::size_t batch, Tensor<float>& x,
                std::vector<int>& y) {
  const std::size_t hw = data.image_hw;
  assert(first + batch <= data.size());
  x.reshape({batch, data.channels, hw, hw});
  y.resize(batch);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto img = data.image(first + b);
    std::copy(img.begin(), img.end(), x.data() + b * img.size());
    y[b] = data.labels[first + b];
  }
}

}  // namespace lowino

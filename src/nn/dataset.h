// Procedural 10-class shape-classification dataset.
//
// Substitute for ImageNet in the Table 3 accuracy experiment (see DESIGN.md):
// grayscale images of parametric shapes with positional jitter, intensity
// jitter and additive Gaussian noise. Deterministic given the seed; hard
// enough that an untrained network scores ~10% and a small trained CNN
// scores >90%, so quantization-induced accuracy loss is measurable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace lowino {

struct Dataset {
  std::size_t image_hw = 16;
  std::size_t channels = 1;
  std::size_t num_classes = 10;
  std::vector<float> images;  ///< [n][1][hw][hw]
  std::vector<int> labels;    ///< [n]

  std::size_t size() const { return labels.size(); }
  std::span<const float> image(std::size_t i) const {
    const std::size_t n = channels * image_hw * image_hw;
    return {images.data() + i * n, n};
  }
};

/// Generates `n` samples (labels balanced round-robin, order shuffled).
Dataset make_shape_dataset(std::size_t n, std::uint64_t seed, std::size_t hw = 16);

/// Copies samples [first, first + batch) into an NCHW batch tensor + labels.
void fill_batch(const Dataset& data, std::size_t first, std::size_t batch, Tensor<float>& x,
                std::vector<int>& y);

const char* shape_class_name(int label);

}  // namespace lowino

#include "nn/layers.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "direct/direct_f32.h"
#include "gemm/fp32_gemm.h"

namespace lowino {
namespace {

void sgd_update(std::vector<float>& param, std::vector<float>& grad, std::vector<float>& mom,
                float lr, float momentum) {
  for (std::size_t i = 0; i < param.size(); ++i) {
    mom[i] = momentum * mom[i] + grad[i];
    param[i] -= lr * mom[i];
    grad[i] = 0.0f;
  }
}

/// Scatter-adds an im2col gradient back onto the input image (inverse of
/// im2col_f32, accumulating where patches overlap).
void col2im_add(const ConvDesc& desc, const float* col, float* grad_in) {
  const std::size_t C = desc.in_channels, H = desc.height, W = desc.width;
  const std::size_t r = desc.kernel, pad = desc.pad;
  const std::size_t OH = desc.out_height(), OW = desc.out_width();
  const std::size_t patch = C * r * r;
  for (std::size_t oh = 0; oh < OH; ++oh) {
    for (std::size_t ow = 0; ow < OW; ++ow) {
      const float* row = col + (oh * OW + ow) * patch;
      std::size_t idx = 0;
      for (std::size_t c = 0; c < C; ++c) {
        for (std::size_t i = 0; i < r; ++i) {
          const std::ptrdiff_t ih =
              static_cast<std::ptrdiff_t>(oh + i) - static_cast<std::ptrdiff_t>(pad);
          for (std::size_t j = 0; j < r; ++j) {
            const std::ptrdiff_t iw =
                static_cast<std::ptrdiff_t>(ow + j) - static_cast<std::ptrdiff_t>(pad);
            const bool oob = ih < 0 || ih >= static_cast<std::ptrdiff_t>(H) || iw < 0 ||
                             iw >= static_cast<std::ptrdiff_t>(W);
            if (!oob) grad_in[(c * H + ih) * W + iw] += row[idx];
            ++idx;
          }
        }
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ConvLayer
ConvLayer::ConvLayer(std::size_t in_channels, std::size_t out_channels, std::size_t hw,
                     std::size_t kernel, std::size_t pad, Rng& rng, std::size_t groups)
    : c_(in_channels), k_(out_channels), hw_(hw), r_(kernel), pad_(pad), groups_(groups) {
  if (groups_ < 1 || c_ % groups_ != 0 || k_ % groups_ != 0) {
    throw std::invalid_argument("ConvLayer: channels must be divisible by groups");
  }
  const std::size_t cg = c_ / groups_;  // input channels per filter
  const std::size_t n = k_ * cg * r_ * r_;
  weights_.resize(n);
  bias_.assign(k_, 0.0f);
  grad_w_.assign(n, 0.0f);
  grad_b_.assign(k_, 0.0f);
  mom_w_.assign(n, 0.0f);
  mom_b_.assign(k_, 0.0f);
  const float stddev = std::sqrt(2.0f / static_cast<float>(cg * r_ * r_));  // He init
  for (auto& w : weights_) w = rng.normal() * stddev;
}

std::string ConvLayer::name() const {
  const std::string base = "conv" + std::to_string(r_) + "x" + std::to_string(r_) + "(" +
                           std::to_string(c_) + "->" + std::to_string(k_);
  if (groups_ == 1) return base + ")";
  if (groups_ == c_) return "dw" + base + ")";
  return base + ",g=" + std::to_string(groups_) + ")";
}

ConvDesc ConvLayer::desc_for_batch(std::size_t batch) const {
  ConvDesc d;
  d.batch = batch;
  d.in_channels = c_;
  d.out_channels = k_;
  d.height = d.width = hw_;
  d.kernel = r_;
  d.pad = pad_;
  d.groups = groups_;
  return d;
}

void ConvLayer::forward(const Tensor<float>& in, Tensor<float>& out, bool train) {
  const std::size_t batch = in.dim(0);
  const ConvDesc d = desc_for_batch(batch);
  out.reshape({batch, k_, d.out_height(), d.out_width()});
  if (train) cached_in_ = in;
  forward_fp32(in.span(), out.span(), batch);
}

void ConvLayer::forward_fp32(std::span<const float> in, std::span<float> out,
                             std::size_t batch) {
  const ConvDesc d = desc_for_batch(batch);
  const std::size_t rows = d.out_height() * d.out_width();
  if (groups_ != 1) {
    // Grouped layers skip the im2col-GEMM formulation (the per-filter patch
    // is tiny — r*r for depthwise) and run direct loops instead.
    const std::size_t cg = c_ / groups_, kg = k_ / groups_;
    const std::size_t patch_g = cg * r_ * r_;
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t k = 0; k < k_; ++k) {
        const std::size_t c0 = (k / kg) * cg;  // the group's first input channel
        float* dst = out.data() + (b * k_ + k) * rows;
        for (std::size_t oh = 0; oh < d.out_height(); ++oh) {
          for (std::size_t ow = 0; ow < d.out_width(); ++ow) {
            float acc = bias_[k];
            for (std::size_t ci = 0; ci < cg; ++ci) {
              const float* src = in.data() + ((b * c_ + c0 + ci) * hw_) * hw_;
              const float* w = weights_.data() + k * patch_g + ci * r_ * r_;
              for (std::size_t i = 0; i < r_; ++i) {
                const std::ptrdiff_t ih =
                    static_cast<std::ptrdiff_t>(oh + i) - static_cast<std::ptrdiff_t>(pad_);
                if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(hw_)) continue;
                for (std::size_t j = 0; j < r_; ++j) {
                  const std::ptrdiff_t iw =
                      static_cast<std::ptrdiff_t>(ow + j) - static_cast<std::ptrdiff_t>(pad_);
                  if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(hw_)) continue;
                  acc += src[ih * static_cast<std::ptrdiff_t>(hw_) + iw] * w[i * r_ + j];
                }
              }
            }
            dst[oh * d.out_width() + ow] = acc;
          }
        }
      }
    }
    return;
  }
  const std::size_t patch = c_ * r_ * r_;

  // col_ keeps the whole batch's im2col: backward() consumes it after a
  // forward(train = true), which routes through here.
  col_.ensure(batch * rows * patch);
  // wT: patch x K operand of the GEMM (weights are K x patch row-major).
  wt_scratch_.ensure(patch * k_);
  float* wT = wt_scratch_.data();
  for (std::size_t k = 0; k < k_; ++k) {
    for (std::size_t p = 0; p < patch; ++p) wT[p * k_ + k] = weights_[k * patch + p];
  }
  rows_scratch_.ensure(rows * k_);
  float* out_rows = rows_scratch_.data();
  for (std::size_t b = 0; b < batch; ++b) {
    float* col_b = col_.data() + b * rows * patch;
    im2col_f32(d, in, b, col_b);
    fp32_gemm(col_b, patch, wT, k_, out_rows, k_, rows, patch, k_);
    for (std::size_t k = 0; k < k_; ++k) {
      float* dst = out.data() + (b * k_ + k) * rows;
      const float bk = bias_[k];
      for (std::size_t p = 0; p < rows; ++p) dst[p] = out_rows[p * k_ + k] + bk;
    }
  }
}

void ConvLayer::backward(const Tensor<float>& grad_out, Tensor<float>& grad_in) {
  const std::size_t batch = grad_out.dim(0);
  const ConvDesc d = desc_for_batch(batch);
  const std::size_t rows = d.out_height() * d.out_width();
  grad_in.reshape(cached_in_.shape());
  grad_in.zero();
  if (groups_ != 1) {
    // Direct-loop gradients, mirroring the grouped forward (no im2col cache).
    const std::size_t cg = c_ / groups_, kg = k_ / groups_;
    const std::size_t patch_g = cg * r_ * r_;
    for (std::size_t b = 0; b < batch; ++b) {
      for (std::size_t k = 0; k < k_; ++k) {
        const std::size_t c0 = (k / kg) * cg;
        const float* g_plane = grad_out.data() + (b * k_ + k) * rows;
        for (std::size_t oh = 0; oh < d.out_height(); ++oh) {
          for (std::size_t ow = 0; ow < d.out_width(); ++ow) {
            const float g = g_plane[oh * d.out_width() + ow];
            grad_b_[k] += g;
            for (std::size_t ci = 0; ci < cg; ++ci) {
              const float* src = cached_in_.data() + ((b * c_ + c0 + ci) * hw_) * hw_;
              float* gin = grad_in.data() + ((b * c_ + c0 + ci) * hw_) * hw_;
              float* gw = grad_w_.data() + k * patch_g + ci * r_ * r_;
              const float* w = weights_.data() + k * patch_g + ci * r_ * r_;
              for (std::size_t i = 0; i < r_; ++i) {
                const std::ptrdiff_t ih =
                    static_cast<std::ptrdiff_t>(oh + i) - static_cast<std::ptrdiff_t>(pad_);
                if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(hw_)) continue;
                for (std::size_t j = 0; j < r_; ++j) {
                  const std::ptrdiff_t iw =
                      static_cast<std::ptrdiff_t>(ow + j) - static_cast<std::ptrdiff_t>(pad_);
                  if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(hw_)) continue;
                  const std::size_t at = ih * hw_ + iw;
                  gw[i * r_ + j] += g * src[at];
                  gin[at] += g * w[i * r_ + j];
                }
              }
            }
          }
        }
      }
    }
    return;
  }
  const std::size_t patch = c_ * r_ * r_;

  std::vector<float> tmp_w(k_ * patch);
  std::vector<float> g_rows(rows * k_);
  std::vector<float> col_grad(rows * patch);
  for (std::size_t b = 0; b < batch; ++b) {
    const float* col_b = col_.data() + b * rows * patch;
    const float* g_b = grad_out.data() + b * k_ * rows;  // K x rows

    // grad_w += G_b (K x rows) x col_b (rows x patch)
    fp32_gemm(g_b, rows, col_b, patch, tmp_w.data(), patch, k_, rows, patch);
    for (std::size_t i = 0; i < tmp_w.size(); ++i) grad_w_[i] += tmp_w[i];
    // grad_b += row sums
    for (std::size_t k = 0; k < k_; ++k) {
      float s = 0.0f;
      for (std::size_t p = 0; p < rows; ++p) s += g_b[k * rows + p];
      grad_b_[k] += s;
    }
    // grad_in: col_grad (rows x patch) = G_b^T (rows x K) x W (K x patch)
    for (std::size_t k = 0; k < k_; ++k) {
      for (std::size_t p = 0; p < rows; ++p) g_rows[p * k_ + k] = g_b[k * rows + p];
    }
    fp32_gemm(g_rows.data(), k_, weights_.data(), patch, col_grad.data(), patch, rows, k_,
              patch);
    col2im_add(d, col_grad.data(), grad_in.data() + b * c_ * hw_ * hw_);
  }
}

void ConvLayer::update(float lr, float momentum) {
  sgd_update(weights_, grad_w_, mom_w_, lr, momentum);
  sgd_update(bias_, grad_b_, mom_b_, lr, momentum);
  ++weights_version_;
}

ConvEngine& ConvLayer::engine_for(EngineKind kind, std::size_t batch) {
  EngineSlot& slot = engines_[{kind, batch}];
  if (slot.engine == nullptr) {
    slot.engine = make_conv_engine(kind, desc_for_batch(batch));
    slot.weights_version = 0;
  }
  return *slot.engine;
}

void ConvLayer::calibrate_with(const Tensor<float>& in, EngineKind kind) {
  const EngineCaps caps = engine_caps(kind, desc_for_batch(in.dim(0)));
  // Layers whose shape `kind` cannot handle stay FP32 under a forced-engine
  // sweep (see forward_engine_fused) — no calibration needed.
  if (!caps.quantized || !caps.supports || !quantizable_) return;
  engine_for(kind, in.dim(0)).calibrate(in.span());
}

void ConvLayer::finalize_calibration(EngineKind kind) {
  if (!engine_caps(kind, desc_for_batch(1)).quantized) return;
  for (auto& [key, slot] : engines_) {
    if (key.first == kind && slot.engine != nullptr && !slot.calibrated) {
      slot.engine->finalize_calibration();
      slot.calibrated = true;
    }
  }
}

void ConvLayer::forward_engine(const Tensor<float>& in, Tensor<float>& out, EngineKind kind,
                               ThreadPool* pool) {
  forward_engine_fused(in, out, kind, pool, PostOps{});
}

void ConvLayer::forward_engine_fused(const Tensor<float>& in, Tensor<float>& out,
                                     EngineKind kind, ThreadPool* pool, const PostOps& post) {
  const std::size_t batch = in.dim(0);
  const ConvDesc d = desc_for_batch(batch);
  const EngineCaps caps = engine_caps(kind, d);
  const bool fuse = !post.none() && quantizable_ && caps.post_ops && caps.supports;
  if (!quantizable_ || !caps.supports) {
    // Not quantizable, or the forced kind cannot handle this layer's shape
    // (e.g. a depthwise layer under an int8_direct sweep): stay FP32, exactly
    // like a non-quantizable stem.
    forward(in, out, /*train=*/false);
  } else {
    out.reshape({batch, k_, d.out_height(), d.out_width()});
    EngineSlot& slot = engines_[{kind, batch}];
    if (slot.engine == nullptr) {
      if (caps.quantized) {
        throw std::logic_error(name() + ": engine not calibrated for this batch size (" +
                               std::to_string(batch) + ") — run the calibration pass first");
      }
      slot.engine = make_conv_engine(kind, d);  // FP32 engines need no calibration
    }
    if (slot.weights_version != weights_version_) {
      slot.engine->set_filters({weights_.data(), weights_.size()},
                               {bias_.data(), bias_.size()});
      slot.weights_version = weights_version_;
    }
    if (fuse) {
      slot.engine->run(in.span(), out.span(), pool, post);
      return;
    }
    slot.engine->run(in.span(), out.span(), pool);
  }
  if (post.none()) return;
  // Unfused fallback: the same sum-then-ReLU epilogue applied after the plain
  // run — the per-element float op sequence matches the fused engine path, so
  // the two routes stay bit-identical.
  float* o = out.data();
  const std::size_t n = out.size();
  if (post.sum != nullptr) {
    const float* res = post.sum;
    for (std::size_t i = 0; i < n; ++i) o[i] += res[i];
  }
  if (post.relu) {
    for (std::size_t i = 0; i < n; ++i) o[i] = std::max(0.0f, o[i]);
  }
}

// ---------------------------------------------------------------------------
// ReluLayer
void ReluLayer::forward(const Tensor<float>& in, Tensor<float>& out, bool train) {
  out.reshape(in.shape());
  const std::size_t n = in.size();
  if (train) mask_.assign(n, 0);
  const float* src = in.data();
  float* dst = out.data();
  for (std::size_t i = 0; i < n; ++i) {
    const bool pos = src[i] > 0.0f;
    dst[i] = pos ? src[i] : 0.0f;
    if (train) mask_[i] = pos ? 1 : 0;
  }
}

void ReluLayer::backward(const Tensor<float>& grad_out, Tensor<float>& grad_in) {
  grad_in.reshape(grad_out.shape());
  const float* g = grad_out.data();
  float* d = grad_in.data();
  for (std::size_t i = 0; i < grad_out.size(); ++i) {
    d[i] = mask_[i] != 0 ? g[i] : 0.0f;
  }
}

// ---------------------------------------------------------------------------
// MaxPoolLayer
MaxPoolLayer::MaxPoolLayer(std::size_t channels, std::size_t hw) : c_(channels), hw_(hw) {
  if (hw % 2 != 0) throw std::invalid_argument("maxpool needs even spatial size");
}

void MaxPoolLayer::forward(const Tensor<float>& in, Tensor<float>& out, bool train) {
  const std::size_t batch = in.dim(0);
  const std::size_t oh = hw_ / 2;
  out.reshape({batch, c_, oh, oh});
  if (train) argmax_.assign(out.size(), 0);
  for (std::size_t bc = 0; bc < batch * c_; ++bc) {
    const float* src = in.data() + bc * hw_ * hw_;
    float* dst = out.data() + bc * oh * oh;
    for (std::size_t y = 0; y < oh; ++y) {
      for (std::size_t x = 0; x < oh; ++x) {
        std::size_t best = (2 * y) * hw_ + 2 * x;
        for (std::size_t dy = 0; dy < 2; ++dy) {
          for (std::size_t dx = 0; dx < 2; ++dx) {
            const std::size_t idx = (2 * y + dy) * hw_ + 2 * x + dx;
            if (src[idx] > src[best]) best = idx;
          }
        }
        dst[y * oh + x] = src[best];
        if (train) argmax_[bc * oh * oh + y * oh + x] = static_cast<std::uint32_t>(best);
      }
    }
  }
}

void MaxPoolLayer::backward(const Tensor<float>& grad_out, Tensor<float>& grad_in) {
  const std::size_t batch = grad_out.dim(0);
  const std::size_t oh = hw_ / 2;
  grad_in.reshape({batch, c_, hw_, hw_});
  grad_in.zero();
  for (std::size_t bc = 0; bc < batch * c_; ++bc) {
    const float* g = grad_out.data() + bc * oh * oh;
    float* d = grad_in.data() + bc * hw_ * hw_;
    for (std::size_t i = 0; i < oh * oh; ++i) {
      d[argmax_[bc * oh * oh + i]] += g[i];
    }
  }
}

// ---------------------------------------------------------------------------
// DenseLayer
DenseLayer::DenseLayer(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_f_(in_features), out_f_(out_features) {
  w_.resize(in_f_ * out_f_);  // row-major in x out
  b_.assign(out_f_, 0.0f);
  grad_w_.assign(w_.size(), 0.0f);
  grad_b_.assign(out_f_, 0.0f);
  mom_w_.assign(w_.size(), 0.0f);
  mom_b_.assign(out_f_, 0.0f);
  const float stddev = std::sqrt(2.0f / static_cast<float>(in_f_));
  for (auto& w : w_) w = rng.normal() * stddev;
}

std::string DenseLayer::name() const {
  return "dense(" + std::to_string(in_f_) + "->" + std::to_string(out_f_) + ")";
}

void DenseLayer::forward(const Tensor<float>& in, Tensor<float>& out, bool train) {
  const std::size_t batch = in.dim(0);
  assert(in.size() == batch * in_f_);
  out.reshape({batch, out_f_});
  if (train) cached_in_ = in;
  fp32_gemm(in.data(), in_f_, w_.data(), out_f_, out.data(), out_f_, batch, in_f_, out_f_);
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t o = 0; o < out_f_; ++o) out(b, o) += b_[o];
  }
}

void DenseLayer::backward(const Tensor<float>& grad_out, Tensor<float>& grad_in) {
  const std::size_t batch = grad_out.dim(0);
  grad_in.reshape(cached_in_.shape());
  // grad_w += in^T x grad_out; grad_b += column sums; grad_in = grad_out x w^T.
  for (std::size_t b = 0; b < batch; ++b) {
    const float* x = cached_in_.data() + b * in_f_;
    const float* g = grad_out.data() + b * out_f_;
    for (std::size_t o = 0; o < out_f_; ++o) grad_b_[o] += g[o];
    for (std::size_t i = 0; i < in_f_; ++i) {
      const float xi = x[i];
      float acc = 0.0f;
      float* gw = grad_w_.data() + i * out_f_;
      const float* wrow = w_.data() + i * out_f_;
      for (std::size_t o = 0; o < out_f_; ++o) {
        gw[o] += xi * g[o];
        acc += wrow[o] * g[o];
      }
      grad_in.data()[b * in_f_ + i] = acc;
    }
  }
}

void DenseLayer::update(float lr, float momentum) {
  sgd_update(w_, grad_w_, mom_w_, lr, momentum);
  sgd_update(b_, grad_b_, mom_b_, lr, momentum);
}

// ---------------------------------------------------------------------------
// ResidualBlock
ResidualBlock::ResidualBlock(std::size_t channels, std::size_t hw, Rng& rng)
    : conv1_(channels, channels, hw, 3, 1, rng), conv2_(channels, channels, hw, 3, 1, rng) {}

void ResidualBlock::forward(const Tensor<float>& in, Tensor<float>& out, bool train) {
  conv1_.forward(in, mid_, train);
  relu_mid_.forward(mid_, mid_act_, train);
  conv2_.forward(mid_act_, f_out_, train);
  out.reshape(in.shape());
  const std::size_t n = in.size();
  if (train) out_mask_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const float v = in.data()[i] + f_out_.data()[i];
    const bool pos = v > 0.0f;
    out.data()[i] = pos ? v : 0.0f;
    if (train) out_mask_[i] = pos ? 1 : 0;
  }
}

void ResidualBlock::backward(const Tensor<float>& grad_out, Tensor<float>& grad_in) {
  const std::size_t n = grad_out.size();
  g_f_.reshape(grad_out.shape());
  for (std::size_t i = 0; i < n; ++i) {
    g_f_.data()[i] = out_mask_[i] != 0 ? grad_out.data()[i] : 0.0f;
  }
  conv2_.backward(g_f_, g_mid_act_);
  relu_mid_.backward(g_mid_act_, g_mid_);
  conv1_.backward(g_mid_, grad_in);
  // skip connection
  for (std::size_t i = 0; i < n; ++i) grad_in.data()[i] += g_f_.data()[i];
}

void ResidualBlock::update(float lr, float momentum) {
  conv1_.update(lr, momentum);
  conv2_.update(lr, momentum);
}

void ResidualBlock::calibrate_with(const Tensor<float>& in, EngineKind kind) {
  conv1_.calibrate_with(in, kind);
  // conv2 sees the activated intermediate; reproduce it in FP32.
  conv1_.forward(in, mid_, /*train=*/false);
  relu_mid_.forward(mid_, mid_act_, /*train=*/false);
  conv2_.calibrate_with(mid_act_, kind);
}

void ResidualBlock::finalize_calibration(EngineKind kind) {
  conv1_.finalize_calibration(kind);
  conv2_.finalize_calibration(kind);
}

void ResidualBlock::forward_engine(const Tensor<float>& in, Tensor<float>& out,
                                   EngineKind kind, ThreadPool* pool) {
  if (post_op_fusion_enabled()) {
    // The block collapses to two convolutions: conv1 with a fused ReLU, conv2
    // with the skip-add + ReLU folded into its output pass. Engines without
    // post-op support fall back inside forward_engine_fused (bit-identical),
    // so this path is unconditional once the kill-switch allows fusion.
    conv1_.forward_engine_fused(in, mid_act_, kind, pool, PostOps{.relu = true});
    out.reshape(in.shape());
    conv2_.forward_engine_fused(mid_act_, out, kind, pool,
                                PostOps{.relu = true, .sum = in.data()});
    return;
  }
  conv1_.forward_engine(in, mid_, kind, pool);
  relu_mid_.forward(mid_, mid_act_, /*train=*/false);
  conv2_.forward_engine(mid_act_, f_out_, kind, pool);
  out.reshape(in.shape());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out.data()[i] = std::max(0.0f, in.data()[i] + f_out_.data()[i]);
  }
}

}  // namespace lowino

// Model zoo: the two CNNs of the Table 3 accuracy experiment, scaled to the
// procedural dataset ("MiniVGG" for VGG16, "MiniResNet" for ResNet-50 — see
// DESIGN.md for the substitution rationale), plus the Table 2 layer list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/graph.h"
#include "tensor/conv_desc.h"

namespace lowino {

/// VGG-style: stacked 3x3 convs + maxpool + dense head. All convs are
/// Winograd-eligible (3x3, stride 1, pad 1).
SequentialModel make_minivgg(std::size_t hw = 16, std::size_t classes = 10,
                             std::uint64_t seed = 1);

/// ResNet-style: stem conv + residual blocks + dense head.
SequentialModel make_miniresnet(std::size_t hw = 16, std::size_t classes = 10,
                                std::uint64_t seed = 2);

/// MobileNet-style: stem conv, then depthwise-separable blocks (depthwise 3x3
/// with groups == C followed by a pointwise 1x1) — the workload the dedicated
/// int8_dw / int8_1x1 engines exist for. No layer is Winograd-eligible except
/// the stem.
SequentialModel make_minimobilenet(std::size_t hw = 16, std::size_t classes = 10,
                                   std::uint64_t seed = 3);

/// One row of Table 2 (benchmarked convolutional layers).
struct PaperLayer {
  std::string name;
  ConvDesc desc;
};

/// The 20 layers of Table 2, verbatim (batch 64 for classification networks,
/// batch 1 for detection/segmentation). `batch_override` != 0 scales the
/// batch-64 entries down for quick runs.
std::vector<PaperLayer> paper_layers_table2(std::size_t batch_override = 0);

}  // namespace lowino

// Sequential model container: FP32 training forward/backward, quantized
// inference with a selectable engine, and the calibration pass that feeds
// each convolution its own FP32 input distribution (the "~500 sample images"
// procedure of Eq. 7).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/engines.h"
#include "nn/layers.h"
#include "tensor/tensor.h"

namespace lowino {

class SequentialModel {
 public:
  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  std::size_t layer_count() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }

  /// FP32 forward pass; returns the logits tensor.
  const Tensor<float>& forward(const Tensor<float>& input, bool train = false);

  /// Backward from d(loss)/d(logits); fills every layer's gradients.
  void backward(const Tensor<float>& grad_logits);

  void update(float lr, float momentum);

  /// Calibration pass for a quantized engine: runs FP32 forward, feeding each
  /// layer's *input* to its calibration hook. Call once per calibration batch.
  void calibrate(const Tensor<float>& input, EngineKind kind);
  /// Finishes calibration of all layers for `kind`.
  void finalize_calibration(EngineKind kind);

  /// Inference forward with the chosen engine for every convolution.
  ///
  /// This is the *debug / evaluation* path: one EngineKind forced on every
  /// layer, activations in two persistent ping-pong tensors (steady-state
  /// allocation-free, but no cross-layer memory planning and no per-layer
  /// engine choice). Production serving goes through serve/session.h, which
  /// plans engines per layer and lays activations out in a single arena.
  const Tensor<float>& forward_engine(const Tensor<float>& input, EngineKind kind,
                                      ThreadPool* pool = nullptr);

  std::size_t parameter_count() const;
  std::string summary() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Tensor<float>> activations_;  ///< per-layer FP32 activations
  std::vector<Tensor<float>> grads_;
  Tensor<float> engine_act_[2];  ///< forward_engine ping-pong pair
};

}  // namespace lowino

// BatchingServer: the dynamic-batching serving front end over
// InferenceSession — single-image requests are coalesced into batches and
// executed by pre-warmed worker sessions compiled from one shared plan.
//
// The concurrency design is testable-first and layered:
//
//   * Batcher — the pure batch-formation policy. A FIFO admission queue over
//     opaque tickets with explicit timestamps on every call: a batch closes
//     when it is full (max_batch) or the oldest request has waited out the
//     linger budget; queued requests whose SLO deadline passes are expired
//     before they ever reach a batch. No clock, no threads, no allocation
//     after construction — every decision is a deterministic function of
//     (queue contents, `now`).
//
//   * ServerCore — the slot machine tying tickets to requests. A fixed pool
//     of slots holds the caller's input/output pointers (callers block in
//     serve(), so zero-copy pointers stay valid) and a per-slot state
//     (Free -> Queued -> Running -> Done / Expired -> Free). All methods
//     take explicit timestamps and do no locking: the threaded server calls
//     them under its mutex, tests call them directly.
//
//   * ManualServer — the deterministic executor for tests: ServerCore driven
//     by an injected VirtualClock and an inline batch-runner callback. One
//     step() performs exactly one worker iteration (expire, then close and
//     run at most one batch), so batch formation, linger expiry, SLO
//     rejection and shutdown drain are unit-testable without threads or
//     sleeps.
//
//   * BatchingServer — the real thing: N worker threads, each owning a
//     ThreadPool and an InferenceSession compiled from the same immutable
//     SessionPlan (worker 0 plans; the rest replay via PlanOptions::reuse).
//     Blocking serve() with per-request SLO; stop() drains in-flight and
//     queued work before joining. The worker hot path performs zero heap
//     allocations in steady state (asserted under the operator-new counter
//     in tests/test_server_stress.cc).
//
// Fault tolerance (the layer this file adds on top of the batching design):
//
//   * Exception containment — a throw anywhere inside batch execution
//     (engine failure, allocation failure, injected fault) is caught at the
//     batch boundary and fails only the affected requests (ServeResult::
//     kFailed); the server lives on. A failed batch's members are retried
//     individually first, so one poisoned request cannot sink its
//     batchmates.
//   * Worker supervision — a worker whose session keeps failing rebuilds it
//     from the shared SessionPlan with capped backoff; a worker whose
//     rebuild fails degrades out of the fleet (clients of a fully-lost
//     fleet get kWorkerLost, never a hang) and health() reports it.
//   * Overload shedding — watermark-based early rejection in the Batcher
//     (see BatcherOptions::shed_high) bounces requests at the door when the
//     queue is hopeless instead of letting them expire inside it.
//
// All of it is deterministic and unit-testable through ManualServer plus the
// seeded fault-injection harness (common/fault.h, LOWINO_FAULT).
//
// Clock injection: the threaded server reads its VirtualClock only for
// timestamps (admission, deadlines). Timed condition-variable waits convert
// clock deltas to real waits, so a FakeClock paired with the *threaded*
// server will never advance a linger deadline on its own — deterministic
// time-driven tests belong on ManualServer; the threaded server is for real
// clocks and the TSan stress suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "serve/session.h"
#include "tensor/tensor.h"

namespace lowino {

class ThreadPool;

/// All serving timestamps/durations are signed nanosecond counts.
using Nanos = std::int64_t;
inline constexpr Nanos kNoDeadline = std::numeric_limits<Nanos>::max();

/// Injectable time source. Implementations must be monotone non-decreasing.
class VirtualClock {
 public:
  virtual ~VirtualClock() = default;
  virtual Nanos now() = 0;
};

/// std::chrono::steady_clock. Thread-safe, shared via instance().
class RealClock final : public VirtualClock {
 public:
  Nanos now() override;
  static RealClock& instance();
};

/// Manually advanced clock for deterministic tests. Not thread-safe — it
/// pairs with ManualServer, which runs on the test's thread.
class FakeClock final : public VirtualClock {
 public:
  explicit FakeClock(Nanos start = 0) : now_(start) {}
  Nanos now() override { return now_; }
  void set(Nanos t) { now_ = t; }
  void advance(Nanos delta) { now_ += delta; }

 private:
  Nanos now_ = 0;
};

/// Outcome of one serve() call.
enum class ServeResult {
  kOk,         ///< output span holds the request's result
  kQueueFull,  ///< admission queue at capacity (or shedding); never enqueued
  kExpired,    ///< SLO deadline passed while the request was still queued
  kShutdown,   ///< server not running (or stopping); request never enqueued
  kFailed,     ///< this request's execution failed; the failure was contained
               ///< (batchmates unaffected, server still serving, output span
               ///< untouched)
  kWorkerLost, ///< abandoned: the serving worker (or the whole fleet) died
               ///< and could not be rebuilt; output span untouched
};
const char* serve_result_name(ServeResult r);

struct BatcherOptions {
  std::size_t max_batch = 4;   ///< close a batch at this many requests
  Nanos linger_ns = 1000000;   ///< max wait of the oldest queued request
  std::size_t capacity = 64;   ///< admission queue bound (>= max_batch)
  /// Overload shedding with hysteresis: once the queue depth reaches
  /// shed_high, new admissions are rejected (Admit::kShed — the request is
  /// bounced *early* instead of expiring pointlessly in a hopeless queue)
  /// until the depth drains back to shed_low. 0 disables shedding;
  /// shed_low == 0 derives shed_high / 2. Requires shed_low < shed_high <=
  /// capacity when enabled.
  std::size_t shed_high = 0;
  std::size_t shed_low = 0;
};

/// Cumulative serving counters (ServerCore fills them; the threaded server
/// snapshots under its lock).
struct ServeStats {
  std::uint64_t submitted = 0;         ///< admitted into the queue
  std::uint64_t served = 0;            ///< completed with a result
  std::uint64_t rejected_full = 0;     ///< bounced: queue at capacity
  std::uint64_t rejected_expired = 0;  ///< bounced: SLO passed while queued
  std::uint64_t rejected_shed = 0;     ///< bounced early: overload shedding
  std::uint64_t failed = 0;            ///< failed by a contained execution error
  std::uint64_t worker_lost = 0;       ///< abandoned by a dying worker/fleet
  std::uint64_t batch_failures = 0;    ///< batch executions that threw
  std::uint64_t retries = 0;           ///< individual re-runs after a batch failure
  std::uint64_t batches = 0;           ///< batches closed
  std::uint64_t batched_requests = 0;  ///< sum of closed batch sizes
  std::uint64_t closed_full = 0;       ///< batches closed because full
  std::uint64_t closed_linger = 0;     ///< batches closed by linger expiry
  std::uint64_t queue_ns_sum = 0;      ///< admission -> batch close, served only

  double mean_batch() const {
    return batches == 0 ? 0.0 : static_cast<double>(batched_requests) / batches;
  }
};

/// Deterministic FIFO batch-formation policy. See the file comment. All
/// methods are O(pending) worst case and never allocate after construction.
class Batcher {
 public:
  /// Admission decision. kShed is an *early* overload rejection: the queue
  /// had room, but the shed watermark said the request would only wait to
  /// die (see BatcherOptions::shed_high).
  enum class Admit { kAdmitted, kFull, kShed };

  explicit Batcher(const BatcherOptions& options);

  /// Enqueues a ticket observed at `now` with an absolute deadline (queued
  /// requests whose deadline passes are expired, never batched). Returns
  /// kFull at capacity, kShed while overload shedding is engaged.
  Admit admit(std::uint32_t ticket, Nanos now, Nanos deadline = kNoDeadline);

  /// Removes every queued ticket whose deadline is <= now, appending them to
  /// `expired` in FIFO order. Returns the number removed.
  std::size_t expire(Nanos now, std::vector<std::uint32_t>& expired);

  /// True when a batch should close at `now`: the queue holds a full batch,
  /// or the oldest request has lingered for linger_ns.
  bool ready(Nanos now) const;

  /// Appends up to max_batch tickets (FIFO) to `batch`; returns the count.
  /// Callers decide *when* via ready() — pop() itself is unconditional so a
  /// draining server can close partial batches immediately.
  std::size_t pop(std::vector<std::uint32_t>& batch);

  /// Earliest future instant at which a decision can change without a new
  /// admission: min over the oldest request's linger expiry and every queued
  /// deadline. kNoDeadline when the queue is empty or nothing is pending.
  Nanos next_event() const;

  /// Removes every queued ticket (FIFO order appended to `out`) regardless
  /// of batch size — the fleet-loss drain, where nothing is left to run them.
  std::size_t clear(std::vector<std::uint32_t>& out);

  std::size_t pending() const { return queue_.size(); }
  Nanos oldest_enqueue() const;  ///< kNoDeadline when empty
  bool shedding() const { return shedding_; }  ///< shed state engaged
  const BatcherOptions& options() const { return options_; }

 private:
  struct Pending {
    std::uint32_t ticket = 0;
    Nanos enqueue_ns = 0;
    Nanos deadline_ns = kNoDeadline;
  };
  void update_shed_after_removal();

  BatcherOptions options_;
  std::size_t shed_low_ = 0;    ///< resolved disengage watermark
  bool shedding_ = false;       ///< hysteresis state
  std::vector<Pending> queue_;  ///< FIFO; reserved to capacity, never grows
};

/// Request slot states. Transitions (all driven by ServerCore):
/// Free -submit-> Queued -close_batch-> Running -complete-> Done -release->
/// Free, with Queued -expire-> Expired -release-> Free and the failure
/// edges Running -fail-> Failed -release-> Free (contained execution error
/// or worker loss) plus Queued -fail_all_queued-> Failed (fleet loss).
enum class SlotState : std::uint8_t {
  kFree, kQueued, kRunning, kDone, kExpired, kFailed
};

/// Ticket-to-request binding + lifecycle + stats over a Batcher. Explicitly
/// clocked and lock-free by design (synchronization belongs to the caller);
/// see the file comment.
class ServerCore {
 public:
  static constexpr std::uint32_t kNoTicket = std::numeric_limits<std::uint32_t>::max();

  explicit ServerCore(const BatcherOptions& options);

  // -- client side ----------------------------------------------------------
  /// Binds (input, output) to a free slot and enqueues it. Returns the slot
  /// ticket, or kNoTicket when the queue is at capacity (stats count the
  /// rejection). The pointers must stay valid until release().
  std::uint32_t submit(const float* input, float* output, Nanos now,
                       Nanos deadline = kNoDeadline);
  SlotState state(std::uint32_t ticket) const;
  /// Frees a kDone/kExpired slot for reuse.
  void release(std::uint32_t ticket);

  // -- scheduler side -------------------------------------------------------
  /// Expires queued requests whose deadline passed; their slots become
  /// kExpired and their tickets are appended to `expired` (the threaded
  /// server then wakes those clients). Returns the number expired.
  std::size_t expire(Nanos now, std::vector<std::uint32_t>& expired);
  /// True when a worker should close a batch now (full / linger; during a
  /// drain: whenever anything is pending).
  bool ready(Nanos now) const;
  Nanos next_event() const { return batcher_.next_event(); }
  /// Closes a batch: pops up to max_batch tickets into `batch`, marks them
  /// kRunning and updates stats against `now`. Returns the batch size.
  std::size_t close_batch(Nanos now, std::vector<std::uint32_t>& batch);
  /// Marks a closed batch's slots kDone (clients may collect + release).
  void complete(std::span<const std::uint32_t> batch);
  /// Marks one kRunning slot kDone (the per-member path after a batch-level
  /// failure was isolated by individual retries).
  void complete_one(std::uint32_t ticket);
  /// Marks one kRunning slot kFailed. `lost` distinguishes a worker/fleet
  /// loss (client sees kWorkerLost) from a contained execution error
  /// (kFailed); stats count the two separately.
  void fail(std::uint32_t ticket, bool lost = false);
  /// Fails every still-queued request as worker-lost (the fleet-loss drain:
  /// no worker remains to ever run them). Tickets append to `out` so the
  /// caller can wake the blocked clients. Returns the number failed.
  std::size_t fail_all_queued(std::vector<std::uint32_t>& out);
  /// True when a kFailed slot was failed by worker loss (not a contained
  /// execution error).
  bool failed_by_worker_loss(std::uint32_t ticket) const;
  /// Failure-containment bookkeeping (see ServeStats).
  void note_batch_failure() { ++stats_.batch_failures; }
  void note_retry() { ++stats_.retries; }

  const float* slot_input(std::uint32_t ticket) const;
  float* slot_output(std::uint32_t ticket) const;

  /// Drain mode: no new admissions (submit returns kNoTicket), ready()
  /// becomes pending() > 0 so partial batches close immediately.
  void begin_drain() { draining_ = true; }
  void end_drain() { draining_ = false; }
  bool draining() const { return draining_; }
  /// True when nothing is queued and nothing is running.
  bool idle() const { return batcher_.pending() == 0 && running_ == 0; }

  std::size_t pending() const { return batcher_.pending(); }
  bool shedding() const { return batcher_.shedding(); }
  std::size_t running() const { return running_; }
  std::size_t capacity() const { return slots_.size(); }
  const ServeStats& stats() const { return stats_; }
  const BatcherOptions& options() const { return batcher_.options(); }

 private:
  struct Slot {
    const float* input = nullptr;
    float* output = nullptr;
    Nanos enqueue_ns = 0;
    SlotState state = SlotState::kFree;
    bool worker_lost = false;  ///< kFailed flavor: abandoned vs contained
  };
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  ///< free-list (stack), reserved
  Batcher batcher_;
  ServeStats stats_;
  std::size_t running_ = 0;  ///< slots in kRunning
  bool draining_ = false;
};

/// Deterministic single-worker executor for tests (see file comment). The
/// runner is invoked inline from step() with the closed batch's tickets;
/// it reads slot_input() and writes slot_output() through the core.
class ManualServer {
 public:
  using BatchRunner =
      std::function<void(std::span<const std::uint32_t>, ServerCore&)>;

  ManualServer(const BatcherOptions& options, VirtualClock* clock, BatchRunner runner);

  /// Submits at clock->now() with a *relative* SLO budget (kNoDeadline: no
  /// SLO). Returns ServerCore::kNoTicket when the queue is full or draining.
  std::uint32_t submit(std::span<const float> input, std::span<float> output,
                       Nanos slo_ns = kNoDeadline);

  struct StepOutcome {
    std::vector<std::uint32_t> expired;  ///< tickets SLO-expired this step
    std::vector<std::uint32_t> batch;    ///< batch run this step (maybe empty)
    std::vector<std::uint32_t> failed;   ///< batch members failed this step
  };
  /// One worker iteration at clock->now(): expire, then close + run at most
  /// one batch (during a drain, partial batches close immediately).
  ///
  /// Exception containment: a runner that throws fails the *batch attempt*,
  /// not its members — each member is then retried individually through the
  /// runner, so one poisoned request cannot sink its batchmates. Members
  /// whose individual retry also throws end kFailed (outcome.failed); the
  /// rest end kDone with their retry's output. step() itself never throws
  /// on a runner exception.
  StepOutcome step();

  /// Runs steps until the core is idle (shutdown drain). Returns steps run.
  std::size_t drain();

  SlotState state(std::uint32_t ticket) const { return core_.state(ticket); }
  void release(std::uint32_t ticket) { core_.release(ticket); }
  ServerCore& core() { return core_; }

 private:
  ServerCore core_;
  VirtualClock* clock_;
  BatchRunner runner_;
};

/// Options for the threaded BatchingServer.
struct ServerOptions {
  std::size_t max_batch = 4;
  Nanos linger_ns = 1000000;  ///< 1 ms
  /// Default *relative* SLO budget applied when serve() is called with
  /// kUseDefaultSlo. kNoDeadline: requests never expire.
  Nanos default_slo_ns = kNoDeadline;
  std::size_t num_workers = 1;
  /// ThreadPool size of each worker's session (intra-op parallelism).
  std::size_t threads_per_worker = 1;
  /// Admission queue bound; 0 derives num_workers * max_batch * 4.
  std::size_t queue_capacity = 0;
  /// Overload shed watermarks (queue depth; see BatcherOptions::shed_high).
  /// 0 disables shedding; shed_low_watermark == 0 derives high / 2.
  std::size_t shed_high_watermark = 0;
  std::size_t shed_low_watermark = 0;
  /// Timestamp source; null uses RealClock::instance(). See the file comment
  /// for the FakeClock caveat with the threaded server.
  VirtualClock* clock = nullptr;
  /// Planning options for worker 0's compile (pool is overridden per worker;
  /// workers 1..N-1 replay worker 0's plan via PlanOptions::reuse).
  PlanOptions plan;
};

/// Point-in-time fleet health, snapshotted by BatchingServer::health().
/// A degraded server keeps serving on its surviving workers and says so
/// here instead of dying.
struct ServerHealth {
  std::size_t workers = 0;        ///< configured fleet size
  std::size_t workers_live = 0;   ///< worker loops currently serving
  std::uint64_t workers_lost = 0; ///< degraded out (session rebuild failed)
  std::uint64_t restarts = 0;     ///< successful worker session rebuilds
  bool accepting = false;         ///< serve() currently admits
  bool shedding = false;          ///< overload shed engaged right now
  bool degraded() const { return workers_lost > 0; }
};

/// The threaded dynamic-batching server. See the file comment.
class BatchingServer {
 public:
  /// Sentinel for serve(): apply ServerOptions::default_slo_ns.
  static constexpr Nanos kUseDefaultSlo = -1;

  /// Compiles one session per worker (worker 0 measures, the rest replay its
  /// plan) from `calib_input` replicated to max_batch images, pre-warms
  /// every worker, and starts the worker threads. The model must outlive the
  /// server and must not be mutated while it is running.
  BatchingServer(SequentialModel& model, const Tensor<float>& calib_input,
                 const ServerOptions& options);
  ~BatchingServer();  ///< stop()s (draining) if still running

  BatchingServer(const BatchingServer&) = delete;
  BatchingServer& operator=(const BatchingServer&) = delete;

  /// Serves one image synchronously: blocks until the request's batch has
  /// run (kOk), its SLO expired while queued (kExpired), or it never entered
  /// the queue (kQueueFull / kShutdown). `image` must hold input_elems()
  /// floats and `output` output_elems() floats; both spans must stay valid
  /// for the duration of the call (they are read/written in place — no
  /// copies through intermediate queues). Thread-safe; any number of client
  /// threads may call concurrently.
  ServeResult serve(std::span<const float> image, std::span<float> output,
                    Nanos slo_ns = kUseDefaultSlo);

  /// Restarts worker threads after stop(). No-op when running. Workers whose
  /// session was lost to a failed rebuild are re-built here (best effort);
  /// throws std::runtime_error when not a single worker can start.
  void start();
  /// Drains (queued and in-flight requests complete; new serve() calls get
  /// kShutdown) and joins the workers. No-op when stopped.
  void stop();
  bool running() const;

  ServeStats stats() const;    ///< snapshot
  ServerHealth health() const; ///< snapshot (supervision + shed state)
  const SessionPlan& plan() const { return plan_; }
  std::size_t input_elems() const { return input_elems_; }
  std::size_t output_elems() const { return output_elems_; }
  std::size_t max_batch() const { return options_.max_batch; }
  std::size_t num_workers() const { return workers_.size(); }

 private:
  struct Worker {
    std::unique_ptr<ThreadPool> pool;
    std::optional<InferenceSession> session;
    Tensor<float> in;   ///< gather target, shape (max_batch, C, H, W)
    Tensor<float> out;  ///< scatter source, shape (max_batch, ...)
    std::thread thread;
    bool lost = false;  ///< degraded out (guarded by mu_)
  };
  struct SlotSync {
    std::condition_variable cv;  ///< client waits for kDone/kExpired/kFailed
  };

  VirtualClock& clock() const;
  void worker_loop(Worker& worker);
  /// Gather -> session.run -> scatter, called without the lock held (slot
  /// bindings of a kRunning batch are immutable until complete()/fail()).
  void run_batch(Worker& worker, std::span<const std::uint32_t> batch);
  /// Gather one request into lane 0 -> run -> scatter lane 0 (the isolation
  /// retry; per-image independence makes stale lanes harmless).
  void run_single(Worker& worker, std::uint32_t ticket);
  /// Exception-contained batch execution: a throwing batch attempt is
  /// retried member by member. ok[i] reports each member's outcome; returns
  /// false when the batch attempt threw. Never throws. `retries` counts the
  /// individual re-runs performed.
  bool run_batch_contained(Worker& worker, std::span<const std::uint32_t> batch,
                           std::vector<std::uint8_t>& ok, std::size_t& retries);
  /// (Re)builds `worker`'s session by replaying the shared plan (worker-start
  /// fault point inside). Strong guarantee: on throw the previous session, if
  /// any, is retained.
  void build_worker_session(Worker& worker);
  /// Rebuild with capped backoff, called with `lk` held (unlocks around the
  /// compile attempts). True on success.
  bool supervise_rebuild(Worker& worker, std::unique_lock<std::mutex>& lk);
  /// Degrades `worker` out of the fleet under the lock; when it was the last
  /// live worker, fails all queued requests as worker-lost and stops
  /// accepting so no client ever hangs on an empty fleet.
  void abandon_worker(Worker& worker);

  ServerOptions options_;
  SessionPlan plan_;
  SequentialModel* model_ = nullptr;  ///< for worker session rebuilds
  Tensor<float> calib_;               ///< replicated calibration input
  std::size_t input_elems_ = 0;
  std::size_t output_elems_ = 0;
  std::vector<Worker> workers_;
  std::unique_ptr<SlotSync[]> slot_sync_;  ///< one per ServerCore slot

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for admissions / stop
  ServerCore core_;                  ///< guarded by mu_
  std::vector<std::uint32_t> expired_scratch_;  ///< guarded by mu_, reserved
  bool accepting_ = false;  ///< serve() admits only when true
  bool stopping_ = false;   ///< workers exit once the queue drains
  std::size_t workers_live_ = 0;      ///< worker loops running (guarded by mu_)
  std::uint64_t workers_lost_ = 0;    ///< degraded out, cumulative
  std::uint64_t worker_restarts_ = 0; ///< successful session rebuilds
};

}  // namespace lowino

// BatchingServer: the dynamic-batching serving front end over
// InferenceSession — single-image requests are coalesced into batches and
// executed by pre-warmed worker sessions compiled from one shared plan.
//
// The concurrency design is testable-first and layered:
//
//   * Batcher — the pure batch-formation policy. A FIFO admission queue over
//     opaque tickets with explicit timestamps on every call: a batch closes
//     when it is full (max_batch) or the oldest request has waited out the
//     linger budget; queued requests whose SLO deadline passes are expired
//     before they ever reach a batch. No clock, no threads, no allocation
//     after construction — every decision is a deterministic function of
//     (queue contents, `now`).
//
//   * ServerCore — the slot machine tying tickets to requests. A fixed pool
//     of slots holds the caller's input/output pointers (callers block in
//     serve(), so zero-copy pointers stay valid) and a per-slot state
//     (Free -> Queued -> Running -> Done / Expired -> Free). All methods
//     take explicit timestamps and do no locking: the threaded server calls
//     them under its mutex, tests call them directly.
//
//   * ManualServer — the deterministic executor for tests: ServerCore driven
//     by an injected VirtualClock and an inline batch-runner callback. One
//     step() performs exactly one worker iteration (expire, then close and
//     run at most one batch), so batch formation, linger expiry, SLO
//     rejection and shutdown drain are unit-testable without threads or
//     sleeps.
//
//   * BatchingServer — the real thing: N worker threads, each owning a
//     ThreadPool and an InferenceSession compiled from the same immutable
//     SessionPlan (worker 0 plans; the rest replay via PlanOptions::reuse).
//     Blocking serve() with per-request SLO; stop() drains in-flight and
//     queued work before joining. The worker hot path performs zero heap
//     allocations in steady state (asserted under the operator-new counter
//     in tests/test_server_stress.cc).
//
// Clock injection: the threaded server reads its VirtualClock only for
// timestamps (admission, deadlines). Timed condition-variable waits convert
// clock deltas to real waits, so a FakeClock paired with the *threaded*
// server will never advance a linger deadline on its own — deterministic
// time-driven tests belong on ManualServer; the threaded server is for real
// clocks and the TSan stress suite.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "serve/session.h"
#include "tensor/tensor.h"

namespace lowino {

class ThreadPool;

/// All serving timestamps/durations are signed nanosecond counts.
using Nanos = std::int64_t;
inline constexpr Nanos kNoDeadline = std::numeric_limits<Nanos>::max();

/// Injectable time source. Implementations must be monotone non-decreasing.
class VirtualClock {
 public:
  virtual ~VirtualClock() = default;
  virtual Nanos now() = 0;
};

/// std::chrono::steady_clock. Thread-safe, shared via instance().
class RealClock final : public VirtualClock {
 public:
  Nanos now() override;
  static RealClock& instance();
};

/// Manually advanced clock for deterministic tests. Not thread-safe — it
/// pairs with ManualServer, which runs on the test's thread.
class FakeClock final : public VirtualClock {
 public:
  explicit FakeClock(Nanos start = 0) : now_(start) {}
  Nanos now() override { return now_; }
  void set(Nanos t) { now_ = t; }
  void advance(Nanos delta) { now_ += delta; }

 private:
  Nanos now_ = 0;
};

/// Outcome of one serve() call.
enum class ServeResult {
  kOk,         ///< output span holds the request's result
  kQueueFull,  ///< admission queue at capacity; request never enqueued
  kExpired,    ///< SLO deadline passed while the request was still queued
  kShutdown,   ///< server not running (or stopping); request never enqueued
};
const char* serve_result_name(ServeResult r);

struct BatcherOptions {
  std::size_t max_batch = 4;   ///< close a batch at this many requests
  Nanos linger_ns = 1000000;   ///< max wait of the oldest queued request
  std::size_t capacity = 64;   ///< admission queue bound (>= max_batch)
};

/// Cumulative serving counters (ServerCore fills them; the threaded server
/// snapshots under its lock).
struct ServeStats {
  std::uint64_t submitted = 0;         ///< admitted into the queue
  std::uint64_t served = 0;            ///< completed with a result
  std::uint64_t rejected_full = 0;     ///< bounced: queue at capacity
  std::uint64_t rejected_expired = 0;  ///< bounced: SLO passed while queued
  std::uint64_t batches = 0;           ///< batches closed
  std::uint64_t batched_requests = 0;  ///< sum of closed batch sizes
  std::uint64_t closed_full = 0;       ///< batches closed because full
  std::uint64_t closed_linger = 0;     ///< batches closed by linger expiry
  std::uint64_t queue_ns_sum = 0;      ///< admission -> batch close, served only

  double mean_batch() const {
    return batches == 0 ? 0.0 : static_cast<double>(batched_requests) / batches;
  }
};

/// Deterministic FIFO batch-formation policy. See the file comment. All
/// methods are O(pending) worst case and never allocate after construction.
class Batcher {
 public:
  explicit Batcher(const BatcherOptions& options);

  /// Enqueues a ticket observed at `now` with an absolute deadline (queued
  /// requests whose deadline passes are expired, never batched). Returns
  /// false when the queue is at capacity.
  bool admit(std::uint32_t ticket, Nanos now, Nanos deadline = kNoDeadline);

  /// Removes every queued ticket whose deadline is <= now, appending them to
  /// `expired` in FIFO order. Returns the number removed.
  std::size_t expire(Nanos now, std::vector<std::uint32_t>& expired);

  /// True when a batch should close at `now`: the queue holds a full batch,
  /// or the oldest request has lingered for linger_ns.
  bool ready(Nanos now) const;

  /// Appends up to max_batch tickets (FIFO) to `batch`; returns the count.
  /// Callers decide *when* via ready() — pop() itself is unconditional so a
  /// draining server can close partial batches immediately.
  std::size_t pop(std::vector<std::uint32_t>& batch);

  /// Earliest future instant at which a decision can change without a new
  /// admission: min over the oldest request's linger expiry and every queued
  /// deadline. kNoDeadline when the queue is empty or nothing is pending.
  Nanos next_event() const;

  std::size_t pending() const { return queue_.size(); }
  Nanos oldest_enqueue() const;  ///< kNoDeadline when empty
  const BatcherOptions& options() const { return options_; }

 private:
  struct Pending {
    std::uint32_t ticket = 0;
    Nanos enqueue_ns = 0;
    Nanos deadline_ns = kNoDeadline;
  };
  BatcherOptions options_;
  std::vector<Pending> queue_;  ///< FIFO; reserved to capacity, never grows
};

/// Request slot states. Transitions (all driven by ServerCore):
/// Free -submit-> Queued -close_batch-> Running -complete-> Done -release->
/// Free, with Queued -expire-> Expired -release-> Free.
enum class SlotState : std::uint8_t { kFree, kQueued, kRunning, kDone, kExpired };

/// Ticket-to-request binding + lifecycle + stats over a Batcher. Explicitly
/// clocked and lock-free by design (synchronization belongs to the caller);
/// see the file comment.
class ServerCore {
 public:
  static constexpr std::uint32_t kNoTicket = std::numeric_limits<std::uint32_t>::max();

  explicit ServerCore(const BatcherOptions& options);

  // -- client side ----------------------------------------------------------
  /// Binds (input, output) to a free slot and enqueues it. Returns the slot
  /// ticket, or kNoTicket when the queue is at capacity (stats count the
  /// rejection). The pointers must stay valid until release().
  std::uint32_t submit(const float* input, float* output, Nanos now,
                       Nanos deadline = kNoDeadline);
  SlotState state(std::uint32_t ticket) const;
  /// Frees a kDone/kExpired slot for reuse.
  void release(std::uint32_t ticket);

  // -- scheduler side -------------------------------------------------------
  /// Expires queued requests whose deadline passed; their slots become
  /// kExpired and their tickets are appended to `expired` (the threaded
  /// server then wakes those clients). Returns the number expired.
  std::size_t expire(Nanos now, std::vector<std::uint32_t>& expired);
  /// True when a worker should close a batch now (full / linger; during a
  /// drain: whenever anything is pending).
  bool ready(Nanos now) const;
  Nanos next_event() const { return batcher_.next_event(); }
  /// Closes a batch: pops up to max_batch tickets into `batch`, marks them
  /// kRunning and updates stats against `now`. Returns the batch size.
  std::size_t close_batch(Nanos now, std::vector<std::uint32_t>& batch);
  /// Marks a closed batch's slots kDone (clients may collect + release).
  void complete(std::span<const std::uint32_t> batch);

  const float* slot_input(std::uint32_t ticket) const;
  float* slot_output(std::uint32_t ticket) const;

  /// Drain mode: no new admissions (submit returns kNoTicket), ready()
  /// becomes pending() > 0 so partial batches close immediately.
  void begin_drain() { draining_ = true; }
  void end_drain() { draining_ = false; }
  bool draining() const { return draining_; }
  /// True when nothing is queued and nothing is running.
  bool idle() const { return batcher_.pending() == 0 && running_ == 0; }

  std::size_t pending() const { return batcher_.pending(); }
  std::size_t running() const { return running_; }
  std::size_t capacity() const { return slots_.size(); }
  const ServeStats& stats() const { return stats_; }
  const BatcherOptions& options() const { return batcher_.options(); }

 private:
  struct Slot {
    const float* input = nullptr;
    float* output = nullptr;
    Nanos enqueue_ns = 0;
    SlotState state = SlotState::kFree;
  };
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;  ///< free-list (stack), reserved
  Batcher batcher_;
  ServeStats stats_;
  std::size_t running_ = 0;  ///< slots in kRunning
  bool draining_ = false;
};

/// Deterministic single-worker executor for tests (see file comment). The
/// runner is invoked inline from step() with the closed batch's tickets;
/// it reads slot_input() and writes slot_output() through the core.
class ManualServer {
 public:
  using BatchRunner =
      std::function<void(std::span<const std::uint32_t>, ServerCore&)>;

  ManualServer(const BatcherOptions& options, VirtualClock* clock, BatchRunner runner);

  /// Submits at clock->now() with a *relative* SLO budget (kNoDeadline: no
  /// SLO). Returns ServerCore::kNoTicket when the queue is full or draining.
  std::uint32_t submit(std::span<const float> input, std::span<float> output,
                       Nanos slo_ns = kNoDeadline);

  struct StepOutcome {
    std::vector<std::uint32_t> expired;  ///< tickets SLO-expired this step
    std::vector<std::uint32_t> batch;    ///< batch run this step (maybe empty)
  };
  /// One worker iteration at clock->now(): expire, then close + run at most
  /// one batch (during a drain, partial batches close immediately).
  StepOutcome step();

  /// Runs steps until the core is idle (shutdown drain). Returns steps run.
  std::size_t drain();

  SlotState state(std::uint32_t ticket) const { return core_.state(ticket); }
  void release(std::uint32_t ticket) { core_.release(ticket); }
  ServerCore& core() { return core_; }

 private:
  ServerCore core_;
  VirtualClock* clock_;
  BatchRunner runner_;
};

/// Options for the threaded BatchingServer.
struct ServerOptions {
  std::size_t max_batch = 4;
  Nanos linger_ns = 1000000;  ///< 1 ms
  /// Default *relative* SLO budget applied when serve() is called with
  /// kUseDefaultSlo. kNoDeadline: requests never expire.
  Nanos default_slo_ns = kNoDeadline;
  std::size_t num_workers = 1;
  /// ThreadPool size of each worker's session (intra-op parallelism).
  std::size_t threads_per_worker = 1;
  /// Admission queue bound; 0 derives num_workers * max_batch * 4.
  std::size_t queue_capacity = 0;
  /// Timestamp source; null uses RealClock::instance(). See the file comment
  /// for the FakeClock caveat with the threaded server.
  VirtualClock* clock = nullptr;
  /// Planning options for worker 0's compile (pool is overridden per worker;
  /// workers 1..N-1 replay worker 0's plan via PlanOptions::reuse).
  PlanOptions plan;
};

/// The threaded dynamic-batching server. See the file comment.
class BatchingServer {
 public:
  /// Sentinel for serve(): apply ServerOptions::default_slo_ns.
  static constexpr Nanos kUseDefaultSlo = -1;

  /// Compiles one session per worker (worker 0 measures, the rest replay its
  /// plan) from `calib_input` replicated to max_batch images, pre-warms
  /// every worker, and starts the worker threads. The model must outlive the
  /// server and must not be mutated while it is running.
  BatchingServer(SequentialModel& model, const Tensor<float>& calib_input,
                 const ServerOptions& options);
  ~BatchingServer();  ///< stop()s (draining) if still running

  BatchingServer(const BatchingServer&) = delete;
  BatchingServer& operator=(const BatchingServer&) = delete;

  /// Serves one image synchronously: blocks until the request's batch has
  /// run (kOk), its SLO expired while queued (kExpired), or it never entered
  /// the queue (kQueueFull / kShutdown). `image` must hold input_elems()
  /// floats and `output` output_elems() floats; both spans must stay valid
  /// for the duration of the call (they are read/written in place — no
  /// copies through intermediate queues). Thread-safe; any number of client
  /// threads may call concurrently.
  ServeResult serve(std::span<const float> image, std::span<float> output,
                    Nanos slo_ns = kUseDefaultSlo);

  /// Restarts worker threads after stop(). No-op when running.
  void start();
  /// Drains (queued and in-flight requests complete; new serve() calls get
  /// kShutdown) and joins the workers. No-op when stopped.
  void stop();
  bool running() const;

  ServeStats stats() const;  ///< snapshot
  const SessionPlan& plan() const { return plan_; }
  std::size_t input_elems() const { return input_elems_; }
  std::size_t output_elems() const { return output_elems_; }
  std::size_t max_batch() const { return options_.max_batch; }
  std::size_t num_workers() const { return workers_.size(); }

 private:
  struct Worker {
    std::unique_ptr<ThreadPool> pool;
    std::optional<InferenceSession> session;
    Tensor<float> in;   ///< gather target, shape (max_batch, C, H, W)
    Tensor<float> out;  ///< scatter source, shape (max_batch, ...)
    std::thread thread;
  };
  struct SlotSync {
    std::condition_variable cv;  ///< client waits for kDone/kExpired
  };

  VirtualClock& clock() const;
  void worker_loop(Worker& worker);
  /// Gather -> session.run -> scatter, called without the lock held (slot
  /// bindings of a kRunning batch are immutable until complete()).
  void run_batch(Worker& worker, std::span<const std::uint32_t> batch);

  ServerOptions options_;
  SessionPlan plan_;
  std::size_t input_elems_ = 0;
  std::size_t output_elems_ = 0;
  std::vector<Worker> workers_;
  std::unique_ptr<SlotSync[]> slot_sync_;  ///< one per ServerCore slot

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for admissions / stop
  ServerCore core_;                  ///< guarded by mu_
  std::vector<std::uint32_t> expired_scratch_;  ///< guarded by mu_, reserved
  bool accepting_ = false;  ///< serve() admits only when true
  bool stopping_ = false;   ///< workers exit once the queue drains
};

}  // namespace lowino

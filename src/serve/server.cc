#include "serve/server.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/fault.h"
#include "parallel/thread_pool.h"

namespace lowino {
namespace {

/// a + b without signed overflow; saturates to kNoDeadline.
Nanos sat_add(Nanos a, Nanos b) {
  if (b > 0 && a > std::numeric_limits<Nanos>::max() - b) return kNoDeadline;
  return a + b;
}

/// Absolute deadline of a request admitted at `now` with a relative SLO
/// budget (kNoDeadline budget: never expires; negative budgets clamp to 0,
/// i.e. already expired).
Nanos slo_deadline(Nanos now, Nanos slo_ns) {
  if (slo_ns == kNoDeadline) return kNoDeadline;
  return sat_add(now, std::max<Nanos>(slo_ns, 0));
}

}  // namespace

const char* serve_result_name(ServeResult r) {
  switch (r) {
    case ServeResult::kOk: return "ok";
    case ServeResult::kQueueFull: return "queue-full";
    case ServeResult::kExpired: return "expired";
    case ServeResult::kShutdown: return "shutdown";
    case ServeResult::kFailed: return "failed";
    case ServeResult::kWorkerLost: return "worker-lost";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Clocks

Nanos RealClock::now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RealClock& RealClock::instance() {
  static RealClock clock;
  return clock;
}

// ---------------------------------------------------------------------------
// Batcher

Batcher::Batcher(const BatcherOptions& options) : options_(options) {
  if (options_.max_batch < 1) {
    throw std::invalid_argument("Batcher: max_batch must be >= 1");
  }
  if (options_.linger_ns < 0) {
    throw std::invalid_argument("Batcher: linger_ns must be >= 0");
  }
  if (options_.capacity < options_.max_batch) {
    throw std::invalid_argument("Batcher: capacity must be >= max_batch");
  }
  if (options_.shed_high != 0) {
    if (options_.shed_high > options_.capacity) {
      throw std::invalid_argument("Batcher: shed_high must be <= capacity");
    }
    shed_low_ = options_.shed_low != 0 ? options_.shed_low : options_.shed_high / 2;
    if (shed_low_ >= options_.shed_high) {
      throw std::invalid_argument("Batcher: shed_low must be < shed_high");
    }
  }
  queue_.reserve(options_.capacity);
}

Batcher::Admit Batcher::admit(std::uint32_t ticket, Nanos now, Nanos deadline) {
  if (queue_.size() >= options_.capacity) return Admit::kFull;
  if (options_.shed_high != 0) {
    // Hysteresis: engage at shed_high, disengage only once the queue has
    // drained to shed_low — admissions in between follow the current state,
    // so the server alternates between whole accepted and whole shed bursts
    // instead of flapping per request.
    if (queue_.size() >= options_.shed_high) shedding_ = true;
    if (shedding_) return Admit::kShed;
  }
  queue_.push_back(Pending{ticket, now, deadline});
  return Admit::kAdmitted;
}

void Batcher::update_shed_after_removal() {
  if (shedding_ && queue_.size() <= shed_low_) shedding_ = false;
}

std::size_t Batcher::expire(Nanos now, std::vector<std::uint32_t>& expired) {
  std::size_t kept = 0;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].deadline_ns <= now) {
      expired.push_back(queue_[i].ticket);
      ++removed;
    } else {
      queue_[kept++] = queue_[i];
    }
  }
  queue_.resize(kept);
  update_shed_after_removal();
  return removed;
}

bool Batcher::ready(Nanos now) const {
  if (queue_.empty()) return false;
  if (queue_.size() >= options_.max_batch) return true;
  return sat_add(queue_.front().enqueue_ns, options_.linger_ns) <= now;
}

std::size_t Batcher::pop(std::vector<std::uint32_t>& batch) {
  const std::size_t n = std::min(queue_.size(), options_.max_batch);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(queue_[i].ticket);
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(n));
  update_shed_after_removal();
  return n;
}

std::size_t Batcher::clear(std::vector<std::uint32_t>& out) {
  const std::size_t n = queue_.size();
  for (const Pending& p : queue_) out.push_back(p.ticket);
  queue_.clear();
  update_shed_after_removal();
  return n;
}

Nanos Batcher::next_event() const {
  Nanos event = kNoDeadline;
  if (!queue_.empty()) {
    event = sat_add(queue_.front().enqueue_ns, options_.linger_ns);
    for (const Pending& p : queue_) event = std::min(event, p.deadline_ns);
  }
  return event;
}

Nanos Batcher::oldest_enqueue() const {
  return queue_.empty() ? kNoDeadline : queue_.front().enqueue_ns;
}

// ---------------------------------------------------------------------------
// ServerCore

ServerCore::ServerCore(const BatcherOptions& options)
    : slots_(options.capacity), batcher_(options) {
  free_.reserve(slots_.size());
  // Descending so ticket 0 is handed out first (stable, readable tests).
  for (std::size_t i = slots_.size(); i > 0; --i) {
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
}

std::uint32_t ServerCore::submit(const float* input, float* output, Nanos now,
                                 Nanos deadline) {
  if (draining_) return kNoTicket;
  if (free_.empty()) {
    ++stats_.rejected_full;
    return kNoTicket;
  }
  const std::uint32_t ticket = free_.back();
  switch (batcher_.admit(ticket, now, deadline)) {
    case Batcher::Admit::kFull:
      ++stats_.rejected_full;
      return kNoTicket;
    case Batcher::Admit::kShed:
      ++stats_.rejected_shed;
      return kNoTicket;
    case Batcher::Admit::kAdmitted:
      break;
  }
  free_.pop_back();
  Slot& slot = slots_[ticket];
  slot.input = input;
  slot.output = output;
  slot.enqueue_ns = now;
  slot.state = SlotState::kQueued;
  slot.worker_lost = false;
  ++stats_.submitted;
  return ticket;
}

SlotState ServerCore::state(std::uint32_t ticket) const {
  return slots_[ticket].state;
}

void ServerCore::release(std::uint32_t ticket) {
  Slot& slot = slots_[ticket];
  assert(slot.state == SlotState::kDone || slot.state == SlotState::kExpired ||
         slot.state == SlotState::kFailed);
  slot.state = SlotState::kFree;
  slot.input = nullptr;
  slot.output = nullptr;
  slot.worker_lost = false;
  free_.push_back(ticket);
}

std::size_t ServerCore::expire(Nanos now, std::vector<std::uint32_t>& expired) {
  const std::size_t base = expired.size();
  const std::size_t n = batcher_.expire(now, expired);
  for (std::size_t i = base; i < expired.size(); ++i) {
    slots_[expired[i]].state = SlotState::kExpired;
    ++stats_.rejected_expired;
  }
  return n;
}

bool ServerCore::ready(Nanos now) const {
  if (draining_) return batcher_.pending() > 0;
  return batcher_.ready(now);
}

std::size_t ServerCore::close_batch(Nanos now, std::vector<std::uint32_t>& batch) {
  const std::size_t base = batch.size();
  const std::size_t n = batcher_.pop(batch);
  if (n == 0) return 0;
  for (std::size_t i = base; i < batch.size(); ++i) {
    Slot& slot = slots_[batch[i]];
    assert(slot.state == SlotState::kQueued);
    slot.state = SlotState::kRunning;
    stats_.queue_ns_sum += static_cast<std::uint64_t>(now - slot.enqueue_ns);
  }
  running_ += n;
  ++stats_.batches;
  stats_.batched_requests += n;
  if (n >= batcher_.options().max_batch) {
    ++stats_.closed_full;
  } else {
    ++stats_.closed_linger;
  }
  return n;
}

void ServerCore::complete(std::span<const std::uint32_t> batch) {
  for (const std::uint32_t ticket : batch) {
    Slot& slot = slots_[ticket];
    assert(slot.state == SlotState::kRunning);
    slot.state = SlotState::kDone;
  }
  assert(running_ >= batch.size());
  running_ -= batch.size();
  stats_.served += batch.size();
}

void ServerCore::complete_one(std::uint32_t ticket) {
  Slot& slot = slots_[ticket];
  assert(slot.state == SlotState::kRunning);
  slot.state = SlotState::kDone;
  assert(running_ >= 1);
  --running_;
  ++stats_.served;
}

void ServerCore::fail(std::uint32_t ticket, bool lost) {
  Slot& slot = slots_[ticket];
  assert(slot.state == SlotState::kRunning);
  slot.state = SlotState::kFailed;
  slot.worker_lost = lost;
  assert(running_ >= 1);
  --running_;
  if (lost) {
    ++stats_.worker_lost;
  } else {
    ++stats_.failed;
  }
}

std::size_t ServerCore::fail_all_queued(std::vector<std::uint32_t>& out) {
  const std::size_t base = out.size();
  const std::size_t n = batcher_.clear(out);
  for (std::size_t i = base; i < out.size(); ++i) {
    Slot& slot = slots_[out[i]];
    assert(slot.state == SlotState::kQueued);
    slot.state = SlotState::kFailed;
    slot.worker_lost = true;
  }
  stats_.worker_lost += n;
  return n;
}

bool ServerCore::failed_by_worker_loss(std::uint32_t ticket) const {
  const Slot& slot = slots_[ticket];
  return slot.state == SlotState::kFailed && slot.worker_lost;
}

const float* ServerCore::slot_input(std::uint32_t ticket) const {
  return slots_[ticket].input;
}

float* ServerCore::slot_output(std::uint32_t ticket) const {
  return slots_[ticket].output;
}

// ---------------------------------------------------------------------------
// ManualServer

ManualServer::ManualServer(const BatcherOptions& options, VirtualClock* clock,
                           BatchRunner runner)
    : core_(options), clock_(clock), runner_(std::move(runner)) {
  if (clock_ == nullptr) throw std::invalid_argument("ManualServer: null clock");
  if (!runner_) throw std::invalid_argument("ManualServer: null runner");
}

std::uint32_t ManualServer::submit(std::span<const float> input, std::span<float> output,
                                   Nanos slo_ns) {
  const Nanos now = clock_->now();
  return core_.submit(input.data(), output.data(), now, slo_deadline(now, slo_ns));
}

ManualServer::StepOutcome ManualServer::step() {
  StepOutcome outcome;
  const Nanos now = clock_->now();
  core_.expire(now, outcome.expired);
  if (core_.ready(now)) {
    core_.close_batch(now, outcome.batch);
    if (!outcome.batch.empty()) {
      try {
        runner_(outcome.batch, core_);
        core_.complete(outcome.batch);
      } catch (...) {
        // The batch attempt threw: contain it. Retry every member alone so a
        // single poisoned request cannot sink its batchmates; only members
        // whose individual retry also throws end kFailed.
        core_.note_batch_failure();
        for (const std::uint32_t t : outcome.batch) {
          const std::uint32_t single[1] = {t};
          core_.note_retry();
          try {
            runner_(std::span<const std::uint32_t>(single, 1), core_);
            core_.complete_one(t);
          } catch (...) {
            core_.fail(t);
            outcome.failed.push_back(t);
          }
        }
      }
    }
  }
  return outcome;
}

std::size_t ManualServer::drain() {
  core_.begin_drain();
  std::size_t steps = 0;
  while (!core_.idle()) {
    step();
    ++steps;
  }
  return steps;
}

// ---------------------------------------------------------------------------
// BatchingServer

namespace {

BatcherOptions resolve_batcher_options(const ServerOptions& o) {
  BatcherOptions b;
  b.max_batch = o.max_batch;
  b.linger_ns = o.linger_ns;
  b.capacity = o.queue_capacity != 0
                   ? o.queue_capacity
                   : std::max<std::size_t>(o.num_workers, 1) * o.max_batch * 4;
  b.capacity = std::max(b.capacity, b.max_batch);
  b.shed_high = o.shed_high_watermark;
  b.shed_low = o.shed_low_watermark;
  return b;
}

/// Worker supervision tuning: a worker whose batches keep failing wholesale
/// (every member's individual retry threw too — the session itself, not a
/// poisoned input, is the suspect) rebuilds its session after this many
/// consecutive all-failed batches ...
constexpr std::size_t kRebuildThreshold = 3;
/// ... trying this many compiles ...
constexpr int kRebuildAttempts = 3;
/// ... with doubling backoff between attempts, capped.
constexpr Nanos kRebuildBackoffBaseNs = 250'000;   // 250 us
constexpr Nanos kRebuildBackoffCapNs = 5'000'000;  // 5 ms

/// Replicates the calibration input's images cyclically into a max_batch
/// tensor. Replication changes no per-channel value distribution, so KL
/// calibration at the server batch matches calibration on the original
/// input (every op in the network is per-image independent).
Tensor<float> replicate_calibration(const Tensor<float>& calib, std::size_t batch) {
  if (calib.shape().size() != 4) {
    throw std::invalid_argument("BatchingServer: calibration input must be rank-4 NCHW");
  }
  const std::size_t src_batch = calib.dim(0);
  const std::size_t image = calib.size() / src_batch;
  Tensor<float> out({batch, calib.dim(1), calib.dim(2), calib.dim(3)});
  for (std::size_t b = 0; b < batch; ++b) {
    std::memcpy(out.data() + b * image, calib.data() + (b % src_batch) * image,
                image * sizeof(float));
  }
  return out;
}

}  // namespace

VirtualClock& BatchingServer::clock() const {
  return options_.clock != nullptr ? *options_.clock : RealClock::instance();
}

BatchingServer::BatchingServer(SequentialModel& model, const Tensor<float>& calib_input,
                               const ServerOptions& options)
    : options_(options), model_(&model), core_(resolve_batcher_options(options)) {
  if (options_.num_workers < 1) {
    throw std::invalid_argument("BatchingServer: num_workers must be >= 1");
  }
  calib_ = replicate_calibration(calib_input, options_.max_batch);
  input_elems_ = calib_.size() / options_.max_batch;

  workers_ = std::vector<Worker>(options_.num_workers);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w].pool = std::make_unique<ThreadPool>(options_.threads_per_worker);
  }
  // Worker 0 plans (shoot-out / wisdom / forced engine per the caller's
  // options) and must succeed — a server that cannot build even one session
  // is a construction error, not a degraded fleet. Every other worker
  // replays the resulting immutable plan (identical engine choices, no
  // re-measuring) best-effort: one that fails to build degrades out and is
  // retried at the next start().
  {
    Worker& w0 = workers_.front();
    maybe_inject_fault(FaultSite::kWorkerStart);
    PlanOptions plan = options_.plan;
    plan.pool = w0.pool.get();
    w0.session.emplace(InferenceSession::compile(model, calib_, plan));
    plan_ = w0.session->plan();
    // Pre-warm against the worker's own gather/scatter tensors: the first
    // run shapes `out`, and afterwards the hot path never allocates.
    w0.in.reshape(calib_.shape());
    std::fill(w0.in.data(), w0.in.data() + w0.in.size(), 0.0f);
    w0.session->run(w0.in, w0.out);
  }
  for (std::size_t w = 1; w < workers_.size(); ++w) {
    try {
      build_worker_session(workers_[w]);
    } catch (...) {
      workers_[w].lost = true;
      ++workers_lost_;
    }
  }
  output_elems_ = workers_.front().out.size() / options_.max_batch;

  slot_sync_ = std::make_unique<SlotSync[]>(core_.capacity());
  expired_scratch_.reserve(core_.capacity());
  start();
}

BatchingServer::~BatchingServer() { stop(); }

void BatchingServer::start() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (accepting_) return;
    // Resurrect workers degraded out of a previous run (best effort — a
    // rebuild that fails here just leaves the worker lost for another try).
    for (Worker& w : workers_) {
      if (!w.lost) continue;
      try {
        build_worker_session(w);
        ++worker_restarts_;
      } catch (...) {
      }
    }
    std::size_t live = 0;
    for (const Worker& w : workers_) {
      if (!w.lost) ++live;
    }
    if (live == 0) {
      throw std::runtime_error("BatchingServer::start: no worker could build a session");
    }
    // An abandoned worker's loop returned without a stop() to join it; its
    // dead handle must be joined before a new thread is assigned over it.
    for (Worker& w : workers_) {
      if (w.thread.joinable()) w.thread.join();
    }
    stopping_ = false;
    core_.end_drain();
    accepting_ = true;
    workers_live_ = live;
  }
  for (Worker& w : workers_) {
    if (!w.lost) w.thread = std::thread([this, &w] { worker_loop(w); });
  }
}

void BatchingServer::stop() {
  // Move the joinable handles out under the lock so a concurrent stop() (or
  // a serve()/stop() race) never touches a std::thread from two threads.
  std::vector<std::thread> to_join;
  {
    std::lock_guard<std::mutex> lk(mu_);
    accepting_ = false;
    if (!stopping_) {
      bool any = false;
      for (const Worker& w : workers_) {
        if (w.thread.joinable()) any = true;
      }
      if (any) {
        stopping_ = true;
        core_.begin_drain();
        work_cv_.notify_all();
      }
    }
    to_join.reserve(workers_.size());
    for (Worker& w : workers_) {
      if (w.thread.joinable()) to_join.push_back(std::move(w.thread));
    }
  }
  for (std::thread& t : to_join) t.join();
}

bool BatchingServer::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return accepting_;
}

ServeStats BatchingServer::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return core_.stats();
}

ServeResult BatchingServer::serve(std::span<const float> image, std::span<float> output,
                                  Nanos slo_ns) {
  if (image.size() != input_elems_ || output.size() != output_elems_) {
    throw std::invalid_argument("BatchingServer::serve: span sizes must be (" +
                                std::to_string(input_elems_) + ", " +
                                std::to_string(output_elems_) + ")");
  }
  const Nanos slo = slo_ns == kUseDefaultSlo ? options_.default_slo_ns : slo_ns;
  std::unique_lock<std::mutex> lk(mu_);
  if (!accepting_) return ServeResult::kShutdown;
  const Nanos now = clock().now();
  const std::uint32_t ticket =
      core_.submit(image.data(), output.data(), now, slo_deadline(now, slo));
  if (ticket == ServerCore::kNoTicket) return ServeResult::kQueueFull;
  work_cv_.notify_one();
  SlotSync& sync = slot_sync_[ticket];
  sync.cv.wait(lk, [&] {
    const SlotState s = core_.state(ticket);
    return s == SlotState::kDone || s == SlotState::kExpired || s == SlotState::kFailed;
  });
  ServeResult result;
  switch (core_.state(ticket)) {
    case SlotState::kDone:
      result = ServeResult::kOk;
      break;
    case SlotState::kExpired:
      result = ServeResult::kExpired;
      break;
    default:
      result = core_.failed_by_worker_loss(ticket) ? ServeResult::kWorkerLost
                                                   : ServeResult::kFailed;
      break;
  }
  core_.release(ticket);
  return result;
}

ServerHealth BatchingServer::health() const {
  std::lock_guard<std::mutex> lk(mu_);
  ServerHealth h;
  h.workers = workers_.size();
  h.workers_live = workers_live_;
  h.workers_lost = workers_lost_;
  h.restarts = worker_restarts_;
  h.accepting = accepting_;
  h.shedding = core_.shedding();
  return h;
}

void BatchingServer::worker_loop(Worker& worker) {
  std::vector<std::uint32_t> batch;
  batch.reserve(options_.max_batch);
  std::vector<std::uint8_t> ok;
  ok.reserve(options_.max_batch);
  // Consecutive batches in which *every* member failed even on its
  // individual retry. Partial failures reset it: when retries succeed the
  // session is healthy and the failure was input-bound, not worker-bound.
  std::size_t consecutive_failures = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // Wait for a closeable batch, expiring overdue SLOs as deadlines pass.
    for (;;) {
      const Nanos now = clock().now();
      expired_scratch_.clear();
      core_.expire(now, expired_scratch_);
      for (const std::uint32_t t : expired_scratch_) slot_sync_[t].cv.notify_one();
      if (core_.ready(now)) break;
      if (stopping_ && core_.pending() == 0) {
        if (workers_live_ > 0) --workers_live_;
        return;
      }
      const Nanos event = core_.next_event();
      if (event == kNoDeadline) {
        work_cv_.wait(lk);
      } else if (event > now) {
        work_cv_.wait_for(lk, std::chrono::nanoseconds(event - now));
      }
      // event <= now: a deadline is already due — loop to expire/close.
    }
    batch.clear();
    core_.close_batch(clock().now(), batch);
    if (batch.empty()) continue;
    // More work may already be closeable (e.g. a burst larger than one
    // batch): hand it to another idle worker before going busy.
    if (core_.pending() > 0) work_cv_.notify_one();
    lk.unlock();
    ok.assign(batch.size(), 0);
    std::size_t retries = 0;
    const bool batch_ok = run_batch_contained(worker, batch, ok, retries);
    lk.lock();
    if (batch_ok) {
      core_.complete(batch);
      consecutive_failures = 0;
    } else {
      core_.note_batch_failure();
      for (std::size_t r = 0; r < retries; ++r) core_.note_retry();
      bool all_failed = true;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (ok[i]) {
          core_.complete_one(batch[i]);
          all_failed = false;
        } else {
          core_.fail(batch[i]);
        }
      }
      consecutive_failures = all_failed ? consecutive_failures + 1 : 0;
    }
    for (const std::uint32_t t : batch) slot_sync_[t].cv.notify_one();
    if (consecutive_failures >= kRebuildThreshold) {
      if (supervise_rebuild(worker, lk)) {
        consecutive_failures = 0;
      } else {
        abandon_worker(worker);
        return;  // lk unlocks on scope exit
      }
    }
  }
}

void BatchingServer::run_batch(Worker& worker, std::span<const std::uint32_t> batch) {
  // Lock-free by contract: a kRunning slot's bindings are immutable until
  // complete(), and the mutex acquire that closed the batch ordered them.
  // Lanes beyond batch.size() keep stale data — every op is per-image
  // independent, so extra lanes cost compute but never leak into results.
  float* gather = worker.in.data();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::memcpy(gather + i * input_elems_, core_.slot_input(batch[i]),
                input_elems_ * sizeof(float));
  }
  worker.session->run(worker.in, worker.out);
  const float* scatter = worker.out.data();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::memcpy(core_.slot_output(batch[i]), scatter + i * output_elems_,
                output_elems_ * sizeof(float));
  }
}

void BatchingServer::run_single(Worker& worker, std::uint32_t ticket) {
  // The isolation retry: one request in lane 0 of the batch tensor. The
  // remaining lanes keep whatever the aborted batch left behind —
  // per-image independence makes them harmless, and lane 0's result is
  // bit-identical to the same image in any batch.
  std::memcpy(worker.in.data(), core_.slot_input(ticket), input_elems_ * sizeof(float));
  worker.session->run(worker.in, worker.out);
  std::memcpy(core_.slot_output(ticket), worker.out.data(),
              output_elems_ * sizeof(float));
}

bool BatchingServer::run_batch_contained(Worker& worker,
                                         std::span<const std::uint32_t> batch,
                                         std::vector<std::uint8_t>& ok,
                                         std::size_t& retries) {
  try {
    run_batch(worker, batch);
    std::fill(ok.begin(), ok.end(), 1);
    return true;
  } catch (...) {
    // Fall through to the member-by-member isolation pass.
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ++retries;
    try {
      run_single(worker, batch[i]);
      ok[i] = 1;
    } catch (...) {
      ok[i] = 0;
    }
  }
  return false;
}

void BatchingServer::build_worker_session(Worker& worker) {
  maybe_inject_fault(FaultSite::kWorkerStart);
  PlanOptions plan = options_.plan;
  plan.pool = worker.pool.get();
  plan.reuse = &plan_;
  // Replays never touch a shared WisdomStore: concurrent rebuilding workers
  // would race on it, and a replayed plan has nothing new to record anyway.
  plan.wisdom = nullptr;
  InferenceSession session = InferenceSession::compile(*model_, calib_, plan);
  // Pre-warm before installing, so a throw anywhere above (including
  // injected session-run faults) retains the worker's previous session.
  worker.in.reshape(calib_.shape());
  std::fill(worker.in.data(), worker.in.data() + worker.in.size(), 0.0f);
  session.run(worker.in, worker.out);
  worker.session.emplace(std::move(session));
  worker.lost = false;
}

bool BatchingServer::supervise_rebuild(Worker& worker, std::unique_lock<std::mutex>& lk) {
  // Compile outside the lock — rebuilds are slow and the surviving workers
  // must keep serving. The worker's own tensors/session are safe to touch
  // unlocked: only this thread ever uses them.
  lk.unlock();
  bool ok = false;
  Nanos backoff = kRebuildBackoffBaseNs;
  for (int attempt = 0; attempt < kRebuildAttempts && !ok; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
      backoff = std::min<Nanos>(backoff * 2, kRebuildBackoffCapNs);
    }
    try {
      build_worker_session(worker);
      ok = true;
    } catch (...) {
    }
  }
  lk.lock();
  if (ok) ++worker_restarts_;
  return ok;
}

void BatchingServer::abandon_worker(Worker& worker) {
  worker.lost = true;
  worker.session.reset();
  ++workers_lost_;
  if (workers_live_ > 0) --workers_live_;
  if (workers_live_ == 0) {
    // Fleet loss: nothing is left to ever run the queue. Fail everything
    // still queued as worker-lost and stop admitting, so no client hangs on
    // an empty fleet.
    accepting_ = false;
    expired_scratch_.clear();
    core_.fail_all_queued(expired_scratch_);
    for (const std::uint32_t t : expired_scratch_) slot_sync_[t].cv.notify_one();
  }
}

}  // namespace lowino

#include "serve/server.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "parallel/thread_pool.h"

namespace lowino {
namespace {

/// a + b without signed overflow; saturates to kNoDeadline.
Nanos sat_add(Nanos a, Nanos b) {
  if (b > 0 && a > std::numeric_limits<Nanos>::max() - b) return kNoDeadline;
  return a + b;
}

/// Absolute deadline of a request admitted at `now` with a relative SLO
/// budget (kNoDeadline budget: never expires; negative budgets clamp to 0,
/// i.e. already expired).
Nanos slo_deadline(Nanos now, Nanos slo_ns) {
  if (slo_ns == kNoDeadline) return kNoDeadline;
  return sat_add(now, std::max<Nanos>(slo_ns, 0));
}

}  // namespace

const char* serve_result_name(ServeResult r) {
  switch (r) {
    case ServeResult::kOk: return "ok";
    case ServeResult::kQueueFull: return "queue-full";
    case ServeResult::kExpired: return "expired";
    case ServeResult::kShutdown: return "shutdown";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Clocks

Nanos RealClock::now() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RealClock& RealClock::instance() {
  static RealClock clock;
  return clock;
}

// ---------------------------------------------------------------------------
// Batcher

Batcher::Batcher(const BatcherOptions& options) : options_(options) {
  if (options_.max_batch < 1) {
    throw std::invalid_argument("Batcher: max_batch must be >= 1");
  }
  if (options_.linger_ns < 0) {
    throw std::invalid_argument("Batcher: linger_ns must be >= 0");
  }
  if (options_.capacity < options_.max_batch) {
    throw std::invalid_argument("Batcher: capacity must be >= max_batch");
  }
  queue_.reserve(options_.capacity);
}

bool Batcher::admit(std::uint32_t ticket, Nanos now, Nanos deadline) {
  if (queue_.size() >= options_.capacity) return false;
  queue_.push_back(Pending{ticket, now, deadline});
  return true;
}

std::size_t Batcher::expire(Nanos now, std::vector<std::uint32_t>& expired) {
  std::size_t kept = 0;
  std::size_t removed = 0;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (queue_[i].deadline_ns <= now) {
      expired.push_back(queue_[i].ticket);
      ++removed;
    } else {
      queue_[kept++] = queue_[i];
    }
  }
  queue_.resize(kept);
  return removed;
}

bool Batcher::ready(Nanos now) const {
  if (queue_.empty()) return false;
  if (queue_.size() >= options_.max_batch) return true;
  return sat_add(queue_.front().enqueue_ns, options_.linger_ns) <= now;
}

std::size_t Batcher::pop(std::vector<std::uint32_t>& batch) {
  const std::size_t n = std::min(queue_.size(), options_.max_batch);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(queue_[i].ticket);
  queue_.erase(queue_.begin(), queue_.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

Nanos Batcher::next_event() const {
  Nanos event = kNoDeadline;
  if (!queue_.empty()) {
    event = sat_add(queue_.front().enqueue_ns, options_.linger_ns);
    for (const Pending& p : queue_) event = std::min(event, p.deadline_ns);
  }
  return event;
}

Nanos Batcher::oldest_enqueue() const {
  return queue_.empty() ? kNoDeadline : queue_.front().enqueue_ns;
}

// ---------------------------------------------------------------------------
// ServerCore

ServerCore::ServerCore(const BatcherOptions& options)
    : slots_(options.capacity), batcher_(options) {
  free_.reserve(slots_.size());
  // Descending so ticket 0 is handed out first (stable, readable tests).
  for (std::size_t i = slots_.size(); i > 0; --i) {
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
}

std::uint32_t ServerCore::submit(const float* input, float* output, Nanos now,
                                 Nanos deadline) {
  if (draining_) return kNoTicket;
  if (free_.empty()) {
    ++stats_.rejected_full;
    return kNoTicket;
  }
  const std::uint32_t ticket = free_.back();
  if (!batcher_.admit(ticket, now, deadline)) {
    ++stats_.rejected_full;
    return kNoTicket;
  }
  free_.pop_back();
  Slot& slot = slots_[ticket];
  slot.input = input;
  slot.output = output;
  slot.enqueue_ns = now;
  slot.state = SlotState::kQueued;
  ++stats_.submitted;
  return ticket;
}

SlotState ServerCore::state(std::uint32_t ticket) const {
  return slots_[ticket].state;
}

void ServerCore::release(std::uint32_t ticket) {
  Slot& slot = slots_[ticket];
  assert(slot.state == SlotState::kDone || slot.state == SlotState::kExpired);
  slot.state = SlotState::kFree;
  slot.input = nullptr;
  slot.output = nullptr;
  free_.push_back(ticket);
}

std::size_t ServerCore::expire(Nanos now, std::vector<std::uint32_t>& expired) {
  const std::size_t base = expired.size();
  const std::size_t n = batcher_.expire(now, expired);
  for (std::size_t i = base; i < expired.size(); ++i) {
    slots_[expired[i]].state = SlotState::kExpired;
    ++stats_.rejected_expired;
  }
  return n;
}

bool ServerCore::ready(Nanos now) const {
  if (draining_) return batcher_.pending() > 0;
  return batcher_.ready(now);
}

std::size_t ServerCore::close_batch(Nanos now, std::vector<std::uint32_t>& batch) {
  const std::size_t base = batch.size();
  const std::size_t n = batcher_.pop(batch);
  if (n == 0) return 0;
  for (std::size_t i = base; i < batch.size(); ++i) {
    Slot& slot = slots_[batch[i]];
    assert(slot.state == SlotState::kQueued);
    slot.state = SlotState::kRunning;
    stats_.queue_ns_sum += static_cast<std::uint64_t>(now - slot.enqueue_ns);
  }
  running_ += n;
  ++stats_.batches;
  stats_.batched_requests += n;
  if (n >= batcher_.options().max_batch) {
    ++stats_.closed_full;
  } else {
    ++stats_.closed_linger;
  }
  return n;
}

void ServerCore::complete(std::span<const std::uint32_t> batch) {
  for (const std::uint32_t ticket : batch) {
    Slot& slot = slots_[ticket];
    assert(slot.state == SlotState::kRunning);
    slot.state = SlotState::kDone;
  }
  assert(running_ >= batch.size());
  running_ -= batch.size();
  stats_.served += batch.size();
}

const float* ServerCore::slot_input(std::uint32_t ticket) const {
  return slots_[ticket].input;
}

float* ServerCore::slot_output(std::uint32_t ticket) const {
  return slots_[ticket].output;
}

// ---------------------------------------------------------------------------
// ManualServer

ManualServer::ManualServer(const BatcherOptions& options, VirtualClock* clock,
                           BatchRunner runner)
    : core_(options), clock_(clock), runner_(std::move(runner)) {
  if (clock_ == nullptr) throw std::invalid_argument("ManualServer: null clock");
  if (!runner_) throw std::invalid_argument("ManualServer: null runner");
}

std::uint32_t ManualServer::submit(std::span<const float> input, std::span<float> output,
                                   Nanos slo_ns) {
  const Nanos now = clock_->now();
  return core_.submit(input.data(), output.data(), now, slo_deadline(now, slo_ns));
}

ManualServer::StepOutcome ManualServer::step() {
  StepOutcome outcome;
  const Nanos now = clock_->now();
  core_.expire(now, outcome.expired);
  if (core_.ready(now)) {
    core_.close_batch(now, outcome.batch);
    if (!outcome.batch.empty()) {
      runner_(outcome.batch, core_);
      core_.complete(outcome.batch);
    }
  }
  return outcome;
}

std::size_t ManualServer::drain() {
  core_.begin_drain();
  std::size_t steps = 0;
  while (!core_.idle()) {
    step();
    ++steps;
  }
  return steps;
}

// ---------------------------------------------------------------------------
// BatchingServer

namespace {

BatcherOptions resolve_batcher_options(const ServerOptions& o) {
  BatcherOptions b;
  b.max_batch = o.max_batch;
  b.linger_ns = o.linger_ns;
  b.capacity = o.queue_capacity != 0
                   ? o.queue_capacity
                   : std::max<std::size_t>(o.num_workers, 1) * o.max_batch * 4;
  b.capacity = std::max(b.capacity, b.max_batch);
  return b;
}

/// Replicates the calibration input's images cyclically into a max_batch
/// tensor. Replication changes no per-channel value distribution, so KL
/// calibration at the server batch matches calibration on the original
/// input (every op in the network is per-image independent).
Tensor<float> replicate_calibration(const Tensor<float>& calib, std::size_t batch) {
  if (calib.shape().size() != 4) {
    throw std::invalid_argument("BatchingServer: calibration input must be rank-4 NCHW");
  }
  const std::size_t src_batch = calib.dim(0);
  const std::size_t image = calib.size() / src_batch;
  Tensor<float> out({batch, calib.dim(1), calib.dim(2), calib.dim(3)});
  for (std::size_t b = 0; b < batch; ++b) {
    std::memcpy(out.data() + b * image, calib.data() + (b % src_batch) * image,
                image * sizeof(float));
  }
  return out;
}

}  // namespace

VirtualClock& BatchingServer::clock() const {
  return options_.clock != nullptr ? *options_.clock : RealClock::instance();
}

BatchingServer::BatchingServer(SequentialModel& model, const Tensor<float>& calib_input,
                               const ServerOptions& options)
    : options_(options), core_(resolve_batcher_options(options)) {
  if (options_.num_workers < 1) {
    throw std::invalid_argument("BatchingServer: num_workers must be >= 1");
  }
  const Tensor<float> calib = replicate_calibration(calib_input, options_.max_batch);
  input_elems_ = calib.size() / options_.max_batch;

  workers_ = std::vector<Worker>(options_.num_workers);
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w].pool = std::make_unique<ThreadPool>(options_.threads_per_worker);
  }
  // Worker 0 plans (shoot-out / wisdom / forced engine per the caller's
  // options); every other worker replays the resulting immutable plan, so
  // the fleet serves identical engine choices without re-measuring.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    PlanOptions plan = options_.plan;
    plan.pool = workers_[w].pool.get();
    if (w > 0) plan.reuse = &plan_;
    workers_[w].session.emplace(InferenceSession::compile(model, calib, plan));
    if (w == 0) plan_ = workers_[w].session->plan();
  }
  // Pre-warm each worker against its own gather/scatter tensors: the first
  // run shapes `out`, and afterwards the hot path never allocates.
  for (Worker& w : workers_) {
    w.in.reshape(calib.shape());
    std::fill(w.in.data(), w.in.data() + w.in.size(), 0.0f);
    w.session->run(w.in, w.out);
  }
  output_elems_ = workers_.front().out.size() / options_.max_batch;

  slot_sync_ = std::make_unique<SlotSync[]>(core_.capacity());
  expired_scratch_.reserve(core_.capacity());
  start();
}

BatchingServer::~BatchingServer() { stop(); }

void BatchingServer::start() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (accepting_) return;
    stopping_ = false;
    core_.end_drain();
    accepting_ = true;
  }
  for (Worker& w : workers_) {
    w.thread = std::thread([this, &w] { worker_loop(w); });
  }
}

void BatchingServer::stop() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (!accepting_ && !stopping_) {
      if (workers_.empty() || !workers_.front().thread.joinable()) return;
    }
    accepting_ = false;
    stopping_ = true;
    core_.begin_drain();
    work_cv_.notify_all();
  }
  for (Worker& w : workers_) {
    if (w.thread.joinable()) w.thread.join();
  }
}

bool BatchingServer::running() const {
  std::lock_guard<std::mutex> lk(mu_);
  return accepting_;
}

ServeStats BatchingServer::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return core_.stats();
}

ServeResult BatchingServer::serve(std::span<const float> image, std::span<float> output,
                                  Nanos slo_ns) {
  if (image.size() != input_elems_ || output.size() != output_elems_) {
    throw std::invalid_argument("BatchingServer::serve: span sizes must be (" +
                                std::to_string(input_elems_) + ", " +
                                std::to_string(output_elems_) + ")");
  }
  const Nanos slo = slo_ns == kUseDefaultSlo ? options_.default_slo_ns : slo_ns;
  std::unique_lock<std::mutex> lk(mu_);
  if (!accepting_) return ServeResult::kShutdown;
  const Nanos now = clock().now();
  const std::uint32_t ticket =
      core_.submit(image.data(), output.data(), now, slo_deadline(now, slo));
  if (ticket == ServerCore::kNoTicket) return ServeResult::kQueueFull;
  work_cv_.notify_one();
  SlotSync& sync = slot_sync_[ticket];
  sync.cv.wait(lk, [&] {
    const SlotState s = core_.state(ticket);
    return s == SlotState::kDone || s == SlotState::kExpired;
  });
  const ServeResult result = core_.state(ticket) == SlotState::kDone
                                 ? ServeResult::kOk
                                 : ServeResult::kExpired;
  core_.release(ticket);
  return result;
}

void BatchingServer::worker_loop(Worker& worker) {
  std::vector<std::uint32_t> batch;
  batch.reserve(options_.max_batch);
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    // Wait for a closeable batch, expiring overdue SLOs as deadlines pass.
    for (;;) {
      const Nanos now = clock().now();
      expired_scratch_.clear();
      core_.expire(now, expired_scratch_);
      for (const std::uint32_t t : expired_scratch_) slot_sync_[t].cv.notify_one();
      if (core_.ready(now)) break;
      if (stopping_ && core_.pending() == 0) return;
      const Nanos event = core_.next_event();
      if (event == kNoDeadline) {
        work_cv_.wait(lk);
      } else if (event > now) {
        work_cv_.wait_for(lk, std::chrono::nanoseconds(event - now));
      }
      // event <= now: a deadline is already due — loop to expire/close.
    }
    batch.clear();
    core_.close_batch(clock().now(), batch);
    if (batch.empty()) continue;
    // More work may already be closeable (e.g. a burst larger than one
    // batch): hand it to another idle worker before going busy.
    if (core_.pending() > 0) work_cv_.notify_one();
    lk.unlock();
    run_batch(worker, batch);
    lk.lock();
    core_.complete(batch);
    for (const std::uint32_t t : batch) slot_sync_[t].cv.notify_one();
  }
}

void BatchingServer::run_batch(Worker& worker, std::span<const std::uint32_t> batch) {
  // Lock-free by contract: a kRunning slot's bindings are immutable until
  // complete(), and the mutex acquire that closed the batch ordered them.
  // Lanes beyond batch.size() keep stale data — every op is per-image
  // independent, so extra lanes cost compute but never leak into results.
  float* gather = worker.in.data();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::memcpy(gather + i * input_elems_, core_.slot_input(batch[i]),
                input_elems_ * sizeof(float));
  }
  worker.session->run(worker.in, worker.out);
  const float* scatter = worker.out.data();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::memcpy(core_.slot_output(batch[i]), scatter + i * output_elems_,
                output_elems_ * sizeof(float));
  }
}

}  // namespace lowino

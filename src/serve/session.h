// InferenceSession: the serving layer, separating *plan time* from *run
// time* (the API counterpart of the paper's "tune ahead of time, serve from
// wisdom" workflow, extended from one convolution to a whole network).
//
// Plan time — InferenceSession::compile(model, calib_input, options):
//   * lowers the SequentialModel to a flat op list (convolutions, ReLU,
//     maxpool, dense, residual add — residual blocks are flattened so the
//     skip connection becomes a real multi-buffer live range);
//   * runs the post-op fusion pass: conv->relu and conv->add+relu chains
//     collapse into the convolution's single output pass (PostOps epilogue)
//     when the eligible engines support it, killing the element-wise passes
//     and shortening live ranges so the arena peak drops. Gated by the
//     LOWINO_FUSE_POSTOPS kill-switch (default on; set 0 to A/B);
//   * runs one FP32 pass over the calibration batch, capturing every
//     convolution's input distribution and reference output;
//   * picks an engine per quantizable convolution: a measured shoot-out
//     across the eligible candidates (F(2)/F(4)/F(6) eligibility comes from
//     make_conv_engine itself), gated by an accuracy envelope (minimum
//     signal-to-noise vs the FP32 reference), consulted from / recorded into
//     a WisdomStore, with PlanOptions::forced_engine as the escape hatch;
//   * lays every intermediate activation out in one arena via the
//     liveness-based planner (serve/arena.h) and reports planned vs naive
//     peak bytes in the SessionPlan;
//   * binds a persistent ThreadPool and pre-warms every scratch buffer.
//
// Run time — session.run(input, output): executes the op list against the
// arena. Steady-state runs perform zero heap allocations (asserted by the
// malloc-counting harness in tests/test_serve.cc) and record one
// ProfileStage::kServe span per op (engine-internal stages nest inside, so
// LOWINO_PROFILE=1 yields a per-layer, per-stage breakdown).
//
// Threading contract: distinct sessions are thread-compatible — every
// mutable buffer (engines, arena, scratch) is session-owned, and the only
// model state touched at run time is read-only (weights/bias spans). The
// model must outlive its sessions and must not be trained between compile()
// and run(). A single session object is not reentrant.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/aligned_buffer.h"
#include "nn/graph.h"
#include "quant/quantize.h"
#include "serve/arena.h"
#include "tensor/dtype.h"
#include "tensor/tensor.h"
#include "tuning/wisdom.h"

namespace lowino {

class ThreadPool;
struct SessionPlan;

struct PlanOptions {
  /// Forces this engine on every quantizable convolution (no shoot-out, no
  /// envelope). Throws at compile time if any layer cannot build it.
  std::optional<EngineKind> forced_engine;
  /// Candidate engines for the shoot-out; empty means the default quantized
  /// set {int8_direct, lowino_f2, lowino_f4, lowino_f6}.
  std::vector<EngineKind> candidates;
  /// Accuracy envelope: a quantized candidate must reach this
  /// signal-to-noise (dB) vs the FP32 reference to be eligible. When no
  /// candidate passes, the highest-SNR candidate wins anyway (a plan always
  /// exists) and the miss is visible in the SessionPlan record.
  double min_snr_db = 20.0;
  /// Measurement budget per candidate in the plan-time shoot-out.
  double seconds_per_candidate = 0.02;
  /// Pool bound into the session (plan-time measurements and every run).
  /// Null binds ThreadPool::global().
  ThreadPool* pool = nullptr;
  /// When set, per-layer decisions are consulted from ("plan-engine <desc>"
  /// string entries) and recorded into this store. Programmatic overrides
  /// (forced_engine, reuse) beat wisdom.
  WisdomStore* wisdom = nullptr;
  /// Replays a previously compiled (possibly deserialized) plan's engine
  /// choices instead of measuring. Throws if the plan does not match the
  /// model/batch. Takes precedence over wisdom; forced_engine beats both.
  const SessionPlan* reuse = nullptr;
};

/// The serializable record of one compile(): what was chosen and why, plus
/// the memory-planning outcome. Round-trips through serialize()/deserialize()
/// so a tuned plan can be shipped next to the wisdom file and replayed with
/// PlanOptions::reuse.
struct SessionPlan {
  struct ConvChoice {
    std::size_t op_index = 0;  ///< position in the lowered op list
    std::string layer;         ///< layer display name
    std::string desc;          ///< ConvDesc::to_string() at the plan batch
    EngineKind engine = EngineKind::kLoWinoF4;
    double snr_db = 0.0;       ///< measured vs FP32 reference (0 on replay)
    double seconds = 0.0;      ///< plan-time median latency (0 on replay)
    bool met_envelope = true;  ///< false: best-effort pick below min_snr_db
    // Post-op fusion outcome: the element-wise ops the compiler folded into
    // this convolution's output pass (serialized as a "post=" token).
    // Informational on replay — fusion is re-decided from the model
    // structure, the engine capability and the LOWINO_FUSE_POSTOPS switch,
    // which is safe because fused and unfused execution are bit-identical.
    bool fuse_relu = false;
    bool fuse_sum = false;
    // u8 activation hand-off outcome of the type-assignment pass (serialized
    // as a "dtype=in:out" token, omitted when both are FP32 so all-FP32 conv
    // lines stay byte-identical to the v2 format). On replay the tokens are
    // authoritative: the compiler reconstructs the per-value dtypes from them
    // instead of re-running the SNR-gated assignment.
    DType in_dtype = DType::kF32;
    DType out_dtype = DType::kF32;
  };

  std::size_t batch = 0;
  std::vector<ConvChoice> convs;
  std::size_t arena_bytes = 0;  ///< planned arena peak
  std::size_t naive_bytes = 0;  ///< one-buffer-per-value footprint

  /// Human-readable multi-line report (engine per layer, arena savings).
  std::string summary() const;

  /// Plain-text format ("# lowino-plan v3" header; conv lines carry an
  /// optional "post=relu|sum|sum+relu|none" head token recording fused
  /// epilogues and an optional "dtype=<in>:<out>" token recording u8
  /// hand-off dtypes — both absent means unfused / all-FP32, so v1 and v2
  /// files still load). Strict parser: any malformed line (including a
  /// corrupt post or dtype token) rejects the whole plan (nullopt) — a
  /// corrupt plan file must not silently serve with default engines or
  /// dtypes.
  std::string serialize() const;
  static std::optional<SessionPlan> deserialize(const std::string& text);
  bool save(const std::string& path) const;
  static std::optional<SessionPlan> load(const std::string& path);
};

class InferenceSession {
 public:
  /// Plans and builds a session. `calib_input` is one representative input
  /// batch (rank-4 NCHW); its batch dimension fixes the session batch.
  /// Throws std::invalid_argument on unsupported models/shapes and
  /// std::logic_error never (lifecycle ordering is the session's job).
  static InferenceSession compile(SequentialModel& model, const Tensor<float>& calib_input,
                                  const PlanOptions& options = {});

  /// Executes one batch. `input` must have the compile-time shape; `output`
  /// is reshaped to the network output. Zero heap allocations in steady
  /// state (everything was pre-warmed at compile time; the caller's output
  /// tensor grows once on its first use). Not reentrant.
  void run(const Tensor<float>& input, Tensor<float>& output);

  const SessionPlan& plan() const { return plan_; }
  std::size_t batch() const { return plan_.batch; }
  std::size_t op_count() const { return ops_.size(); }
  ThreadPool& pool() const { return *pool_; }

  InferenceSession(InferenceSession&&) noexcept = default;
  InferenceSession& operator=(InferenceSession&&) noexcept = default;

 private:
  InferenceSession() = default;

  struct Op {
    enum class Kind { kConvEngine, kConvFp32, kRelu, kMaxPool, kDense, kAddRelu };
    Kind kind = Kind::kRelu;
    std::size_t in0 = 0;   ///< value id
    std::size_t in1 = 0;   ///< second input (kAddRelu; residual when fuse_sum)
    std::size_t out = 0;   ///< output value id
    // Fused epilogue of a conv op (set by the compiler's post-op fusion pass
    // when a kRelu / kAddRelu successor was folded into the output pass).
    bool fuse_relu = false;
    bool fuse_sum = false;  ///< residual value id rides in in1
    ConvLayer* conv = nullptr;    ///< kConvEngine / kConvFp32
    DenseLayer* dense = nullptr;  ///< kDense
    std::size_t channels = 0;     ///< kMaxPool
    std::size_t hw = 0;           ///< kMaxPool input spatial size
    std::unique_ptr<ConvEngine> engine;  ///< kConvEngine (session-owned)
    // Session-owned FP32 conv scratch (kConvFp32): sessions never share
    // mutable state, even when compiled from the same model.
    AlignedBuffer<float> col, wt, out_rows;
    std::string label;
  };

  /// One lowered value (activation). Values 0 and `output_value_` live in
  /// the caller's tensors; everything else lives in the arena. The dtype is
  /// assigned by the compile-time type-assignment pass (FP32 by default; u8
  /// on hand-off edges, with `qp` recording the hand-off quantization).
  struct Value {
    std::vector<std::size_t> shape;
    std::size_t elems = 0;
    std::size_t def_step = 0;
    std::size_t last_use = 0;
    std::size_t offset_bytes = 0;  ///< arena offset (64B-aligned)
    bool external = false;
    DType dtype = DType::kF32;
    QuantParams qp;  ///< hand-off quantization (meaningful when dtype == kU8)
    std::size_t bytes() const { return elems * dtype_bytes(dtype); }
  };

  void execute_op(Op& op, const void* in0, const void* in1, void* out);
  const void* value_in(std::size_t v, const Tensor<float>& input) const;
  void* value_out(std::size_t v, Tensor<float>& output);

  std::vector<Op> ops_;
  std::vector<Value> values_;
  std::size_t output_value_ = 0;
  AlignedBuffer<std::uint8_t> arena_;
  Tensor<float> warmup_out_;  ///< compile-time warmup target
  ThreadPool* pool_ = nullptr;
  SessionPlan plan_;
};

}  // namespace lowino

#include "serve/arena.h"

#include <algorithm>

#include "common/aligned_buffer.h"

namespace lowino {

namespace {

bool intervals_overlap(const ArenaRequest& a, const ArenaRequest& b) {
  return a.def_step <= b.last_use_step && b.def_step <= a.last_use_step;
}

}  // namespace

ArenaPlan plan_arena(std::span<const ArenaRequest> requests) {
  ArenaPlan plan;
  plan.offsets.assign(requests.size(), 0);

  // Largest-first placement order: big tensors claim the low offsets, small
  // ones fill the gaps — the classic greedy that keeps the peak close to the
  // max-overlap lower bound.
  std::vector<std::size_t> order(requests.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return requests[a].bytes > requests[b].bytes;
  });

  struct Placed {
    std::size_t offset, end, index;
  };
  std::vector<Placed> placed;
  placed.reserve(requests.size());

  for (std::size_t idx : order) {
    const ArenaRequest& req = requests[idx];
    const std::size_t size = round_up(req.bytes, kArenaAlignment);
    plan.naive_bytes += size;
    if (size == 0) continue;  // zero-byte values occupy no space

    // Offsets already claimed during this request's live interval, in offset
    // order; scan the gaps for the lowest fit.
    std::vector<Placed> conflicts;
    for (const Placed& p : placed) {
      if (intervals_overlap(req, requests[p.index])) conflicts.push_back(p);
    }
    std::sort(conflicts.begin(), conflicts.end(),
              [](const Placed& a, const Placed& b) { return a.offset < b.offset; });

    std::size_t offset = 0;
    for (const Placed& c : conflicts) {
      if (offset + size <= c.offset) break;  // fits in the gap below c
      offset = std::max(offset, c.end);
    }
    plan.offsets[idx] = offset;
    placed.push_back({offset, offset + size, idx});
    plan.peak_bytes = std::max(plan.peak_bytes, offset + size);
  }
  return plan;
}

}  // namespace lowino

#include "serve/session.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/fault.h"
#include "common/timer.h"
#include "direct/direct_f32.h"
#include "gemm/fp32_gemm.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"
#include "quant/calibration.h"
#include "quant/histogram.h"
#include "quant/quantize.h"

namespace lowino {

namespace {

/// Default shoot-out candidates: the INT8 engines the paper evaluates, plus
/// the F(6x6,3x3) extension. FP32 kinds are reachable via forced_engine or an
/// explicit candidate list.
constexpr EngineKind kDefaultCandidates[] = {
    EngineKind::kInt8Direct,
    EngineKind::kLoWinoF2,
    EngineKind::kLoWinoF4,
    EngineKind::kLoWinoF6,
    EngineKind::kInt8Conv1x1,
    EngineKind::kInt8Depthwise,
};

/// Plan-file / wisdom token for a fused epilogue ("none" never serializes —
/// unfused conv lines stay byte-identical to the v1 format).
const char* post_ops_token(bool fuse_relu, bool fuse_sum) {
  if (fuse_sum && fuse_relu) return "sum+relu";
  if (fuse_sum) return "sum";
  if (fuse_relu) return "relu";
  return "none";
}

/// Parses a "post=<token>" conv-line field. False on anything malformed.
bool parse_post_token(const std::string& field, bool& fuse_relu, bool& fuse_sum) {
  if (field.rfind("post=", 0) != 0) return false;
  const std::string tok = field.substr(5);
  for (const bool relu : {false, true}) {
    for (const bool sum : {false, true}) {
      if (tok == post_ops_token(relu, sum)) {
        fuse_relu = relu;
        fuse_sum = sum;
        return true;
      }
    }
  }
  return false;
}

/// Parses a "dtype=<in>:<out>" conv-line field. False on anything malformed
/// (missing colon, unknown dtype token, trailing garbage after the pair).
bool parse_dtype_token(const std::string& field, DType& in_dtype, DType& out_dtype) {
  if (field.rfind("dtype=", 0) != 0) return false;
  const std::string tok = field.substr(6);
  const std::size_t colon = tok.find(':');
  if (colon == std::string::npos) return false;
  const std::optional<DType> in = dtype_from_string(tok.substr(0, colon));
  const std::optional<DType> out = dtype_from_string(tok.substr(colon + 1));
  if (!in || !out) return false;
  in_dtype = *in;
  out_dtype = *out;
  return true;
}

std::string plan_wisdom_key(const std::string& desc_str, bool fuse_relu, bool fuse_sum) {
  std::string key = "plan-engine " + desc_str;
  // Fused and unfused instances of the same shape are different planning
  // problems (the epilogue changes the measured latency ranking); unfused
  // keys stay unchanged so existing wisdom files keep hitting.
  if (fuse_relu || fuse_sum) {
    key += std::string(" post=") + post_ops_token(fuse_relu, fuse_sum);
  }
  return key;
}

/// SNR values are clamped before they enter a plan record: an FP32 candidate
/// reproduces the reference bit-for-bit and quantization_error() then reports
/// +inf dB, which would not round-trip through the text format.
double clamp_snr(double snr_db) { return std::min(snr_db, 999.0); }

/// Hand-off quantization for one u8 activation edge, chosen deterministically
/// from the plan-time FP32 reference tensor: the KL-calibrated scale first,
/// falling back to the plain abs-max scale when KL over-clips below the
/// envelope. `met` reports whether the chosen scale reaches `min_snr_db` —
/// compile demotes the edge to FP32 on a miss; replay keeps the plan's
/// recorded dtype (the procedure is deterministic for a given calibration
/// input, so a replayed session is bit-identical to the session it came from).
struct EdgeCalib {
  QuantParams qp;
  double snr_db = 0.0;
  bool met = false;
};

EdgeCalib calibrate_edge(std::span<const float> ref, double min_snr_db) {
  Histogram hist;
  hist.collect(ref);
  std::vector<std::uint8_t> q(ref.size());
  std::vector<float> dq(ref.size());
  const auto snr_of = [&](const QuantParams& qp) {
    quantize_u8_shift128(ref, qp.scale, q);
    dequantize_u8_shift128(q, qp.inv_scale, dq);
    return clamp_snr(quantization_error(ref, dq).signal_to_noise_db);
  };
  EdgeCalib ec;
  ec.qp = calibrate_params(hist);
  ec.snr_db = snr_of(ec.qp);
  ec.met = ec.snr_db >= min_snr_db;
  if (!ec.met) {
    const QuantParams full = QuantParams::from_threshold(hist.max_abs_seen());
    const double full_snr = snr_of(full);
    if (full_snr > ec.snr_db) {
      ec.qp = full;
      ec.snr_db = full_snr;
      ec.met = full_snr >= min_snr_db;
    }
  }
  return ec;
}

}  // namespace

// ---------------------------------------------------------------------------
// SessionPlan

std::string SessionPlan::summary() const {
  std::ostringstream os;
  os << "inference session plan: batch " << batch << ", " << convs.size()
     << " planned convolution(s)\n";
  std::size_t u8_edges = 0;
  for (const ConvChoice& c : convs) {
    os << "  op " << c.op_index << ": " << engine_token(c.engine) << "  " << c.layer << " ["
       << c.desc << "]  snr " << c.snr_db << " dB";
    if (c.seconds > 0.0) os << ", " << c.seconds * 1e3 << " ms";
    if (c.fuse_relu || c.fuse_sum) {
      os << "  (fused " << post_ops_token(c.fuse_relu, c.fuse_sum) << ')';
    }
    if (c.in_dtype != DType::kF32 || c.out_dtype != DType::kF32) {
      os << "  (dtype " << dtype_token(c.in_dtype) << ':' << dtype_token(c.out_dtype) << ')';
      u8_edges += (c.in_dtype == DType::kU8 ? 1 : 0) + (c.out_dtype == DType::kU8 ? 1 : 0);
    }
    if (!c.met_envelope) os << "  (below accuracy envelope; best-effort pick)";
    os << '\n';
  }
  if (u8_edges > 0) os << "  u8 hand-off: " << u8_edges << " conv edge(s)\n";
  const double saved =
      naive_bytes == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(arena_bytes) / static_cast<double>(naive_bytes));
  os << "  arena " << arena_bytes << " B vs naive " << naive_bytes << " B (" << saved
     << "% saved)\n";
  return os.str();
}

std::string SessionPlan::serialize() const {
  std::ostringstream os;
  os << "# lowino-plan v3: conv = op_index engine snr_db seconds met [post=ops] "
        "[dtype=in:out] | layer | desc\n";
  os.precision(9);
  os << "batch = " << batch << '\n';
  os << "arena = " << arena_bytes << '\n';
  os << "naive = " << naive_bytes << '\n';
  for (const ConvChoice& c : convs) {
    os << "conv = " << c.op_index << ' ' << engine_token(c.engine) << ' ' << c.snr_db << ' '
       << c.seconds << ' ' << (c.met_envelope ? 1 : 0);
    // Unfused lines omit the token and stay byte-identical to the v1 format.
    if (c.fuse_relu || c.fuse_sum) {
      os << " post=" << post_ops_token(c.fuse_relu, c.fuse_sum);
    }
    // All-FP32 lines omit the dtype token and stay v2-byte-identical.
    if (c.in_dtype != DType::kF32 || c.out_dtype != DType::kF32) {
      os << " dtype=" << dtype_token(c.in_dtype) << ':' << dtype_token(c.out_dtype);
    }
    os << " | " << c.layer << " | " << c.desc << '\n';
  }
  return os.str();
}

std::optional<SessionPlan> SessionPlan::deserialize(const std::string& text) {
  SessionPlan plan;
  bool saw_batch = false, saw_arena = false, saw_naive = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t eq = line.find(" = ");
    if (eq == std::string::npos) return std::nullopt;
    const std::string key = line.substr(0, eq);
    const std::string payload = line.substr(eq + 3);
    if (key == "batch" || key == "arena" || key == "naive") {
      std::istringstream vals(payload);
      long long v = 0;
      std::string extra;
      if (!(vals >> v) || v < 0 || (vals >> extra)) return std::nullopt;
      if (key == "batch") plan.batch = static_cast<std::size_t>(v), saw_batch = true;
      if (key == "arena") plan.arena_bytes = static_cast<std::size_t>(v), saw_arena = true;
      if (key == "naive") plan.naive_bytes = static_cast<std::size_t>(v), saw_naive = true;
    } else if (key == "conv") {
      // Numeric head up to the first " | ", then "layer | desc".
      const std::size_t bar = payload.find(" | ");
      if (bar == std::string::npos) return std::nullopt;
      ConvChoice c;
      std::istringstream head(payload.substr(0, bar));
      long long idx = 0;
      std::string token;
      int met = -1;
      std::string extra;
      if (!(head >> idx >> token >> c.snr_db >> c.seconds >> met) || idx < 0 ||
          (met != 0 && met != 1)) {
        return std::nullopt;
      }
      // Optional v2 "post=" token, then optional v3 "dtype=" token (in that
      // order); anything else trailing is corruption.
      std::string field;
      if (head >> field) {
        if (field.rfind("post=", 0) == 0) {
          if (!parse_post_token(field, c.fuse_relu, c.fuse_sum)) return std::nullopt;
          if (!(head >> field)) field.clear();
        }
        if (!field.empty()) {
          if (!parse_dtype_token(field, c.in_dtype, c.out_dtype) || (head >> extra)) {
            return std::nullopt;
          }
        }
      }
      const std::optional<EngineKind> kind = engine_kind_from_string(token);
      if (!kind) return std::nullopt;
      c.op_index = static_cast<std::size_t>(idx);
      c.engine = *kind;
      c.met_envelope = met == 1;
      const std::string tail = payload.substr(bar + 3);
      const std::size_t bar2 = tail.find(" | ");
      if (bar2 == std::string::npos) return std::nullopt;
      c.layer = tail.substr(0, bar2);
      c.desc = tail.substr(bar2 + 3);
      if (c.layer.empty() || c.desc.empty()) return std::nullopt;
      plan.convs.push_back(std::move(c));
    } else {
      return std::nullopt;  // unknown key: corrupt or newer format
    }
  }
  if (!saw_batch || !saw_arena || !saw_naive || plan.batch == 0) return std::nullopt;
  return plan;
}

bool SessionPlan::save(const std::string& path) const {
  // Crash-safe: write the whole plan to a sibling temp file, then rename it
  // over the target. A failure (or injected fault) mid-save leaves any
  // previous file untouched — a reader never observes a torn plan.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp);
    if (!out) return false;
    out << serialize();
    if (!out.flush()) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  try {
    maybe_inject_fault(FaultSite::kPlanLoad);
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<SessionPlan> SessionPlan::load(const std::string& path) {
  maybe_inject_fault(FaultSite::kPlanLoad);
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize(buf.str());
}

// ---------------------------------------------------------------------------
// Lowering

namespace {

[[noreturn]] void lower_fail(const std::string& what) {
  throw std::invalid_argument("InferenceSession: " + what);
}

}  // namespace

InferenceSession InferenceSession::compile(SequentialModel& model,
                                           const Tensor<float>& calib_input,
                                           const PlanOptions& options) {
  if (model.layer_count() == 0) lower_fail("model has no layers");
  if (calib_input.rank() != 4) lower_fail("calibration input must be rank-4 NCHW");
  const std::size_t batch = calib_input.dim(0);
  if (batch == 0) lower_fail("calibration batch must be non-empty");

  InferenceSession s;
  s.pool_ = options.pool != nullptr ? options.pool : &ThreadPool::global();
  s.plan_.batch = batch;

  // -- Lower the model to the flat op list, tracking value liveness. --------
  const auto new_value = [&s](std::vector<std::size_t> shape, std::size_t def) {
    Value v;
    v.elems = 1;
    for (std::size_t d : shape) v.elems *= d;
    v.shape = std::move(shape);
    v.def_step = def;
    v.last_use = def;
    s.values_.push_back(std::move(v));
    return s.values_.size() - 1;
  };
  const auto push_op = [&s](Op op) {
    const std::size_t step = s.ops_.size();
    s.values_[op.in0].last_use = step;
    if (op.kind == Op::Kind::kAddRelu) s.values_[op.in1].last_use = step;
    s.ops_.push_back(std::move(op));
  };
  const auto lower_conv = [&](ConvLayer& conv, std::size_t in_val) {
    const Value& vi = s.values_[in_val];
    const ConvDesc d = conv.conv_desc(batch);
    if (vi.elems != batch * conv.in_channels() * conv.spatial() * conv.spatial()) {
      lower_fail("shape mismatch feeding " + conv.name());
    }
    const std::size_t out_val = new_value(
        {batch, conv.out_channels(), d.out_height(), d.out_width()}, s.ops_.size());
    Op op;
    op.kind = conv.quantizable() ? Op::Kind::kConvEngine : Op::Kind::kConvFp32;
    op.in0 = in_val;
    op.out = out_val;
    op.conv = &conv;
    op.label = conv.name();
    push_op(std::move(op));
    return out_val;
  };

  std::size_t cur = new_value(calib_input.shape(), 0);
  s.values_[cur].external = true;
  for (std::size_t i = 0; i < model.layer_count(); ++i) {
    Layer& layer = model.layer(i);
    if (auto* conv = dynamic_cast<ConvLayer*>(&layer)) {
      cur = lower_conv(*conv, cur);
    } else if (dynamic_cast<ReluLayer*>(&layer) != nullptr) {
      const std::size_t out_val = new_value(s.values_[cur].shape, s.ops_.size());
      Op op;
      op.kind = Op::Kind::kRelu;
      op.in0 = cur;
      op.out = out_val;
      op.label = "relu";
      push_op(std::move(op));
      cur = out_val;
    } else if (auto* mp = dynamic_cast<MaxPoolLayer*>(&layer)) {
      const std::size_t hw = mp->spatial();
      if (s.values_[cur].elems != batch * mp->channels() * hw * hw) {
        lower_fail("shape mismatch feeding maxpool");
      }
      const std::size_t out_val =
          new_value({batch, mp->channels(), hw / 2, hw / 2}, s.ops_.size());
      Op op;
      op.kind = Op::Kind::kMaxPool;
      op.in0 = cur;
      op.out = out_val;
      op.channels = mp->channels();
      op.hw = hw;
      op.label = "maxpool2x2";
      push_op(std::move(op));
      cur = out_val;
    } else if (auto* dense = dynamic_cast<DenseLayer*>(&layer)) {
      if (s.values_[cur].elems != batch * dense->in_features()) {
        lower_fail("shape mismatch feeding " + dense->name());
      }
      const std::size_t out_val = new_value({batch, dense->out_features()}, s.ops_.size());
      Op op;
      op.kind = Op::Kind::kDense;
      op.in0 = cur;
      op.out = out_val;
      op.dense = dense;
      op.label = dense->name();
      push_op(std::move(op));
      cur = out_val;
    } else if (auto* res = dynamic_cast<ResidualBlock*>(&layer)) {
      // Flattened so the skip connection is a real live range: the block
      // input stays live across conv1/relu/conv2 until the final add.
      const std::size_t x = cur;
      const std::size_t mid = lower_conv(res->conv1(), x);
      const std::size_t mid_act = new_value(s.values_[mid].shape, s.ops_.size());
      Op relu_op;
      relu_op.kind = Op::Kind::kRelu;
      relu_op.in0 = mid;
      relu_op.out = mid_act;
      relu_op.label = "relu(residual)";
      push_op(std::move(relu_op));
      const std::size_t f_out = lower_conv(res->conv2(), mid_act);
      const std::size_t out_val = new_value(s.values_[x].shape, s.ops_.size());
      Op add_op;
      add_op.kind = Op::Kind::kAddRelu;
      add_op.in0 = x;
      add_op.in1 = f_out;
      add_op.out = out_val;
      add_op.label = "add+relu(residual)";
      push_op(std::move(add_op));
      cur = out_val;
    } else {
      lower_fail("unsupported layer in serving path: " + layer.name());
    }
  }
  s.output_value_ = cur;
  s.values_[cur].external = true;

  // -- Post-op fusion pass: fold conv->relu and conv->add+relu chains into --
  // -- the convolution's single output pass (the PostOps epilogue). ---------
  // A chain fuses when (a) the kill-switch is on, (b) the conv's output has
  // exactly one consumer and it is the immediately following element-wise op,
  // and (c) the engine that will execute the conv can carry the epilogue —
  // kConvFp32 runs session-owned code (always can); kConvEngine consults
  // engine_caps(kind, desc) for the forced/replayed kind or requires at
  // least one shoot-out candidate that both supports the shape and the
  // epilogue (the selection loop then skips declining candidates for fused
  // ops — the graceful fallback). Fusion
  // deletes the element-wise pass *and* orphans its input value, shortening
  // live ranges so the arena planner's peak drops (asserted in test_serve).
  if (post_op_fusion_enabled()) {
    const std::span<const EngineKind> cands =
        options.candidates.empty() ? std::span<const EngineKind>(kDefaultCandidates)
                                   : std::span<const EngineKind>(options.candidates);
    const auto engine_conv_can_fuse = [&](const Op& op, std::size_t conv_ordinal) {
      const ConvDesc desc = op.conv->conv_desc(batch);
      const auto can = [&](EngineKind kind) {
        const EngineCaps caps = engine_caps(kind, desc);
        return caps.post_ops && caps.supports;
      };
      if (options.forced_engine) return can(*options.forced_engine);
      if (options.reuse != nullptr) {
        return conv_ordinal < options.reuse->convs.size() &&
               can(options.reuse->convs[conv_ordinal].engine);
      }
      return std::any_of(cands.begin(), cands.end(), can);
    };

    std::vector<std::size_t> uses(s.values_.size(), 0);
    for (const Op& op : s.ops_) {
      ++uses[op.in0];
      if (op.kind == Op::Kind::kAddRelu) ++uses[op.in1];
    }

    std::vector<Op> fused;
    fused.reserve(s.ops_.size());
    std::size_t conv_ordinal = 0;  // kConvEngine count, for reuse-plan lookup
    for (std::size_t i = 0; i < s.ops_.size(); ++i) {
      Op op = std::move(s.ops_[i]);
      const bool is_conv =
          op.kind == Op::Kind::kConvEngine || op.kind == Op::Kind::kConvFp32;
      const bool can_fuse =
          is_conv &&
          (op.kind == Op::Kind::kConvFp32 || engine_conv_can_fuse(op, conv_ordinal));
      if (op.kind == Op::Kind::kConvEngine) ++conv_ordinal;
      if (can_fuse && i + 1 < s.ops_.size() && uses[op.out] == 1) {
        const Op& next = s.ops_[i + 1];
        if (next.kind == Op::Kind::kRelu && next.in0 == op.out) {
          op.fuse_relu = true;
          op.out = next.out;
          op.label += "+relu";
          ++i;  // the relu pass is gone
        } else if (next.kind == Op::Kind::kAddRelu &&
                   (next.in0 == op.out || next.in1 == op.out)) {
          // The residual (the *other* add input) is defined before this conv
          // (ops are in topological order), so reading it from the epilogue
          // is safe.
          op.fuse_relu = true;
          op.fuse_sum = true;
          op.in1 = next.in0 == op.out ? next.in1 : next.in0;
          op.out = next.out;
          op.label += "+sum+relu";
          ++i;  // the add+relu pass is gone
        }
      }
      fused.push_back(std::move(op));
    }
    s.ops_ = std::move(fused);
  }

  // -- Recompute liveness over the (possibly fused) op list. Values orphaned
  // -- by fusion (a swallowed element-wise op's former input) get no arena
  // -- request at all. ------------------------------------------------------
  std::vector<bool> value_live(s.values_.size(), false);
  value_live[0] = true;
  for (std::size_t step = 0; step < s.ops_.size(); ++step) {
    const Op& op = s.ops_[step];
    s.values_[op.out].def_step = step;
    s.values_[op.out].last_use = step;
    value_live[op.out] = true;
    s.values_[op.in0].last_use = step;
    value_live[op.in0] = true;
    if (op.kind == Op::Kind::kAddRelu || op.fuse_sum) {
      s.values_[op.in1].last_use = step;
      value_live[op.in1] = true;
    }
  }

  // -- Plan-time FP32 pass: capture every conv's input distribution and -----
  // -- reference output (the accuracy envelope's ground truth). -------------
  std::vector<Tensor<float>> vals(s.values_.size());
  vals[0] = calib_input;
  for (Op& op : s.ops_) {
    vals[op.out].reshape(s.values_[op.out].shape);
    if (op.kind == Op::Kind::kConvEngine) {
      op.conv->forward_fp32(vals[op.in0].span(), vals[op.out].span(), batch);
      // The fused reference includes the epilogue (identical float op
      // sequence to the engines' in-register version, hence bit-comparable).
      const std::span<float> out = vals[op.out].span();
      if (op.fuse_sum) {
        const float* res = vals[op.in1].data();
        for (std::size_t i = 0; i < out.size(); ++i) out[i] += res[i];
      }
      if (op.fuse_relu) {
        for (float& v : out) v = std::max(0.0f, v);
      }
    } else {
      const float* in1 =
          op.kind == Op::Kind::kAddRelu || op.fuse_sum ? vals[op.in1].data() : nullptr;
      s.execute_op(op, vals[op.in0].data(), in1, vals[op.out].data());
    }
  }

  // -- Per-convolution engine selection. ------------------------------------
  const std::size_t reuse_convs =
      (!options.forced_engine && options.reuse != nullptr) ? options.reuse->convs.size() : 0;
  if (options.reuse != nullptr && !options.forced_engine &&
      options.reuse->batch != batch) {
    lower_fail("reused plan was compiled for batch " + std::to_string(options.reuse->batch));
  }
  Tensor<float> actual;  // candidate output scratch
  std::size_t conv_idx = 0;
  for (std::size_t i = 0; i < s.ops_.size(); ++i) {
    Op& op = s.ops_[i];
    if (op.kind != Op::Kind::kConvEngine) continue;
    const ConvDesc desc = op.conv->conv_desc(batch);
    const std::string desc_str = desc.to_string();
    const Tensor<float>& plan_in = vals[op.in0];
    const Tensor<float>& ref_out = vals[op.out];
    // Fused ops are measured fused: the epilogue changes both the latency
    // ranking and the reference the SNR compares against.
    const PostOps post{op.fuse_relu, op.fuse_sum ? vals[op.in1].data() : nullptr};

    // Builds + calibrates one candidate; nullptr when make_conv_engine
    // rejects the (kind, shape) pair — that is the eligibility filter.
    const auto build = [&](EngineKind kind) -> std::unique_ptr<ConvEngine> {
      std::unique_ptr<ConvEngine> e;
      try {
        e = make_conv_engine(kind, desc);
      } catch (const std::invalid_argument&) {
        return nullptr;
      }
      if (engine_caps(kind, desc).quantized) {
        e->calibrate(plan_in.span());
        e->finalize_calibration();
      }
      e->set_filters(op.conv->weights(), op.conv->bias());
      return e;
    };

    SessionPlan::ConvChoice choice;
    choice.op_index = i;
    choice.layer = op.label;
    choice.desc = desc_str;
    actual.reshape(s.values_[op.out].shape);

    if (options.forced_engine) {
      op.engine = build(*options.forced_engine);
      if (op.engine == nullptr) {
        lower_fail(std::string("forced engine ") + engine_token(*options.forced_engine) +
                   " is not eligible for " + desc_str);
      }
      choice.engine = *options.forced_engine;
    } else if (options.reuse != nullptr) {
      if (conv_idx >= reuse_convs) lower_fail("reused plan has too few convolutions");
      const SessionPlan::ConvChoice& rc = options.reuse->convs[conv_idx];
      if (rc.desc != desc_str) {
        lower_fail("reused plan mismatch at " + op.label + ": plan has [" + rc.desc +
                   "], model needs [" + desc_str + "]");
      }
      op.engine = build(rc.engine);
      if (op.engine == nullptr) {
        lower_fail(std::string("reused plan engine ") + engine_token(rc.engine) +
                   " is not eligible for " + desc_str);
      }
      choice.engine = rc.engine;
      choice.seconds = rc.seconds;
    } else {
      std::optional<EngineKind> hint;
      if (options.wisdom != nullptr) {
        if (const auto token = options.wisdom->get_string(
                plan_wisdom_key(desc_str, op.fuse_relu, op.fuse_sum))) {
          hint = engine_kind_from_string(*token);
        }
      }
      // A hinted engine that cannot carry this op's shape or fused epilogue
      // is as unusable as an unbuildable one: fall through to the shoot-out.
      if (hint) {
        const EngineCaps hint_caps = engine_caps(*hint, desc);
        if (!hint_caps.supports || (!post.none() && !hint_caps.post_ops)) hint.reset();
      }
      if (hint) {
        op.engine = build(*hint);  // unbuildable hint falls through to shoot-out
        if (op.engine != nullptr) choice.engine = *hint;
      }
      if (op.engine == nullptr) {
        // Measured shoot-out under the accuracy envelope.
        const std::span<const EngineKind> cands =
            options.candidates.empty() ? std::span<const EngineKind>(kDefaultCandidates)
                                       : std::span<const EngineKind>(options.candidates);
        std::unique_ptr<ConvEngine> best_engine;
        SessionPlan::ConvChoice best, fallback;
        std::unique_ptr<ConvEngine> fallback_engine;
        fallback.snr_db = -1e300;
        bool any_pass = false;
        for (const EngineKind kind : cands) {
          // Capability gate before construction: skip candidates that cannot
          // handle this shape, and for fused ops restrict the shoot-out to
          // post-op-capable engines (the fusion pass guaranteed at least one
          // candidate qualifies).
          const EngineCaps caps = engine_caps(kind, desc);
          if (!caps.supports) continue;
          if (!post.none() && !caps.post_ops) continue;
          auto e = build(kind);
          if (e == nullptr) continue;
          e->run(plan_in.span(), actual.span(), s.pool_, post);
          const double snr =
              clamp_snr(quantization_error(ref_out.span(), actual.span()).signal_to_noise_db);
          const double sec =
              time_it([&] { e->run(plan_in.span(), actual.span(), s.pool_, post); },
                      /*warmup=*/1, /*min_iters=*/2, /*max_iters=*/50,
                      options.seconds_per_candidate)
                  .median;
          const bool meets = !caps.quantized || snr >= options.min_snr_db;
          if (meets && (!any_pass || sec < best.seconds)) {
            any_pass = true;
            best.engine = kind;
            best.snr_db = snr;
            best.seconds = sec;
            best_engine = std::move(e);
          } else if (!meets && snr > fallback.snr_db) {
            fallback.engine = kind;
            fallback.snr_db = snr;
            fallback.seconds = sec;
            fallback_engine = std::move(e);
          }
        }
        if (!any_pass && fallback_engine == nullptr) {
          lower_fail("no engine candidate is eligible for " + desc_str);
        }
        if (any_pass) {
          op.engine = std::move(best_engine);
          choice.engine = best.engine;
          choice.snr_db = best.snr_db;
          choice.seconds = best.seconds;
          choice.met_envelope = true;
        } else {
          op.engine = std::move(fallback_engine);
          choice.engine = fallback.engine;
          choice.snr_db = fallback.snr_db;
          choice.seconds = fallback.seconds;
          choice.met_envelope = false;
        }
      }
    }

    if (choice.snr_db == 0.0) {
      // Forced / replayed / wisdom-hinted engines skip the shoot-out but
      // still get one accuracy measurement so the plan record is honest.
      op.engine->run(plan_in.span(), actual.span(), s.pool_, post);
      choice.snr_db =
          clamp_snr(quantization_error(ref_out.span(), actual.span()).signal_to_noise_db);
      choice.met_envelope = !engine_caps(choice.engine, desc).quantized ||
                            choice.snr_db >= options.min_snr_db;
    }
    choice.fuse_relu = op.fuse_relu;
    choice.fuse_sum = op.fuse_sum;
    if (options.wisdom != nullptr) {
      options.wisdom->put_string(plan_wisdom_key(desc_str, op.fuse_relu, op.fuse_sum),
                                 engine_token(choice.engine));
    }
    s.plan_.convs.push_back(std::move(choice));
    ++conv_idx;
  }
  if (reuse_convs != 0 && conv_idx != reuse_convs) {
    lower_fail("reused plan has more convolutions than the model");
  }

  // -- Type-assignment pass: pick the u8 activation hand-off per edge. ------
  // Fixpoint over the value graph: a value is a u8 candidate when its
  // producer can emit u8 (a hand-off-capable conv engine, or a ReLU/maxpool
  // whose own input is u8 — both passthroughs are exact on the +128 encoding
  // because quantization is monotone with q(0) = 128) and every consumer can
  // read u8 (a capable conv's input or fused residual, or a coupled
  // passthrough). Each surviving conv-output edge is then KL-calibrated
  // against the plan-time FP32 reference and must meet the same
  // options.min_snr_db envelope as engine selection; a miss demotes the edge
  // to FP32 and re-runs the fixpoint (demotion cascades through passthrough
  // coupling). Passthrough outputs inherit their input's QuantParams, so a
  // whole passthrough segment shares one scale and the byte-domain
  // ReLU/maxpool stay exact. Replay skips the SNR gate: the plan's recorded
  // dtype tokens are authoritative and only validated for structural
  // consistency. See DESIGN.md decision 13.
  const bool replay_dtypes = options.reuse != nullptr && !options.forced_engine;
  if (u8_handoff_enabled()) {
    std::vector<char> want(s.values_.size(), 0);
    if (replay_dtypes) {
      // Reconstruct from the plan: conv outputs take their recorded token;
      // passthrough outputs inherit (ops are in topological order).
      std::size_t ordinal = 0;
      for (const Op& op : s.ops_) {
        if (op.kind == Op::Kind::kConvEngine) {
          if (options.reuse->convs[ordinal++].out_dtype == DType::kU8) want[op.out] = 1;
        } else if (op.kind == Op::Kind::kRelu || op.kind == Op::Kind::kMaxPool) {
          want[op.out] = want[op.in0];
        }
      }
      if (want[s.output_value_] != 0) {
        lower_fail("reused plan assigns u8 to the external output value");
      }
      // Validate: recorded input dtypes match the reconstruction and u8
      // edges only touch hand-off-capable consumers.
      ordinal = 0;
      for (const Op& op : s.ops_) {
        const bool u8_in = want[op.in0] != 0;
        const bool u8_res = op.fuse_sum && want[op.in1] != 0;
        switch (op.kind) {
          case Op::Kind::kConvEngine: {
            const SessionPlan::ConvChoice& rc = options.reuse->convs[ordinal++];
            if (rc.in_dtype != (u8_in ? DType::kU8 : DType::kF32)) {
              lower_fail("reused plan dtype mismatch at " + op.label);
            }
            if ((u8_in || want[op.out] != 0 || u8_res) && !op.engine->supports_u8_handoff()) {
              lower_fail("reused plan assigns u8 hand-off to incapable engine " +
                         std::string(engine_token(rc.engine)) + " at " + op.label);
            }
            break;
          }
          case Op::Kind::kConvFp32:
            if (u8_in || u8_res) lower_fail("reused plan feeds u8 to an FP32 conv");
            break;
          case Op::Kind::kDense:
            if (u8_in) lower_fail("reused plan feeds u8 to a dense layer");
            break;
          case Op::Kind::kAddRelu:
            if (u8_in || want[op.in1] != 0) {
              lower_fail("reused plan feeds u8 to an unfused add");
            }
            break;
          default:
            break;
        }
      }
      // Hand-off scales re-derive deterministically from the calibration
      // input (same procedure as compile, gate outcome ignored), so a
      // replayed session is bit-identical to the one that produced the plan.
      for (const Op& op : s.ops_) {
        if (op.kind == Op::Kind::kConvEngine && want[op.out] != 0) {
          s.values_[op.out].qp = calibrate_edge(vals[op.out].span(), options.min_snr_db).qp;
        }
      }
    } else {
      // Seed: capable conv outputs, plus passthrough outputs (conditional on
      // their input — the fixpoint resolves the coupling).
      for (const Op& op : s.ops_) {
        if (s.values_[op.out].external) continue;
        if (op.kind == Op::Kind::kConvEngine && op.engine->supports_u8_handoff()) {
          want[op.out] = 1;
        } else if (op.kind == Op::Kind::kRelu || op.kind == Op::Kind::kMaxPool) {
          want[op.out] = 1;
        }
      }
      const auto run_fixpoint = [&] {
        bool changed = true;
        const auto demote = [&](std::size_t v) {
          if (want[v] != 0) {
            want[v] = 0;
            changed = true;
          }
        };
        while (changed) {
          changed = false;
          for (const Op& op : s.ops_) {
            switch (op.kind) {
              case Op::Kind::kConvEngine:
                if (!op.engine->supports_u8_handoff()) {
                  demote(op.in0);
                  if (op.fuse_sum) demote(op.in1);
                }
                break;
              case Op::Kind::kConvFp32:
                demote(op.in0);
                if (op.fuse_sum) demote(op.in1);
                break;
              case Op::Kind::kRelu:
              case Op::Kind::kMaxPool:
                // Byte-domain passthrough is all-or-nothing: input and
                // output share the dtype (and the scale).
                if (want[op.in0] != want[op.out]) {
                  demote(op.in0);
                  demote(op.out);
                }
                break;
              case Op::Kind::kDense:
                demote(op.in0);
                break;
              case Op::Kind::kAddRelu:
                demote(op.in0);
                demote(op.in1);
                break;
            }
          }
        }
      };
      // SNR-gate each surviving conv-output edge; a demotion re-runs the
      // fixpoint (monotone, so this terminates).
      std::vector<char> gated(s.values_.size(), 0);
      bool stable = false;
      while (!stable) {
        run_fixpoint();
        stable = true;
        for (const Op& op : s.ops_) {
          if (op.kind != Op::Kind::kConvEngine || want[op.out] == 0 || gated[op.out] != 0) {
            continue;
          }
          const EdgeCalib ec = calibrate_edge(vals[op.out].span(), options.min_snr_db);
          if (!ec.met) {
            want[op.out] = 0;
            stable = false;
            break;
          }
          gated[op.out] = 1;
          s.values_[op.out].qp = ec.qp;
        }
      }
    }
    // Commit: value dtypes, passthrough scale propagation (topological, so a
    // consumer conv always reads a finalized qp), engine configuration, plan
    // record.
    for (std::size_t v = 0; v < s.values_.size(); ++v) {
      if (want[v] != 0) s.values_[v].dtype = DType::kU8;
    }
    std::size_t ordinal = 0;
    for (Op& op : s.ops_) {
      if (op.kind == Op::Kind::kRelu || op.kind == Op::Kind::kMaxPool) {
        if (want[op.out] != 0) s.values_[op.out].qp = s.values_[op.in0].qp;
        continue;
      }
      if (op.kind != Op::Kind::kConvEngine) continue;
      SessionPlan::ConvChoice& choice = s.plan_.convs[ordinal++];
      if (want[op.in0] != 0) {
        op.engine->set_input_u8(s.values_[op.in0].qp);
        choice.in_dtype = DType::kU8;
      }
      if (want[op.out] != 0) {
        op.engine->set_output_u8(s.values_[op.out].qp);
        choice.out_dtype = DType::kU8;
      }
    }
  }

  // -- In-place residual reuse: a fused conv's output shares its residual's
  // -- arena slot when the conv is the residual's final consumer. Safe for
  // -- every post-op-capable engine: the direct engines read each residual
  // -- element in the same scalar iteration that overwrites it, and the
  // -- Winograd engines read the residual inside the output transform, with
  // -- the fork-join barrier before the blocked->NCHW unpack that writes the
  // -- buffer. This is what turns fusion into an arena *peak* win — the
  // -- residual pattern otherwise needs conv-input, residual and output live
  // -- at once, fused or not. Sharing requires equal byte footprints
  // -- (arena_slots_compatible): with mixed u8/FP32 dtypes an equal element
  // -- count no longer implies equal size, and an FP32 output aliasing a u8
  // -- residual's slot would overrun it. ------------------------------------
  std::vector<std::pair<std::size_t, std::size_t>> alias_pairs;  // (out, slot root)
  std::vector<bool> value_aliased(s.values_.size(), false);
  {
    std::vector<std::size_t> slot_root(s.values_.size());
    for (std::size_t v = 0; v < slot_root.size(); ++v) slot_root[v] = v;
    for (std::size_t step = 0; step < s.ops_.size(); ++step) {
      const Op& op = s.ops_[step];
      if (!op.fuse_sum) continue;
      const std::size_t res = op.in1, out = op.out;
      if (s.values_[res].external || s.values_[out].external) continue;
      if (res == op.in0 ||
          !arena_slots_compatible(s.values_[res].elems, s.values_[res].dtype,
                                  s.values_[out].elems, s.values_[out].dtype)) {
        continue;
      }
      if (s.values_[res].last_use != step) continue;  // residual read again later
      const std::size_t root = slot_root[res];
      slot_root[out] = root;
      value_aliased[out] = true;
      s.values_[root].last_use = std::max(s.values_[root].last_use, s.values_[out].last_use);
      alias_pairs.emplace_back(out, root);
    }
  }

  // -- Arena planning over the non-external values (slots sized per dtype). -
  std::vector<ArenaRequest> requests;
  std::vector<std::size_t> request_value;
  for (std::size_t v = 0; v < s.values_.size(); ++v) {
    const Value& val = s.values_[v];
    if (val.external || !value_live[v] || value_aliased[v]) continue;
    requests.push_back({val.bytes(), val.def_step, val.last_use});
    request_value.push_back(v);
  }
  const ArenaPlan arena_plan = plan_arena(requests);
  for (std::size_t j = 0; j < request_value.size(); ++j) {
    s.values_[request_value[j]].offset_bytes = arena_plan.offsets[j];
  }
  // Aliased outputs inherit their slot root's offset (pairs are in op order,
  // so a root's offset is always final by the time a dependent reads it).
  for (const auto& [out, root] : alias_pairs) {
    s.values_[out].offset_bytes = s.values_[root].offset_bytes;
  }
  s.arena_.ensure(arena_plan.peak_bytes);
  s.plan_.arena_bytes = arena_plan.peak_bytes;
  s.plan_.naive_bytes = arena_plan.naive_bytes;

  // -- Pre-warm every lazily grown buffer so steady-state runs never --------
  // -- allocate (engine workspaces, FP32 conv scratch, warmup output). ------
  s.run(calib_input, s.warmup_out_);
  s.run(calib_input, s.warmup_out_);
  return s;
}

// ---------------------------------------------------------------------------
// Run time

const void* InferenceSession::value_in(std::size_t v, const Tensor<float>& input) const {
  if (v == 0) return input.data();
  return arena_.data() + values_[v].offset_bytes;
}

void* InferenceSession::value_out(std::size_t v, Tensor<float>& output) {
  if (v == output_value_) return output.data();
  return arena_.data() + values_[v].offset_bytes;
}

void InferenceSession::run(const Tensor<float>& input, Tensor<float>& output) {
  maybe_inject_fault(FaultSite::kSessionRun);
  if (input.shape() != values_[0].shape) {
    throw std::invalid_argument("InferenceSession::run: input shape does not match the plan");
  }
  // reshape() only when needed: re-running into the same output tensor must
  // not touch the heap (reshape copies the shape vector even when sizes
  // already match).
  if (output.shape() != values_[output_value_].shape) {
    output.reshape(values_[output_value_].shape);
  }
  for (Op& op : ops_) {
    ProfileSpan span(ProfileStage::kServe);
    const void* in0 = value_in(op.in0, input);
    const void* in1 = op.kind == Op::Kind::kAddRelu || op.fuse_sum
                          ? value_in(op.in1, input)
                          : nullptr;
    void* out = value_out(op.out, output);
    execute_op(op, in0, in1, out);
  }
}

void InferenceSession::execute_op(Op& op, const void* in0, const void* in1, void* out) {
  const Value& vi = values_[op.in0];
  const Value& vo = values_[op.out];
  switch (op.kind) {
    case Op::Kind::kConvEngine: {
      // Injected *before* the engine touches its state: a faulted op leaves
      // the engine and every arena value exactly as a never-started op would,
      // so a run aborted here is safely retryable from the top.
      maybe_inject_fault(FaultSite::kEngineExecute);
      PostOps post;
      post.relu = op.fuse_relu;
      if (op.fuse_sum) {
        if (values_[op.in1].dtype == DType::kU8) {
          post.sum_u8 = static_cast<const std::uint8_t*>(in1);
          post.sum_u8_inv_scale = values_[op.in1].qp.inv_scale;
        } else {
          post.sum = static_cast<const float*>(in1);
        }
      }
      if (vi.dtype == DType::kU8 || vo.dtype == DType::kU8 || post.sum_u8 != nullptr) {
        // u8 hand-off on any edge: the typed entry point reads/writes the
        // arena buffers with the dtypes the compiler configured.
        op.engine->run_typed(in0, out, pool_, post);
      } else if (!post.none()) {
        // Fused epilogue: the element-wise pass rides inside the engine's
        // output pass (attributed to its output-transform / store stage).
        op.engine->run({static_cast<const float*>(in0), vi.elems},
                       {static_cast<float*>(out), vo.elems}, pool_, post);
      } else {
        op.engine->run({static_cast<const float*>(in0), vi.elems},
                       {static_cast<float*>(out), vo.elems}, pool_);
      }
      break;
    }
    case Op::Kind::kConvFp32: {
      // Mirrors ConvLayer::forward_fp32 computation exactly (bit-identical
      // serving for the FP32 stem) with session-owned scratch and per-image
      // im2col — serving has no backward pass to feed.
      const std::size_t batch = plan_.batch;
      const ConvDesc d = op.conv->conv_desc(batch);
      const std::size_t rows = d.out_height() * d.out_width();
      const std::size_t k = op.conv->out_channels();
      const std::size_t patch = op.conv->in_channels() * d.kernel * d.kernel;
      op.col.ensure(rows * patch);
      op.wt.ensure(patch * k);
      op.out_rows.ensure(rows * k);
      const std::span<const float> weights = op.conv->weights();
      const std::span<const float> bias = op.conv->bias();
      float* wT = op.wt.data();
      for (std::size_t kk = 0; kk < k; ++kk) {
        for (std::size_t p = 0; p < patch; ++p) wT[p * k + kk] = weights[kk * patch + p];
      }
      const float* fin0 = static_cast<const float*>(in0);
      const float* fin1 = static_cast<const float*>(in1);
      float* fout = static_cast<float*>(out);
      for (std::size_t b = 0; b < batch; ++b) {
        im2col_f32(d, {fin0, vi.elems}, b, op.col.data());
        fp32_gemm(op.col.data(), patch, wT, k, op.out_rows.data(), k, rows, patch, k);
        const float* src_rows = op.out_rows.data();
        for (std::size_t kk = 0; kk < k; ++kk) {
          float* dst = fout + (b * k + kk) * rows;
          const float* res = op.fuse_sum ? fin1 + (b * k + kk) * rows : nullptr;
          const float bk = bias[kk];
          for (std::size_t p = 0; p < rows; ++p) {
            float v = src_rows[p * k + kk] + bk;
            if (res != nullptr) v += res[p];
            dst[p] = op.fuse_relu ? std::max(0.0f, v) : v;
          }
        }
      }
      break;
    }
    case Op::Kind::kRelu: {
      // A standalone (unfused) element-wise pass: visible as its own profile
      // stage so traces show these passes disappearing under fusion.
      ProfileSpan pspan(ProfileStage::kPostOps);
      if (vo.dtype == DType::kU8) {
        // Byte-domain passthrough: quantization is monotone with q(0) = 128,
        // so max(q, 128) IS the quantized ReLU — exact, no dequant round trip.
        const std::uint8_t* src = static_cast<const std::uint8_t*>(in0);
        std::uint8_t* dst = static_cast<std::uint8_t*>(out);
        for (std::size_t i = 0; i < vo.elems; ++i) {
          dst[i] = src[i] > 128 ? src[i] : std::uint8_t{128};
        }
      } else {
        const float* src = static_cast<const float*>(in0);
        float* dst = static_cast<float*>(out);
        for (std::size_t i = 0; i < vo.elems; ++i) {
          dst[i] = src[i] > 0.0f ? src[i] : 0.0f;
        }
      }
      break;
    }
    case Op::Kind::kMaxPool: {
      const std::size_t hw = op.hw;
      const std::size_t oh = hw / 2;
      // Byte-domain maxpool is exact for the same monotonicity reason as the
      // byte-domain ReLU: max commutes with quantization under one scale.
      const auto pool2x2 = [&](const auto* src_all, auto* dst_all) {
        for (std::size_t bc = 0; bc < plan_.batch * op.channels; ++bc) {
          const auto* src = src_all + bc * hw * hw;
          auto* dst = dst_all + bc * oh * oh;
          for (std::size_t y = 0; y < oh; ++y) {
            for (std::size_t x = 0; x < oh; ++x) {
              std::size_t best = (2 * y) * hw + 2 * x;
              for (std::size_t dy = 0; dy < 2; ++dy) {
                for (std::size_t dx = 0; dx < 2; ++dx) {
                  const std::size_t idx = (2 * y + dy) * hw + 2 * x + dx;
                  if (src[idx] > src[best]) best = idx;
                }
              }
              dst[y * oh + x] = src[best];
            }
          }
        }
      };
      if (vo.dtype == DType::kU8) {
        pool2x2(static_cast<const std::uint8_t*>(in0), static_cast<std::uint8_t*>(out));
      } else {
        pool2x2(static_cast<const float*>(in0), static_cast<float*>(out));
      }
      break;
    }
    case Op::Kind::kDense: {
      const std::size_t in_f = op.dense->in_features();
      const std::size_t out_f = op.dense->out_features();
      const float* fin0 = static_cast<const float*>(in0);
      float* fout = static_cast<float*>(out);
      fp32_gemm(fin0, in_f, op.dense->weights().data(), out_f, fout, out_f, plan_.batch,
                in_f, out_f);
      const std::span<const float> bias = op.dense->bias();
      for (std::size_t b = 0; b < plan_.batch; ++b) {
        for (std::size_t o = 0; o < out_f; ++o) fout[b * out_f + o] += bias[o];
      }
      break;
    }
    case Op::Kind::kAddRelu: {
      ProfileSpan pspan(ProfileStage::kPostOps);
      const float* a = static_cast<const float*>(in0);
      const float* b = static_cast<const float*>(in1);
      float* dst = static_cast<float*>(out);
      for (std::size_t i = 0; i < vo.elems; ++i) {
        dst[i] = std::max(0.0f, a[i] + b[i]);
      }
      break;
    }
  }
}

}  // namespace lowino

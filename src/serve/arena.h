// Liveness-based activation memory planner for the serving layer.
//
// The planner receives one request per intermediate value of a lowered
// network — its size in bytes and the [def_step, last_use_step] interval in
// which the value is live — and assigns every request an offset inside a
// single arena such that no two time-overlapping values alias. Values whose
// lifetimes are disjoint share bytes, so the arena peak is typically far
// below the naive sum-of-all-buffers footprint (the quantity ArenaPlan
// reports next to the planned peak).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "tensor/dtype.h"

namespace lowino {

/// One value to place: `bytes` of storage, live over the inclusive step
/// interval [def_step, last_use_step]. A request with bytes == 0 is legal and
/// gets offset 0 (it occupies no space and conflicts with nothing).
struct ArenaRequest {
  std::size_t bytes = 0;
  std::size_t def_step = 0;
  std::size_t last_use_step = 0;
};

/// Result of plan_arena(): one offset per request (same order), the arena
/// size the offsets imply, and the naive footprint for comparison.
struct ArenaPlan {
  std::vector<std::size_t> offsets;
  std::size_t peak_bytes = 0;   ///< arena size = max(offset + aligned size)
  std::size_t naive_bytes = 0;  ///< sum of aligned sizes (one buffer each)
};

/// Alignment of every planned offset (cache line, and what AlignedBuffer
/// guarantees for the arena base — so every value pointer is 64B-aligned).
inline constexpr std::size_t kArenaAlignment = 64;

/// True when two values may share one arena slot in place (the fused-residual
/// alias: the consumer reads every residual element before overwriting it).
/// The byte footprints must match exactly — equal element counts with mixed
/// element widths (e.g. a u8 residual aliased by an FP32 output) would let
/// the wider value overrun the narrower slot.
inline bool arena_slots_compatible(std::size_t elems_a, DType dtype_a, std::size_t elems_b,
                                   DType dtype_b) {
  return elems_a * dtype_bytes(dtype_a) == elems_b * dtype_bytes(dtype_b);
}

/// Plans offsets greedily: requests are placed largest-first, each at the
/// lowest 64B-aligned offset where it fits below, between or above the
/// already-placed requests whose live intervals overlap its own. Guarantees
/// (fuzz-tested): no two requests with overlapping [def, last_use] intervals
/// overlap in [offset, offset + bytes), and peak_bytes <= naive_bytes.
ArenaPlan plan_arena(std::span<const ArenaRequest> requests);

}  // namespace lowino

// Static partitioning of an index range over workers (Section 4.4 of the paper).
//
// The paper assigns each thread the same amount of contiguous work at
// compile-time ("static scheduling"); here `static_partition` computes the
// contiguous [begin, end) slice of worker `tid` out of `num_workers` for a job
// of `n` items. Remainder items are spread over the first `n % num_workers`
// workers so the imbalance is at most one item.
#pragma once

#include <cstddef>
#include <utility>

namespace lowino {

struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
};

inline Range static_partition(std::size_t n, std::size_t num_workers, std::size_t tid) {
  const std::size_t base = n / num_workers;
  const std::size_t rem = n % num_workers;
  const std::size_t begin = tid * base + (tid < rem ? tid : rem);
  const std::size_t len = base + (tid < rem ? 1 : 0);
  return {begin, begin + len};
}

/// Partitions `n` items into chunks that are multiples of `granule` (except
/// possibly the last chunk). Used when items must stay grouped, e.g. tiles
/// that share a cache line in the blocked layouts.
inline Range static_partition_granular(std::size_t n, std::size_t num_workers, std::size_t tid,
                                       std::size_t granule) {
  const std::size_t groups = (n + granule - 1) / granule;
  Range g = static_partition(groups, num_workers, tid);
  Range r{g.begin * granule, g.end * granule};
  if (r.begin > n) r.begin = n;
  if (r.end > n) r.end = n;
  return r;
}

}  // namespace lowino

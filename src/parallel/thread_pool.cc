#include "parallel/thread_pool.h"

#include <cstdint>
#include <cstdio>
#include <utility>

#include "common/env.h"
#include "profile/profiler.h"

namespace lowino {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    num_threads = hw != 0 ? hw : 1;
  }
  num_threads_ = num_threads;
  workers_.reserve(num_threads_ > 0 ? num_threads_ - 1 : 0);
  // Worker 0 is the calling thread; spawn the remaining num_threads-1.
  for (std::size_t tid = 1; tid < num_threads_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run(const std::function<void(std::size_t, std::size_t)>& fn) {
  dispatch([](void* ctx, std::size_t tid, std::size_t nw) {
    (*static_cast<const std::function<void(std::size_t, std::size_t)>*>(ctx))(tid, nw);
  }, const_cast<void*>(static_cast<const void*>(&fn)));
}

namespace {
/// The pool whose region the current thread is executing, if any. Used to
/// serialize re-entrant run() calls instead of deadlocking on dispatch state.
thread_local const ThreadPool* t_active_pool = nullptr;
}  // namespace

void ThreadPool::record_error() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!first_error_) first_error_ = std::current_exception();
}

void ThreadPool::dispatch(JobFn fn, void* ctx) {
  if (t_active_pool == this) {
    // Re-entrant region: execute inline as a serial single-worker region
    // (see the contract in the header). Exceptions propagate to the task.
    fn(ctx, 0, 1);
    return;
  }
  if (num_threads_ == 1) {
    fn(ctx, 0, 1);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_fn_ = fn;
    job_ctx_ = ctx;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  t_active_pool = this;
  try {
    fn(ctx, 0, num_threads_);  // the caller is worker 0
  } catch (...) {
    record_error();
  }
  t_active_pool = nullptr;
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_fn_ = nullptr;
  job_ctx_ = nullptr;
  if (first_error_) {
    // The ctx (and the caller's captured state) outlived every worker, so
    // rethrowing after the join is safe; the pool is idle and reusable.
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop(std::size_t tid) {
  // Stashes a name for the profiler's per-thread logs/trace rows (no log is
  // registered until the thread actually records a span).
  char name[32];
  std::snprintf(name, sizeof(name), "pool-worker-%zu", tid);
  profiler_set_thread_name(name);
  std::uint64_t seen_generation = 0;
  for (;;) {
    JobFn job = nullptr;
    void* ctx = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen_generation; });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_fn_;
      ctx = job_ctx_;
    }
    t_active_pool = this;
    try {
      job(ctx, tid, num_threads_);
    } catch (...) {
      record_error();
    }
    t_active_pool = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(static_cast<std::size_t>(config_long("LOWINO_NUM_THREADS", 0)));
  return pool;
}

}  // namespace lowino

// Fork-join thread pool with static work assignment.
//
// The paper (Section 4.4) executes each convolution stage as a single
// fork-join region where every thread receives a pre-computed contiguous slice
// of the work. This pool implements exactly that model: `run(fn)` invokes
// `fn(tid, num_workers)` on every worker (the calling thread doubles as worker
// 0) and returns when all have finished. There is no work stealing — static
// scheduling is a deliberate design decision of the paper (equal work, equal
// memory access pattern per thread, no runtime scheduling overhead).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "parallel/partition.h"

namespace lowino {

class ThreadPool {
 public:
  /// Creates a pool that executes jobs on `num_threads` workers total
  /// (including the caller). `num_threads == 0` means hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Runs `fn(tid, num_threads)` on every worker; blocks until all complete.
  ///
  /// This templated overload dispatches through a thin (function pointer,
  /// context) vtable, so invoking it with a lambda never heap-allocates —
  /// important for the hot stage drivers, which open 3+ parallel regions per
  /// convolution (and the fused path one per layer). The callable must stay
  /// alive until run() returns, which it does: run() is fully synchronous.
  ///
  /// Error handling contract: an exception thrown by the callable on any
  /// worker is captured, the fork-join region still completes on every other
  /// worker, and the *first* captured exception is rethrown on the calling
  /// thread. The pool remains fully usable afterwards (no worker dies, no
  /// region deadlocks). Work already performed by other workers is not rolled
  /// back — callers that throw mid-region own their partial state.
  ///
  /// Re-entrancy contract: calling run() (or parallel_for()) on a pool from
  /// inside one of its own tasks does not deadlock; the nested region
  /// executes inline on the calling worker as a serial single-worker region
  /// (fn(0, 1)). Nested parallelism is deliberately not expanded — the
  /// engine's static-scheduling model has exactly one live region per pool.
  template <typename Fn>
  void run(Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    dispatch(
        [](void* ctx, std::size_t tid, std::size_t nw) { (*static_cast<F*>(ctx))(tid, nw); },
        const_cast<void*>(static_cast<const void*>(std::addressof(fn))));
  }

  /// Overload for callers that already hold a std::function (no extra wrap).
  void run(const std::function<void(std::size_t, std::size_t)>& fn);

  /// Statically partitions [0, n) and runs `fn(begin, end)` per worker.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    run([&](std::size_t tid, std::size_t nw) {
      const Range r = static_partition(n, nw, tid);
      if (!r.empty()) fn(r.begin, r.end);
    });
  }

  /// A process-wide default pool (size from LOWINO_NUM_THREADS or hardware).
  static ThreadPool& global();

 private:
  /// Type-erased job: `fn(ctx, tid, num_threads)`.
  using JobFn = void (*)(void*, std::size_t, std::size_t);

  void dispatch(JobFn fn, void* ctx);
  void worker_loop(std::size_t tid);
  void record_error() noexcept;

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  JobFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  std::exception_ptr first_error_;  ///< first exception of the current region
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace lowino

// Fork-join thread pool with static work assignment.
//
// The paper (Section 4.4) executes each convolution stage as a single
// fork-join region where every thread receives a pre-computed contiguous slice
// of the work. This pool implements exactly that model: `run(fn)` invokes
// `fn(tid, num_workers)` on every worker (the calling thread doubles as worker
// 0) and returns when all have finished. There is no work stealing — static
// scheduling is a deliberate design decision of the paper (equal work, equal
// memory access pattern per thread, no runtime scheduling overhead).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "parallel/partition.h"

namespace lowino {

class ThreadPool {
 public:
  /// Creates a pool that executes jobs on `num_threads` workers total
  /// (including the caller). `num_threads == 0` means hardware concurrency.
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return num_threads_; }

  /// Runs `fn(tid, num_threads)` on every worker; blocks until all complete.
  void run(const std::function<void(std::size_t, std::size_t)>& fn);

  /// Statically partitions [0, n) and runs `fn(begin, end)` per worker.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    run([&](std::size_t tid, std::size_t nw) {
      const Range r = static_partition(n, nw, tid);
      if (!r.empty()) fn(r.begin, r.end);
    });
  }

  /// A process-wide default pool (size from LOWINO_NUM_THREADS or hardware).
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t tid);

  std::size_t num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace lowino

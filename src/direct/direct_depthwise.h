// INT8 depthwise convolution: per-channel direct accumulation for grouped
// layers with groups == C (one input channel per filter, channel multiplier
// K/C >= 1). Opens the MobileNet family, which no GEMM-shaped engine covers —
// a depthwise layer has no channel reduction to feed a GEMM, so the implicit
// im2col formulation degenerates to a patch of r*r values per output channel.
//
// Quantization scheme matches the spatial-domain engines: one KL-calibrated
// per-tensor input scale (+128 uint8 shift), exact per-output-channel weight
// scales, and the shared dequant/PostOps/requant tail, so the envelope math
// of testing/envelope.h applies with patch = (C/groups) * r * r = r * r.
// Accumulation is int32 over (q - 128) * w_q with out-of-bounds taps skipped
// (padding is quantized zero, contributing nothing).
//
// Mirrors the Euler `elx_conv_direct_depthwise_lp` specialization
// (SNIPPETS.md). Supports any kernel, stride and asymmetric padding.
#pragma once

#include <cstdint>
#include <span>

#include "common/aligned_buffer.h"
#include "quant/histogram.h"
#include "quant/quantize.h"
#include "tensor/conv_desc.h"
#include "tensor/post_ops.h"

namespace lowino {

class ThreadPool;

/// Same public surface as Int8DirectConv (the conformance fuzzer drives both
/// uniformly). The constructor throws std::invalid_argument — before any
/// workspace allocation — unless desc.is_depthwise() (groups == C > 1,
/// K a multiple of C).
class Int8DepthwiseConv {
 public:
  explicit Int8DepthwiseConv(const ConvDesc& desc);

  void calibrate(std::span<const float> input_nchw);
  void finalize_calibration();
  /// Bypass: set the spatial-domain threshold directly.
  void set_input_threshold(float tau);

  /// Weights in the grouped layout: K x (C/groups = 1) x r x r.
  void set_filters(std::span<const float> weights, std::span<const float> bias = {});

  void execute_nchw(std::span<const float> input, std::span<float> output,
                    ThreadPool* pool = nullptr, const PostOps& post = {});

  /// Serving u8 hand-off — identical contract to Int8DirectConv.
  void set_input_u8(const QuantParams& qp);
  void set_output_u8(const QuantParams& qp);
  bool input_is_u8() const { return in_u8_; }
  bool output_is_u8() const { return out_u8_; }

  void execute_typed(const void* input, void* output, ThreadPool* pool = nullptr,
                     const PostOps& post = {});

  const ConvDesc& desc() const { return desc_; }
  float input_scale() const { return input_params_.scale; }

 private:
  ConvDesc desc_;
  std::size_t taps_ = 0;  ///< r * r, the per-channel patch

  Histogram input_hist_;
  QuantParams input_params_;
  bool input_scales_set_ = false;

  AlignedBuffer<std::int8_t> w_q_;    ///< [K][r*r] quantized filters
  AlignedBuffer<float> w_dequant_;    ///< per-channel 1/(scale_in*scale_w)
  AlignedBuffer<float> bias_;
  bool filters_set_ = false;
  AlignedBuffer<float> weights_fp32_;  ///< kept until scales are known

  AlignedBuffer<std::uint8_t> in_q_;  ///< one image's quantized activations

  bool in_u8_ = false;
  bool out_u8_ = false;
  QuantParams out_u8_qp_;

  void pack_weights();
  void execute_impl(const void* input, void* output, bool in_u8, bool out_u8,
                    ThreadPool* pool, const PostOps& post);
};

}  // namespace lowino

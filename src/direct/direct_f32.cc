#include "direct/direct_f32.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "gemm/fp32_gemm.h"
#include "parallel/thread_pool.h"

namespace lowino {

void direct_conv_f32_reference(const ConvDesc& desc, std::span<const float> input,
                               std::span<const float> weights, std::span<const float> bias,
                               std::span<float> output, bool relu, ThreadPool* pool) {
  const std::size_t B = desc.batch, C = desc.in_channels, K = desc.out_channels;
  const std::size_t H = desc.height, W = desc.width, r = desc.kernel;
  const std::size_t pad = desc.height_pad(), pad_w = desc.width_pad();
  const std::size_t OH = desc.out_height(), OW = desc.out_width();
  assert(input.size() >= B * C * H * W);
  assert(weights.size() >= K * C * r * r);
  assert(output.size() >= B * K * OH * OW);

  auto body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t job = begin; job < end; ++job) {
      const std::size_t b = job / K;
      const std::size_t k = job % K;
      for (std::size_t oh = 0; oh < OH; ++oh) {
        for (std::size_t ow = 0; ow < OW; ++ow) {
          float acc = bias.empty() ? 0.0f : bias[k];
          for (std::size_t c = 0; c < C; ++c) {
            for (std::size_t i = 0; i < r; ++i) {
              const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh * desc.stride + i) -
                                        static_cast<std::ptrdiff_t>(pad);
              if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H)) continue;
              for (std::size_t j = 0; j < r; ++j) {
                const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(ow * desc.stride + j) -
                                          static_cast<std::ptrdiff_t>(pad_w);
                if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(W)) continue;
                acc += input[((b * C + c) * H + ih) * W + iw] *
                       weights[((k * C + c) * r + i) * r + j];
              }
            }
          }
          output[((b * K + k) * OH + oh) * OW + ow] = relu ? std::max(0.0f, acc) : acc;
        }
      }
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(B * K, body);
  } else {
    body(0, B * K);
  }
}

void im2col_f32(const ConvDesc& desc, std::span<const float> input, std::size_t b,
                float* col) {
  const std::size_t C = desc.in_channels, H = desc.height, W = desc.width;
  const std::size_t r = desc.kernel, pad = desc.height_pad(), pad_w = desc.width_pad();
  const std::size_t OH = desc.out_height(), OW = desc.out_width();
  const std::size_t patch = C * r * r;
  for (std::size_t oh = 0; oh < OH; ++oh) {
    for (std::size_t ow = 0; ow < OW; ++ow) {
      float* row = col + (oh * OW + ow) * patch;
      std::size_t idx = 0;
      for (std::size_t c = 0; c < C; ++c) {
        for (std::size_t i = 0; i < r; ++i) {
          const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh * desc.stride + i) -
                                    static_cast<std::ptrdiff_t>(pad);
          for (std::size_t j = 0; j < r; ++j) {
            const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(ow * desc.stride + j) -
                                      static_cast<std::ptrdiff_t>(pad_w);
            const bool oob = ih < 0 || ih >= static_cast<std::ptrdiff_t>(H) || iw < 0 ||
                             iw >= static_cast<std::ptrdiff_t>(W);
            row[idx++] = oob ? 0.0f : input[((b * C + c) * H + ih) * W + iw];
          }
        }
      }
    }
  }
}

Im2colConvF32::Im2colConvF32(const ConvDesc& desc) : desc_(desc) {
  desc.validate();
  desc.require_ungrouped("Im2colConvF32");
  patch_ = desc_.in_channels * desc_.kernel * desc_.kernel;
  k_pad_ = round_up(desc_.out_channels, 16);
}

void Im2colConvF32::set_filters(std::span<const float> weights, std::span<const float> bias) {
  assert(weights.size() >= desc_.out_channels * patch_);
  // B operand of the GEMM: patch x K (transposed weights), K padded to 16.
  wT_.reset(patch_ * k_pad_);
  wT_.fill_zero();
  for (std::size_t k = 0; k < desc_.out_channels; ++k) {
    for (std::size_t p = 0; p < patch_; ++p) {
      wT_[p * k_pad_ + k] = weights[k * patch_ + p];
    }
  }
  bias_.reset(desc_.out_channels);
  bias_.fill_zero();
  if (!bias.empty()) std::memcpy(bias_.data(), bias.data(), desc_.out_channels * sizeof(float));
}

void Im2colConvF32::execute_nchw(std::span<const float> input, std::span<float> output,
                                 ThreadPool* pool, const PostOps& post) {
  const std::size_t OH = desc_.out_height(), OW = desc_.out_width();
  const std::size_t rows = OH * OW;
  const std::size_t K = desc_.out_channels;
  col_.ensure(rows * patch_);
  out_scratch_.ensure(rows * k_pad_);
  for (std::size_t b = 0; b < desc_.batch; ++b) {
    im2col_f32(desc_, input, b, col_.data());
    fp32_gemm(col_.data(), patch_, wT_.data(), k_pad_, out_scratch_.data(), k_pad_, rows,
              patch_, k_pad_, pool);
    // Transpose rows x K back to K x OH x OW with the bias/+sum/ReLU epilogue.
    for (std::size_t k = 0; k < K; ++k) {
      float* dst = output.data() + ((b * K + k) * rows);
      const float* res = post.sum != nullptr ? post.sum + (b * K + k) * rows : nullptr;
      const float bk = bias_[k];
      for (std::size_t p = 0; p < rows; ++p) {
        float v = out_scratch_[p * k_pad_ + k] + bk;
        if (res != nullptr) v += res[p];
        dst[p] = post.relu ? std::max(0.0f, v) : v;
      }
    }
  }
}

}  // namespace lowino

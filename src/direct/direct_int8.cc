#include "direct/direct_int8.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/saturate.h"
#include "quant/calibration.h"
#include "parallel/thread_pool.h"

namespace lowino {
namespace {

/// im2col with fused spatial quantization and the +128 shift: every patch
/// value is saturate(round(x * scale)) + 128 as uint8; zero padding becomes
/// exactly 128 (= quantized zero), which the compensation row accounts for.
void im2col_quantized(const ConvDesc& desc, std::span<const float> input, std::size_t b,
                      float scale, std::size_t patch_pad, std::uint8_t* col) {
  const std::size_t C = desc.in_channels, H = desc.height, W = desc.width;
  const std::size_t r = desc.kernel, pad = desc.height_pad(), pad_w = desc.width_pad();
  const std::size_t OH = desc.out_height(), OW = desc.out_width();
  for (std::size_t oh = 0; oh < OH; ++oh) {
    for (std::size_t ow = 0; ow < OW; ++ow) {
      std::uint8_t* row = col + (oh * OW + ow) * patch_pad;
      std::size_t idx = 0;
      for (std::size_t c = 0; c < C; ++c) {
        for (std::size_t i = 0; i < r; ++i) {
          const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh * desc.stride + i) -
                                    static_cast<std::ptrdiff_t>(pad);
          for (std::size_t j = 0; j < r; ++j) {
            const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(ow * desc.stride + j) -
                                      static_cast<std::ptrdiff_t>(pad_w);
            const bool oob = ih < 0 || ih >= static_cast<std::ptrdiff_t>(H) || iw < 0 ||
                             iw >= static_cast<std::ptrdiff_t>(W);
            if (oob) {
              row[idx++] = 128;
            } else {
              const float v = input[((b * C + c) * H + ih) * W + iw];
              const std::int32_t q = round_nearest_even(v * scale) + 128;
              row[idx++] = static_cast<std::uint8_t>(std::clamp(q, 0, 255));
            }
          }
        }
      }
      // Padding channels: quantized zero, annihilated by the zero filter rows.
      for (; idx < patch_pad; ++idx) row[idx] = 128;
    }
  }
}

/// u8 hand-off im2col: the input bytes already carry the engine's quantization
/// (set_input_u8 adopted the producer's scale), so patches are a plain byte
/// gather; padding stays 128 = quantized zero, identical to the FP32 path.
void im2col_u8(const ConvDesc& desc, const std::uint8_t* input, std::size_t b,
               std::size_t patch_pad, std::uint8_t* col) {
  const std::size_t C = desc.in_channels, H = desc.height, W = desc.width;
  const std::size_t r = desc.kernel, pad = desc.height_pad(), pad_w = desc.width_pad();
  const std::size_t OH = desc.out_height(), OW = desc.out_width();
  for (std::size_t oh = 0; oh < OH; ++oh) {
    for (std::size_t ow = 0; ow < OW; ++ow) {
      std::uint8_t* row = col + (oh * OW + ow) * patch_pad;
      std::size_t idx = 0;
      for (std::size_t c = 0; c < C; ++c) {
        for (std::size_t i = 0; i < r; ++i) {
          const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh * desc.stride + i) -
                                    static_cast<std::ptrdiff_t>(pad);
          for (std::size_t j = 0; j < r; ++j) {
            const std::ptrdiff_t iw = static_cast<std::ptrdiff_t>(ow * desc.stride + j) -
                                      static_cast<std::ptrdiff_t>(pad_w);
            const bool oob = ih < 0 || ih >= static_cast<std::ptrdiff_t>(H) || iw < 0 ||
                             iw >= static_cast<std::ptrdiff_t>(W);
            row[idx++] = oob ? std::uint8_t{128} : input[((b * C + c) * H + ih) * W + iw];
          }
        }
      }
      for (; idx < patch_pad; ++idx) row[idx] = 128;
    }
  }
}

}  // namespace

Int8DirectConv::Int8DirectConv(const ConvDesc& desc) : desc_(desc) {
  desc.validate();
  desc.require_ungrouped("Int8DirectConv");
  patch_ = desc_.in_channels * desc_.kernel * desc_.kernel;
  patch_pad_ = round_up(patch_, 4);
  k_pad_ = round_up(desc_.out_channels, 16);
}

void Int8DirectConv::calibrate(std::span<const float> input_nchw) {
  input_hist_.collect(input_nchw);
}

void Int8DirectConv::finalize_calibration() {
  input_params_ = calibrate_params(input_hist_);
  input_scales_set_ = true;
  if (filters_set_) pack_weights();
}

void Int8DirectConv::set_input_threshold(float tau) {
  input_params_ = QuantParams::from_threshold(tau);
  input_scales_set_ = true;
  if (filters_set_) pack_weights();
}

void Int8DirectConv::set_filters(std::span<const float> weights, std::span<const float> bias) {
  assert(weights.size() >= desc_.out_channels * patch_);
  weights_fp32_.reset(desc_.out_channels * patch_);
  std::memcpy(weights_fp32_.data(), weights.data(),
              desc_.out_channels * patch_ * sizeof(float));
  bias_.reset(desc_.out_channels);
  bias_.fill_zero();
  if (!bias.empty()) std::memcpy(bias_.data(), bias.data(), desc_.out_channels * sizeof(float));
  filters_set_ = true;
  if (input_scales_set_) pack_weights();
}

void Int8DirectConv::pack_weights() {
  const std::size_t K = desc_.out_channels;
  // Per-channel exact weight scales.
  std::vector<float> w_scale(K);
  for (std::size_t k = 0; k < K; ++k) {
    float amax = 0.0f;
    for (std::size_t p = 0; p < patch_; ++p) {
      amax = std::max(amax, std::abs(weights_fp32_[k * patch_ + p]));
    }
    w_scale[k] = QuantParams::from_threshold(amax).scale;
  }
  // Quantize to the row-major (patch_pad x k_pad) B matrix, then pack.
  std::vector<std::int8_t> w_q(patch_pad_ * k_pad_, 0);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t p = 0; p < patch_; ++p) {
      w_q[p * k_pad_ + k] = saturate_cast_i8(weights_fp32_[k * patch_ + p] * w_scale[k]);
    }
  }
  w_packed_.reset((patch_pad_ / 4) * k_pad_ * 4);
  pack_b_vpdpbusd(w_q.data(), patch_pad_, k_pad_, w_packed_.data());
  comp_.reset(k_pad_);
  compute_compensation(w_q.data(), patch_pad_, k_pad_, comp_.data());
  w_dequant_.reset(K);
  for (std::size_t k = 0; k < K; ++k) {
    w_dequant_[k] = 1.0f / (input_params_.scale * w_scale[k]);
  }
}

void Int8DirectConv::set_input_u8(const QuantParams& qp) {
  input_params_ = qp;
  input_scales_set_ = true;
  in_u8_ = true;
  if (filters_set_) pack_weights();  // w_dequant_ depends on the input scale
}

void Int8DirectConv::set_output_u8(const QuantParams& qp) {
  out_u8_ = true;
  out_u8_qp_ = qp;
}

void Int8DirectConv::execute_nchw(std::span<const float> input, std::span<float> output,
                                  ThreadPool* pool, const PostOps& post) {
  // The span API is FP32-by-contract regardless of u8 hand-off configuration.
  execute_impl(input.data(), output.data(), false, false, pool, post);
}

void Int8DirectConv::execute_typed(const void* input, void* output, ThreadPool* pool,
                                   const PostOps& post) {
  execute_impl(input, output, in_u8_, out_u8_, pool, post);
}

void Int8DirectConv::execute_impl(const void* input, void* output, bool in_u8, bool out_u8,
                                  ThreadPool* pool, const PostOps& post) {
  assert(filters_set_ && input_scales_set_);
  const std::size_t OH = desc_.out_height(), OW = desc_.out_width();
  const std::size_t rows = OH * OW;
  const std::size_t K = desc_.out_channels;
  const std::size_t in_elems = desc_.batch * desc_.in_channels * desc_.height * desc_.width;
  col_.ensure(rows * patch_pad_);
  acc_.ensure(rows * k_pad_);
  const float requant = out_u8_qp_.scale;
  for (std::size_t b = 0; b < desc_.batch; ++b) {
    if (in_u8) {
      im2col_u8(desc_, static_cast<const std::uint8_t*>(input), b, patch_pad_, col_.data());
    } else {
      im2col_quantized(desc_,
                       std::span<const float>(static_cast<const float*>(input), in_elems), b,
                       input_params_.scale, patch_pad_, col_.data());
    }
    int8_gemm_packed(col_.data(), patch_pad_, w_packed_.data(), comp_.data(), acc_.data(),
                     k_pad_, rows, patch_pad_, k_pad_, blocking_, pool);
    for (std::size_t k = 0; k < K; ++k) {
      const std::size_t plane = (b * K + k) * rows;
      const float* res = post.sum != nullptr ? post.sum + plane : nullptr;
      const std::uint8_t* res8 = post.sum_u8 != nullptr ? post.sum_u8 + plane : nullptr;
      const float res8_inv = post.sum_u8_inv_scale;
      const float dq = w_dequant_[k];
      const float bk = bias_[k];
      if (out_u8) {
        std::uint8_t* dst = static_cast<std::uint8_t*>(output) + plane;
        for (std::size_t p = 0; p < rows; ++p) {
          float v = static_cast<float>(acc_[p * k_pad_ + k]) * dq + bk;
          if (res != nullptr) v += res[p];
          if (res8 != nullptr) {
            v += static_cast<float>(static_cast<std::int32_t>(res8[p]) - 128) * res8_inv;
          }
          if (post.relu) v = std::max(0.0f, v);
          // Requant stage: same rounding contract as quantize_u8_shift128.
          const std::int32_t q = round_nearest_even(v * requant) + 128;
          dst[p] = static_cast<std::uint8_t>(std::clamp(q, 0, 255));
        }
      } else {
        float* dst = static_cast<float*>(output) + plane;
        for (std::size_t p = 0; p < rows; ++p) {
          float v = static_cast<float>(acc_[p * k_pad_ + k]) * dq + bk;
          if (res != nullptr) v += res[p];
          if (res8 != nullptr) {
            v += static_cast<float>(static_cast<std::int32_t>(res8[p]) - 128) * res8_inv;
          }
          dst[p] = post.relu ? std::max(0.0f, v) : v;
        }
      }
    }
  }
}

}  // namespace lowino

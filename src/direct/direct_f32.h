// FP32 direct convolutions.
//
// * `direct_conv_f32_reference` — straightforward NCHW loops; the numerical
//   oracle every other engine in the repository is tested against.
// * `Im2colConvF32` — im2col + AVX-512 GEMM; the "best FP32 implementation"
//   baseline of Section 5.1 and the workhorse of the NN training runtime.
#pragma once

#include <cstddef>
#include <span>

#include "common/aligned_buffer.h"
#include "tensor/conv_desc.h"
#include "tensor/post_ops.h"

namespace lowino {

class ThreadPool;

/// output[b][k][oh][ow] = bias[k] + sum_{c,i,j} input[b][c][oh+i-pad][ow+j-pad]
///                        * weights[k][c][i][j]; optional fused ReLU.
void direct_conv_f32_reference(const ConvDesc& desc, std::span<const float> input,
                               std::span<const float> weights, std::span<const float> bias,
                               std::span<float> output, bool relu = false,
                               ThreadPool* pool = nullptr);

/// im2col + FP32 GEMM convolution (NCHW in/out).
class Im2colConvF32 {
 public:
  explicit Im2colConvF32(const ConvDesc& desc);

  /// `weights`: K x C x r x r row-major; `bias` optional (length K).
  void set_filters(std::span<const float> weights, std::span<const float> bias = {});
  /// `post` fuses the residual +sum / ReLU epilogue into the bias store loop
  /// (see tensor/post_ops.h).
  void execute_nchw(std::span<const float> input, std::span<float> output,
                    ThreadPool* pool = nullptr, const PostOps& post = {});

  const ConvDesc& desc() const { return desc_; }

 private:
  ConvDesc desc_;
  std::size_t patch_ = 0;  ///< C * r * r
  AlignedBuffer<float> wT_;   ///< patch x K (GEMM B operand), K padded to 16
  std::size_t k_pad_ = 0;
  AlignedBuffer<float> bias_;
  AlignedBuffer<float> col_;  ///< im2col buffer (out_h*out_w) x patch
  AlignedBuffer<float> out_scratch_;  ///< (out_h*out_w) x k_pad
};

/// Fills `col` ((out_h * out_w) x (C * r * r)) with the im2col expansion of
/// image `b` of `input` (NCHW), zero-padding the halo.
void im2col_f32(const ConvDesc& desc, std::span<const float> input, std::size_t b,
                float* col);

}  // namespace lowino

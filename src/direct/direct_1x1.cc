#include "direct/direct_1x1.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/saturate.h"
#include "parallel/thread_pool.h"
#include "quant/calibration.h"

namespace lowino {
namespace {

/// Builds the (OH*OW) x c_pad A matrix for one image: quantize(+128) and
/// transpose the C x H x W plane. Channel-major walk keeps the input reads
/// sequential; the strided writes stay in cache (one row per spatial pixel).
/// pad = 0 is guaranteed for r = 1, so there is no out-of-bounds branch.
void gather_quantized(const ConvDesc& desc, const float* input, std::size_t b,
                      float scale, std::size_t c_pad, std::uint8_t* a) {
  const std::size_t C = desc.in_channels, H = desc.height, W = desc.width;
  const std::size_t OH = desc.out_height(), OW = desc.out_width(), s = desc.stride;
  for (std::size_t c = 0; c < C; ++c) {
    const float* plane = input + ((b * C + c) * H) * W;
    std::uint8_t* dst = a + c;
    for (std::size_t oh = 0; oh < OH; ++oh) {
      const float* src = plane + (oh * s) * W;
      for (std::size_t ow = 0; ow < OW; ++ow) {
        const std::int32_t q = round_nearest_even(src[ow * s] * scale) + 128;
        dst[(oh * OW + ow) * c_pad] = static_cast<std::uint8_t>(std::clamp(q, 0, 255));
      }
    }
  }
  // Padding channels: quantized zero, annihilated by the zero filter rows.
  std::uint8_t* tail = a;
  for (std::size_t p = 0; p < OH * OW; ++p, tail += c_pad) {
    for (std::size_t c = C; c < c_pad; ++c) tail[c] = 128;
  }
}

/// u8 hand-off gather: the bytes already carry the adopted quantization, so
/// this is a pure (strided) transpose.
void gather_u8(const ConvDesc& desc, const std::uint8_t* input, std::size_t b,
               std::size_t c_pad, std::uint8_t* a) {
  const std::size_t C = desc.in_channels, H = desc.height, W = desc.width;
  const std::size_t OH = desc.out_height(), OW = desc.out_width(), s = desc.stride;
  for (std::size_t c = 0; c < C; ++c) {
    const std::uint8_t* plane = input + ((b * C + c) * H) * W;
    std::uint8_t* dst = a + c;
    for (std::size_t oh = 0; oh < OH; ++oh) {
      const std::uint8_t* src = plane + (oh * s) * W;
      for (std::size_t ow = 0; ow < OW; ++ow) {
        dst[(oh * OW + ow) * c_pad] = src[ow * s];
      }
    }
  }
  std::uint8_t* tail = a;
  for (std::size_t p = 0; p < OH * OW; ++p, tail += c_pad) {
    for (std::size_t c = C; c < c_pad; ++c) tail[c] = 128;
  }
}

}  // namespace

Int8Conv1x1Conv::Int8Conv1x1Conv(const ConvDesc& desc) : desc_(desc) {
  desc.validate();
  desc.require_ungrouped("Int8Conv1x1Conv");
  if (desc.kernel != 1) {
    throw std::invalid_argument("Int8Conv1x1Conv: kernel must be 1 [" + desc.to_string() +
                                "]");
  }
  c_pad_ = round_up(desc_.in_channels, 4);
  k_pad_ = round_up(desc_.out_channels, 16);
}

void Int8Conv1x1Conv::calibrate(std::span<const float> input_nchw) {
  input_hist_.collect(input_nchw);
}

void Int8Conv1x1Conv::finalize_calibration() {
  input_params_ = calibrate_params(input_hist_);
  input_scales_set_ = true;
  if (filters_set_) pack_weights();
}

void Int8Conv1x1Conv::set_input_threshold(float tau) {
  input_params_ = QuantParams::from_threshold(tau);
  input_scales_set_ = true;
  if (filters_set_) pack_weights();
}

void Int8Conv1x1Conv::set_filters(std::span<const float> weights,
                                  std::span<const float> bias) {
  const std::size_t C = desc_.in_channels, K = desc_.out_channels;
  assert(weights.size() >= K * C);
  weights_fp32_.reset(K * C);
  std::memcpy(weights_fp32_.data(), weights.data(), K * C * sizeof(float));
  bias_.reset(K);
  bias_.fill_zero();
  if (!bias.empty()) std::memcpy(bias_.data(), bias.data(), K * sizeof(float));
  filters_set_ = true;
  if (input_scales_set_) pack_weights();
}

void Int8Conv1x1Conv::pack_weights() {
  const std::size_t C = desc_.in_channels, K = desc_.out_channels;
  // Per-channel exact weight scales (patch = C for r = 1).
  std::vector<float> w_scale(K);
  for (std::size_t k = 0; k < K; ++k) {
    float amax = 0.0f;
    for (std::size_t c = 0; c < C; ++c) {
      amax = std::max(amax, std::abs(weights_fp32_[k * C + c]));
    }
    w_scale[k] = QuantParams::from_threshold(amax).scale;
  }
  std::vector<std::int8_t> w_q(c_pad_ * k_pad_, 0);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t c = 0; c < C; ++c) {
      w_q[c * k_pad_ + k] = saturate_cast_i8(weights_fp32_[k * C + c] * w_scale[k]);
    }
  }
  w_packed_.reset((c_pad_ / 4) * k_pad_ * 4);
  pack_b_vpdpbusd(w_q.data(), c_pad_, k_pad_, w_packed_.data());
  comp_.reset(k_pad_);
  compute_compensation(w_q.data(), c_pad_, k_pad_, comp_.data());
  w_dequant_.reset(K);
  for (std::size_t k = 0; k < K; ++k) {
    w_dequant_[k] = 1.0f / (input_params_.scale * w_scale[k]);
  }
}

void Int8Conv1x1Conv::set_input_u8(const QuantParams& qp) {
  input_params_ = qp;
  input_scales_set_ = true;
  in_u8_ = true;
  if (filters_set_) pack_weights();  // w_dequant_ depends on the input scale
}

void Int8Conv1x1Conv::set_output_u8(const QuantParams& qp) {
  out_u8_ = true;
  out_u8_qp_ = qp;
}

void Int8Conv1x1Conv::execute_nchw(std::span<const float> input, std::span<float> output,
                                   ThreadPool* pool, const PostOps& post) {
  // The span API is FP32-by-contract regardless of u8 hand-off configuration.
  execute_impl(input.data(), output.data(), false, false, pool, post);
}

void Int8Conv1x1Conv::execute_typed(const void* input, void* output, ThreadPool* pool,
                                    const PostOps& post) {
  execute_impl(input, output, in_u8_, out_u8_, pool, post);
}

void Int8Conv1x1Conv::execute_impl(const void* input, void* output, bool in_u8,
                                   bool out_u8, ThreadPool* pool, const PostOps& post) {
  assert(filters_set_ && input_scales_set_);
  const std::size_t OH = desc_.out_height(), OW = desc_.out_width();
  const std::size_t rows = OH * OW;
  const std::size_t K = desc_.out_channels;
  a_.ensure(rows * c_pad_);
  acc_.ensure(rows * k_pad_);
  const float requant = out_u8_qp_.scale;
  for (std::size_t b = 0; b < desc_.batch; ++b) {
    if (in_u8) {
      gather_u8(desc_, static_cast<const std::uint8_t*>(input), b, c_pad_, a_.data());
    } else {
      gather_quantized(desc_, static_cast<const float*>(input), b, input_params_.scale,
                       c_pad_, a_.data());
    }
    int8_gemm_packed(a_.data(), c_pad_, w_packed_.data(), comp_.data(), acc_.data(),
                     k_pad_, rows, c_pad_, k_pad_, blocking_, pool);
    for (std::size_t k = 0; k < K; ++k) {
      const std::size_t plane = (b * K + k) * rows;
      const float* res = post.sum != nullptr ? post.sum + plane : nullptr;
      const std::uint8_t* res8 = post.sum_u8 != nullptr ? post.sum_u8 + plane : nullptr;
      const float res8_inv = post.sum_u8_inv_scale;
      const float dq = w_dequant_[k];
      const float bk = bias_[k];
      if (out_u8) {
        std::uint8_t* dst = static_cast<std::uint8_t*>(output) + plane;
        for (std::size_t p = 0; p < rows; ++p) {
          float v = static_cast<float>(acc_[p * k_pad_ + k]) * dq + bk;
          if (res != nullptr) v += res[p];
          if (res8 != nullptr) {
            v += static_cast<float>(static_cast<std::int32_t>(res8[p]) - 128) * res8_inv;
          }
          if (post.relu) v = std::max(0.0f, v);
          // Requant stage: same rounding contract as quantize_u8_shift128.
          const std::int32_t q = round_nearest_even(v * requant) + 128;
          dst[p] = static_cast<std::uint8_t>(std::clamp(q, 0, 255));
        }
      } else {
        float* dst = static_cast<float*>(output) + plane;
        for (std::size_t p = 0; p < rows; ++p) {
          float v = static_cast<float>(acc_[p * k_pad_ + k]) * dq + bk;
          if (res != nullptr) v += res[p];
          if (res8 != nullptr) {
            v += static_cast<float>(static_cast<std::int32_t>(res8[p]) - 128) * res8_inv;
          }
          dst[p] = post.relu ? std::max(0.0f, v) : v;
        }
      }
    }
  }
}

}  // namespace lowino

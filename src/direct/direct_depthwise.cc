#include "direct/direct_depthwise.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "common/saturate.h"
#include "parallel/thread_pool.h"
#include "quant/calibration.h"

namespace lowino {

Int8DepthwiseConv::Int8DepthwiseConv(const ConvDesc& desc) : desc_(desc) {
  desc.validate();
  if (!desc.is_depthwise()) {
    throw std::invalid_argument("Int8DepthwiseConv: depthwise only (groups == C > 1) [" +
                                desc.to_string() + "]");
  }
  taps_ = desc_.kernel * desc_.kernel;
}

void Int8DepthwiseConv::calibrate(std::span<const float> input_nchw) {
  input_hist_.collect(input_nchw);
}

void Int8DepthwiseConv::finalize_calibration() {
  input_params_ = calibrate_params(input_hist_);
  input_scales_set_ = true;
  if (filters_set_) pack_weights();
}

void Int8DepthwiseConv::set_input_threshold(float tau) {
  input_params_ = QuantParams::from_threshold(tau);
  input_scales_set_ = true;
  if (filters_set_) pack_weights();
}

void Int8DepthwiseConv::set_filters(std::span<const float> weights,
                                    std::span<const float> bias) {
  const std::size_t K = desc_.out_channels;
  assert(weights.size() >= K * taps_);
  weights_fp32_.reset(K * taps_);
  std::memcpy(weights_fp32_.data(), weights.data(), K * taps_ * sizeof(float));
  bias_.reset(K);
  bias_.fill_zero();
  if (!bias.empty()) std::memcpy(bias_.data(), bias.data(), K * sizeof(float));
  filters_set_ = true;
  if (input_scales_set_) pack_weights();
}

void Int8DepthwiseConv::pack_weights() {
  const std::size_t K = desc_.out_channels;
  w_q_.reset(K * taps_);
  w_dequant_.reset(K);
  for (std::size_t k = 0; k < K; ++k) {
    float amax = 0.0f;
    for (std::size_t t = 0; t < taps_; ++t) {
      amax = std::max(amax, std::abs(weights_fp32_[k * taps_ + t]));
    }
    const float w_scale = QuantParams::from_threshold(amax).scale;
    for (std::size_t t = 0; t < taps_; ++t) {
      w_q_[k * taps_ + t] = saturate_cast_i8(weights_fp32_[k * taps_ + t] * w_scale);
    }
    w_dequant_[k] = 1.0f / (input_params_.scale * w_scale);
  }
}

void Int8DepthwiseConv::set_input_u8(const QuantParams& qp) {
  input_params_ = qp;
  input_scales_set_ = true;
  in_u8_ = true;
  if (filters_set_) pack_weights();  // w_dequant_ depends on the input scale
}

void Int8DepthwiseConv::set_output_u8(const QuantParams& qp) {
  out_u8_ = true;
  out_u8_qp_ = qp;
}

void Int8DepthwiseConv::execute_nchw(std::span<const float> input, std::span<float> output,
                                     ThreadPool* pool, const PostOps& post) {
  // The span API is FP32-by-contract regardless of u8 hand-off configuration.
  execute_impl(input.data(), output.data(), false, false, pool, post);
}

void Int8DepthwiseConv::execute_typed(const void* input, void* output, ThreadPool* pool,
                                      const PostOps& post) {
  execute_impl(input, output, in_u8_, out_u8_, pool, post);
}

void Int8DepthwiseConv::execute_impl(const void* input, void* output, bool in_u8,
                                     bool out_u8, ThreadPool* pool, const PostOps& post) {
  assert(filters_set_ && input_scales_set_);
  const std::size_t C = desc_.in_channels, H = desc_.height, W = desc_.width;
  const std::size_t K = desc_.out_channels, r = desc_.kernel, s = desc_.stride;
  const std::size_t pad = desc_.height_pad(), pad_w = desc_.width_pad();
  const std::size_t OH = desc_.out_height(), OW = desc_.out_width();
  const std::size_t rows = OH * OW;
  const std::size_t mult = K / C;  ///< channel multiplier
  const float scale = input_params_.scale;
  const float requant = out_u8_qp_.scale;

  const std::uint8_t* q_in = static_cast<const std::uint8_t*>(input);
  if (!in_u8) {
    // Quantize the whole activation tensor once (each plane is read `mult`
    // times by the filter loop; quantizing up front keeps that loop integer).
    const float* f_in = static_cast<const float*>(input);
    const std::size_t elems = desc_.batch * C * H * W;
    in_q_.ensure(elems);
    auto quantize_range = [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const std::int32_t q = round_nearest_even(f_in[i] * scale) + 128;
        in_q_[i] = static_cast<std::uint8_t>(std::clamp(q, 0, 255));
      }
    };
    if (pool != nullptr) {
      pool->parallel_for(elems, quantize_range);
    } else {
      quantize_range(0, elems);
    }
    q_in = in_q_.data();
  }

  // One (batch, output-channel) plane per work item: direct int32
  // accumulation of (q - 128) * w_q over the in-bounds taps; out-of-bounds
  // taps are quantized zero and contribute nothing.
  auto plane_body = [&](std::size_t begin, std::size_t end) {
    for (std::size_t bk = begin; bk < end; ++bk) {
      const std::size_t b = bk / K, k = bk % K;
      const std::size_t c = k / mult;  // the group's single input channel
      const std::uint8_t* src = q_in + ((b * C + c) * H) * W;
      const std::int8_t* w = w_q_.data() + k * taps_;
      const std::size_t plane = (b * K + k) * rows;
      const float* res = post.sum != nullptr ? post.sum + plane : nullptr;
      const std::uint8_t* res8 = post.sum_u8 != nullptr ? post.sum_u8 + plane : nullptr;
      const float res8_inv = post.sum_u8_inv_scale;
      const float dq = w_dequant_[k];
      const float bk_bias = bias_[k];
      // Dequant / +sum / ReLU / requant epilogue for one finished pixel.
      const auto store = [&](std::size_t p, std::int32_t acc) {
        float v = static_cast<float>(acc) * dq + bk_bias;
        if (res != nullptr) v += res[p];
        if (res8 != nullptr) {
          v += static_cast<float>(static_cast<std::int32_t>(res8[p]) - 128) * res8_inv;
        }
        if (post.relu) v = std::max(0.0f, v);
        if (out_u8) {
          // Requant stage: same rounding contract as quantize_u8_shift128.
          const std::int32_t q = round_nearest_even(v * requant) + 128;
          static_cast<std::uint8_t*>(output)[plane + p] =
              static_cast<std::uint8_t>(std::clamp(q, 0, 255));
        } else {
          static_cast<float*>(output)[plane + p] = v;
        }
      };
      // Fully-bounded accumulation for the border pixels.
      const auto edge_pixel = [&](std::size_t oh, std::size_t ow, std::ptrdiff_t ih0,
                                  std::size_t i_lo, std::size_t i_hi) {
        const std::ptrdiff_t iw0 = static_cast<std::ptrdiff_t>(ow * s) -
                                   static_cast<std::ptrdiff_t>(pad_w);
        const std::size_t j_lo = iw0 < 0 ? static_cast<std::size_t>(-iw0) : 0;
        const std::size_t j_hi =
            std::min(r, static_cast<std::size_t>(static_cast<std::ptrdiff_t>(W) - iw0));
        std::int32_t acc = 0;
        for (std::size_t i = i_lo; i < i_hi; ++i) {
          const std::uint8_t* in_row = src + (ih0 + static_cast<std::ptrdiff_t>(i)) * W;
          const std::int8_t* w_row = w + i * r;
          for (std::size_t j = j_lo; j < j_hi; ++j) {
            acc += (static_cast<std::int32_t>(in_row[iw0 + static_cast<std::ptrdiff_t>(j)]) -
                    128) *
                   static_cast<std::int32_t>(w_row[j]);
          }
        }
        store(oh * OW + ow, acc);
      };
      // Width range whose full r-tap window is in-bounds: iw0 >= 0 and
      // iw0 + r <= W. Everything outside runs through edge_pixel.
      const std::size_t ow_lo = std::min(OW, (pad_w + s - 1) / s);
      const std::size_t ow_hi =
          W + pad_w >= r ? std::min(OW, (W + pad_w - r) / s + 1) : 0;
      for (std::size_t oh = 0; oh < OH; ++oh) {
        // In-bounds tap window along the height (out-of-bounds rows are
        // quantized zero and contribute nothing, so skipping them is exact).
        const std::ptrdiff_t ih0 = static_cast<std::ptrdiff_t>(oh * s) -
                                   static_cast<std::ptrdiff_t>(pad);
        const std::size_t i_lo = ih0 < 0 ? static_cast<std::size_t>(-ih0) : 0;
        const std::size_t i_hi =
            std::min(r, static_cast<std::size_t>(static_cast<std::ptrdiff_t>(H) - ih0));
        for (std::size_t ow = 0; ow < std::min(ow_lo, OW); ++ow) {
          edge_pixel(oh, ow, ih0, i_lo, i_hi);
        }
        // Interior: tap-major accumulation over a chunk of output pixels —
        // fixed trip counts and contiguous (or s-strided) input rows, which
        // the compiler vectorizes; the scalar bounded path above cannot be.
        constexpr std::size_t kChunk = 64;
        std::int32_t accs[kChunk];
        for (std::size_t ow0 = ow_lo; ow0 < ow_hi; ow0 += kChunk) {
          const std::size_t n = std::min(kChunk, ow_hi - ow0);
          for (std::size_t t = 0; t < n; ++t) accs[t] = 0;
          for (std::size_t i = i_lo; i < i_hi; ++i) {
            const std::uint8_t* in_row = src + (ih0 + static_cast<std::ptrdiff_t>(i)) * W +
                                         (static_cast<std::ptrdiff_t>(ow0 * s) -
                                          static_cast<std::ptrdiff_t>(pad_w));
            const std::int8_t* w_row = w + i * r;
            for (std::size_t j = 0; j < r; ++j) {
              const std::int32_t wv = w_row[j];
              const std::uint8_t* p = in_row + j;
              for (std::size_t t = 0; t < n; ++t) {
                accs[t] += (static_cast<std::int32_t>(p[t * s]) - 128) * wv;
              }
            }
          }
          for (std::size_t t = 0; t < n; ++t) store(oh * OW + ow0 + t, accs[t]);
        }
        for (std::size_t ow = std::max(ow_hi, ow_lo); ow < OW; ++ow) {
          edge_pixel(oh, ow, ih0, i_lo, i_hi);
        }
      }
    }
  };
  const std::size_t work = desc_.batch * K;
  if (pool != nullptr) {
    pool->parallel_for(work, plane_body);
  } else {
    plane_body(0, work);
  }
}

}  // namespace lowino

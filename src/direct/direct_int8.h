// INT8 direct convolution (implicit GEMM) — the stand-in for oneDNN's
// low-precision direct convolution baseline (Section 5.1).
//
// Spatial-domain post-training quantization: one KL-calibrated scale for the
// input activations, exact per-output-channel scales for the weights. The
// quantized im2col patches (shifted by +128 into uint8) feed the same VNNI
// GEMM substrate as LoWino, so performance comparisons isolate the algorithm,
// not the kernel quality.
#pragma once

#include <cstdint>
#include <span>

#include "common/aligned_buffer.h"
#include "gemm/int8_gemm.h"
#include "quant/histogram.h"
#include "quant/quantize.h"
#include "tensor/conv_desc.h"
#include "tensor/post_ops.h"

namespace lowino {

class ThreadPool;

class Int8DirectConv {
 public:
  explicit Int8DirectConv(const ConvDesc& desc);

  /// Accumulates input-activation statistics (NCHW batch of the layer shape).
  void calibrate(std::span<const float> input_nchw);
  void finalize_calibration();
  /// Bypass: set the spatial-domain threshold directly.
  void set_input_threshold(float tau);

  void set_filters(std::span<const float> weights, std::span<const float> bias = {});

  /// `post` fuses the residual +sum / ReLU epilogue into the dequant store
  /// loop (see tensor/post_ops.h).
  void execute_nchw(std::span<const float> input, std::span<float> output,
                    ThreadPool* pool = nullptr, const PostOps& post = {});

  /// Serving u8 hand-off (tensor/dtype.h). set_input_u8 ADOPTS the hand-off
  /// quantization as the engine's spatial input scale — the producer's bytes
  /// already are round_ne(scale * x) + 128, exactly what im2col would have
  /// produced — and re-packs the weights so the dequant table matches.
  /// set_output_u8 appends the requant stage (bias -> sum -> relu -> requant
  /// with qp.scale) to the store loop. Only execute_typed honors either.
  void set_input_u8(const QuantParams& qp);
  void set_output_u8(const QuantParams& qp);
  bool input_is_u8() const { return in_u8_; }
  bool output_is_u8() const { return out_u8_; }

  /// Runs on NCHW buffers typed per the configured hand-off dtypes (u8 after
  /// set_input_u8 / set_output_u8, FP32 otherwise); `post.sum_u8` may supply
  /// a u8 residual with either configuration.
  void execute_typed(const void* input, void* output, ThreadPool* pool = nullptr,
                     const PostOps& post = {});

  const ConvDesc& desc() const { return desc_; }
  float input_scale() const { return input_params_.scale; }

 private:
  ConvDesc desc_;
  std::size_t patch_ = 0;       ///< C * r * r
  std::size_t patch_pad_ = 0;   ///< rounded to 4
  std::size_t k_pad_ = 0;       ///< rounded to 16

  Histogram input_hist_;
  QuantParams input_params_;
  bool input_scales_set_ = false;

  AlignedBuffer<std::int8_t> w_packed_;   ///< vpdpbusd layout (patch_pad/4) x (k_pad*4)
  AlignedBuffer<std::int32_t> comp_;      ///< [k_pad]
  AlignedBuffer<float> w_dequant_;        ///< per-channel 1/(scale_in*scale_w)
  AlignedBuffer<float> bias_;
  bool filters_set_ = false;
  AlignedBuffer<float> weights_fp32_;     ///< kept until scales are known

  AlignedBuffer<std::uint8_t> col_;       ///< quantized im2col buffer
  AlignedBuffer<std::int32_t> acc_;       ///< GEMM result
  Int8GemmBlocking blocking_;

  bool in_u8_ = false;
  bool out_u8_ = false;
  QuantParams out_u8_qp_;

  void pack_weights();
  void execute_impl(const void* input, void* output, bool in_u8, bool out_u8,
                    ThreadPool* pool, const PostOps& post);
};

}  // namespace lowino

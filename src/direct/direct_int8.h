// INT8 direct convolution (implicit GEMM) — the stand-in for oneDNN's
// low-precision direct convolution baseline (Section 5.1).
//
// Spatial-domain post-training quantization: one KL-calibrated scale for the
// input activations, exact per-output-channel scales for the weights. The
// quantized im2col patches (shifted by +128 into uint8) feed the same VNNI
// GEMM substrate as LoWino, so performance comparisons isolate the algorithm,
// not the kernel quality.
#pragma once

#include <cstdint>
#include <span>

#include "common/aligned_buffer.h"
#include "gemm/int8_gemm.h"
#include "quant/histogram.h"
#include "quant/quantize.h"
#include "tensor/conv_desc.h"
#include "tensor/post_ops.h"

namespace lowino {

class ThreadPool;

class Int8DirectConv {
 public:
  explicit Int8DirectConv(const ConvDesc& desc);

  /// Accumulates input-activation statistics (NCHW batch of the layer shape).
  void calibrate(std::span<const float> input_nchw);
  void finalize_calibration();
  /// Bypass: set the spatial-domain threshold directly.
  void set_input_threshold(float tau);

  void set_filters(std::span<const float> weights, std::span<const float> bias = {});

  /// `post` fuses the residual +sum / ReLU epilogue into the dequant store
  /// loop (see tensor/post_ops.h).
  void execute_nchw(std::span<const float> input, std::span<float> output,
                    ThreadPool* pool = nullptr, const PostOps& post = {});

  const ConvDesc& desc() const { return desc_; }
  float input_scale() const { return input_params_.scale; }

 private:
  ConvDesc desc_;
  std::size_t patch_ = 0;       ///< C * r * r
  std::size_t patch_pad_ = 0;   ///< rounded to 4
  std::size_t k_pad_ = 0;       ///< rounded to 16

  Histogram input_hist_;
  QuantParams input_params_;
  bool input_scales_set_ = false;

  AlignedBuffer<std::int8_t> w_packed_;   ///< vpdpbusd layout (patch_pad/4) x (k_pad*4)
  AlignedBuffer<std::int32_t> comp_;      ///< [k_pad]
  AlignedBuffer<float> w_dequant_;        ///< per-channel 1/(scale_in*scale_w)
  AlignedBuffer<float> bias_;
  bool filters_set_ = false;
  AlignedBuffer<float> weights_fp32_;     ///< kept until scales are known

  AlignedBuffer<std::uint8_t> col_;       ///< quantized im2col buffer
  AlignedBuffer<std::int32_t> acc_;       ///< GEMM result
  Int8GemmBlocking blocking_;

  void pack_weights();
};

}  // namespace lowino

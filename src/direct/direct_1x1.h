// INT8 1x1 convolution: a pure blocked VNNI GEMM over the channel dimension.
//
// A 1x1 convolution is a (OH*OW) x C by C x K matrix product per image — no
// im2col patch expansion, no out-of-bounds checks (validate() forces pad = 0
// when r = 1). The A matrix build is a straight quantize(+128)-and-transpose
// gather (strided along the spatial axis when stride > 1), roughly r*r = 9x
// less index arithmetic than the generic direct engine's im2col on the same
// shape. Quantization scheme, GEMM substrate and the dequant/PostOps/requant
// tail are shared with Int8DirectConv so the speedup isolates the gather.
//
// Mirrors the Euler `elx_conv_direct_1x1_lp` specialization (SNIPPETS.md).
#pragma once

#include <cstdint>
#include <span>

#include "common/aligned_buffer.h"
#include "gemm/int8_gemm.h"
#include "quant/histogram.h"
#include "quant/quantize.h"
#include "tensor/conv_desc.h"
#include "tensor/post_ops.h"

namespace lowino {

class ThreadPool;

/// Same public surface as Int8DirectConv (the conformance fuzzer drives both
/// uniformly). The constructor throws std::invalid_argument — before any
/// workspace allocation — unless kernel == 1 and groups == 1; any stride is
/// accepted (the gather is just strided).
class Int8Conv1x1Conv {
 public:
  explicit Int8Conv1x1Conv(const ConvDesc& desc);

  void calibrate(std::span<const float> input_nchw);
  void finalize_calibration();
  /// Bypass: set the spatial-domain threshold directly.
  void set_input_threshold(float tau);

  void set_filters(std::span<const float> weights, std::span<const float> bias = {});

  /// `post` fuses the residual +sum / ReLU epilogue into the dequant store
  /// loop (see tensor/post_ops.h).
  void execute_nchw(std::span<const float> input, std::span<float> output,
                    ThreadPool* pool = nullptr, const PostOps& post = {});

  /// Serving u8 hand-off — identical contract to Int8DirectConv: set_input_u8
  /// ADOPTS the hand-off quantization as the spatial input scale, set_output_u8
  /// appends the requant stage. Only execute_typed honors either.
  void set_input_u8(const QuantParams& qp);
  void set_output_u8(const QuantParams& qp);
  bool input_is_u8() const { return in_u8_; }
  bool output_is_u8() const { return out_u8_; }

  void execute_typed(const void* input, void* output, ThreadPool* pool = nullptr,
                     const PostOps& post = {});

  const ConvDesc& desc() const { return desc_; }
  float input_scale() const { return input_params_.scale; }

 private:
  ConvDesc desc_;
  std::size_t c_pad_ = 0;  ///< C rounded to 4 (the GEMM's reduction dim)
  std::size_t k_pad_ = 0;  ///< K rounded to 16

  Histogram input_hist_;
  QuantParams input_params_;
  bool input_scales_set_ = false;

  AlignedBuffer<std::int8_t> w_packed_;  ///< vpdpbusd layout (c_pad/4) x (k_pad*4)
  AlignedBuffer<std::int32_t> comp_;     ///< [k_pad]
  AlignedBuffer<float> w_dequant_;       ///< per-channel 1/(scale_in*scale_w)
  AlignedBuffer<float> bias_;
  bool filters_set_ = false;
  AlignedBuffer<float> weights_fp32_;  ///< kept until scales are known

  AlignedBuffer<std::uint8_t> a_;     ///< quantized+transposed activations
  AlignedBuffer<std::int32_t> acc_;   ///< GEMM result
  Int8GemmBlocking blocking_;

  bool in_u8_ = false;
  bool out_u8_ = false;
  QuantParams out_u8_qp_;

  void pack_weights();
  void execute_impl(const void* input, void* output, bool in_u8, bool out_u8,
                    ThreadPool* pool, const PostOps& post);
};

}  // namespace lowino

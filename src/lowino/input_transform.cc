#include "lowino/input_transform.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/aligned_buffer.h"
#include "lowino/transform_kernels.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"

namespace lowino {
namespace {

using Scratch = InputTransformScratch;

/// Gathers the alpha x alpha x 16 sub-tile of `tile` for channel lanes
/// [chan_block*64 + group*16, +16) into `d` (zero-filling the halo).
void gather_tile_group(const InputTransformContext& ctx, const float* in, std::size_t tile,
                       std::size_t chan_block, std::size_t group, float* d) {
  const ConvDesc& desc = *ctx.desc;
  const WinogradGeometry& geo = *ctx.geo;
  const std::size_t alpha = geo.alpha;
  const std::size_t b = tile / geo.tiles_per_image;
  const std::size_t rem = tile % geo.tiles_per_image;
  const std::size_t th = rem / geo.tiles_w;
  const std::size_t tw = rem % geo.tiles_w;
  const std::ptrdiff_t ih0 =
      static_cast<std::ptrdiff_t>(th * geo.m) - static_cast<std::ptrdiff_t>(desc.pad);
  const std::ptrdiff_t iw0 =
      static_cast<std::ptrdiff_t>(tw * geo.m) - static_cast<std::ptrdiff_t>(desc.pad);

  for (std::size_t i = 0; i < alpha; ++i) {
    const std::ptrdiff_t ih = ih0 + static_cast<std::ptrdiff_t>(i);
    if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(desc.height)) {
      std::memset(d + i * alpha * 16, 0, alpha * 16 * sizeof(float));
      continue;
    }
    for (std::size_t j = 0; j < alpha; ++j) {
      const std::ptrdiff_t iw = iw0 + static_cast<std::ptrdiff_t>(j);
      float* dst = d + (i * alpha + j) * 16;
      if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(desc.width)) {
        std::memset(dst, 0, 16 * sizeof(float));
      } else {
        const float* src =
            in + ctx.in_layout.offset(b, chan_block, static_cast<std::size_t>(ih),
                                      static_cast<std::size_t>(iw)) +
            group * 16;
        std::memcpy(dst, src, 16 * sizeof(float));
      }
    }
  }
}

/// u8 hand-off gather: identical walk, de-quantizing bytes on the fly as
/// (q - 128) * ctx.in_dequant. The halo stays memset-0 — byte 128 (quantized
/// zero, also the pack padding byte) de-quantizes to exactly 0.0f, so padding
/// semantics match the FP32 gather bit-for-bit.
void gather_tile_group_u8(const InputTransformContext& ctx, const std::uint8_t* in,
                          std::size_t tile, std::size_t chan_block, std::size_t group,
                          float* d) {
  const ConvDesc& desc = *ctx.desc;
  const WinogradGeometry& geo = *ctx.geo;
  const std::size_t alpha = geo.alpha;
  const std::size_t b = tile / geo.tiles_per_image;
  const std::size_t rem = tile % geo.tiles_per_image;
  const std::size_t th = rem / geo.tiles_w;
  const std::size_t tw = rem % geo.tiles_w;
  const std::ptrdiff_t ih0 =
      static_cast<std::ptrdiff_t>(th * geo.m) - static_cast<std::ptrdiff_t>(desc.pad);
  const std::ptrdiff_t iw0 =
      static_cast<std::ptrdiff_t>(tw * geo.m) - static_cast<std::ptrdiff_t>(desc.pad);
  const float inv = ctx.in_dequant;

  for (std::size_t i = 0; i < alpha; ++i) {
    const std::ptrdiff_t ih = ih0 + static_cast<std::ptrdiff_t>(i);
    if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(desc.height)) {
      std::memset(d + i * alpha * 16, 0, alpha * 16 * sizeof(float));
      continue;
    }
    for (std::size_t j = 0; j < alpha; ++j) {
      const std::ptrdiff_t iw = iw0 + static_cast<std::ptrdiff_t>(j);
      float* dst = d + (i * alpha + j) * 16;
      if (iw < 0 || iw >= static_cast<std::ptrdiff_t>(desc.width)) {
        std::memset(dst, 0, 16 * sizeof(float));
      } else {
        const std::uint8_t* src =
            in + ctx.in_layout.offset(b, chan_block, static_cast<std::size_t>(ih),
                                      static_cast<std::size_t>(iw)) +
            group * 16;
        for (std::size_t l = 0; l < 16; ++l) {
          dst[l] = static_cast<float>(static_cast<std::int32_t>(src[l]) - 128) * inv;
        }
      }
    }
  }
}

/// 2D transform of one gathered 16-lane group: V = B^T d B via a column pass
/// followed by a row pass of the 1D codelet plan (Section 4.2.4: the same
/// generated codelet is reused column-wise then row-wise).
void transform_group(const InputTransformContext& ctx, Scratch& s) {
  const std::size_t alpha = ctx.geo->alpha;
  const std::size_t m = ctx.hand_codelets ? ctx.geo->m : 0, r = ctx.geo->r;
  for (std::size_t j = 0; j < alpha; ++j) {
    if (!apply_bt_16(m, r, s.d.data() + j * 16, alpha * 16, s.w.data() + j * 16,
                     alpha * 16)) {
      apply_plan_16(*ctx.bt_plan, s.d.data() + j * 16, alpha * 16, s.w.data() + j * 16,
                    alpha * 16);
    }
  }
  for (std::size_t i = 0; i < alpha; ++i) {
    if (!apply_bt_16(m, r, s.w.data() + i * alpha * 16, 16, s.v.data() + i * alpha * 16,
                     16)) {
      apply_plan_16(*ctx.bt_plan, s.w.data() + i * alpha * 16, 16,
                    s.v.data() + i * alpha * 16, 16);
    }
  }
}

}  // namespace

void transform_tile_fp32(const InputTransformContext& ctx, std::span<const float> in_blocked,
                         std::size_t tile, std::size_t chan_block, float* out) {
  // Thread-local scratch: callers (baselines, calibration) invoke this in
  // tight per-tile loops, often from worker threads.
  thread_local Scratch s;
  s.ensure(ctx.geo->t_elems);
  for (std::size_t g = 0; g < kPhi; ++g) {
    gather_tile_group(ctx, in_blocked.data(), tile, chan_block, g, s.d.data());
    transform_group(ctx, s);
    for (std::size_t t = 0; t < ctx.geo->t_elems; ++t) {
      std::memcpy(out + t * kChanBlock + g * 16, s.v.data() + t * 16, 16 * sizeof(float));
    }
  }
}

void transform_quantize_tile(const InputTransformContext& ctx, const void* in_blocked,
                             std::size_t tile, std::size_t chan_block,
                             const float* scale_of_t, InputTransformScratch& s) {
  const std::size_t t_elems = ctx.geo->t_elems;
  for (std::size_t g = 0; g < kPhi; ++g) {
    if (ctx.in_dtype == DType::kU8) {
      gather_tile_group_u8(ctx, static_cast<const std::uint8_t*>(in_blocked), tile,
                           chan_block, g, s.d.data());
    } else {
      gather_tile_group(ctx, static_cast<const float*>(in_blocked), tile, chan_block, g,
                        s.d.data());
    }
    transform_group(ctx, s);
    for (std::size_t t = 0; t < t_elems; ++t) {
      quantize16_u8(s.v.data() + t * 16, scale_of_t[t],
                    s.staging.data() + t * kChanBlock + g * 16);
    }
  }
}

void run_input_transform(const InputTransformContext& ctx, const void* in_blocked,
                         const WinogradScales& scales, std::uint8_t* v, ThreadPool* pool) {
  const WinogradGeometry& geo = *ctx.geo;
  const std::size_t c_blocks64 = ctx.in_layout.chan_blocks;
  const std::size_t t_elems = geo.t_elems;
  const std::size_t jobs = geo.total_tiles * c_blocks64;

  // Resolve per-position scales once (stack-resident: T is tiny and a heap
  // buffer here would make steady-state execute() calls allocate).
  float scale_of_t[256];
  assert(t_elems <= 256);
  for (std::size_t t = 0; t < t_elems; ++t) scale_of_t[t] = scales.input_scale(t);

  auto worker = [&](std::size_t tid, std::size_t nw) {
    // Per-worker span: each thread is credited exactly its own busy time (the
    // fused path records the same stage around its per-block transform loop).
    ProfileSpan span(ProfileStage::kInputTransform);
    // Persistent per-thread scratch: pool workers outlive execute() calls, so
    // steady-state runs never re-allocate.
    thread_local Scratch s;
    s.ensure(t_elems);
    const Range range = static_partition(jobs, nw, tid);
    for (std::size_t job = range.begin; job < range.end; ++job) {
      const std::size_t tile = job / c_blocks64;
      const std::size_t cb = job % c_blocks64;
      transform_quantize_tile(ctx, in_blocked, tile, cb, scale_of_t, s);
      // Scatter complete cache lines into [N/Nblk][C/Cblk][T][Nblk][Cblk].
      for (std::size_t t = 0; t < t_elems; ++t) {
        std::uint8_t* dst = v + ctx.v_layout.offset(tile, t, cb * kChanBlock);
        stream_store_64(dst, s.staging.data() + t * kChanBlock, ctx.nt_store);
      }
    }
    stream_fence();
  };

  if (pool != nullptr) {
    pool->run(worker);
  } else {
    worker(0, 1);
  }
}

void collect_calibration(const InputTransformContext& ctx, std::span<const float> in_blocked,
                         WinogradCalibrator& calibrator, std::size_t tile_stride) {
  assert(tile_stride >= 1);
  const WinogradGeometry& geo = *ctx.geo;
  Scratch s(geo.t_elems);
  const std::size_t channels = ctx.desc->in_channels;
  for (std::size_t tile = 0; tile < geo.total_tiles; tile += tile_stride) {
    for (std::size_t cb = 0; cb < ctx.in_layout.chan_blocks; ++cb) {
      for (std::size_t g = 0; g < kPhi; ++g) {
        // Only real channels feed the histograms — zero-padded lanes would
        // bias the KL threshold toward zero.
        const std::size_t lane0 = cb * kChanBlock + g * 16;
        if (lane0 >= channels) break;
        const std::size_t valid = std::min<std::size_t>(16, channels - lane0);
        gather_tile_group(ctx, in_blocked.data(), tile, cb, g, s.d.data());
        transform_group(ctx, s);
        for (std::size_t t = 0; t < geo.t_elems; ++t) {
          calibrator.collect(t, std::span<const float>(s.v.data() + t * 16, valid));
        }
      }
    }
  }
}

}  // namespace lowino

// Fused streaming execution (ExecutionMode::kFused).
//
// The staged pipeline (Section 4.3) materializes the full transformed-input
// tensor V (O(tiles x C) bytes) and transformed-output tensor Z
// (4 x O(tiles x K) bytes) between three fork-join regions. The fused path
// follows the Euler INT8 engine's streaming design instead: work is
// partitioned over n-blocks (groups of n_blk macro-tiles) and each worker,
// entirely within one parallel region,
//
//   1. input-transforms + quantizes its n-block slice into a per-thread
//      V panel ([C/Cblk][T][Nblk][Cblk], the staged layout with the n-block
//      index fixed),
//   2. sweeps the packed filters in k-groups (multiples of 64 output
//      channels) with the VNNI GEMM into a per-thread Z panel
//      ([k_grp/64][Nblk][T][64]),
//   3. immediately de-quantizes + output-transforms each finished k-group
//      into the destination image (bias/ReLU fused as usual).
//
// No inter-stage barriers, and both panels stay L2-resident: the V/Z bytes
// never travel to DRAM. The per-tile bodies are shared with the staged
// drivers (transform_quantize_tile / int8_gemm_n_block /
// output_transform_tile), so the two modes are bit-identical by construction;
// the staged path remains as the per-stage-timing mode and the
// differential-testing oracle.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/aligned_buffer.h"
#include "gemm/int8_gemm.h"
#include "lowino/input_transform.h"
#include "lowino/output_transform.h"
#include "lowino/scales.h"
#include "tensor/conv_desc.h"
#include "tensor/layout.h"

namespace lowino {

class ThreadPool;

/// Panel shapes of the fused path for one (geometry, blocking) pair. All
/// sizes are per thread and independent of the total tile count.
struct FusedGeometry {
  std::size_t c_blocks = 0;      ///< padded C / c_blk
  std::size_t kb_per_group = 0;  ///< filter blocks per k-group
  std::size_t k_grp = 0;         ///< output channels per Z panel (multiple of 64)
  std::size_t v_panel_elems = 0; ///< c_blocks * T * n_blk * c_blk (uint8)
  std::size_t z_panel_elems = 0; ///< k_grp * n_blk * T (int32)
  std::size_t acc_elems = 0;     ///< n_blk * k_blk (int32)

  static FusedGeometry make(const WinogradGeometry& geo, std::size_t padded_c,
                            const Int8GemmBlocking& blocking);

  /// Bytes of one thread's panels + accumulator.
  std::size_t per_thread_bytes() const {
    return v_panel_elems + sizeof(std::int32_t) * (z_panel_elems + acc_elems);
  }
};

/// Per-thread arenas of the fused path, owned by the convolution object and
/// reused across execute() calls (steady-state runs are allocation-free).
class FusedWorkspace {
 public:
  struct Arena {
    AlignedBuffer<std::uint8_t> v_panel;
    AlignedBuffer<std::int32_t> z_panel;
    AlignedBuffer<std::int32_t> acc;
    InputTransformScratch in_scratch;
    OutputTransformScratch out_scratch;
  };

  /// Grows to `num_threads` arenas with the given panel shapes. Only
  /// re-allocates when a dimension grows.
  void ensure(std::size_t num_threads, const WinogradGeometry& geo, const FusedGeometry& fg);

  Arena& arena(std::size_t tid) { return arenas_[tid]; }
  std::size_t allocated_threads() const { return arenas_.size(); }

 private:
  std::vector<Arena> arenas_;
};

/// Runs the whole convolution pipeline in fused streaming mode over the
/// blocked input, writing the blocked output. `ws` must have been ensure()d
/// for the pool's thread count. `in_ctx.v_layout`/`in_ctx.nt_store` and
/// `out_ctx.z_layout` are ignored (the fused path owns its panel layouts).
/// `in_blocked`/`out_blocked` point at in_ctx.in_dtype / out_ctx.out_dtype
/// elements (FP32 or u8 hand-off bytes).
void run_fused(const InputTransformContext& in_ctx, const OutputTransformContext& out_ctx,
               const PackedFilterLayout& ul, const std::int8_t* u, const std::int32_t* comp,
               const Int8GemmBlocking& blocking, const FusedGeometry& fg,
               const void* in_blocked, const WinogradScales& scales, void* out_blocked,
               FusedWorkspace& ws, ThreadPool* pool);

inline void run_fused(const InputTransformContext& in_ctx,
                      const OutputTransformContext& out_ctx, const PackedFilterLayout& ul,
                      const std::int8_t* u, const std::int32_t* comp,
                      const Int8GemmBlocking& blocking, const FusedGeometry& fg,
                      std::span<const float> in_blocked, const WinogradScales& scales,
                      std::span<float> out_blocked, FusedWorkspace& ws, ThreadPool* pool) {
  run_fused(in_ctx, out_ctx, ul, u, comp, blocking, fg,
            static_cast<const void*>(in_blocked.data()), scales,
            static_cast<void*>(out_blocked.data()), ws, pool);
}

}  // namespace lowino

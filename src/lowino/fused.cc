#include "lowino/fused.h"

#include <algorithm>
#include <cassert>

#include "lowino/transform_kernels.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"

namespace lowino {

FusedGeometry FusedGeometry::make(const WinogradGeometry& geo, std::size_t padded_c,
                                  const Int8GemmBlocking& blocking) {
  FusedGeometry fg;
  fg.c_blocks = (padded_c + blocking.c_blk - 1) / blocking.c_blk;
  // Smallest run of filter blocks whose total width is a multiple of 64, so
  // the Z panel always holds whole output-channel blocks (k_blk is a multiple
  // of 16 => at most 4 blocks per group).
  fg.kb_per_group = 1;
  while ((fg.kb_per_group * blocking.k_blk) % kChanBlock != 0) ++fg.kb_per_group;
  fg.k_grp = fg.kb_per_group * blocking.k_blk;
  fg.v_panel_elems = fg.c_blocks * geo.t_elems * blocking.n_blk * blocking.c_blk;
  fg.z_panel_elems = fg.k_grp * blocking.n_blk * geo.t_elems;
  fg.acc_elems = blocking.n_blk * blocking.k_blk;
  return fg;
}

void FusedWorkspace::ensure(std::size_t num_threads, const WinogradGeometry& geo,
                            const FusedGeometry& fg) {
  if (arenas_.size() < num_threads) arenas_.resize(num_threads);
  for (auto& a : arenas_) {
    if (a.v_panel.size() < fg.v_panel_elems) {
      a.v_panel.reset(fg.v_panel_elems);
      // Padded-channel lanes of partial tiles stay zero forever (the transform
      // only writes real 64-channel blocks); the GEMM multiplies them against
      // zero filters, matching the staged V tensor's one-time fill_zero.
      a.v_panel.fill_zero();
    }
    a.z_panel.ensure(fg.z_panel_elems);
    a.acc.ensure(fg.acc_elems);
    a.in_scratch.ensure(geo.t_elems);
    a.out_scratch.ensure(geo.t_elems, geo.m, geo.alpha);
  }
}

void run_fused(const InputTransformContext& in_ctx, const OutputTransformContext& out_ctx,
               const PackedFilterLayout& ul, const std::int8_t* u, const std::int32_t* comp,
               const Int8GemmBlocking& blocking, const FusedGeometry& fg,
               const void* in_blocked, const WinogradScales& scales, void* out_blocked,
               FusedWorkspace& ws, ThreadPool* pool) {
  const WinogradGeometry& geo = *in_ctx.geo;
  const std::size_t t_elems = geo.t_elems;
  const std::size_t n_blk = blocking.n_blk;
  const std::size_t c_blk = blocking.c_blk;
  const std::size_t k_blk = blocking.k_blk;
  const std::size_t c_blocks64 = in_ctx.in_layout.chan_blocks;
  const std::size_t k_blocks64 = out_ctx.out_layout.chan_blocks;
  const std::size_t k_real = k_blocks64 * kChanBlock;
  const std::size_t n_blocks = (geo.total_tiles + n_blk - 1) / n_blk;

  assert(ws.allocated_threads() >= (pool != nullptr ? pool->num_threads() : 1));

  // Resolve per-position input scales once (T is tiny, alpha <= 16).
  float scale_of_t[256];
  assert(t_elems <= 256);
  for (std::size_t t = 0; t < t_elems; ++t) scale_of_t[t] = scales.input_scale(t);

  auto worker = [&](std::size_t tid, std::size_t nw) {
    FusedWorkspace::Arena& a = ws.arena(tid);
    const Range nbs = static_partition(n_blocks, nw, tid);
    for (std::size_t nb = nbs.begin; nb < nbs.end; ++nb) {
      const std::size_t tile0 = nb * n_blk;
      const std::size_t rows = std::min(n_blk, geo.total_tiles - tile0);

      // Stage 1: transform + quantize the n-block into the V panel
      // ([C/Cblk][T][Nblk][Cblk] — the staged layout with nb fixed, so the
      // GEMM walks it with identical strides). Per-n-block profiler spans
      // expose the interleaving the fused design is built on: the trace shows
      // transform/GEMM/output alternating within one parallel region.
      {
        ProfileSpan span(ProfileStage::kInputTransform);
        for (std::size_t r = 0; r < rows; ++r) {
          for (std::size_t cb64 = 0; cb64 < c_blocks64; ++cb64) {
            transform_quantize_tile(in_ctx, in_blocked, tile0 + r, cb64, scale_of_t,
                                    a.in_scratch);
            const std::size_t c = cb64 * kChanBlock;
            const std::size_t cb = c / c_blk;
            const std::size_t ci = c % c_blk;
            for (std::size_t t = 0; t < t_elems; ++t) {
              std::uint8_t* dst =
                  a.v_panel.data() + ((cb * t_elems + t) * n_blk + r) * c_blk + ci;
              // Plain stores: the panel is re-read immediately by the GEMM.
              stream_store_64(dst, a.in_scratch.staging.data() + t * kChanBlock, false);
            }
          }
        }
      }

      // Stages 2+3: sweep the filters one k-group at a time; each group's Z
      // panel is output-transformed while still hot.
      for (std::size_t g0 = 0; g0 < ul.k_blocks; g0 += fg.kb_per_group) {
        const std::size_t g1 = std::min(g0 + fg.kb_per_group, ul.k_blocks);
        {
          ProfileSpan span(ProfileStage::kGemm);
          int8_gemm_n_block(a.v_panel.data(), fg.c_blocks, t_elems, ul, u, comp, k_real, g0,
                            g1, a.z_panel.data(), blocking, a.acc.data());
        }
        ProfileSpan span(ProfileStage::kOutputTransform);
        const std::size_t k64_begin = g0 * k_blk / kChanBlock;
        const std::size_t k64_end = std::min(g1 * k_blk / kChanBlock, k_blocks64);
        for (std::size_t r = 0; r < rows; ++r) {
          for (std::size_t k64 = k64_begin; k64 < k64_end; ++k64) {
            const std::int32_t* z_tile =
                a.z_panel.data() + (((k64 - k64_begin) * n_blk + r) * t_elems) * kChanBlock;
            output_transform_tile(out_ctx, z_tile, tile0 + r, k64, scales, a.out_scratch,
                                  out_blocked);
          }
        }
      }
    }
  };

  if (pool != nullptr) {
    pool->run(worker);
  } else {
    worker(0, 1);
  }
}

}  // namespace lowino

#include "lowino/convolution.h"

#include <cassert>
#include <stdexcept>

#include "common/cpu_features.h"
#include "common/timer.h"
#include "gemm/int8_gemm.h"
#include "gemm/vnni_kernels.h"
#include "parallel/thread_pool.h"
#include "profile/profiler.h"
#include "tensor/pack.h"

namespace lowino {

Int8GemmBlocking adapt_blocking(Int8GemmBlocking b, std::size_t padded_c,
                                std::size_t padded_k, std::size_t total_tiles) {
  b.c_blk = std::min(b.c_blk, padded_c);
  b.k_blk = std::min(b.k_blk, padded_k);
  if (total_tiles != 0 && b.n_blk > total_tiles) {
    // Small layers: padding N up to a large Nblk would waste whole multiples
    // of the real work (e.g. 8 tiles padded to 96).
    b.n_blk = round_up_multiple(total_tiles, static_cast<std::size_t>(b.row_blk));
  }
  // Repair divisibility: k_blk must be a multiple of col_blk * 16.
  while (b.col_blk > 1 && b.k_blk % (static_cast<std::size_t>(b.col_blk) * 16) != 0) {
    --b.col_blk;
  }
  if (!microkernel_combo_supported(b.row_blk, b.col_blk)) {
    // Fall back to a known-good register tile.
    b.row_blk = 6;
    b.col_blk = 4;
    while (b.col_blk > 1 && b.k_blk % (static_cast<std::size_t>(b.col_blk) * 16) != 0) {
      --b.col_blk;
    }
  }
  if (b.n_blk % static_cast<std::size_t>(b.row_blk) != 0) {
    b.n_blk = round_up_multiple(b.n_blk, static_cast<std::size_t>(b.row_blk));
  }
  // Cache bound (Section 4.3.4): shrink c_blk if the clamp pushed k_blk up.
  while (b.c_blk * b.k_blk > 512u * 512u && b.c_blk > kChanBlock) {
    b.c_blk -= kChanBlock;
  }
  if (!b.valid()) throw std::invalid_argument("adapt_blocking: unrepairable blocking");
  return b;
}

LoWinoConvolution::LoWinoConvolution(const ConvDesc& desc, const LoWinoConfig& config)
    : desc_(desc), config_(config) {
  desc.validate();
  desc.require_ungrouped("LoWinoConvolution");
  if (desc.stride != 1) {
    throw std::invalid_argument("LoWino supports unit stride only");
  }
  if (!desc.symmetric_padding()) {
    throw std::invalid_argument("LoWino supports symmetric padding only");
  }
  if (desc.kernel < 2) {
    throw std::invalid_argument("LoWino needs r >= 2 (use direct conv for 1x1)");
  }
  geo_ = WinogradGeometry(desc_, config_.m);

  // Canonical Lavin matrices for the paper's headline sizes; generated
  // (exact-rational, verified) matrices for everything else.
  if (config_.m == 2 && desc.kernel == 3) {
    tm_ = &canonical_f23();
  } else if (config_.m == 4 && desc.kernel == 3) {
    tm_ = &canonical_f43();
  } else {
    tm_ = &winograd_transform(config_.m, desc.kernel);
  }
  canonical_tm_ = (tm_ == &canonical_f23() || tm_ == &canonical_f43()) &&
                  config_.use_hand_codelets;
  bt_plan_ = CodeletPlan::build(tm_->BT.data(), geo_.alpha, geo_.alpha);
  at_plan_ = CodeletPlan::build(tm_->AT.data(), geo_.m, geo_.alpha);

  const std::size_t c64 = desc_.padded_in_channels();
  const std::size_t k64 = desc_.padded_out_channels();
  config_.blocking = adapt_blocking(config_.blocking, c64, k64, geo_.total_tiles);

  v_layout_ = TransformedInputLayout(geo_.total_tiles, c64, geo_.t_elems,
                                     config_.blocking.n_blk, config_.blocking.c_blk);
  const std::size_t n_padded = v_layout_.n_blocks * config_.blocking.n_blk;
  z_layout_ = TransformedOutputLayout(k64, n_padded, geo_.t_elems);
  in_layout_ = BlockedActLayout(desc_.batch, desc_.in_channels, desc_.height, desc_.width);
  out_layout_ =
      BlockedActLayout(desc_.batch, desc_.out_channels, desc_.out_height(), desc_.out_width());

  const PackedFilterLayout fl(c64, k64, geo_.t_elems, config_.blocking.c_blk,
                              config_.blocking.k_blk);
  const std::size_t k_padded = fl.k_blocks * fl.k_blk;
  scales_ = WinogradScales(geo_.t_elems,
                           config_.input_scales == ScaleGranularity::kPerPosition, k_padded,
                           config_.per_channel_filter_scales);
  calibrator_ = WinogradCalibrator(geo_.t_elems,
                                   config_.input_scales == ScaleGranularity::kPerPosition);
}

void LoWinoConvolution::calibrate(std::span<const float> input_nchw,
                                  std::size_t tile_stride) {
  ProfileSpan span(ProfileStage::kCalibration);
  in_blocked_scratch_.ensure(in_layout_.size());
  pack_nchw_to_blocked(input_nchw, desc_.batch, desc_.in_channels, desc_.height, desc_.width,
                       in_blocked_scratch_.span());
  InputTransformContext ctx{&desc_, &geo_, &bt_plan_, in_layout_, v_layout_, false,
                            canonical_tm_};
  collect_calibration(ctx, in_blocked_scratch_.span(), calibrator_, tile_stride);
}

void LoWinoConvolution::finalize_calibration() {
  if (calibrator_.empty()) {
    throw std::logic_error("finalize_calibration called before calibrate()");
  }
  calibrator_.finalize_into(scales_);
  input_scales_set_ = true;
  maybe_build_dequant();
}

void LoWinoConvolution::set_input_thresholds(std::span<const float> taus) {
  assert(taus.size() >= geo_.t_elems);
  for (std::size_t t = 0; t < geo_.t_elems; ++t) {
    scales_.set_input_scale(t, QuantParams::from_threshold(taus[t]));
  }
  input_scales_set_ = true;
  maybe_build_dequant();
}

void LoWinoConvolution::set_uniform_input_threshold(float tau) {
  for (std::size_t t = 0; t < geo_.t_elems; ++t) {
    scales_.set_input_scale(t, QuantParams::from_threshold(tau));
  }
  input_scales_set_ = true;
  maybe_build_dequant();
}

void LoWinoConvolution::set_filters(std::span<const float> weights,
                                    std::span<const float> bias) {
  ProfileSpan span(ProfileStage::kFilterPack);
  transform_and_pack_filters(desc_, geo_, *tm_, config_, weights, bias, scales_, filters_);
  filters_set_ = true;
  maybe_build_dequant();
}

void LoWinoConvolution::maybe_build_dequant() {
  if (filters_set_ && input_scales_set_) scales_.build_dequant_table();
}

ExecutionMode LoWinoConvolution::resolve_execution_mode(std::size_t num_threads) const {
  // Stage timing needs the three fork-join boundaries; fused mode has none.
  if (config_.collect_stage_times) return ExecutionMode::kStaged;
  if (config_.execution_mode != ExecutionMode::kAuto) return config_.execution_mode;
  const std::size_t staged =
      v_layout_.size() * sizeof(std::uint8_t) + z_layout_.size() * sizeof(std::int32_t);
  const std::size_t threshold = config_.fused_threshold_bytes != 0
                                    ? config_.fused_threshold_bytes
                                    : num_threads * l2_cache_bytes();
  // Fuse exactly when the staged intermediates stop fitting in aggregate L2:
  // below that the staged round trips are cache hits anyway and its larger
  // GEMM task grid parallelizes the k dimension too.
  return staged > threshold ? ExecutionMode::kFused : ExecutionMode::kStaged;
}

std::size_t LoWinoConvolution::workspace_bytes(ExecutionMode mode,
                                               std::size_t num_threads) const {
  if (num_threads == 0) num_threads = 1;
  if (mode == ExecutionMode::kAuto) mode = resolve_execution_mode(num_threads);
  if (mode == ExecutionMode::kFused) {
    const FusedGeometry fg =
        FusedGeometry::make(geo_, desc_.padded_in_channels(), config_.blocking);
    return num_threads * fg.per_thread_bytes();
  }
  return v_layout_.size() * sizeof(std::uint8_t) + z_layout_.size() * sizeof(std::int32_t);
}

void LoWinoConvolution::execute_blocked(std::span<const float> input, std::span<float> output,
                                        ThreadPool* pool, const PostOps& post) {
  assert(input.size() >= in_layout_.size());
  assert(output.size() >= out_layout_.size());
  // The span API is FP32-by-contract regardless of any u8 hand-off
  // configuration — calibration/tuning/testing flows keep their semantics.
  execute_blocked_impl(input.data(), output.data(), DType::kF32, DType::kF32, pool, post);
}

void LoWinoConvolution::execute_blocked_impl(const void* input, void* output, DType in_dtype,
                                             DType out_dtype, ThreadPool* pool,
                                             const PostOps& post) {
  if (!ready()) {
    throw std::logic_error("LoWinoConvolution: set_filters + calibration required");
  }

  const std::size_t num_threads = pool != nullptr ? pool->num_threads() : 1;
  const ExecutionMode mode = resolve_execution_mode(num_threads);
  last_mode_ = mode;
  last_threads_ = num_threads;

  InputTransformContext in_ctx{&desc_,     &geo_,     &bt_plan_,     in_layout_,
                               v_layout_, config_.blocking.nt_store, canonical_tm_};
  in_ctx.in_dtype = in_dtype;
  in_ctx.in_dequant = in_u8_qp_.inv_scale;
  OutputTransformContext out_ctx{&desc_,      &geo_,       &at_plan_,
                                 z_layout_,   out_layout_, filters_.bias.data(),
                                 config_.fuse_relu || post.relu, post.sum, canonical_tm_};
  out_ctx.out_dtype = out_dtype;
  out_ctx.requant_scale = out_u8_qp_.scale;
  out_ctx.sum_u8_nchw = post.sum_u8;
  out_ctx.sum_u8_dequant = post.sum_u8_inv_scale;

  if (mode == ExecutionMode::kFused) {
    const FusedGeometry fg =
        FusedGeometry::make(geo_, desc_.padded_in_channels(), config_.blocking);
    fused_ws_.ensure(num_threads, geo_, fg);
    run_fused(in_ctx, out_ctx, filters_.layout, filters_.data.data(), filters_.comp.data(),
              config_.blocking, fg, input, scales_, output, fused_ws_, pool);
    return;
  }

  if (v_buf_.size() != v_layout_.size()) {
    v_buf_.reset(v_layout_.size());
    // Padded tiles/channels are never written by the transform; zero them
    // once so the GEMM reads well-defined values (they multiply zero filters).
    v_buf_.fill_zero();
  }
  z_buf_.ensure(z_layout_.size());

  Timer timer;
  run_input_transform(in_ctx, input, scales_, v_buf_.data(), pool);
  if (config_.collect_stage_times) stage_times_.input_transform = timer.seconds();

  timer.restart();
  batched_int8_gemm(v_layout_, v_buf_.data(), filters_.layout, filters_.data.data(),
                    filters_.comp.data(), z_layout_, z_buf_.data(), config_.blocking, pool,
                    &gemm_scratch_);
  if (config_.collect_stage_times) stage_times_.gemm = timer.seconds();

  timer.restart();
  run_output_transform(out_ctx, z_buf_.data(), scales_, output, pool);
  if (config_.collect_stage_times) stage_times_.output_transform = timer.seconds();
}

void LoWinoConvolution::execute_nchw(std::span<const float> input, std::span<float> output,
                                     ThreadPool* pool, const PostOps& post) {
  in_blocked_scratch_.ensure(in_layout_.size());
  out_blocked_scratch_.ensure(out_layout_.size());
  pack_nchw_to_blocked(input, desc_.batch, desc_.in_channels, desc_.height, desc_.width,
                       in_blocked_scratch_.span(), pool);
  execute_blocked(in_blocked_scratch_.span(), out_blocked_scratch_.span(), pool, post);
  unpack_blocked_to_nchw(out_blocked_scratch_.span(), desc_.batch, desc_.out_channels,
                         desc_.out_height(), desc_.out_width(), output, pool);
}

void LoWinoConvolution::execute_nchw_typed(const void* input, void* output, ThreadPool* pool,
                                           const PostOps& post) {
  const std::size_t in_elems = desc_.batch * desc_.in_channels * desc_.height * desc_.width;
  const std::size_t out_elems =
      desc_.batch * desc_.out_channels * desc_.out_height() * desc_.out_width();

  const void* in_blocked = nullptr;
  if (in_u8_) {
    in_blocked_u8_.ensure(in_layout_.size());
    pack_nchw_u8_to_blocked(
        std::span<const std::uint8_t>(static_cast<const std::uint8_t*>(input), in_elems),
        desc_.batch, desc_.in_channels, desc_.height, desc_.width, in_blocked_u8_.span(),
        pool);
    in_blocked = in_blocked_u8_.data();
  } else {
    in_blocked_scratch_.ensure(in_layout_.size());
    pack_nchw_to_blocked(std::span<const float>(static_cast<const float*>(input), in_elems),
                         desc_.batch, desc_.in_channels, desc_.height, desc_.width,
                         in_blocked_scratch_.span(), pool);
    in_blocked = in_blocked_scratch_.data();
  }

  void* out_blocked = nullptr;
  if (out_u8_) {
    out_blocked_u8_.ensure(out_layout_.size());
    out_blocked = out_blocked_u8_.data();
  } else {
    out_blocked_scratch_.ensure(out_layout_.size());
    out_blocked = out_blocked_scratch_.data();
  }

  execute_blocked_impl(in_blocked, out_blocked, in_u8_ ? DType::kU8 : DType::kF32,
                       out_u8_ ? DType::kU8 : DType::kF32, pool, post);

  if (out_u8_) {
    unpack_blocked_u8_to_nchw(
        out_blocked_u8_.span(), desc_.batch, desc_.out_channels, desc_.out_height(),
        desc_.out_width(),
        std::span<std::uint8_t>(static_cast<std::uint8_t*>(output), out_elems), pool);
  } else {
    unpack_blocked_to_nchw(out_blocked_scratch_.span(), desc_.batch, desc_.out_channels,
                           desc_.out_height(), desc_.out_width(),
                           std::span<float>(static_cast<float*>(output), out_elems), pool);
  }
}

}  // namespace lowino

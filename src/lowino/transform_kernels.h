// Vectorized building blocks of the transform stages.
//
// The transforms operate on 16-lane channel groups (sigma = 16): a codelet
// plan (winograd/codelet_plan.h) is executed with every slot being one
// 16-float vector, then the results are quantized/de-quantized and moved with
// full-cache-line (non-temporal) stores. All functions have scalar fallbacks
// and are exact matches of the scalar quantization semantics, so tests can
// compare paths bit to bit.
#pragma once

#include <cstdint>

#include "winograd/codelet_plan.h"

namespace lowino {

/// Executes `plan` with 16-lane vectors: for output row i,
///   out[i * out_stride + l] = sum_j M[i][j] * in[j * in_stride + l], l in [0,16).
/// Strides are in floats. `in` and `out` must not alias.
void apply_plan_16(const CodeletPlan& plan, const float* in, std::size_t in_stride,
                   float* out, std::size_t out_stride);

/// Hand-scheduled AVX-512 codelets for the canonical transforms (the paper's
/// generated-codelet fast path; Section 4.2.4). Return false when the (m, r)
/// pair has no specialization or the CPU lacks AVX-512 — callers then fall
/// back to apply_plan_16. Semantics identical to applying the canonical
/// B^T / A^T matrix, with FMA contraction.
bool apply_bt_16(std::size_t m, std::size_t r, const float* in, std::size_t in_stride,
                 float* out, std::size_t out_stride);
bool apply_at_16(std::size_t m, std::size_t r, const float* in, std::size_t in_stride,
                 float* out, std::size_t out_stride);

/// Quantizes 16 floats to uint8 with the +128 compensation shift:
///   dst[l] = clamp(round_nearest_even(src[l] * scale) + 128, 0, 255).
void quantize16_u8(const float* src, float scale, std::uint8_t* dst);

/// De-quantizes 16 int32 lanes with per-lane reciprocal scales:
///   dst[l] = float(src[l]) * dequant[l].
void dequant16(const std::int32_t* src, const float* dequant, float* dst);

/// Streams one 64-byte line from `src` (aligned) to `dst` (aligned) with a
/// non-temporal store when available; plain copy otherwise.
void stream_store_64(void* dst, const void* src, bool non_temporal);

/// Orders outstanding non-temporal stores (call once per thread per stage).
void stream_fence();

}  // namespace lowino

#include "lowino/transform_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/cpu_features.h"
#include "common/saturate.h"

#ifdef LOWINO_COMPILE_AVX512
#include <immintrin.h>
#endif

namespace lowino {

void apply_plan_16(const CodeletPlan& plan, const float* in, std::size_t in_stride,
                   float* out, std::size_t out_stride) {
  // Slots: up to alpha inputs + 2*alpha temps; alpha <= 10 in this library.
  float temps[32 * 16];
  for (const PlanStep& step : plan.steps()) {
    float* __restrict dst =
        step.is_output ? out + step.index * out_stride : temps + step.index * 16;
    if (step.terms.empty()) {
      std::memset(dst, 0, 16 * sizeof(float));
      continue;
    }
    const std::size_t n_in = plan.n_in();
    const auto src_of = [&](std::size_t s) -> const float* {
      return s < n_in ? in + s * in_stride : temps + (s - n_in) * 16;
    };
    {
      const float* __restrict s0 = src_of(step.terms[0].src);
      const float c0 = step.terms[0].coeff;
      for (int l = 0; l < 16; ++l) dst[l] = c0 * s0[l];
    }
    for (std::size_t ti = 1; ti < step.terms.size(); ++ti) {
      const float* __restrict s = src_of(step.terms[ti].src);
      const float c = step.terms[ti].coeff;
      for (int l = 0; l < 16; ++l) dst[l] += c * s[l];
    }
  }
}

#ifdef LOWINO_COMPILE_AVX512
namespace {

// Hand-scheduled codelets for the canonical Lavin matrices (Eq. 2). The
// schedules mirror the CSE structure the planner finds (shared symmetric /
// anti-symmetric sub-expressions of the +/- point pairs), fully unrolled and
// FMA-contracted — the output of the paper's codelet generator (Figure 4).

/// B^T(2,3): [d0-d2, d1+d2, d2-d1, d1-d3].
inline void bt_f23(const float* in, std::size_t is, float* out, std::size_t os) {
  const __m512 d0 = _mm512_loadu_ps(in);
  const __m512 d1 = _mm512_loadu_ps(in + is);
  const __m512 d2 = _mm512_loadu_ps(in + 2 * is);
  const __m512 d3 = _mm512_loadu_ps(in + 3 * is);
  _mm512_storeu_ps(out, _mm512_sub_ps(d0, d2));
  _mm512_storeu_ps(out + os, _mm512_add_ps(d1, d2));
  _mm512_storeu_ps(out + 2 * os, _mm512_sub_ps(d2, d1));
  _mm512_storeu_ps(out + 3 * os, _mm512_sub_ps(d1, d3));
}

/// A^T(2,3): [z0+z1+z2, z1-z2-z3].
inline void at_f23(const float* in, std::size_t is, float* out, std::size_t os) {
  const __m512 z0 = _mm512_loadu_ps(in);
  const __m512 z1 = _mm512_loadu_ps(in + is);
  const __m512 z2 = _mm512_loadu_ps(in + 2 * is);
  const __m512 z3 = _mm512_loadu_ps(in + 3 * is);
  _mm512_storeu_ps(out, _mm512_add_ps(_mm512_add_ps(z0, z1), z2));
  _mm512_storeu_ps(out + os, _mm512_sub_ps(_mm512_sub_ps(z1, z2), z3));
}

/// B^T(4,3) rows (Eq. 2):
///   r0 = 4 d0 - 5 d2 + d4
///   r1/r2 = (d4 - 4 d2) +- (d3 - 4 d1)
///   r3/r4 = (d4 - d2) +- 2 (d3 - d1)
///   r5 = 4 d1 - 5 d3 + d5
inline void bt_f43(const float* in, std::size_t is, float* out, std::size_t os) {
  const __m512 d0 = _mm512_loadu_ps(in);
  const __m512 d1 = _mm512_loadu_ps(in + is);
  const __m512 d2 = _mm512_loadu_ps(in + 2 * is);
  const __m512 d3 = _mm512_loadu_ps(in + 3 * is);
  const __m512 d4 = _mm512_loadu_ps(in + 4 * is);
  const __m512 d5 = _mm512_loadu_ps(in + 5 * is);
  const __m512 four = _mm512_set1_ps(4.0f);
  const __m512 five = _mm512_set1_ps(5.0f);
  const __m512 two = _mm512_set1_ps(2.0f);

  const __m512 r0 = _mm512_fnmadd_ps(five, d2, _mm512_fmadd_ps(four, d0, d4));
  const __m512 ts = _mm512_fnmadd_ps(four, d2, d4);
  const __m512 ta = _mm512_fnmadd_ps(four, d1, d3);
  const __m512 ts2 = _mm512_sub_ps(d4, d2);
  const __m512 ta2 = _mm512_sub_ps(d3, d1);
  const __m512 r5 = _mm512_fnmadd_ps(five, d3, _mm512_fmadd_ps(four, d1, d5));

  _mm512_storeu_ps(out, r0);
  _mm512_storeu_ps(out + os, _mm512_add_ps(ts, ta));
  _mm512_storeu_ps(out + 2 * os, _mm512_sub_ps(ts, ta));
  _mm512_storeu_ps(out + 3 * os, _mm512_fmadd_ps(two, ta2, ts2));
  _mm512_storeu_ps(out + 4 * os, _mm512_fnmadd_ps(two, ta2, ts2));
  _mm512_storeu_ps(out + 5 * os, r5);
}

/// A^T(4,3) rows:
///   r0 = z0 + (z1+z2) + (z3+z4)
///   r1 = (z1-z2) + 2 (z3-z4)
///   r2 = (z1+z2) + 4 (z3+z4)
///   r3 = (z1-z2) + 8 (z3-z4) + z5
inline void at_f43(const float* in, std::size_t is, float* out, std::size_t os) {
  const __m512 z0 = _mm512_loadu_ps(in);
  const __m512 z1 = _mm512_loadu_ps(in + is);
  const __m512 z2 = _mm512_loadu_ps(in + 2 * is);
  const __m512 z3 = _mm512_loadu_ps(in + 3 * is);
  const __m512 z4 = _mm512_loadu_ps(in + 4 * is);
  const __m512 z5 = _mm512_loadu_ps(in + 5 * is);
  const __m512 s = _mm512_add_ps(z1, z2);
  const __m512 dif = _mm512_sub_ps(z1, z2);
  const __m512 s2 = _mm512_add_ps(z3, z4);
  const __m512 d2 = _mm512_sub_ps(z3, z4);
  _mm512_storeu_ps(out, _mm512_add_ps(_mm512_add_ps(z0, s), s2));
  _mm512_storeu_ps(out + os, _mm512_fmadd_ps(_mm512_set1_ps(2.0f), d2, dif));
  _mm512_storeu_ps(out + 2 * os, _mm512_fmadd_ps(_mm512_set1_ps(4.0f), s2, s));
  _mm512_storeu_ps(out + 3 * os,
                   _mm512_add_ps(_mm512_fmadd_ps(_mm512_set1_ps(8.0f), d2, dif), z5));
}

}  // namespace
#endif  // LOWINO_COMPILE_AVX512

bool apply_bt_16(std::size_t m, std::size_t r, const float* in, std::size_t in_stride,
                 float* out, std::size_t out_stride) {
#ifdef LOWINO_COMPILE_AVX512
  if (r == 3 && cpu_features().has_avx512_kernels()) {
    if (m == 2) {
      bt_f23(in, in_stride, out, out_stride);
      return true;
    }
    if (m == 4) {
      bt_f43(in, in_stride, out, out_stride);
      return true;
    }
  }
#else
  (void)m, (void)r, (void)in, (void)in_stride, (void)out, (void)out_stride;
#endif
  return false;
}

bool apply_at_16(std::size_t m, std::size_t r, const float* in, std::size_t in_stride,
                 float* out, std::size_t out_stride) {
#ifdef LOWINO_COMPILE_AVX512
  if (r == 3 && cpu_features().has_avx512_kernels()) {
    if (m == 2) {
      at_f23(in, in_stride, out, out_stride);
      return true;
    }
    if (m == 4) {
      at_f43(in, in_stride, out, out_stride);
      return true;
    }
  }
#else
  (void)m, (void)r, (void)in, (void)in_stride, (void)out, (void)out_stride;
#endif
  return false;
}

void quantize16_u8(const float* src, float scale, std::uint8_t* dst) {
#ifdef LOWINO_COMPILE_AVX512
  if (cpu_features().has_avx512_kernels()) {
    const __m512 v = _mm512_mul_ps(_mm512_loadu_ps(src), _mm512_set1_ps(scale));
    __m512i q = _mm512_cvtps_epi32(v);  // round-to-nearest-even, matches nearbyintf
    q = _mm512_add_epi32(q, _mm512_set1_epi32(128));
    q = _mm512_max_epi32(q, _mm512_setzero_si512());
    q = _mm512_min_epi32(q, _mm512_set1_epi32(255));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), _mm512_cvtepi32_epi8(q));
    return;
  }
#endif
  for (int l = 0; l < 16; ++l) {
    const std::int32_t q = round_nearest_even(src[l] * scale) + 128;
    dst[l] = static_cast<std::uint8_t>(std::clamp(q, 0, 255));
  }
}

void dequant16(const std::int32_t* src, const float* dequant, float* dst) {
#ifdef LOWINO_COMPILE_AVX512
  if (cpu_features().has_avx512_kernels()) {
    const __m512 v = _mm512_cvtepi32_ps(_mm512_loadu_si512(src));
    _mm512_storeu_ps(dst, _mm512_mul_ps(v, _mm512_loadu_ps(dequant)));
    return;
  }
#endif
  for (int l = 0; l < 16; ++l) {
    dst[l] = static_cast<float>(src[l]) * dequant[l];
  }
}

void stream_store_64(void* dst, const void* src, bool non_temporal) {
#ifdef LOWINO_COMPILE_AVX512
  if (cpu_features().has_avx512_kernels()) {
    const __m512i line = _mm512_load_si512(src);
    if (non_temporal) {
      _mm512_stream_si512(reinterpret_cast<__m512i*>(dst), line);
    } else {
      _mm512_store_si512(dst, line);
    }
    return;
  }
#endif
  std::memcpy(dst, src, 64);
}

void stream_fence() {
#ifdef LOWINO_COMPILE_AVX512
  if (cpu_features().has_avx512_kernels()) _mm_sfence();
#endif
}

}  // namespace lowino
